(** Runtime invariant monitors over {!Ckpt_sim.Sim_run} event streams.

    A monitor set watches every event an executor emits and checks the
    model-level invariants no correct run may break, whatever the fault
    scenario:

    - {b monotone-timeline}: events arrive in chronological order, every
      timestamp is finite, no event runs backwards, and the reported
      makespan equals the last event's finish;
    - {b work-conservation}: completed phases last exactly their declared
      duration, interrupted phases no longer than it, and every segment
      that starts eventually completes its declared work;
    - {b committed-progress}: no event ever re-executes at or before the
      last committed (uninterrupted) checkpoint — progress made durable
      is never lost;
    - {b makespan-bound}: the makespan is at least the failure-free
      lower bound (failures can only slow a run down);
    - {b downtime-immunity}: no failure strikes inside a downtime window
      (Section 2 of the paper forbids it).

    Checks are pure observations: a violation is recorded, never raised,
    so a broken engine produces a complete report rather than a stack
    trace. All state is single-domain mutable, like the executors it
    watches. *)

type spec = {
  downtime : float;  (** The run's downtime D, for window-length checks. *)
  lower_bound : float;  (** Failure-free makespan lower bound. *)
  expected : int -> Ckpt_sim.Sim_run.segment option;
      (** Declared durations for an event's [segment] index ([work],
          [checkpoint], and the [recovery] re-establishing that
          segment's start state); [None] disables duration checks for
          that index. *)
}

type violation = {
  monitor : string;
  time : float;  (** Event start (or makespan, for closing checks). *)
  message : string;
}

type verdict = {
  monitor : string;
  checks : int;  (** Total checks performed. *)
  violations : int;  (** Total checks failed. *)
  examples : violation list;  (** First failures, capped at 16. *)
}

type t

val monitor_names : string list
(** The five monitor names, in verdict order. *)

val create : spec -> t

val on_event : t -> Ckpt_sim.Sim_run.event -> unit
(** Feed the next event (wire as the executor's [emit], or call from
    inside it). Events must be fed in emission order. *)

val finalize : t -> makespan:float -> verdict list
(** Run the closing checks and return one verdict per monitor, in
    {!monitor_names} order. Call exactly once, after the run. *)

val ok : verdict list -> bool
(** No monitor recorded a violation. *)

val total_violations : verdict list -> int
val total_checks : verdict list -> int

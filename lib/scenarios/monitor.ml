module Sim_run = Ckpt_sim.Sim_run

type spec = {
  downtime : float;
  lower_bound : float;
  expected : int -> Sim_run.segment option;
}

type violation = { monitor : string; time : float; message : string }

type verdict = {
  monitor : string;
  checks : int;
  violations : int;
  examples : violation list;
}

let max_examples = 16

type mon = {
  name : string;
  pass_c : Ckpt_obs.Metrics.counter;
  mutable checks : int;
  mutable violations : int;
  mutable examples : violation list;  (* newest first, capped *)
}

let monitor_names =
  [
    "monotone-timeline"; "work-conservation"; "committed-progress"; "makespan-bound";
    "downtime-immunity";
  ]

type t = {
  spec : spec;
  mono : mon;
  conserve : mon;
  committed : mon;
  bound : mon;
  immunity : mon;
  mutable prev_finish : float;
  mutable last_committed : int;  (* highest segment with a committed checkpoint *)
  (* Segments that appeared in a work event, and whether a full
     (uninterrupted) execution of their work has been observed. *)
  started : (int, bool) Hashtbl.t;
}

(* Check-outcome coverage: cov.monitor.<name>.pass is registered as
   soon as the monitor exists (a monitor whose checks never ran is
   uncovered), while the .violation counter is registered lazily on the
   first violation — honest engines must be able to reach 100% branch
   coverage, and a registered-but-zero violation counter would make
   that impossible by construction. Mutant-stream tests cover the
   violation side. *)
let mon name =
  {
    name;
    pass_c = Ckpt_obs.Metrics.counter ("cov.monitor." ^ name ^ ".pass");
    checks = 0;
    violations = 0;
    examples = [];
  }

let create spec =
  {
    spec;
    mono = mon "monotone-timeline";
    conserve = mon "work-conservation";
    committed = mon "committed-progress";
    bound = mon "makespan-bound";
    immunity = mon "downtime-immunity";
    prev_finish = 0.0;
    last_committed = -1;
    started = Hashtbl.create 16;
  }

(* Scaled tolerance: event times are sums of the spec durations, so the
   only admissible slack is accumulated rounding. *)
let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check m ~time cond message =
  m.checks <- m.checks + 1;
  if cond then Ckpt_obs.Metrics.incr m.pass_c
  else begin
    Ckpt_obs.Metrics.incr
      (Ckpt_obs.Metrics.counter ("cov.monitor." ^ m.name ^ ".violation"));
    m.violations <- m.violations + 1;
    if List.length m.examples < max_examples then
      m.examples <- { monitor = m.name; time; message = message () } :: m.examples
  end

let phase_name = function
  | Sim_run.Work_phase -> "work"
  | Sim_run.Checkpoint_phase -> "checkpoint"
  | Sim_run.Downtime_phase -> "downtime"
  | Sim_run.Recovery_phase -> "recovery"

let on_event t (e : Sim_run.event) =
  let time = e.start in
  (* monotone-timeline: chronological, gap-free-forward, finite, no
     negative spans. *)
  check t.mono ~time
    (Float.is_finite e.start && Float.is_finite e.finish && (not (Float.is_nan e.start))
    && not (Float.is_nan e.finish))
    (fun () -> "event carries a NaN or infinite timestamp");
  check t.mono ~time
    (e.finish >= e.start)
    (fun () ->
      Printf.sprintf "%s event runs backwards: start %.9g > finish %.9g"
        (phase_name e.phase) e.start e.finish);
  check t.mono ~time
    (e.start >= t.prev_finish -. (1e-9 *. Float.max 1.0 (Float.abs t.prev_finish)))
    (fun () ->
      Printf.sprintf "time travel: %s event starts at %.9g before previous finish %.9g"
        (phase_name e.phase) e.start t.prev_finish);
  if e.finish >= e.start then t.prev_finish <- e.finish;
  (* committed-progress: nothing at or before the last committed
     checkpoint may ever re-execute. *)
  check t.committed ~time
    (e.segment > t.last_committed)
    (fun () ->
      Printf.sprintf "%s event for segment %d after segment %d was committed"
        (phase_name e.phase) e.segment t.last_committed);
  if (match e.phase with Sim_run.Checkpoint_phase -> true | _ -> false)
     && not e.interrupted
  then t.last_committed <- Stdlib.max t.last_committed e.segment;
  (* work-conservation: phase durations match the declared workload. *)
  let duration = e.finish -. e.start in
  (match (e.phase, t.spec.expected e.segment) with
  | Sim_run.Work_phase, Some seg ->
      Hashtbl.replace t.started e.segment
        ((not e.interrupted) || (try Hashtbl.find t.started e.segment with Not_found -> false));
      if e.interrupted then
        check t.conserve ~time
          (duration <= seg.Sim_run.work +. 1e-9)
          (fun () ->
            Printf.sprintf "interrupted work ran %.9g > declared work %.9g" duration
              seg.Sim_run.work)
      else
        check t.conserve ~time
          (close duration seg.Sim_run.work)
          (fun () ->
            Printf.sprintf "completed work ran %.9g, declared %.9g" duration
              seg.Sim_run.work)
  | Sim_run.Checkpoint_phase, Some seg ->
      if e.interrupted then
        check t.conserve ~time
          (duration <= seg.Sim_run.checkpoint +. 1e-9)
          (fun () ->
            Printf.sprintf "interrupted checkpoint ran %.9g > declared cost %.9g" duration
              seg.Sim_run.checkpoint)
      else
        check t.conserve ~time
          (close duration seg.Sim_run.checkpoint)
          (fun () ->
            Printf.sprintf "completed checkpoint ran %.9g, declared cost %.9g" duration
              seg.Sim_run.checkpoint)
  | Sim_run.Recovery_phase, Some seg ->
      if e.interrupted then
        check t.conserve ~time
          (duration <= seg.Sim_run.recovery +. 1e-9)
          (fun () ->
            Printf.sprintf "interrupted recovery ran %.9g > declared cost %.9g" duration
              seg.Sim_run.recovery)
      else
        check t.conserve ~time
          (close duration seg.Sim_run.recovery)
          (fun () ->
            Printf.sprintf "completed recovery ran %.9g, declared cost %.9g" duration
              seg.Sim_run.recovery)
  | Sim_run.Downtime_phase, _ ->
      check t.conserve ~time
        (close duration t.spec.downtime)
        (fun () ->
          Printf.sprintf "downtime window of %.9g, model says %.9g" duration
            t.spec.downtime)
  | (Sim_run.Work_phase | Sim_run.Checkpoint_phase | Sim_run.Recovery_phase), None -> ());
  (* downtime-immunity: the paper's model forbids failures during
     downtime. *)
  match e.phase with
  | Sim_run.Downtime_phase ->
      check t.immunity ~time
        (not e.interrupted)
        (fun () -> "a failure struck inside a downtime window")
  | Sim_run.Work_phase | Sim_run.Checkpoint_phase | Sim_run.Recovery_phase -> ()

let finalize t ~makespan =
  (* makespan-bound: no schedule beats the failure-free execution. *)
  check t.bound ~time:makespan
    (makespan >= t.spec.lower_bound -. (1e-9 *. Float.max 1.0 t.spec.lower_bound))
    (fun () ->
      Printf.sprintf "makespan %.9g below the failure-free lower bound %.9g" makespan
        t.spec.lower_bound);
  check t.mono ~time:makespan
    (close makespan t.prev_finish)
    (fun () ->
      Printf.sprintf "makespan %.9g does not match the last event finish %.9g" makespan
        t.prev_finish);
  (* work-conservation closing check: every segment that started also
     completed its declared work (the run cannot "finish" with work
     still owed). *)
  Hashtbl.iter
    (fun segment completed ->
      check t.conserve ~time:makespan completed (fun () ->
          Printf.sprintf "segment %d started but never completed its declared work" segment))
    t.started;
  List.map
    (fun m ->
      {
        monitor = m.name;
        checks = m.checks;
        violations = m.violations;
        examples = List.rev m.examples;
      })
    [ t.mono; t.conserve; t.committed; t.bound; t.immunity ]

let ok verdicts = List.for_all (fun (v : verdict) -> v.violations = 0) verdicts

let total_violations verdicts =
  List.fold_left (fun a (v : verdict) -> a + v.violations) 0 verdicts

let total_checks verdicts = List.fold_left (fun a (v : verdict) -> a + v.checks) 0 verdicts

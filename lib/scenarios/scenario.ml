module Rng = Ckpt_prng.Rng
module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task
module Failure_stream = Ckpt_failures.Failure_stream
module Injector = Ckpt_failures.Injector
module Sim_run = Ckpt_sim.Sim_run
module Metrics = Ckpt_obs.Metrics

(* Harness metrics: every scenario run lands in these, so a CI smoke run
   leaves an auditable trail in the metrics report. *)
let m_runs = Metrics.counter "scenario.runs"
let m_checks = Metrics.counter "scenario.monitor_checks"
let m_violations = Metrics.counter "scenario.monitor_violations"

type workload =
  | Segments of { segments : Sim_run.segment list; downtime : float }
  | Chain of {
      tasks : Task.t array;
      initial_recovery : float;
      downtime : float;
      period : int;  (** Checkpoint after every [period]-th task. *)
    }

type t = {
  name : string;
  description : string;
  workload : workload;
  injector : phase:(unit -> Injector.phase) -> Rng.t -> Injector.t;
}

type outcome = {
  scenario : string;
  seed : int64;
  stats : Sim_run.run_stats;
  events : Sim_run.event list;
  verdicts : Monitor.verdict list;
  digest : string;
}

(* {1 Monitor spec derivation} *)

let spec_of_workload = function
  | Segments { segments; downtime } ->
      let arr = Array.of_list segments in
      let lower_bound =
        List.fold_left
          (fun acc (s : Sim_run.segment) -> acc +. s.work +. s.checkpoint)
          0.0 segments
      in
      {
        Monitor.downtime;
        lower_bound;
        expected = (fun i -> if i >= 0 && i < Array.length arr then Some arr.(i) else None);
      }
  | Chain { tasks; initial_recovery; downtime; period } ->
      let n = Array.length tasks in
      (* The periodic policy is a pure function of the task index, so
         the failure-free makespan — total work plus every checkpoint
         the policy takes (the final one is forced) — is a sound lower
         bound under any fault scenario. *)
      let lower_bound = ref 0.0 in
      Array.iteri
        (fun i (t : Task.t) ->
          lower_bound := !lower_bound +. t.work;
          if i = n - 1 || (i + 1) mod period = 0 then
            lower_bound := !lower_bound +. t.checkpoint_cost)
        tasks;
      {
        Monitor.downtime;
        lower_bound = !lower_bound;
        expected =
          (fun i ->
            if i >= 0 && i < n then
              Some
                (Sim_run.segment ~work:tasks.(i).work
                   ~checkpoint:tasks.(i).checkpoint_cost
                   ~recovery:
                     (if i = 0 then initial_recovery
                      else tasks.(i - 1).recovery_cost))
            else None);
      }

(* {1 Deterministic run + digest} *)

let phase_of_sim = function
  | Sim_run.Work_phase -> Injector.Work
  | Sim_run.Checkpoint_phase -> Injector.Checkpoint
  | Sim_run.Downtime_phase -> Injector.Downtime
  | Sim_run.Recovery_phase -> Injector.Recovery

let phase_char = function
  | Sim_run.Work_phase -> 'W'
  | Sim_run.Checkpoint_phase -> 'C'
  | Sim_run.Downtime_phase -> 'D'
  | Sim_run.Recovery_phase -> 'R'

(* The digest pins the full observable behaviour of a run: every event
   (timestamps at full float precision), the run stats, and the monitor
   verdicts. Same scenario + same seed must reproduce it bit for bit. *)
let digest_outcome ~scenario ~seed ~(stats : Sim_run.run_stats) ~events ~verdicts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf scenario;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Int64.to_string seed);
  Buffer.add_char buf '\n';
  List.iter
    (fun (e : Sim_run.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%c %d %.17g %.17g %c\n" (phase_char e.phase) e.segment e.start
           e.finish
           (if e.interrupted then 'x' else '.')))
    events;
  Buffer.add_string buf
    (Printf.sprintf "makespan %.17g failures %d\n" stats.makespan stats.failures);
  List.iter
    (fun (v : Monitor.verdict) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d\n" v.monitor v.checks v.violations))
    verdicts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run t ~seed =
  let rng = Rng.create ~seed in
  let inject_rng = Rng.substream rng "inject" in
  let phase_cell = ref Injector.Work in
  let injector = t.injector ~phase:(fun () -> !phase_cell) inject_rng in
  let spec = spec_of_workload t.workload in
  let monitor = Monitor.create spec in
  let events = ref [] in
  let emit e =
    events := e :: !events;
    Monitor.on_event monitor e
  in
  let on_phase ph (_ : float) = phase_cell := phase_of_sim ph in
  let next_failure = Injector.to_fun injector in
  let stats =
    match t.workload with
    | Segments { segments; downtime } ->
        Sim_run.run_segments_emitting ~emit ~on_phase ~downtime ~next_failure segments
    | Chain { tasks; initial_recovery; downtime; period } ->
        Sim_run.run_chain_policy_stats ~emit ~on_phase ~initial_recovery ~downtime
          ~decide:(fun ctx -> (ctx.Sim_run.task_index + 1) mod period = 0)
          ~next_failure tasks
  in
  let events = List.rev !events in
  let verdicts = Monitor.finalize monitor ~makespan:stats.makespan in
  Metrics.incr m_runs;
  Metrics.incr ~by:(Monitor.total_checks verdicts) m_checks;
  let violations = Monitor.total_violations verdicts in
  Metrics.incr ~by:violations m_violations;
  Metrics.incr ~by:violations (Metrics.counter ("scenario." ^ t.name ^ ".violations"));
  let digest = digest_outcome ~scenario:t.name ~seed ~stats ~events ~verdicts in
  { scenario = t.name; seed; stats; events; verdicts; digest }

(* {1 The registry} *)

(* Shared segment workload: six equal segments, checkpoint after each.
   Scenarios vary only the fault process, so their outcomes are directly
   comparable. *)
let standard_segments =
  Segments
    {
      segments =
        List.init 6 (fun _ -> Sim_run.segment ~work:8.0 ~checkpoint:0.8 ~recovery:1.5);
      downtime = 0.5;
    }

let chain_workload =
  Chain
    {
      tasks =
        Array.init 12 (fun i ->
            Task.make ~id:i
              ~work:(2.0 +. float_of_int (i mod 3))
              ~checkpoint_cost:0.6 ~recovery_cost:1.2 ());
      initial_recovery = 1.0;
      downtime = 0.4;
      period = 3;
    }

(* Burst times for the replay scenario: a dozen bursts, each delivering
   one to three processor failures at the very same instant — the
   exact-tie coalescing case pinned by Failure_stream's simultaneity
   contract. *)
let tie_burst_times rng =
  let t = ref 0.0 in
  let out = ref [] in
  for _ = 1 to 12 do
    t := !t +. 4.0 +. (8.0 *. Rng.float rng);
    let copies = 1 + Rng.int rng 3 in
    for _ = 1 to copies do
      out := !t :: !out
    done
  done;
  Array.of_list (List.rev !out)

let all =
  [
    {
      name = "baseline-exp";
      description = "i.i.d. exponential failures (the paper's Section 2 model)";
      workload = standard_segments;
      injector =
        (fun ~phase:_ rng -> Injector.of_stream (Failure_stream.poisson ~rate:0.02 rng));
    };
    {
      name = "renewal-weibull";
      description =
        "8 processors with decreasing-hazard Weibull lifetimes (Section 6 regime)";
      workload = standard_segments;
      injector =
        (fun ~phase:_ rng ->
          Injector.of_stream
            (Failure_stream.renewal
               ~law:(Law.weibull_of_mean ~shape:0.7 ~mean:360.0)
               ~processors:8 rng));
    };
    {
      name = "cascading-aftershocks";
      description =
        "exponential base process with correlated aftershock cascades (sub-critical \
         branching)";
      workload = standard_segments;
      injector =
        (fun ~phase:_ rng ->
          Injector.aftershocks ~probability:0.6 ~rate:0.5 ~window:20.0 rng
            (Injector.of_stream (Failure_stream.poisson ~rate:0.01 rng)));
    };
    {
      name = "ckpt-io-hazard";
      description =
        "failure rate concentrated in checkpoint and recovery I/O (phase-modulated \
         hazard)";
      workload = standard_segments;
      injector =
        (fun ~phase rng ->
          Injector.exp_phase_modulated ~base_rate:0.008
            ~multiplier:(function
              | Injector.Work -> 1.0
              | Injector.Checkpoint -> 15.0
              | Injector.Recovery -> 10.0
              | Injector.Downtime -> 0.0)
            ~phase rng);
    };
    {
      name = "transient-masked";
      description =
        "dense fault process, 70% transient (masked by the platform), 30% fail-stop";
      workload = standard_segments;
      injector =
        (fun ~phase:_ rng ->
          Injector.masked ~survive_prob:0.7 rng
            (Injector.of_stream (Failure_stream.poisson ~rate:0.08 rng)));
    };
    {
      name = "drifting-hazard";
      description = "non-homogeneous Poisson failures with a wear-out hazard ramp";
      workload = standard_segments;
      injector =
        (fun ~phase:_ rng ->
          Injector.nonhomogeneous
            ~rate:(fun t -> Float.min (0.004 +. (0.001 *. t)) 0.104)
            ~rate_max:0.104 rng);
    };
    {
      name = "replay-tie-burst";
      description =
        "trace replay with simultaneous multi-processor failure bursts (exact-tie \
         coalescing)";
      workload = standard_segments;
      injector =
        (fun ~phase:_ rng ->
          Injector.of_stream
            (Failure_stream.of_times (tie_burst_times (Rng.substream rng "trace"))));
    };
    {
      name = "merged-phase-chain";
      description =
        "chain workload under the superposition (Injector.merge) of a \
         checkpoint-I/O-coupled hazard and an independent exponential stream";
      workload = chain_workload;
      injector =
        (fun ~phase rng ->
          (* Two labelled substreams keep each source's draws independent
             of the other's consumption — the superposition stays
             reproducible even if one source's draw count changes. *)
          Injector.merge
            (Injector.exp_phase_modulated ~base_rate:0.006
               ~multiplier:(function
                 | Injector.Work -> 1.0
                 | Injector.Checkpoint -> 12.0
                 | Injector.Recovery -> 8.0
                 | Injector.Downtime -> 0.0)
               ~phase (Rng.substream rng "phase"))
            (Injector.of_stream
               (Failure_stream.poisson ~rate:0.012 (Rng.substream rng "poisson"))));
    };
    {
      name = "chain-periodic-policy";
      description =
        "12-task chain under the every-3rd-task checkpoint policy, exponential \
         failures";
      workload = chain_workload;
      injector =
        (fun ~phase:_ rng -> Injector.of_stream (Failure_stream.poisson ~rate:0.02 rng));
    };
  ]

let names () = List.map (fun t -> t.name) all
let find name = List.find_opt (fun t -> String.equal t.name name) all

let run_all ~seed = List.map (fun t -> run t ~seed) all

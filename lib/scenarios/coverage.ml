(* Coverage-guided seed sweep over the scenario registry.

   The coverage universe is the set of cov.* counters registered in
   this process: every Injector combinator branch registers its
   counters when a scenario constructs it, and every monitor registers
   its .pass counter when a run creates it (violation counters register
   only when they fire — see Monitor). Running a scenario therefore
   both *defines* the branches it could take and *covers* the ones it
   did; the sweep keeps re-running the chosen scenarios at consecutive
   seeds until every registered branch has fired or the seed budget is
   exhausted. *)

module Metrics = Ckpt_obs.Metrics

let prefix = "cov."

let is_cov name =
  String.length name >= String.length prefix
  && String.equal (String.sub name 0 (String.length prefix)) prefix

(* All cov.* counters currently registered, with their merged values. *)
let counters () =
  List.filter_map
    (fun (name, _, value) ->
      match value with
      | Metrics.Counter n when is_cov name -> Some (name, n)
      | _ -> None)
    (Metrics.snapshot ())

let uncovered () = List.filter_map (fun (n, c) -> if c = 0 then Some n else None) (counters ())

type outcome = {
  seeds_used : int;  (** Consecutive seeds run, starting at [seed]. *)
  covered : (string * int) list;  (** Every cov.* counter with its hit count. *)
  uncovered : string list;  (** Registered branches that never fired. *)
}

let complete o = o.uncovered = []

let default_budget = 64

let sweep ?(budget = default_budget) ~scenarios ~seed () =
  if budget < 1 then invalid_arg "Coverage.sweep: budget must be >= 1";
  if scenarios = [] then invalid_arg "Coverage.sweep: no scenarios";
  let used = ref 0 in
  let continue_ = ref true in
  while !continue_ && !used < budget do
    let s = Int64.add seed (Int64.of_int !used) in
    List.iter (fun t -> ignore (Scenario.run t ~seed:s)) scenarios;
    incr used;
    (* The universe can only grow while scenarios run, so checking after
       each full registry pass is sound: a branch registered by pass k
       is visible to every check from pass k on. *)
    if uncovered () = [] then continue_ := false
  done;
  { seeds_used = !used; covered = counters (); uncovered = uncovered () }

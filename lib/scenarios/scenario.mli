(** Deterministic fault-scenario registry.

    A scenario is a fixed workload plus a fault-injector construction;
    running one by [name] and [seed] replays the exact same failure
    pattern, event stream and monitor verdicts every time, on every
    machine — the reproduction contract behind a bug report of the form
    "scenario X, seed N".

    {1 Seeding contract}

    [run t ~seed] derives every random draw from
    [Rng.substream (Rng.create ~seed) "inject"] (trace-style scenarios
    derive further labelled substreams from it). The workload shape
    never depends on the seed. Two runs with the same name and seed
    therefore produce bit-identical event streams, stats, verdicts —
    and [digest], which pins all of them (MD5 over the rendered events
    at full float precision plus stats and verdicts).

    Every run feeds each emitted event to the full {!Monitor} set and
    emits [scenario.*] metrics ([runs], [monitor_checks],
    [monitor_violations], and a per-scenario violation counter). *)

type workload =
  | Segments of { segments : Ckpt_sim.Sim_run.segment list; downtime : float }
  | Chain of {
      tasks : Ckpt_dag.Task.t array;
      initial_recovery : float;
      downtime : float;
      period : int;  (** Checkpoint after every [period]-th task. *)
    }

type t = {
  name : string;
  description : string;
  workload : workload;
  injector :
    phase:(unit -> Ckpt_failures.Injector.phase) ->
    Ckpt_prng.Rng.t ->
    Ckpt_failures.Injector.t;
      (** Build the scenario's fault source. [phase] reports the engine
          phase about to execute (wired to the executor's [on_phase]
          hook), for phase-coupled injectors. *)
}

type outcome = {
  scenario : string;
  seed : int64;
  stats : Ckpt_sim.Sim_run.run_stats;
  events : Ckpt_sim.Sim_run.event list;  (** Chronological. *)
  verdicts : Monitor.verdict list;  (** One per monitor. *)
  digest : string;  (** Hex MD5 pinning events + stats + verdicts. *)
}

val spec_of_workload : workload -> Monitor.spec
(** The monitor spec a workload implies: declared per-segment durations
    and the failure-free makespan lower bound (for {!Chain}, under its
    failure-independent periodic policy). *)

val run : t -> seed:int64 -> outcome
(** Execute one scenario deterministically and monitor every event. *)

val all : t list
(** The registry, in a fixed order. *)

val names : unit -> string list
val find : string -> t option

val run_all : seed:int64 -> outcome list
(** Run the whole registry with the same seed (the CI smoke pass). *)

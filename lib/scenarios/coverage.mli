(** Coverage-guided seed sweep: run scenarios at consecutive seeds
    until every registered [cov.*] counter is nonzero or a seed budget
    is hit.

    The universe is defined by registration: Injector combinators
    register their branch counters at construction and monitors their
    [.pass] counters at creation, so the universe of a sweep is exactly
    the branches reachable by the scenarios it runs ([.violation]
    counters register only when they fire, keeping 100% reachable for
    honest engines). Surfaced as [ckpt-sim --scenario NAME --coverage]
    and the [scenario-coverage] bench case. *)

val counters : unit -> (string * int) list
(** Every registered [cov.*] counter with its current merged value. *)

val uncovered : unit -> string list
(** The registered branches that have not fired yet. *)

type outcome = {
  seeds_used : int;  (** Consecutive seeds run, starting at [seed]. *)
  covered : (string * int) list;  (** Every cov.* counter with its hit count. *)
  uncovered : string list;  (** Registered branches that never fired. *)
}

val complete : outcome -> bool

val default_budget : int
(** 64 seeds. *)

val sweep :
  ?budget:int -> scenarios:Scenario.t list -> seed:int64 -> unit -> outcome
(** Run every scenario in the list at [seed], [seed+1], … until
    {!uncovered} is empty or [budget] seeds have been consumed. Does
    not reset the registry: coverage accumulated by earlier runs in the
    process counts (the CLI runs its digest-checked pass first and
    sweeps from there). *)

module Task = Ckpt_dag.Task
module Metrics = Ckpt_obs.Metrics

(* Engine metrics, emitted into the caller's current collector: under
   the parallel pool each run's events land in its batch's collector,
   so the report-time totals are bit-identical for any domain count
   (see Ckpt_obs.Metrics on the merge order). *)
let m_failures = Metrics.counter "sim.failures"
let m_checkpoints = Metrics.counter "sim.checkpoints"
let m_lost_work = Metrics.sum "sim.lost_work"

let m_failures_per_run =
  Metrics.histogram "sim.failures_per_run"
    ~buckets:[| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100. |]

type segment = { work : float; checkpoint : float; recovery : float }

let segment ~work ~checkpoint ~recovery =
  if work < 0.0 || checkpoint < 0.0 || recovery < 0.0 then
    invalid_arg "Sim_run.segment: durations must be non-negative";
  { work; checkpoint; recovery }

exception Livelock of int

let default_max_failures = 10_000_000

let count_failure ~max_failures counter =
  incr counter;
  Metrics.incr m_failures;
  if !counter > max_failures then raise (Livelock !counter)

(* Run a recovery of length [recovery]: failures restart downtime +
   recovery; returns the completion time. [on_failure] observes each
   failure instant (the chain executor tracks the last failure time for
   the policy context). *)
let run_recovery ?(on_failure = fun (_ : float) -> ()) ~max_failures ~counter ~downtime
    ~next_failure ~recovery start =
  let rec loop t =
    let finish = t +. recovery in
    let fail = next_failure t in
    if fail >= finish then finish
    else begin
      count_failure ~max_failures counter;
      Metrics.add m_lost_work (fail -. t);
      on_failure fail;
      loop (fail +. downtime)
    end
  in
  loop start

type run_stats = { makespan : float; failures : int }

type phase = Work_phase | Checkpoint_phase | Downtime_phase | Recovery_phase

type event = {
  phase : phase;
  segment : int;
  start : float;
  finish : float;
  interrupted : bool;
}

let no_emit (_ : event) = ()

let run_segments_emitting ?(max_failures = default_max_failures) ~emit ~downtime
    ~next_failure segments =
  if downtime < 0.0 then invalid_arg "Sim_run.run_segments: negative downtime";
  let counter = ref 0 in
  let run_segment t (index, seg) =
    (* Emit the work/checkpoint spans of one attempt window ending (or
       interrupted) at [stop]. *)
    let emit_attempt t stop interrupted =
      let work_end = t +. seg.work in
      if stop <= work_end then begin
        if stop > t || interrupted then
          emit { phase = Work_phase; segment = index; start = t; finish = stop; interrupted }
      end
      else begin
        if seg.work > 0.0 then
          emit { phase = Work_phase; segment = index; start = t; finish = work_end;
                 interrupted = false };
        emit { phase = Checkpoint_phase; segment = index; start = work_end; finish = stop;
               interrupted }
      end
    in
    let rec recover t =
      let finish = t +. seg.recovery in
      let fail = next_failure t in
      if fail >= finish then begin
        if seg.recovery > 0.0 then
          emit { phase = Recovery_phase; segment = index; start = t; finish;
                 interrupted = false };
        finish
      end
      else begin
        count_failure ~max_failures counter;
        Metrics.add m_lost_work (fail -. t);
        emit { phase = Recovery_phase; segment = index; start = t; finish = fail;
               interrupted = true };
        emit { phase = Downtime_phase; segment = index; start = fail;
               finish = fail +. downtime; interrupted = false };
        recover (fail +. downtime)
      end
    in
    let rec attempt t =
      let finish = t +. seg.work +. seg.checkpoint in
      let fail = next_failure t in
      if fail >= finish then begin
        emit_attempt t finish false;
        Metrics.incr m_checkpoints;
        finish
      end
      else begin
        count_failure ~max_failures counter;
        Metrics.add m_lost_work (fail -. t);
        emit_attempt t fail true;
        emit { phase = Downtime_phase; segment = index; start = fail;
               finish = fail +. downtime; interrupted = false };
        attempt (recover (fail +. downtime))
      end
    in
    attempt t
  in
  let makespan =
    List.fold_left run_segment 0.0 (List.mapi (fun i seg -> (i, seg)) segments)
  in
  Metrics.observe m_failures_per_run (float_of_int !counter);
  { makespan; failures = !counter }

let run_segments_stats ?max_failures ~downtime ~next_failure segments =
  run_segments_emitting ?max_failures ~emit:no_emit ~downtime ~next_failure segments

let run_segments ?max_failures ~downtime ~next_failure segments =
  (run_segments_stats ?max_failures ~downtime ~next_failure segments).makespan

let run_segments_traced ?max_failures ~downtime ~next_failure segments =
  let events = ref [] in
  let emit e = events := e :: !events in
  let stats = run_segments_emitting ?max_failures ~emit ~downtime ~next_failure segments in
  (stats, List.rev !events)

type chain_context = {
  task_index : int;
  last_checkpoint : int;
  now : float;
  since_last_failure : float;
  work_since_checkpoint : float;
}

let run_chain_policy ?(max_failures = default_max_failures) ~initial_recovery ~downtime
    ~decide ~next_failure tasks =
  if initial_recovery < 0.0 then
    invalid_arg "Sim_run.run_chain_policy: negative initial recovery";
  if downtime < 0.0 then invalid_arg "Sim_run.run_chain_policy: negative downtime";
  let counter = ref 0 in
  let n = Array.length tasks in
  let last_failure = ref 0.0 in
  let recovery_of last_ckpt =
    if last_ckpt < 0 then initial_recovery else tasks.(last_ckpt).Task.recovery_cost
  in
  (* [execute t last_ckpt i acc_work] runs tasks i.. with [acc_work]
     work accumulated since the checkpoint after task [last_ckpt]. *)
  let rec execute t last_ckpt i acc_work =
    if i >= n then t
    else begin
      let task = tasks.(i) in
      let finish = t +. task.Task.work in
      let fail = next_failure t in
      if fail < finish then rollback ~lost:(acc_work +. (fail -. t)) fail last_ckpt
      else begin
        let acc_work = acc_work +. task.Task.work in
        let ctx =
          {
            task_index = i;
            last_checkpoint = last_ckpt;
            now = finish;
            since_last_failure = finish -. !last_failure;
            work_since_checkpoint = acc_work;
          }
        in
        let wants_checkpoint = i = n - 1 || decide ctx in
        if not wants_checkpoint then execute finish last_ckpt (i + 1) acc_work
        else begin
          let ckpt_finish = finish +. task.Task.checkpoint_cost in
          let fail = next_failure finish in
          if fail < ckpt_finish then
            rollback ~lost:(acc_work +. (fail -. finish)) fail last_ckpt
          else begin
            Metrics.incr m_checkpoints;
            execute ckpt_finish i (i + 1) 0.0
          end
        end
      end
    end
  and rollback ~lost fail_time last_ckpt =
    count_failure ~max_failures counter;
    Metrics.add m_lost_work lost;
    last_failure := fail_time;
    let recovered =
      run_recovery
        ~on_failure:(fun fail -> last_failure := fail)
        ~max_failures ~counter ~downtime ~next_failure
        ~recovery:(recovery_of last_ckpt) (fail_time +. downtime)
    in
    execute recovered last_ckpt (last_ckpt + 1) 0.0
  in
  let makespan = execute 0.0 (-1) 0 0.0 in
  Metrics.observe m_failures_per_run (float_of_int !counter);
  makespan

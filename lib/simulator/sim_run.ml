module Task = Ckpt_dag.Task
module Metrics = Ckpt_obs.Metrics

(* Engine metrics, emitted into the caller's current collector: under
   the parallel pool each run's events land in its batch's collector,
   so the report-time totals are bit-identical for any domain count
   (see Ckpt_obs.Metrics on the merge order). *)
let m_failures = Metrics.counter "sim.failures"
let m_checkpoints = Metrics.counter "sim.checkpoints"

(* Productive work re-executed because of failures: the work elapsed in
   an interrupted work phase, plus the whole segment's work when the
   checkpoint that would have made it durable is interrupted. Checkpoint
   and recovery time are not work; they land in sim.lost_time. *)
let m_lost_work = Metrics.sum "sim.lost_work"

(* Wall-clock wiped out by failures: the elapsed portion of every
   interrupted work/checkpoint/recovery window, measured from the last
   commit point (attempt or recovery start). Downtime windows are not
   included — they are sim.failures * D by construction. *)
let m_lost_time = Metrics.sum "sim.lost_time"

let m_failures_per_run =
  Metrics.histogram "sim.failures_per_run"
    ~buckets:[| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100. |]

type segment = { work : float; checkpoint : float; recovery : float }

let segment ~work ~checkpoint ~recovery =
  (* [not (x >= 0)] also rejects NaN, which [x < 0] would admit. *)
  if not (work >= 0.0 && checkpoint >= 0.0 && recovery >= 0.0) then
    invalid_arg "Sim_run.segment: durations must be non-negative";
  { work; checkpoint; recovery }

exception Livelock of int

let default_max_failures = 10_000_000

let count_failure ~max_failures counter =
  incr counter;
  Metrics.incr m_failures;
  if !counter > max_failures then raise (Livelock !counter)

type run_stats = { makespan : float; failures : int }

type phase = Work_phase | Checkpoint_phase | Downtime_phase | Recovery_phase

type event = {
  phase : phase;
  segment : int;
  start : float;
  finish : float;
  interrupted : bool;
}

let no_emit (_ : event) = ()
let no_phase (_ : phase) (_ : float) = ()

(* A NaN failure time would silently read as "no failure" under every
   [<] comparison below, turning a broken injector into an invisible
   optimistic engine; fail fast instead. *)
let checked_next next_failure t =
  let fail = next_failure t in
  if Float.is_nan fail then
    invalid_arg "Sim_run: next_failure returned NaN";
  fail

(* Run a recovery of length [recovery]: failures restart downtime +
   recovery; returns the completion time. [on_failure] observes each
   failure instant (the chain executor tracks the last failure time for
   the policy context); [emit]/[on_phase] observe the event log, with
   [segment] the index the recovery will resume. *)
let run_recovery ?(on_failure = fun (_ : float) -> ()) ?(emit = no_emit)
    ?(on_phase = no_phase) ~max_failures ~counter ~segment:index ~downtime
    ~next_failure ~recovery start =
  let rec loop t =
    on_phase Recovery_phase t;
    let finish = t +. recovery in
    let fail = checked_next next_failure t in
    if fail >= finish then begin
      if recovery > 0.0 then
        emit { phase = Recovery_phase; segment = index; start = t; finish;
               interrupted = false };
      finish
    end
    else begin
      count_failure ~max_failures counter;
      Metrics.add m_lost_time (fail -. t);
      on_failure fail;
      emit { phase = Recovery_phase; segment = index; start = t; finish = fail;
             interrupted = true };
      on_phase Downtime_phase fail;
      emit { phase = Downtime_phase; segment = index; start = fail;
             finish = fail +. downtime; interrupted = false };
      loop (fail +. downtime)
    end
  in
  loop start

let run_segments_emitting ?(max_failures = default_max_failures) ?(on_phase = no_phase)
    ~emit ~downtime ~next_failure segments =
  if not (downtime >= 0.0) then invalid_arg "Sim_run.run_segments: negative downtime";
  let counter = ref 0 in
  let run_segment t (index, seg) =
    let recover fail_time =
      on_phase Downtime_phase fail_time;
      emit { phase = Downtime_phase; segment = index; start = fail_time;
             finish = fail_time +. downtime; interrupted = false };
      run_recovery ~emit ~on_phase ~max_failures ~counter ~segment:index ~downtime
        ~next_failure ~recovery:seg.recovery (fail_time +. downtime)
    in
    let rec attempt t =
      let work_end = t +. seg.work in
      let ckpt_end = work_end +. seg.checkpoint in
      (* Each phase makes its own failure query (as the chain executor
         always has), so phase-aware injectors see the right phase. The
         split is behaviour-preserving for the stream sources: a pending
         failure strictly later than the query time is stable across
         non-decreasing queries. *)
      let work_fail =
        if seg.work > 0.0 then begin
          on_phase Work_phase t;
          let fail = checked_next next_failure t in
          (* A failure at the exact work/checkpoint boundary interrupts
             the work phase — unless the whole attempt completes there
             (zero checkpoint), in which case completion wins. *)
          if fail < ckpt_end && fail <= work_end then Some fail else None
        end
        else None
      in
      match work_fail with
      | Some fail ->
          count_failure ~max_failures counter;
          Metrics.add m_lost_work (fail -. t);
          Metrics.add m_lost_time (fail -. t);
          emit { phase = Work_phase; segment = index; start = t; finish = fail;
                 interrupted = true };
          attempt (recover fail)
      | None ->
          if seg.work > 0.0 then
            emit { phase = Work_phase; segment = index; start = t; finish = work_end;
                   interrupted = false };
          if seg.checkpoint > 0.0 then begin
            on_phase Checkpoint_phase work_end;
            let fail = checked_next next_failure work_end in
            if fail < ckpt_end then begin
              count_failure ~max_failures counter;
              (* The checkpoint failed: the segment's work is lost in
                 full, but the checkpoint time elapsed is lost *time*,
                 not lost work. *)
              Metrics.add m_lost_work seg.work;
              Metrics.add m_lost_time (fail -. t);
              emit { phase = Checkpoint_phase; segment = index; start = work_end;
                     finish = fail; interrupted = true };
              attempt (recover fail)
            end
            else begin
              emit { phase = Checkpoint_phase; segment = index; start = work_end;
                     finish = ckpt_end; interrupted = false };
              Metrics.incr m_checkpoints;
              ckpt_end
            end
          end
          else begin
            Metrics.incr m_checkpoints;
            work_end
          end
    in
    attempt t
  in
  let makespan =
    List.fold_left run_segment 0.0 (List.mapi (fun i seg -> (i, seg)) segments)
  in
  Metrics.observe m_failures_per_run (float_of_int !counter);
  { makespan; failures = !counter }

let run_segments_stats ?max_failures ?on_phase ~downtime ~next_failure segments =
  run_segments_emitting ?max_failures ?on_phase ~emit:no_emit ~downtime ~next_failure
    segments

let run_segments ?max_failures ~downtime ~next_failure segments =
  (run_segments_stats ?max_failures ~downtime ~next_failure segments).makespan

let run_segments_traced ?max_failures ~downtime ~next_failure segments =
  let events = ref [] in
  let emit e = events := e :: !events in
  let stats = run_segments_emitting ?max_failures ~emit ~downtime ~next_failure segments in
  (stats, List.rev !events)

type chain_context = {
  task_index : int;
  last_checkpoint : int;
  now : float;
  since_last_failure : float;
  work_since_checkpoint : float;
}

let run_chain_policy_stats ?(max_failures = default_max_failures) ?(emit = no_emit)
    ?(on_phase = no_phase) ~initial_recovery ~downtime ~decide ~next_failure tasks =
  if not (initial_recovery >= 0.0) then
    invalid_arg "Sim_run.run_chain_policy: negative initial recovery";
  if not (downtime >= 0.0) then invalid_arg "Sim_run.run_chain_policy: negative downtime";
  let counter = ref 0 in
  let n = Array.length tasks in
  let last_failure = ref 0.0 in
  let recovery_of last_ckpt =
    if last_ckpt < 0 then initial_recovery else tasks.(last_ckpt).Task.recovery_cost
  in
  (* [execute t last_ckpt i acc_work] runs tasks i.. with [acc_work]
     work accumulated since the checkpoint after task [last_ckpt].
     Tasks run back to back after a commit point (recovery end or
     checkpoint end), so the wall-clock elapsed since that point is
     acc_work plus the elapsed portion of the current phase. *)
  let rec execute t last_ckpt i acc_work =
    if i >= n then t
    else begin
      let task = tasks.(i) in
      let finish = t +. task.Task.work in
      on_phase Work_phase t;
      let fail = checked_next next_failure t in
      if fail < finish then begin
        emit { phase = Work_phase; segment = i; start = t; finish = fail;
               interrupted = true };
        (* Everything elapsed since the commit point is work, so lost
           work and lost time coincide here. *)
        let lost = acc_work +. (fail -. t) in
        rollback ~lost_work:lost ~lost_time:lost fail last_ckpt
      end
      else begin
        emit { phase = Work_phase; segment = i; start = t; finish; interrupted = false };
        let acc_work = acc_work +. task.Task.work in
        let ctx =
          {
            task_index = i;
            last_checkpoint = last_ckpt;
            now = finish;
            since_last_failure = finish -. !last_failure;
            work_since_checkpoint = acc_work;
          }
        in
        let wants_checkpoint = i = n - 1 || decide ctx in
        if not wants_checkpoint then execute finish last_ckpt (i + 1) acc_work
        else begin
          let ckpt_finish = finish +. task.Task.checkpoint_cost in
          if task.Task.checkpoint_cost > 0.0 then begin
            on_phase Checkpoint_phase finish;
            let fail = checked_next next_failure finish in
            if fail < ckpt_finish then begin
              emit { phase = Checkpoint_phase; segment = i; start = finish;
                     finish = fail; interrupted = true };
              (* Only the work since the last checkpoint is lost work;
                 the checkpoint time elapsed is lost time. *)
              rollback ~lost_work:acc_work ~lost_time:(acc_work +. (fail -. finish))
                fail last_ckpt
            end
            else begin
              emit { phase = Checkpoint_phase; segment = i; start = finish;
                     finish = ckpt_finish; interrupted = false };
              Metrics.incr m_checkpoints;
              execute ckpt_finish i (i + 1) 0.0
            end
          end
          else begin
            Metrics.incr m_checkpoints;
            execute ckpt_finish i (i + 1) 0.0
          end
        end
      end
    end
  and rollback ~lost_work ~lost_time fail_time last_ckpt =
    count_failure ~max_failures counter;
    Metrics.add m_lost_work lost_work;
    Metrics.add m_lost_time lost_time;
    last_failure := fail_time;
    (* Downtime/recovery events carry the index of the task execution
       resumes with, mirroring the segment executor's convention (the
       recovery re-establishes that task's starting state). *)
    let resume = last_ckpt + 1 in
    on_phase Downtime_phase fail_time;
    emit { phase = Downtime_phase; segment = resume; start = fail_time;
           finish = fail_time +. downtime; interrupted = false };
    let recovered =
      run_recovery
        ~on_failure:(fun fail -> last_failure := fail)
        ~emit ~on_phase ~max_failures ~counter ~segment:resume ~downtime ~next_failure
        ~recovery:(recovery_of last_ckpt) (fail_time +. downtime)
    in
    execute recovered last_ckpt resume 0.0
  in
  let makespan = execute 0.0 (-1) 0 0.0 in
  Metrics.observe m_failures_per_run (float_of_int !counter);
  { makespan; failures = !counter }

let run_chain_policy ?max_failures ?emit ?on_phase ~initial_recovery ~downtime ~decide
    ~next_failure tasks =
  (run_chain_policy_stats ?max_failures ?emit ?on_phase ~initial_recovery ~downtime
     ~decide ~next_failure tasks)
    .makespan

(** Replication driver: estimate the expected makespan of a checkpointed
    workload by repeated simulation, with confidence intervals.

    Every estimator executes on the {!Parallel_exec} domain pool. The
    common optional knobs:

    - [?domains] — pool size (default
      {!Parallel_exec.default_domains}). Estimates are {e bit-identical}
      for any domain count given the same seed: run [r] draws from the
      substream ["run-r"] of the caller's [rng] seed regardless of which
      domain executes it, and the reduction tree is fixed by the batch
      grid, not by the pool.
    - [?target_ci] — switches to adaptive sampling: [runs] becomes the
      initial round, which is doubled until the 99% CI half-width falls
      below [target_ci *. |mean|] or the cap is hit.
    - [?max_runs] — hard cap for adaptive sampling (default
      [64 * runs]; ignored without [target_ci]).

    With [domains > 1] the simulation callbacks (notably
    [estimate_chain_policy]'s [decide]) run concurrently on several
    domains and must be thread-safe; the policies in
    {!Ckpt_core.Nonmemoryless} are. *)

type estimate = {
  mean : float;
  stddev : float;
  std_error : float;
  runs : int;
  ci99 : float * float;  (** 99% normal-approximation interval. *)
  min : float;
  max : float;
}

val contains : float * float -> float -> bool
(** [contains (lo, hi) x] tests interval membership. *)

val pp_estimate : Format.formatter -> estimate -> unit

type failure_model =
  | Poisson_rate of float  (** Platform-level Exponential rate λ. *)
  | Platform of Ckpt_failures.Platform.t
  | Platform_rejuvenating of Ckpt_failures.Platform.t
      (** Renewal processes with all-processor rejuvenation. *)

val estimate_segments :
  ?domains:int ->
  ?target_ci:float ->
  ?max_runs:int ->
  model:failure_model ->
  downtime:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  Sim_run.segment list ->
  estimate
(** Independent replications of {!Sim_run.run_segments}: run [r] draws
    its failures from the substream ["run-r"] of [rng], so individual
    runs are reproducible and order-independent. *)

val estimate_chain_policy :
  ?domains:int ->
  ?target_ci:float ->
  ?max_runs:int ->
  model:failure_model ->
  downtime:float ->
  initial_recovery:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  decide:(Sim_run.chain_context -> bool) ->
  Ckpt_dag.Task.t array ->
  estimate
(** Same replication scheme for the policy-driven chain executor.
    [decide] must be thread-safe when [domains > 1]. *)

val estimate_segments_parallel :
  ?domains:int ->
  model:failure_model ->
  downtime:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  Sim_run.segment list ->
  estimate
(** @deprecated Alias of {!estimate_segments} — every estimator is now
    parallel; kept for source compatibility. *)

type distribution = {
  samples : float array;  (** Sorted makespan samples. *)
  estimate : estimate;
}

val collect_segments :
  ?domains:int ->
  model:failure_model ->
  downtime:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  Sim_run.segment list ->
  distribution
(** Like {!estimate_segments} but keeps every sample, for tail analysis
    (checkpointing narrows the makespan distribution, not only its
    mean — see the [tail_latency] example). The sample array is
    identical for any domain count. *)

val quantile : distribution -> float -> float
(** [quantile d q] with q in [0, 1]. *)

val run_segments_on_trace :
  downtime:float -> trace:Ckpt_failures.Trace.t -> Sim_run.segment list -> float
(** One deterministic execution against a recorded trace. *)

val estimate_chain_policy_on_logs :
  ?domains:int ->
  downtime:float ->
  initial_recovery:float ->
  logs:Ckpt_failures.Trace.t list ->
  decide:(Sim_run.chain_context -> bool) ->
  Ckpt_dag.Task.t array ->
  estimate
(** One execution per recorded trace (e.g. one per synthetic cluster-log
    sample), replayed on the domain pool; the estimate aggregates across
    traces. *)

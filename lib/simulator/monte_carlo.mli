(** Replication driver: estimate the expected makespan of a checkpointed
    workload by repeated simulation, with confidence intervals. *)

type estimate = {
  mean : float;
  stddev : float;
  std_error : float;
  runs : int;
  ci99 : float * float;  (** 99% normal-approximation interval. *)
  min : float;
  max : float;
}

val contains : float * float -> float -> bool
(** [contains (lo, hi) x] tests interval membership. *)

val pp_estimate : Format.formatter -> estimate -> unit

type failure_model =
  | Poisson_rate of float  (** Platform-level Exponential rate λ. *)
  | Platform of Ckpt_failures.Platform.t
  | Platform_rejuvenating of Ckpt_failures.Platform.t
      (** Renewal processes with all-processor rejuvenation. *)

val estimate_segments :
  model:failure_model ->
  downtime:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  Sim_run.segment list ->
  estimate
(** Independent replications of {!Sim_run.run_segments}: run [r] draws
    its failures from the substream ["run-r"] of [rng], so individual
    runs are reproducible and order-independent. *)

val estimate_chain_policy :
  model:failure_model ->
  downtime:float ->
  initial_recovery:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  decide:(Sim_run.chain_context -> bool) ->
  Ckpt_dag.Task.t array ->
  estimate
(** Same replication scheme for the policy-driven chain executor. *)

val estimate_segments_parallel :
  ?domains:int ->
  model:failure_model ->
  downtime:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  Sim_run.segment list ->
  estimate
(** Multicore version of {!estimate_segments} (OCaml 5 domains,
    default: [Domain.recommended_domain_count], capped at 8). Run [r]
    still draws from the substream ["run-r"], so the sample set is
    {e identical} to the sequential driver's — only the Welford merge
    order differs (statistically irrelevant, float-rounding level). *)

type distribution = {
  samples : float array;  (** Sorted makespan samples. *)
  estimate : estimate;
}

val collect_segments :
  model:failure_model ->
  downtime:float ->
  runs:int ->
  rng:Ckpt_prng.Rng.t ->
  Sim_run.segment list ->
  distribution
(** Like {!estimate_segments} but keeps every sample, for tail analysis
    (checkpointing narrows the makespan distribution, not only its
    mean — see the [tail_latency] example). *)

val quantile : distribution -> float -> float
(** [quantile d q] with q in [0, 1]. *)

val run_segments_on_trace :
  downtime:float -> trace:Ckpt_failures.Trace.t -> Sim_run.segment list -> float
(** One deterministic execution against a recorded trace. *)

val estimate_chain_policy_on_logs :
  downtime:float ->
  initial_recovery:float ->
  logs:Ckpt_failures.Trace.t list ->
  decide:(Sim_run.chain_context -> bool) ->
  Ckpt_dag.Task.t array ->
  estimate
(** One execution per recorded trace (e.g. one per synthetic cluster-log
    sample); the estimate aggregates across traces. *)

(** ASCII rendering of simulated execution logs — a Gantt-style strip
    showing work, checkpoints, downtimes and recoveries, for debugging
    failure scenarios and for teaching the model:

    {v
    t=0                                                      t=35.6
    |=====================x..rr=======================CC|====CC|
    v}

    [=] work, [C] checkpoint, [.] downtime, [r] recovery, [x] the
    instant a failure interrupted the current phase. *)

val render : ?width:int -> Sim_run.event list -> string
(** Render the event log (from {!Sim_run.run_segments_traced}) to a
    fixed [width] (default 100 columns). Returns a short multi-line
    string including the time scale and a legend. *)

val summary : Sim_run.event list -> string
(** One line per event, exact times — the verbose companion of
    {!render}. *)

(* Persistent team of worker domains for deterministic data-parallel
   sweeps (see the mli for the determinism contract). The team exists so
   DP solvers that launch many short parallel rounds per solve — one per
   DP row, say — pay Domain.spawn once per team, not once per round:
   workers park on a condition variable between rounds and are woken by
   a generation bump. *)

type t = {
  domains : int;  (* total participants, including the calling domain *)
  mutable workers : unit Domain.t array;  (* the domains-1 spawned ones *)
  mutex : Mutex.t;
  wake : Condition.t;  (* workers park here between rounds *)
  round_done : Condition.t;  (* master parks here while workers drain *)
  mutable generation : int;  (* bumped per round; workers key off it *)
  mutable live : bool;
  mutable job : (int -> unit) option;
  mutable tasks : int;
  next : int Atomic.t;  (* task claim cursor for the current round *)
  cancelled : bool Atomic.t;  (* a task raised: stop claiming *)
  mutable failure : exn option;  (* first exception, re-raised by run *)
  mutable finished : int;  (* workers done with the current round *)
}

let default_domains () = Stdlib.min 8 (Domain.recommended_domain_count ())
let size t = t.domains

(* Claim-execute loop shared by master and workers. The claim order is
   racy by design; determinism comes from tasks writing disjoint state
   (the contract in the mli), never from claim order. *)
let claim_loop t fn tasks =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= tasks || Atomic.get t.cancelled then continue := false
    else
      match fn i with
      | () -> ()
      | exception e ->
          Atomic.set t.cancelled true;
          Mutex.lock t.mutex;
          (match t.failure with None -> t.failure <- Some e | Some _ -> ());
          Mutex.unlock t.mutex;
          continue := false
  done

let rec worker_loop t last_gen =
  Mutex.lock t.mutex;
  while t.live && t.generation = last_gen do
    Condition.wait t.wake t.mutex
  done;
  let live = t.live in
  let gen = t.generation in
  let job = t.job in
  let tasks = t.tasks in
  Mutex.unlock t.mutex;
  if live then begin
    (match job with Some fn -> claim_loop t fn tasks | None -> ());
    Mutex.lock t.mutex;
    t.finished <- t.finished + 1;
    if t.finished = Array.length t.workers then Condition.broadcast t.round_done;
    Mutex.unlock t.mutex;
    worker_loop t gen
  end

let create ?domains () =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Domain_team.create: domains must be >= 1";
  let t =
    {
      domains;
      workers = [||];
      mutex = Mutex.create ();
      wake = Condition.create ();
      round_done = Condition.create ();
      generation = 0;
      live = true;
      job = None;
      tasks = 0;
      next = Atomic.make 0;
      cancelled = Atomic.make false;
      failure = None;
      finished = 0;
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let run t ~tasks fn =
  if tasks < 0 then invalid_arg "Domain_team.run: negative task count";
  if tasks > 0 then begin
    Mutex.lock t.mutex;
    if not t.live then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_team.run: team already shut down"
    end;
    t.job <- Some fn;
    t.tasks <- tasks;
    t.failure <- None;
    t.finished <- 0;
    Atomic.set t.next 0;
    Atomic.set t.cancelled false;
    t.generation <- t.generation + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* The master participates: with domains = 1 this is the whole
       round and the code path is purely sequential. *)
    claim_loop t fn tasks;
    Mutex.lock t.mutex;
    while t.finished < Array.length t.workers do
      Condition.wait t.round_done t.mutex
    done;
    t.job <- None;
    let failure = t.failure in
    Mutex.unlock t.mutex;
    match failure with None -> () | Some e -> raise e
  end

let shutdown t =
  Mutex.lock t.mutex;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  if was_live then begin
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_team ?domains fn =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> fn t)

module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford
module Failure_stream = Ckpt_failures.Failure_stream
module Trace = Ckpt_failures.Trace

type estimate = {
  mean : float;
  stddev : float;
  std_error : float;
  runs : int;
  ci99 : float * float;
  min : float;
  max : float;
}

let contains (lo, hi) x = lo <= x && x <= hi

let pp_estimate fmt e =
  let lo, hi = e.ci99 in
  Format.fprintf fmt "%.6g ± %.2g (99%% CI [%.6g, %.6g], n=%d)" e.mean
    (2.576 *. e.std_error) lo hi e.runs

type failure_model =
  | Poisson_rate of float
  | Platform of Ckpt_failures.Platform.t
  | Platform_rejuvenating of Ckpt_failures.Platform.t

let stream_of_model model rng =
  match model with
  | Poisson_rate rate -> Failure_stream.poisson ~rate rng
  | Platform platform -> Failure_stream.of_platform platform rng
  | Platform_rejuvenating platform ->
      Failure_stream.of_platform ~rejuvenation:Failure_stream.All_processors platform rng

let estimate_of_welford acc =
  {
    mean = Welford.mean acc;
    stddev = Welford.stddev acc;
    std_error = Welford.std_error acc;
    runs = Welford.count acc;
    ci99 = Welford.confidence_interval acc ~level:0.99;
    min = Welford.min acc;
    max = Welford.max acc;
  }

let replicate ~runs ~rng run_once =
  if runs <= 0 then invalid_arg "Monte_carlo: runs must be positive";
  let acc = Welford.create () in
  for run = 0 to runs - 1 do
    let run_rng = Rng.substream rng (Printf.sprintf "run-%d" run) in
    Welford.add acc (run_once run_rng)
  done;
  estimate_of_welford acc

let estimate_segments ~model ~downtime ~runs ~rng segments =
  replicate ~runs ~rng (fun run_rng ->
      let stream = stream_of_model model run_rng in
      Sim_run.run_segments ~downtime
        ~next_failure:(Failure_stream.next_after stream)
        segments)

let estimate_chain_policy ~model ~downtime ~initial_recovery ~runs ~rng ~decide tasks =
  replicate ~runs ~rng (fun run_rng ->
      let stream = stream_of_model model run_rng in
      Sim_run.run_chain_policy ~initial_recovery ~downtime ~decide
        ~next_failure:(Failure_stream.next_after stream)
        tasks)

let estimate_segments_parallel ?domains ~model ~downtime ~runs ~rng segments =
  if runs <= 0 then invalid_arg "Monte_carlo: runs must be positive";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Monte_carlo.estimate_segments_parallel: domains must be >= 1"
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ())
  in
  let domains = Stdlib.min domains runs in
  let seed = Rng.seed_of rng in
  let worker d =
    (* Each domain derives its runs' substreams from the shared seed, so
       the union over domains is exactly the sequential sample set. *)
    let root = Rng.create ~seed in
    let acc = Welford.create () in
    let run = ref d in
    while !run < runs do
      let run_rng = Rng.substream root (Printf.sprintf "run-%d" !run) in
      let stream = stream_of_model model run_rng in
      Welford.add acc
        (Sim_run.run_segments ~downtime
           ~next_failure:(Failure_stream.next_after stream)
           segments);
      run := !run + domains
    done;
    acc
  in
  let handles = List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  let local = worker 0 in
  let merged = List.fold_left (fun acc h -> Welford.merge acc (Domain.join h)) local handles in
  estimate_of_welford merged

type distribution = { samples : float array; estimate : estimate }

let collect_segments ~model ~downtime ~runs ~rng segments =
  if runs <= 0 then invalid_arg "Monte_carlo.collect_segments: runs must be positive";
  let acc = Welford.create () in
  let samples =
    Array.init runs (fun run ->
        let run_rng = Rng.substream rng (Printf.sprintf "run-%d" run) in
        let stream = stream_of_model model run_rng in
        let makespan =
          Sim_run.run_segments ~downtime
            ~next_failure:(Failure_stream.next_after stream)
            segments
        in
        Welford.add acc makespan;
        makespan)
  in
  Array.sort compare samples;
  { samples; estimate = estimate_of_welford acc }

let quantile d q = Ckpt_stats.Descriptive.quantile d.samples q

let run_segments_on_trace ~downtime ~trace segments =
  let stream = Trace.to_stream trace in
  Sim_run.run_segments ~downtime ~next_failure:(Failure_stream.next_after stream) segments

let estimate_chain_policy_on_logs ~downtime ~initial_recovery ~logs ~decide tasks =
  if logs = [] then invalid_arg "Monte_carlo.estimate_chain_policy_on_logs: no traces";
  let acc = Welford.create () in
  List.iter
    (fun trace ->
      let stream = Trace.to_stream trace in
      let makespan =
        Sim_run.run_chain_policy ~initial_recovery ~downtime ~decide
          ~next_failure:(Failure_stream.next_after stream)
          tasks
      in
      Welford.add acc makespan)
    logs;
  estimate_of_welford acc

module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford
module Failure_stream = Ckpt_failures.Failure_stream
module Trace = Ckpt_failures.Trace
module Span = Ckpt_obs.Span

type estimate = {
  mean : float;
  stddev : float;
  std_error : float;
  runs : int;
  ci99 : float * float;
  min : float;
  max : float;
}

let contains (lo, hi) x = lo <= x && x <= hi

let pp_estimate fmt e =
  let lo, hi = e.ci99 in
  Format.fprintf fmt "%.6g ± %.2g (99%% CI [%.6g, %.6g], n=%d)" e.mean
    (2.576 *. e.std_error) lo hi e.runs

type failure_model =
  | Poisson_rate of float
  | Platform of Ckpt_failures.Platform.t
  | Platform_rejuvenating of Ckpt_failures.Platform.t

let stream_of_model model rng =
  match model with
  | Poisson_rate rate -> Failure_stream.poisson ~rate rng
  | Platform platform -> Failure_stream.of_platform platform rng
  | Platform_rejuvenating platform ->
      Failure_stream.of_platform ~rejuvenation:Failure_stream.All_processors platform rng

let estimate_of_welford acc =
  {
    mean = Welford.mean acc;
    stddev = Welford.stddev acc;
    std_error = Welford.std_error acc;
    runs = Welford.count acc;
    ci99 = Welford.confidence_interval acc ~level:0.99;
    min = Welford.min acc;
    max = Welford.max acc;
  }

(* All estimators funnel here: fixed-runs or adaptive campaigns, both
   executed by the deterministic domain pool. [runs] is the campaign
   size (fixed mode) or the initial round (adaptive mode). *)
let replicate ?domains ?target_ci ?max_runs ~runs ~rng sample =
  if runs <= 0 then invalid_arg "Monte_carlo: runs must be positive";
  let seed = Rng.seed_of rng in
  let acc =
    Span.with_ ~name:"mc.campaign"
      ~args:
        [ ("runs", string_of_int runs);
          ("adaptive", match target_ci with Some _ -> "true" | None -> "false") ]
      (fun () ->
        match target_ci with
        | None -> Parallel_exec.estimate ?domains ~runs ~seed sample
        | Some target_ci ->
            let max_runs = match max_runs with Some m -> m | None -> runs * 64 in
            Parallel_exec.estimate_adaptive ?domains ~runs ~max_runs ~target_ci ~seed
              sample)
  in
  estimate_of_welford acc

let segments_sample ~model ~downtime segments _run run_rng =
  let stream = stream_of_model model run_rng in
  Sim_run.run_segments ~downtime
    ~next_failure:(Failure_stream.next_after stream)
    segments

let estimate_segments ?domains ?target_ci ?max_runs ~model ~downtime ~runs ~rng segments =
  replicate ?domains ?target_ci ?max_runs ~runs ~rng
    (segments_sample ~model ~downtime segments)

let estimate_segments_parallel ?domains ~model ~downtime ~runs ~rng segments =
  estimate_segments ?domains ~model ~downtime ~runs ~rng segments

let estimate_chain_policy ?domains ?target_ci ?max_runs ~model ~downtime
    ~initial_recovery ~runs ~rng ~decide tasks =
  replicate ?domains ?target_ci ?max_runs ~runs ~rng (fun _run run_rng ->
      let stream = stream_of_model model run_rng in
      Sim_run.run_chain_policy ~initial_recovery ~downtime ~decide
        ~next_failure:(Failure_stream.next_after stream)
        tasks)

type distribution = { samples : float array; estimate : estimate }

let collect_segments ?domains ~model ~downtime ~runs ~rng segments =
  if runs <= 0 then invalid_arg "Monte_carlo.collect_segments: runs must be positive";
  let samples, acc =
    Parallel_exec.collect ?domains ~runs ~seed:(Rng.seed_of rng)
      (segments_sample ~model ~downtime segments)
  in
  Array.sort Float.compare samples;
  { samples; estimate = estimate_of_welford acc }

let quantile d q = Ckpt_stats.Descriptive.quantile d.samples q

let run_segments_on_trace ~downtime ~trace segments =
  let stream = Trace.to_stream trace in
  Sim_run.run_segments ~downtime ~next_failure:(Failure_stream.next_after stream) segments

let estimate_chain_policy_on_logs ?domains ~downtime ~initial_recovery ~logs ~decide tasks =
  if logs = [] then invalid_arg "Monte_carlo.estimate_chain_policy_on_logs: no traces";
  let traces = Array.of_list logs in
  (* Replay is deterministic per trace; the pool's substreams are unused. *)
  let acc =
    Parallel_exec.estimate ?domains ~runs:(Array.length traces) ~seed:0L
      (fun run _rng ->
        let stream = Trace.to_stream traces.(run) in
        Sim_run.run_chain_policy ~initial_recovery ~downtime ~decide
          ~next_failure:(Failure_stream.next_after stream)
          tasks)
  in
  estimate_of_welford acc

let phase_char (phase : Sim_run.phase) =
  match phase with
  | Sim_run.Work_phase -> '='
  | Sim_run.Checkpoint_phase -> 'C'
  | Sim_run.Downtime_phase -> '.'
  | Sim_run.Recovery_phase -> 'r'

let phase_name (phase : Sim_run.phase) =
  match phase with
  | Sim_run.Work_phase -> "work"
  | Sim_run.Checkpoint_phase -> "checkpoint"
  | Sim_run.Downtime_phase -> "downtime"
  | Sim_run.Recovery_phase -> "recovery"

let render ?(width = 100) events =
  if width < 10 then invalid_arg "Timeline.render: width too small";
  match events with
  | [] -> "(empty run)\n"
  | _ ->
      let horizon =
        List.fold_left (fun acc (e : Sim_run.event) -> Float.max acc e.Sim_run.finish) 0.0
          events
      in
      let horizon = if horizon <= 0.0 then 1.0 else horizon in
      let strip = Bytes.make width ' ' in
      let column t =
        Stdlib.min (width - 1) (int_of_float (t /. horizon *. float_of_int width))
      in
      List.iter
        (fun (e : Sim_run.event) ->
          let c0 = column e.Sim_run.start and c1 = column e.Sim_run.finish in
          for c = c0 to c1 do
            Bytes.set strip c (phase_char e.Sim_run.phase)
          done)
        events;
      (* Failure markers last, so later spans cannot overwrite them. *)
      List.iter
        (fun (e : Sim_run.event) ->
          if e.Sim_run.interrupted then Bytes.set strip (column e.Sim_run.finish) 'x')
        events;
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "t=0%*s\n" (width - 3) (Printf.sprintf "t=%.6g" horizon));
      Buffer.add_string buf ("|" ^ Bytes.to_string strip ^ "|\n");
      Buffer.add_string buf "legend: = work, C checkpoint, . downtime, r recovery, x failure\n";
      Buffer.contents buf

let summary events =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : Sim_run.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%10.4f -> %10.4f  segment %d  %-10s%s\n" e.Sim_run.start
           e.Sim_run.finish e.Sim_run.segment (phase_name e.Sim_run.phase)
           (if e.Sim_run.interrupted then "  [interrupted by failure]" else "")))
    events;
  Buffer.contents buf

(** Persistent worker-domain team for deterministic data-parallel
    sweeps.

    {!Parallel_exec} spawns a fresh set of domains per Monte-Carlo run;
    that is the right shape for one long round, but DP solvers launch
    {e many short rounds per solve} (one per DP row or anti-diagonal),
    where per-round [Domain.spawn] would dominate. A team spawns its
    workers once; between rounds they park on a condition variable and
    are woken by a generation bump, so a round costs two mutex
    handshakes rather than thread creation.

    {1 Determinism contract}

    [run] hands out task indices [0..tasks-1] through an atomic cursor;
    {e which} domain executes a task, and in what order tasks complete,
    is scheduling-dependent. Results are bit-identical for any domain
    count if and only if the caller obeys the same contract as
    {!Parallel_exec}'s batch grid:

    - each task writes only state owned by its index (disjoint slots in
      a preallocated array), and
    - the caller merges those slots {e in task order} after [run]
      returns.

    Under that contract the observable result is a pure function of the
    task decomposition — which the caller must keep independent of the
    domain count (fixed chunk grids, never [tasks / domains]-sized
    chunks). *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns [domains − 1] worker domains (the
    caller is the remaining participant). Default:
    [min 8 (Domain.recommended_domain_count ())], like
    {!Parallel_exec}. [domains = 1] creates a team with no workers
    whose [run] is purely sequential. Raises [Invalid_argument] if
    [domains < 1]. *)

val size : t -> int
(** Total participants including the calling domain. *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks fn] executes [fn i] once for every [i] in
    [0..tasks-1], work-stealing across the team; the calling domain
    participates. Returns when every task has run. If a task raises,
    remaining unclaimed tasks are abandoned (already-claimed ones
    finish), and the first exception recorded is re-raised here after
    the round drains — the team stays usable. Rounds do not overlap:
    [run] is not reentrant and must always be called from the same
    (owning) domain. Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Wake and join the workers. Idempotent. The team cannot be used
    afterwards. *)

val with_team : ?domains:int -> (t -> 'a) -> 'a
(** [with_team fn] runs [fn] with a fresh team and guarantees
    {!shutdown} on all exits. *)

val default_domains : unit -> int
(** The default team size ([min 8 (Domain.recommended_domain_count ())]). *)

(* Chunked domain pool for Monte-Carlo replication campaigns.

   Design constraints, in priority order:

   1. Bit-identical estimates for any domain count. The run indices are
      partitioned into fixed-size batches laid on an absolute grid; each
      batch is reduced sequentially into its own Welford accumulator and
      the batch accumulators are merged in batch-index order. Neither
      the batch boundaries nor the merge order depend on how many
      domains processed the batches, so the result of [estimate] is the
      same float-for-float with 1 domain or 8. Run [r] always draws
      from [Rng.substream_run root r] of a root rebuilt from the shared
      seed, so the sample set itself is independent of the layout.
   2. Exception safety. Every spawned domain is joined even when a
      worker raises (e.g. [Sim_run.Livelock]); the first exception
      observed is re-raised after the join, and a cancellation flag
      stops the other workers from claiming further batches.
   3. Load balance. Batches are claimed from a shared atomic counter
      (work stealing), so a domain that drew expensive runs (many
      failures) does not stall the others. *)

module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

let batch_size = 256

let default_domains () = Stdlib.min 8 (Domain.recommended_domain_count ())

let resolve_domains = function
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Parallel_exec: domains must be >= 1"
  | None -> default_domains ()

(* Run [worker 0] on the current domain and [worker 1 .. domains-1] on
   spawned ones; join every spawned domain unconditionally and re-raise
   the first exception observed (in domain order, local worker first). *)
let spawn_join ~domains worker =
  let handles =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let first = ref None in
  let note e = if !first = None then first := Some e in
  (try worker 0 with e -> note e);
  List.iter (fun h -> try Domain.join h with e -> note e) handles;
  match !first with Some e -> raise e | None -> ()

let run_range ?domains ?store ~base ~runs ~seed sample =
  if runs <= 0 then invalid_arg "Parallel_exec: runs must be positive";
  let domains = Stdlib.min (resolve_domains domains) runs in
  let batches = (runs + batch_size - 1) / batch_size in
  let accs = Array.make batches None in
  let next = Atomic.make 0 in
  let cancelled = Atomic.make false in
  let store = match store with None -> fun _ _ -> () | Some f -> f in
  let worker _d =
    (* Each domain rebuilds the root from the shared seed; substream
       derivation reads only the seed, never the generator position. *)
    let root = Rng.create ~seed in
    let rec loop () =
      if not (Atomic.get cancelled) then begin
        let b = Atomic.fetch_and_add next 1 in
        if b < batches then begin
          let lo = base + (b * batch_size) in
          let hi = Stdlib.min (base + runs) (lo + batch_size) in
          let acc = Welford.create () in
          (try
             for r = lo to hi - 1 do
               let x = sample r (Rng.substream_run root r) in
               Welford.add acc x;
               store r x
             done
           with e ->
             Atomic.set cancelled true;
             raise e);
          accs.(b) <- Some acc;
          loop ()
        end
      end
    in
    loop ()
  in
  spawn_join ~domains worker;
  Array.fold_left
    (fun merged slot ->
      match slot with Some acc -> Welford.merge merged acc | None -> merged)
    (Welford.create ()) accs

let estimate ?domains ~runs ~seed sample = run_range ?domains ~base:0 ~runs ~seed sample

let collect ?domains ~runs ~seed sample =
  if runs <= 0 then invalid_arg "Parallel_exec: runs must be positive";
  let samples = Array.make runs 0.0 in
  let acc =
    run_range ?domains ~base:0 ~runs ~seed sample
      ~store:(fun r x -> samples.(r) <- x)
  in
  (samples, acc)

let ci99_half_width acc =
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  (hi -. lo) /. 2.0

let converged ~target_ci acc =
  Welford.count acc >= 2
  && ci99_half_width acc <= target_ci *. Float.abs (Welford.mean acc)

let estimate_adaptive ?domains ~runs ~max_runs ~target_ci ~seed sample =
  if runs <= 0 then invalid_arg "Parallel_exec: runs must be positive";
  if max_runs < runs then invalid_arg "Parallel_exec: max_runs must be >= runs";
  if not (target_ci > 0.0) then invalid_arg "Parallel_exec: target_ci must be positive";
  let acc = ref (run_range ?domains ~base:0 ~runs ~seed sample) in
  while (not (converged ~target_ci !acc)) && Welford.count !acc < max_runs do
    (* Double the campaign each round: the CI half-width shrinks as
       1/sqrt(n), so geometric growth overshoots the target by at most
       sqrt(2) while keeping the number of rounds logarithmic. The
       round boundaries depend only on the (deterministic) estimates,
       never on the domain count, preserving property 1. *)
    let total = Welford.count !acc in
    let extra = Stdlib.min total (max_runs - total) in
    let round = run_range ?domains ~base:total ~runs:extra ~seed sample in
    acc := Welford.merge !acc round
  done;
  !acc

(* Chunked domain pool for Monte-Carlo replication campaigns.

   Design constraints, in priority order:

   1. Bit-identical estimates for any domain count. The run indices are
      partitioned into fixed-size batches laid on an absolute grid; each
      batch is reduced sequentially into its own Welford accumulator and
      the batch accumulators are merged in batch-index order. Neither
      the batch boundaries nor the merge order depend on how many
      domains processed the batches, so the result of [estimate] is the
      same float-for-float with 1 domain or 8. Run [r] always draws
      from [Rng.substream_run root r] of a root rebuilt from the shared
      seed, so the sample set itself is independent of the layout.
   2. Exception safety. Every spawned domain is joined even when a
      worker raises (e.g. [Sim_run.Livelock]); the first exception
      observed is re-raised after the join, and a cancellation flag
      stops the other workers from claiming further batches.
   3. Load balance. Batches are claimed from a shared atomic counter
      (work stealing), so a domain that drew expensive runs (many
      failures) does not stall the others.

   Observability rides on the same batch grid: each batch runs under
   its own Ckpt_obs.Metrics collector, and the batch collectors are
   merged into the caller's collector in batch-index order after the
   join — so even float-summing metrics (sim.lost_work) are
   bit-identical for any domain count, exactly like the estimates.
   Wall-clock pool metrics (spawn/join time, per-domain utilization)
   are tagged Timing and reported separately. *)

module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford
module Metrics = Ckpt_obs.Metrics
module Span = Ckpt_obs.Span
module Clock = Ckpt_obs.Clock

let batch_size = 256

let default_domains () = Stdlib.min 8 (Domain.recommended_domain_count ())

let resolve_domains = function
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Parallel_exec: domains must be >= 1"
  | None -> default_domains ()

let m_runs = Metrics.counter "mc.runs"
let m_batches = Metrics.counter "pool.batches"
let m_rounds = Metrics.counter "mc.adaptive_rounds"
let g_ci = Metrics.gauge "mc.ci_rel_half_width"
let s_spawn = Metrics.sum ~kind:Timing "pool.spawn_s"
let s_join = Metrics.sum ~kind:Timing "pool.join_s"
let s_wall = Metrics.sum ~kind:Timing "pool.wall_s"

(* Run [worker 0] on the current domain and [worker 1 .. domains-1] on
   spawned ones; join every spawned domain unconditionally and re-raise
   the first exception observed (in domain order, local worker first). *)
let spawn_join ~domains worker =
  let t_spawn = Clock.now_ns () in
  let handles =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  Metrics.add s_spawn (Clock.elapsed_s t_spawn);
  let first = ref None in
  let note e = if !first = None then first := Some e in
  (try worker 0 with e -> note e);
  let t_join = Clock.now_ns () in
  List.iter (fun h -> try Domain.join h with e -> note e) handles;
  Metrics.add s_join (Clock.elapsed_s t_join);
  match !first with Some e -> raise e | None -> ()

let run_range ?domains ?store ~base ~runs ~seed sample =
  if runs <= 0 then invalid_arg "Parallel_exec: runs must be positive";
  let domains = Stdlib.min (resolve_domains domains) runs in
  let batches = (runs + batch_size - 1) / batch_size in
  let accs = Array.make batches None in
  (* One metrics collector per batch, merged in batch order below. *)
  let mcols = Array.make batches None in
  let busy_s = Array.make domains 0.0 in
  let wall_s = Array.make domains 0.0 in
  let batches_done = Array.make domains 0 in
  let next = Atomic.make 0 in
  let cancelled = Atomic.make false in
  let store = match store with None -> fun _ _ -> () | Some f -> f in
  let parent = Metrics.current () in
  let t_region = Clock.now_ns () in
  let worker d =
    (* Each domain rebuilds the root from the shared seed; substream
       derivation reads only the seed, never the generator position. *)
    let t_worker = Clock.now_ns () in
    let root = Rng.create ~seed in
    (* Per-domain GC telemetry, sampled at batch boundaries so the
       gc.* Timing metrics attribute allocation to pool work. Sampling
       happens outside the batch collector scope: gc.* rows are
       Timing kind and must never enter the deterministically-merged
       Engine section. *)
    let gc_probe = Ckpt_obs.Gc_telemetry.probe () in
    let rec loop () =
      if not (Atomic.get cancelled) then begin
        let b = Atomic.fetch_and_add next 1 in
        if b < batches then begin
          let lo = base + (b * batch_size) in
          let hi = Stdlib.min (base + runs) (lo + batch_size) in
          let t_batch = Clock.now_ns () in
          let mcol = Metrics.create_collector () in
          Metrics.with_collector mcol (fun () ->
              Span.with_ ~name:"pool.batch"
                ~args:
                  [ ("batch", string_of_int b); ("lo", string_of_int lo);
                    ("hi", string_of_int hi) ]
                (fun () ->
                  let acc = Welford.create () in
                  (try
                     for r = lo to hi - 1 do
                       let x = sample r (Rng.substream_run root r) in
                       Welford.add acc x;
                       store r x
                     done
                   with e ->
                     Atomic.set cancelled true;
                     raise e);
                  Metrics.incr ~by:(hi - lo) m_runs;
                  Metrics.incr m_batches;
                  accs.(b) <- Some acc));
          mcols.(b) <- Some mcol;
          Ckpt_obs.Gc_telemetry.sample gc_probe;
          busy_s.(d) <- busy_s.(d) +. Clock.elapsed_s t_batch;
          batches_done.(d) <- batches_done.(d) + 1;
          loop ()
        end
      end
    in
    Fun.protect ~finally:(fun () -> wall_s.(d) <- Clock.elapsed_s t_worker) loop
  in
  Span.with_ ~name:"pool.round"
    ~args:[ ("base", string_of_int base); ("runs", string_of_int runs) ]
    (fun () -> spawn_join ~domains worker);
  (* Deterministic merge: batch collectors in batch-index order, into
     the collector that was current when the campaign started. *)
  Array.iter
    (function Some mcol -> Metrics.merge_into ~dst:parent mcol | None -> ())
    mcols;
  let region_s = Clock.elapsed_s t_region in
  Metrics.add s_wall region_s;
  for d = 0 to domains - 1 do
    let gauge suffix = Metrics.gauge ~kind:Timing (Printf.sprintf "pool.domain%d.%s" d suffix) in
    Metrics.set (gauge "batches") (float_of_int batches_done.(d));
    Metrics.set (gauge "busy_s") busy_s.(d);
    Metrics.set (gauge "queue_wait_s") (Float.max 0.0 (wall_s.(d) -. busy_s.(d)));
    Metrics.set (gauge "utilization_pct")
      (if region_s > 0.0 then 100.0 *. busy_s.(d) /. region_s else 0.0)
  done;
  Array.fold_left
    (fun merged slot ->
      match slot with Some acc -> Welford.merge merged acc | None -> merged)
    (Welford.create ()) accs

let estimate ?domains ~runs ~seed sample = run_range ?domains ~base:0 ~runs ~seed sample

let collect ?domains ~runs ~seed sample =
  if runs <= 0 then invalid_arg "Parallel_exec: runs must be positive";
  let samples = Array.make runs 0.0 in
  let acc =
    run_range ?domains ~base:0 ~runs ~seed sample
      ~store:(fun r x -> samples.(r) <- x)
  in
  (samples, acc)

let ci99_half_width acc =
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  (hi -. lo) /. 2.0

let converged ~target_ci acc =
  Welford.count acc >= 2
  && ci99_half_width acc <= target_ci *. Float.abs (Welford.mean acc)

(* Per-round CI trajectory: a deterministic gauge (last value wins) plus
   an instant trace marker, so an adaptive campaign can be replayed from
   its artifacts. *)
let report_ci acc =
  if Welford.count acc >= 2 && not (Float.equal (Welford.mean acc) 0.0) then begin
    let rel = ci99_half_width acc /. Float.abs (Welford.mean acc) in
    Metrics.set g_ci rel;
    Span.instant "mc.ci"
      ~args:
        [ ("rel_half_width", Printf.sprintf "%.6g" rel);
          ("n", string_of_int (Welford.count acc)) ]
  end

let estimate_adaptive ?domains ~runs ~max_runs ~target_ci ~seed sample =
  if runs <= 0 then invalid_arg "Parallel_exec: runs must be positive";
  if max_runs < runs then invalid_arg "Parallel_exec: max_runs must be >= runs";
  if not (target_ci > 0.0) then invalid_arg "Parallel_exec: target_ci must be positive";
  Metrics.incr m_rounds;
  let acc = ref (run_range ?domains ~base:0 ~runs ~seed sample) in
  report_ci !acc;
  while (not (converged ~target_ci !acc)) && Welford.count !acc < max_runs do
    (* Double the campaign each round: the CI half-width shrinks as
       1/sqrt(n), so geometric growth overshoots the target by at most
       sqrt(2) while keeping the number of rounds logarithmic. The
       round boundaries depend only on the (deterministic) estimates,
       never on the domain count, preserving property 1. *)
    let total = Welford.count !acc in
    let extra = Stdlib.min total (max_runs - total) in
    Metrics.incr m_rounds;
    let round = run_range ?domains ~base:total ~runs:extra ~seed sample in
    acc := Welford.merge !acc round;
    report_ci !acc
  done;
  !acc

(** Single-run execution of a checkpointed workload against a failure
    source, implementing exactly the Section 2 semantics:

    - work executes, then (optionally) a checkpoint is taken;
    - a failure during work or checkpoint loses the progress since the
      last checkpoint and triggers a downtime [D] followed by a recovery
      of the appropriate duration;
    - failures may strike during recovery (restarting downtime +
      recovery) but not during downtime;
    - after a successful recovery, the interrupted portion restarts from
      the last checkpointed state.

    {1 Failure queries}

    Both executors query [next_failure] once per {e phase} (work,
    checkpoint, and each recovery attempt), with non-decreasing times —
    so a phase-aware injector ({!Ckpt_failures.Injector}) observes the
    phase about to run via the [on_phase] hook before each query.
    [next_failure t] must return a non-NaN time strictly later than [t]
    (NaN raises [Invalid_argument]: under float comparison NaN would
    silently read as "no failure ever").

    {1 Loss accounting}

    Two loss metrics are kept, with consistent attribution across both
    executors:
    - [sim.lost_work]: productive {e work} that must be re-executed — the
      work elapsed in an interrupted work phase, or the whole
      work-since-last-checkpoint when the checkpoint persisting it is
      interrupted. Checkpoint and recovery time never count.
    - [sim.lost_time]: wall-clock wiped out by failures — the elapsed
      portion of every interrupted work/checkpoint/recovery window,
      measured from the last commit point. Downtime is excluded (it is
      [sim.failures * D] by construction). *)

type segment = {
  work : float;  (** Total work executed in the segment (>= 0). *)
  checkpoint : float;  (** Checkpoint cost C at segment end (>= 0). *)
  recovery : float;
      (** Recovery cost R to restore the state at the {e start} of this
          segment (the checkpoint taken at the end of the previous
          segment, or the initial-state recovery cost for the first
          segment). *)
}

val segment : work:float -> checkpoint:float -> recovery:float -> segment
(** Validated constructor; rejects negative and NaN durations. *)

exception Livelock of int
(** Raised when a single run absorbs more failures than its
    [max_failures] bound: the workload can never finish (e.g. a
    deterministic failure period shorter than a recovery), or the bound
    was set too low. Carries the failure count reached. *)

type run_stats = {
  makespan : float;
  failures : int;  (** Failures endured (work, checkpoint and recovery phases). *)
}

type phase =
  | Work_phase
  | Checkpoint_phase
  | Downtime_phase
  | Recovery_phase

type event = {
  phase : phase;
  segment : int;
      (** 0-based index of the segment (or chain task) being executed;
          downtime/recovery events carry the index execution resumes
          with. *)
  start : float;
  finish : float;  (** Truncated at the failure instant when interrupted. *)
  interrupted : bool;
}

val run_segments_emitting :
  ?max_failures:int ->
  ?on_phase:(phase -> float -> unit) ->
  emit:(event -> unit) ->
  downtime:float -> next_failure:(float -> float) -> segment list -> run_stats
(** The fully-instrumented segment executor. [emit] observes every
    completed or interrupted phase in chronological order (the monitor
    hook of the scenario harness); [on_phase] is called with each phase
    about to execute and its start time, {e before} that phase's failure
    query — zero-length phases are skipped entirely (no hook, no query,
    no event). Raises {!Livelock} after [max_failures] failures
    (default 10,000,000). *)

val run_segments :
  ?max_failures:int ->
  downtime:float -> next_failure:(float -> float) -> segment list -> float
(** [run_segments ~downtime ~next_failure segments] executes the
    segments in order starting at time 0 and returns the makespan.
    [next_failure t] must return the absolute time of the first failure
    strictly after [t] (see {!Ckpt_failures.Failure_stream.next_after});
    queries are made with non-decreasing [t]. *)

val run_segments_traced :
  ?max_failures:int ->
  downtime:float -> next_failure:(float -> float) -> segment list ->
  run_stats * event list
(** {!run_segments_stats} plus the full event log of the run, in
    chronological order — the raw material for the ASCII timeline
    ({!Timeline}) and for failure-injection debugging. *)

val run_segments_stats :
  ?max_failures:int ->
  ?on_phase:(phase -> float -> unit) ->
  downtime:float -> next_failure:(float -> float) -> segment list -> run_stats
(** {!run_segments} plus the failure count, for validating the expected
    failure-count formula ({!Ckpt_core.Expected_time.expected_failures}). *)

type chain_context = {
  task_index : int;  (** Index of the task that just completed. *)
  last_checkpoint : int;
      (** Index of the last successfully checkpointed task, or -1 if no
          checkpoint has completed yet. *)
  now : float;  (** Current absolute simulated time. *)
  since_last_failure : float;
      (** Time elapsed since the last failure (or since 0 if none),
          i.e. the processor-age information a non-memoryless policy
          needs (Section 6). *)
  work_since_checkpoint : float;
      (** Work accumulated since the last successful checkpoint,
          including the task that just completed. *)
}

val run_chain_policy_stats :
  ?max_failures:int ->
  ?emit:(event -> unit) ->
  ?on_phase:(phase -> float -> unit) ->
  initial_recovery:float ->
  downtime:float ->
  decide:(chain_context -> bool) ->
  next_failure:(float -> float) ->
  Ckpt_dag.Task.t array ->
  run_stats
(** Execute a linear chain task by task; after each completed task, the
    [decide] callback chooses whether to checkpoint (at that task's
    [checkpoint_cost]). A failure rolls back to the last checkpointed
    task (recovery at that task's [recovery_cost], or
    [initial_recovery] when no checkpoint was taken yet) and the tasks
    after it re-execute, [decide] being consulted anew. A checkpoint is
    always taken after the final task, closing the run, as in the
    paper's model. [emit] and [on_phase] observe the run exactly as in
    {!run_segments_emitting}, with [event.segment] carrying the task
    index. Raises {!Livelock} after [max_failures] failures
    (default 10,000,000). *)

val run_chain_policy :
  ?max_failures:int ->
  ?emit:(event -> unit) ->
  ?on_phase:(phase -> float -> unit) ->
  initial_recovery:float ->
  downtime:float ->
  decide:(chain_context -> bool) ->
  next_failure:(float -> float) ->
  Ckpt_dag.Task.t array ->
  float
(** {!run_chain_policy_stats} returning only the makespan. *)

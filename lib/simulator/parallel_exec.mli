(** Deterministic multicore execution of Monte-Carlo replication
    campaigns (OCaml 5 domains).

    A campaign of [runs] replications is partitioned into fixed-size
    batches on an absolute run-index grid. A pool of domains claims
    batches from a shared queue; run [r] draws its randomness from
    {!Ckpt_prng.Rng.substream_run}[ root r] where [root] is rebuilt from
    the shared [seed], and each batch is reduced into its own
    {!Ckpt_stats.Welford} accumulator. Batch accumulators are merged in
    batch-index order.

    {b Determinism guarantee}: neither the sample set nor the reduction
    tree depends on the number of domains, so every function below
    returns bit-identical results for any [domains >= 1] given the same
    [seed] and [runs] — the property [test/test_parallel.ml] checks for
    domain counts 1, 2, 3 and 7.

    {b Exception safety}: if any replication raises (e.g.
    {!Sim_run.Livelock}), the remaining workers stop claiming batches,
    every spawned domain is joined, and the first exception observed is
    re-raised — no domain is ever leaked.

    The [sample] callback runs concurrently on several domains: it must
    not mutate shared state (closing over per-call state derived from
    the provided {!Ckpt_prng.Rng.t} is the intended style). *)

val batch_size : int
(** Runs per batch (256). Part of the determinism contract: changing it
    changes the reduction tree, hence the low-order bits of estimates. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count ())]: the pool size used
    when [?domains] is omitted. *)

val estimate :
  ?domains:int ->
  runs:int ->
  seed:int64 ->
  (int -> Ckpt_prng.Rng.t -> float) ->
  Ckpt_stats.Welford.t
(** [estimate ~runs ~seed sample] reduces [sample r rng_r] for
    [r = 0 .. runs-1] into one accumulator. Raises [Invalid_argument]
    if [runs <= 0] or [domains < 1]. *)

val collect :
  ?domains:int ->
  runs:int ->
  seed:int64 ->
  (int -> Ckpt_prng.Rng.t -> float) ->
  float array * Ckpt_stats.Welford.t
(** Like {!estimate} but also returns the samples, indexed by run (not
    sorted); each slot is written by exactly one domain. *)

val estimate_adaptive :
  ?domains:int ->
  runs:int ->
  max_runs:int ->
  target_ci:float ->
  seed:int64 ->
  (int -> Ckpt_prng.Rng.t -> float) ->
  Ckpt_stats.Welford.t
(** [estimate_adaptive ~runs ~max_runs ~target_ci ~seed sample] starts
    with [runs] replications and doubles the campaign until the 99%
    normal-approximation CI half-width falls to [target_ci *. |mean|]
    (relative target) or the hard cap [max_runs] is reached, whichever
    comes first. Extending a campaign reuses the same per-run
    substreams, so the first [n] samples of a longer campaign are
    exactly the samples of a shorter one; the convergence decisions
    depend only on (deterministic) estimates and the final accumulator
    is bit-identical for any domain count. A mean of exactly 0 never
    meets a relative target and runs to the cap. Raises
    [Invalid_argument] if [runs <= 0], [max_runs < runs] or
    [target_ci <= 0]. *)

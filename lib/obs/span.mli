(** Monotonic-clock timing scopes with parent/child nesting.

    Spans are disabled by default: {!with_} then just runs its callback
    (one atomic read of overhead), so the simulator can be instrumented
    unconditionally. CLI tools enable recording when the user asks for a
    trace. Each domain records into its own buffer (domain-local
    storage, no locks); {!records} merges the buffers sorted by start
    time.

    Three exports: a human summary table aggregated by span name, JSON
    Lines (one record per line), and the Chrome [trace_event] format
    that [about://tracing] and {{:https://ui.perfetto.dev}Perfetto}
    load directly — spans appear as one track per domain, nested by
    depth. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

type span_kind = Complete | Instant

type record = {
  name : string;
  span_kind : span_kind;
  start_ns : int64;  (** Monotonic stamp ({!Clock.now_ns}). *)
  dur_ns : int64;  (** 0 for [Instant]. *)
  tid : int;  (** Recording domain's id. *)
  depth : int;  (** Nesting depth within that domain at entry. *)
  args : (string * string) list;
}

val with_ : ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] times [f ()] as a span. Nesting depth is tracked
    per domain and restored even when [f] raises; a span closed by an
    exception carries an extra [("raised", "true")] argument and the
    exception is re-raised. When disabled, runs [f] with no recording.

    This is the only supported way to open a span in library code: the
    [span-scope-safety] lint rule flags raw {!enter}/{!exit} pairs,
    which leak the scope when the code between them raises. *)

val enter : ?args:(string * string) list -> string -> unit
(** Low-level: open a span on the current domain. Only for scopes that
    cannot be expressed as a callback (e.g. bracketing an event loop
    iteration from C stubs); everything else must use {!with_} — see
    the lint note there. Every [enter] needs a matching {!exit} on the
    same domain, including on exception paths. *)

val exit : ?args:(string * string) list -> unit -> unit
(** Low-level: close the innermost open span ([args] are appended to
    the entry args). A call with no span open records nothing. Same
    restrictions as {!enter}. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker (e.g. one adaptive-sampling CI report). *)

val records : unit -> record list
(** All recorded spans, sorted by start time (then domain, then depth).
    Call at quiescent points only. *)

val reset : unit -> unit

val summary_table : record list -> string
(** Aggregate by name: calls, total/mean/max milliseconds, sorted by
    total descending. *)

val to_jsonl : record list -> string
(** One JSON object per line. *)

val to_chrome : record list -> string
(** Chrome [trace_event] JSON: complete ("ph":"X") and instant
    ("ph":"i") events, timestamps in microseconds rebased to the
    earliest record. Deterministic given the records. *)

(** Process-wide metrics: counters, float sums, gauges and fixed-bucket
    histograms, sharded so the hot path never takes a lock.

    {1 Sharding and determinism}

    Every emission ([incr], [add], [set], [observe]) writes to the
    {e current collector} of the calling domain, looked up through
    domain-local storage — no mutex, no atomic contention. By default
    each domain owns one lazily-created shard; an executor can override
    the current collector for a scope with {!with_collector} and merge
    the scoped collectors explicitly with {!merge_into}.

    This is how the parallel Monte-Carlo pool keeps metrics
    bit-identical for any domain count, mirroring its batch-grid Welford
    reduction: each work batch gets its own collector, and the batch
    collectors are merged in batch-index order after the join —
    float-summing metrics therefore accumulate in an order that depends
    only on the (fixed) batch grid, never on which domain ran which
    batch. Integer metrics are deterministic under any merge order;
    float sums are deterministic as long as they are emitted inside
    batch-scoped collectors (or from a single domain).

    {1 Metric kinds}

    Metrics are registered as [Engine] (deterministic — same value for
    the same seed whatever the domain count or machine load) or [Timing]
    (wall-clock derived — varies run to run). Reports keep the two
    groups separate so deterministic output can be compared exactly.

    {!snapshot} and {!reset} are meant for quiescent moments (campaign
    boundaries, CLI exit): they walk every live shard. *)

type kind = Engine | Timing

(** {1 Registration}

    Registration is idempotent: registering the same name with the same
    class and kind returns the existing handle; a mismatch raises
    [Invalid_argument]. Registration takes a mutex — do it at module
    initialisation or campaign setup, not per event. *)

type counter

val counter : ?kind:kind -> string -> counter
(** Monotonically increasing integer. Default kind: [Engine]. *)

type sum

val sum : ?kind:kind -> string -> sum
(** Float accumulator (e.g. simulated time lost to re-execution). *)

type gauge

val gauge : ?kind:kind -> string -> gauge
(** Last-written float value (e.g. utilization %, CI width). *)

type histogram

val histogram : ?kind:kind -> string -> buckets:float array -> histogram
(** Fixed-bucket histogram. [buckets] are strictly increasing upper
    bounds: a value [v] lands in the first bucket with [v <= bound], and
    in the implicit [+inf] overflow bucket when above the last bound
    (NaN also overflows). Also tracks the sum and count of observations.
    Raises [Invalid_argument] if [buckets] is empty, non-increasing, or
    contains NaN. *)

(** {1 Emission (hot path, lock-free)} *)

val incr : ?by:int -> counter -> unit
val add : sum -> float -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Scoped collectors} *)

type collector

val create_collector : unit -> collector
(** A fresh, unregistered collector; emissions reach it only through
    {!with_collector}, and its contents only reach reports through
    {!merge_into}. *)

val current : unit -> collector
(** The calling domain's current collector (its default shard unless
    inside {!with_collector}). *)

val with_collector : collector -> (unit -> 'a) -> 'a
(** Route this domain's emissions to the given collector for the scope
    of the callback (exception-safe). *)

val merge_into : dst:collector -> collector -> unit
(** Fold a collector into [dst]: counters and sums add, gauges take the
    source value when set, histogram buckets add. *)

(** {1 Snapshots and reports} *)

type histogram_data = {
  bounds : float array;
  counts : int array;  (** One slot per bound plus the overflow slot. *)
  total : float;  (** Sum of observed values. *)
  observations : int;
}

type value =
  | Counter of int
  | Sum of float
  | Gauge of float option  (** [None] when never set. *)
  | Histogram of histogram_data

type snapshot = (string * kind * value) list
(** Sorted by metric name; includes every registered metric, even ones
    never emitted to. *)

val snapshot : unit -> snapshot
(** Merge all live shards (in shard-creation order). Call at quiescent
    points only: emissions racing with a snapshot may or may not be
    included. *)

val reset : unit -> unit
(** Zero every shard — campaign boundaries, so consecutive campaigns
    don't bleed into each other. Registrations are kept. *)

val find : snapshot -> string -> (kind * value) option
(** Typed lookup by metric name — the programmatic counterpart of
    grepping a rendered report (used by the bench subsystem's
    required-keys validation and the test suites). *)

val hit_rates : snapshot -> snapshot
(** The derived rows only: every counter pair [<base>_hits] /
    [<base>_misses] yields a [<base>_hit_rate] gauge —
    [hits / (hits + misses)], or an unset gauge ([Gauge None]) when
    both counters are zero (caches never consulted), so a 0/0 pair
    renders as [n/a] instead of a division artifact. *)

val render_table : snapshot -> string
(** Two plain-text tables: deterministic engine metrics, then timings.
    Counter pairs named [<base>_hits]/[<base>_misses] get a derived
    [<base>_hit_rate] row. *)

val to_json_fields : snapshot -> string
(** The body [metrics:{...},timings:{...}] (keys quoted) without
    enclosing braces, for embedding in a larger JSON object. Keys are
    sorted, so the deterministic part is byte-identical for identical
    snapshots. *)

val to_json : snapshot -> string
(** [to_json_fields] wrapped in braces: an object with the [metrics]
    and [timings] sub-objects. *)

val json_escape : string -> string
(** JSON string-content escaping, shared with the span exporters. *)

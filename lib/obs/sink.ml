let lock = Mutex.create ()

let sinks : (string * (unit -> unit)) list ref =
  ref [] [@@lint.domain_safe "mutex-held: registered and snapshotted under [lock]"]

let register ~name f =
  Mutex.protect lock (fun () ->
      sinks := List.filter (fun (n, _) -> n <> name) !sinks @ [ (name, f) ])

let flush () =
  let fs = Mutex.protect lock (fun () -> !sinks) in
  List.iter (fun (_, f) -> f ()) fs

type metrics_format = Table | Json

let print_metrics fmt () =
  let snapshot = Metrics.snapshot () in
  match fmt with
  | Json -> print_endline (Metrics.to_json snapshot)
  | Table ->
      print_string (Metrics.render_table snapshot);
      let spans = if Span.enabled () then Span.records () else [] in
      if spans <> [] then begin
        print_newline ();
        print_string (Span.summary_table spans)
      end

let install_metrics fmt = register ~name:"metrics" (print_metrics fmt)

let write_trace path () =
  let records = Span.records () in
  let contents =
    if Filename.check_suffix path ".jsonl" then Span.to_jsonl records
    else Span.to_chrome records
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let install_trace path =
  Span.set_enabled true;
  register ~name:"trace" (write_trace path)

type sink = { name : string; run : unit -> unit; mutable flushed : bool }

let lock = Mutex.create ()

let sinks : sink list ref =
  ref [] [@@lint.domain_safe "mutex-held: registered and snapshotted under [lock]"]

let register ~name f =
  Mutex.protect lock (fun () ->
      sinks :=
        List.filter (fun s -> s.name <> name) !sinks
        @ [ { name; run = f; flushed = false } ])

(* Flush is idempotent: each registered sink runs at most once per
   registration. The pending set is claimed under the lock, but the
   sinks themselves run outside it — a sink is free to re-register. *)
let flush () =
  let pending =
    Mutex.protect lock (fun () ->
        let ready = List.filter (fun s -> not s.flushed) !sinks in
        List.iter (fun s -> s.flushed <- true) ready;
        ready)
  in
  List.iter (fun s -> s.run ()) pending

type metrics_format = Table | Json | OpenMetrics

let render_metrics fmt =
  let snapshot = Metrics.snapshot () in
  match fmt with
  | Json -> Metrics.to_json snapshot ^ "\n"
  | OpenMetrics -> Openmetrics.render snapshot
  | Table ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (Metrics.render_table snapshot);
      let spans = if Span.enabled () then Span.records () else [] in
      if spans <> [] then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (Span.summary_table spans)
      end;
      Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let print_metrics ?path fmt () =
  let contents = render_metrics fmt in
  match path with None -> print_string contents | Some path -> write_file path contents

let install_metrics ?path fmt = register ~name:"metrics" (print_metrics ?path fmt)

let write_trace path () =
  let records = Span.records () in
  let contents =
    if Filename.check_suffix path ".jsonl" then Span.to_jsonl records
    else Span.to_chrome records
  in
  write_file path contents

let install_trace path =
  Span.set_enabled true;
  register ~name:"trace" (write_trace path)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type span_kind = Complete | Instant

type record = {
  name : string;
  span_kind : span_kind;
  start_ns : int64;
  dur_ns : int64;
  tid : int;
  depth : int;
  args : (string * string) list;
}

(* Per-domain buffers, registered once in a global list so records
   survive the recording domain's death (the Monte-Carlo pool joins its
   workers after every campaign). *)
type buf = {
  mutable items : record list;
  mutable depth : int;
  (* Stack of spans opened by [enter] and not yet closed: name, entry
     stamp, entry args. *)
  mutable open_spans : (string * int64 * (string * string) list) list;
}

let buffers_lock = Mutex.create ()

let buffers : buf list ref =
  ref [] [@@lint.domain_safe "mutex-held: registration and draining under buffers_lock"]

let dls_buf : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { items = []; depth = 0; open_spans = [] } in
      Mutex.protect buffers_lock (fun () -> buffers := b :: !buffers);
      b)

let self_tid () = (Domain.self () :> int)

let instant ?(args = []) name =
  if enabled () then begin
    let b = Domain.DLS.get dls_buf in
    b.items <-
      {
        name;
        span_kind = Instant;
        start_ns = Clock.now_ns ();
        dur_ns = 0L;
        tid = self_tid ();
        depth = b.depth;
        args;
      }
      :: b.items
  end

let enter ?(args = []) name =
  if enabled () then begin
    let b = Domain.DLS.get dls_buf in
    b.open_spans <- (name, Clock.now_ns (), args) :: b.open_spans;
    b.depth <- b.depth + 1
  end

(* Close the innermost open span. Extra [args] are prepended to the
   entry args. A pop with nothing open (spans were enabled mid-scope,
   or the caller is unbalanced) records nothing. Named [leave]
   internally so no bare [exit] expression appears in this module; the
   public alias below keeps the conventional name. *)
let leave ?(args = []) () =
  if enabled () then begin
    let b = Domain.DLS.get dls_buf in
    match b.open_spans with
    | [] -> ()
    | (name, start_ns, entry_args) :: rest ->
        b.open_spans <- rest;
        let depth = b.depth - 1 in
        b.depth <- depth;
        let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
        b.items <-
          {
            name;
            span_kind = Complete;
            start_ns;
            dur_ns;
            tid = self_tid ();
            depth;
            args = args @ entry_args;
          }
          :: b.items
  end

let exit = leave

let with_ ?(args = []) ~name f =
  if not (enabled ()) then f ()
  else begin
    enter ~args name;
    match f () with
    | result ->
        leave ();
        result
    | exception e ->
        leave ~args:[ ("raised", "true") ] ();
        raise e
  end

let records () =
  let bufs = Mutex.protect buffers_lock (fun () -> List.rev !buffers) in
  List.concat_map (fun b -> List.rev b.items) bufs
  |> List.sort (fun a b ->
         match Int64.compare a.start_ns b.start_ns with
         | 0 -> ( match compare a.tid b.tid with 0 -> compare a.depth b.depth | c -> c)
         | c -> c)

let reset () =
  Mutex.protect buffers_lock (fun () ->
      List.iter
        (fun b ->
          b.items <- [];
          b.depth <- 0;
          b.open_spans <- [])
        !buffers)

let summary_table records =
  let by_name : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16 [@@lint.domain_safe "call-local aggregation; never escapes summary_table"]
  in
  List.iter
    (fun r ->
      if r.span_kind = Complete then begin
        let ms = Int64.to_float r.dur_ns /. 1e6 in
        match Hashtbl.find_opt by_name r.name with
        | Some (calls, total, mx) ->
            Stdlib.incr calls;
            total := !total +. ms;
            if ms > !mx then mx := ms
        | None -> Hashtbl.add by_name r.name (ref 1, ref ms, ref ms)
      end)
    records;
  let rows =
    Hashtbl.fold (fun name (calls, total, mx) acc -> (name, !calls, !total, !mx) :: acc)
      by_name []
    |> List.sort (fun (na, _, ta, _) (nb, _, tb, _) ->
           match Float.compare tb ta with 0 -> String.compare na nb | c -> c)
  in
  let t =
    Ckpt_stats.Table.create ~title:"spans — aggregate by name"
      ~columns:
        [ ("span", Ckpt_stats.Table.Left); ("calls", Ckpt_stats.Table.Right);
          ("total ms", Ckpt_stats.Table.Right); ("mean ms", Ckpt_stats.Table.Right);
          ("max ms", Ckpt_stats.Table.Right) ]
  in
  List.iter
    (fun (name, calls, total, mx) ->
      Ckpt_stats.Table.add_row t
        [
          name; string_of_int calls; Printf.sprintf "%.3f" total;
          Printf.sprintf "%.3f" (total /. float_of_int calls); Printf.sprintf "%.3f" mx;
        ])
    rows;
  Ckpt_stats.Table.render t

let json_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v))
         args)
  ^ "}"

let to_jsonl records =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"kind\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"tid\":%d,\"depth\":%d,\"args\":%s}\n"
           (Metrics.json_escape r.name)
           (match r.span_kind with Complete -> "span" | Instant -> "instant")
           r.start_ns r.dur_ns r.tid r.depth (json_args r.args)))
    records;
  Buffer.contents buf

let to_chrome records =
  let base =
    List.fold_left (fun acc r -> Int64.min acc r.start_ns) Int64.max_int records
  in
  let base = if records = [] then 0L else base in
  let us ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3) in
  let event r =
    let ts = us (Int64.sub r.start_ns base) in
    match r.span_kind with
    | Complete ->
        Printf.sprintf
          "{\"name\":\"%s\",\"cat\":\"ckpt\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
          (Metrics.json_escape r.name) r.tid ts (us r.dur_ns) (json_args r.args)
    | Instant ->
        Printf.sprintf
          "{\"name\":\"%s\",\"cat\":\"ckpt\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":%s}"
          (Metrics.json_escape r.name) r.tid ts (json_args r.args)
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
  ^ String.concat "," (List.map event records)
  ^ "]}"

external now_ns : unit -> int64 = "ckpt_obs_monotonic_ns"

let elapsed_s since = Int64.to_float (Int64.sub (now_ns ()) since) *. 1e-9

let time f =
  let start = now_ns () in
  let result = f () in
  (elapsed_s start, result)

(* Prometheus/OpenMetrics text exposition of a Metrics snapshot.

   Mapping:
   - counters      -> counter families, one `<name>_total` sample;
   - sums / gauges -> gauge families (sums can in principle absorb
     negative contributions, so they are not declared monotone);
   - histograms    -> histogram families with *cumulative* `le` buckets
     (the registry stores per-bucket counts), a `+Inf` bucket equal to
     the observation count, and `_sum`/`_count` samples;
   - derived `<base>_hit_rate` rows are included like in the other
     renderings; an unset gauge emits its `# TYPE` line but no sample
     (legal: a family may carry zero samples).

   Metric names are sanitized to the OpenMetrics charset — every
   character outside [A-Za-z0-9_:] becomes '_' (`mc.runs` ->
   `ckpt_mc_runs`) — and prefixed with `ckpt_`. Registry names are
   unique across both kinds, so sanitized names cannot collide unless
   two registered names differ only in punctuation; the exposition is
   for scrape pipelines, the deterministic-diff surface stays the JSON
   snapshot. The output ends with the mandatory `# EOF` terminator. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let metric_name name = "ckpt_" ^ sanitize name

(* Sample values: OpenMetrics floats. Integral values print without a
   fraction; everything else with enough digits to round-trip. *)
let float_str x =
  if Float.is_nan x then "NaN"
  else if Float.equal x Float.infinity then "+Inf"
  else if Float.equal x Float.neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let short = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string short) x then short else Printf.sprintf "%.17g" x

let bound_str b = float_str b

let add_family buf name typ samples =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
  List.iter (fun line -> Buffer.add_string buf line) samples

let render_metric buf (raw_name, _kind, value) =
  let name = metric_name raw_name in
  match (value : Metrics.value) with
  | Metrics.Counter n ->
      add_family buf name "counter" [ Printf.sprintf "%s_total %d\n" name n ]
  | Metrics.Sum x -> add_family buf name "gauge" [ Printf.sprintf "%s %s\n" name (float_str x) ]
  | Metrics.Gauge None -> add_family buf name "gauge" []
  | Metrics.Gauge (Some x) ->
      add_family buf name "gauge" [ Printf.sprintf "%s %s\n" name (float_str x) ]
  | Metrics.Histogram h ->
      let cumulative = ref 0 in
      let buckets =
        List.init (Array.length h.Metrics.bounds) (fun i ->
            cumulative := !cumulative + h.Metrics.counts.(i);
            Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
              (bound_str h.Metrics.bounds.(i))
              !cumulative)
      in
      add_family buf name "histogram"
        (buckets
        @ [
            Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.observations;
            Printf.sprintf "%s_sum %s\n" name (float_str h.Metrics.total);
            Printf.sprintf "%s_count %d\n" name h.Metrics.observations;
          ])

let render snapshot =
  let rows =
    List.sort
      (fun (a, _, _) (b, _, _) -> String.compare a b)
      (Metrics.hit_rates snapshot @ snapshot)
  in
  let buf = Buffer.create 4096 in
  List.iter (render_metric buf) rows;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* The analysis half of the span layer: parse the JSON Lines stream the
   trace sink emits, rebuild the span forest, and aggregate where the
   time went.

   The JSONL stream is flat — one record per line, sorted by start
   time, each carrying the recording domain (tid) and its nesting depth
   at entry. Reconstruction runs one stack per tid: a record at depth d
   is a child of the most recent still-open depth d-1 record on the
   same tid; a span is closed (popped) once its interval ends before
   the next record starts or a record at the same or shallower depth
   arrives. Instants become zero-duration leaves.

   Numbers arrive through the shared strict JSON parser, which reads
   them as floats: nanosecond stamps above 2^53 (about 104 days of
   monotonic uptime) would lose sub-microsecond precision. Durations
   and the self-time arithmetic are unaffected at any realistic span
   length, which is why the report contract is "sums match within
   float tolerance", not bit equality. *)

module Json = Ckpt_json.Json

type tree = { record : Span.record; children : tree list }

type stat = {
  name : string;
  calls : int;
  total_ns : float;  (** Sum of span durations (children included). *)
  self_ns : float;  (** Durations minus direct children — the hot-span metric. *)
  max_ns : float;
}

type report = {
  roots : tree list;
  stats : stat list;  (** Hot ranking: sorted by self time, descending. *)
  root_wall_ns : float;  (** Sum of root-span durations. *)
  total_self_ns : float;  (** Sum of self times over every span. *)
  spans : int;
  instants : int;
}

(* --- JSONL parsing -------------------------------------------------- *)

let record_of_json line_no json =
  let fail field =
    Error (Printf.sprintf "line %d: missing or mistyped field %S" line_no field)
  in
  let str field = Option.bind (Json.member field json) Json.to_str in
  let num field = Option.bind (Json.member field json) Json.to_float in
  let int field = Option.bind (Json.member field json) Json.to_int in
  match (str "name", str "kind", num "start_ns", num "dur_ns", int "tid", int "depth") with
  | None, _, _, _, _, _ -> fail "name"
  | _, None, _, _, _, _ -> fail "kind"
  | _, _, None, _, _, _ -> fail "start_ns"
  | _, _, _, None, _, _ -> fail "dur_ns"
  | _, _, _, _, None, _ -> fail "tid"
  | _, _, _, _, _, None -> fail "depth"
  | Some name, Some kind, Some start_ns, Some dur_ns, Some tid, Some depth -> (
      let args =
        match Option.bind (Json.member "args" json) Json.to_obj with
        | None -> []
        | Some fields ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
              fields
      in
      match kind with
      | "span" | "instant" ->
          Ok
            {
              Span.name;
              span_kind = (if String.equal kind "span" then Span.Complete else Span.Instant);
              start_ns = Int64.of_float start_ns;
              dur_ns = Int64.of_float dur_ns;
              tid;
              depth;
              args;
            }
      | other -> Error (Printf.sprintf "line %d: unknown span kind %S" line_no other))

let parse_jsonl contents =
  let lines = String.split_on_char '\n' contents in
  let rec go line_no acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line' = String.trim line in
        if String.equal line' "" then go (line_no + 1) acc rest
        else (
          match Json.parse_result line' with
          | Error msg -> Error (Printf.sprintf "line %d: %s" line_no msg)
          | Ok json -> (
              match record_of_json line_no json with
              | Error _ as e -> e
              | Ok r -> go (line_no + 1) (r :: acc) rest))
  in
  go 1 [] lines

(* --- forest reconstruction ------------------------------------------ *)

type builder = { brecord : Span.record; mutable rev_children : builder list }

let rec freeze b = { record = b.brecord; children = List.rev_map freeze b.rev_children }

let end_ns (r : Span.record) = Int64.add r.start_ns r.dur_ns

let build records =
  (* Group by tid preserving order, then reconstruct each domain's
     track independently; the forest interleaves tracks in first-start
     order like the exporters do. *)
  let by_tid = Hashtbl.create 8 [@@lint.domain_safe "build-local grouping table"] in
  let tids = ref [] in
  List.iter
    (fun (r : Span.record) ->
      match Hashtbl.find_opt by_tid r.tid with
      | None ->
          tids := r.tid :: !tids;
          Hashtbl.replace by_tid r.tid (ref [ r ])
      | Some l -> l := r :: !l)
    records;
  let forest = ref [] in
  List.iter
    (fun tid ->
      let track =
        List.sort
          (fun (a : Span.record) (b : Span.record) ->
            match Int64.compare a.start_ns b.start_ns with
            | 0 -> Stdlib.compare a.depth b.depth
            | c -> c)
          (List.rev !(Hashtbl.find by_tid tid))
      in
      let stack = ref [] in
      let attach node =
        match !stack with
        | [] -> forest := node :: !forest
        | parent :: _ -> parent.rev_children <- node :: parent.rev_children
      in
      List.iter
        (fun (r : Span.record) ->
          let rec unwind () =
            match !stack with
            | top :: rest
              when top.brecord.depth >= r.depth
                   || Int64.compare (end_ns top.brecord) r.start_ns < 0 ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          let node = { brecord = r; rev_children = [] } in
          attach node;
          match r.span_kind with
          | Span.Complete -> stack := node :: !stack
          | Span.Instant -> ())
        track)
    (List.rev !tids);
  List.rev_map freeze !forest
  |> List.sort (fun a b -> Int64.compare a.record.start_ns b.record.start_ns)

(* --- aggregation ---------------------------------------------------- *)

let ns r = Int64.to_float r.Span.dur_ns

let self_ns node =
  let children_ns =
    List.fold_left
      (fun acc c ->
        match c.record.span_kind with Span.Complete -> acc +. ns c.record | Span.Instant -> acc)
      0.0 node.children
  in
  Float.max 0.0 (ns node.record -. children_ns)

let report forest =
  let stats = Hashtbl.create 16 [@@lint.domain_safe "report-local aggregation table"] in
  let order = ref [] in
  let spans = ref 0 and instants = ref 0 and total_self = ref 0.0 in
  let rec visit node =
    (match node.record.span_kind with
    | Span.Instant -> incr instants
    | Span.Complete ->
        incr spans;
        let self = self_ns node in
        total_self := !total_self +. self;
        let name = node.record.name in
        (match Hashtbl.find_opt stats name with
        | None ->
            order := name :: !order;
            Hashtbl.replace stats name
              { name; calls = 1; total_ns = ns node.record; self_ns = self; max_ns = ns node.record }
        | Some s ->
            Hashtbl.replace stats name
              {
                s with
                calls = s.calls + 1;
                total_ns = s.total_ns +. ns node.record;
                self_ns = s.self_ns +. self;
                max_ns = Float.max s.max_ns (ns node.record);
              }));
    List.iter visit node.children
  in
  List.iter visit forest;
  let root_wall =
    List.fold_left
      (fun acc node ->
        match node.record.span_kind with
        | Span.Complete -> acc +. ns node.record
        | Span.Instant -> acc)
      0.0 forest
  in
  let stat_list =
    List.rev_map (fun name -> Hashtbl.find stats name) !order
    |> List.sort (fun a b ->
           match Float.compare b.self_ns a.self_ns with
           | 0 -> String.compare a.name b.name
           | c -> c)
  in
  {
    roots = forest;
    stats = stat_list;
    root_wall_ns = root_wall;
    total_self_ns = !total_self;
    spans = !spans;
    instants = !instants;
  }

(* --- critical path -------------------------------------------------- *)

let rec critical_path node =
  let widest =
    List.fold_left
      (fun acc c ->
        match c.record.span_kind with
        | Span.Instant -> acc
        | Span.Complete -> (
            match acc with
            | Some best when Int64.compare best.record.dur_ns c.record.dur_ns >= 0 -> acc
            | _ -> Some c))
      None node.children
  in
  match widest with None -> [ node ] | Some c -> node :: critical_path c

let longest_root forest =
  List.fold_left
    (fun acc node ->
      match node.record.span_kind with
      | Span.Instant -> acc
      | Span.Complete -> (
          match acc with
          | Some best when Int64.compare best.record.dur_ns node.record.dur_ns >= 0 -> acc
          | _ -> Some node))
    None forest

(* --- rendering ------------------------------------------------------ *)

let ms x = x /. 1e6

let render_report ?(top = 20) r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d spans, %d instants, %d roots, root wall %.3f ms\n"
       r.spans r.instants (List.length r.roots) (ms r.root_wall_ns));
  Buffer.add_string buf
    (Printf.sprintf "self-time closure: %.3f ms (= root wall within float tolerance)\n\n"
       (ms r.total_self_ns));
  let table =
    Ckpt_stats.Table.create ~title:"hot spans (by self time)"
      ~columns:
        [
          ("span", Ckpt_stats.Table.Left); ("calls", Ckpt_stats.Table.Right);
          ("total ms", Ckpt_stats.Table.Right); ("self ms", Ckpt_stats.Table.Right);
          ("self %", Ckpt_stats.Table.Right); ("max ms", Ckpt_stats.Table.Right);
        ]
  in
  let shown = ref 0 in
  List.iter
    (fun s ->
      if !shown < top then begin
        incr shown;
        Ckpt_stats.Table.add_row table
          [
            s.name; string_of_int s.calls; Printf.sprintf "%.3f" (ms s.total_ns);
            Printf.sprintf "%.3f" (ms s.self_ns);
            Printf.sprintf "%.1f"
              (if r.total_self_ns > 0.0 then 100.0 *. s.self_ns /. r.total_self_ns
               else 0.0);
            Printf.sprintf "%.3f" (ms s.max_ns);
          ]
      end)
    r.stats;
  Buffer.add_string buf (Ckpt_stats.Table.render table);
  (match longest_root r.roots with
  | None -> ()
  | Some root ->
      let path = critical_path root in
      Buffer.add_string buf "\ncritical path (longest root, widest child at each level):\n";
      List.iter
        (fun node ->
          Buffer.add_string buf
            (Printf.sprintf "  %*s%s  %.3f ms (%.1f%% of root)\n"
               (2 * node.record.depth) "" node.record.name
               (ms (ns node.record))
               (if Int64.compare root.record.dur_ns 0L > 0 then
                  100.0 *. ns node.record /. ns root.record
                else 0.0)))
        path);
  Buffer.contents buf

(** Span-trace analysis: parse the JSONL stream the trace sink emits,
    rebuild the span forest, and report where the time went.

    Reconstruction uses the (tid, depth) fields of the flat records:
    per domain track, a record at depth [d] is a child of the most
    recent still-open record at depth [d-1]; instants become
    zero-duration leaves. Feeding {!Span.records} through
    {!Span.to_jsonl} and back through {!parse_jsonl} is the identity on
    records (timestamps within float precision, see the implementation
    note on 2^53).

    Powers the [ckpt-obs report] CLI. *)

type tree = { record : Span.record; children : tree list }

type stat = {
  name : string;
  calls : int;
  total_ns : float;  (** Sum of span durations (children included). *)
  self_ns : float;  (** Durations minus direct children — the hot-span metric. *)
  max_ns : float;
}

type report = {
  roots : tree list;
  stats : stat list;  (** Hot ranking: sorted by self time, descending. *)
  root_wall_ns : float;  (** Sum of root-span durations. *)
  total_self_ns : float;
      (** Sum of self times over every span; equals [root_wall_ns] up
          to float tolerance — self time partitions the root wall. *)
  spans : int;
  instants : int;
}

val parse_jsonl : string -> (Span.record list, string) result
(** Parse a [.jsonl] trace (one record per line, blank lines ignored).
    The error carries the offending line number. *)

val build : Span.record list -> tree list
(** Reconstruct the span forest, roots sorted by start time. *)

val report : tree list -> report

val critical_path : tree -> tree list
(** Root-to-leaf chain following the longest-duration child at each
    level (instants excluded). *)

val longest_root : tree list -> tree option

val render_report : ?top:int -> report -> string
(** Human rendering: summary line, hot-span table (at most [top] rows,
    default 20), and the critical path under the longest root. *)

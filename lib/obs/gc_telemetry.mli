(** GC and allocation telemetry as [gc.*] Timing metrics.

    A {!probe} snapshots the calling domain's [Gc.quick_stat]; each
    {!sample} folds the delta since the previous sample into the
    metrics registry and re-arms the probe. The parallel Monte-Carlo
    pool samples one probe per worker domain at every batch boundary,
    so [BENCH_<n>.json] artifacts carry allocation pressure next to the
    wall-clock timings.

    Metrics (all Timing kind — they never perturb the Engine section's
    bit-identical guarantee): [gc.minor_words], [gc.major_words],
    [gc.promoted_words] (float word counts), [gc.minor_collections],
    [gc.major_collections], [gc.compactions] (counters), and
    [gc.heap_words] (gauge, last observed major-heap size).

    This module is the only lib/ module allowed to call [Gc.stat] /
    [Gc.quick_stat] directly — the [no-direct-gc-stat] lint rule
    routes everything else through here. *)

type probe

val probe : unit -> probe
(** Arm a probe on the calling domain (no metric emission). *)

val sample : probe -> unit
(** Emit the deltas since the probe was armed or last sampled, then
    re-arm. Intended to be called from the same domain that armed the
    probe; deltas are clamped at zero. *)

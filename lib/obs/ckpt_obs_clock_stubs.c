/* Monotonic clock for the observability layer.

   CLOCK_MONOTONIC never steps backwards (unlike gettimeofday under NTP
   adjustment), which is what makes elapsed-time subtraction safe. */

#define _POSIX_C_SOURCE 199309L

#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

CAMLprim value ckpt_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}

(** Prometheus/OpenMetrics text exposition of a {!Metrics.snapshot}.

    Counters become counter families ([<name>_total]), sums and gauges
    become gauge families, histograms become histogram families with
    cumulative [le] buckets, a [+Inf] bucket, and [_sum]/[_count]
    samples. Derived [<base>_hit_rate] gauges are included. Names are
    prefixed [ckpt_] and sanitized to the OpenMetrics charset
    ([mc.runs] -> [ckpt_mc_runs]); the output ends with the mandatory
    [# EOF] terminator.

    Wired as [--metrics openmetrics] on ckpt-sim / ckpt-chain /
    ckpt-experiments and the bench harness. *)

val metric_name : string -> string
(** The sanitized, [ckpt_]-prefixed exposition name of a registry
    metric name. *)

val render : Metrics.snapshot -> string

(** Named output sinks, flushed once by CLI tools on exit.

    A sink is a thunk that renders some observability state (metrics
    snapshot, span trace) to its destination. Registration replaces any
    sink of the same name, so re-running a setup is idempotent. *)

val register : name:string -> (unit -> unit) -> unit

val flush : unit -> unit
(** Run every registered sink once, in registration order. *)

type metrics_format = Table | Json

val install_metrics : metrics_format -> unit
(** Register a ["metrics"] sink printing the {!Metrics.snapshot} to
    stdout — the plain-text tables, or the JSON object on one line. The
    table form also prints the span summary when spans were recorded. *)

val install_trace : string -> unit
(** Enable span recording and register a ["trace"] sink writing the
    span records to the given path on flush: JSON Lines when the path
    ends in [.jsonl], Chrome [trace_event] JSON otherwise (loadable in
    Perfetto / about://tracing). *)

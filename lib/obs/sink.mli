(** Named output sinks, flushed once by CLI tools on exit.

    A sink is a thunk that renders some observability state (metrics
    snapshot, span trace) to its destination. Registration replaces any
    sink of the same name, so re-running a setup is idempotent — and so
    is {!flush}: each registered sink runs at most once per
    registration, so belt-and-suspenders flush calls (normal exit path
    plus an at_exit handler) cannot double-print. *)

val register : name:string -> (unit -> unit) -> unit

val flush : unit -> unit
(** Run every registered sink that has not been flushed yet, in
    registration order. A second call is a no-op until a sink is
    (re-)registered. *)

val write_file : string -> string -> unit
(** [write_file path contents] — truncating write, used by the built-in
    sinks and by tools emitting one-shot artifacts outside a sink. *)

type metrics_format = Table | Json | OpenMetrics

val install_metrics : ?path:string -> metrics_format -> unit
(** Register a ["metrics"] sink rendering the {!Metrics.snapshot} —
    the plain-text tables, the JSON object on one line, or the
    Prometheus/OpenMetrics text exposition ({!Openmetrics.render}). The
    table form also appends the span summary when spans were recorded.
    Output goes to stdout, or to [path] when given (so scrape artifacts
    don't interleave with the tool's report). *)

val install_trace : string -> unit
(** Enable span recording and register a ["trace"] sink writing the
    span records to the given path on flush: JSON Lines when the path
    ends in [.jsonl], Chrome [trace_event] JSON otherwise (loadable in
    Perfetto / about://tracing). *)

(** Monotonic wall clock (CLOCK_MONOTONIC).

    [Unix.gettimeofday] steps under NTP adjustment and can yield
    negative elapsed times; every timing in this codebase goes through
    this module instead. The absolute origin is unspecified (boot time
    on Linux): only differences are meaningful. *)

external now_ns : unit -> int64 = "ckpt_obs_monotonic_ns"
(** Nanoseconds on the monotonic clock. *)

val elapsed_s : int64 -> float
(** [elapsed_s since] is the seconds elapsed since the {!now_ns} stamp
    [since]. Always non-negative. *)

val time : (unit -> 'a) -> float * 'a
(** [time f] runs [f ()] and returns (monotonic wall-clock seconds,
    result). *)

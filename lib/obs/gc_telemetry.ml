(* GC and allocation telemetry: per-domain Gc.quick_stat deltas folded
   into Timing-kind metrics.

   This module is the only place in lib/ allowed to read Gc.stat /
   Gc.quick_stat directly (enforced by the `no-direct-gc-stat` lint
   rule): every other module takes a probe at a boundary it owns — the
   parallel pool samples at batch boundaries — so allocation pressure
   is attributed to the work that caused it, per domain.

   All gc.* metrics are Timing kind on purpose: allocation counts vary
   with domain layout, inlining and stdlib version, so they must never
   enter the Engine section whose bit-identical-across-domain-counts
   guarantee the pool tests pin. *)

let s_minor_words = Metrics.sum ~kind:Timing "gc.minor_words"
let s_major_words = Metrics.sum ~kind:Timing "gc.major_words"
let s_promoted_words = Metrics.sum ~kind:Timing "gc.promoted_words"
let c_minor = Metrics.counter ~kind:Timing "gc.minor_collections"
let c_major = Metrics.counter ~kind:Timing "gc.major_collections"
let c_compactions = Metrics.counter ~kind:Timing "gc.compactions"
let g_heap_words = Metrics.gauge ~kind:Timing "gc.heap_words"

type probe = { mutable last : Gc.stat }

let probe () = { last = Gc.quick_stat () }

(* Deltas are clamped at zero: a quick_stat counter is monotone within
   a domain, but a probe handed across domains (not the intended use)
   must degrade to "no delta", never to negative telemetry. *)
let sample p =
  let s = Gc.quick_stat () in
  let prev = p.last in
  p.last <- s;
  Metrics.add s_minor_words (Float.max 0.0 (s.Gc.minor_words -. prev.Gc.minor_words));
  Metrics.add s_major_words (Float.max 0.0 (s.Gc.major_words -. prev.Gc.major_words));
  Metrics.add s_promoted_words
    (Float.max 0.0 (s.Gc.promoted_words -. prev.Gc.promoted_words));
  Metrics.incr ~by:(Stdlib.max 0 (s.Gc.minor_collections - prev.Gc.minor_collections))
    c_minor;
  Metrics.incr ~by:(Stdlib.max 0 (s.Gc.major_collections - prev.Gc.major_collections))
    c_major;
  Metrics.incr ~by:(Stdlib.max 0 (s.Gc.compactions - prev.Gc.compactions)) c_compactions;
  Metrics.set g_heap_words (float_of_int s.Gc.heap_words)

type kind = Engine | Timing

type klass = KCounter | KSum | KGauge | KHistogram of float array

type spec = { name : string; kind : kind; klass : klass; slot : int }

(* Registry: one mutex, touched only at registration, shard creation and
   snapshot/reset time — never on the emission path. *)
let registry_lock = Mutex.create ()
let specs : (string, spec) Hashtbl.t =
  Hashtbl.create 64 [@@lint.domain_safe "mutex-held: all access under registry_lock"]

let n_counters = ref 0 [@@lint.domain_safe "mutex-held: bumped only inside register"]
let n_sums = ref 0 [@@lint.domain_safe "mutex-held: bumped only inside register"]
let n_gauges = ref 0 [@@lint.domain_safe "mutex-held: bumped only inside register"]
let n_histograms = ref 0 [@@lint.domain_safe "mutex-held: bumped only inside register"]

type counter = int
type sum = int
type gauge = int
type histogram = { hslot : int; buckets : float array }

let register name kind klass =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt specs name with
      | Some s ->
          if s.klass <> klass || s.kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %S re-registered with a different type" name);
          s.slot
      | None ->
          let next = function
            | KCounter -> n_counters
            | KSum -> n_sums
            | KGauge -> n_gauges
            | KHistogram _ -> n_histograms
          in
          let r = next klass in
          let slot = !r in
          r := slot + 1;
          Hashtbl.add specs name { name; kind; klass; slot };
          slot)

let counter ?(kind = Engine) name = register name kind KCounter
let sum ?(kind = Engine) name = register name kind KSum
let gauge ?(kind = Engine) name = register name kind KGauge

let histogram ?(kind = Engine) name ~buckets =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if Float.is_nan b then invalid_arg "Metrics.histogram: NaN bucket bound";
      if i > 0 && not (b > buckets.(i - 1)) then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  let buckets = Array.copy buckets in
  { hslot = register name kind (KHistogram buckets); buckets }

(* Collectors: dense arrays indexed by per-class slot. Arrays grow on
   demand so a collector created before a late registration still
   works. *)
type collector = {
  mutable counters : int array;
  mutable sums : float array;
  mutable gauges : float array;
  mutable gauge_set : bool array;
  mutable hist_counts : int array array;  (* [||] until first observation *)
  mutable hist_total : float array;
  mutable hist_obs : int array;
}

let create_collector () =
  let nc, ns, ng, nh =
    Mutex.protect registry_lock (fun () ->
        (!n_counters, !n_sums, !n_gauges, !n_histograms))
  in
  {
    counters = Array.make nc 0;
    sums = Array.make ns 0.0;
    gauges = Array.make ng 0.0;
    gauge_set = Array.make ng false;
    hist_counts = Array.make nh [||];
    hist_total = Array.make nh 0.0;
    hist_obs = Array.make nh 0;
  }

let grown_len len n = Stdlib.max n ((2 * len) + 8)

let ensure_int a n =
  if Array.length !a >= n then ()
  else begin
    let b = Array.make (grown_len (Array.length !a) n) 0 in
    Array.blit !a 0 b 0 (Array.length !a);
    a := b
  end

let ensure_float a n =
  if Array.length !a >= n then ()
  else begin
    let b = Array.make (grown_len (Array.length !a) n) 0.0 in
    Array.blit !a 0 b 0 (Array.length !a);
    a := b
  end

let ensure_bool a n =
  if Array.length !a >= n then ()
  else begin
    let b = Array.make (grown_len (Array.length !a) n) false in
    Array.blit !a 0 b 0 (Array.length !a);
    a := b
  end

let ensure_arr a n =
  if Array.length !a >= n then ()
  else begin
    let b = Array.make (grown_len (Array.length !a) n) [||] in
    Array.blit !a 0 b 0 (Array.length !a);
    a := b
  end

(* Field-by-field growth through local refs (records hold arrays, not
   refs, to keep emission reads direct). *)
let ensure_counter c n =
  let r = ref c.counters in
  ensure_int r n;
  c.counters <- !r

let ensure_sum c n =
  let r = ref c.sums in
  ensure_float r n;
  c.sums <- !r

let ensure_gauge c n =
  let r = ref c.gauges in
  ensure_float r n;
  c.gauges <- !r;
  let r = ref c.gauge_set in
  ensure_bool r n;
  c.gauge_set <- !r

let ensure_hist c n =
  let r = ref c.hist_counts in
  ensure_arr r n;
  c.hist_counts <- !r;
  let r = ref c.hist_total in
  ensure_float r n;
  c.hist_total <- !r;
  let r = ref c.hist_obs in
  ensure_int r n;
  c.hist_obs <- !r

(* Shards: every domain's default collector, in creation order (the
   merge order of [snapshot]). Kept alive past domain death so campaign
   metrics survive the pool's joins. *)
let shards : collector list ref =
  ref [] [@@lint.domain_safe "mutex-held: pushed and drained under registry_lock"]

let register_shard c =
  Mutex.protect registry_lock (fun () -> shards := c :: !shards)

let dls_collector : collector Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = create_collector () in
      register_shard c;
      c)

let current () = Domain.DLS.get dls_collector

let with_collector c f =
  let prev = current () in
  Domain.DLS.set dls_collector c;
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_collector prev) f

let incr ?(by = 1) id =
  let c = current () in
  ensure_counter c (id + 1);
  c.counters.(id) <- c.counters.(id) + by

let add id x =
  let c = current () in
  ensure_sum c (id + 1);
  c.sums.(id) <- c.sums.(id) +. x

let set id x =
  let c = current () in
  ensure_gauge c (id + 1);
  c.gauges.(id) <- x;
  c.gauge_set.(id) <- true

let bucket_index buckets v =
  let n = Array.length buckets in
  let rec go i = if i >= n then n else if v <= buckets.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let c = current () in
  ensure_hist c (h.hslot + 1);
  if Array.length c.hist_counts.(h.hslot) = 0 then
    c.hist_counts.(h.hslot) <- Array.make (Array.length h.buckets + 1) 0;
  let counts = c.hist_counts.(h.hslot) in
  let i = bucket_index h.buckets v in
  counts.(i) <- counts.(i) + 1;
  c.hist_total.(h.hslot) <- c.hist_total.(h.hslot) +. v;
  c.hist_obs.(h.hslot) <- c.hist_obs.(h.hslot) + 1

let merge_into ~dst src =
  ensure_counter dst (Array.length src.counters);
  Array.iteri (fun i v -> if v <> 0 then dst.counters.(i) <- dst.counters.(i) + v) src.counters;
  ensure_sum dst (Array.length src.sums);
  Array.iteri
    (fun i v -> if not (Float.equal v 0.0) then dst.sums.(i) <- dst.sums.(i) +. v)
    src.sums;
  ensure_gauge dst (Array.length src.gauges);
  Array.iteri
    (fun i set ->
      if set then begin
        dst.gauges.(i) <- src.gauges.(i);
        dst.gauge_set.(i) <- true
      end)
    src.gauge_set;
  ensure_hist dst (Array.length src.hist_counts);
  Array.iteri
    (fun i counts ->
      if Array.length counts > 0 then begin
        if Array.length dst.hist_counts.(i) = 0 then
          dst.hist_counts.(i) <- Array.copy counts
        else
          Array.iteri
            (fun b v -> dst.hist_counts.(i).(b) <- dst.hist_counts.(i).(b) + v)
            counts;
        dst.hist_total.(i) <- dst.hist_total.(i) +. src.hist_total.(i);
        dst.hist_obs.(i) <- dst.hist_obs.(i) + src.hist_obs.(i)
      end)
    src.hist_counts

type histogram_data = {
  bounds : float array;
  counts : int array;
  total : float;
  observations : int;
}

type value =
  | Counter of int
  | Sum of float
  | Gauge of float option
  | Histogram of histogram_data

type snapshot = (string * kind * value) list

let zero_collector c =
  Array.fill c.counters 0 (Array.length c.counters) 0;
  Array.fill c.sums 0 (Array.length c.sums) 0.0;
  Array.fill c.gauges 0 (Array.length c.gauges) 0.0;
  Array.fill c.gauge_set 0 (Array.length c.gauge_set) false;
  Array.iteri
    (fun i counts -> if Array.length counts > 0 then c.hist_counts.(i) <- [||])
    c.hist_counts;
  Array.fill c.hist_total 0 (Array.length c.hist_total) 0.0;
  Array.fill c.hist_obs 0 (Array.length c.hist_obs) 0

let reset () =
  Mutex.protect registry_lock (fun () -> List.iter zero_collector !shards)

let snapshot () =
  let all_specs, all_shards =
    Mutex.protect registry_lock (fun () ->
        (Hashtbl.fold (fun _ s acc -> s :: acc) specs [], List.rev !shards))
  in
  let merged = create_collector () in
  List.iter (fun shard -> merge_into ~dst:merged shard) all_shards;
  let read spec =
    match spec.klass with
    | KCounter ->
        Counter (if spec.slot < Array.length merged.counters then merged.counters.(spec.slot) else 0)
    | KSum -> Sum (if spec.slot < Array.length merged.sums then merged.sums.(spec.slot) else 0.0)
    | KGauge ->
        Gauge
          (if spec.slot < Array.length merged.gauge_set && merged.gauge_set.(spec.slot)
           then Some merged.gauges.(spec.slot)
           else None)
    | KHistogram bounds ->
        let counts =
          if spec.slot < Array.length merged.hist_counts
             && Array.length merged.hist_counts.(spec.slot) > 0
          then Array.copy merged.hist_counts.(spec.slot)
          else Array.make (Array.length bounds + 1) 0
        in
        Histogram
          {
            bounds = Array.copy bounds;
            counts;
            total =
              (if spec.slot < Array.length merged.hist_total then merged.hist_total.(spec.slot)
               else 0.0);
            observations =
              (if spec.slot < Array.length merged.hist_obs then merged.hist_obs.(spec.slot)
               else 0);
          }
  in
  all_specs
  |> List.map (fun spec -> (spec.name, spec.kind, read spec))
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let find snapshot name =
  List.find_map
    (fun (n, kind, value) -> if String.equal n name then Some (kind, value) else None)
    snapshot

(* Derived hit rates: every counter pair <base>_hits / <base>_misses
   yields <base>_hit_rate = hits / (hits + misses), or None when the
   caches were never consulted. *)
let hit_rates rows =
  List.filter_map
    (fun (name, kind, value) ->
      match value with
      | Counter hits when String.length name > 5 && Filename.check_suffix name "_hits" ->
          let base = String.sub name 0 (String.length name - 5) in
          List.find_map
            (fun (name', _, value') ->
              match value' with
              | Counter misses when String.equal name' (base ^ "_misses") ->
                  (* Guard the 0/0 case explicitly: registered but never
                     consulted caches (e.g. merged from shards that only
                     registered the pair) must derive an unset gauge,
                     never 0/0 = NaN. *)
                  let rate =
                    if hits + misses = 0 then None
                    else Some (float_of_int hits /. float_of_int (hits + misses))
                  in
                  Some (base ^ "_hit_rate", kind, Gauge rate)
              | _ -> None)
            rows
      | _ -> None)
    rows

let with_derived rows =
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) (hit_rates rows @ rows)

(* --- rendering ----------------------------------------------------- *)

let pp_bound b = if Float.equal b (Float.round b) && Float.abs b < 1e9 then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b

let table_rows rows =
  List.concat_map
    (fun (name, _, value) ->
      match value with
      | Counter n -> [ (name, string_of_int n) ]
      | Sum x -> [ (name, Ckpt_stats.Table.cell_f x) ]
      | Gauge None -> [ (name, "n/a") ]
      | Gauge (Some x) -> [ (name, Ckpt_stats.Table.cell_f x) ]
      | Histogram h ->
          let buckets =
            List.init (Array.length h.counts) (fun i ->
                let label =
                  if i < Array.length h.bounds then
                    Printf.sprintf "%s[<=%s]" name (pp_bound h.bounds.(i))
                  else Printf.sprintf "%s[>%s]" name (pp_bound h.bounds.(Array.length h.bounds - 1))
                in
                (label, string_of_int h.counts.(i)))
          in
          buckets
          @ [
              (name ^ " (count)", string_of_int h.observations);
              (name ^ " (sum)", Ckpt_stats.Table.cell_f h.total);
            ])
    rows

let render_section ~title rows =
  let t =
    Ckpt_stats.Table.create ~title
      ~columns:[ ("metric", Ckpt_stats.Table.Left); ("value", Ckpt_stats.Table.Right) ]
  in
  List.iter (fun (name, cell) -> Ckpt_stats.Table.add_row t [ name; cell ]) (table_rows rows);
  Ckpt_stats.Table.render t

let split_kinds rows =
  ( List.filter (fun (_, kind, _) -> kind = Engine) rows,
    List.filter (fun (_, kind, _) -> kind = Timing) rows )

let render_table snapshot =
  let engine, timing = split_kinds (with_derived snapshot) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (render_section ~title:"metrics — deterministic engine counters" engine);
  if timing <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (render_section ~title:"timings — wall clock (varies run to run)" timing)
  end;
  Buffer.contents buf

(* --- JSON ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let json_of_value = function
  | Counter n -> string_of_int n
  | Sum x -> json_float x
  | Gauge None -> "null"
  | Gauge (Some x) -> json_float x
  | Histogram h ->
      Printf.sprintf "{\"bounds\":[%s],\"counts\":[%s],\"sum\":%s,\"count\":%d}"
        (String.concat "," (Array.to_list (Array.map json_float h.bounds)))
        (String.concat "," (Array.to_list (Array.map string_of_int h.counts)))
        (json_float h.total) h.observations

let json_object rows =
  "{"
  ^ String.concat ","
      (List.map
         (fun (name, _, value) ->
           Printf.sprintf "\"%s\":%s" (json_escape name) (json_of_value value))
         rows)
  ^ "}"

let to_json_fields snapshot =
  let engine, timing = split_kinds (with_derived snapshot) in
  Printf.sprintf "\"metrics\":%s,\"timings\":%s" (json_object engine) (json_object timing)

let to_json snapshot = "{" ^ to_json_fields snapshot ^ "}"

type t = { gen : Xoshiro256.t; seed : int64 }

let create ~seed = { gen = Xoshiro256.create seed; seed }

let substream t label =
  let sub_seed = Splitmix64.of_label t.seed label in
  { gen = Xoshiro256.create sub_seed; seed = sub_seed }

let split t = { t with gen = Xoshiro256.split t.gen }

let substream_run t run = substream t ("run-" ^ string_of_int run)

let int64 t = Xoshiro256.next_int64 t.gen

let float t =
  (* Top 53 bits give a uniform dyadic rational in [0,1). *)
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1.0p-53

let float_pos t = 1.0 -. float t

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem raw n64 in
    if Int64.sub raw v > Int64.sub Int64.max_int (Int64.sub n64 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t l =
  let arr = Array.of_list l in
  shuffle_in_place t arr;
  Array.to_list arr

let seed_of t = t.seed

(** High-level random source used by every stochastic component.

    All experiments take an explicit seed and derive labelled substreams,
    so that any table in the repository is bit-reproducible. *)

type t
(** A mutable random stream. *)

val create : seed:int64 -> t
(** [create ~seed] builds the root stream for a seed. *)

val substream : t -> string -> t
(** [substream t label] derives an independent stream identified by
    [label]. The derivation depends only on the seed of [t] and on
    [label] (not on how much of [t] has been consumed), so components
    can be re-ordered without perturbing each other's draws. *)

val split : t -> t
(** [split t] returns a stream at [t]'s current position and advances
    [t] by 2^128 draws; successive splits never overlap. *)

val substream_run : t -> int -> t
(** [substream_run t r] is [substream t ("run-" ^ string_of_int r)]:
    the canonical per-replication substream of the Monte-Carlo drivers.
    Because the derivation depends only on [t]'s seed and on [r], the
    sample set of a replication campaign is the same whether the run
    indices are drawn sequentially or spread over domains — the
    determinism anchor of {!Ckpt_sim.Parallel_exec}. *)

val int64 : t -> int64
(** Uniform raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1): 53 random mantissa bits. *)

val float_pos : t -> float
(** Uniform in (0, 1]: safe as argument to [log]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [lo, hi). Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)

val seed_of : t -> int64
(** The seed this stream was created from (for reporting). *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let of_label seed label =
  (* Absorb the label bytes FNV-style into the seed, then mix once per
     byte through the SplitMix64 finalizer so that labels sharing a
     prefix still diverge completely. *)
  let acc = ref seed in
  String.iter
    (fun c ->
      acc := Int64.mul (Int64.logxor !acc (Int64.of_int (Char.code c))) 0x100000001B3L;
      acc := mix !acc)
    label;
  mix !acc

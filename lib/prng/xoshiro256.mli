(** xoshiro256**: the main 64-bit generator used throughout the library.

    Fast, passes BigCrush, and supports [jump] for cheaply creating
    2^128 independent sequences from a single seed.
    Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
    generators", ACM TOMS 2021. *)

type t
(** Mutable generator state (256 bits). *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into a full state. *)

val copy : t -> t
(** [copy t] is an independent clone of the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps in-place; used to partition one
    seed into many non-overlapping streams. *)

val split : t -> t
(** [split t] returns a generator at [t]'s current position and jumps
    [t] itself by 2^128 steps, so repeated splits yield pairwise
    non-overlapping streams. *)

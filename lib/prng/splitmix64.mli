(** SplitMix64: a tiny, fast, well-distributed 64-bit generator.

    Used here mainly to expand user-supplied seeds into full generator
    states, and to derive independent sub-seeds from string labels.
    Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
    generators", OOPSLA 2014. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from an arbitrary 64-bit seed. *)

val next : t -> int64
(** [next t] returns the next 64-bit output and advances the state. *)

val of_label : int64 -> string -> int64
(** [of_label seed label] deterministically derives a 64-bit sub-seed
    from [seed] and a human-readable [label]. Distinct labels give
    (with overwhelming probability) unrelated sub-seeds. *)

(** Ordinary least squares on one predictor; used to fit the empirical
    complexity of the chain DP (log-log slope, experiment E4). *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination. *)
}

val linear : (float * float) array -> fit
(** [linear pts] fits [y = slope * x + intercept]. Requires at least two
    points with distinct x values. *)

val log_log : (float * float) array -> fit
(** [log_log pts] fits [log y = slope * log x + intercept]; the slope is
    the empirical polynomial degree. All coordinates must be positive. *)

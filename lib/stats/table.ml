type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Rule -> acc
            | Cells cells -> Stdlib.max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else match align with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s
  in
  let fmt_row cells =
    let parts =
      List.map2 (fun ((_, align), width) cell -> pad align width cell)
        (List.combine t.columns widths) cells
    in
    "| " ^ String.concat " | " parts ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" t.title);
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (fmt_row headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun row ->
      match row with
      | Rule -> Buffer.add_string buf (rule ^ "\n")
      | Cells cells -> Buffer.add_string buf (fmt_row cells ^ "\n"))
    rows;
  Buffer.add_string buf (rule ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)

let cell_f x = Printf.sprintf "%.6g" x
let cell_e x = Printf.sprintf "%.3e" x
let cell_pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.mean: empty array";
  Kahan.sum_array xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Kahan.create () in
    Array.iter (fun x -> Kahan.add acc ((x -. m) *. (x -. m))) xs;
    Kahan.sum acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let relative_error ~actual ~reference =
  if reference = 0.0 then (if actual = 0.0 then 0.0 else infinity)
  else Float.abs (actual -. reference) /. Float.abs reference

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.mean: empty array";
  Kahan.sum_array xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Kahan.create () in
    Array.iter (fun x -> Kahan.add acc ((x -. m) *. (x -. m))) xs;
    Kahan.sum acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  (* Float.compare is a total order with NaN below every number, so any
     NaN in the input surfaces at index 0 — reject it there rather than
     silently returning a NaN-interpolated order statistic. *)
  if Float.is_nan sorted.(0) then invalid_arg "Descriptive.quantile: NaN in sample";
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  (* Exact order statistic when the index is integral: interpolating
     with frac = 0 would turn an infinite neighbour into 0 * inf = NaN. *)
  if Float.equal frac 0.0 then sorted.(lo)
  else sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let relative_error ~actual ~reference =
  if Float.equal reference 0.0 then (if Float.equal actual 0.0 then 0.0 else infinity)
  else Float.abs (actual -. reference) /. Float.abs reference

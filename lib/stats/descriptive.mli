(** Batch descriptive statistics over float arrays. *)

val mean : float array -> float
(** Compensated mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (0 for arrays shorter than 2). *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1]; linear interpolation between
    order statistics (type-7, the R default). Does not mutate [xs].
    Raises [Invalid_argument] if [xs] contains a NaN: a quantile of
    partially-ordered data is meaningless, and the old polymorphic sort
    used to place NaNs arbitrarily and corrupt the result silently. *)

val median : float array -> float

val relative_error : actual:float -> reference:float -> float
(** [|actual - reference| / |reference|]; 0 when both are 0. *)

(** Compensated (Kahan-Babuska) summation.

    Monte-Carlo estimates in this library aggregate up to 10^7 samples;
    naive summation would lose several digits, which matters when
    checking a closed-form formula to within a confidence interval. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Accumulate one term. *)

val sum : t -> float
(** Current compensated sum. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)

val sum_list : float list -> float
(** One-shot compensated sum of a list. *)

type series = { label : char; points : (float * float) list }

let plot ?(width = 72) ?(height = 20) ?(log_x = false) ?(log_y = false) ?title series =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.plot: grid too small";
  let all = List.concat_map (fun s -> s.points) series in
  if all = [] then invalid_arg "Ascii_plot.plot: no points";
  let tx x =
    if log_x then begin
      if x <= 0.0 then invalid_arg "Ascii_plot.plot: log axis needs positive x";
      log10 x
    end
    else x
  and ty y =
    if log_y then begin
      if y <= 0.0 then invalid_arg "Ascii_plot.plot: log axis needs positive y";
      log10 y
    end
    else y
  in
  List.iter
    (fun (x, y) ->
      if not (Float.is_finite x && Float.is_finite y) then
        invalid_arg "Ascii_plot.plot: non-finite coordinate")
    all;
  let xs = List.map (fun (x, _) -> tx x) all and ys = List.map (fun (_, y) -> ty y) all in
  let x_min = List.fold_left Float.min infinity xs
  and x_max = List.fold_left Float.max neg_infinity xs
  and y_min = List.fold_left Float.min infinity ys
  and y_max = List.fold_left Float.max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
  let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  let place label x y =
    let col =
      Stdlib.min (width - 1) (int_of_float ((tx x -. x_min) /. x_span *. float_of_int (width - 1)))
    in
    let row_from_bottom =
      Stdlib.min (height - 1)
        (int_of_float ((ty y -. y_min) /. y_span *. float_of_int (height - 1)))
    in
    Bytes.set grid.(height - 1 - row_from_bottom) col label
  in
  List.iter (fun s -> List.iter (fun (x, y) -> place s.label x y) s.points) series;
  let buf = Buffer.create 1024 in
  (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
  let y_at row_from_top =
    let frac = float_of_int (height - 1 - row_from_top) /. float_of_int (height - 1) in
    let v = y_min +. (frac *. y_span) in
    if log_y then 10.0 ** v else v
  in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 || row = height - 1 || row = height / 2 then
          Printf.sprintf "%10.3g |" (y_at row)
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buf (label ^ Bytes.to_string line ^ "\n"))
    grid;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  let x_lo = if log_x then 10.0 ** x_min else x_min in
  let x_hi = if log_x then 10.0 ** x_max else x_max in
  let left = Printf.sprintf "%.4g" x_lo and right = Printf.sprintf "%.4g" x_hi in
  let pad = Stdlib.max 1 (width - String.length left - String.length right) in
  Buffer.add_string buf
    (Printf.sprintf "%10s  %s%s%s%s\n" "" left (String.make pad ' ') right
       (if log_x || log_y then
          Printf.sprintf "   (log %s)"
            (String.concat ","
               ((if log_x then [ "x" ] else []) @ if log_y then [ "y" ] else []))
        else ""));
  Buffer.contents buf

let single ?width ?height ?log_x ?log_y ?title points =
  plot ?width ?height ?log_x ?log_y ?title [ { label = '*'; points } ]

type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    underflow = 0;
    overflow = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = Stdlib.min i (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let total t = t.total
let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)

let density t i =
  if t.total = 0 then 0.0
  else float_of_int t.counts.(i) /. (float_of_int t.total *. t.width)

let render t ~width =
  let max_count = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let bar_len = c * width / max_count in
      Buffer.add_string buf (Printf.sprintf "%10.4g | %s %d\n" (bin_center t i) (String.make bar_len '#') c))
    t.counts;
  Buffer.contents buf

(** Minimal ASCII scatter/line plots, used by the experiment harness to
    emit figure-like output next to its tables (the paper being
    theory-only, our "figures" are curves such as the DP scaling law or
    the convexity valley). *)

type series = { label : char; points : (float * float) list }

val plot :
  ?width:int -> ?height:int -> ?log_x:bool -> ?log_y:bool -> ?title:string ->
  series list -> string
(** Render the series on one grid (default 72×20). Each series is drawn
    with its [label] character; later series overwrite earlier ones on
    collisions. Log axes require strictly positive coordinates. Raises
    [Invalid_argument] on empty input or non-finite coordinates. *)

val single :
  ?width:int -> ?height:int -> ?log_x:bool -> ?log_y:bool -> ?title:string ->
  (float * float) list -> string
(** One-series shorthand (label ['*']). *)

type fit = { slope : float; intercept : float; r_squared : float }

let linear pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = Kahan.create () and sxx = Kahan.create () and syy = Kahan.create () in
  Array.iter
    (fun (x, y) ->
      Kahan.add sxy ((x -. mx) *. (y -. my));
      Kahan.add sxx ((x -. mx) *. (x -. mx));
      Kahan.add syy ((y -. my) *. (y -. my)))
    pts;
  let sxx_v = Kahan.sum sxx in
  if Float.equal sxx_v 0.0 then invalid_arg "Regression.linear: x values are all equal";
  let slope = Kahan.sum sxy /. sxx_v in
  let intercept = my -. (slope *. mx) in
  let syy_v = Kahan.sum syy in
  let r_squared =
    if Float.equal syy_v 0.0 then 1.0 else Kahan.sum sxy *. Kahan.sum sxy /. (sxx_v *. syy_v)
  in
  { slope; intercept; r_squared }

let log_log pts =
  let safe (x, y) =
    if x <= 0.0 || y <= 0.0 then invalid_arg "Regression.log_log: coordinates must be positive";
    (log x, log y)
  in
  linear (Array.map safe pts)

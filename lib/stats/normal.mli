(** Standard normal distribution helpers (density, CDF, quantile). *)

val pdf : float -> float
(** Standard normal density. *)

val cdf : float -> float
(** Standard normal cumulative distribution function. *)

val quantile : float -> float
(** Inverse CDF (Acklam's rational approximation, relative error below
    1.2e-9). Raises [Invalid_argument] outside (0, 1). *)

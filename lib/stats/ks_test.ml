let statistic ~cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ks_test.statistic: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  (* NaN sorts first under Float.compare's total order; reject it
     rather than feeding it to [cdf]. *)
  if Float.is_nan sorted.(0) then invalid_arg "Ks_test.statistic: NaN in sample";
  let d = ref 0.0 in
  let nf = float_of_int n in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let above = (float_of_int (i + 1) /. nf) -. f in
      let below = f -. (float_of_int i /. nf) in
      if above > !d then d := above;
      if below > !d then d := below)
    sorted;
  !d

(* Two-sided asymptotic distribution: P(D_n > d) ~ 2 Σ_{k>=1} (-1)^{k-1}
   exp(-2 k^2 t^2), with the standard finite-n adjustment
   t = d (sqrt n + 0.12 + 0.11 / sqrt n). *)
let p_value ~n d =
  if n <= 0 then invalid_arg "Ks_test.p_value: n must be positive";
  if d <= 0.0 then 1.0
  else begin
    let sqrt_n = sqrt (float_of_int n) in
    let t = d *. (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) in
    let acc = ref 0.0 in
    let term_magnitude = ref infinity in
    let k = ref 1 in
    while !term_magnitude > 1e-12 && !k <= 100 do
      let kf = float_of_int !k in
      let term = exp (-2.0 *. kf *. kf *. t *. t) in
      term_magnitude := term;
      if !k mod 2 = 1 then acc := !acc +. term else acc := !acc -. term;
      incr k
    done;
    Float.max 0.0 (Float.min 1.0 (2.0 *. !acc))
  end

let test ?(alpha = 0.01) ~cdf xs =
  if not (alpha > 0.0 && alpha < 1.0) then invalid_arg "Ks_test.test: alpha out of (0,1)";
  let d = statistic ~cdf xs in
  p_value ~n:(Array.length xs) d >= alpha

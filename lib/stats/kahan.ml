type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.0; compensation = 0.0 }

let add t x =
  (* Kahan-Babuska variant: robust when |x| > |sum|. *)
  let s = t.sum +. x in
  if Float.abs t.sum >= Float.abs x then
    t.compensation <- t.compensation +. (t.sum -. s +. x)
  else t.compensation <- t.compensation +. (x -. s +. t.sum);
  t.sum <- s

let sum t = t.sum +. t.compensation

let sum_array arr =
  let t = create () in
  Array.iter (add t) arr;
  sum t

let sum_list l =
  let t = create () in
  List.iter (add t) l;
  sum t

(** Streaming mean / variance (Welford's online algorithm), plus
    normal-approximation confidence intervals for the mean. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Sample mean. Raises [Invalid_argument] if no observation. *)

val variance : t -> float
(** Unbiased sample variance (0 for fewer than two observations). *)

val stddev : t -> float
(** Square root of {!variance}. *)

val std_error : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val min : t -> float
val max : t -> float

val confidence_interval : t -> level:float -> float * float
(** [confidence_interval t ~level] is the normal-approximation interval
    for the mean at confidence [level] (e.g. 0.99). Valid for the large
    sample counts used by the Monte-Carlo experiments. *)

val copy : t -> t
(** Independent snapshot of an accumulator. *)

val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel update). The result is
    always a fresh accumulator, never an alias of an argument: mutating
    it later cannot affect [x] or [y]. *)

(** Plain-text table rendering shared by the experiment harness, the
    benches, and the CLI tools, so every "table" in EXPERIMENTS.md is
    produced by the same code path. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** Column headers with alignment. *)

val add_row : t -> string list -> unit
(** Append a row; must have exactly as many cells as columns. *)

val add_rule : t -> unit
(** Append a horizontal separator. *)

val render : t -> string
(** The formatted table, including title and column rules. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : float -> string
(** Format a float compactly (6 significant digits). *)

val cell_e : float -> string
(** Format a float in scientific notation (3 significant digits). *)

val cell_pct : float -> string
(** Format a ratio as a percentage with two decimals. *)

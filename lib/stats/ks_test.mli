(** One-sample Kolmogorov-Smirnov goodness-of-fit test: does a sample
    come from a given continuous distribution? Used by the test suite to
    validate every sampler against its analytic CDF, and by users to
    check fitted failure laws against their logs. *)

val statistic : cdf:(float -> float) -> float array -> float
(** sup_x |F_empirical(x) − F(x)| over the sample points. The sample
    need not be sorted; it must be non-empty and NaN-free
    ([Invalid_argument] otherwise). *)

val p_value : n:int -> float -> float
(** Asymptotic two-sided p-value for a KS statistic from [n] samples
    (Kolmogorov distribution, Marsaglia-Tsang-Wang series form;
    accurate for n >= 35 or so). *)

val test : ?alpha:float -> cdf:(float -> float) -> float array -> bool
(** [test ~alpha ~cdf xs] is [true] when the sample is {e consistent}
    with the distribution (p-value >= alpha, default 0.01). *)

(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec ln_gamma x =
  if x <= 0.0 then invalid_arg "Special.ln_gamma: argument must be positive";
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Incomplete gamma by series (converges fast for x < a + 1). *)
let gamma_p_series a x =
  let gln = ln_gamma a in
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < 500 do
    incr iter;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. 1e-15 then continue_ := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. gln)

(* Incomplete gamma by Lentz continued fraction (for x >= a + 1). *)
let gamma_q_cont_frac a x =
  let gln = ln_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let continue_ = ref true in
  let i = ref 1 in
  while !continue_ && !i < 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < 1e-15 then continue_ := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a must be positive";
  if x < 0.0 then invalid_arg "Special.gamma_p: x must be non-negative";
  if Float.equal x 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cont_frac a x

let gamma_q a x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: a must be positive";
  if x < 0.0 then invalid_arg "Special.gamma_q: x must be non-negative";
  if Float.equal x 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cont_frac a x

let erf x =
  if Float.equal x 0.0 then 0.0
  else begin
    let v = gamma_p 0.5 (x *. x) in
    if x > 0.0 then v else -.v
  end

let erfc x = if x < 0.0 then 1.0 +. gamma_p 0.5 (x *. x) else gamma_q 0.5 (x *. x)

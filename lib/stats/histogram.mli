(** Fixed-width histograms, used to sanity-check sampled distributions
    against analytic densities and to render textual distribution plots
    in the examples. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal cells;
    values outside the range are counted in overflow/underflow.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit

val total : t -> int
(** All observations, including out-of-range ones. *)

val counts : t -> int array
(** In-range bin counts (a copy). *)

val underflow : t -> int
val overflow : t -> int

val bin_center : t -> int -> float
(** Midpoint of bin [i]. *)

val density : t -> int -> float
(** Empirical density of bin [i]: count / (total * width). *)

val render : t -> width:int -> string
(** ASCII rendering, one line per bin. *)

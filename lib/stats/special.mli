(** Numeric special functions needed by the probability laws:
    log-gamma, regularized incomplete gamma, and the error function. *)

val ln_gamma : float -> float
(** [ln_gamma x] is ln Γ(x) for x > 0 (Lanczos approximation,
    relative error below 2e-10). *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma P(a, x),
    for a > 0, x >= 0. Series expansion for x < a+1, continued fraction
    otherwise. *)

val gamma_q : float -> float -> float
(** [gamma_q a x = 1 - gamma_p a x]. *)

val erf : float -> float
(** Error function, computed from the incomplete gamma. *)

val erfc : float -> float
(** Complementary error function. *)

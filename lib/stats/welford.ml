type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let mean t =
  if t.n = 0 then invalid_arg "Welford.mean: empty accumulator";
  t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let std_error t =
  if t.n = 0 then invalid_arg "Welford.std_error: empty accumulator";
  stddev t /. sqrt (float_of_int t.n)

let min t = t.min_v
let max t = t.max_v

let confidence_interval t ~level =
  if level <= 0.0 || level >= 1.0 then invalid_arg "confidence_interval: level must lie in (0,1)";
  let z = Normal.quantile (1.0 -. ((1.0 -. level) /. 2.0)) in
  let half = z *. std_error t in
  (mean t -. half, mean t +. half)

let copy t = { n = t.n; mean = t.mean; m2 = t.m2; min_v = t.min_v; max_v = t.max_v }

(* Both degenerate branches must return a fresh record: returning an
   input aliased would let a later [add] on the merge result mutate the
   argument behind the caller's back. *)
let merge x y =
  if x.n = 0 then copy y
  else if y.n = 0 then copy x
  else begin
    let n = x.n + y.n in
    let delta = y.mean -. x.mean in
    let nf = float_of_int n in
    let mean = x.mean +. (delta *. float_of_int y.n /. nf) in
    let m2 =
      x.m2 +. y.m2 +. (delta *. delta *. float_of_int x.n *. float_of_int y.n /. nf)
    in
    { n; mean; m2; min_v = Float.min x.min_v y.min_v; max_v = Float.max x.max_v y.max_v }
  end

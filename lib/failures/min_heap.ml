(* Backing slots hold [(key, payload) option] so that vacated slots can
   be nulled out: slots at indices >= size are always [None], hence a
   popped payload is collectable the moment [pop] returns. *)
type 'a t = { mutable items : (float * 'a) option array; mutable size : int }

let create () = { items = [||]; size = 0 }
let size t = t.size
let is_empty t = t.size = 0

let key t i =
  match t.items.(i) with
  | Some (k, _) -> k
  | None -> assert false (* slots below [size] are always occupied *)

let grow t =
  let capacity = Array.length t.items in
  if t.size = capacity then begin
    let fresh = Array.make (Stdlib.max 8 (2 * capacity)) None in
    Array.blit t.items 0 fresh 0 t.size;
    t.items <- fresh
  end

let swap t i j =
  let tmp = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if key t i < key t parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && key t left < key t !smallest then smallest := left;
  if right < t.size && key t right < key t !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t time payload =
  if Float.is_nan time then invalid_arg "Min_heap.push: NaN key";
  grow t;
  t.items.(t.size) <- Some (time, payload);
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else t.items.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.items.(0) in
    t.size <- t.size - 1;
    t.items.(0) <- t.items.(t.size);
    t.items.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    top
  end

let clear t =
  t.items <- [||];
  t.size <- 0

type 'a t = { mutable items : (float * 'a) array; mutable size : int }

let create () = { items = [||]; size = 0 }
let size t = t.size
let is_empty t = t.size = 0

let grow t =
  let capacity = Array.length t.items in
  if t.size = capacity then begin
    let fresh = Array.make (Stdlib.max 8 (2 * capacity)) t.items.(0) in
    Array.blit t.items 0 fresh 0 t.size;
    t.items <- fresh
  end

let swap t i j =
  let tmp = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst t.items.(i) < fst t.items.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && fst t.items.(left) < fst t.items.(!smallest) then smallest := left;
  if right < t.size && fst t.items.(right) < fst t.items.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t time payload =
  if t.size = 0 && Array.length t.items = 0 then t.items <- Array.make 8 (time, payload);
  grow t;
  t.items.(t.size) <- (time, payload);
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.items.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.items.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.items.(0) <- t.items.(t.size);
      sift_down t 0
    end;
    Some top
  end

let clear t = t.size <- 0

module Law = Ckpt_dist.Law

type t = { processors : int; proc_law : Law.t; downtime : float }

let make ?(downtime = 0.0) ~processors ~proc_law () =
  if processors <= 0 then invalid_arg "Platform.make: processors must be positive";
  if downtime < 0.0 then invalid_arg "Platform.make: downtime must be non-negative";
  match Law.validate proc_law with
  | Error msg -> invalid_arg ("Platform.make: " ^ msg)
  | Ok proc_law -> { processors; proc_law; downtime }

let exponential ?downtime ~processors ~proc_rate () =
  make ?downtime ~processors ~proc_law:(Law.exponential ~rate:proc_rate) ()

let platform_rate t =
  match t.proc_law with
  | Law.Exponential { rate } -> float_of_int t.processors *. rate
  | _ -> invalid_arg "Platform.platform_rate: only defined for Exponential laws"

let platform_mtbf t = Law.mean t.proc_law /. float_of_int t.processors

let to_string t =
  Printf.sprintf "Platform(p=%d, law=%s, D=%g)" t.processors (Law.to_string t.proc_law)
    t.downtime

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Fault-injector combinators over failure sources.

    An injector is, like {!Failure_stream.next_after}, a function from
    the current absolute time to the time of the next failure strictly
    later than it, queried with non-decreasing times. The combinators
    below build the fault vocabulary of the deterministic scenario
    harness ({!Ckpt_scenarios}) on top of the base streams: correlated
    aftershock cascades, transient (masked) faults, hazard rates that
    drift over time, and hazards coupled to the engine phase (failures
    concentrated in checkpoint/recovery I/O).

    All randomness comes from the [Ckpt_prng.Rng.t] passed at
    construction, and every combinator caches its pending failure, so
    for a fixed seed and a fixed (non-decreasing) query sequence the
    delivered failure times are bit-reproducible — the property the
    scenario registry's digests pin. Repeated queries strictly before
    the pending failure return it unchanged (query stability), matching
    the {!Failure_stream} contract.

    Injectors are single-domain mutable state, exactly like the streams
    they wrap: do not share one across domains. *)

type t

type phase = Work | Checkpoint | Recovery | Downtime
(** Mirror of the simulator's phase vocabulary, kept here so this
    library does not depend on the simulator. *)

val phase_equal : phase -> phase -> bool

val next : t -> float -> float
(** Query the next failure strictly after the given time. *)

val of_stream : Failure_stream.t -> t
(** Wrap a base stream. *)

val of_fun : (float -> float) -> t
(** Wrap a raw query function (it must obey the strictly-later,
    non-decreasing-queries contract). *)

val to_fun : t -> float -> float
(** The shape {!Ckpt_sim.Sim_run} expects as [next_failure]. *)

val never : t
(** No failure, ever: the failure-free control scenario. *)

val merge : t -> t -> t
(** Earliest-of-two superposition. Both sources observe every query, so
    their events at or before it are consumed on both sides. *)

val masked : survive_prob:float -> Ckpt_prng.Rng.t -> t -> t
(** Transient-fault model: each failure of the wrapped source is masked
    (survived — caught by retry/ECC, never observed by the workload)
    with probability [survive_prob] in [0, 1); unmasked failures behave
    fail-stop as usual. *)

val aftershocks :
  ?max_pending:int ->
  probability:float -> rate:float -> window:float -> Ckpt_prng.Rng.t -> t -> t
(** Correlated / cascading failures: every failure delivered by the
    combined source triggers, with the given [probability], a follow-up
    failure at an [Exponential rate] gap — kept only if it falls within
    [window] — and aftershocks cascade in turn (a sub-critical branching
    process: [probability < 1] keeps cascades finite). A cascade is
    spawned once the query clock passes its trigger failure; base
    failures absorbed invisibly inside the wrapped stream (e.g. during
    a skipped window) do not cascade. [max_pending] (default 1024)
    bounds the pending-aftershock heap as a safety valve. *)

val exp_phase_modulated :
  base_rate:float -> multiplier:(phase -> float) -> phase:(unit -> phase) ->
  Ckpt_prng.Rng.t -> t
(** Memoryless failures whose rate is [base_rate * multiplier ph] where
    [ph] is the phase reported by the [phase] callback at query time —
    the "failures during checkpoint/recovery I/O" model: wire [phase]
    to a cell updated by the engine's [on_phase] hook and give
    [Checkpoint]/[Recovery] a multiplier > 1. A multiplier of 0 makes a
    phase failure-free. The pending draw is redrawn (from the query
    point) whenever the phase changed since it was made — sound because
    the law is memoryless per phase. *)

val nonhomogeneous :
  ?horizon:float -> rate:(float -> float) -> rate_max:float -> Ckpt_prng.Rng.t -> t
(** Non-homogeneous Poisson process with instantaneous rate [rate t],
    via Ogata thinning under the constant envelope [rate_max] — the
    drifting-hazard model (infant mortality, wear-out ramps). [rate]
    must stay within [0, rate_max] (checked at every proposal).
    Proposals past [horizon] (default 1e15) return [infinity]. *)

(** Synthetic per-node cluster failure logs.

    The paper's Section 6 points at replaying "failure logs of
    production clusters" (the Failure Trace Archive). Those logs are not
    redistributable here, so this module generates the closest synthetic
    equivalent: a log with one failure-time series per node, drawn from
    Weibull / LogNormal / Exponential laws with optional per-node
    heterogeneity, which exercises exactly the same code paths (per-node
    renewal clocks, platform-level superposition, non-memoryless
    residual times). *)

type node = { node_id : int; failure_times : float array  (** sorted *) }

type t = private {
  nodes : node array;
  horizon : float;
  description : string;
}

val generate :
  ?heterogeneity:float ->
  law:Ckpt_dist.Law.t -> nodes:int -> horizon:float -> Ckpt_prng.Rng.t -> t
(** Each node runs an independent renewal process with the given law;
    [heterogeneity] (default 0) rescales each node's times by a factor
    uniform in [1-h, 1+h], modelling unequal hardware quality. *)

val node_count : t -> int
val failure_count : t -> int
(** Total failures across nodes. *)

val merged_times : t -> float array
(** All failure times merged and sorted: the platform failure trace
    under coordinated checkpointing (any node failure stops the
    application). *)

val to_trace : t -> Trace.t
(** Platform-level trace view of the log. *)

val node_mtbf : t -> float array
(** Empirical MTBF per node ([infinity] for failure-free nodes). *)

val save : t -> string -> unit
val load : string -> t

(** Recorded platform failure traces: generation, statistics, and a
    plain-text serialisation so workloads can be archived and replayed
    (our stand-in for the Failure Trace Archive logs cited by the
    paper). *)

type t = private {
  times : float array;  (** Sorted absolute failure times. *)
  horizon : float;  (** Observation window [0, horizon]. *)
  processors : int;
  law : string;  (** Human-readable description of the generating law. *)
  seed : int64;  (** Seed used for generation (0 if unknown/imported). *)
}

val generate :
  ?rejuvenation:Failure_stream.rejuvenation -> platform:Platform.t -> horizon:float ->
  Ckpt_prng.Rng.t -> t
(** Record every platform failure in [0, horizon]. *)

val of_times : ?processors:int -> ?law:string -> ?seed:int64 -> horizon:float ->
  float array -> t
(** Wrap external data; validates sortedness, positivity and the
    horizon. *)

val count : t -> int
val inter_arrival : t -> float array
(** Gaps between consecutive failures (first gap measured from 0). *)

val mtbf : t -> float
(** Empirical mean time between failures, horizon / count;
    [infinity] for an empty trace. *)

val to_stream : t -> Failure_stream.t
(** Replay source for the simulator. *)

val save : t -> string -> unit
(** Write to a file (text format: a small header, one time per line). *)

val load : string -> t
(** Parse a file produced by {!save}. Raises [Failure] on malformed
    input. *)

(** Cascading downtimes (the technical remark below Equation 6 of the
    paper).

    With several processors, a processor can fail while another one is
    down, so the platform-level downtime after a failure is not the
    constant D but a random variable D(p): the platform is back up only
    once a full D-length window has passed with no further failure.

    For an Exponential platform (rate λ) this is the classical waiting
    time for the first gap of length D in a Poisson process, measured
    from the initial failure:

    {v E(D_eff) = (e^(λD) − 1) / λ v}

    which tends to the paper's constant-D model as λD → 0 — this module
    quantifies exactly how accurate that lower bound is. *)

val expected_effective : lambda:float -> downtime:float -> float
(** E(D_eff) = (e^(λD) − 1)/λ. Requires λ > 0, D >= 0. *)

val expected_excess : lambda:float -> downtime:float -> float
(** E(D_eff) − D: the error made by the constant-downtime model. *)

val expected_cascade_failures : lambda:float -> downtime:float -> float
(** Expected number of {e additional} failures absorbed into one
    effective downtime window: e^(λD) − 1 (the count of failures until
    the first gap >= D is geometric with success probability e^(−λD)). *)

val simulate_one : lambda:float -> downtime:float -> Ckpt_prng.Rng.t -> float
(** One sample of D_eff: inject a failure at time 0, then draw Poisson
    arrivals until a D-length quiet window closes the downtime. *)

val simulate :
  lambda:float -> downtime:float -> runs:int -> Ckpt_prng.Rng.t ->
  Ckpt_stats.Welford.t
(** Monte-Carlo samples of D_eff (used in the tests and in experiment
    E12 to validate the closed form). *)

(** Platform-level failure event sources.

    A source answers one question for the simulator: given the current
    absolute time, when does the next platform failure strike? Three
    implementations are provided:

    - {!poisson}: the memoryless shortcut for Exponential platforms
      (equivalent to the renewal construction, but O(1) per query);
    - {!renewal}: p independent per-processor renewal processes with an
      arbitrary law, merged — the construction needed for the Section 6
      extension (no closed form, history matters);
    - {!of_trace}: replay of a recorded failure trace.

    Queries must be made with non-decreasing times; scheduled failures
    skipped over by a query (e.g. those falling inside a downtime
    window, during which the paper's model says no failure can occur)
    are consumed and the affected processors' clocks renew.

    {1 Simultaneity (exact-tie) semantics}

    All three implementations coalesce simultaneous failures: a query at
    time [t] consumes {e every} event with timestamp [<= t] — including
    several distinct processor failures carrying the {e same} timestamp —
    and returns the first event strictly later than [t]. Two processors
    failing at the same instant are therefore delivered to the simulator
    as a single platform failure: the model's fail-stop event brings the
    whole (single-workload) platform down, so the co-timed failures
    would in any case be absorbed by the downtime window the first one
    opens. Returning an event at exactly the query time is never an
    option — it would violate the strictly-later contract and livelock a
    zero-downtime engine loop.

    Concretely, at an exact-tie query time:
    - {!poisson}: a scheduled event at exactly [t] is absorbed and the
      next arrival is redrawn from [t] (memorylessness makes the redraw
      distribution-preserving);
    - {!renewal}: every per-processor clock showing [<= t] is popped and
      renewed at its own failure instant (or all clocks, under
      [All_processors]);
    - {!of_times}: every recorded time [<= t], duplicates included, is
      skipped in one query. *)

type t

type rejuvenation =
  | Failed_only
      (** Only the processor that failed restarts its failure clock —
          the realistic model advocated in the authors' related work. *)
  | All_processors
      (** Every processor is rejuvenated at each failure — the
          assumption underlying Bouguerra et al.'s analysis, kept here
          for comparison. Indistinguishable from [Failed_only] for
          Exponential laws. *)

val poisson : rate:float -> Ckpt_prng.Rng.t -> t
(** Memoryless source with platform failure rate [rate] > 0. *)

val renewal :
  ?rejuvenation:rejuvenation -> law:Ckpt_dist.Law.t -> processors:int ->
  Ckpt_prng.Rng.t -> t
(** Superposition of [processors] i.i.d. renewal processes. Default
    rejuvenation: [Failed_only]. *)

val of_platform : ?rejuvenation:rejuvenation -> Platform.t -> Ckpt_prng.Rng.t -> t
(** {!poisson} when the platform law is Exponential (using the
    superposed rate p·λproc), {!renewal} otherwise. *)

val of_times : float array -> t
(** Replay a fixed sorted array of absolute failure times; after the
    last one, no further failure occurs ({!next_after} returns
    [infinity]). Duplicate timestamps are allowed and coalesce into one
    delivered failure (see the simultaneity semantics above). Raises
    [Invalid_argument] if the array is not sorted or contains a negative
    or NaN time. *)

val next_after : t -> float -> float
(** [next_after t time] is the absolute time of the first failure
    strictly later than [time]. Consumes all failures at or before
    [time], coalescing exact ties (see the simultaneity semantics
    above). Times passed to successive calls must be non-decreasing. *)

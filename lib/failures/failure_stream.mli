(** Platform-level failure event sources.

    A source answers one question for the simulator: given the current
    absolute time, when does the next platform failure strike? Three
    implementations are provided:

    - {!poisson}: the memoryless shortcut for Exponential platforms
      (equivalent to the renewal construction, but O(1) per query);
    - {!renewal}: p independent per-processor renewal processes with an
      arbitrary law, merged — the construction needed for the Section 6
      extension (no closed form, history matters);
    - {!of_trace}: replay of a recorded failure trace.

    Queries must be made with non-decreasing times; scheduled failures
    skipped over by a query (e.g. those falling inside a downtime
    window, during which the paper's model says no failure can occur)
    are consumed and the affected processors' clocks renew. *)

type t

type rejuvenation =
  | Failed_only
      (** Only the processor that failed restarts its failure clock —
          the realistic model advocated in the authors' related work. *)
  | All_processors
      (** Every processor is rejuvenated at each failure — the
          assumption underlying Bouguerra et al.'s analysis, kept here
          for comparison. Indistinguishable from [Failed_only] for
          Exponential laws. *)

val poisson : rate:float -> Ckpt_prng.Rng.t -> t
(** Memoryless source with platform failure rate [rate] > 0. *)

val renewal :
  ?rejuvenation:rejuvenation -> law:Ckpt_dist.Law.t -> processors:int ->
  Ckpt_prng.Rng.t -> t
(** Superposition of [processors] i.i.d. renewal processes. Default
    rejuvenation: [Failed_only]. *)

val of_platform : ?rejuvenation:rejuvenation -> Platform.t -> Ckpt_prng.Rng.t -> t
(** {!poisson} when the platform law is Exponential (using the
    superposed rate p·λproc), {!renewal} otherwise. *)

val of_times : float array -> t
(** Replay a fixed sorted array of absolute failure times; after the
    last one, no further failure occurs ({!next_after} returns
    [infinity]). Raises [Invalid_argument] if the array is not sorted or
    contains a negative time. *)

val next_after : t -> float -> float
(** [next_after t time] is the absolute time of the first failure
    strictly later than [time]. Consumes all failures at or before
    [time]. Times passed to successive calls must be non-decreasing. *)

module Rng = Ckpt_prng.Rng
module Metrics = Ckpt_obs.Metrics

(* Branch-coverage counters for the fault harness: one cov.* counter
   per observable combinator branch, registered when the combinator is
   constructed — so the coverage universe of a process is exactly the
   branches its scenarios can reach, and `ckpt-sim --coverage` can
   sweep seeds until every registered counter is nonzero (see
   Ckpt_scenarios.Coverage). Registration is idempotent and happens at
   construction, never on the query hot path. *)
let cov name = Metrics.counter ("cov.injector." ^ name)

type t = { next : float -> float }

type phase = Work | Checkpoint | Recovery | Downtime

let phase_equal a b =
  match (a, b) with
  | Work, Work | Checkpoint, Checkpoint | Recovery, Recovery | Downtime, Downtime ->
      true
  | (Work | Checkpoint | Recovery | Downtime), _ -> false

let make f = { next = f }
let next t time = t.next time
let to_fun t = t.next
let of_fun f = make f
let of_stream stream = make (Failure_stream.next_after stream)
let never = make (fun (_ : float) -> infinity)

let exp_gap rng rate = -.log (Rng.float_pos rng) /. rate

let merge a b =
  let c_left = cov "merge.left" and c_right = cov "merge.right" in
  (* Both sources see every query, so both consume their events at or
     before it; the minimum of two pending strictly-later failures is
     itself pending and strictly later. *)
  make (fun time ->
      let fa = a.next time and fb = b.next time in
      (* NaN propagates (the executors reject it); coverage counts
         which source won the superposition race, ties to the left. *)
      if Float.is_nan fa || Float.is_nan fb then Float.min fa fb
      else if Float.compare fa fb <= 0 then begin
        Metrics.incr c_left;
        fa
      end
      else begin
        Metrics.incr c_right;
        fb
      end)

let masked ~survive_prob rng base =
  if not (survive_prob >= 0.0 && survive_prob < 1.0) then
    invalid_arg "Injector.masked: survive_prob must be in [0, 1)";
  let c_delivered = cov "masked.delivered" and c_masked = cov "masked.masked" in
  (* [delivered] caches the pending unmasked failure (query stability:
     repeated queries must not re-toss the coin); [floor] keeps the base
     queries non-decreasing while skipping masked instants. *)
  let delivered = ref neg_infinity in
  let floor = ref neg_infinity in
  let rec query time =
    if !delivered > time then !delivered
    else begin
      let fail = base.next (Float.max time !floor) in
      if Float.is_nan fail then fail
      else if Float.equal fail infinity || Rng.float rng >= survive_prob then begin
        if fail < infinity then Metrics.incr c_delivered;
        delivered := fail;
        fail
      end
      else begin
        Metrics.incr c_masked;
        (* Transient fault masked (survived by the platform): skip it
           and look strictly past the masked instant. *)
        floor := fail;
        query time
      end
    end
  in
  make query

let aftershocks ?(max_pending = 1024) ~probability ~rate ~window rng base =
  if not (probability >= 0.0 && probability < 1.0) then
    invalid_arg "Injector.aftershocks: probability must be in [0, 1)";
  if not (rate > 0.0) then invalid_arg "Injector.aftershocks: rate must be positive";
  if not (window > 0.0) then invalid_arg "Injector.aftershocks: window must be positive";
  let c_spawned = cov "aftershock.spawned"
  and c_declined = cov "aftershock.declined"
  and c_delivered = cov "aftershock.delivered"
  and c_base = cov "aftershock.base" in
  let heap : unit Min_heap.t = Min_heap.create () in
  (* The last base failure this injector delivered whose cascade has not
     yet been spawned. Spawning happens once the simulation clock passes
     the failure (the engine has handled it), so repeated queries at the
     same time cannot double-spawn. Aftershock deliveries spawn their
     own cascades when they are popped from the heap. *)
  let armed = ref neg_infinity in
  let spawn fail_time =
    if Rng.float rng < probability then begin
      let gap = exp_gap rng rate in
      if gap <= window && Min_heap.size heap < max_pending then begin
        Metrics.incr c_spawned;
        Min_heap.push heap (fail_time +. gap) ()
      end
      else Metrics.incr c_declined
    end
    else Metrics.incr c_declined
  in
  let query time =
    if !armed > neg_infinity && !armed <= time then begin
      let f = !armed in
      armed := neg_infinity;
      spawn f
    end;
    (* Aftershocks at or before the query time were absorbed (downtime
       or a skipped window); they still cascade — the node failures
       happened, the workload just never observed them directly. *)
    let rec drain () =
      match Min_heap.peek heap with
      | Some (f, ()) when f <= time ->
          ignore (Min_heap.pop heap);
          spawn f;
          drain ()
      | _ -> ()
    in
    drain ();
    let base_next = base.next time in
    match Min_heap.peek heap with
    | Some (f, ()) when f < base_next ->
        Metrics.incr c_delivered;
        f
    | _ ->
        if base_next < infinity then begin
          Metrics.incr c_base;
          armed := base_next
        end;
        base_next
  in
  make query

let exp_phase_modulated ~base_rate ~multiplier ~phase rng =
  if not (base_rate > 0.0) then
    invalid_arg "Injector.exp_phase_modulated: base_rate must be positive";
  let c_pending = cov "phase.pending" and c_redraw = cov "phase.redraw" in
  (* Pending draw and the phase it was drawn under: memorylessness lets
     us redraw from the query point whenever the phase has changed, and
     keeps repeated same-phase queries stable. *)
  let pending = ref None in
  let query time =
    let ph = phase () in
    match !pending with
    | Some (f, p) when phase_equal p ph && f > time ->
        Metrics.incr c_pending;
        f
    | _ ->
        Metrics.incr c_redraw;
        let m = multiplier ph in
        if not (m >= 0.0) then
          invalid_arg "Injector.exp_phase_modulated: negative or NaN multiplier";
        let f = if m > 0.0 then time +. exp_gap rng (base_rate *. m) else infinity in
        pending := Some (f, ph);
        f
  in
  make query

let nonhomogeneous ?(horizon = 1e15) ~rate ~rate_max rng =
  if not (rate_max > 0.0) then
    invalid_arg "Injector.nonhomogeneous: rate_max must be positive";
  let c_accept = cov "nhpp.accept" and c_reject = cov "nhpp.reject" in
  (* Ogata thinning against the constant envelope [rate_max], with the
     accepted arrival cached for query stability. Proposals past
     [horizon] short-circuit to "no further failure" so a rate function
     that vanishes at infinity cannot spin the proposal loop forever. *)
  let pending = ref neg_infinity in
  let query time =
    if !pending > time then !pending
    else begin
      let rec propose s =
        let s = s +. exp_gap rng rate_max in
        if s > horizon then infinity
        else begin
          let r = rate s in
          if not (r >= 0.0 && r <= rate_max) then
            invalid_arg "Injector.nonhomogeneous: rate must stay within [0, rate_max]";
          if Rng.float rng < r /. rate_max then begin
            Metrics.incr c_accept;
            s
          end
          else begin
            Metrics.incr c_reject;
            propose s
          end
        end
      in
      let f = propose time in
      pending := f;
      f
    end
  in
  make query

type t = {
  times : float array;
  horizon : float;
  processors : int;
  law : string;
  seed : int64;
}

let generate ?rejuvenation ~platform ~horizon rng =
  if horizon <= 0.0 then invalid_arg "Trace.generate: horizon must be positive";
  let stream = Failure_stream.of_platform ?rejuvenation platform rng in
  let rec collect acc time =
    let next = Failure_stream.next_after stream time in
    if next > horizon then List.rev acc else collect (next :: acc) next
  in
  let times = Array.of_list (collect [] 0.0) in
  {
    times;
    horizon;
    processors = platform.Platform.processors;
    law = Ckpt_dist.Law.to_string platform.Platform.proc_law;
    seed = Ckpt_prng.Rng.seed_of rng;
  }

let of_times ?(processors = 1) ?(law = "imported") ?(seed = 0L) ~horizon times =
  if horizon <= 0.0 then invalid_arg "Trace.of_times: horizon must be positive";
  let n = Array.length times in
  for i = 0 to n - 1 do
    if times.(i) < 0.0 || times.(i) > horizon then
      invalid_arg "Trace.of_times: time out of [0, horizon]";
    if i > 0 && times.(i) < times.(i - 1) then invalid_arg "Trace.of_times: unsorted times"
  done;
  { times = Array.copy times; horizon; processors; law; seed }

let count t = Array.length t.times

let inter_arrival t =
  Array.mapi (fun i x -> if i = 0 then x else x -. t.times.(i - 1)) t.times

let mtbf t = if count t = 0 then infinity else t.horizon /. float_of_int (count t)

let to_stream t = Failure_stream.of_times t.times

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# ckpt-workflows failure trace v1\n";
      Printf.fprintf oc "horizon %.17g\n" t.horizon;
      Printf.fprintf oc "processors %d\n" t.processors;
      Printf.fprintf oc "law %s\n" t.law;
      Printf.fprintf oc "seed %Ld\n" t.seed;
      Printf.fprintf oc "count %d\n" (count t);
      Array.iter (fun time -> Printf.fprintf oc "%.17g\n" time) t.times)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail fmt = Printf.ksprintf (fun msg -> failwith ("Trace.load: " ^ msg)) fmt in
      let line () = try Some (input_line ic) with End_of_file -> None in
      (match line () with
      | Some "# ckpt-workflows failure trace v1" -> ()
      | _ -> fail "bad magic header in %s" path);
      let field name =
        match line () with
        | Some l when String.length l > String.length name
                      && String.sub l 0 (String.length name) = name ->
            String.sub l (String.length name + 1) (String.length l - String.length name - 1)
        | _ -> fail "missing field %s" name
      in
      let horizon = float_of_string (field "horizon") in
      let processors = int_of_string (field "processors") in
      let law = field "law" in
      let seed = Int64.of_string (field "seed") in
      let n = int_of_string (field "count") in
      let times =
        Array.init n (fun i ->
            match line () with
            | Some l -> float_of_string (String.trim l)
            | None -> fail "truncated trace: expected %d times, got %d" n i)
      in
      of_times ~processors ~law ~seed ~horizon times)

(** The execution platform of Section 2: [processors] identical
    processors, each subject to failures with inter-arrival law
    [proc_law], a downtime [downtime] (D) after each failure, and
    coordinated checkpoint/rollback at the system level. *)

type t = private {
  processors : int;  (** p >= 1 *)
  proc_law : Ckpt_dist.Law.t;  (** per-processor inter-arrival law *)
  downtime : float;  (** D >= 0 *)
}

val make : ?downtime:float -> processors:int -> proc_law:Ckpt_dist.Law.t -> unit -> t
(** Raises [Invalid_argument] on a non-positive processor count, invalid
    law, or negative downtime. [downtime] defaults to 0. *)

val exponential : ?downtime:float -> processors:int -> proc_rate:float -> unit -> t
(** Platform with Exponential(λproc) processors. *)

val platform_rate : t -> float
(** For an Exponential per-processor law, the platform failure rate
    λ = p·λproc (superposition of p Poisson processes). Raises
    [Invalid_argument] for other laws, where no single rate exists. *)

val platform_mtbf : t -> float
(** Mean time between platform failures: per-processor mean / p. Exact
    for Exponential; for other laws this is the long-run renewal rate
    approximation. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

let check ~lambda ~downtime =
  if not (lambda > 0.0) then invalid_arg "Cascading: lambda must be positive";
  if downtime < 0.0 then invalid_arg "Cascading: downtime must be non-negative"

let expected_effective ~lambda ~downtime =
  check ~lambda ~downtime;
  Float.expm1 (lambda *. downtime) /. lambda

let expected_excess ~lambda ~downtime =
  expected_effective ~lambda ~downtime -. downtime

let expected_cascade_failures ~lambda ~downtime =
  check ~lambda ~downtime;
  Float.expm1 (lambda *. downtime)

let simulate_one ~lambda ~downtime rng =
  check ~lambda ~downtime;
  (* Failure at time 0; the platform recovers at the end of the first
     D-length gap between consecutive failures. *)
  let rec wait last_failure =
    let gap = -.log (Rng.float_pos rng) /. lambda in
    if gap >= downtime then last_failure +. downtime else wait (last_failure +. gap)
  in
  wait 0.0

let simulate ~lambda ~downtime ~runs rng =
  if runs <= 0 then invalid_arg "Cascading.simulate: runs must be positive";
  let acc = Welford.create () in
  for run = 0 to runs - 1 do
    let run_rng = Rng.substream rng (Printf.sprintf "cascade-%d" run) in
    Welford.add acc (simulate_one ~lambda ~downtime run_rng)
  done;
  acc

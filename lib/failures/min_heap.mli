(** Array-based binary min-heap of (time, payload) pairs, ordered by
    time. Internal workhorse of the failure streams. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Smallest element, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

(** Array-based binary min-heap of (time, payload) pairs, ordered by
    time. Internal workhorse of the failure streams.

    Vacated slots are nulled out on {!pop} and {!clear} drops the whole
    backing array, so the heap never retains a reference to a payload it
    no longer owns. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN key: NaN is incomparable, so
    admitting one would silently break the heap-order invariant (every
    [<] involving it is false) and corrupt the failure timeline. *)

val peek : 'a t -> (float * 'a) option
(** Smallest element, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

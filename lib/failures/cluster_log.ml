module Rng = Ckpt_prng.Rng
module Law = Ckpt_dist.Law

type node = { node_id : int; failure_times : float array }

type t = { nodes : node array; horizon : float; description : string }

let generate ?(heterogeneity = 0.0) ~law ~nodes ~horizon rng =
  if nodes <= 0 then invalid_arg "Cluster_log.generate: nodes must be positive";
  if horizon <= 0.0 then invalid_arg "Cluster_log.generate: horizon must be positive";
  if heterogeneity < 0.0 || heterogeneity >= 1.0 then
    invalid_arg "Cluster_log.generate: heterogeneity must lie in [0,1)";
  let make_node node_id =
    let node_rng = Rng.substream rng (Printf.sprintf "node-%d" node_id) in
    let scale =
      if Float.equal heterogeneity 0.0 then 1.0
      else Rng.float_range node_rng (1.0 -. heterogeneity) (1.0 +. heterogeneity)
    in
    let rec collect acc time =
      let time = time +. (scale *. Law.sample law node_rng) in
      if time > horizon then List.rev acc else collect (time :: acc) time
    in
    { node_id; failure_times = Array.of_list (collect [] 0.0) }
  in
  {
    nodes = Array.init nodes make_node;
    horizon;
    description =
      Printf.sprintf "%s x %d nodes, heterogeneity=%g, seed=%Ld" (Law.to_string law) nodes
        heterogeneity (Rng.seed_of rng);
  }

let node_count t = Array.length t.nodes

let failure_count t =
  Array.fold_left (fun acc node -> acc + Array.length node.failure_times) 0 t.nodes

let merged_times t =
  let all =
    Array.concat (Array.to_list (Array.map (fun node -> node.failure_times) t.nodes))
  in
  Array.sort Float.compare all;
  all

let to_trace t =
  Trace.of_times ~processors:(node_count t) ~law:t.description ~horizon:t.horizon
    (merged_times t)

let node_mtbf t =
  Array.map
    (fun node ->
      let n = Array.length node.failure_times in
      if n = 0 then infinity else t.horizon /. float_of_int n)
    t.nodes

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# ckpt-workflows cluster log v1\n";
      Printf.fprintf oc "horizon %.17g\n" t.horizon;
      Printf.fprintf oc "description %s\n" t.description;
      Printf.fprintf oc "nodes %d\n" (node_count t);
      Array.iter
        (fun node ->
          Printf.fprintf oc "node %d %d" node.node_id (Array.length node.failure_times);
          Array.iter (fun time -> Printf.fprintf oc " %.17g" time) node.failure_times;
          Printf.fprintf oc "\n")
        t.nodes)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail fmt = Printf.ksprintf (fun msg -> failwith ("Cluster_log.load: " ^ msg)) fmt in
      let line () = try Some (input_line ic) with End_of_file -> None in
      (match line () with
      | Some "# ckpt-workflows cluster log v1" -> ()
      | _ -> fail "bad magic header in %s" path);
      let field name =
        match line () with
        | Some l when String.length l > String.length name
                      && String.sub l 0 (String.length name) = name ->
            String.sub l (String.length name + 1) (String.length l - String.length name - 1)
        | _ -> fail "missing field %s" name
      in
      let horizon = float_of_string (field "horizon") in
      let description = field "description" in
      let n = int_of_string (field "nodes") in
      let nodes =
        Array.init n (fun i ->
            match line () with
            | None -> fail "truncated log: expected %d nodes, got %d" n i
            | Some l -> begin
                match String.split_on_char ' ' (String.trim l) with
                | "node" :: id :: count :: rest ->
                    let node_id = int_of_string id in
                    let count = int_of_string count in
                    let times = List.map float_of_string rest in
                    if List.length times <> count then
                      fail "node %d: expected %d times, got %d" node_id count
                        (List.length times);
                    { node_id; failure_times = Array.of_list times }
                | _ -> fail "malformed node line: %s" l
              end)
      in
      { nodes; horizon; description })

module Rng = Ckpt_prng.Rng
module Law = Ckpt_dist.Law

type rejuvenation = Failed_only | All_processors

type poisson_state = { rate : float; p_rng : Rng.t; mutable next : float }

type renewal_state = {
  law : Law.t;
  rejuvenation : rejuvenation;
  r_rng : Rng.t;
  heap : int Min_heap.t;  (* (absolute failure time, processor) *)
}

type replay_state = { times : float array; mutable cursor : int }

type state =
  | Poisson of poisson_state
  | Renewal of renewal_state
  | Replay of replay_state

type t = { state : state; mutable last_query : float }

let poisson ~rate rng =
  (* [not (rate > 0)] also rejects NaN, which [rate <= 0] would admit. *)
  if not (rate > 0.0) then invalid_arg "Failure_stream.poisson: rate must be positive";
  let first = -.log (Rng.float_pos rng) /. rate in
  { state = Poisson { rate; p_rng = rng; next = first }; last_query = neg_infinity }

let renewal ?(rejuvenation = Failed_only) ~law ~processors rng =
  if processors <= 0 then invalid_arg "Failure_stream.renewal: processors must be positive";
  (match Law.validate law with
  | Error msg -> invalid_arg ("Failure_stream.renewal: " ^ msg)
  | Ok _ -> ());
  let heap = Min_heap.create () in
  for proc = 0 to processors - 1 do
    Min_heap.push heap (Law.sample law rng) proc
  done;
  { state = Renewal { law; rejuvenation; r_rng = rng; heap }; last_query = neg_infinity }

let of_platform ?rejuvenation (platform : Platform.t) rng =
  match platform.Platform.proc_law with
  | Law.Exponential { rate } ->
      poisson ~rate:(float_of_int platform.Platform.processors *. rate) rng
  | law -> renewal ?rejuvenation ~law ~processors:platform.Platform.processors rng

let of_times times =
  let n = Array.length times in
  for i = 0 to n - 1 do
    if not (times.(i) >= 0.0) then
      invalid_arg "Failure_stream.of_times: negative or NaN time";
    if i > 0 && times.(i) < times.(i - 1) then
      invalid_arg "Failure_stream.of_times: times must be sorted"
  done;
  { state = Replay { times = Array.copy times; cursor = 0 }; last_query = neg_infinity }

let renewal_next_after r time =
  let rec loop () =
    match Min_heap.peek r.heap with
    | None -> assert false (* processors >= 1, heap never empty *)
    | Some (fail_time, proc) ->
        if fail_time > time then fail_time
        else begin
          (* This failure falls at or before the query point (absorbed by
             a downtime window or already handled): the processor's clock
             renews at its failure instant. *)
          ignore (Min_heap.pop r.heap);
          (match r.rejuvenation with
          | Failed_only -> Min_heap.push r.heap (fail_time +. Law.sample r.law r.r_rng) proc
          | All_processors ->
              let procs = ref [ proc ] in
              let rec drain () =
                match Min_heap.pop r.heap with
                | None -> ()
                | Some (_, p) ->
                    procs := p :: !procs;
                    drain ()
              in
              drain ();
              List.iter
                (fun p -> Min_heap.push r.heap (fail_time +. Law.sample r.law r.r_rng) p)
                !procs);
          loop ()
        end
  in
  loop ()

let next_after t time =
  if time < t.last_query then
    invalid_arg "Failure_stream.next_after: query times must be non-decreasing";
  t.last_query <- time;
  match t.state with
  | Poisson p ->
      (* Memorylessness: if the scheduled event is in the past (it fell
         inside a skipped window), redraw from the query point. *)
      if p.next > time then p.next
      else begin
        let fresh = time -. (log (Rng.float_pos p.p_rng) /. p.rate) in
        p.next <- fresh;
        fresh
      end
  | Renewal r -> renewal_next_after r time
  | Replay r ->
      let n = Array.length r.times in
      while r.cursor < n && r.times.(r.cursor) <= time do
        r.cursor <- r.cursor + 1
      done;
      if r.cursor < n then r.times.(r.cursor) else infinity

exception Parse_error of string

let parse_error source line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "%s:%d: %s" source line msg)))
    fmt

let parse_lines source lines =
  let tasks = ref [] (* reversed *) in
  let edges = ref [] in
  let ids : (string, int) Hashtbl.t =
    Hashtbl.create 16 [@@lint.domain_safe "parser-local symbol table; never escapes parse_lines"]
  in
  let float_field line_no name value =
    match float_of_string_opt value with
    | Some v -> v
    | None -> parse_error source line_no "%s: not a number: %S" name value
  in
  let handle line_no line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else begin
      match List.filter (( <> ) "") (String.split_on_char ' ' line) with
      | [ "task"; name; work; checkpoint; recovery ] ->
          if Hashtbl.mem ids name then parse_error source line_no "duplicate task %S" name;
          let id = Hashtbl.length ids in
          Hashtbl.add ids name id;
          let task =
            try
              Task.make ~id ~name
                ~work:(float_field line_no "work" work)
                ~checkpoint_cost:(float_field line_no "checkpoint_cost" checkpoint)
                ~recovery_cost:(float_field line_no "recovery_cost" recovery)
                ()
            with Invalid_argument msg -> parse_error source line_no "%s" msg
          in
          tasks := task :: !tasks
      | [ "edge"; src; dst ] ->
          let resolve name =
            match Hashtbl.find_opt ids name with
            | Some id -> id
            | None -> parse_error source line_no "unknown task %S" name
          in
          edges := (resolve src, resolve dst) :: !edges
      | _ -> parse_error source line_no "cannot parse %S" line
    end
  in
  List.iteri (fun i line -> handle (i + 1) line) lines;
  if !tasks = [] then raise (Parse_error (source ^ ": spec contains no task"));
  try Dag.create (List.rev !tasks) (List.rev !edges)
  with Dag.Invalid msg -> raise (Parse_error (source ^ ": " ^ msg))

let parse_string ?(source = "<string>") text =
  parse_lines source (String.split_on_char '\n' text)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse_lines path (read []))

let to_string dag =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# checkpoint-workflows dag spec\n";
  Array.iter
    (fun (task : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %s %.17g %.17g %.17g\n" task.Task.name task.Task.work
           task.Task.checkpoint_cost task.Task.recovery_cost))
    (Dag.tasks dag);
  List.iter
    (fun (src, dst) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s\n" (Dag.task dag src).Task.name
           (Dag.task dag dst).Task.name))
    (Dag.edges dag);
  Buffer.contents buf

let save dag path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string dag))

(** Directed acyclic graphs of {!Task.t}, i.e. the application graphs
    G = (V, E) of Section 2. Immutable after construction. *)

type t

exception Invalid of string
(** Raised by {!create} on malformed input (bad ids, duplicate edges,
    cycles). *)

val create : Task.t list -> (Task.id * Task.id) list -> t
(** [create tasks edges] builds a validated DAG. Tasks must carry ids
    exactly 0 .. n-1 (any order); edges must connect existing distinct
    ids, contain no duplicates, and induce no cycle. *)

val of_chain : Task.t list -> t
(** Chain T1 -> T2 -> ... -> Tn in list order. Tasks are re-indexed
    0 .. n-1 in that order. *)

val of_independent : Task.t list -> t
(** Edge-less DAG of independent tasks (re-indexed in list order). *)

val size : t -> int
val task : t -> Task.id -> Task.t
val tasks : t -> Task.t array
(** Tasks indexed by id (a fresh copy). *)

val edges : t -> (Task.id * Task.id) list
val successors : t -> Task.id -> Task.id list
val predecessors : t -> Task.id -> Task.id list
val sources : t -> Task.id list
(** Tasks without predecessors, in increasing id order. *)

val sinks : t -> Task.id list
(** Tasks without successors, in increasing id order. *)

val total_work : t -> float
(** Sum of task weights. *)

val is_chain : t -> Task.t list option
(** [Some tasks-in-chain-order] iff the DAG is a linear chain (each task
    has at most one predecessor and one successor, single component path
    covering all tasks). A single task and the empty DAG count as
    chains. *)

val is_independent : t -> bool
(** True iff the DAG has no edge. *)

val topological_order : t -> Task.id list
(** A deterministic topological order (Kahn's algorithm, smallest id
    first among ready tasks). *)

val is_linearization : t -> Task.id list -> bool
(** Does the given permutation of all ids respect every dependence? *)

val all_linearizations : ?limit:int -> t -> Task.id list list
(** Every topological order of the DAG, up to [limit] (default 100_000);
    raises [Invalid_argument] if the count exceeds the limit. Intended
    for the exact solvers on small DAGs. *)

val count_linearizations : ?limit:int -> t -> int
(** Number of topological orders (same limit semantics). *)

val critical_path : t -> float
(** Length (total work) of a heaviest path; for a chain this is the
    total work. *)

val reachable_from : t -> Task.id -> Task.id list
(** Transitive successors of a task (excluding itself), sorted. *)

val to_dot : t -> string
(** Graphviz rendering, for documentation and debugging. *)

val pp : Format.formatter -> t -> unit

(** Random workflow generators used by the tests, the experiments, and
    the examples. All randomness flows through an explicit
    {!Ckpt_prng.Rng.t}, so generated workloads are reproducible. *)

type cost_spec = {
  work_range : float * float;  (** w_i uniform in this range. *)
  checkpoint_range : float * float;  (** C_i uniform in this range. *)
  recovery_range : float * float;  (** R_i uniform in this range. *)
}

val uniform_costs :
  ?work:float * float -> ?checkpoint:float * float -> ?recovery:float * float -> unit ->
  cost_spec
(** Defaults: work in [1, 10], checkpoint in [0.1, 1], recovery in
    [0.1, 1]. Ranges must satisfy 0 <= lo <= hi (work lo > 0). *)

val constant_costs : work:float -> checkpoint:float -> recovery:float -> cost_spec
(** Degenerate ranges: every task identical. *)

val task_list : Ckpt_prng.Rng.t -> cost_spec -> n:int -> Task.t list
(** [n] tasks with ids 0..n-1 and costs drawn from the spec. *)

val chain : Ckpt_prng.Rng.t -> cost_spec -> n:int -> Dag.t
(** A linear chain of [n] random tasks. *)

val independent : Ckpt_prng.Rng.t -> cost_spec -> n:int -> Dag.t
(** [n] independent random tasks. *)

val fork_join : Ckpt_prng.Rng.t -> cost_spec -> stages:int -> width:int -> Dag.t
(** [stages] fork-join stages: source -> [width] parallel tasks -> sink,
    chained. Size is [stages * (width + 2)]. *)

val diamond : Ckpt_prng.Rng.t -> cost_spec -> width:int -> Dag.t
(** One fork-join stage (a "diamond"): 1 + width + 1 tasks. *)

val layered :
  Ckpt_prng.Rng.t -> cost_spec -> layers:int -> width:int -> edge_prob:float -> Dag.t
(** Layer-by-layer random DAG: tasks in layer k may depend on tasks of
    layer k-1, each potential edge kept with probability [edge_prob];
    every non-first-layer task receives at least one predecessor so the
    layering is genuine. *)

val random_dag : Ckpt_prng.Rng.t -> cost_spec -> n:int -> edge_prob:float -> Dag.t
(** Erdős–Rényi style DAG: each pair (i, j) with i < j becomes an edge
    with probability [edge_prob]. *)

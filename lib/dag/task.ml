type id = int

type t = {
  id : id;
  name : string;
  work : float;
  checkpoint_cost : float;
  recovery_cost : float;
}

let make ~id ?name ~work ?(checkpoint_cost = 0.0) ?(recovery_cost = 0.0) () =
  if id < 0 then invalid_arg "Task.make: id must be non-negative";
  if not (work > 0.0) then invalid_arg "Task.make: work must be positive";
  if checkpoint_cost < 0.0 then invalid_arg "Task.make: checkpoint_cost must be non-negative";
  if recovery_cost < 0.0 then invalid_arg "Task.make: recovery_cost must be non-negative";
  let name = match name with Some n -> n | None -> Printf.sprintf "T%d" (id + 1) in
  { id; name; work; checkpoint_cost; recovery_cost }

let with_costs t ~checkpoint_cost ~recovery_cost =
  if checkpoint_cost < 0.0 || recovery_cost < 0.0 then
    invalid_arg "Task.with_costs: costs must be non-negative";
  { t with checkpoint_cost; recovery_cost }

let with_id t id =
  if id < 0 then invalid_arg "Task.with_id: id must be non-negative";
  { t with id }

let equal a b = a.id = b.id && a.name = b.name && a.work = b.work
  && a.checkpoint_cost = b.checkpoint_cost && a.recovery_cost = b.recovery_cost

let compare a b = Stdlib.compare a.id b.id

let to_string t =
  Printf.sprintf "%s(id=%d, w=%g, C=%g, R=%g)" t.name t.id t.work t.checkpoint_cost
    t.recovery_cost

let pp fmt t = Format.pp_print_string fmt (to_string t)

type t = {
  tasks : Task.t array;  (* index = id *)
  succs : Task.id list array;  (* sorted increasing *)
  preds : Task.id list array;  (* sorted increasing *)
  edges : (Task.id * Task.id) list;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_tasks task_list =
  let n = List.length task_list in
  let slots = Array.make n None in
  List.iter
    (fun (task : Task.t) ->
      if task.Task.id < 0 || task.Task.id >= n then
        invalid "task id %d out of range 0..%d" task.Task.id (n - 1);
      match slots.(task.Task.id) with
      | Some _ -> invalid "duplicate task id %d" task.Task.id
      | None -> slots.(task.Task.id) <- Some task)
    task_list;
  Array.map (fun slot -> match slot with Some t -> t | None -> assert false) slots

let check_acyclic n succs =
  (* Kahn's algorithm: if we cannot consume all vertices, there is a cycle. *)
  let indegree = Array.make n 0 in
  Array.iter (List.iter (fun j -> indegree.(j) <- indegree.(j) + 1)) succs;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !seen <> n then invalid "graph contains a cycle"

let create task_list edge_list =
  let tasks = check_tasks task_list in
  let n = Array.length tasks in
  let succs = Array.make n [] and preds = Array.make n [] in
  let seen_edges =
    Hashtbl.create (List.length edge_list)
      [@@lint.domain_safe "construction-local duplicate-edge check; never escapes create"]
  in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid "edge (%d,%d) out of range" src dst;
      if src = dst then invalid "self-loop on task %d" src;
      if Hashtbl.mem seen_edges (src, dst) then invalid "duplicate edge (%d,%d)" src dst;
      Hashtbl.add seen_edges (src, dst) ();
      succs.(src) <- dst :: succs.(src);
      preds.(dst) <- src :: preds.(dst))
    edge_list;
  Array.iteri (fun i l -> succs.(i) <- List.sort compare l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort compare l) preds;
  check_acyclic n succs;
  { tasks; succs; preds; edges = List.sort compare edge_list }

let reindex task_list =
  List.mapi (fun i task -> Task.with_id task i) task_list

let of_chain task_list =
  let tasks = reindex task_list in
  let n = List.length tasks in
  let edges = List.init (Stdlib.max 0 (n - 1)) (fun i -> (i, i + 1)) in
  create tasks edges

let of_independent task_list = create (reindex task_list) []

let size t = Array.length t.tasks

let task t id =
  if id < 0 || id >= size t then invalid_arg "Dag.task: id out of range";
  t.tasks.(id)

let tasks t = Array.copy t.tasks
let edges t = t.edges
let successors t id = t.succs.(id)
let predecessors t id = t.preds.(id)

let sources t =
  List.filter (fun i -> t.preds.(i) = []) (List.init (size t) Fun.id)

let sinks t =
  List.filter (fun i -> t.succs.(i) = []) (List.init (size t) Fun.id)

let total_work t =
  Array.fold_left (fun acc (task : Task.t) -> acc +. task.Task.work) 0.0 t.tasks

let is_chain t =
  let n = size t in
  if n = 0 then Some []
  else begin
    let degrees_ok =
      Array.for_all (fun i -> List.length t.succs.(i) <= 1 && List.length t.preds.(i) <= 1)
        (Array.init n Fun.id)
    in
    if not degrees_ok then None
    else
      match sources t with
      | [ start ] ->
          (* Walk the unique path and check it covers all tasks. *)
          let rec walk acc i =
            match t.succs.(i) with
            | [] -> List.rev (t.tasks.(i) :: acc)
            | [ j ] -> walk (t.tasks.(i) :: acc) j
            | _ :: _ :: _ -> assert false
          in
          let path = walk [] start in
          if List.length path = n then Some path else None
      | _ -> None
  end

let is_independent t = t.edges = []

let topological_order t =
  let n = size t in
  let indegree = Array.make n 0 in
  Array.iter (List.iter (fun j -> indegree.(j) <- indegree.(j) + 1)) t.succs;
  (* A sorted ready-set gives a deterministic order. *)
  let module IntSet = Set.Make (Int) in
  let ready = ref IntSet.empty in
  Array.iteri (fun i d -> if d = 0 then ready := IntSet.add i !ready) indegree;
  let rec loop acc =
    match IntSet.min_elt_opt !ready with
    | None -> List.rev acc
    | Some i ->
        ready := IntSet.remove i !ready;
        List.iter
          (fun j ->
            indegree.(j) <- indegree.(j) - 1;
            if indegree.(j) = 0 then ready := IntSet.add j !ready)
          t.succs.(i);
        loop (i :: acc)
  in
  loop []

let is_linearization t order =
  let n = size t in
  if List.length order <> n then false
  else begin
    let position = Array.make n (-1) in
    let ok = ref true in
    List.iteri
      (fun pos i ->
        if i < 0 || i >= n || position.(i) >= 0 then ok := false else position.(i) <- pos)
      order;
    !ok
    && List.for_all (fun (src, dst) -> position.(src) < position.(dst)) t.edges
  end

let all_linearizations ?(limit = 100_000) t =
  let n = size t in
  let indegree = Array.make n 0 in
  Array.iter (List.iter (fun j -> indegree.(j) <- indegree.(j) + 1)) t.succs;
  let results = ref [] in
  let count = ref 0 in
  let rec extend prefix remaining =
    if remaining = 0 then begin
      incr count;
      if !count > limit then
        invalid_arg "Dag.all_linearizations: too many linearizations";
      results := List.rev prefix :: !results
    end
    else
      for i = 0 to n - 1 do
        if indegree.(i) = 0 then begin
          indegree.(i) <- -1; (* mark used *)
          List.iter (fun j -> indegree.(j) <- indegree.(j) - 1) t.succs.(i);
          extend (i :: prefix) (remaining - 1);
          List.iter (fun j -> indegree.(j) <- indegree.(j) + 1) t.succs.(i);
          indegree.(i) <- 0
        end
      done
  in
  extend [] n;
  List.rev !results

let count_linearizations ?limit t = List.length (all_linearizations ?limit t)

let critical_path t =
  let order = topological_order t in
  let best = Array.make (size t) 0.0 in
  List.iter
    (fun i ->
      let from_preds =
        List.fold_left (fun acc p -> Float.max acc best.(p)) 0.0 t.preds.(i)
      in
      best.(i) <- from_preds +. t.tasks.(i).Task.work)
    order;
  Array.fold_left Float.max 0.0 best

let reachable_from t start =
  let n = size t in
  let visited = Array.make n false in
  let rec dfs i =
    List.iter
      (fun j ->
        if not visited.(j) then begin
          visited.(j) <- true;
          dfs j
        end)
      t.succs.(i)
  in
  dfs start;
  List.filter (fun i -> visited.(i)) (List.init n Fun.id)

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph workflow {\n";
  Array.iter
    (fun (task : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"%s\\nw=%g C=%g\"];\n" task.Task.id task.Task.name
           task.Task.work task.Task.checkpoint_cost))
    t.tasks;
  List.iter
    (fun (src, dst) -> Buffer.add_string buf (Printf.sprintf "  t%d -> t%d;\n" src dst))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "Dag(%d tasks, %d edges)" (size t) (List.length t.edges)

(** A workflow task, as in Section 2 of the paper: a computational
    weight [work] (w_i), the cost [checkpoint_cost] (C_i) of taking a
    checkpoint right after the task, and the cost [recovery_cost] (R_i)
    of recovering from that checkpoint. *)

type id = int
(** Tasks in a DAG of size n carry ids 0 .. n-1. *)

type t = private {
  id : id;
  name : string;
  work : float;  (** w_i > 0 *)
  checkpoint_cost : float;  (** C_i >= 0 *)
  recovery_cost : float;  (** R_i >= 0 *)
}

val make :
  id:id -> ?name:string -> work:float -> ?checkpoint_cost:float -> ?recovery_cost:float ->
  unit -> t
(** [make ~id ~work ()] builds a task. [name] defaults to ["T<id+1>"]
    (paper numbering); costs default to 0. Raises [Invalid_argument] on
    negative id, non-positive work or negative costs. *)

val with_costs : t -> checkpoint_cost:float -> recovery_cost:float -> t
(** Copy with replaced costs (for cost-model sweeps on one workload). *)

val with_id : t -> id -> t
(** Copy with a new id (used when re-indexing sub-workflows). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Rng = Ckpt_prng.Rng

type cost_spec = {
  work_range : float * float;
  checkpoint_range : float * float;
  recovery_range : float * float;
}

let check_range ~allow_zero name (lo, hi) =
  let lo_ok = if allow_zero then lo >= 0.0 else lo > 0.0 in
  if not (lo_ok && lo <= hi) then
    invalid_arg (Printf.sprintf "Generate: invalid %s range (%g, %g)" name lo hi)

let uniform_costs ?(work = (1.0, 10.0)) ?(checkpoint = (0.1, 1.0)) ?(recovery = (0.1, 1.0))
    () =
  check_range ~allow_zero:false "work" work;
  check_range ~allow_zero:true "checkpoint" checkpoint;
  check_range ~allow_zero:true "recovery" recovery;
  { work_range = work; checkpoint_range = checkpoint; recovery_range = recovery }

let constant_costs ~work ~checkpoint ~recovery =
  uniform_costs ~work:(work, work) ~checkpoint:(checkpoint, checkpoint)
    ~recovery:(recovery, recovery) ()

let draw rng (lo, hi) = if lo = hi then lo else Rng.float_range rng lo hi

let task_list rng spec ~n =
  if n < 0 then invalid_arg "Generate.task_list: negative size";
  List.init n (fun id ->
      Task.make ~id ~work:(draw rng spec.work_range)
        ~checkpoint_cost:(draw rng spec.checkpoint_range)
        ~recovery_cost:(draw rng spec.recovery_range) ())

let chain rng spec ~n = Dag.of_chain (task_list rng spec ~n)
let independent rng spec ~n = Dag.of_independent (task_list rng spec ~n)

let fork_join rng spec ~stages ~width =
  if stages <= 0 || width <= 0 then invalid_arg "Generate.fork_join: sizes must be positive";
  let n = stages * (width + 2) in
  let tasks = task_list rng spec ~n in
  let edges = ref [] in
  for stage = 0 to stages - 1 do
    let base = stage * (width + 2) in
    let fork = base and join = base + width + 1 in
    for k = 1 to width do
      edges := (fork, base + k) :: (base + k, join) :: !edges
    done;
    if stage > 0 then edges := (base - 1, fork) :: !edges
  done;
  Dag.create tasks !edges

let diamond rng spec ~width = fork_join rng spec ~stages:1 ~width

let layered rng spec ~layers ~width ~edge_prob =
  if layers <= 0 || width <= 0 then invalid_arg "Generate.layered: sizes must be positive";
  if not (edge_prob >= 0.0 && edge_prob <= 1.0) then
    invalid_arg "Generate.layered: edge_prob out of [0,1]";
  let n = layers * width in
  let tasks = task_list rng spec ~n in
  let id layer pos = (layer * width) + pos in
  let edges = ref [] in
  for layer = 1 to layers - 1 do
    for pos = 0 to width - 1 do
      let dst = id layer pos in
      let attached = ref false in
      for src_pos = 0 to width - 1 do
        if Rng.float rng < edge_prob then begin
          edges := (id (layer - 1) src_pos, dst) :: !edges;
          attached := true
        end
      done;
      if not !attached then
        (* Guarantee layer membership with one random incoming edge. *)
        edges := (id (layer - 1) (Rng.int rng width), dst) :: !edges
    done
  done;
  Dag.create tasks !edges

let random_dag rng spec ~n ~edge_prob =
  if n < 0 then invalid_arg "Generate.random_dag: negative size";
  if not (edge_prob >= 0.0 && edge_prob <= 1.0) then
    invalid_arg "Generate.random_dag: edge_prob out of [0,1]";
  let tasks = task_list rng spec ~n in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng < edge_prob then edges := (i, j) :: !edges
    done
  done;
  Dag.create tasks !edges

(** Plain-text description of workflow DAGs, used by the [ckpt-dag] CLI
    and the tests.

    Format (one directive per line, ['#'] starts a comment):
    {v
    task <name> <work> <checkpoint_cost> <recovery_cost>
    edge <src-name> <dst-name>
    v}

    Task names must be unique; ids are assigned in declaration order. *)

exception Parse_error of string
(** Carries "file:line: message". *)

val parse_string : ?source:string -> string -> Dag.t
val parse_file : string -> Dag.t

val to_string : Dag.t -> string
(** Render back to the spec format (round-trips through
    {!parse_string} provided task names are unique and space-free). *)

val save : Dag.t -> string -> unit

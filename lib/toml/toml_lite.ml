type value =
  | String of string
  | Array of string list
  | Number of float
  | Bool of bool

type binding = { key : string; value : value; line : int }
type section = { name : string; name_line : int; bindings : binding list }
type t = section list

let fail ~file ~line msg = failwith (Printf.sprintf "%s:%d: %s" file line msg)

(* Drop a '#' comment, tracking double quotes so '#' inside a string
   survives. *)
let strip_comment line =
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then begin
           in_string := not !in_string;
           Buffer.add_char buf c
         end
         else if c = '#' && not !in_string then raise Exit
         else Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let bracket_balance s =
  let depth = ref 0 and in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then in_string := not !in_string
      else if not !in_string then
        if c = '[' then incr depth else if c = ']' then decr depth)
    s;
  !depth

let parse_string_lit ~file ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    fail ~file ~line (Printf.sprintf "expected a double-quoted string, got %S" s);
  String.sub s 1 (n - 2)

(* Split "a", "b", "c" on commas outside strings. *)
let split_items s =
  let items = ref [] and buf = Buffer.create 32 and in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if c = ',' && not !in_string then begin
        items := Buffer.contents buf :: !items;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  items := Buffer.contents buf :: !items;
  List.rev_map String.trim !items |> List.filter (fun s -> s <> "")

let parse_array ~file ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail ~file ~line (Printf.sprintf "expected an array [...], got %S" s);
  split_items (String.sub s 1 (n - 2))
  |> List.map (fun item -> parse_string_lit ~file ~line item)

let parse_section_header ~file ~line s =
  let n = String.length s in
  let name = String.trim (String.sub s 1 (n - 2)) in
  if name = "" then fail ~file ~line "empty section header";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | c -> fail ~file ~line (Printf.sprintf "bad character %C in section header" c))
    name;
  name

let parse_value ~file ~line raw =
  let s = String.trim raw in
  if s = "" then fail ~file ~line "missing value after '='"
  else if s.[0] = '"' then String (parse_string_lit ~file ~line s)
  else if s.[0] = '[' then Array (parse_array ~file ~line s)
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else
    match float_of_string_opt s with
    | Some x when Float.is_finite x -> Number x
    | _ ->
        fail ~file ~line
          (Printf.sprintf "expected a string, array, number, or boolean, got %S" s)

let parse_string ?(filename = "<toml>") contents =
  let file = filename in
  let lines = String.split_on_char '\n' contents in
  (* Fold physical lines into logical lines, joining while an array is
     still open; keep the first physical line's number for messages. *)
  let logical =
    let rec go acc pending lines =
      match (pending, lines) with
      | None, [] -> List.rev acc
      | Some (lnum, s), [] ->
          if bracket_balance s <> 0 then fail ~file ~line:lnum "unterminated array";
          List.rev ((lnum, s) :: acc)
      | None, (lnum, l) :: rest ->
          let l = strip_comment l in
          if bracket_balance l > 0 then go acc (Some (lnum, l)) rest
          else go ((lnum, l) :: acc) None rest
      | Some (lnum, s), (_, l) :: rest ->
          let s = s ^ " " ^ strip_comment l in
          if bracket_balance s > 0 then go acc (Some (lnum, s)) rest
          else go ((lnum, s) :: acc) None rest
    in
    go [] None (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  (* Accumulate sections in reverse, bindings in reverse within each. *)
  let sections = ref [] in
  let push_binding ~lnum b =
    match !sections with
    | [] -> fail ~file ~line:lnum "key outside any [section]"
    | s :: rest -> sections := { s with bindings = b :: s.bindings } :: rest
  in
  List.iter
    (fun (lnum, raw) ->
      let line = String.trim raw in
      if line = "" then ()
      else if
        String.length line >= 2 && line.[0] = '[' && line.[String.length line - 1] = ']'
      then
        let name = parse_section_header ~file ~line:lnum line in
        sections := { name; name_line = lnum; bindings = [] } :: !sections
      else
        match String.index_opt line '=' with
        | None -> fail ~file ~line:lnum (Printf.sprintf "expected key = value, got %S" line)
        | Some i ->
            let key = String.trim (String.sub line 0 i) in
            if key = "" then fail ~file ~line:lnum "empty key before '='";
            let value =
              parse_value ~file ~line:lnum
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            push_binding ~lnum { key; value; line = lnum })
    logical;
  List.rev_map (fun s -> { s with bindings = List.rev s.bindings }) !sections

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~filename:path contents

let shape_name = function
  | String _ -> "a string"
  | Array _ -> "an array"
  | Number _ -> "a number"
  | Bool _ -> "a boolean"

let shape_error ~file b expected =
  fail ~file ~line:b.line
    (Printf.sprintf "key %S expects %s, got %s" b.key expected (shape_name b.value))

let as_string ~file b =
  match b.value with String s -> s | _ -> shape_error ~file b "a double-quoted string"

let as_array ~file b =
  match b.value with Array l -> l | _ -> shape_error ~file b "an array of strings"

let as_number ~file b =
  match b.value with Number x -> x | _ -> shape_error ~file b "a number"

let as_bool ~file b =
  match b.value with Bool x -> x | _ -> shape_error ~file b "a boolean (true/false)"

(** Strict TOML-subset parser shared by [lint.toml] and [bench.toml].

    The grammar is deliberately small — no dependency on a real TOML
    implementation, and no silent fallbacks:

    {v
    # comment (outside strings)
    [section]            # or [section.subname]
    string   = "value"   # no escape sequences
    array    = ["a", "b"]  # strings only; may span several lines
    number   = 0.25      # also 3, 1e-3, -2.5
    boolean  = true      # true | false
    v}

    Syntax errors raise [Failure "<file>:<line>: <message>"]. Semantic
    validation — which sections and keys exist, which value shape each
    key takes — is the consumer's job, so that unknown keys stay {e hard
    errors} there (a typo must never silently disable a rule or loosen a
    threshold). The [as_*] accessors fail with the binding's own
    file/line when the value has the wrong shape. *)

type value =
  | String of string
  | Array of string list
  | Number of float
  | Bool of bool

type binding = { key : string; value : value; line : int }

type section = {
  name : string;  (** e.g. ["lint"] or ["rule.no-wall-clock"]. *)
  name_line : int;
  bindings : binding list;  (** In file order. *)
}

type t = section list
(** Sections in file order; reopening a section appends a new entry
    (consumers fold in order, so later bindings win where that
    matters). *)

val parse_string : ?filename:string -> string -> t
(** Parse from a string; [filename] only labels error messages. *)

val load : string -> t
(** Parse a file. Raises [Sys_error] when unreadable. *)

val fail : file:string -> line:int -> string -> 'a
(** [Failure] with the standard ["file:line: message"] shape, for
    consumers reporting semantic errors (unknown key/section). *)

(** {1 Typed accessors} — fail with the binding's location on a shape
    mismatch. *)

val as_string : file:string -> binding -> string
val as_array : file:string -> binding -> string list
val as_number : file:string -> binding -> float
val as_bool : file:string -> binding -> bool

module Table = Ckpt_stats.Table
module Divisible = Ckpt_core.Divisible
module Approximations = Ckpt_core.Approximations

let name = "E14"
let claim = "sensitivity to a mis-estimated checkpoint period ([23])"

let factors = [ 0.1; 0.25; 0.5; 1.0; 2.0; 4.0; 10.0 ]

let run _config =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s (W=1e4, C=R=30, D=10; cells: E(f*tau*)/E(tau*))" name claim)
      ~columns:
        (("lambda", Table.Right) :: ("tau* (work)", Table.Right)
        :: List.map (fun f -> (Printf.sprintf "f=%g" f, Table.Right)) factors)
  in
  List.iter
    (fun lambda ->
      let p =
        Divisible.make ~downtime:10.0 ~recovery:30.0 ~total_work:1e4 ~checkpoint:30.0
          ~lambda ()
      in
      let opt = Divisible.optimal p in
      let sensitivity = Divisible.period_sensitivity p ~factors in
      Table.add_row table
        (Table.cell_f lambda
        :: Table.cell_f opt.Approximations.chunk_work
        :: List.map (fun (_, ratio) -> Table.cell_f ratio) sensitivity))
    [ 1e-5; 1e-4; 1e-3; 1e-2 ];
  (* Companion: Young/Daly periods versus the optimum in the same regimes. *)
  let companion =
    Table.create
      ~title:(Printf.sprintf "%s (cont.): Young and Daly periods vs exact optimum" name)
      ~columns:[ ("lambda", Table.Right); ("E_opt", Table.Right); ("Young/opt", Table.Right);
                 ("Daly/opt", Table.Right); ("waste at opt", Table.Right) ]
  in
  List.iter
    (fun lambda ->
      let p =
        Divisible.make ~downtime:10.0 ~recovery:30.0 ~total_work:1e4 ~checkpoint:30.0
          ~lambda ()
      in
      let opt = Divisible.optimal p in
      let ratio d = d.Approximations.expected_total /. opt.Approximations.expected_total in
      Table.add_row companion
        [
          Table.cell_f lambda;
          Table.cell_f opt.Approximations.expected_total;
          Table.cell_f (ratio (Divisible.young p));
          Table.cell_f (ratio (Divisible.daly p));
          Table.cell_pct (Divisible.waste_fraction p ~chunks:opt.Approximations.chunks);
        ])
    [ 1e-5; 1e-4; 1e-3; 1e-2 ];
  let labels = [ '1'; '2'; '3'; '4' ] in
  let series =
    List.map2
      (fun label lambda ->
        let p =
          Divisible.make ~downtime:10.0 ~recovery:30.0 ~total_work:1e4 ~checkpoint:30.0
            ~lambda ()
        in
        { Ckpt_stats.Ascii_plot.label;
          points =
            List.map (fun (f, ratio) -> (f, ratio))
              (Divisible.period_sensitivity p
                 ~factors:[ 0.1; 0.17; 0.3; 0.55; 1.0; 1.8; 3.2; 5.6; 10.0 ]) })
      labels [ 1e-5; 1e-4; 1e-3; 1e-2 ]
  in
  let figure =
    Ckpt_stats.Ascii_plot.plot ~log_x:true ~log_y:true ~height:16
      ~title:"Figure E14: E(f*tau*)/E(tau*) vs f (series 1..4 = lambda 1e-5..1e-2)"
      series
  in
  [ Common.Table table; Common.Figure figure; Common.Table companion ]

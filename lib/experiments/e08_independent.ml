module Table = Ckpt_stats.Table
module Rng = Ckpt_prng.Rng
module Independent = Ckpt_core.Independent
module Brute_force = Ckpt_core.Brute_force
module Chain_dp = Ckpt_core.Chain_dp

let name = "E8"
let claim = "independent tasks: heuristics vs exact optimum"

let heuristic_costs problem =
  let cost (s : Chain_dp.solution) = s.Chain_dp.expected_makespan in
  [
    ("order-longest+DP", cost (Independent.solve_ordered problem Independent.Longest_first));
    ("order-shortest+DP", cost (Independent.solve_ordered problem Independent.Shortest_first));
    ("LPT-m*+DP", cost (Independent.auto_grouping problem));
  ]

let run config =
  let trials = if config.Common.quick then 5 else 20 in
  (* Small instances: exact optimum available. *)
  let exact_table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s -- n=12, uniform C=R, worst/mean ratio to exact over %d instances" name
           claim trials)
      ~columns:[ ("lambda", Table.Right); ("heuristic", Table.Left);
                 ("mean ratio", Table.Right); ("worst ratio", Table.Right) ]
  in
  List.iter
    (fun lambda ->
      let stats =
        Hashtbl.create 8 [@@lint.domain_safe "per-lambda aggregation on the driver domain only"]
      in
      for trial = 1 to trials do
        let rng = Common.rng config (Printf.sprintf "e8-small-%g-%d" lambda trial) in
        let works = List.init 12 (fun _ -> Rng.float_range rng 1.0 10.0) in
        let checkpoint = Rng.float_range rng 0.2 1.0 in
        let problem = Independent.uniform ~lambda ~checkpoint ~recovery:checkpoint works in
        let exact =
          Brute_force.partition_best ~lambda ~checkpoint ~recovery:checkpoint
            ~downtime:0.0 (Array.of_list works)
        in
        List.iter
          (fun (label, cost) ->
            let ratio = cost /. exact in
            let mean_acc, worst =
              match Hashtbl.find_opt stats label with
              | Some v -> v
              | None -> (Ckpt_stats.Welford.create (), ref 0.0)
            in
            Ckpt_stats.Welford.add mean_acc ratio;
            if ratio > !worst then worst := ratio;
            Hashtbl.replace stats label (mean_acc, worst))
          (heuristic_costs problem)
      done;
      List.iter
        (fun label ->
          let mean_acc, worst = Hashtbl.find stats label in
          Table.add_row exact_table
            [
              Table.cell_f lambda; label;
              Table.cell_f (Ckpt_stats.Welford.mean mean_acc); Table.cell_f !worst;
            ])
        [ "order-longest+DP"; "order-shortest+DP"; "LPT-m*+DP" ])
    [ 0.01; 0.05; 0.2 ];
  (* Large instances: heuristics against the best of themselves. *)
  let big_table =
    Table.create
      ~title:(Printf.sprintf "%s (cont.): n=200 heterogeneous costs, ratio to best heuristic" name)
      ~columns:[ ("lambda", Table.Right); ("heuristic", Table.Left); ("ratio to best", Table.Right) ]
  in
  List.iter
    (fun lambda ->
      let rng = Common.rng config (Printf.sprintf "e8-big-%g" lambda) in
      let tasks =
        List.init 200 (fun i ->
            Ckpt_dag.Task.make ~id:i
              ~work:(Rng.float_range rng 1.0 10.0)
              ~checkpoint_cost:(Rng.float_range rng 0.1 2.0)
              ~recovery_cost:(Rng.float_range rng 0.1 2.0) ())
      in
      let problem = Independent.make ~lambda tasks in
      let costs = heuristic_costs problem in
      let best = List.fold_left (fun acc (_, c) -> Float.min acc c) infinity costs in
      List.iter
        (fun (label, cost) ->
          Table.add_row big_table
            [ Table.cell_f lambda; label; Table.cell_f (cost /. best) ])
        costs)
    [ 0.005; 0.02 ];
  [ Common.Table exact_table; Common.Table big_table ]

module Table = Ckpt_stats.Table
module Generate = Ckpt_dag.Generate
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Regression = Ckpt_stats.Regression

let name = "E4"
let claim = "Prop 3: DP runtime is O(n^2)"

let run config =
  let sizes = if config.Common.quick then [ 64; 128; 256; 512; 1024 ]
    else [ 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]
  in
  let table =
    Table.create ~title:(Printf.sprintf "%s: %s" name claim)
      ~columns:[ ("n", Table.Right); ("time (s)", Table.Right);
                 ("time / n^2 (us)", Table.Right) ]
  in
  let points =
    List.map
      (fun n ->
        let rng = Common.rng config (Printf.sprintf "e4-%d" n) in
        let spec = Generate.uniform_costs () in
        let dag = Generate.chain rng spec ~n in
        (* Moderate lambda keeps the exponentials in range at n=8192. *)
        let problem = Chain_problem.of_dag ~downtime:0.1 ~lambda:(10.0 /. float_of_int n) dag in
        (* Repeat small sizes so the measurement is above clock noise. *)
        let repeats = Stdlib.max 1 (65536 / (n * n / 64)) in
        let elapsed, _ =
          Common.time (fun () ->
              for _ = 1 to repeats do
                ignore (Chain_dp.solve problem)
              done)
        in
        let per_solve = elapsed /. float_of_int repeats in
        Table.add_row table
          [
            string_of_int n; Table.cell_e per_solve;
            Table.cell_f (per_solve /. (float_of_int n *. float_of_int n) *. 1e6);
          ];
        (float_of_int n, per_solve))
      sizes
  in
  let fit = Regression.log_log (Array.of_list points) in
  Table.add_rule table;
  Table.add_row table
    [ "log-log slope"; Table.cell_f fit.Regression.slope;
      Printf.sprintf "R^2 = %.4f" fit.Regression.r_squared ];
  let figure =
    Ckpt_stats.Ascii_plot.single ~log_x:true ~log_y:true
      ~title:(Printf.sprintf "Figure E4: DP time vs n (log-log; slope %.3f)"
                fit.Regression.slope)
      points
  in
  [ Common.Table table; Common.Figure figure ]

module Table = Ckpt_stats.Table
module Expected_time = Ckpt_core.Expected_time
module Sim_run = Ckpt_sim.Sim_run
module Monte_carlo = Ckpt_sim.Monte_carlo

let name = "E1"
let claim = "Prop 1: closed form = simulated expectation (99% CI)"

(* The grid spans the regimes the paper cares about: rare failures
   (HPC-like), frequent failures, costly recovery, non-zero downtime,
   and the degenerate D = R = 0 corner. *)
let grid =
  [
    (10.0, 1.0, 0.0, 0.0, 0.01);
    (10.0, 1.0, 0.5, 2.0, 0.05);
    (10.0, 1.0, 0.5, 2.0, 0.2);
    (100.0, 10.0, 5.0, 10.0, 0.01);
    (100.0, 1.0, 0.0, 5.0, 0.002);
    (1.0, 0.1, 0.05, 0.1, 1.0);
    (3600.0, 60.0, 60.0, 60.0, 1e-4);
    (5.0, 0.0, 1.0, 0.0, 0.3);
  ]

let run config =
  let runs = Common.runs config ~full:100_000 in
  let table =
    Table.create ~title:(Printf.sprintf "%s: %s (%d runs/row)" name claim runs)
      ~columns:
        [
          ("W", Table.Right); ("C", Table.Right); ("D", Table.Right); ("R", Table.Right);
          ("lambda", Table.Right); ("exact E(T)", Table.Right);
          ("simulated", Table.Right); ("99% CI half-width", Table.Right);
          ("rel.err", Table.Right); ("in CI", Table.Left);
        ]
  in
  List.iteri
    (fun row (work, checkpoint, downtime, recovery, lambda) ->
      let exact =
        Expected_time.expected_v ~work ~checkpoint ~downtime ~recovery ~lambda
      in
      let rng = Common.rng config (Printf.sprintf "e1-row-%d" row) in
      let estimate =
        Monte_carlo.estimate_segments ?domains:config.Common.domains
          ?target_ci:config.Common.target_ci
          ~model:(Monte_carlo.Poisson_rate lambda) ~downtime ~runs ~rng
          [ Sim_run.segment ~work ~checkpoint ~recovery ]
      in
      let lo, hi = estimate.Monte_carlo.ci99 in
      Table.add_row table
        [
          Table.cell_f work; Table.cell_f checkpoint; Table.cell_f downtime;
          Table.cell_f recovery; Table.cell_f lambda; Table.cell_f exact;
          Table.cell_f estimate.Monte_carlo.mean;
          Table.cell_e ((hi -. lo) /. 2.0);
          Table.cell_pct
            (Ckpt_stats.Descriptive.relative_error ~actual:estimate.Monte_carlo.mean
               ~reference:exact);
          Common.bool_cell (Monte_carlo.contains estimate.Monte_carlo.ci99 exact);
        ])
    grid;
  [ Common.Table table ]

(** E8 — The NP-hard independent-task problem: heuristic orderings and
    groupings versus the exact optimum (subset DP) on small instances,
    and a heuristic-only comparison at larger scale. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

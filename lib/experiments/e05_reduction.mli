(** E5 — Proposition 2: executing the 3-PARTITION reduction end-to-end.
    For each instance, the optimal expected makespan of the reduced
    scheduling instance is at most K iff the 3-PARTITION instance is
    solvable. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

module Table = Ckpt_stats.Table
module Moldable = Ckpt_core.Moldable
module Moldable_chain = Ckpt_core.Moldable_chain
module Chain_dp = Ckpt_core.Chain_dp

let name = "E15"
let claim = "moldable chains: per-segment allocation vs best fixed allocation"

(* A mixed pipeline: embarrassingly parallel stages around a strongly
   sequential reduction and a communication-bound kernel. *)
let tasks () =
  [
    Moldable_chain.task ~name:"scatter" ~total_work:20_000.0
      ~checkpoint:(Moldable.Proportional 100.0) ();
    Moldable_chain.task ~name:"simulate" ~total_work:80_000.0
      ~checkpoint:(Moldable.Proportional 400.0) ();
    Moldable_chain.task ~name:"reduce" ~workload:(Moldable.Amdahl 0.05)
      ~total_work:30_000.0 ~checkpoint:(Moldable.Constant 50.0) ();
    Moldable_chain.task ~name:"solve" ~workload:(Moldable.Numerical_kernel 0.3)
      ~total_work:60_000.0 ~checkpoint:(Moldable.Proportional 300.0) ();
    Moldable_chain.task ~name:"render" ~total_work:10_000.0
      ~checkpoint:(Moldable.Constant 20.0) ();
  ]

let run _config =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s: %s (5-stage pipeline, P = 1024)" name claim)
      ~columns:
        [
          ("lambda_proc", Table.Right); ("adaptive E", Table.Right);
          ("best fixed E", Table.Right); ("fixed p*", Table.Right);
          ("gain", Table.Right); ("adaptive allocations", Table.Left);
        ]
  in
  List.iter
    (fun proc_rate ->
      let problem =
        Moldable_chain.problem ~downtime:30.0 ~initial_recovery:10.0 ~max_processors:1024
          ~proc_rate (tasks ())
      in
      let adaptive = Moldable_chain.solve problem in
      let fixed_p, fixed = Moldable_chain.best_fixed_allocation problem in
      let allocations =
        String.concat " "
          (List.map
             (fun (first, last, p) ->
               if first = last then Printf.sprintf "[%d]x%d" first p
               else Printf.sprintf "[%d-%d]x%d" first last p)
             adaptive.Moldable_chain.segments)
      in
      Table.add_row table
        [
          Table.cell_e proc_rate;
          Table.cell_e adaptive.Moldable_chain.expected_makespan;
          Table.cell_e fixed.Chain_dp.expected_makespan;
          string_of_int fixed_p;
          Table.cell_pct
            ((fixed.Chain_dp.expected_makespan
              /. adaptive.Moldable_chain.expected_makespan)
            -. 1.0);
          allocations;
        ])
    [ 1e-9; 1e-8; 1e-7; 1e-6; 1e-5 ];
  [ Common.Table table ]

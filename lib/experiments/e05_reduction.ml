module Table = Ckpt_stats.Table
module Reduction = Ckpt_core.Reduction

let name = "E5"
let claim = "Prop 2: 3-PARTITION instance solvable <=> optimal E <= K"

let fixed_instances =
  [
    (* (label, instance) — hand-picked solvable and unsolvable cases. *)
    ("solvable m=2 (7,8,9)x2", Reduction.instance ~items:[ 7; 9; 8; 8; 9; 7 ] ~target:24);
    ("unsolvable m=2 {7,7,7,9,9,9}", Reduction.instance ~items:[ 7; 7; 7; 9; 9; 9 ] ~target:24);
    ("unsolvable m=2 {13,13,15,15,15,17}",
     Reduction.instance ~items:[ 13; 13; 15; 15; 15; 17 ] ~target:44);
    ("solvable m=3 target 40",
     Reduction.instance ~items:[ 11; 14; 15; 12; 13; 15; 11; 13; 16 ] ~target:40);
  ]

let run config =
  let table =
    Table.create ~title:(Printf.sprintf "%s: %s" name claim)
      ~columns:
        [
          ("instance", Table.Left); ("m", Table.Right); ("bound K", Table.Right);
          ("optimal E", Table.Right); ("E <= K", Table.Left); ("3-part solvable", Table.Left);
          ("equivalence", Table.Left);
        ]
  in
  let add label instance =
    let reduced = Reduction.reduce instance in
    let optimal = Reduction.optimal_expected instance in
    let within = optimal <= reduced.Reduction.bound *. (1.0 +. 1e-9) in
    let solvable = Reduction.solve_3partition instance <> None in
    Table.add_row table
      [
        label; string_of_int (Reduction.groups_count instance);
        Table.cell_f reduced.Reduction.bound; Table.cell_f optimal;
        Common.bool_cell within; Common.bool_cell solvable;
        Common.bool_cell (within = solvable);
      ]
  in
  List.iter (fun (label, instance) -> add label instance) fixed_instances;
  Table.add_rule table;
  let random_count = if config.Common.quick then 3 else 8 in
  for i = 1 to random_count do
    let m = 1 + (i mod 3) in
    let rng = Common.rng config (Printf.sprintf "e5-%d" i) in
    let instance = Reduction.random_solvable rng ~m ~target:80 in
    add (Printf.sprintf "random solvable #%d (m=%d, T=80)" i m) instance
  done;
  [ Common.Table table ]

(** E15 (Section 6, second extension) — moldable tasks in a chain: the
    value of adapting the processor allocation per segment versus the
    best single allocation, across platform failure rates. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

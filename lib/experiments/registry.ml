type experiment = {
  id : string;
  claim : string;
  run : Common.config -> Common.output list;
}

let all =
  [
    { id = E01_prop1.name; claim = E01_prop1.claim; run = E01_prop1.run };
    { id = E02_approximations.name; claim = E02_approximations.claim;
      run = E02_approximations.run };
    { id = E03_dp_optimality.name; claim = E03_dp_optimality.claim;
      run = E03_dp_optimality.run };
    { id = E04_dp_scaling.name; claim = E04_dp_scaling.claim; run = E04_dp_scaling.run };
    { id = E05_reduction.name; claim = E05_reduction.claim; run = E05_reduction.run };
    { id = E06_convexity.name; claim = E06_convexity.claim; run = E06_convexity.run };
    { id = E07_chain_policies.name; claim = E07_chain_policies.claim;
      run = E07_chain_policies.run };
    { id = E08_independent.name; claim = E08_independent.claim; run = E08_independent.run };
    { id = E09_moldable.name; claim = E09_moldable.claim; run = E09_moldable.run };
    { id = E10_nonmemoryless.name; claim = E10_nonmemoryless.claim;
      run = E10_nonmemoryless.run };
    { id = E11_dag_costs.name; claim = E11_dag_costs.claim; run = E11_dag_costs.run };
    { id = E12_cascading.name; claim = E12_cascading.claim; run = E12_cascading.run };
    { id = E13_btw.name; claim = E13_btw.claim; run = E13_btw.run };
    { id = E14_period_sensitivity.name; claim = E14_period_sensitivity.claim;
      run = E14_period_sensitivity.run };
    { id = E15_moldable_chain.name; claim = E15_moldable_chain.claim;
      run = E15_moldable_chain.run };
    { id = E16_replication.name; claim = E16_replication.claim; run = E16_replication.run };
    { id = E17_rejuvenation.name; claim = E17_rejuvenation.claim;
      run = E17_rejuvenation.run };
    { id = E18_scenarios.name; claim = E18_scenarios.claim; run = E18_scenarios.run };
  ]

let find id =
  let target = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = target) all

let run_and_print config experiment =
  Printf.printf "\n##### %s — %s\n\n" experiment.id experiment.claim;
  let elapsed, outputs = Common.time (fun () -> experiment.run config) in
  List.iter
    (fun output ->
      Common.print_output output;
      print_newline ())
    outputs;
  Printf.printf "(%s completed in %.2f s)\n" experiment.id elapsed

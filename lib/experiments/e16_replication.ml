module Table = Ckpt_stats.Table
module Moldable = Ckpt_core.Moldable
module Replication = Ckpt_core.Replication
module Welford = Ckpt_stats.Welford

let name = "E16"
let claim = "checkpointing vs group replication across failure rates"

let mk groups proc_rate =
  Replication.config ~downtime:5.0 ~total_work:100_000.0
    ~checkpoint:(Moldable.Constant 60.0) ~proc_rate ~processors:512 ~groups ()

let run config =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s (W=1e5, C=R=60 constant, D=5, p=512; cells: optimal E)" name claim)
      ~columns:
        [
          ("lambda_proc", Table.Right); ("g=1 (no repl.)", Table.Right);
          ("g=2", Table.Right); ("g=4", Table.Right); ("winner", Table.Left);
          ("m* (winner)", Table.Right);
        ]
  in
  List.iter
    (fun proc_rate ->
      let results = List.map (fun g -> (g, Replication.optimal_chunks (mk g proc_rate)))
          [ 1; 2; 4 ]
      in
      let winner, (m_star, _) =
        List.fold_left
          (fun (bg, (bm, bv)) (g, (m, v)) -> if v < bv then (g, (m, v)) else (bg, (bm, bv)))
          (List.hd results) (List.tl results)
      in
      Table.add_row table
        (Table.cell_e proc_rate
        :: List.map (fun (_, (_, v)) -> Table.cell_e v) results
        @ [ Printf.sprintf "g=%d" winner; string_of_int m_star ]))
    [ 1e-7; 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4 ];
  (* Simulation cross-check at the crossover point. *)
  let runs = Common.runs config ~full:20_000 in
  let check =
    Table.create
      ~title:(Printf.sprintf "%s (cont.): simulation cross-check at lambda_proc=1e-5 (%d runs)"
                name runs)
      ~columns:[ ("groups", Table.Right); ("analytic E", Table.Right);
                 ("simulated", Table.Right); ("in 99% CI", Table.Left) ]
  in
  List.iter
    (fun g ->
      let t = mk g 1e-5 in
      let chunks, analytic = Replication.optimal_chunks t in
      let acc =
        Replication.simulate_total t ~chunks ~runs
          (Common.rng config (Printf.sprintf "e16-%d" g))
      in
      let lo, hi = Welford.confidence_interval acc ~level:0.99 in
      Table.add_row check
        [
          string_of_int g; Table.cell_f analytic; Table.cell_f (Welford.mean acc);
          Common.bool_cell (lo <= analytic && analytic <= hi);
        ])
    [ 1; 2; 4 ];
  [ Common.Table table; Common.Table check ]

module Table = Ckpt_stats.Table
module Task = Ckpt_dag.Task
module Generate = Ckpt_dag.Generate
module Dag_sched = Ckpt_core.Dag_sched

let name = "E11"
let claim = "ablation: DAG linearization strategies and live-set checkpoint costs"

let live_sum_model =
  Dag_sched.Live_set
    {
      checkpoint =
        (fun live ->
          Ckpt_stats.Kahan.sum_list
            (List.map (fun (t : Task.t) -> t.Task.checkpoint_cost) live));
      recovery =
        (fun live ->
          Ckpt_stats.Kahan.sum_list
            (List.map (fun (t : Task.t) -> t.Task.recovery_cost) live));
    }

let strategies =
  [
    ("deterministic", Dag_sched.Deterministic);
    ("heaviest-first", Dag_sched.Heaviest_first);
    ("lightest-first", Dag_sched.Lightest_first);
    ("critical-path", Dag_sched.Critical_path);
  ]

let run config =
  let trials = if config.Common.quick then 5 else 20 in
  let lambda = 0.05 in
  (* Part 1: strategy quality vs the exact optimum over all
     linearizations, per cost model, on small random DAGs. *)
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s -- mean ratio to exact over %d random 7-task DAGs (lambda=%g)" name
           claim trials lambda)
      ~columns:[ ("cost model", Table.Left); ("strategy", Table.Left);
                 ("mean ratio", Table.Right); ("worst ratio", Table.Right) ]
  in
  List.iter
    (fun (model_label, cost_model) ->
      let stats =
        List.map (fun (label, _) -> (label, Ckpt_stats.Welford.create (), ref 0.0))
          strategies
      in
      for trial = 1 to trials do
        let rng = Common.rng config (Printf.sprintf "e11-%s-%d" model_label trial) in
        let spec = Generate.uniform_costs () in
        let dag = Generate.random_dag rng spec ~n:7 ~edge_prob:0.3 in
        let exact = Dag_sched.exact_small ~cost_model ~lambda dag in
        List.iter2
          (fun (_, strategy) (_, acc, worst) ->
            let solution =
              Dag_sched.solve_order ~cost_model ~lambda dag
                (Dag_sched.linearize strategy dag)
            in
            let ratio =
              solution.Dag_sched.expected_makespan /. exact.Dag_sched.expected_makespan
            in
            Ckpt_stats.Welford.add acc ratio;
            if ratio > !worst then worst := ratio)
          strategies stats
      done;
      List.iter
        (fun (label, acc, worst) ->
          Table.add_row table
            [ model_label; label; Table.cell_f (Ckpt_stats.Welford.mean acc);
              Table.cell_f !worst ])
        stats)
    [ ("per-task (Section 2)", Dag_sched.Task_costs); ("live-set (Section 6)", live_sum_model) ];
  (* Part 2: on fork-join workflows, the live-set model makes
     checkpoints inside the parallel region costlier, so the optimal
     placement pushes checkpoints to the joins. *)
  let table2 =
    Table.create
      ~title:(Printf.sprintf "%s (cont.): fork-join of width w -- checkpoints in optimum" name)
      ~columns:[ ("width", Table.Right); ("per-task: #ckpts", Table.Right);
                 ("live-set: #ckpts", Table.Right); ("live/per-task makespan", Table.Right) ]
  in
  List.iter
    (fun width ->
      let rng = Common.rng config (Printf.sprintf "e11-fj-%d" width) in
      let spec = Generate.uniform_costs () in
      let dag = Generate.fork_join rng spec ~stages:2 ~width in
      let solve cost_model =
        Dag_sched.solve_order ~cost_model ~lambda dag
          (Dag_sched.linearize Dag_sched.Critical_path dag)
      in
      let per_task = solve Dag_sched.Task_costs in
      let live = solve live_sum_model in
      let count (s : Dag_sched.solution) =
        Ckpt_core.Schedule.checkpoint_count s.Dag_sched.placement
      in
      Table.add_row table2
        [
          string_of_int width; string_of_int (count per_task); string_of_int (count live);
          Table.cell_f (live.Dag_sched.expected_makespan /. per_task.Dag_sched.expected_makespan);
        ])
    [ 2; 4; 6 ];
  [ Common.Table table; Common.Table table2 ]

(** Registry of all experiments, used by the CLI runner and the bench
    harness. *)

type experiment = {
  id : string;  (** "E1" .. "E12". *)
  claim : string;
  run : Common.config -> Common.output list;
}

val all : experiment list
(** In order E1 .. E12. *)

val find : string -> experiment option
(** Case-insensitive lookup by id. *)

val run_and_print : Common.config -> experiment -> unit
(** Execute and print every table, with timing. *)

module Table = Ckpt_stats.Table
module Cascading = Ckpt_failures.Cascading
module Welford = Ckpt_stats.Welford

let name = "E12"
let claim = "cascading downtime: constant-D accuracy vs lambda*D (Equation 6 remark)"

let run config =
  let runs = Common.runs config ~full:100_000 in
  let downtime = 60.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s: %s (D=%g, %d simulated downtimes/row)" name claim
                downtime runs)
      ~columns:
        [
          ("lambda*D", Table.Right); ("E(D_eff) analytic", Table.Right);
          ("E(D_eff) simulated", Table.Right); ("in 99% CI", Table.Left);
          ("excess over D", Table.Right); ("extra failures", Table.Right);
        ]
  in
  List.iteri
    (fun row ld ->
      let lambda = ld /. downtime in
      let analytic = Cascading.expected_effective ~lambda ~downtime in
      let rng = Common.rng config (Printf.sprintf "e12-%d" row) in
      let acc = Cascading.simulate ~lambda ~downtime ~runs rng in
      let ci = Welford.confidence_interval acc ~level:0.99 in
      Table.add_row table
        [
          Table.cell_f ld; Table.cell_f analytic; Table.cell_f (Welford.mean acc);
          Common.bool_cell (fst ci <= analytic && analytic <= snd ci);
          Table.cell_pct (Cascading.expected_excess ~lambda ~downtime /. downtime);
          Table.cell_f (Cascading.expected_cascade_failures ~lambda ~downtime);
        ])
    [ 1e-4; 1e-3; 1e-2; 0.05; 0.1; 0.3; 1.0 ];
  [ Common.Table table ]

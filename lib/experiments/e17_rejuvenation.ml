module Table = Ckpt_stats.Table
module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task
module Platform = Ckpt_failures.Platform
module Monte_carlo = Ckpt_sim.Monte_carlo
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Rejuvenation = Ckpt_core.Rejuvenation
module Nonmemoryless = Ckpt_core.Nonmemoryless

let name = "E17"
let claim = "the rejuvenation assumption ([12]): predicted vs real expectations"

(* A 20-task chain on a single-processor platform (so the per-processor
   law IS the platform law): node mean 60 against ~50 units of work. *)
let tasks () =
  Array.init 20 (fun i ->
      Task.make ~id:i
        ~work:(2.0 +. float_of_int (i mod 3))
        ~checkpoint_cost:0.4 ~recovery_cost:0.5 ())

let downtime = 0.5
let initial_recovery = 0.5
let mean = 60.0

let laws =
  [
    ("Exponential", Law.exponential ~rate:(1.0 /. mean));
    ("Weibull k=0.9", Law.weibull_of_mean ~shape:0.9 ~mean);
    ("Weibull k=0.7", Law.weibull_of_mean ~shape:0.7 ~mean);
    ("Weibull k=0.5", Law.weibull_of_mean ~shape:0.5 ~mean);
  ]

let run config =
  let runs = Common.runs config ~full:20_000 in
  let tasks = tasks () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s (20-task chain, node mean %g, D=%g, %d runs)" name claim mean downtime
           runs)
      ~columns:
        [
          ("law", Table.Left); ("#ckpts (assumed opt)", Table.Right);
          ("predicted E", Table.Right); ("simulated E (no rejuv.)", Table.Right);
          ("prediction bias", Table.Right); ("exp-DP placement, simulated", Table.Right);
        ]
  in
  List.iter
    (fun (label, law) ->
      (* Placement "optimal" under the rejuvenation assumption. *)
      let assumed = Rejuvenation.solve ~law ~downtime ~initial_recovery tasks in
      (* The memoryless baseline placement (lambda = 1/mean). *)
      let problem =
        Chain_problem.make ~downtime ~initial_recovery ~lambda:(1.0 /. mean)
          (Array.to_list tasks)
      in
      let exp_schedule = (Chain_dp.solve problem).Chain_dp.schedule in
      let platform = Platform.make ~downtime ~processors:1 ~proc_law:law () in
      let simulate placement label_suffix =
        let schedule = Schedule.make problem placement in
        (Monte_carlo.estimate_chain_policy ?domains:config.Common.domains
           ?target_ci:config.Common.target_ci
           ~model:(Monte_carlo.Platform platform)
           ~downtime ~initial_recovery ~runs
           ~rng:(Common.rng config (Printf.sprintf "e17-%s-%s" label label_suffix))
           ~decide:(Nonmemoryless.static schedule) tasks)
          .Monte_carlo.mean
      in
      let simulated = simulate assumed.Rejuvenation.placement "assumed" in
      let exp_simulated =
        simulate
          (Array.init (Array.length tasks) (fun i ->
               List.mem i (Schedule.checkpoint_indices exp_schedule)))
          "exp"
      in
      let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
          assumed.Rejuvenation.placement
      in
      Table.add_row table
        [
          label; string_of_int count;
          Table.cell_f assumed.Rejuvenation.expected_makespan;
          Table.cell_f simulated;
          Table.cell_pct ((assumed.Rejuvenation.expected_makespan /. simulated) -. 1.0);
          Table.cell_f exp_simulated;
        ])
    laws;
  [ Common.Table table ]

(** E12 (ablation, Equation 6 remark) — cascading downtimes: how far the
    paper's constant-D model is from the true effective downtime
    (e^(λD) − 1)/λ when failures can strike while the platform is down,
    validated by simulation. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

module Table = Ckpt_stats.Table
module Law = Ckpt_dist.Law
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Btw = Ckpt_core.Btw

let name = "E13"
let claim = "saved-work objective (BTW [20]) vs expected-makespan objective"

(* A 12-task integer chain (the BTW DP requires integer durations). *)
let works = [ 4; 7; 2; 9; 5; 3; 8; 6; 2; 7; 4; 5 ]

let problem mean =
  (* The makespan objective needs a rate; use the law's mean. *)
  Chain_problem.uniform ~lambda:(1.0 /. mean) ~checkpoint:1.0 ~recovery:1.0
    (List.map float_of_int works)

let laws mean =
  [
    ("Exponential", Law.exponential ~rate:(1.0 /. mean));
    ("Uniform(0,2mu)", Law.uniform ~lo:0.0 ~hi:(2.0 *. mean));
    ("Weibull k=0.7", Law.weibull_of_mean ~shape:0.7 ~mean);
    ("LogNormal s=1.0", Law.log_normal_of_mean ~sigma:1.0 ~mean);
  ]

let run _config =
  let mean = 40.0 in
  let problem = problem mean in
  let makespan_schedule = (Chain_dp.solve problem).Chain_dp.schedule in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s (12 tasks, total work %g, failure mean %g; cells: expected saved work)"
           name claim (Chain_problem.total_work problem) mean)
      ~columns:
        [
          ("law", Table.Left); ("BTW optimum", Table.Right);
          ("BTW DP = exhaustive", Table.Left); ("greedy/opt", Table.Right);
          ("makespan-DP placement/opt", Table.Right); ("ckpts BTW vs makespan", Table.Left);
        ]
  in
  List.iter
    (fun (label, law) ->
      let exhaustive_schedule, exhaustive = Btw.exhaustive_best ~law problem in
      let _, pseudo = Btw.pseudo_polynomial_best ~law problem in
      let _, greedy = Btw.greedy ~law problem in
      let makespan_value = Btw.expected_saved_work ~law makespan_schedule in
      Table.add_row table
        [
          label; Table.cell_f exhaustive;
          Common.bool_cell (Float.abs (exhaustive -. pseudo) <= 1e-9 *. exhaustive);
          Table.cell_f (greedy /. exhaustive);
          Table.cell_f (makespan_value /. exhaustive);
          Printf.sprintf "%d vs %d"
            (Schedule.checkpoint_count exhaustive_schedule)
            (Schedule.checkpoint_count makespan_schedule);
        ])
    (laws mean);
  [ Common.Table table ]

(** E1 — Monte-Carlo validation of Proposition 1: the closed form
    E(T(W,C,D,R,λ)) must lie inside the 99% confidence interval of the
    simulated mean, across a grid of parameter settings. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

(** E14 (related work [23]) — the cost of sub-optimal checkpoint
    periods: expected-time ratio against the optimum when the period is
    mis-estimated by a multiplicative factor, across failure-rate
    regimes (Jones, Daly & DeBardeleben, HPDC'10 — cited by the paper's
    related work as the motivation for knowing the exact formula). *)

val name : string
val claim : string

val run : Common.config -> Common.output list

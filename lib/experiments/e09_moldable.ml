module Table = Ckpt_stats.Table
module Moldable = Ckpt_core.Moldable
module Approximations = Ckpt_core.Approximations

let name = "E9"
let claim = "Section 3 scenarios: expected time vs processor count"

let scenarios =
  let mk workload overhead =
    ( Printf.sprintf "%s / %s" (Moldable.workload_to_string workload)
        (Moldable.overhead_to_string overhead),
      Moldable.scenario ~downtime:60.0 ~total_work:1e7 ~workload ~overhead ~proc_rate:1e-7
        () )
  in
  [
    mk Moldable.Perfectly_parallel (Moldable.Proportional 600.0);
    mk Moldable.Perfectly_parallel (Moldable.Constant 600.0);
    mk (Moldable.Amdahl 1e-6) (Moldable.Constant 600.0);
    mk (Moldable.Numerical_kernel 0.1) (Moldable.Proportional 600.0);
    mk (Moldable.Numerical_kernel 0.1) (Moldable.Constant 600.0);
  ]

let run _config =
  let ps = [ 16; 64; 256; 1024; 4096; 16384; 65536 ] in
  let sweep =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s (W_total=1e7, C_vol=600, D=60, lambda_proc=1e-7; cells: E*(p))" name
           claim)
      ~columns:
        (("p", Table.Right)
        :: List.map (fun (label, _) -> (label, Table.Right)) scenarios)
  in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun (_, s) ->
            Table.cell_e (Moldable.expected_time s ~p).Approximations.expected_total)
          scenarios
      in
      Table.add_row sweep (string_of_int p :: cells))
    ps;
  let optima =
    Table.create ~title:(Printf.sprintf "%s (cont.): optimal processor counts" name)
      ~columns:[ ("scenario", Table.Left); ("p*", Table.Right); ("E*(p*)", Table.Right);
                 ("chunks m*", Table.Right) ]
  in
  List.iter
    (fun (label, s) ->
      let p_star, d = Moldable.optimal_processors s ~max_p:65536 in
      Table.add_row optima
        [
          label; string_of_int p_star; Table.cell_e d.Approximations.expected_total;
          string_of_int d.Approximations.chunks;
        ])
    scenarios;
  [ Common.Table sweep; Common.Table optima ]

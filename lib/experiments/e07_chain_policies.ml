module Table = Ckpt_stats.Table
module Generate = Ckpt_dag.Generate
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Monte_carlo = Ckpt_sim.Monte_carlo

let name = "E7"
let claim = "optimal placement vs standard policies on a 50-task chain"

let run config =
  let rng = Common.rng config "e7-chain" in
  let spec = Generate.uniform_costs ~work:(2.0, 8.0) ~checkpoint:(0.3, 1.2)
      ~recovery:(0.3, 1.2) ()
  in
  let dag = Generate.chain rng spec ~n:50 in
  let base = Chain_problem.of_dag ~downtime:0.5 ~initial_recovery:0.5 ~lambda:0.01 dag in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s: %s (ratios to DP optimum)" name claim)
      ~columns:
        [
          ("lambda", Table.Right); ("MTBF/W_total", Table.Right); ("E_opt (DP)", Table.Right);
          ("#ckpts", Table.Right); ("all/opt", Table.Right); ("none/opt", Table.Right);
          ("Young/opt", Table.Right); ("Daly/opt", Table.Right); ("every5/opt", Table.Right);
        ]
  in
  let lambdas = [ 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 1e-1 ] in
  List.iter
    (fun lambda ->
      let problem = Chain_problem.with_lambda base lambda in
      let dp = Chain_dp.solve problem in
      let opt = dp.Chain_dp.expected_makespan in
      let ratio schedule = Schedule.expected_makespan schedule /. opt in
      Table.add_row table
        [
          Table.cell_f lambda;
          Table.cell_f (1.0 /. lambda /. Chain_problem.total_work problem);
          Table.cell_f opt;
          string_of_int (Schedule.checkpoint_count dp.Chain_dp.schedule);
          Table.cell_f (ratio (Schedule.checkpoint_all problem));
          Table.cell_f (ratio (Schedule.checkpoint_none problem));
          Table.cell_f (ratio (Schedule.young problem));
          Table.cell_f (ratio (Schedule.daly problem));
          Table.cell_f (ratio (Schedule.every_k problem 5));
        ])
    lambdas;
  (* Simulation cross-check at one interesting rate. *)
  let lambda = 1e-2 in
  let problem = Chain_problem.with_lambda base lambda in
  let runs = Common.runs config ~full:20_000 in
  let check =
    Table.create
      ~title:(Printf.sprintf "%s (cont.): simulation cross-check at lambda=%g (%d runs)"
                name lambda runs)
      ~columns:[ ("policy", Table.Left); ("analytic E", Table.Right);
                 ("simulated", Table.Right); ("analytic in 99% CI", Table.Left) ]
  in
  List.iter
    (fun (label, schedule) ->
      let analytic = Schedule.expected_makespan schedule in
      let estimate =
        Monte_carlo.estimate_segments ?domains:config.Common.domains
          ?target_ci:config.Common.target_ci
          ~model:(Monte_carlo.Poisson_rate lambda)
          ~downtime:0.5
          ~runs
          ~rng:(Common.rng config ("e7-sim-" ^ label))
          (Schedule.to_sim_segments schedule)
      in
      Table.add_row check
        [
          label; Table.cell_f analytic; Table.cell_f estimate.Monte_carlo.mean;
          Common.bool_cell (Monte_carlo.contains estimate.Monte_carlo.ci99 analytic);
        ])
    [
      ("DP optimum", (Chain_dp.solve problem).Chain_dp.schedule);
      ("checkpoint-all", Schedule.checkpoint_all problem);
      ("checkpoint-none", Schedule.checkpoint_none problem);
      ("Young", Schedule.young problem);
    ];
  [ Common.Table table; Common.Table check ]

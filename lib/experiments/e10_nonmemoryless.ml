module Table = Ckpt_stats.Table
module Law = Ckpt_dist.Law
module Platform = Ckpt_failures.Platform
module Monte_carlo = Ckpt_sim.Monte_carlo
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Nonmemoryless = Ckpt_core.Nonmemoryless

let name = "E10"
let claim = "non-memoryless failures: adaptive policies vs memoryless-optimal placement"

(* A 30-task chain, platform of 8 nodes, per-node MTBF 400 time units:
   platform MTBF 50 against a failure-free span of ~66, i.e. a couple of
   failures per run on average. *)
let processors = 8
let node_mtbf = 400.0
let downtime = 0.5

let laws =
  [
    ("Exponential", Law.exponential ~rate:(1.0 /. node_mtbf));
    ("Weibull k=0.7", Law.weibull_of_mean ~shape:0.7 ~mean:node_mtbf);
    ("Weibull k=0.5", Law.weibull_of_mean ~shape:0.5 ~mean:node_mtbf);
    ("LogNormal s=1.5", Law.log_normal_of_mean ~sigma:1.5 ~mean:node_mtbf);
  ]

let chain () =
  Chain_problem.uniform ~downtime
    ~lambda:(float_of_int processors /. node_mtbf)
    ~checkpoint:0.4 ~recovery:0.4
    (List.init 30 (fun i -> 1.5 +. (0.5 *. float_of_int (i mod 4))))

let run config =
  let runs = Common.runs config ~full:4000 in
  let problem = chain () in
  let dp_schedule = (Chain_dp.solve problem).Chain_dp.schedule in
  let policies law =
    [
      ("static DP (memoryless opt)", Nonmemoryless.static dp_schedule);
      ("checkpoint-all", Nonmemoryless.checkpoint_all);
      ("checkpoint-none", Nonmemoryless.checkpoint_none);
      ("hazard-Young", Nonmemoryless.hazard_young ~law ~processors ~mean_checkpoint:0.4);
      ("MRL-Young", Nonmemoryless.mrl_young ~law ~processors ~mean_checkpoint:0.4);
      ("risk-bound 0.5", Nonmemoryless.risk_bound ~law ~processors ~problem ~max_risk:0.5);
      ("hazard-DP", Nonmemoryless.hazard_dp ~law ~processors ~problem);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%s: %s (30-task chain, %d nodes, node MTBF %g, %d runs)" name claim processors
           node_mtbf runs)
      ~columns:[ ("law", Table.Left); ("policy", Table.Left); ("mean makespan", Table.Right);
                 ("99% CI +/-", Table.Right); ("ratio to best", Table.Right) ]
  in
  List.iter
    (fun (law_label, law) ->
      let platform = Platform.make ~downtime ~processors ~proc_law:law () in
      let results =
        List.map
          (fun (label, policy) ->
            (* Each estimate is its own campaign: don't let one policy's
               cache hit rate bleed into the next row's metrics. *)
            Nonmemoryless.reset_cache_stats ();
            let estimate =
              Monte_carlo.estimate_chain_policy ?domains:config.Common.domains
                ?target_ci:config.Common.target_ci
                ~model:(Monte_carlo.Platform platform)
                ~downtime ~initial_recovery:problem.Chain_problem.initial_recovery ~runs
                ~rng:(Common.rng config (Printf.sprintf "e10-%s-%s" law_label label))
                ~decide:policy problem.Chain_problem.tasks
            in
            (label, estimate))
          (policies law)
      in
      let best =
        List.fold_left (fun acc (_, e) -> Float.min acc e.Monte_carlo.mean) infinity results
      in
      List.iter
        (fun (label, (e : Monte_carlo.estimate)) ->
          let lo, hi = e.Monte_carlo.ci99 in
          Table.add_row table
            [
              law_label; label; Table.cell_f e.Monte_carlo.mean;
              Table.cell_f ((hi -. lo) /. 2.0); Table.cell_f (e.Monte_carlo.mean /. best);
            ])
        results;
      if law_label <> fst (List.nth laws (List.length laws - 1)) then Table.add_rule table)
    laws;
  [ Common.Table table ]

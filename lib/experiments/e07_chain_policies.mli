(** E7 — The value of optimal placement on chains (the motivation of
    Sections 1-2): expected-makespan ratios of standard placements
    (checkpoint everywhere / never / Young / Daly periodic) against the
    DP optimum, across failure rates, plus a simulation cross-check. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

module Table = Ckpt_stats.Table
module Expected_time = Ckpt_core.Expected_time

let name = "E6"
let claim = "Prop 2 proof: equal segments, m = n checkpoints are uniquely optimal"

let run _config =
  (* The reduction's setting: n groups of total work T each; total nT.
     lambda = 1/(2T), C = R = (ln 2 - 1/2)/lambda, D = 0. *)
  let n = 6 in
  let target = 100.0 in
  let lambda = 1.0 /. (2.0 *. target) in
  let cost = (log 2.0 -. 0.5) /. lambda in
  let total = float_of_int n *. target in
  let segments_cost m =
    (* m equal segments of work nT/m, each paying e^(lambda C). *)
    float_of_int m
    *. Expected_time.expected_v ~work:(total /. float_of_int m) ~checkpoint:cost
         ~downtime:0.0 ~recovery:cost ~lambda
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s: %s (n=%d, T=%g, lambda=1/(2T), C=R=(ln2-1/2)/lambda)" name
           claim n target)
      ~columns:[ ("m segments", Table.Right); ("E0(m)", Table.Right);
                 ("E0(m)/E0(n)", Table.Right) ]
  in
  let at_n = segments_cost n in
  for m = 1 to 2 * n do
    Table.add_row table
      [ string_of_int m; Table.cell_f (segments_cost m);
        Table.cell_f (segments_cost m /. at_n) ]
  done;
  let valley =
    Ckpt_stats.Ascii_plot.single ~height:14
      ~title:(Printf.sprintf "Figure E6: E0(m)/E0(n), minimum at m = n = %d" n)
      (List.init (2 * n) (fun i ->
           (float_of_int (i + 1), segments_cost (i + 1) /. at_n)))
  in
  (* Second table: imbalance at fixed m = n. Splitting nT into n
     segments of work T(1 +/- delta) in alternating pairs. *)
  let imbalance delta =
    let heavy = target *. (1.0 +. delta) and light = target *. (1.0 -. delta) in
    let cost_of work =
      Expected_time.expected_v ~work ~checkpoint:cost ~downtime:0.0 ~recovery:cost ~lambda
    in
    (float_of_int (n / 2) *. cost_of heavy) +. (float_of_int (n / 2) *. cost_of light)
  in
  let table2 =
    Table.create
      ~title:(Printf.sprintf "%s (cont.): segment imbalance at m = n" name)
      ~columns:[ ("delta", Table.Right); ("E(delta)", Table.Right);
                 ("excess vs balanced", Table.Right) ]
  in
  List.iter
    (fun delta ->
      Table.add_row table2
        [ Table.cell_f delta; Table.cell_f (imbalance delta);
          Table.cell_e (imbalance delta -. at_n) ])
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ];
  [ Common.Table table; Common.Figure valley; Common.Table table2 ]

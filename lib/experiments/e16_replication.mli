(** E16 (related work [16]/[29]/[30]) — checkpointing versus group
    replication: where duplicating the work starts paying for itself as
    the failure rate grows. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

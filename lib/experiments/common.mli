(** Shared plumbing for the experiment modules. *)

type output =
  | Table of Ckpt_stats.Table.t
  | Figure of string  (** Pre-rendered ASCII figure (see {!Ckpt_stats.Ascii_plot}). *)

val print_output : output -> unit

type config = {
  seed : int64;
  quick : bool;
      (** Reduced replication counts for CI-sized runs; the full
          configuration is used to produce EXPERIMENTS.md. *)
  domains : int option;
      (** Monte-Carlo domain-pool size; [None] lets the simulator pick
          ({!Ckpt_sim.Parallel_exec.default_domains}). Tables are
          bit-identical whatever the value. *)
  target_ci : float option;
      (** When set, the simulation-backed experiments sample adaptively
          until the relative 99% CI half-width reaches this target
          (replication counts then become minimums, see
          {!Ckpt_sim.Monte_carlo}). *)
}

val default : config
(** seed 42, full size. *)

val rng : config -> string -> Ckpt_prng.Rng.t
(** Labelled substream of the experiment seed. *)

val runs : config -> full:int -> int
(** [full] replications, divided by 10 (min 100) in quick mode. *)

val time : (unit -> 'a) -> float * 'a
(** Monotonic wall-clock seconds of a thunk ({!Ckpt_obs.Clock.time}:
    immune to system clock adjustments, unlike [Unix.gettimeofday]). *)

val bool_cell : bool -> string
(** "yes"/"NO" table cell. *)

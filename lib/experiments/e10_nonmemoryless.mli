(** E10 — The Section 6 extension: checkpoint policies under
    non-Exponential failures (Weibull / LogNormal synthetic cluster
    logs). History-aware policies are compared by simulation against the
    memoryless-optimal static placement. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

type output = Table of Ckpt_stats.Table.t | Figure of string

let print_output output =
  match output with
  | Table table -> Ckpt_stats.Table.print table
  | Figure text -> print_string text

type config = {
  seed : int64;
  quick : bool;
  domains : int option;
  target_ci : float option;
}

let default = { seed = 42L; quick = false; domains = None; target_ci = None }

let rng config label =
  Ckpt_prng.Rng.substream (Ckpt_prng.Rng.create ~seed:config.seed) label

let runs config ~full = if config.quick then Stdlib.max 100 (full / 10) else full

let time = Ckpt_obs.Clock.time

let bool_cell b = if b then "yes" else "NO"

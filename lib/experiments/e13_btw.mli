(** E13 (related work [20]) — the Bouguerra–Trystram–Wagner saved-work
    objective: how its optimal placement compares with the paper's
    makespan-optimal placement, for Exponential and general laws. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

(** E9 — The Section 3 scaling scenarios: expected time versus processor
    count for the three workload models crossed with the two
    checkpoint-cost models, and the resulting optimal platform sizes. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

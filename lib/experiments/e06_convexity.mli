(** E6 — The convexity argument inside the Proposition 2 proof: with the
    reduction's parameters, the expected makespan over m equal segments
    E0(m) = m·(e^(λC)/λ)·(e^(λ(nT/m + C)) − 1) is convex with its
    minimum exactly at m = n, and unequal segments only increase the
    expectation. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

module Table = Ckpt_stats.Table
module Expected_time = Ckpt_core.Expected_time
module Approximations = Ckpt_core.Approximations
module Descriptive = Ckpt_stats.Descriptive

let name = "E2"
let claim = "approximation accuracy vs exact formula (Prop 1)"

let run _config =
  (* Fixed shape W=10 C=1 D=0.5 R=2; sweep the failure intensity so
     lambda(W+C) spans 1e-4 .. 2.2. *)
  let work = 10.0 and checkpoint = 1.0 and downtime = 0.5 and recovery = 2.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s: %s (W=10 C=1 D=0.5 R=2)" name claim)
      ~columns:
        [
          ("lambda(W+C)", Table.Right); ("exact E(T)", Table.Right);
          ("1st-order err", Table.Right); ("2nd-order err", Table.Right);
          ("Bouguerra err", Table.Right); ("ordering holds", Table.Left);
        ]
  in
  let xs = [ 1e-4; 1e-3; 1e-2; 0.05; 0.1; 0.3; 0.5; 1.0; 2.0 ] in
  let orderings_hold = ref true in
  List.iter
    (fun x ->
      let lambda = x /. (work +. checkpoint) in
      let p = Expected_time.make ~downtime ~recovery ~work ~checkpoint ~lambda () in
      let exact = Expected_time.expected p in
      let err v = Descriptive.relative_error ~actual:v ~reference:exact in
      let e1 = err (Approximations.first_order p) in
      let e2 = err (Approximations.second_order p) in
      let eb = err (Approximations.bouguerra p) in
      (* In the small-x regime the hierarchy 2nd < 1st must hold. *)
      let holds = x >= 0.5 || e2 <= e1 +. 1e-15 in
      if not holds then orderings_hold := false;
      Table.add_row table
        [
          Table.cell_f x; Table.cell_f exact; Table.cell_e e1; Table.cell_e e2;
          Table.cell_e eb; Common.bool_cell holds;
        ])
    xs;
  (* Second table: the Bouguerra bias vanishes with R. *)
  let bias =
    Table.create ~title:(Printf.sprintf "%s (cont.): Bouguerra bias vs recovery cost" name)
      ~columns:[ ("R", Table.Right); ("exact", Table.Right); ("Bouguerra", Table.Right);
                 ("analytic bias (1/l+D)(e^(lR)-1)", Table.Right) ]
  in
  List.iter
    (fun r ->
      let lambda = 0.05 in
      let p = Expected_time.make ~downtime ~recovery:r ~work ~checkpoint ~lambda () in
      let exact = Expected_time.expected p in
      let b = Approximations.bouguerra p in
      let analytic = ((1.0 /. lambda) +. downtime) *. Float.expm1 (lambda *. r) in
      Table.add_row bias
        [ Table.cell_f r; Table.cell_f exact; Table.cell_f b; Table.cell_f analytic ])
    [ 0.0; 0.5; 1.0; 2.0; 5.0; 10.0 ];
  [ Common.Table table; Common.Table bias ]

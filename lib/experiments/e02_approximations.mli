(** E2 — Accuracy of the literature's approximations against the exact
    formula (the Section 3 / Related-Work discussion): first- and
    second-order expansions (Young/Daly-level accuracy) and the
    Bouguerra et al. formula with its first-attempt-recovery bias. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

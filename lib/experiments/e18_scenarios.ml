module Table = Ckpt_stats.Table
module Scenario = Ckpt_scenarios.Scenario
module Monitor = Ckpt_scenarios.Monitor

let name = "E18"
let claim = "fault-scenario harness: every registered scenario reproduces and passes its monitors"

let run config =
  let seed = config.Common.seed in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s: %s (seed %Ld)" name claim seed)
      ~columns:
        [
          ("scenario", Table.Left); ("makespan", Table.Right); ("failures", Table.Right);
          ("checks", Table.Right); ("violations", Table.Right);
          ("reproducible", Table.Left); ("digest", Table.Left);
        ]
  in
  List.iter
    (fun s ->
      let o = Scenario.run s ~seed in
      let o' = Scenario.run s ~seed in
      Table.add_row table
        [
          o.Scenario.scenario;
          Table.cell_f o.Scenario.stats.Ckpt_sim.Sim_run.makespan;
          string_of_int o.Scenario.stats.Ckpt_sim.Sim_run.failures;
          string_of_int (Monitor.total_checks o.Scenario.verdicts);
          string_of_int (Monitor.total_violations o.Scenario.verdicts);
          Common.bool_cell (String.equal o.Scenario.digest o'.Scenario.digest);
          String.sub o.Scenario.digest 0 12;
        ])
    Scenario.all;
  [ Common.Table table ]

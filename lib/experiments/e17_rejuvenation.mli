(** E17 (Related Work, the [12] critique) — the rejuvenation assumption:
    exact-under-assumption general-law placements versus reality.
    The paper states that Bouguerra et al.'s analysis silently assumes
    all processors are rejuvenated after each failure and checkpoint,
    and that this is "unreasonable for Weibull failures" ([13]); this
    experiment puts numbers on that criticism. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

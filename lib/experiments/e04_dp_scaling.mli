(** E4 — Proposition 3's complexity: the dynamic program's runtime grows
    as O(n²) (empirical log-log slope ≈ 2). *)

val name : string
val claim : string

val run : Common.config -> Common.output list

(** E11 (ablation, Section 6 first extension) — general DAGs: the value
    of choosing the linearization, and the effect of live-set checkpoint
    costs versus the per-task model. Not a claim with numbers in the
    paper; this quantifies the design discussion of Section 6. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

(** E3 — Proposition 3: the chain dynamic program returns exactly the
    optimum found by exhaustive enumeration of all checkpoint
    placements, on random heterogeneous chains. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

module Table = Ckpt_stats.Table
module Rng = Ckpt_prng.Rng
module Generate = Ckpt_dag.Generate
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Brute_force = Ckpt_core.Brute_force

let name = "E3"
let claim = "Prop 3: DP = exhaustive optimum on chains"

let run config =
  let trials = if config.Common.quick then 20 else 100 in
  let table =
    Table.create ~title:(Printf.sprintf "%s: %s (%d random chains per size)" name claim trials)
      ~columns:
        [
          ("n", Table.Right); ("trials", Table.Right);
          ("max rel gap DP vs brute force", Table.Right);
          ("max rel gap memoized vs iterative", Table.Right);
          ("placements agree", Table.Left);
        ]
  in
  List.iter
    (fun n ->
      let max_gap_bf = ref 0.0 and max_gap_memo = ref 0.0 and placements_ok = ref true in
      for trial = 1 to trials do
        let rng = Common.rng config (Printf.sprintf "e3-%d-%d" n trial) in
        let spec = Generate.uniform_costs () in
        let dag = Generate.chain rng spec ~n in
        let lambda = Rng.float_range rng 0.005 0.3 in
        let problem =
          Chain_problem.of_dag ~downtime:(Rng.float_range rng 0.0 1.0)
            ~initial_recovery:(Rng.float_range rng 0.0 1.0) ~lambda dag
        in
        let dp = Chain_dp.solve problem in
        let bf = Brute_force.chain_best problem in
        let memo = Chain_dp.solve_memoized problem in
        let gap a b = Float.abs (a -. b) /. Float.max 1e-300 b in
        max_gap_bf :=
          Float.max !max_gap_bf
            (gap dp.Chain_dp.expected_makespan bf.Chain_dp.expected_makespan);
        max_gap_memo :=
          Float.max !max_gap_memo
            (gap dp.Chain_dp.expected_makespan memo.Chain_dp.expected_makespan);
        if not (Ckpt_core.Schedule.equal dp.Chain_dp.schedule memo.Chain_dp.schedule) then
          placements_ok := false
      done;
      Table.add_row table
        [
          string_of_int n; string_of_int trials; Table.cell_e !max_gap_bf;
          Table.cell_e !max_gap_memo; Common.bool_cell !placements_ok;
        ])
    [ 4; 8; 12; 16 ];
  [ Common.Table table ]

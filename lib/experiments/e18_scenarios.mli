(** E18 (infrastructure) — the deterministic fault-scenario harness:
    runs every registered scenario twice at the experiment seed,
    checking that the run digest reproduces bit-for-bit and that every
    invariant monitor passes on the honest engine. *)

val name : string
val claim : string

val run : Common.config -> Common.output list

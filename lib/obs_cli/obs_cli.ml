open Cmdliner

let metrics_arg =
  let fmt =
    Arg.enum
      [
        ("table", Ckpt_obs.Sink.Table); ("json", Ckpt_obs.Sink.Json);
        ("openmetrics", Ckpt_obs.Sink.OpenMetrics);
      ]
  in
  let doc =
    "Print an engine-metrics snapshot on exit: runs, simulated failures, checkpoints, \
     re-executed work, DP memo hit rates, per-domain pool utilization. $(docv) is \
     $(b,table), $(b,json) or $(b,openmetrics) (Prometheus text exposition); the \
     deterministic section is bit-identical for any --domains value at a fixed seed."
  in
  Arg.(value & opt (some fmt) None & info [ "metrics" ] ~docv:"FMT" ~doc)

let metrics_out_arg =
  let doc =
    "Write the --metrics snapshot to $(docv) instead of stdout (e.g. an OpenMetrics \
     scrape artifact that must not interleave with the report)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record timing spans and write them to $(docv) on exit, in Chrome trace_event JSON \
     (load it in about://tracing or https://ui.perfetto.dev), or JSON Lines when the \
     path ends in .jsonl."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let setup metrics metrics_out trace =
  Option.iter (fun fmt -> Ckpt_obs.Sink.install_metrics ?path:metrics_out fmt) metrics;
  Option.iter Ckpt_obs.Sink.install_trace trace;
  Ckpt_obs.Sink.flush

let term = Term.(const setup $ metrics_arg $ metrics_out_arg $ trace_arg)

(** The shared observability flags of the CLI tools.

    [--metrics table|json|openmetrics] prints a {!Ckpt_obs.Metrics}
    snapshot on exit ([--metrics-out FILE] redirects it to a file);
    [--trace FILE] enables span recording and writes the trace to
    [FILE] on exit (Chrome [trace_event] JSON, or JSON Lines when the
    path ends in [.jsonl]). *)

val term : (unit -> unit) Cmdliner.Term.t
(** Evaluates the flags, installs the matching {!Ckpt_obs.Sink}s, and
    yields the flush function the tool must call once before exiting. *)

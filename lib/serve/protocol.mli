(** The ckpt-serve wire protocol (docs/SERVING.md): length-prefixed JSON
    frames carrying planning requests and responses.

    A frame is a 4-byte big-endian unsigned payload length followed by
    that many bytes of UTF-8 JSON. The framing layer is independent of
    JSON validity, so a malformed payload costs one error response, not
    the connection; only an oversized length desynchronizes the stream
    and forces a close.

    This module is pure (no sockets — the Unix boundary is {!Net}), so
    the grammar and the incremental decoder are unit-testable without a
    server. *)

type error = {
  code : string;  (** Stable machine-readable identifier, see below. *)
  message : string;  (** Human-oriented detail. *)
  retry_after_ms : int option;
      (** Present on [queue_full]: the client should back off at least
          this long before retrying. *)
}

(** Error codes emitted by the server:
    [oversized_frame], [parse_error], [bad_request], [unknown_method],
    [queue_full] (carries [retry_after_ms]), [deadline_exceeded],
    [shutting_down], [internal]. *)

val bad_request : string -> error
val unknown_method : string -> error
val parse_error : string -> error
val queue_full : retry_after_ms:int -> error
val deadline_exceeded : string -> error
val shutting_down : unit -> error
val oversized_frame : size:int -> max_frame:int -> error
val internal : string -> error

type request = {
  id : string;  (** Client-chosen correlation id, echoed verbatim. *)
  method_ : string;
  timeout_ms : int option;
      (** Per-request deadline measured from acceptance; a request
          popped after its deadline gets [deadline_exceeded]. *)
  params : Ckpt_json.Json.t;  (** [Null] when absent. *)
}

val parse_request : Ckpt_json.Json.t -> (request, error) result
(** Validates shape: [id] (non-empty string) and [method] (string) are
    mandatory; [timeout_ms] must be a positive integer when present. *)

val request_to_json : request -> Ckpt_json.Json.t
(** Client-side serialization; [parse_request] round-trips it. *)

val ok_response : id:string -> ?cache:string -> Ckpt_json.Json.t -> Ckpt_json.Json.t
(** [{"id":ID,"ok":true,("cache":C,)?"result":RESULT}]. *)

val error_response : id:string option -> error -> Ckpt_json.Json.t
(** [{"id":ID|null,"ok":false,"error":{"code":..,"message":..
    (,"retry_after_ms":..)?}}]. *)

(** {1 Framing} *)

module Framing : sig
  val default_max_frame : int
  (** 1 MiB. *)

  val encode : string -> string
  (** Prepend the 4-byte big-endian length. Raises [Invalid_argument]
      on payloads above 2^31 - 1 bytes. *)

  type decoder
  (** Incremental frame extractor: feed arbitrary byte chunks, pull
      complete payloads. *)

  val decoder : ?max_frame:int -> unit -> decoder

  type event =
    | Frame of string  (** One complete payload. *)
    | Oversized of int  (** Announced length beyond [max_frame]; the
                            stream is desynchronized — close it. *)

  val feed : decoder -> string -> unit
  val next : decoder -> event option
  (** [None] until a full frame is buffered. After [Oversized] every
      subsequent [next] returns [Oversized] again. *)

  val buffered : decoder -> int
  (** Bytes currently held (tests). *)
end

(** Minimal synchronous client for the ckpt-serve protocol: one
    connection, one in-flight request at a time. This is what the CLI
    smoke mode, the serve bench cases and the end-to-end tests speak —
    production clients in other languages only need to reimplement the
    framing (docs/SERVING.md). *)

type t

exception Transport of string
(** Connection-level failure (closed socket, unparsable response
    frame). Protocol-level errors are ordinary responses with
    [ok = false], not exceptions. *)

val connect : ?host:string -> port:int -> unit -> t

val rpc : t -> Protocol.request -> Ckpt_json.Json.t
(** Send, then block for the single response frame. *)

val call :
  t -> ?timeout_ms:int -> ?params:Ckpt_json.Json.t -> id:string -> string ->
  Ckpt_json.Json.t
(** [call t ~id method_] — convenience wrapper building the request. *)

val close : t -> unit

module Json = Ckpt_json.Json
module Task = Ckpt_dag.Task
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Independent = Ckpt_core.Independent
module Moldable = Ckpt_core.Moldable
module Moldable_chain = Ckpt_core.Moldable_chain
module Metrics = Ckpt_obs.Metrics
module Span = Ckpt_obs.Span

let requests_total = Metrics.counter "serve.requests"
let errors_total = Metrics.counter "serve.errors"

type t = { plan_cache : Plan_cache.t }

let create ~cache_capacity = { plan_cache = Plan_cache.create ~capacity:cache_capacity }
let cache t = t.plan_cache

(* --- param validation ----------------------------------------------- *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let obj_field name json =
  match Json.member name json with Some v -> Some v | None -> None

let req_field name json =
  match obj_field name json with
  | Some v -> v
  | None -> failf "params: missing field %S" name

let float_field name json =
  match Json.to_float (req_field name json) with
  | Some x -> x
  | None -> failf "params: field %S must be a number" name

let opt_float_field ?(default = 0.0) name json =
  match obj_field name json with
  | None -> default
  | Some v -> (
      match Json.to_float v with
      | Some x -> x
      | None -> failf "params: field %S must be a number" name)

let int_field name json =
  match Json.to_int (req_field name json) with
  | Some n -> n
  | None -> failf "params: field %S must be an integer" name

let list_field name json =
  match Json.to_list (req_field name json) with
  | Some l -> l
  | None -> failf "params: field %S must be an array" name

let json_float x = Json.Number x
let json_int n = Json.Number (float_of_int n)
let json_ints l = Json.List (List.map json_int l)

(* --- plan_chain ------------------------------------------------------ *)

let chain_tasks params =
  let tasks = list_field "tasks" params in
  if tasks = [] then failf "params: \"tasks\" must be non-empty";
  List.mapi
    (fun i task_json ->
      let work = float_field "work" task_json in
      let checkpoint_cost = opt_float_field "checkpoint" task_json in
      let recovery_cost = opt_float_field "recovery" task_json in
      try Task.make ~id:i ~work ~checkpoint_cost ~recovery_cost ()
      with Invalid_argument msg -> failf "params: tasks[%d]: %s" i msg)
    tasks

let chain_problem params =
  let lambda = float_field "lambda" params in
  let downtime = opt_float_field "downtime" params in
  let initial_recovery = opt_float_field "initial_recovery" params in
  let tasks = chain_tasks params in
  try Chain_problem.make ~downtime ~initial_recovery ~lambda tasks
  with Invalid_argument msg -> failf "params: %s" msg

let plan_chain t ~id params =
  let problem = chain_problem params in
  let cached = Plan_cache.find t.plan_cache problem in
  let checkpoints_after, expected_makespan, cache_tag =
    match cached with
    | Some hit ->
        (hit.Plan_cache.checkpoints_after, hit.Plan_cache.expected_makespan, "hit")
    | None ->
        (* Fastest applicable solver: SMAWK when the monotonicity
           certificate holds, with a counted fallback to the exhaustive
           sweep otherwise. Bit-for-bit equal to Chain_dp.solve either
           way (the CI smoke checks served plans against the offline
           oracle), so cache keys and cached answers are unchanged. *)
        let solution = Chain_dp.solve_smawk problem in
        Plan_cache.store t.plan_cache problem solution;
        ( Schedule.checkpoint_indices solution.Chain_dp.schedule,
          solution.Chain_dp.expected_makespan,
          "miss" )
  in
  Protocol.ok_response ~id ~cache:cache_tag
    (Json.Obj
       [
         ("n", json_int (Chain_problem.size problem));
         ("expected_makespan", json_float expected_makespan);
         ("checkpoints_after", json_ints checkpoints_after);
       ])

(* --- plan_independent ------------------------------------------------ *)

let ordering_name = function
  | Independent.As_given -> "as-given"
  | Independent.Shortest_first -> "shortest-first"
  | Independent.Longest_first -> "longest-first"
  | Independent.Random _ -> "random"

let plan_independent ~id params =
  let lambda = float_field "lambda" params in
  let downtime = opt_float_field "downtime" params in
  let initial_recovery = opt_float_field "initial_recovery" params in
  let tasks = chain_tasks params in
  let problem =
    try Independent.make ~downtime ~initial_recovery ~lambda tasks
    with Invalid_argument msg -> failf "params: %s" msg
  in
  let orderings =
    [ Independent.As_given; Independent.Shortest_first; Independent.Longest_first ]
  in
  let ordering, solution = Independent.best_ordered problem orderings in
  let order =
    Independent.order_tasks problem ordering
    |> List.map (fun task -> task.Task.id)
  in
  Protocol.ok_response ~id
    (Json.Obj
       [
         ("strategy", Json.String (ordering_name ordering));
         ("order", json_ints order);
         ("expected_makespan", json_float solution.Chain_dp.expected_makespan);
         ( "checkpoints_after",
           json_ints (Schedule.checkpoint_indices solution.Chain_dp.schedule) );
       ])

(* --- plan_moldable --------------------------------------------------- *)

let overhead_field name json =
  let v = req_field name json in
  let alpha_v = float_field "alpha_v" v in
  match Json.to_str (req_field "model" v) with
  | Some "proportional" -> Moldable.Proportional alpha_v
  | Some "constant" -> Moldable.Constant alpha_v
  | _ -> failf "params: %S.model must be \"proportional\" or \"constant\"" name

let workload_field json =
  match obj_field "workload" json with
  | None -> Moldable.Perfectly_parallel
  | Some v -> (
      match Json.to_str (req_field "model" v) with
      | Some "perfect" -> Moldable.Perfectly_parallel
      | Some "amdahl" -> Moldable.Amdahl (float_field "gamma" v)
      | Some "numerical" -> Moldable.Numerical_kernel (float_field "gamma" v)
      | _ ->
          failf
            "params: workload.model must be \"perfect\", \"amdahl\" or \"numerical\"")

let plan_moldable ~id params =
  let proc_rate = float_field "proc_rate" params in
  let downtime = opt_float_field "downtime" params in
  let initial_recovery = opt_float_field "initial_recovery" params in
  let max_processors = int_field "max_processors" params in
  let tasks =
    list_field "tasks" params
    |> List.mapi (fun i task_json ->
           let total_work = float_field "total_work" task_json in
           let checkpoint = overhead_field "checkpoint" task_json in
           let workload = workload_field task_json in
           let recovery =
             match obj_field "recovery" task_json with
             | None -> None
             | Some _ -> Some (overhead_field "recovery" task_json)
           in
           try Moldable_chain.task ?recovery ~workload ~total_work ~checkpoint ()
           with Invalid_argument msg -> failf "params: tasks[%d]: %s" i msg)
  in
  let problem =
    try
      Moldable_chain.problem ~downtime ~initial_recovery ~max_processors ~proc_rate
        tasks
    with Invalid_argument msg -> failf "params: %s" msg
  in
  let solution = Moldable_chain.solve problem in
  Protocol.ok_response ~id
    (Json.Obj
       [
         ("expected_makespan", json_float solution.Moldable_chain.expected_makespan);
         ( "segments",
           Json.List
             (List.map
                (fun (first, last, processors) ->
                  Json.Obj
                    [
                      ("first", json_int first);
                      ("last", json_int last);
                      ("processors", json_int processors);
                    ])
                solution.Moldable_chain.segments) );
       ])

(* --- dispatch -------------------------------------------------------- *)

let handle t (request : Protocol.request) =
  Metrics.incr requests_total;
  let id = request.Protocol.id in
  let params = request.Protocol.params in
  let respond () =
    match request.Protocol.method_ with
    | "ping" -> Protocol.ok_response ~id (Json.String "pong")
    | "plan_chain" -> plan_chain t ~id params
    | "plan_independent" -> plan_independent ~id params
    | "plan_moldable" -> plan_moldable ~id params
    | m -> Protocol.error_response ~id:(Some id) (Protocol.unknown_method m)
  in
  let response =
    Span.with_ ~name:("serve." ^ request.Protocol.method_) (fun () ->
        try respond () with
        | Bad msg -> Protocol.error_response ~id:(Some id) (Protocol.bad_request msg)
        | exn ->
            Protocol.error_response ~id:(Some id)
              (Protocol.internal (Printexc.to_string exn)))
  in
  (match Json.member "ok" response with
  | Some (Json.Bool false) -> Metrics.incr errors_total
  | _ -> ());
  response

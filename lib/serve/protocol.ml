module Json = Ckpt_json.Json

type error = { code : string; message : string; retry_after_ms : int option }

let err ?retry_after_ms code message = { code; message; retry_after_ms }
let bad_request message = err "bad_request" message
let unknown_method m = err "unknown_method" (Printf.sprintf "unknown method %S" m)
let parse_error message = err "parse_error" message

let queue_full ~retry_after_ms =
  err ~retry_after_ms "queue_full"
    "request queue is full; retry after the indicated backoff"

let deadline_exceeded message = err "deadline_exceeded" message
let shutting_down () = err "shutting_down" "server is draining and accepts no new work"

let oversized_frame ~size ~max_frame =
  err "oversized_frame"
    (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" size max_frame)

let internal message = err "internal" message

type request = {
  id : string;
  method_ : string;
  timeout_ms : int option;
  params : Json.t;
}

let parse_request json =
  match json with
  | Json.Obj _ -> (
      let field name = Json.member name json in
      match field "id" with
      | Some (Json.String id) when id <> "" -> (
          match field "method" with
          | Some (Json.String method_) -> (
              let params = Option.value (field "params") ~default:Json.Null in
              match field "timeout_ms" with
              | None | Some Json.Null -> Ok { id; method_; timeout_ms = None; params }
              | Some v -> (
                  match Json.to_int v with
                  | Some ms when ms > 0 ->
                      Ok { id; method_; timeout_ms = Some ms; params }
                  | _ ->
                      Error (bad_request "timeout_ms must be a positive integer")))
          | _ -> Error (bad_request "request needs a string \"method\" field"))
      | _ -> Error (bad_request "request needs a non-empty string \"id\" field"))
  | _ -> Error (bad_request "request must be a JSON object")

let request_to_json { id; method_; timeout_ms; params } =
  Json.Obj
    (("id", Json.String id)
    :: ("method", Json.String method_)
    :: (match timeout_ms with
       | Some ms -> [ ("timeout_ms", Json.Number (float_of_int ms)) ]
       | None -> [])
    @ match params with Json.Null -> [] | p -> [ ("params", p) ])

let ok_response ~id ?cache result =
  Json.Obj
    (("id", Json.String id)
    :: ("ok", Json.Bool true)
    :: (match cache with Some c -> [ ("cache", Json.String c) ] | None -> [])
    @ [ ("result", result) ])

let error_response ~id { code; message; retry_after_ms } =
  let error_obj =
    Json.Obj
      (("code", Json.String code)
      :: ("message", Json.String message)
      ::
      (match retry_after_ms with
      | Some ms -> [ ("retry_after_ms", Json.Number (float_of_int ms)) ]
      | None -> []))
  in
  Json.Obj
    [
      ("id", match id with Some id -> Json.String id | None -> Json.Null);
      ("ok", Json.Bool false);
      ("error", error_obj);
    ]

module Framing = struct
  let default_max_frame = 1 lsl 20

  let encode payload =
    let n = String.length payload in
    if n > 0x7fffffff then invalid_arg "Framing.encode: payload too large";
    let header = Bytes.create 4 in
    Bytes.set_uint8 header 0 ((n lsr 24) land 0xff);
    Bytes.set_uint8 header 1 ((n lsr 16) land 0xff);
    Bytes.set_uint8 header 2 ((n lsr 8) land 0xff);
    Bytes.set_uint8 header 3 (n land 0xff);
    Bytes.unsafe_to_string header ^ payload

  type decoder = {
    max_frame : int;
    mutable buf : bytes;
    mutable len : int;  (* valid bytes in [buf.[0 .. len-1]] *)
    mutable off : int;  (* consumed prefix of the valid bytes *)
    mutable dead : int option;  (* announced length that killed the stream *)
  }

  type event = Frame of string | Oversized of int

  let decoder ?(max_frame = default_max_frame) () =
    { max_frame; buf = Bytes.create 4096; len = 0; off = 0; dead = None }

  let compact d =
    if d.off > 0 then begin
      let remaining = d.len - d.off in
      Bytes.blit d.buf d.off d.buf 0 remaining;
      d.len <- remaining;
      d.off <- 0
    end

  let feed d chunk =
    let n = String.length chunk in
    if n > 0 && d.dead = None then begin
      if d.len + n > Bytes.length d.buf then begin
        compact d;
        if d.len + n > Bytes.length d.buf then begin
          let cap = Stdlib.max (d.len + n) (2 * Bytes.length d.buf) in
          let grown = Bytes.create cap in
          Bytes.blit d.buf 0 grown 0 d.len;
          d.buf <- grown
        end
      end;
      Bytes.blit_string chunk 0 d.buf d.len n;
      d.len <- d.len + n
    end

  let buffered d = d.len - d.off

  let next d =
    match d.dead with
    | Some n -> Some (Oversized n)
    | None ->
        if buffered d < 4 then None
        else begin
          let b i = Bytes.get_uint8 d.buf (d.off + i) in
          let frame_len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
          if frame_len > d.max_frame then begin
            d.dead <- Some frame_len;
            Some (Oversized frame_len)
          end
          else if buffered d < 4 + frame_len then None
          else begin
            let payload = Bytes.sub_string d.buf (d.off + 4) frame_len in
            d.off <- d.off + 4 + frame_len;
            if d.off = d.len then begin
              d.off <- 0;
              d.len <- 0
            end;
            Some (Frame payload)
          end
        end
end

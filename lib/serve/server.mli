(** The ckpt-serve daemon: one event-loop domain doing non-blocking
    accept + frame reassembly, a {!Bounded_queue} with explicit
    backpressure, and a fixed pool of worker domains solving through
    {!Engine} (the {!Ckpt_sim.Parallel_exec} discipline: domains live
    for the server's lifetime, work arrives over a queue).

    Flow control and shutdown guarantees (tested in [test_serve]):
    - a request that does not fit in the queue is answered immediately
      with [queue_full] carrying [retry_after_ms] — never dropped
      silently, and the event loop never blocks on a full queue;
    - a request popped after its [timeout_ms] deadline is answered with
      [deadline_exceeded] without solving;
    - {!stop} closes the listener, stops reading, closes the queue and
      joins the workers — every request accepted before the stop is
      still answered (drain), then the connections are closed. *)

type config = {
  host : string;  (** Default ["127.0.0.1"]. *)
  port : int;  (** [0] picks a free port (see {!port}). *)
  workers : int;  (** Worker-domain count, >= 1. *)
  queue_capacity : int;  (** Bound on queued (not in-flight) requests. *)
  cache_capacity : int;  (** {!Plan_cache} entries. *)
  max_frame : int;  (** Per-frame payload bound, bytes. *)
  retry_after_ms : int;  (** Backoff hint carried by [queue_full]. *)
  worker_hook : (unit -> unit) option;
      (** Test gate run by a worker before each solve; [None] in
          production. Lets tests hold workers to fill the queue
          deterministically. *)
}

val default_config : config
(** localhost, ephemeral port, 2 workers, queue 64, cache 1024,
    1 MiB frames, retry-after 25 ms, no hook. *)

type t

val start : config -> t
(** Binds, spawns the event loop and the workers, returns immediately.
    Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val engine : t -> Engine.t

val pending : t -> int
(** Requests accepted but not yet answered (queued + in-flight). *)

val stop : t -> unit
(** Graceful drain as described above; blocks until all domains have
    joined and every socket is closed. Idempotent. *)

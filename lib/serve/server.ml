module Json = Ckpt_json.Json
module Metrics = Ckpt_obs.Metrics
module Clock = Ckpt_obs.Clock

(* Wall-clock-dependent by nature (load, scheduling), so Timing kind:
   the engine-metric drift gate must not see them. *)
let connections_total = Metrics.counter ~kind:Metrics.Timing "serve.connections"
let rejects_total = Metrics.counter ~kind:Metrics.Timing "serve.rejects"
let timeouts_total = Metrics.counter ~kind:Metrics.Timing "serve.timeouts"

let write_failures_total =
  Metrics.counter ~kind:Metrics.Timing "serve.write_failures"

let queue_depth = Metrics.gauge ~kind:Metrics.Timing "serve.queue_depth"

let latency_ms =
  Metrics.histogram ~kind:Metrics.Timing "serve.latency_ms"
    ~buckets:[| 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0 |]

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  max_frame : int;
  retry_after_ms : int;
  worker_hook : (unit -> unit) option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 2;
    queue_capacity = 64;
    cache_capacity = 1024;
    max_frame = Protocol.Framing.default_max_frame;
    retry_after_ms = 25;
    worker_hook = None;
  }

type conn = {
  fd : Net.fd;
  decoder : Protocol.Framing.decoder;
  write_lock : Mutex.t;
      (* Workers finish out of order; frames must not interleave. *)
  mutable alive : bool;
}

type item = { conn : conn; request : Protocol.request; accepted_ns : int64 }

type t = {
  config : config;
  engine : Engine.t;
  listener : Net.fd;
  actual_port : int;
  wake_r : Net.fd;
  wake_w : Net.fd;
  queue : item Bounded_queue.t;
  stop_flag : bool Atomic.t;
  pending_count : int Atomic.t;
  conns : (conn list ref[@lint.domain_safe "mutex-held: guarded by conns_lock"]);
  conns_lock : Mutex.t;
  mutable worker_domains : unit Domain.t list;
  mutable loop_domain : unit Domain.t option;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

let send conn payload =
  let framed = Protocol.Framing.encode payload in
  let ok =
    Mutex.protect conn.write_lock (fun () ->
        conn.alive && Net.write_all conn.fd framed)
  in
  if not ok then begin
    Metrics.incr write_failures_total;
    conn.alive <- false
  end

let send_json conn json = send conn (Json.to_string json)

(* --- worker domains --------------------------------------------------- *)

let answer t { conn; request; accepted_ns } =
  (match t.config.worker_hook with Some hook -> hook () | None -> ());
  let elapsed_ms = Clock.elapsed_s accepted_ns *. 1e3 in
  let response =
    match request.Protocol.timeout_ms with
    | Some budget when elapsed_ms > float_of_int budget ->
        Metrics.incr timeouts_total;
        Protocol.error_response ~id:(Some request.Protocol.id)
          (Protocol.deadline_exceeded
             (Printf.sprintf "deadline of %d ms passed before processing" budget))
    | _ -> Engine.handle t.engine request
  in
  send_json conn response;
  Metrics.observe latency_ms (Clock.elapsed_s accepted_ns *. 1e3)

let worker_loop t () =
  let rec go () =
    match Bounded_queue.pop t.queue with
    | None -> ()
    | Some item ->
        (try answer t item
         with _ ->
           (* answer never raises through Engine.handle; belt and braces
              so a worker domain cannot die and strand the queue. *)
           ());
        Atomic.decr t.pending_count;
        go ()
  in
  go ()

(* --- event loop ------------------------------------------------------- *)

let reject conn ~id error =
  Metrics.incr rejects_total;
  send_json conn (Protocol.error_response ~id error)

let handle_frame t conn payload =
  match Json.parse_result payload with
  | Error msg ->
      send_json conn
        (Protocol.error_response ~id:None (Protocol.parse_error msg))
  | Ok json -> (
      match Protocol.parse_request json with
      | Error error -> send_json conn (Protocol.error_response ~id:None error)
      | Ok request ->
          let id = Some request.Protocol.id in
          if Atomic.get t.stop_flag then
            reject conn ~id (Protocol.shutting_down ())
          else begin
            let item = { conn; request; accepted_ns = Clock.now_ns () } in
            Atomic.incr t.pending_count;
            match Bounded_queue.try_push t.queue item with
            | Bounded_queue.Pushed ->
                Metrics.set queue_depth (float_of_int (Bounded_queue.length t.queue))
            | Bounded_queue.Full ->
                Atomic.decr t.pending_count;
                reject conn ~id
                  (Protocol.queue_full ~retry_after_ms:t.config.retry_after_ms)
            | Bounded_queue.Closed ->
                Atomic.decr t.pending_count;
                reject conn ~id (Protocol.shutting_down ())
          end)

let handle_readable t conn =
  match Net.read_chunk conn.fd with
  | None -> conn.alive <- false
  | Some "" -> ()
  | Some chunk ->
      Protocol.Framing.feed conn.decoder chunk;
      let rec pump () =
        match Protocol.Framing.next conn.decoder with
        | None -> ()
        | Some (Protocol.Framing.Frame payload) ->
            handle_frame t conn payload;
            if conn.alive then pump ()
        | Some (Protocol.Framing.Oversized size) ->
            send_json conn
              (Protocol.error_response ~id:None
                 (Protocol.oversized_frame ~size ~max_frame:t.config.max_frame));
            (* The stream is desynchronized; nothing sane can follow. *)
            conn.alive <- false
      in
      pump ()

let event_loop t () =
  let rec go conns =
    if Atomic.get t.stop_flag then
      Mutex.protect t.conns_lock (fun () -> t.conns := conns)
    else begin
      let fds = t.wake_r :: t.listener :: List.map (fun c -> c.fd) conns in
      let readable = Net.select_read fds ~timeout_s:0.5 in
      let is_ready fd = List.exists (Net.equal fd) readable in
      if is_ready t.wake_r then Net.drain t.wake_r;
      let conns =
        if is_ready t.listener then begin
          let rec accept_all acc =
            match Net.accept t.listener with
            | None -> acc
            | Some fd ->
                Metrics.incr connections_total;
                let conn =
                  {
                    fd;
                    decoder =
                      Protocol.Framing.decoder ~max_frame:t.config.max_frame ();
                    write_lock = Mutex.create ();
                    alive = true;
                  }
                in
                accept_all (conn :: acc)
          in
          accept_all conns
        end
        else conns
      in
      List.iter (fun conn -> if is_ready conn.fd then handle_readable t conn) conns;
      let live, dead = List.partition (fun c -> c.alive) conns in
      List.iter
        (fun conn ->
          Mutex.protect conn.write_lock (fun () -> Net.close conn.fd))
        dead;
      go live
    end
  in
  go []

(* --- lifecycle -------------------------------------------------------- *)

let start config =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  Net.ignore_sigpipe ();
  let listener, actual_port = Net.listen ~host:config.host ~port:config.port in
  let wake_r, wake_w = Net.pipe () in
  let t =
    {
      config;
      engine = Engine.create ~cache_capacity:config.cache_capacity;
      listener;
      actual_port;
      wake_r;
      wake_w;
      queue = Bounded_queue.create ~capacity:config.queue_capacity;
      stop_flag = Atomic.make false;
      pending_count = Atomic.make 0;
      conns = ref [];
      conns_lock = Mutex.create ();
      worker_domains = [];
      loop_domain = None;
      stop_lock = Mutex.create ();
      stopped = false;
    }
  in
  t.worker_domains <-
    List.init config.workers (fun _ -> Domain.spawn (worker_loop t));
  t.loop_domain <- Some (Domain.spawn (event_loop t));
  t

let port t = t.actual_port
let engine t = t.engine

let pending t = Atomic.get t.pending_count

let stop t =
  let already = Mutex.protect t.stop_lock (fun () ->
      let was = t.stopped in
      t.stopped <- true;
      was)
  in
  if not already then begin
    (* 1. Stop the intake: flag + wake, event loop parks its conns. *)
    Atomic.set t.stop_flag true;
    Net.notify t.wake_w;
    (match t.loop_domain with Some d -> Domain.join d | None -> ());
    Net.close t.listener;
    (* 2. Drain: closing the queue lets workers finish every accepted
       item, then pop returns None and they exit. *)
    Bounded_queue.close t.queue;
    List.iter Domain.join t.worker_domains;
    (* 3. Only now tear the connections down — every response is out. *)
    Mutex.protect t.conns_lock (fun () ->
        List.iter (fun conn -> Net.close conn.fd) !(t.conns);
        t.conns := []);
    Net.close t.wake_r;
    Net.close t.wake_w
  end

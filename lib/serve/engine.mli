(** Request handling: parse method params, solve through the existing
    planners, build the response object. Pure with respect to I/O — the
    engine never touches a socket, which is what makes the protocol
    semantics unit-testable without a server.

    Methods (grammar in docs/SERVING.md):
    - [ping] — liveness probe, returns ["pong"].
    - [plan_chain] — Algorithm 1 on a linear chain via
      {!Ckpt_core.Chain_dp.solve} behind the canonicalizing
      {!Plan_cache}; responses carry a ["cache"] field ([hit]/[miss]).
    - [plan_independent] — the order-then-place heuristic family of
      Proposition 2 ({!Ckpt_core.Independent.best_ordered} over
      as-given / shortest-first / longest-first).
    - [plan_moldable] — the moldable-chain DP
      ({!Ckpt_core.Moldable_chain.solve}). *)

type t

val create : cache_capacity:int -> t
val cache : t -> Plan_cache.t

val handle : t -> Protocol.request -> Ckpt_json.Json.t
(** The complete response object for one request. Never raises:
    validation failures become [bad_request], unknown methods
    [unknown_method], unexpected exceptions [internal]. Counts
    [serve.requests] / [serve.errors] and wraps the work in a
    [serve.<method>] span. *)

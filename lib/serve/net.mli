(** The only module in [lib/] allowed to touch [Unix] sockets (enforced
    by the [banned-in-lib] lint rule, which allowlists exactly this
    file). Everything here is a thin, exception-to-value wrapper so the
    server and client logic stay testable and lint-clean.

    Errors are deliberately coarse: a connection that resets mid-read
    looks like EOF, a connection that resets mid-write looks like a
    failed write. The server treats both as "peer gone". *)

type fd

val ignore_sigpipe : unit -> unit
(** Writes to a closed peer must surface as [EPIPE] (a failed
    {!write_all}), not kill the process. No-op where unsupported. *)

val listen : host:string -> port:int -> fd * int
(** Bind + listen on [host:port] ([port = 0] picks a free port) with
    [SO_REUSEADDR]; returns the listener and the actual port. *)

val accept : fd -> fd option
(** Non-blocking accept; [None] when no connection is pending. *)

val connect : host:string -> port:int -> fd

val read_chunk : fd -> string option
(** Up to 64 KiB; [None] means EOF or connection reset, [Some ""] that
    nothing was available (spurious wakeup on a non-blocking fd). *)

val write_all : fd -> string -> bool
(** Write the whole string; [false] on any error (peer gone). *)

val select_read : fd list -> timeout_s:float -> fd list
(** Readable subset, or [[]] on timeout. [EINTR]-safe. *)

val pipe : unit -> fd * fd
(** Self-pipe for waking a {!select_read} from another domain:
    (read end, write end). *)

val notify : fd -> unit
(** Write one byte to the pipe's write end (best-effort). *)

val drain : fd -> unit
(** Discard pending bytes on the pipe's read end. *)

val close : fd -> unit
(** Idempotent-ish: [EBADF] on double close is swallowed. *)

val equal : fd -> fd -> bool

(** Bounded plan cache keyed by a canonicalized chain-problem hash.

    Optimal checkpoint placements are scale-invariant: rescaling every
    time quantity of a chain (weights, checkpoint/recovery costs,
    downtime, initial recovery) by s while dividing λ by s leaves the
    optimal placement unchanged and multiplies the optimal expectation
    by s — the products λ·(segment work + cost) that drive Proposition 1
    are untouched. The cache therefore keys on the problem normalized to
    total work 1 (equivalently, on λ·W and the work-relative shape), so
    one stored plan answers every rescaling of the same workload.

    Exactness: entries remember the total work and expectation they were
    stored at. A hit at the {e same} total work returns the stored
    expectation bit-for-bit (the repeated-request fast path the CI smoke
    asserts against the offline solver); a hit at a different scale
    returns the rescaled expectation, exact for power-of-two factors and
    within float rounding otherwise. Keys are formatted at [%.17g], so
    binary-exponent rescalings — which float arithmetic maps to
    identical canonical values — hash identically by construction.

    Eviction is least-recently-used at a fixed capacity. All operations
    are mutex-guarded; hits/misses/evictions land on the
    [serve.cache_hits] / [serve.cache_misses] / [serve.cache_evictions]
    counters ([serve.cache_hit_rate] is derived at snapshot time). *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val canonical_key : Ckpt_core.Chain_problem.t -> string
(** Hex digest of the canonical form — exposed for the rescaling
    property tests. *)

type hit = {
  checkpoints_after : int list;  (** 0-based optimal placement. *)
  expected_makespan : float;
  exact : bool;  (** Same total work as the stored entry (bit-for-bit). *)
}

val find : t -> Ckpt_core.Chain_problem.t -> hit option
(** Counts a cache hit or miss. *)

val store : t -> Ckpt_core.Chain_problem.t -> Ckpt_core.Chain_dp.solution -> unit
(** Insert (or refresh) the solved plan, evicting the least recently
    used entry at capacity. *)

val length : t -> int
val capacity : t -> int

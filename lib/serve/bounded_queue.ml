type 'a t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

type push_result = Pushed | Full | Closed

let try_push t item =
  Mutex.protect t.lock (fun () ->
      if t.closed then Closed
      else if Queue.length t.items >= t.capacity then Full
      else begin
        Queue.push item t.items;
        Condition.signal t.not_empty;
        Pushed
      end)

let pop t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        match Queue.take_opt t.items with
        | Some item -> Some item
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.not_empty t.lock;
              wait ()
            end
      in
      wait ())

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty)

let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)

type fd = Unix.file_descr

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | (_ : Sys.signal_behavior) -> ()
  | exception Invalid_argument _ -> ()
  | exception Sys_error _ -> ()

let resolve host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  Unix.ADDR_INET (addr, port)

let listen ~host ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (resolve host port);
     Unix.listen sock 64;
     Unix.set_nonblock sock
   with exn ->
     Unix.close sock;
     raise exn);
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (sock, actual_port)

let accept listener =
  match Unix.accept ~cloexec:true listener with
  | sock, _addr ->
      Unix.set_nonblock sock;
      Some sock
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      None
  | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EPERM), _, _) -> None

let connect ~host ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (resolve host port)
   with exn ->
     Unix.close sock;
     raise exn);
  sock

let chunk_size = 65536

let read_chunk fd =
  let buf = Bytes.create chunk_size in
  let rec go () =
    match Unix.read fd buf 0 chunk_size with
    | 0 -> None
    | n -> Some (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Some ""
    | exception Unix.Unix_error (_, _, _) -> None
  in
  go ()

let write_all fd s =
  let bytes = Bytes.unsafe_of_string s in
  let total = Bytes.length bytes in
  let rec go off =
    if off >= total then true
    else
      match Unix.write fd bytes off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          (* Connection sockets are non-blocking (the reader side needs
             that); block here until writable rather than spin. *)
          match Unix.select [] [ fd ] [] 5.0 with
          | _, [ _ ], _ -> go off
          | _ -> false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off)
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let select_read fds ~timeout_s =
  match Unix.select fds [] [] timeout_s with
  | readable, _, _ -> readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let pipe () =
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock r;
  (r, w)

let notify fd =
  match Unix.write_substring fd "x" 0 1 with
  | (_ : int) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()

let drain fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let close fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
let equal (a : fd) b = a = b

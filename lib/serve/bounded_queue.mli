(** Mutex/condvar bounded FIFO between the server's accept loop and its
    worker pool.

    Pushes never block: the accept loop must answer with explicit
    backpressure instead of stalling the event loop, so an over-capacity
    push returns {!Full} and the caller emits the [queue_full] error
    payload. Pops block until an item or until the queue is closed
    {e and} drained — closing is how graceful shutdown guarantees every
    accepted item is still handed to a worker. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

type push_result = Pushed | Full | Closed

val try_push : 'a t -> 'a -> push_result
(** Non-blocking; [Full] beyond capacity, [Closed] after {!close}. *)

val pop : 'a t -> 'a option
(** Blocks. [None] only when the queue is closed and empty; items
    pushed before {!close} are always delivered (drain semantics). *)

val close : 'a t -> unit
(** Reject further pushes and wake blocked poppers; idempotent. *)

val length : 'a t -> int

module Json = Ckpt_json.Json

type t = { fd : Net.fd; decoder : Protocol.Framing.decoder }

exception Transport of string

let connect ?(host = "127.0.0.1") ~port () =
  { fd = Net.connect ~host ~port; decoder = Protocol.Framing.decoder () }

let rpc t request =
  let payload = Json.to_string (Protocol.request_to_json request) in
  if not (Net.write_all t.fd (Protocol.Framing.encode payload)) then
    raise (Transport "write failed (server gone?)");
  let rec await () =
    match Protocol.Framing.next t.decoder with
    | Some (Protocol.Framing.Frame frame) -> (
        match Json.parse_result frame with
        | Ok json -> json
        | Error msg -> raise (Transport ("unparsable response: " ^ msg)))
    | Some (Protocol.Framing.Oversized n) ->
        raise (Transport (Printf.sprintf "oversized response frame (%d bytes)" n))
    | None -> (
        match Net.read_chunk t.fd with
        | None -> raise (Transport "connection closed by server")
        | Some chunk ->
            Protocol.Framing.feed t.decoder chunk;
            await ())
  in
  await ()

let call t ?timeout_ms ?(params = Json.Null) ~id method_ =
  rpc t { Protocol.id; method_; timeout_ms; params }

let close t = Net.close t.fd

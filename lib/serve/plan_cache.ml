module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Metrics = Ckpt_obs.Metrics

let cache_hits = Metrics.counter "serve.cache_hits"
let cache_misses = Metrics.counter "serve.cache_misses"
let cache_evictions = Metrics.counter "serve.cache_evictions"

(* Canonical form: every time quantity divided by the total work W (and
   λ multiplied by it). Power-of-two rescalings of a problem produce
   bit-identical canonical floats — x·2^k / (W·2^k) rounds exactly like
   x/W — so %.17g (exact round-trip) keys them identically without any
   tolerance machinery. *)
let canonical_key problem =
  let w_total = Chain_problem.total_work problem in
  let buf = Buffer.create 256 in
  let add x = Buffer.add_string buf (Printf.sprintf "%.17g;" x) in
  Buffer.add_string buf (string_of_int (Chain_problem.size problem));
  Buffer.add_char buf ';';
  add (problem.Chain_problem.lambda *. w_total);
  add (problem.Chain_problem.downtime /. w_total);
  add (problem.Chain_problem.initial_recovery /. w_total);
  Array.iter
    (fun (task : Ckpt_dag.Task.t) ->
      add (task.Ckpt_dag.Task.work /. w_total);
      add (task.Ckpt_dag.Task.checkpoint_cost /. w_total);
      add (task.Ckpt_dag.Task.recovery_cost /. w_total))
    problem.Chain_problem.tasks;
  Digest.to_hex (Digest.string (Buffer.contents buf))

type entry = {
  checkpoints_after : int list;
  canonical_makespan : float;  (* expectation of the W = 1 rescaling *)
  stored_total_work : float;
  stored_makespan : float;
  mutable last_used : int;
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  let table =
    (Hashtbl.create capacity
      [@lint.domain_safe "mutex-held: every access is under t.lock"])
  in
  { lock = Mutex.create (); table; cap = capacity; tick = 0 }

type hit = { checkpoints_after : int list; expected_makespan : float; exact : bool }

let find t problem =
  let key = canonical_key problem in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
          Metrics.incr cache_misses;
          None
      | Some entry ->
          Metrics.incr cache_hits;
          t.tick <- t.tick + 1;
          entry.last_used <- t.tick;
          let w_total = Chain_problem.total_work problem in
          let exact = Float.equal w_total entry.stored_total_work in
          let expected_makespan =
            if exact then entry.stored_makespan
            else entry.canonical_makespan *. w_total
          in
          Some { checkpoints_after = entry.checkpoints_after; expected_makespan; exact })

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best <= entry.last_used -> acc
        | _ -> Some (key, entry.last_used))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      Metrics.incr cache_evictions
  | None -> ()

let store t problem (solution : Chain_dp.solution) =
  let key = canonical_key problem in
  let w_total = Chain_problem.total_work problem in
  Mutex.protect t.lock (fun () ->
      t.tick <- t.tick + 1;
      if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.cap then
        evict_lru t;
      Hashtbl.replace t.table key
        {
          checkpoints_after = Schedule.checkpoint_indices solution.Chain_dp.schedule;
          canonical_makespan = solution.Chain_dp.expected_makespan /. w_total;
          stored_total_work = w_total;
          stored_makespan = solution.Chain_dp.expected_makespan;
          last_used = t.tick;
        })

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

(* A lint rule: a name, a default severity, and a check that walks one
   parsed compilation unit and reports violations through the context.
   Rules see lint-root-relative paths so layout-based scoping (lib-only
   rules, per-module exemptions) lives next to the rule logic. *)

type ctx = {
  path : string;  (* normalized, relative to the lint root *)
  emit : loc:Ppxlib.Location.t -> string -> unit;
}

type t = {
  name : string;
  doc : string;  (* one-line catalog entry, surfaced by `ckpt-lint --rules` *)
  default_severity : Diagnostic.severity;
  check : ctx -> Ppxlib.Parsetree.structure -> unit;
}

let lident_name lid = String.concat "." (Ppxlib.Longident.flatten_exn lid)

let lident_head lid =
  match Ppxlib.Longident.flatten_exn lid with [] -> "" | h :: _ -> h

let in_dir dir path =
  path = dir || String.starts_with ~prefix:(dir ^ "/") path

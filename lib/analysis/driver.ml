(* File discovery, parsing and rule dispatch. The driver never prints
   and never exits: it returns diagnostics for the CLI (or the tests)
   to render — stdout and exit codes belong to bin/ckpt_lint.ml. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let full_path ~root path = if root = "." then path else Filename.concat root path

(* All .ml files under [paths] (lint-root-relative files or
   directories), minus the config's excluded subtrees, sorted and
   deduplicated. Hidden entries and _build are skipped. *)
let list_files ~config ~root paths =
  let skip name =
    name = "" || name.[0] = '.' || name.[0] = '_' || name = "node_modules"
  in
  let rec walk acc rel =
    let full = full_path ~root rel in
    if Config.excluded config rel then acc
    else if Sys.is_directory full then
      Array.to_list (Sys.readdir full)
      |> List.filter (fun name -> not (skip name))
      |> List.fold_left (fun acc name -> walk acc (rel ^ "/" ^ name)) acc
    else if Filename.check_suffix rel ".ml" then rel :: acc
    else acc
  in
  List.fold_left
    (fun acc p -> walk acc (Config.normalize_path p))
    [] paths
  |> List.sort_uniq String.compare

let parse_structure ~root path =
  let contents = read_file (full_path ~root path) in
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf path;
  Ppxlib.Parse.implementation lexbuf

let lint_file ~config ~rules ~root path =
  let path = Config.normalize_path path in
  match parse_structure ~root path with
  | exception e ->
      [
        {
          Diagnostic.rule = "parse-error";
          severity = Diagnostic.Error;
          file = path;
          line = 1;
          col = 0;
          message = Printexc.to_string e;
        };
      ]
  | str ->
      let diags = ref [] in
      List.iter
        (fun (r : Rule.t) ->
          match Config.severity config ~rule:r.Rule.name ~default:r.Rule.default_severity with
          | None -> () (* switched off *)
          | Some severity ->
              if not (Config.allowed config ~rule:r.Rule.name path) then begin
                let emit ~loc msg =
                  let start = loc.Ppxlib.Location.loc_start in
                  diags :=
                    {
                      Diagnostic.rule = r.Rule.name;
                      severity;
                      file = path;
                      line = start.Lexing.pos_lnum;
                      col = start.Lexing.pos_cnum - start.Lexing.pos_bol;
                      message = msg;
                    }
                    :: !diags
                in
                r.Rule.check { Rule.path; emit } str
              end)
        rules;
      List.sort Diagnostic.compare !diags

let run ~config ~rules ~root paths =
  list_files ~config ~root paths
  |> List.concat_map (fun path -> lint_file ~config ~rules ~root path)
  |> List.sort Diagnostic.compare

let has_errors diags =
  List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Error) diags

(* Rendering for the CLI: plain text (one diagnostic per line plus a
   summary) or a single JSON document. *)

type format = Text | Json

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | _ -> None

let summary diags =
  let errors, warnings = Diagnostic.count diags in
  if errors = 0 && warnings = 0 then "ckpt-lint: no violations"
  else Printf.sprintf "ckpt-lint: %d error(s), %d warning(s)" errors warnings

let render ~format diags =
  match format with
  | Json -> Diagnostic.list_to_json diags
  | Text ->
      let lines = List.map Diagnostic.to_text diags in
      String.concat "\n" (lines @ [ summary diags ])

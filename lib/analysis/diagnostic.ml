(* A diagnostic is one rule violation pinned to a source location, plus
   the text and JSON renderings shared by the CLI and the test suite.
   This module must stay dependency-free (the linter lints the libraries
   it would otherwise depend on). *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;  (* normalized, relative to the lint root *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, compiler convention *)
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_text d =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" d.file d.line d.col
    (severity_to_string d.severity)
    d.rule d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"severity\":\"%s\",\"rule\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.file) d.line d.col
    (severity_to_string d.severity)
    (json_escape d.rule) (json_escape d.message)

let count ds =
  List.fold_left
    (fun (e, w) d ->
      match d.severity with Error -> (e + 1, w) | Warning -> (e, w + 1))
    (0, 0) ds

let list_to_json ds =
  let errors, warnings = count ds in
  let body = String.concat ",\n" (List.map to_json ds) in
  Printf.sprintf "{\"errors\":%d,\"warnings\":%d,\"diagnostics\":[%s%s]}" errors
    warnings
    (if ds = [] then "" else "\n")
    body

(* The built-in rule registry. Every rule here is grounded in a bug
   class this repo has already hit and fixed by hand at least once (see
   docs/LINT.md for the catalog and the history). To add a rule: write
   a [Rule.t] in this file and cons it onto [all]. *)

open Ppxlib

let name_of = Rule.lident_name

(* ------------------------------------------------------------------ *)
(* 1. float-polymorphic-compare                                        *)
(* ------------------------------------------------------------------ *)

(* Syntactic float-ness: we have no typer, so an expression counts as a
   float when its head is a float literal, a `: float` annotation, a
   well-known float constant, or an application of an operator/function
   that returns float. One floaty operand is enough to flag the
   comparison. *)

let float_idents =
  [
    "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float";
    "Float.pi"; "Float.nan"; "Float.infinity"; "Float.neg_infinity";
    "Float.max_float"; "Float.min_float"; "Float.epsilon"; "Float.zero";
    "Float.one"; "Float.minus_one";
  ]

let float_fns =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "~+.";
    "sqrt"; "exp"; "expm1"; "log"; "log10"; "log1p"; "log2";
    "sin"; "cos"; "tan"; "asin"; "acos"; "atan"; "atan2";
    "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float"; "mod_float";
    "float_of_int"; "float"; "float_of_string"; "ldexp"; "copysign";
  ]

(* Functions under Float. (or Stdlib.Float.) that return float. *)
let float_module_fns =
  [
    "of_int"; "of_string"; "abs"; "neg"; "add"; "sub"; "mul"; "div"; "fma";
    "rem"; "succ"; "pred"; "sqrt"; "cbrt"; "exp"; "exp2"; "log"; "log10";
    "log2"; "expm1"; "log1p"; "pow"; "max"; "min"; "max_num"; "min_num";
    "round"; "trunc"; "ceil"; "floor"; "copy_sign"; "ldexp"; "nextafter";
  ]

let returns_float fn =
  List.mem fn float_fns
  || List.mem fn (List.map (fun f -> "Stdlib." ^ f) float_fns)
  ||
  match String.rindex_opt fn '.' with
  | None -> false
  | Some i ->
      let m = String.sub fn 0 i in
      let f = String.sub fn (i + 1) (String.length fn - i - 1) in
      (m = "Float" || m = "Stdlib.Float") && List.mem f float_module_fns

let rec is_float_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) -> (
      match name_of txt with
      | "float" | "Float.t" | "Stdlib.Float.t" -> true
      | _ -> false)
  | Ptyp_alias (t, _) -> is_float_type t
  | _ -> false

let rec floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, t) -> is_float_type t
  | Pexp_ident { txt; _ } -> List.mem (name_of txt) float_idents
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      returns_float (name_of txt)
  | Pexp_open (_, e) -> floatish e
  | _ -> false

let poly_compare_fns =
  [ "="; "<>"; "compare"; "min"; "max" ]
  |> List.concat_map (fun f -> [ f; "Stdlib." ^ f ])

let display_fn fn =
  match fn.[0] with 'a' .. 'z' | 'A' .. 'Z' -> fn | _ -> "( " ^ fn ^ " )"

let float_polymorphic_compare : Rule.t =
  {
    name = "float-polymorphic-compare";
    doc =
      "=, <>, compare, min, max on float operands: NaN-unsound; use \
       Float.compare/Float.equal/Float.min/Float.max or an explicit epsilon";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        let visit =
          object
            inherit Ast_traverse.iter as super

            method! expression e =
              (match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
                  let fn = name_of txt in
                  if
                    List.mem fn poly_compare_fns
                    && List.exists (fun (_, a) -> floatish a) args
                  then
                    ctx.Rule.emit ~loc:e.pexp_loc
                      (Printf.sprintf
                         "polymorphic %s on a float operand is NaN-unsound; use \
                          Float.compare/Float.equal (or an explicit epsilon) per \
                          the NaN-reject policy"
                         (display_fn fn))
              | _ -> ());
              super#expression e
          end
        in
        visit#structure str);
  }

(* ------------------------------------------------------------------ *)
(* 2. no-wall-clock                                                    *)
(* ------------------------------------------------------------------ *)

let wall_clock_fns =
  [ "Unix.gettimeofday"; "Sys.time"; "Stdlib.Sys.time" ]

let no_wall_clock : Rule.t =
  {
    name = "no-wall-clock";
    doc =
      "Unix.gettimeofday/Sys.time outside lib/obs/clock.ml: timings must use \
       the monotonic Ckpt_obs.Clock";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        if ctx.Rule.path = "lib/obs/clock.ml" then ()
        else
          let visit =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_ident { txt; _ } when List.mem (name_of txt) wall_clock_fns ->
                    ctx.Rule.emit ~loc:e.pexp_loc
                      (Printf.sprintf
                         "%s reads the wall clock; use the monotonic \
                          Ckpt_obs.Clock (now_ns/elapsed_s/time) instead"
                         (name_of txt))
                | _ -> ());
                super#expression e
            end
          in
          visit#structure str);
  }

(* ------------------------------------------------------------------ *)
(* 3. no-global-random                                                 *)
(* ------------------------------------------------------------------ *)

let no_global_random : Rule.t =
  {
    name = "no-global-random";
    doc =
      "stdlib Random outside lib/prng: breaks the deterministic seeded-stream \
       guarantee of the parallel pool; use Ckpt_prng.Rng";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        if Rule.in_dir "lib/prng" ctx.Rule.path then ()
        else
          let message what =
            Printf.sprintf
              "%s uses the global stdlib Random; draw from a seeded Ckpt_prng.Rng \
               stream instead (determinism guarantee)"
              what
          in
          let visit =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_ident { txt; _ } when Rule.lident_head txt = "Random" ->
                    ctx.Rule.emit ~loc:e.pexp_loc (message (name_of txt))
                | _ -> ());
                super#expression e

              method! module_expr me =
                (match me.pmod_desc with
                | Pmod_ident { txt; _ } when Rule.lident_head txt = "Random" ->
                    ctx.Rule.emit ~loc:me.pmod_loc (message (name_of txt))
                | _ -> ());
                super#module_expr me
            end
          in
          visit#structure str);
  }

(* ------------------------------------------------------------------ *)
(* 4. unguarded-global-mutable                                         *)
(* ------------------------------------------------------------------ *)

let domain_safe_attr = "lint.domain_safe"

type annotation = Absent | Missing_reason | Annotated

let domain_safe_status attrs =
  List.fold_left
    (fun acc (a : attribute) ->
      if a.attr_name.txt <> domain_safe_attr then acc
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ]
          when String.trim s <> "" ->
            Annotated
        | _ -> ( match acc with Annotated -> acc | _ -> Missing_reason))
    Absent attrs

let rec strip_constraint (e : expression) =
  match e.pexp_desc with Pexp_constraint (e, _) -> strip_constraint e | _ -> e

(* Synchronization primitives are themselves mutable but exist to guard
   the rest; creating one at top level is the fix, not the bug. *)
let sync_primitives =
  [
    "Mutex.create"; "Atomic.make"; "Condition.create"; "Semaphore.Counting.make";
    "Semaphore.Binary.make"; "Domain.DLS.new_key"; "Lazy.from_fun";
  ]

let hashtbl_creators = [ "Hashtbl.create"; "Hashtbl.of_seq"; "Hashtbl.copy" ]

(* Off-heap DP scratch (Dp_tables wraps Bigarray): mutable and shared
   like any other table, but invisible to the GC and easy to mistake
   for "just numbers". A top-level one is cross-domain shared state. *)
let bigarray_creators =
  [
    "Bigarray.Array1.create"; "Bigarray.Array2.create"; "Bigarray.Array3.create";
    "Bigarray.Genarray.create"; "Bigarray.Array1.init"; "Bigarray.Array2.init";
    "Bigarray.Array3.init"; "Bigarray.Genarray.init"; "Dp_tables.floats";
    "Dp_tables.ints";
  ]

let record_mutable_field ~mutable_fields (fields : (Longident.t loc * expression) list) =
  List.find_map
    (fun (({ txt; _ } : Longident.t loc), _) ->
      let fname =
        match List.rev (Longident.flatten_exn txt) with [] -> "" | f :: _ -> f
      in
      if List.mem fname mutable_fields then Some fname else None)
    fields

let mutable_kind ~mutable_fields (e : expression) =
  match (strip_constraint e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match name_of txt with
      | "ref" | "Stdlib.ref" -> Some "ref cell"
      | n when List.mem n sync_primitives -> None
      | n when List.mem n hashtbl_creators -> Some "hash table"
      | n when List.mem n bigarray_creators -> Some "bigarray scratch buffer"
      | _ -> None)
  | Pexp_record (fields, _) -> (
      match record_mutable_field ~mutable_fields fields with
      | Some f -> Some (Printf.sprintf "record with mutable field '%s'" f)
      | None -> None)
  | _ -> None

let is_local_hashtbl (e : expression) =
  match (strip_constraint e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      List.mem (name_of txt) hashtbl_creators
  | _ -> false

let unguarded_global_mutable : Rule.t =
  {
    name = "unguarded-global-mutable";
    doc =
      "top-level refs/hash tables/mutable records/bigarray scratch buffers (and \
       closure-captured hash tables) in lib/ without a [@@lint.domain_safe \
       \"reason\"] annotation: cross-domain races waiting to happen";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        if not (Rule.in_dir "lib" ctx.Rule.path) then ()
        else begin
          (* Names of mutable record fields declared anywhere in this
             file: a top-level literal mentioning one is shared mutable
             state even without `ref`. *)
          let mutable_fields = ref [] in
          let collect =
            object
              inherit Ast_traverse.iter as super

              method! type_declaration td =
                (match td.ptype_kind with
                | Ptype_record labels ->
                    List.iter
                      (fun (l : label_declaration) ->
                        if l.pld_mutable = Mutable then
                          mutable_fields := l.pld_name.txt :: !mutable_fields)
                      labels
                | _ -> ());
                super#type_declaration td
            end
          in
          collect#structure str;
          let mutable_fields = !mutable_fields in
          let binding_annotation (vb : value_binding) =
            match domain_safe_status vb.pvb_attributes with
            | Absent -> domain_safe_status (strip_constraint vb.pvb_expr).pexp_attributes
            | s -> s
          in
          let report (vb : value_binding) what =
            match binding_annotation vb with
            | Annotated -> ()
            | Missing_reason ->
                ctx.Rule.emit ~loc:vb.pvb_loc
                  (Printf.sprintf
                     "[@%s] on this %s needs a non-empty reason string" domain_safe_attr
                     what)
            | Absent ->
                ctx.Rule.emit ~loc:vb.pvb_loc
                  (Printf.sprintf
                     "%s in library code is shared mutable state; guard it and \
                      annotate [@@%s \"reason\"] (mutex-held / DLS-sharded / \
                      init-before-spawn), or allowlist the module in lint.toml"
                     what domain_safe_attr)
          in
          (* Top-level (module-structure-level) bindings, including
             nested modules: any ref / hash table / mutable record. *)
          let rec check_items items =
            List.iter
              (fun (si : structure_item) ->
                match si.pstr_desc with
                | Pstr_value (_, vbs) ->
                    List.iter
                      (fun vb ->
                        match mutable_kind ~mutable_fields vb.pvb_expr with
                        | Some kind -> report vb ("top-level " ^ kind)
                        | None -> ())
                      vbs
                | Pstr_module mb -> check_module_expr mb.pmb_expr
                | Pstr_recmodule mbs ->
                    List.iter (fun mb -> check_module_expr mb.pmb_expr) mbs
                | Pstr_include { pincl_mod; _ } -> check_module_expr pincl_mod
                | _ -> ())
              items
          and check_module_expr me =
            match me.pmod_desc with
            | Pmod_structure s -> check_items s
            | Pmod_constraint (me, _) -> check_module_expr me
            | _ -> ()
          in
          check_items str;
          (* Function-local hash tables: cheap to capture in a closure
             that later runs on several domains (the Nonmemoryless
             policy caches did exactly that). Refs stay exempt here —
             local accumulators are idiomatic and overwhelmingly safe. *)
          let visit =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_let (_, vbs, _) ->
                    List.iter
                      (fun vb ->
                        if is_local_hashtbl vb.pvb_expr then
                          report vb "function-local hash table")
                      vbs
                | _ -> ());
                super#expression e
            end
          in
          visit#structure str
        end);
  }

(* ------------------------------------------------------------------ *)
(* 5. span-scope-safety                                                *)
(* ------------------------------------------------------------------ *)

let is_raw_span_call n =
  String.ends_with ~suffix:"Span.enter" n || String.ends_with ~suffix:"Span.exit" n

let span_scope_safety : Rule.t =
  {
    name = "span-scope-safety";
    doc =
      "raw Span.enter/Span.exit outside lib/obs/span.ml: an exception between \
       the pair corrupts the depth tracking; use the exception-safe Span.with_";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        if ctx.Rule.path = "lib/obs/span.ml" then ()
        else
          let visit =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_ident { txt; _ } when is_raw_span_call (name_of txt) ->
                    ctx.Rule.emit ~loc:e.pexp_loc
                      (Printf.sprintf
                         "%s is the raw span scope API; wrap the scope in \
                          Span.with_ ~name (exception-safe) instead"
                         (name_of txt))
                | _ -> ());
                super#expression e
            end
          in
          visit#structure str);
  }

(* ------------------------------------------------------------------ *)
(* 6. no-direct-gc-stat                                                *)
(* ------------------------------------------------------------------ *)

let gc_stat_fns =
  [ "Gc.stat"; "Gc.quick_stat"; "Stdlib.Gc.stat"; "Stdlib.Gc.quick_stat" ]

let no_direct_gc_stat : Rule.t =
  {
    name = "no-direct-gc-stat";
    doc =
      "Gc.stat/Gc.quick_stat in lib/ outside lib/obs/gc_telemetry.ml: GC \
       readings must flow through the delta-sampling Ckpt_obs.Gc_telemetry \
       so they land in the metrics registry (and Gc.stat forces a full \
       major heap walk)";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        if
          (not (Rule.in_dir "lib" ctx.Rule.path))
          || ctx.Rule.path = "lib/obs/gc_telemetry.ml"
        then ()
        else
          let visit =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_ident { txt; _ } when List.mem (name_of txt) gc_stat_fns ->
                    ctx.Rule.emit ~loc:e.pexp_loc
                      (Printf.sprintf
                         "%s reads GC counters directly; sample a \
                          Ckpt_obs.Gc_telemetry.probe instead so the deltas \
                          reach the gc.* metrics"
                         (name_of txt))
                | _ -> ());
                super#expression e
            end
          in
          visit#structure str);
  }

(* ------------------------------------------------------------------ *)
(* 7. banned-in-lib                                                    *)
(* ------------------------------------------------------------------ *)

let banned_in_lib_fns =
  let print_fns =
    [
      "print_string"; "print_endline"; "print_newline"; "print_char";
      "print_int"; "print_float"; "print_bytes";
    ]
  in
  [
    ("Obj.magic", "defeats the type system");
    ("exit", "libraries must not terminate the process; raise or return instead");
    ("Stdlib.exit", "libraries must not terminate the process; raise or return instead");
    ("Printf.printf", "stdout belongs to the CLI; emit through a sink or take a Format.formatter");
    ("Stdlib.Printf.printf", "stdout belongs to the CLI; emit through a sink or take a Format.formatter");
  ]
  @ List.concat_map
      (fun f ->
        let why = "stdout belongs to the CLI; emit through a sink or take a Format.formatter" in
        [ (f, why); ("Stdlib." ^ f, why) ])
      print_fns

(* Socket/process I/O: confined to the serve boundary module so the
   rest of lib/ stays deterministic and lint-checkable (the no-wall-clock
   rule already pins the clock part of Unix). *)
let unix_banned_message what =
  Printf.sprintf
    "%s is banned in lib/: Unix I/O is confined to the serve boundary \
     (lib/serve/net.ml); go through Ckpt_serve.Net, or allowlist the module \
     in lint.toml with a justification"
    what

let is_unix_lident txt =
  (Rule.lident_head txt = "Unix"
  || String.starts_with ~prefix:"Stdlib.Unix." (name_of txt))
  (* The clock reads have their own rule (no-wall-clock) with a more
     specific message; one finding per sin. *)
  && not (List.mem (name_of txt) wall_clock_fns)

let banned_in_lib : Rule.t =
  {
    name = "banned-in-lib";
    doc =
      "Obj.magic, exit, Printf.printf/print_* and Unix.* in lib/: library \
       code must not subvert types, kill the process, write to stdout \
       directly, or do socket/process I/O outside the lib/serve boundary";
    default_severity = Diagnostic.Error;
    check =
      (fun ctx str ->
        if not (Rule.in_dir "lib" ctx.Rule.path) then ()
        else
          let visit =
            object
              inherit Ast_traverse.iter as super

              method! expression e =
                (match e.pexp_desc with
                | Pexp_ident { txt; _ } -> (
                    match List.assoc_opt (name_of txt) banned_in_lib_fns with
                    | Some why ->
                        ctx.Rule.emit ~loc:e.pexp_loc
                          (Printf.sprintf "%s is banned in lib/: %s" (name_of txt) why)
                    | None ->
                        if is_unix_lident txt then
                          ctx.Rule.emit ~loc:e.pexp_loc
                            (unix_banned_message (name_of txt)))
                | _ -> ());
                super#expression e

              (* [module U = Unix] would launder every later [U.socket]
                 past the ident check above. *)
              method! module_expr me =
                (match me.pmod_desc with
                | Pmod_ident { txt; _ } when is_unix_lident txt ->
                    ctx.Rule.emit ~loc:me.pmod_loc
                      (unix_banned_message (name_of txt))
                | _ -> ());
                super#module_expr me
            end
          in
          visit#structure str);
  }

(* ------------------------------------------------------------------ *)

let all : Rule.t list =
  [
    float_polymorphic_compare;
    no_wall_clock;
    no_global_random;
    unguarded_global_mutable;
    span_scope_safety;
    no_direct_gc_stat;
    banned_in_lib;
  ]

let find name = List.find_opt (fun (r : Rule.t) -> r.Rule.name = name) all

(* Typed view of the checked-in `lint.toml`, parsed by the shared
   strict-TOML machinery in {!Ckpt_toml.Toml_lite} (the grammar is
   documented there; `bench.toml` uses the same parser). Supported
   shape:

     [lint]
     roots   = ["lib", "bin"]
     exclude = ["test/lint_fixtures"]

     [rule.float-polymorphic-compare]
     severity = "error"          # "error" | "warning" | "off"
     allow    = ["lib/obs/sink.ml", "lib/experiments"]

   Unknown sections or keys are hard errors so typos cannot silently
   disable a rule. Allow/exclude entries are path prefixes matched at
   '/' boundaries against lint-root-relative paths. *)

module Toml = Ckpt_toml.Toml_lite

type rule_config = { severity : string option; allow : string list }

type t = {
  roots : string list;
  exclude : string list;
  rules : (string * rule_config) list;
}

let default = { roots = [ "lib"; "bin"; "bench"; "test" ]; exclude = []; rules = [] }
let severities = [ "error"; "warning"; "off" ]

let parse_string ?(filename = "lint.toml") contents =
  let file = filename in
  let config = ref default in
  let rule_update name f =
    let current =
      match List.assoc_opt name !config.rules with
      | Some rc -> rc
      | None -> { severity = None; allow = [] }
    in
    config :=
      { !config with
        rules = (name, f current) :: List.remove_assoc name !config.rules }
  in
  let apply_lint (b : Toml.binding) =
    match b.key with
    | "roots" -> config := { !config with roots = Toml.as_array ~file b }
    | "exclude" -> config := { !config with exclude = Toml.as_array ~file b }
    | key ->
        Toml.fail ~file ~line:b.line (Printf.sprintf "unknown key %S in [lint]" key)
  in
  let apply_rule name (b : Toml.binding) =
    match b.key with
    | "severity" ->
        let s = Toml.as_string ~file b in
        if not (List.mem s severities) then
          Toml.fail ~file ~line:b.line
            (Printf.sprintf "severity must be one of error/warning/off, got %S" s);
        rule_update name (fun rc -> { rc with severity = Some s })
    | "allow" ->
        let paths = Toml.as_array ~file b in
        rule_update name (fun rc -> { rc with allow = rc.allow @ paths })
    | key ->
        Toml.fail ~file ~line:b.line
          (Printf.sprintf "unknown key %S in [rule.%s]" key name)
  in
  List.iter
    (fun (s : Toml.section) ->
      match s.name with
      | "lint" -> List.iter apply_lint s.bindings
      | name when String.length name > 5 && String.sub name 0 5 = "rule." ->
          let rule = String.sub name 5 (String.length name - 5) in
          List.iter (apply_rule rule) s.bindings
      | name ->
          Toml.fail ~file ~line:s.name_line (Printf.sprintf "unknown section [%s]" name))
    (Toml.parse_string ~filename contents);
  !config

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~filename:path contents

(* --- path matching -------------------------------------------------- *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  if String.length p > 1 && p.[String.length p - 1] = '/' then
    String.sub p 0 (String.length p - 1)
  else p

(* [pattern] covers [path] when equal, or when pattern is a directory
   prefix at a '/' boundary. A trailing "/**" on the pattern is
   accepted and means the same thing. *)
let path_covered ~pattern path =
  let pattern = normalize_path pattern in
  let pattern =
    if Filename.check_suffix pattern "/**" then
      String.sub pattern 0 (String.length pattern - 3)
    else pattern
  in
  let path = normalize_path path in
  pattern = path || String.starts_with ~prefix:(pattern ^ "/") path

let excluded config path =
  List.exists (fun pattern -> path_covered ~pattern path) config.exclude

let rule_config config rule =
  match List.assoc_opt rule config.rules with
  | Some rc -> rc
  | None -> { severity = None; allow = [] }

let allowed config ~rule path =
  List.exists (fun pattern -> path_covered ~pattern path) (rule_config config rule).allow

(* Resolve the effective severity: config override beats the rule's
   default; "off" disables the rule entirely (None). *)
let severity config ~rule ~default:d =
  match (rule_config config rule).severity with
  | None -> Some d
  | Some "off" -> None
  | Some s -> Diagnostic.severity_of_string s

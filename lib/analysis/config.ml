(* Hand-rolled parser for the checked-in `lint.toml` (a strict TOML
   subset — no new dependencies). Supported grammar:

     # comment (outside strings)
     [lint]
     roots   = ["lib", "bin"]
     exclude = ["test/lint_fixtures"]

     [rule.float-polymorphic-compare]
     severity = "error"          # "error" | "warning" | "off"
     allow    = ["lib/obs/sink.ml", "lib/experiments"]

   Arrays may span several lines. Strings have no escape sequences.
   Unknown sections or keys are hard errors so typos cannot silently
   disable a rule. Allow/exclude entries are path prefixes matched at
   '/' boundaries against lint-root-relative paths. *)

type rule_config = { severity : string option; allow : string list }

type t = {
  roots : string list;
  exclude : string list;
  rules : (string * rule_config) list;
}

let default = { roots = [ "lib"; "bin"; "bench"; "test" ]; exclude = []; rules = [] }

let fail ~file ~line msg =
  failwith (Printf.sprintf "%s:%d: %s" file line msg)

(* Drop a '#' comment, tracking double quotes so '#' inside a string
   survives. *)
let strip_comment line =
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then begin
           in_string := not !in_string;
           Buffer.add_char buf c
         end
         else if c = '#' && not !in_string then raise Exit
         else Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let bracket_balance s =
  let depth = ref 0 and in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then in_string := not !in_string
      else if not !in_string then
        if c = '[' then incr depth else if c = ']' then decr depth)
    s;
  !depth

let parse_string_lit ~file ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    fail ~file ~line (Printf.sprintf "expected a double-quoted string, got %S" s);
  String.sub s 1 (n - 2)

(* Split "a", "b", "c" on commas outside strings. *)
let split_items s =
  let items = ref [] and buf = Buffer.create 32 and in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_string := not !in_string;
        Buffer.add_char buf c
      end
      else if c = ',' && not !in_string then begin
        items := Buffer.contents buf :: !items;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  items := Buffer.contents buf :: !items;
  List.rev_map String.trim !items |> List.filter (fun s -> s <> "")

let parse_array ~file ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail ~file ~line (Printf.sprintf "expected an array [...], got %S" s);
  split_items (String.sub s 1 (n - 2))
  |> List.map (fun item -> parse_string_lit ~file ~line item)

let parse_section_header ~file ~line s =
  let n = String.length s in
  let name = String.trim (String.sub s 1 (n - 2)) in
  if name = "" then fail ~file ~line "empty section header";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | c -> fail ~file ~line (Printf.sprintf "bad character %C in section header" c))
    name;
  name

let severities = [ "error"; "warning"; "off" ]

let parse_string ?(filename = "lint.toml") contents =
  let file = filename in
  let lines = String.split_on_char '\n' contents in
  (* Fold physical lines into logical lines, joining while an array is
     still open; keep the first physical line's number for messages. *)
  let logical =
    let rec go acc pending lines =
      match (pending, lines) with
      | None, [] -> List.rev acc
      | Some (lnum, s), [] ->
          if bracket_balance s <> 0 then fail ~file ~line:lnum "unterminated array";
          List.rev ((lnum, s) :: acc)
      | None, (lnum, l) :: rest ->
          let l = strip_comment l in
          if bracket_balance l > 0 then go acc (Some (lnum, l)) rest
          else go ((lnum, l) :: acc) None rest
      | Some (lnum, s), (_, l) :: rest ->
          let s = s ^ " " ^ strip_comment l in
          if bracket_balance s > 0 then go acc (Some (lnum, s)) rest
          else go ((lnum, s) :: acc) None rest
    in
    go [] None (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let config = ref default in
  let section = ref None in
  let rule_update name f =
    let current =
      match List.assoc_opt name !config.rules with
      | Some rc -> rc
      | None -> { severity = None; allow = [] }
    in
    config :=
      { !config with
        rules = (name, f current) :: List.remove_assoc name !config.rules }
  in
  List.iter
    (fun (lnum, raw) ->
      let line = String.trim raw in
      if line = "" then ()
      else if String.length line >= 2 && line.[0] = '[' && line.[String.length line - 1] = ']'
      then begin
        let name = parse_section_header ~file ~line:lnum line in
        match name with
        | "lint" -> section := Some `Lint
        | _ when String.length name > 5 && String.sub name 0 5 = "rule." ->
            section := Some (`Rule (String.sub name 5 (String.length name - 5)))
        | _ -> fail ~file ~line:lnum (Printf.sprintf "unknown section [%s]" name)
      end
      else
        match String.index_opt line '=' with
        | None -> fail ~file ~line:lnum (Printf.sprintf "expected key = value, got %S" line)
        | Some i -> (
            let key = String.trim (String.sub line 0 i) in
            let value = String.sub line (i + 1) (String.length line - i - 1) in
            match !section with
            | None -> fail ~file ~line:lnum "key outside any [section]"
            | Some `Lint -> (
                match key with
                | "roots" ->
                    config := { !config with roots = parse_array ~file ~line:lnum value }
                | "exclude" ->
                    config := { !config with exclude = parse_array ~file ~line:lnum value }
                | _ -> fail ~file ~line:lnum (Printf.sprintf "unknown key %S in [lint]" key))
            | Some (`Rule name) -> (
                match key with
                | "severity" ->
                    let s = parse_string_lit ~file ~line:lnum value in
                    if not (List.mem s severities) then
                      fail ~file ~line:lnum
                        (Printf.sprintf "severity must be one of error/warning/off, got %S" s);
                    rule_update name (fun rc -> { rc with severity = Some s })
                | "allow" ->
                    let paths = parse_array ~file ~line:lnum value in
                    rule_update name (fun rc -> { rc with allow = rc.allow @ paths })
                | _ ->
                    fail ~file ~line:lnum
                      (Printf.sprintf "unknown key %S in [rule.%s]" key name))))
    logical;
  !config

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~filename:path contents

(* --- path matching -------------------------------------------------- *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  if String.length p > 1 && p.[String.length p - 1] = '/' then
    String.sub p 0 (String.length p - 1)
  else p

(* [pattern] covers [path] when equal, or when pattern is a directory
   prefix at a '/' boundary. A trailing "/**" on the pattern is
   accepted and means the same thing. *)
let path_covered ~pattern path =
  let pattern = normalize_path pattern in
  let pattern =
    if Filename.check_suffix pattern "/**" then
      String.sub pattern 0 (String.length pattern - 3)
    else pattern
  in
  let path = normalize_path path in
  pattern = path || String.starts_with ~prefix:(pattern ^ "/") path

let excluded config path =
  List.exists (fun pattern -> path_covered ~pattern path) config.exclude

let rule_config config rule =
  match List.assoc_opt rule config.rules with
  | Some rc -> rc
  | None -> { severity = None; allow = [] }

let allowed config ~rule path =
  List.exists (fun pattern -> path_covered ~pattern path) (rule_config config rule).allow

(* Resolve the effective severity: config override beats the rule's
   default; "off" disables the rule entirely (None). *)
let severity config ~rule ~default:d =
  match (rule_config config rule).severity with
  | None -> Some d
  | Some "off" -> None
  | Some s -> Diagnostic.severity_of_string s

(** The Bouguerra–Trystram–Wagner objective (the paper's Related Work
    [20], which motivated it): with a {e general} failure law, the
    expected makespan has no closed form, so one instead {e maximises
    the expected amount of work saved before the first failure}.

    For a placement with checkpointed segments ending at times
    t_1 < t_2 < ... (cumulative work plus checkpoint costs), the
    objective is Σ_k W_k · S(t_k), where W_k is the work of segment k
    and S the survival function of the failure law: segment k's work is
    saved iff the platform survives past its checkpoint.

    BTW prove this problem weakly NP-complete for uniform distributions
    and give a pseudo-polynomial dynamic program; both the exhaustive
    optimum and that DP (for integer durations) are implemented here. *)

val expected_saved_work :
  law:Ckpt_dist.Law.t -> Schedule.t -> float
(** The objective value of a placement. The chain's [lambda] is ignored;
    the first platform failure is drawn from [law] (use a superposed /
    platform-level law for multi-processor platforms). *)

val exhaustive_best :
  ?max_size:int -> law:Ckpt_dist.Law.t -> Chain_problem.t -> Schedule.t * float
(** Maximum over all 2^(n-1) placements (default size guard: 22). *)

val pseudo_polynomial_best :
  ?max_total:int -> law:Ckpt_dist.Law.t -> Chain_problem.t -> Schedule.t * float
(** The BTW pseudo-polynomial DP. Requires every task work and
    checkpoint cost to be a non-negative integer (raises
    [Invalid_argument] otherwise); states are (task index, integer
    elapsed time), elapsed bounded by Σ(w_i + C_i), which must not
    exceed [max_total] (default 200_000). Returns the same optimum as
    {!exhaustive_best}. *)

val greedy :
  law:Ckpt_dist.Law.t -> Chain_problem.t -> Schedule.t * float
(** Polynomial heuristic: scan the chain left to right and checkpoint
    after task i whenever doing so increases the marginal objective of
    the running segment (checkpoint when the segment's survival-weighted
    work would start to decline). Evaluated against the exact optimum in
    experiment E13. *)

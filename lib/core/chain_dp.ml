type solution = { expected_makespan : float; schedule : Schedule.t }

module Metrics = Ckpt_obs.Metrics

(* Solver metrics: totals are deterministic for a given problem (and,
   under the parallel Monte-Carlo pool, for a given seed) whatever the
   domain count — integer counters merge commutatively. *)
let m_memo_hits = Metrics.counter "dp.memo_hits"
let m_memo_misses = Metrics.counter "dp.memo_misses"
let m_states = Metrics.counter "dp.states_expanded"
let m_transitions = Metrics.counter "dp.transitions"

(* Shared post-processing: turn a table of "end of first segment"
   choices into a Schedule. *)
let schedule_of_choices problem choices =
  let n = Chain_problem.size problem in
  let placement = Array.make n false in
  let rec mark x =
    if x < n then begin
      let j = choices.(x) in
      placement.(j) <- true;
      mark (j + 1)
    end
  in
  mark 0;
  Schedule.make problem placement

let solve problem =
  let n = Chain_problem.size problem in
  (* value.(x) = optimal expected time for the suffix x..n-1;
     choice.(x) = index of the last task of its first segment. *)
  let value = Array.make (n + 1) 0.0 in
  let choice = Array.make n 0 in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    let best = ref infinity and best_j = ref x in
    for j = x to n - 1 do
      let cur = Chain_problem.segment_expected problem ~first:x ~last:j +. value.(j + 1) in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    value.(x) <- !best;
    choice.(x) <- !best_j
  done;
  { expected_makespan = value.(0); schedule = schedule_of_choices problem choice }

(* Faithful transcription of Algorithm 1 (DPMAKESPAN), with 0-based
   indices: DPMAKESPAN(x) treats tasks x..n-1 and returns the couple
   (optimal expectation, index of the task preceding the first
   checkpoint). Memoization makes each instance computed once. *)
let solve_memoized problem =
  let n = Chain_problem.size problem in
  let memo : (float * int) option array = Array.make n None in
  let rec dpmakespan x =
    match memo.(x) with
    | Some result ->
        Metrics.incr m_memo_hits;
        result
    | None ->
        Metrics.incr m_memo_misses;
        Metrics.incr m_states;
        Metrics.incr ~by:(Stdlib.max 0 (n - 1 - x)) m_transitions;
        let result =
          if x = n - 1 then (Chain_problem.segment_expected problem ~first:x ~last:x, x)
          else begin
            (* Initial candidate: no further checkpoint, one segment to
               the end (checkpointed after the final task). *)
            let best = ref (Chain_problem.segment_expected problem ~first:x ~last:(n - 1)) in
            let num_task = ref (n - 1) in
            for j = x to n - 2 do
              let exp_succ, _ = dpmakespan (j + 1) in
              let cur = exp_succ +. Chain_problem.segment_expected problem ~first:x ~last:j in
              if cur < !best then begin
                best := cur;
                num_task := j
              end
            done;
            (!best, !num_task)
          end
        in
        memo.(x) <- Some result;
        result
  in
  let expected_makespan, _ = dpmakespan 0 in
  let choice = Array.init n (fun x -> snd (dpmakespan x)) in
  { expected_makespan; schedule = schedule_of_choices problem choice }

let dp_values problem =
  let n = Chain_problem.size problem in
  let value = Array.make (n + 1) 0.0 in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    let best = ref infinity in
    for j = x to n - 1 do
      let cur = Chain_problem.segment_expected problem ~first:x ~last:j +. value.(j + 1) in
      if cur < !best then best := cur
    done;
    value.(x) <- !best
  done;
  value

let solve_bounded problem ~max_segment =
  if max_segment < 1 then invalid_arg "Chain_dp.solve_bounded: max_segment must be >= 1";
  let n = Chain_problem.size problem in
  let value = Array.make (n + 1) 0.0 in
  let choice = Array.make n 0 in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    let best = ref infinity and best_j = ref x in
    let last = Stdlib.min (n - 1) (x + max_segment - 1) in
    Metrics.incr ~by:(last - x + 1) m_transitions;
    for j = x to last do
      let cur = Chain_problem.segment_expected problem ~first:x ~last:j +. value.(j + 1) in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    value.(x) <- !best;
    choice.(x) <- !best_j
  done;
  { expected_makespan = value.(0); schedule = schedule_of_choices problem choice }

(* value.(k).(x): optimal expectation for the suffix x..n-1 using
   exactly k further checkpoints; infinity when infeasible. *)
let budget_tables problem max_k =
  let n = Chain_problem.size problem in
  let value = Array.make_matrix (max_k + 1) (n + 1) infinity in
  let choice = Array.make_matrix (max_k + 1) n (-1) in
  value.(0).(n) <- 0.0;
  for k = 1 to max_k do
    for x = n - 1 downto 0 do
      Metrics.incr m_states;
      Metrics.incr ~by:(n - x) m_transitions;
      let best = ref infinity and best_j = ref (-1) in
      for j = x to n - 1 do
        let rest = value.(k - 1).(j + 1) in
        if rest < infinity then begin
          let cur = Chain_problem.segment_expected problem ~first:x ~last:j +. rest in
          if cur < !best then begin
            best := cur;
            best_j := j
          end
        end
      done;
      value.(k).(x) <- !best;
      choice.(k).(x) <- !best_j
    done
  done;
  (value, choice)

let solve_with_budget problem ~checkpoints =
  let n = Chain_problem.size problem in
  if checkpoints < 1 || checkpoints > n then
    invalid_arg "Chain_dp.solve_with_budget: need 1 <= checkpoints <= n";
  let value, choice = budget_tables problem checkpoints in
  let placement = Array.make n false in
  let rec mark k x =
    if x < n then begin
      let j = choice.(k).(x) in
      assert (j >= 0);
      placement.(j) <- true;
      mark (k - 1) (j + 1)
    end
  in
  mark checkpoints 0;
  {
    expected_makespan = value.(checkpoints).(0);
    schedule = Schedule.make problem placement;
  }

let budget_curve problem =
  let n = Chain_problem.size problem in
  let value, _ = budget_tables problem n in
  List.init n (fun i -> (i + 1, value.(i + 1).(0)))

let first_segment_end problem =
  match Schedule.checkpoint_indices (solve problem).schedule with
  | first :: _ -> first
  | [] -> assert false

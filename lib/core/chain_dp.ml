type solution = { expected_makespan : float; schedule : Schedule.t }

module Metrics = Ckpt_obs.Metrics

(* Solver metrics: totals are deterministic for a given problem (and,
   under the parallel Monte-Carlo pool, for a given seed) whatever the
   domain count — integer counters merge commutatively. *)
let m_memo_hits = Metrics.counter "dp.memo_hits"
let m_memo_misses = Metrics.counter "dp.memo_misses"
let m_states = Metrics.counter "dp.states_expanded"
let m_transitions = Metrics.counter "dp.transitions"
let m_dc_fallbacks = Metrics.counter "dp.dc_fallbacks"

(* Shared post-processing: turn a table of "end of first segment"
   choices into a Schedule. *)
let schedule_of_choices problem choices =
  let n = Chain_problem.size problem in
  let placement = Array.make n false in
  let rec mark x =
    if x < n then begin
      let j = choices.(x) in
      placement.(j) <- true;
      mark (j + 1)
    end
  in
  mark 0;
  Schedule.make problem placement

let solve problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  (* value.(x) = optimal expected time for the suffix x..n-1;
     choice.(x) = index of the last task of its first segment. The
     transition cost goes through the precomputed Segment_cost tables:
     bounds are established by the loop structure, so the inner loop
     carries no per-call validation. *)
  let value = Array.make (n + 1) 0.0 in
  let choice = Array.make n 0 in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    let best = ref infinity and best_j = ref x in
    for j = x to n - 1 do
      let cur = Segment_cost.cost kernel ~first:x ~last:j +. value.(j + 1) in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    value.(x) <- !best;
    choice.(x) <- !best_j
  done;
  { expected_makespan = value.(0); schedule = schedule_of_choices problem choice }

(* Faithful transcription of Algorithm 1 (DPMAKESPAN), with 0-based
   indices: DPMAKESPAN(x) treats tasks x..n-1 and returns the couple
   (optimal expectation, index of the task preceding the first
   checkpoint). Memoization makes each instance computed once. Kept on
   the reference segment-cost evaluation (fresh exp/expm1 per call), so
   it doubles as the correctness oracle for the table-backed solvers. *)
let solve_memoized problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let memo : (float * int) option array = Array.make n None in
  let rec dpmakespan x =
    match memo.(x) with
    | Some result ->
        Metrics.incr m_memo_hits;
        result
    | None ->
        Metrics.incr m_memo_misses;
        Metrics.incr m_states;
        (* n − x segment evaluations: the initial no-further-checkpoint
           candidate plus the n − 1 − x loop iterations (just the base
           segment when x = n − 1) — the same count `solve` reports, and
           the observability test asserts the two stay equal. *)
        Metrics.incr ~by:(n - x) m_transitions;
        let result =
          if x = n - 1 then (Segment_cost.reference_cost kernel ~first:x ~last:x, x)
          else begin
            (* Initial candidate: no further checkpoint, one segment to
               the end (checkpointed after the final task). *)
            let best = ref (Segment_cost.reference_cost kernel ~first:x ~last:(n - 1)) in
            let num_task = ref (n - 1) in
            for j = x to n - 2 do
              let exp_succ, _ = dpmakespan (j + 1) in
              let cur = exp_succ +. Segment_cost.reference_cost kernel ~first:x ~last:j in
              if cur < !best then begin
                best := cur;
                num_task := j
              end
            done;
            (!best, !num_task)
          end
        in
        memo.(x) <- Some result;
        result
  in
  let expected_makespan, _ = dpmakespan 0 in
  let choice = Array.init n (fun x -> snd (dpmakespan x)) in
  { expected_makespan; schedule = schedule_of_choices problem choice }

let dp_values problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let value = Array.make (n + 1) 0.0 in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    let best = ref infinity in
    for j = x to n - 1 do
      let cur = Segment_cost.cost kernel ~first:x ~last:j +. value.(j + 1) in
      if cur < !best then best := cur
    done;
    value.(x) <- !best
  done;
  value

let solve_bounded problem ~max_segment =
  if max_segment < 1 then invalid_arg "Chain_dp.solve_bounded: max_segment must be >= 1";
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let value = Array.make (n + 1) 0.0 in
  let choice = Array.make n 0 in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    let best = ref infinity and best_j = ref x in
    let last = Stdlib.min (n - 1) (x + max_segment - 1) in
    Metrics.incr ~by:(last - x + 1) m_transitions;
    for j = x to last do
      let cur = Segment_cost.cost kernel ~first:x ~last:j +. value.(j + 1) in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    value.(x) <- !best;
    choice.(x) <- !best_j
  done;
  { expected_makespan = value.(0); schedule = schedule_of_choices problem choice }

(* --- Monotone divide-and-conquer solver ----------------------------- *)

(* The transition cost decomposes as c(x, j) = a(x)·E(j) − pre(x)
   (Segment_cost.supports_monotone_dc); when a is non-increasing and E
   non-decreasing the matrix f(x, j) = c(x, j) + V(j+1) is
   inverse-Monge, so the smallest optimal first-checkpoint index is
   non-decreasing in the suffix start x. solve_dc exploits that with a
   divide and conquer over the states: solve the right half of an
   interval, account the right half's decisions for the left half's
   states with an offline monotone row-minima divide and conquer, then
   recurse left — O(n log² n) transition evaluations worst case
   (~n log n over the benchmarked range) instead of O(n²), every one of
   them through the same Segment_cost tables as `solve` so the two
   agree to float rounding. *)
let solve_dc ?(verify = true) problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  if verify && not (Segment_cost.supports_monotone_dc kernel) then begin
    (* Monotonicity check failed (cost spike larger than a task weight,
       or the kernel is in overflow-reference mode): the divide and
       conquer would prune decisions it may not prune, so fall back to
       the exhaustive O(n²) solver. *)
    Metrics.incr m_dc_fallbacks;
    solve problem
  end
  else begin
    (* value.(x) is final for x >= the right edge of the interval being
       solved; best/choice accumulate the minima over every decision
       range already combined into state x. *)
    let value = Array.make (n + 1) 0.0 in
    let best = Array.make n infinity in
    let choice = Array.make n 0 in
    let cost x j = Segment_cost.cost kernel ~first:x ~last:j +. value.(j + 1) in
    (* Row minima of f over states xlo..xhi and decisions jlo..jhi
       (xhi <= jlo required, so value.(j+1) is final throughout):
       evaluate the middle state's restricted range, split the decision
       range at its argmin. Ties keep the smallest j, matching `solve`'s
       scan order, so the smallest-argmin monotonicity applies. *)
    let rec combine xlo xhi jlo jhi =
      if xlo <= xhi then begin
        let xm = (xlo + xhi) / 2 in
        Metrics.incr ~by:(jhi - jlo + 1) m_transitions;
        let best_c = ref (cost xm jlo) and best_j = ref jlo in
        for j = jlo + 1 to jhi do
          let cur = cost xm j in
          if cur < !best_c then begin
            best_c := cur;
            best_j := j
          end
        done;
        if !best_c < best.(xm) then begin
          best.(xm) <- !best_c;
          choice.(xm) <- !best_j
        end;
        combine xlo (xm - 1) jlo !best_j;
        combine (xm + 1) xhi !best_j jhi
      end
    in
    (* Invariant: value is final on r+1..n when rec_solve l r runs. *)
    let rec rec_solve l r =
      if l = r then begin
        Metrics.incr m_states;
        Metrics.incr m_transitions;
        let own = cost l l in
        if own < best.(l) then begin
          best.(l) <- own;
          choice.(l) <- l
        end;
        value.(l) <- best.(l)
      end
      else begin
        let m = (l + r) / 2 in
        rec_solve (m + 1) r;
        combine l m m r;
        rec_solve l m
      end
    in
    rec_solve 0 (n - 1);
    { expected_makespan = value.(0); schedule = schedule_of_choices problem choice }
  end

(* value.(k).(x): optimal expectation for the suffix x..n-1 using
   exactly k further checkpoints; infinity when infeasible. *)
let budget_tables problem max_k =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let value = Array.make_matrix (max_k + 1) (n + 1) infinity in
  let choice = Array.make_matrix (max_k + 1) n (-1) in
  value.(0).(n) <- 0.0;
  for k = 1 to max_k do
    for x = n - 1 downto 0 do
      Metrics.incr m_states;
      Metrics.incr ~by:(n - x) m_transitions;
      let best = ref infinity and best_j = ref (-1) in
      for j = x to n - 1 do
        let rest = value.(k - 1).(j + 1) in
        if rest < infinity then begin
          let cur = Segment_cost.cost kernel ~first:x ~last:j +. rest in
          if cur < !best then begin
            best := cur;
            best_j := j
          end
        end
      done;
      value.(k).(x) <- !best;
      choice.(k).(x) <- !best_j
    done
  done;
  (value, choice)

let solve_with_budget problem ~checkpoints =
  let n = Chain_problem.size problem in
  if checkpoints < 1 || checkpoints > n then
    invalid_arg "Chain_dp.solve_with_budget: need 1 <= checkpoints <= n";
  let value, choice = budget_tables problem checkpoints in
  let placement = Array.make n false in
  let rec mark k x =
    if x < n then begin
      let j = choice.(k).(x) in
      assert (j >= 0);
      placement.(j) <- true;
      mark (k - 1) (j + 1)
    end
  in
  mark checkpoints 0;
  {
    expected_makespan = value.(checkpoints).(0);
    schedule = Schedule.make problem placement;
  }

let budget_curve problem =
  let n = Chain_problem.size problem in
  let value, _ = budget_tables problem n in
  List.init n (fun i -> (i + 1, value.(i + 1).(0)))

let first_segment_end problem =
  match Schedule.checkpoint_indices (solve problem).schedule with
  | first :: _ -> first
  | [] -> assert false

type solution = { expected_makespan : float; schedule : Schedule.t }

module Metrics = Ckpt_obs.Metrics
module T = Dp_tables
module Domain_team = Ckpt_sim.Domain_team

(* Solver metrics: totals are deterministic for a given problem (and,
   under the parallel Monte-Carlo pool, for a given seed) whatever the
   domain count — integer counters merge commutatively. The parallel
   sweeps keep that true by counting on the master domain only. *)
let m_memo_hits = Metrics.counter "dp.memo_hits"
let m_memo_misses = Metrics.counter "dp.memo_misses"
let m_states = Metrics.counter "dp.states_expanded"
let m_transitions = Metrics.counter "dp.transitions"
let m_dc_fallbacks = Metrics.counter "dp.dc_fallbacks"
let m_smawk_states = Metrics.counter "dp.smawk_states"
let m_smawk_transitions = Metrics.counter "dp.smawk_transitions"
let m_smawk_fallbacks = Metrics.counter "dp.smawk_fallbacks"

(* Shared post-processing: turn a table of "end of first segment"
   choices into a Schedule. The choice table is abstracted as a
   function so the Bigarray-backed solvers need no intermediate
   boxed-array copy. *)
let schedule_of_choice_fn problem choice =
  let n = Chain_problem.size problem in
  let placement = Array.make n false in
  let rec mark x =
    if x < n then begin
      let j = choice x in
      placement.(j) <- true;
      mark (j + 1)
    end
  in
  mark 0;
  Schedule.make problem placement

let schedule_of_choices problem choices =
  schedule_of_choice_fn problem (Array.get choices)

let solve problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  (* value.(x) = optimal expected time for the suffix x..n-1;
     choice.(x) = index of the last task of its first segment. Both
     live in flat Bigarray SoA tables (Dp_tables) so million-task
     solves stay off the OCaml heap; the transition cost goes through
     the precomputed Segment_cost tables, and bounds are established
     by the loop structure, so the inner loop carries no per-call
     validation. *)
  let value = T.floats (n + 1) in
  let choice = T.ints n in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    let best = ref infinity and best_j = ref x in
    for j = x to n - 1 do
      let cur =
        Segment_cost.cost_unsafe kernel ~first:x ~last:j +. T.fget value (j + 1)
      in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    T.fset value x !best;
    T.iset choice x !best_j
  done;
  {
    expected_makespan = T.fget value 0;
    schedule = schedule_of_choice_fn problem (T.iget choice);
  }

(* Faithful transcription of Algorithm 1 (DPMAKESPAN), with 0-based
   indices: DPMAKESPAN(x) treats tasks x..n-1 and returns the couple
   (optimal expectation, index of the task preceding the first
   checkpoint). Memoization makes each instance computed once. Kept on
   the reference segment-cost evaluation (fresh exp/expm1 per call) and
   on plain boxed tables, so it doubles as the correctness oracle for
   the Bigarray-backed solvers. *)
let solve_memoized problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let memo : (float * int) option array = Array.make n None in
  let rec dpmakespan x =
    match memo.(x) with
    | Some result ->
        Metrics.incr m_memo_hits;
        result
    | None ->
        Metrics.incr m_memo_misses;
        Metrics.incr m_states;
        (* n − x segment evaluations: the initial no-further-checkpoint
           candidate plus the n − 1 − x loop iterations (just the base
           segment when x = n − 1) — the same count `solve` reports, and
           the observability test asserts the two stay equal. *)
        Metrics.incr ~by:(n - x) m_transitions;
        let result =
          if x = n - 1 then (Segment_cost.reference_cost kernel ~first:x ~last:x, x)
          else begin
            (* Initial candidate: no further checkpoint, one segment to
               the end (checkpointed after the final task). *)
            let best = ref (Segment_cost.reference_cost kernel ~first:x ~last:(n - 1)) in
            let num_task = ref (n - 1) in
            for j = x to n - 2 do
              let exp_succ, _ = dpmakespan (j + 1) in
              let cur = exp_succ +. Segment_cost.reference_cost kernel ~first:x ~last:j in
              if cur < !best then begin
                best := cur;
                num_task := j
              end
            done;
            (!best, !num_task)
          end
        in
        memo.(x) <- Some result;
        result
  in
  let expected_makespan, _ = dpmakespan 0 in
  let choice = Array.init n (fun x -> snd (dpmakespan x)) in
  { expected_makespan; schedule = schedule_of_choices problem choice }

let dp_values problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let value = T.floats (n + 1) in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    let best = ref infinity in
    for j = x to n - 1 do
      let cur =
        Segment_cost.cost_unsafe kernel ~first:x ~last:j +. T.fget value (j + 1)
      in
      if cur < !best then best := cur
    done;
    T.fset value x !best
  done;
  T.to_float_array value

let solve_bounded problem ~max_segment =
  if max_segment < 1 then invalid_arg "Chain_dp.solve_bounded: max_segment must be >= 1";
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let value = T.floats (n + 1) in
  let choice = T.ints n in
  for x = n - 1 downto 0 do
    Metrics.incr m_states;
    let best = ref infinity and best_j = ref x in
    let last = Stdlib.min (n - 1) (x + max_segment - 1) in
    Metrics.incr ~by:(last - x + 1) m_transitions;
    for j = x to last do
      let cur =
        Segment_cost.cost_unsafe kernel ~first:x ~last:j +. T.fget value (j + 1)
      in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    T.fset value x !best;
    T.iset choice x !best_j
  done;
  {
    expected_makespan = T.fget value 0;
    schedule = schedule_of_choice_fn problem (T.iget choice);
  }

(* --- Domain-parallel exhaustive sweep -------------------------------- *)

(* Fixed decision-chunk grid: chunk k covers columns
   [k·par_chunk, (k+1)·par_chunk − 1] ∩ [x, n−1]. Boundaries are
   absolute (independent of the domain count and of which domain claims
   which chunk), so the ordered merge below is a pure function of the
   problem — the same bit-identity discipline as Parallel_exec's batch
   grid. *)
let par_chunk = 4096

let solve_par ?domains problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let domains =
    match domains with Some d -> d | None -> Domain_team.default_domains ()
  in
  if domains < 1 then invalid_arg "Chain_dp.solve_par: domains must be >= 1";
  let value = T.floats (n + 1) in
  let choice = T.ints n in
  (* Leftmost strict-< scan of row x over decisions [jlo, jhi]: the
     exact comparison sequence `solve` runs on that range. *)
  let scan_row x jlo jhi =
    let best = ref infinity and best_j = ref jlo in
    for j = jlo to jhi do
      let cur =
        Segment_cost.cost_unsafe kernel ~first:x ~last:j +. T.fget value (j + 1)
      in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    (!best, !best_j)
  in
  let finish x (best, best_j) =
    Metrics.incr m_states;
    Metrics.incr ~by:(n - x) m_transitions;
    T.fset value x best;
    T.iset choice x best_j
  in
  if domains = 1 || n < 2 * par_chunk then
    (* Purely sequential path — identical to `solve`. *)
    for x = n - 1 downto 0 do
      finish x (scan_row x x (n - 1))
    done
  else begin
    let n_chunks = (n + par_chunk - 1) / par_chunk in
    let slot_val = Array.make n_chunks infinity in
    let slot_arg = Array.make n_chunks 0 in
    Domain_team.with_team ~domains (fun team ->
        for x = n - 1 downto 0 do
          if n - x < 2 * par_chunk then finish x (scan_row x x (n - 1))
          else begin
            let c0 = x / par_chunk in
            let tasks = n_chunks - c0 in
            (* Each task owns slot i; the team claims indices through an
               atomic cursor but writes stay disjoint. *)
            Domain_team.run team ~tasks (fun i ->
                let c = c0 + i in
                let jlo = Stdlib.max x (c * par_chunk) in
                let jhi = Stdlib.min (n - 1) (((c + 1) * par_chunk) - 1) in
                let v, j = scan_row x jlo jhi in
                slot_val.(i) <- v;
                slot_arg.(i) <- j);
            (* Merge in chunk order with strict <: the first chunk
               attaining the global minimum wins, which is exactly the
               leftmost argmin of the full left-to-right scan. *)
            let best = ref infinity and best_j = ref x in
            for i = 0 to tasks - 1 do
              if slot_val.(i) < !best then begin
                best := slot_val.(i);
                best_j := slot_arg.(i)
              end
            done;
            finish x (!best, !best_j)
          end
        done)
  end;
  {
    expected_makespan = T.fget value 0;
    schedule = schedule_of_choice_fn problem (T.iget choice);
  }

(* --- Monotone divide-and-conquer solver ----------------------------- *)

(* The transition cost decomposes as c(x, j) = a(x)·E(j) − pre(x)
   (Segment_cost.supports_monotone_dc); when a is non-increasing and E
   non-decreasing the matrix f(x, j) = c(x, j) + V(j+1) is
   inverse-Monge, so the smallest optimal first-checkpoint index is
   non-decreasing in the suffix start x. solve_dc exploits that with a
   divide and conquer over the states: solve the right half of an
   interval, account the right half's decisions for the left half's
   states with an offline monotone row-minima divide and conquer, then
   recurse left — O(n log² n) transition evaluations worst case
   (~n log n over the benchmarked range) instead of O(n²), every one of
   them through the same Segment_cost tables as `solve` so the two
   agree to float rounding. *)
let solve_dc ?(verify = true) problem =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  if verify && not (Segment_cost.supports_monotone_dc kernel) then begin
    (* Monotonicity check failed (cost spike larger than a task weight,
       or the kernel is in overflow-reference mode): the divide and
       conquer would prune decisions it may not prune, so fall back to
       the exhaustive O(n²) solver. *)
    Metrics.incr m_dc_fallbacks;
    solve problem
  end
  else begin
    (* value.(x) is final for x >= the right edge of the interval being
       solved; best/choice accumulate the minima over every decision
       range already combined into state x. *)
    let value = T.floats (n + 1) in
    let best = T.floats ~init:infinity n in
    let choice = T.ints n in
    let cost x j =
      Segment_cost.cost_unsafe kernel ~first:x ~last:j +. T.fget value (j + 1)
    in
    (* Row minima of f over states xlo..xhi and decisions jlo..jhi
       (xhi <= jlo required, so value.(j+1) is final throughout):
       evaluate the middle state's restricted range, split the decision
       range at its argmin. Ties keep the smallest j, matching `solve`'s
       scan order, so the smallest-argmin monotonicity applies. *)
    let rec combine xlo xhi jlo jhi =
      if xlo <= xhi then begin
        let xm = (xlo + xhi) / 2 in
        Metrics.incr ~by:(jhi - jlo + 1) m_transitions;
        let best_c = ref (cost xm jlo) and best_j = ref jlo in
        for j = jlo + 1 to jhi do
          let cur = cost xm j in
          if cur < !best_c then begin
            best_c := cur;
            best_j := j
          end
        done;
        if !best_c < T.fget best xm then begin
          T.fset best xm !best_c;
          T.iset choice xm !best_j
        end;
        combine xlo (xm - 1) jlo !best_j;
        combine (xm + 1) xhi !best_j jhi
      end
    in
    (* Invariant: value is final on r+1..n when rec_solve l r runs. *)
    let rec rec_solve l r =
      if l = r then begin
        Metrics.incr m_states;
        Metrics.incr m_transitions;
        let own = cost l l in
        if own < T.fget best l then begin
          T.fset best l own;
          T.iset choice l l
        end;
        T.fset value l (T.fget best l)
      end
      else begin
        let m = (l + r) / 2 in
        rec_solve (m + 1) r;
        combine l m m r;
        rec_solve l m
      end
    in
    rec_solve 0 (n - 1);
    {
      expected_makespan = T.fget value 0;
      schedule = schedule_of_choice_fn problem (T.iget choice);
    }
  end

(* --- SMAWK linear-transition solver --------------------------------- *)

(* Offline row minima of a totally monotone matrix [eval row col] over
   explicit index sets, O(rows + cols) evaluations (SMAWK). Writes this
   call's minimum for every row r of [rows] into loc_val.(r) and its
   leftmost argmin into loc_arg.(r) (indexed by global row id; the
   caller folds them into the global tables afterwards).

   Tie discipline, load-bearing for the bit-for-bit contract with
   `solve`: REDUCE pops a stacked column only when the new (larger)
   column is {e strictly} better at the stack-depth row — on an exact
   float tie the earlier column survives — and a column arriving at a
   full stack is dropped (it cannot be a leftmost minimum anywhere);
   INTERPOLATE scans its window left-to-right with strict <. Under the
   total-monotonicity certificate both rules preserve the leftmost
   argmin of every row exactly. *)
let rec smawk ~eval ~loc_val ~loc_arg rows cols =
  let nr = Array.length rows in
  if nr > 0 && Array.length cols > 0 then begin
    (* REDUCE: keep at most nr columns that can still carry a minimum. *)
    let nc0 = Array.length cols in
    let stack = Array.make nr 0 in
    let top = ref 0 in
    for ci = 0 to nc0 - 1 do
      let c = Array.unsafe_get cols ci in
      let continue = ref true in
      while !continue && !top > 0 do
        let r = Array.unsafe_get rows (!top - 1) in
        if eval r c < eval r (Array.unsafe_get stack (!top - 1)) then decr top
        else continue := false
      done;
      if !top < nr then begin
        Array.unsafe_set stack !top c;
        incr top
      end
    done;
    let cols = Array.sub stack 0 !top in
    let nc = !top in
    (* Recurse on the odd-position rows with the surviving columns,
       then interpolate the even-position rows: each minimum lies
       between the neighbouring odd rows' argmins (inclusive), and
       those argmins are members of [cols], so one monotone pointer
       covers all even rows in O(nr + nc). *)
    let odd = Array.init (nr / 2) (fun i -> rows.((2 * i) + 1)) in
    smawk ~eval ~loc_val ~loc_arg odd cols;
    let k = ref 0 in
    let i = ref 0 in
    while !i < nr do
      let r = rows.(!i) in
      let stop_col = if !i + 1 < nr then loc_arg.(rows.(!i + 1)) else cols.(nc - 1) in
      let best = ref (eval r cols.(!k)) and best_j = ref cols.(!k) in
      let j = ref (!k + 1) in
      while !j < nc && cols.(!j) <= stop_col do
        let v = eval r cols.(!j) in
        if v < !best then begin
          best := v;
          best_j := cols.(!j)
        end;
        incr j
      done;
      loc_val.(r) <- !best;
      loc_arg.(r) <- !best_j;
      k := !j - 1;
      i := !i + 2
    done
  end

(* Blocked SMAWK chain solve; see docs/KERNELS.md for the sketch. The
   DP is "online" (f(x, j) needs the already-final value.(j+1)), which
   plain SMAWK cannot handle; blocks of [block] states processed right
   to left restore an offline shape: one far combine over the block's
   rows × the decision window [u+1, hi] (all values final), then an
   intra-block divide and conquer mirroring solve_dc's but with SMAWK
   row minima. After a block, the window shrinks to hi = choice.(l) —
   exact, because leftmost argmins are non-decreasing in x under the
   certificate. Total evaluations: O(n log block + Σ window spans),
   linear in n for the checkpoint instances (optimal segment lengths
   grow like √n, so windows stay narrow — the bench linearity gate
   pins this). *)
let solve_smawk ?(verify = true) ?domains ?(block = 256) problem =
  if block < 2 then invalid_arg "Chain_dp.solve_smawk: block must be >= 2";
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  if verify && not (Segment_cost.supports_monotone_dc kernel) then begin
    (* Same certificate as solve_dc: without total monotonicity SMAWK's
       pruning is unsound, so fall back to the exhaustive sweep —
       domain-parallel when a team is requested. *)
    Metrics.incr m_smawk_fallbacks;
    match domains with
    | Some d when d > 1 -> solve_par ~domains:d problem
    | _ -> solve problem
  end
  else begin
    let value = T.floats (n + 1) in
    let best = T.floats ~init:infinity n in
    let choice = T.ints n in
    let evals = ref 0 in
    let eval x j =
      incr evals;
      Segment_cost.cost_unsafe kernel ~first:x ~last:j +. T.fget value (j + 1)
    in
    (* Per-combine scratch, indexed by global row id: combines run
       sequentially, and smawk rewrites every row it is given. *)
    let loc_val = Array.make n infinity in
    let loc_arg = Array.make n 0 in
    (* Fold one combine's row minima into the global tables. The tie
       rule (strictly better, or equal with a smaller index) makes the
       final choice the globally leftmost argmin whatever order the
       combines ran in — `solve`'s single left-to-right scan semantics,
       and one rule solve_dc's plain `<` fold does not guarantee. *)
    let fold_row r v j =
      let bv = T.fget best r in
      if v < bv || (Float.equal v bv && j < T.iget choice r) then begin
        T.fset best r v;
        T.iset choice r j
      end
    in
    let fold_rows rows = Array.iter (fun r -> fold_row r loc_val.(r) loc_arg.(r)) rows in
    let hi = ref (n - 1) in
    let l = ref ((n - 1) / block * block) in
    while !l >= 0 do
      let lo = !l in
      let up = Stdlib.min (n - 1) (lo + block - 1) in
      (* Far decisions [up+1, hi]: value.(j+1) final for all of them. *)
      if up + 1 <= !hi then begin
        let rows = Array.init (up - lo + 1) (fun i -> lo + i) in
        let cols = Array.init (!hi - up) (fun i -> up + 1 + i) in
        smawk ~eval ~loc_val ~loc_arg rows cols;
        fold_rows rows
      end;
      (* Intra-block decisions [x, up], right half first so value is
         final on the columns each combine reads. *)
      let rec rec_solve a b =
        if a = b then begin
          fold_row a (eval a a) a;
          T.fset value a (T.fget best a)
        end
        else begin
          let m = (a + b) / 2 in
          rec_solve (m + 1) b;
          let rows = Array.init (m - a + 1) (fun i -> a + i) in
          let cols = Array.init (b - m + 1) (fun i -> m + i) in
          smawk ~eval ~loc_val ~loc_arg rows cols;
          fold_rows rows;
          rec_solve a m
        end
      in
      rec_solve lo up;
      hi := T.iget choice lo;
      l := lo - block
    done;
    Metrics.incr ~by:n m_states;
    Metrics.incr ~by:n m_smawk_states;
    Metrics.incr ~by:!evals m_transitions;
    Metrics.incr ~by:!evals m_smawk_transitions;
    {
      expected_makespan = T.fget value 0;
      schedule = schedule_of_choice_fn problem (T.iget choice);
    }
  end

(* value.(k·(n+1) + x): optimal expectation for the suffix x..n-1 using
   exactly k further checkpoints; infinity when infeasible. Flat SoA
   layout (row-major in k) like the other solvers. *)
let budget_tables problem max_k =
  let n = Chain_problem.size problem in
  let kernel = Chain_problem.kernel problem in
  let width = n + 1 in
  let value = T.floats ~init:infinity ((max_k + 1) * width) in
  let choice = T.ints ~init:(-1) ((max_k + 1) * n) in
  T.fset value n 0.0;
  for k = 1 to max_k do
    let vk = k * width and vk1 = (k - 1) * width and ck = k * n in
    for x = n - 1 downto 0 do
      Metrics.incr m_states;
      Metrics.incr ~by:(n - x) m_transitions;
      let best = ref infinity and best_j = ref (-1) in
      for j = x to n - 1 do
        let rest = T.fget value (vk1 + j + 1) in
        if rest < infinity then begin
          let cur = Segment_cost.cost_unsafe kernel ~first:x ~last:j +. rest in
          if cur < !best then begin
            best := cur;
            best_j := j
          end
        end
      done;
      T.fset value (vk + x) !best;
      T.iset choice (ck + x) !best_j
    done
  done;
  (value, choice, width)

let solve_with_budget problem ~checkpoints =
  let n = Chain_problem.size problem in
  if checkpoints < 1 || checkpoints > n then
    invalid_arg "Chain_dp.solve_with_budget: need 1 <= checkpoints <= n";
  let value, choice, width = budget_tables problem checkpoints in
  let placement = Array.make n false in
  let rec mark k x =
    if x < n then begin
      let j = T.iget choice ((k * n) + x) in
      assert (j >= 0);
      placement.(j) <- true;
      mark (k - 1) (j + 1)
    end
  in
  mark checkpoints 0;
  {
    expected_makespan = T.fget value (checkpoints * width);
    schedule = Schedule.make problem placement;
  }

let budget_curve problem =
  let n = Chain_problem.size problem in
  let value, _, width = budget_tables problem n in
  List.init n (fun i -> (i + 1, T.fget value ((i + 1) * width)))

let first_segment_end problem =
  match Schedule.checkpoint_indices (solve problem).schedule with
  | first :: _ -> first
  | [] -> assert false

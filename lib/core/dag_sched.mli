(** Checkpoint scheduling for arbitrary DAGs under the paper's full
    parallelism assumption: every task runs on the whole platform, so a
    schedule is a linearization of the DAG plus a checkpoint placement
    on it. The ordering problem is NP-hard in general (Proposition 2,
    already for independent tasks); this module offers the exact
    solution for small DAGs (enumerate linearizations, DP on each) and
    heuristic linearizations for larger ones.

    It also implements the first Section 6 extension: checkpoint costs
    that depend on the {e live set} — the tasks whose outputs must be
    saved because some successor has not executed yet — rather than on
    the last task only. *)

type cost_model =
  | Task_costs
      (** Section 2 model: a checkpoint after task T_i costs
          [T_i.checkpoint_cost]; recovering from it costs
          [T_i.recovery_cost]. *)
  | Live_set of {
      checkpoint : Ckpt_dag.Task.t list -> float;
      recovery : Ckpt_dag.Task.t list -> float;
    }
      (** Section 6 model. After position k of a linearization, the
          {e live set} is the set of executed tasks having at least one
          unexecuted successor, together with the executed sink tasks
          (their outputs are the workflow result). [checkpoint] prices
          saving that set; [recovery] prices restoring it. For a linear
          chain the live set is always the singleton of the last
          executed task, so [Task_costs] is fully general there —
          exactly the paper's remark. *)

val live_set : Ckpt_dag.Dag.t -> Ckpt_dag.Task.id list -> position:int -> Ckpt_dag.Task.t list
(** The live set after executing the first [position+1] tasks of the
    linearization (0-based position of the last executed task),
    in execution order. *)

val chain_of_linearization :
  ?downtime:float -> ?initial_recovery:float -> ?cost_model:cost_model ->
  lambda:float -> Ckpt_dag.Dag.t -> Ckpt_dag.Task.id list -> Chain_problem.t
(** The chain instance induced by a linearization: position k carries
    the work of the k-th executed task and the checkpoint/recovery
    costs given by the cost model. Raises [Invalid_argument] if the id
    list is not a linearization of the DAG. Default cost model:
    [Task_costs]. *)

type solution = {
  order : Ckpt_dag.Task.id list;
  placement : Schedule.t;
  expected_makespan : float;
}

val solve_order :
  ?downtime:float -> ?initial_recovery:float -> ?cost_model:cost_model ->
  lambda:float -> Ckpt_dag.Dag.t -> Ckpt_dag.Task.id list -> solution
(** Optimal placement (chain DP) for one given linearization. *)

val exact_small :
  ?downtime:float -> ?initial_recovery:float -> ?cost_model:cost_model ->
  ?max_linearizations:int -> lambda:float -> Ckpt_dag.Dag.t -> solution
(** Best over {e all} linearizations (each solved by the chain DP).
    Raises [Invalid_argument] if the DAG admits more than
    [max_linearizations] (default 50_000) topological orders. *)

type strategy =
  | Deterministic  (** Kahn's order, smallest id first. *)
  | Heaviest_first  (** Among ready tasks, largest work first. *)
  | Lightest_first  (** Among ready tasks, smallest work first. *)
  | Critical_path  (** Largest remaining path to a sink first. *)

val linearize : strategy -> Ckpt_dag.Dag.t -> Ckpt_dag.Task.id list
(** A topological order according to the list-scheduling strategy. *)

val solve_heuristic :
  ?downtime:float -> ?initial_recovery:float -> ?cost_model:cost_model ->
  ?strategies:strategy list -> lambda:float -> Ckpt_dag.Dag.t -> solution
(** The best solution among the listed strategies' linearizations
    (default: all four). *)

val local_search :
  ?downtime:float -> ?initial_recovery:float -> ?cost_model:cost_model ->
  ?iterations:int -> rng:Ckpt_prng.Rng.t -> lambda:float -> Ckpt_dag.Dag.t -> solution
(** Hill-climbing over linearizations: start from {!solve_heuristic}'s
    best order, then repeatedly try precedence-preserving adjacent
    transpositions (chosen at random), re-optimising the placement with
    the chain DP after each move and keeping improvements. [iterations]
    (default 200) bounds the number of candidate moves. Never worse than
    {!solve_heuristic}. *)

(** The scaling scenarios of Section 3: how the expected execution time
    of a checkpointed load varies with the number p of processors, for
    the paper's workload models W(p) and checkpoint-cost models C(p),
    with platform failure rate λ(p) = p·λproc.

    Workload models (total sequential load W_total):
    - perfectly parallel jobs: W(p) = W_total / p;
    - generic parallel jobs (Amdahl): W(p) = (1−γ)W_total/p + γW_total;
    - numerical kernels: W(p) = W_total/p + γ·W_total^(2/3)/√p.

    Checkpoint overhead (memory footprint V, α the I/O constant):
    - proportional: C(p) = R(p) = αV/p (per-processor link bottleneck);
    - constant: C(p) = R(p) = αV (stable-storage bottleneck). *)

type workload =
  | Perfectly_parallel
  | Amdahl of float  (** γ in [0, 1): inherently sequential fraction. *)
  | Numerical_kernel of float  (** γ > 0: communication-to-computation ratio. *)

type overhead =
  | Proportional of float  (** αV: C(p) = αV/p. *)
  | Constant of float  (** αV: C(p) = αV. *)

type scenario = private {
  total_work : float;  (** W_total > 0. *)
  workload : workload;
  overhead : overhead;
  proc_rate : float;  (** λproc > 0. *)
  downtime : float;  (** D >= 0. *)
}

val scenario :
  ?downtime:float ->
  total_work:float -> workload:workload -> overhead:overhead -> proc_rate:float ->
  unit -> scenario

val work_of : workload:workload -> total_work:float -> p:int -> float
(** W(p) for a given model and sequential load (standalone helper, also
    used by {!Moldable_chain}). *)

val cost_of : overhead -> p:int -> float
(** C(p) for a given overhead model. *)

val work : scenario -> p:int -> float
(** W(p). *)

val checkpoint_cost : scenario -> p:int -> float
(** C(p) = R(p). *)

val lambda : scenario -> p:int -> float
(** λ(p) = p·λproc. *)

val expected_time : scenario -> p:int -> Approximations.divisible
(** Expected execution time on p processors under the {e optimal}
    divisible segmentation of W(p) (chunk count from
    {!Approximations.optimal_divisible}). *)

val sweep : scenario -> ps:int list -> (int * Approximations.divisible) list
(** {!expected_time} across processor counts. *)

val optimal_processors : scenario -> max_p:int -> int * Approximations.divisible
(** The processor count in [1, max_p] minimising the expected time
    (exhaustive scan — the function need not be unimodal once integer
    chunk counts are involved). *)

val workload_to_string : workload -> string
val overhead_to_string : overhead -> string

(* Structure-of-arrays DP table storage on Bigarray (see the mli).
   Thin by design: the point is one blessed place that creates the
   off-heap tables every chain solver shares, so the allocation story
   (and the lint rule guarding top-level scratch) stays auditable. *)

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let floats ?(init = 0.0) n : floats =
  if n < 0 then invalid_arg "Dp_tables.floats: negative length";
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a init;
  a

let ints ?(init = 0) n : ints =
  if n < 0 then invalid_arg "Dp_tables.ints: negative length";
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a init;
  a

let fget : floats -> int -> float = Bigarray.Array1.unsafe_get
let fset : floats -> int -> float -> unit = Bigarray.Array1.unsafe_set
let iget : ints -> int -> int = Bigarray.Array1.unsafe_get
let iset : ints -> int -> int -> unit = Bigarray.Array1.unsafe_set

let to_float_array (a : floats) =
  Array.init (Bigarray.Array1.dim a) (Bigarray.Array1.get a)

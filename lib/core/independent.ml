module Task = Ckpt_dag.Task
module Rng = Ckpt_prng.Rng

type t = {
  tasks : Task.t array;
  lambda : float;
  downtime : float;
  initial_recovery : float;
}

let make ?(downtime = 0.0) ?(initial_recovery = 0.0) ~lambda task_list =
  if task_list = [] then invalid_arg "Independent.make: empty task list";
  if not (lambda > 0.0) then invalid_arg "Independent.make: lambda must be positive";
  if downtime < 0.0 || initial_recovery < 0.0 then
    invalid_arg "Independent.make: negative durations";
  let tasks = Array.of_list (List.mapi (fun i task -> Task.with_id task i) task_list) in
  { tasks; lambda; downtime; initial_recovery }

let uniform ?(downtime = 0.0) ~lambda ~checkpoint ~recovery works =
  let task_list =
    List.mapi
      (fun i work ->
        Task.make ~id:i ~work ~checkpoint_cost:checkpoint ~recovery_cost:recovery ())
      works
  in
  make ~downtime ~initial_recovery:recovery ~lambda task_list

let chain_of t order =
  if List.length order <> Array.length t.tasks then
    invalid_arg "Independent.chain_of: ordering size mismatch";
  let seen = Array.make (Array.length t.tasks) false in
  List.iter
    (fun (task : Task.t) ->
      if task.Task.id < 0 || task.Task.id >= Array.length t.tasks || seen.(task.Task.id)
      then invalid_arg "Independent.chain_of: not a permutation of the tasks";
      seen.(task.Task.id) <- true)
    order;
  Chain_problem.make ~downtime:t.downtime ~initial_recovery:t.initial_recovery
    ~lambda:t.lambda order

type ordering = As_given | Shortest_first | Longest_first | Random of int

let order_tasks t ordering =
  let tasks = Array.to_list t.tasks in
  match ordering with
  | As_given -> tasks
  | Shortest_first ->
      List.sort (fun (a : Task.t) b -> compare a.Task.work b.Task.work) tasks
  | Longest_first ->
      List.sort (fun (a : Task.t) b -> compare b.Task.work a.Task.work) tasks
  | Random salt ->
      let rng = Rng.create ~seed:(Int64.of_int (0x5eed + salt)) in
      Rng.shuffle rng tasks

let solve_ordered t ordering = Chain_dp.solve (chain_of t (order_tasks t ordering))

let best_ordered t orderings =
  if orderings = [] then invalid_arg "Independent.best_ordered: no orderings";
  let scored =
    List.map (fun ordering -> (ordering, solve_ordered t ordering)) orderings
  in
  List.fold_left
    (fun (best_o, best_s) (o, s) ->
      if s.Chain_dp.expected_makespan < best_s.Chain_dp.expected_makespan then (o, s)
      else (best_o, best_s))
    (List.hd scored) (List.tl scored)

let lpt_grouping t ~groups =
  if groups < 1 then invalid_arg "Independent.lpt_grouping: groups must be >= 1";
  let n = Array.length t.tasks in
  let groups = Stdlib.min groups n in
  (* LPT: heaviest task first into the currently lightest bin. *)
  let order = order_tasks t Longest_first in
  let bin_work = Array.make groups 0.0 in
  let bins = Array.make groups [] in
  List.iter
    (fun (task : Task.t) ->
      let lightest = ref 0 in
      for b = 1 to groups - 1 do
        if bin_work.(b) < bin_work.(!lightest) then lightest := b
      done;
      bin_work.(!lightest) <- bin_work.(!lightest) +. task.Task.work;
      bins.(!lightest) <- task :: bins.(!lightest))
    order;
  let sequence = List.concat_map List.rev (Array.to_list bins |> List.filter (( <> ) [])) in
  (* Re-optimise the placement over the induced order: at least as good
     as checkpointing exactly at bin boundaries. *)
  Chain_dp.solve (chain_of t sequence)

let auto_grouping t =
  let total_work = Array.fold_left (fun acc task -> acc +. task.Task.work) 0.0 t.tasks in
  let n = Array.length t.tasks in
  let mean_checkpoint =
    Array.fold_left (fun acc task -> acc +. task.Task.checkpoint_cost) 0.0 t.tasks
    /. float_of_int n
  in
  let mean_recovery =
    Array.fold_left (fun acc task -> acc +. task.Task.recovery_cost) 0.0 t.tasks
    /. float_of_int n
  in
  let divisible =
    Approximations.optimal_divisible ~total_work ~checkpoint:mean_checkpoint
      ~downtime:t.downtime ~recovery:mean_recovery ~lambda:t.lambda
  in
  lpt_grouping t ~groups:(Stdlib.min n divisible.Approximations.chunks)

let solution_cost (s : Chain_dp.solution) = s.Chain_dp.expected_makespan

module Task = Ckpt_dag.Task

type task = {
  name : string;
  total_work : float;
  workload : Moldable.workload;
  checkpoint : Moldable.overhead;
  recovery : Moldable.overhead;
}

let task_counter = Atomic.make 0

let task ?name ?(workload = Moldable.Perfectly_parallel) ?recovery ~total_work ~checkpoint
    () =
  if not (total_work > 0.0) then invalid_arg "Moldable_chain.task: total_work must be positive";
  let id = Atomic.fetch_and_add task_counter 1 + 1 in
  let name = match name with Some n -> n | None -> Printf.sprintf "M%d" id in
  let recovery = match recovery with Some r -> r | None -> checkpoint in
  { name; total_work; workload; checkpoint; recovery }

type problem = {
  tasks : task array;
  max_processors : int;
  proc_rate : float;
  downtime : float;
  initial_recovery : float;
  candidates : int list;
}

let default_candidates max_processors =
  let rec powers acc p = if p > max_processors then acc else powers (p :: acc) (2 * p) in
  let base = powers [] 1 in
  List.sort_uniq compare (max_processors :: base)

let problem ?(downtime = 0.0) ?(initial_recovery = 0.0) ?candidates ~max_processors
    ~proc_rate task_list =
  if task_list = [] then invalid_arg "Moldable_chain.problem: empty chain";
  if max_processors < 1 then
    invalid_arg "Moldable_chain.problem: max_processors must be >= 1";
  if not (proc_rate > 0.0) then
    invalid_arg "Moldable_chain.problem: proc_rate must be positive";
  if downtime < 0.0 || initial_recovery < 0.0 then
    invalid_arg "Moldable_chain.problem: negative durations";
  let candidates =
    match candidates with
    | None -> default_candidates max_processors
    | Some list ->
        if list = [] then invalid_arg "Moldable_chain.problem: no candidate allocations";
        List.iter
          (fun p ->
            if p < 1 || p > max_processors then
              invalid_arg "Moldable_chain.problem: candidate out of range")
          list;
        List.sort_uniq compare list
  in
  { tasks = Array.of_list task_list; max_processors; proc_rate; downtime;
    initial_recovery; candidates }

let lambda_at t p = float_of_int p *. t.proc_rate

(* prefix.(i) = W(p) summed over tasks 0..i-1, at a fixed allocation:
   keeps each segment evaluation O(1) inside the O(n²·|candidates|²)
   dynamic program. *)
let prefix_work_at t ~p =
  let n = Array.length t.tasks in
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <-
      prefix.(i)
      +. Moldable.work_of ~workload:t.tasks.(i).workload
           ~total_work:t.tasks.(i).total_work ~p
  done;
  prefix

(* Expected segment durations (Prop 1) at a fixed allocation go through
   the Segment_cost kernel: one table set per candidate p turns the
   growth factor e^(λ(p)(W+C)) − 1 into multiplications. The recovery
   factor e^(λ(p)R)·(1/λ(p) + D) depends on the DP state (the recovery
   cost is the previous segment's, not a function of position), so the
   kernels are built without it and the solver hoists it to one
   evaluation per (state, allocation) pair. *)
let kernel_at t ~prefix ~p =
  Segment_cost.create ~lambda:(lambda_at t p) ~downtime:t.downtime ~prefix_work:prefix
    ~checkpoint_costs:
      (Array.map (fun (task : task) -> Moldable.cost_of task.checkpoint ~p) t.tasks)
    ~recovery_costs:(Array.make (Array.length t.tasks) 0.0)

type solution = {
  expected_makespan : float;
  segments : (int * int * int) list;
}

(* Fixed decision-chunk grid for the parallel sweep: chunk k covers
   j ∈ [k·mold_chunk, (k+1)·mold_chunk − 1] ∩ [x, n−1]. Boundaries are
   absolute — independent of the domain count and of claim order — so
   the chunk-ordered merge below is a pure function of the problem,
   the same bit-identity discipline as Parallel_exec's batch grid. *)
let mold_chunk = 64

let solve ?(domains = 1) t =
  if domains < 1 then invalid_arg "Moldable_chain.solve: domains must be >= 1";
  let n = Array.length t.tasks in
  let candidates = Array.of_list t.candidates in
  let n_cand = Array.length candidates in
  let width = n_cand + 1 in
  (* value.(x·width + c): optimal expectation for tasks x.. given that
     the last checkpoint before x was written at allocation
     candidates.(c) (c = n_cand means "no checkpoint yet": initial
     recovery). Recovery cost of the first segment starting at x is
     determined by (x, c). Tables are flat structure-of-arrays on
     Bigarray (Dp_tables) — the boxed (int * int) choice matrix of the
     original formulation is split into two int tables. *)
  let value = Dp_tables.floats ~init:infinity ((n + 1) * width) in
  let choice_j = Dp_tables.ints ~init:(-1) (n * width) in
  let choice_pc = Dp_tables.ints ~init:(-1) (n * width) in
  let prefixes = Array.map (fun p -> prefix_work_at t ~p) candidates in
  let kernels =
    Array.mapi (fun pc p -> kernel_at t ~prefix:prefixes.(pc) ~p) candidates
  in
  for c = 0 to n_cand do
    Dp_tables.fset value ((n * width) + c) 0.0
  done;
  let recovery_of x c =
    if c = n_cand then t.initial_recovery
    else Moldable.cost_of t.tasks.(x - 1).recovery ~p:candidates.(c)
  in
  (* rec_factor.(pc) = e^(λ(p)·R)·(1/λ(p) + D) for the state's recovery
     cost R: n_cand exp evaluations per state instead of one per
     transition. (The parallel sweep recomputes it per chunk — same
     float expression, so the bits cannot differ.) *)
  let fill_rec_factor rf x c =
    let recovery = if x = 0 then t.initial_recovery else recovery_of x c in
    for pc = 0 to n_cand - 1 do
      let lambda = lambda_at t candidates.(pc) in
      rf.(pc) <- exp (lambda *. recovery) *. ((1.0 /. lambda) +. t.downtime)
    done
  in
  (* Leftmost lexicographic-(j, pc) strict-< scan of state (x, ·) over
     decisions [jlo, jhi] × candidates — exactly the sequential loop's
     comparison sequence restricted to the range. *)
  let scan x rf jlo jhi =
    let best = ref infinity and best_j = ref (-1) and best_pc = ref (-1) in
    for j = jlo to jhi do
      for pc = 0 to n_cand - 1 do
        let cost =
          (rf.(pc) *. Segment_cost.growth_unsafe kernels.(pc) ~first:x ~last:j)
          +. Dp_tables.fget value (((j + 1) * width) + pc)
        in
        if cost < !best then begin
          best := cost;
          best_j := j;
          best_pc := pc
        end
      done
    done;
    (!best, !best_j, !best_pc)
  in
  let store x c (v, j, pc) =
    Dp_tables.fset value ((x * width) + c) v;
    Dp_tables.iset choice_j ((x * width) + c) j;
    Dp_tables.iset choice_pc ((x * width) + c) pc
  in
  if domains = 1 then begin
    let rec_factor = Array.make n_cand 0.0 in
    for x = n - 1 downto 0 do
      for c = 0 to n_cand do
        fill_rec_factor rec_factor x c;
        store x c (scan x rec_factor x (n - 1))
      done
    done
  end
  else
    Ckpt_sim.Domain_team.with_team ~domains (fun team ->
        let n_chunks_total = (n + mold_chunk - 1) / mold_chunk in
        let max_tasks = width * n_chunks_total in
        let slot_val = Array.make max_tasks infinity in
        let slot_j = Array.make max_tasks (-1) in
        let slot_pc = Array.make max_tasks (-1) in
        for x = n - 1 downto 0 do
          let c0 = x / mold_chunk in
          let chunks = n_chunks_total - c0 in
          (* Task i = state (c, chunk) pair; each task owns slot i, so
             claim order cannot influence the merge below. *)
          Ckpt_sim.Domain_team.run team ~tasks:(width * chunks) (fun i ->
              let c = i / chunks and k = i mod chunks in
              let ch = c0 + k in
              let jlo = Stdlib.max x (ch * mold_chunk) in
              let jhi = Stdlib.min (n - 1) (((ch + 1) * mold_chunk) - 1) in
              let rf = Array.make n_cand 0.0 in
              fill_rec_factor rf x c;
              let v, j, pc = scan x rf jlo jhi in
              slot_val.(i) <- v;
              slot_j.(i) <- j;
              slot_pc.(i) <- pc);
          (* Merge in chunk order with strict <: the earliest chunk
             attaining the minimum wins, reproducing the sequential
             leftmost-(j, pc) scan bit for bit. *)
          for c = 0 to n_cand do
            let base = c * chunks in
            let best = ref infinity and best_j = ref (-1) and best_pc = ref (-1) in
            for k = 0 to chunks - 1 do
              if slot_val.(base + k) < !best then begin
                best := slot_val.(base + k);
                best_j := slot_j.(base + k);
                best_pc := slot_pc.(base + k)
              end
            done;
            store x c (!best, !best_j, !best_pc)
          done
        done);
  let rec rebuild acc x c =
    if x = n then List.rev acc
    else begin
      let j = Dp_tables.iget choice_j ((x * width) + c) in
      let pc = Dp_tables.iget choice_pc ((x * width) + c) in
      rebuild ((x, j, candidates.(pc)) :: acc) (j + 1) pc
    end
  in
  {
    expected_makespan = Dp_tables.fget value n_cand;
    segments = rebuild [] 0 n_cand;
  }

let chain_at t ~processors =
  if not (List.mem processors t.candidates) then
    invalid_arg "Moldable_chain.chain_at: allocation is not a candidate";
  let tasks =
    Array.to_list
      (Array.mapi
         (fun i (task : task) ->
           Task.make ~id:i ~name:task.name
             ~work:(Moldable.work_of ~workload:task.workload ~total_work:task.total_work
                      ~p:processors)
             ~checkpoint_cost:(Moldable.cost_of task.checkpoint ~p:processors)
             ~recovery_cost:(Moldable.cost_of task.recovery ~p:processors)
             ())
         t.tasks)
  in
  Chain_problem.make ~downtime:t.downtime ~initial_recovery:t.initial_recovery
    ~lambda:(lambda_at t processors) tasks

let solve_fixed_allocation t ~processors = Chain_dp.solve (chain_at t ~processors)

let best_fixed_allocation t =
  match t.candidates with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun (best_p, best_solution) p ->
          let solution = solve_fixed_allocation t ~processors:p in
          if solution.Chain_dp.expected_makespan
             < best_solution.Chain_dp.expected_makespan
          then (p, solution)
          else (best_p, best_solution))
        (first, solve_fixed_allocation t ~processors:first)
        rest

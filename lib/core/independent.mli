(** The strongly NP-complete problem of Proposition 2: schedule n
    {e independent} tasks and choose after which ones to checkpoint,
    minimising the expected makespan.

    Any solution is an ordering of the tasks plus a placement, i.e. a
    {!Schedule.t} over the chain induced by the ordering, so heuristics
    here return ordinary schedules and are directly comparable with the
    exact solvers of {!Brute_force}. *)

type t = private {
  tasks : Ckpt_dag.Task.t array;
  lambda : float;
  downtime : float;
  initial_recovery : float;
}

val make :
  ?downtime:float -> ?initial_recovery:float -> lambda:float -> Ckpt_dag.Task.t list -> t
(** [initial_recovery] (default 0) is the recovery cost of a failure
    occurring before the first checkpoint. *)

val uniform :
  ?downtime:float -> lambda:float -> checkpoint:float -> recovery:float ->
  float list -> t
(** The Proposition 2 setting: given works, all checkpoint and recovery
    costs equal (and the initial recovery too, matching the reduction's
    accounting). *)

val chain_of : t -> Ckpt_dag.Task.t list -> Chain_problem.t
(** The chain problem induced by an ordering of the tasks (a permutation
    of them; validated). *)

type ordering =
  | As_given
  | Shortest_first
  | Longest_first
  | Random of int  (** Shuffle with the given salt. *)

val order_tasks : t -> ordering -> Ckpt_dag.Task.t list

val solve_ordered : t -> ordering -> Chain_dp.solution
(** Fix the ordering, then place checkpoints optimally with the chain
    DP — the natural "order then place" heuristic family. *)

val best_ordered : t -> ordering list -> ordering * Chain_dp.solution
(** The best of several orderings (ties broken by list position). *)

val lpt_grouping : t -> groups:int -> Chain_dp.solution
(** Longest-processing-time-first packing into [groups] bins of
    near-equal work (the balance the Proposition 2 convexity argument
    proves optimal), one checkpoint after each bin; placement is then
    re-optimised by the chain DP over the induced order. *)

val auto_grouping : t -> Chain_dp.solution
(** {!lpt_grouping} with the group count chosen by the divisible-load
    analysis ({!Approximations.optimal_divisible}) applied to the total
    work and the mean checkpoint cost. *)

val solution_cost : Chain_dp.solution -> float
(** Convenience accessor. *)

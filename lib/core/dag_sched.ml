module Task = Ckpt_dag.Task
module Dag = Ckpt_dag.Dag

type cost_model =
  | Task_costs
  | Live_set of {
      checkpoint : Task.t list -> float;
      recovery : Task.t list -> float;
    }

let check_linearization dag order =
  if not (Dag.is_linearization dag order) then
    invalid_arg "Dag_sched: not a linearization of the DAG"

let live_set dag order ~position =
  check_linearization dag order;
  let n = Dag.size dag in
  if position < 0 || position >= n then invalid_arg "Dag_sched.live_set: bad position";
  let executed = Array.make n false in
  let order_arr = Array.of_list order in
  for k = 0 to position do
    executed.(order_arr.(k)) <- true
  done;
  let is_live id =
    executed.(id)
    && (Dag.successors dag id = []
       || List.exists (fun succ -> not executed.(succ)) (Dag.successors dag id))
  in
  List.filter_map
    (fun id -> if is_live id then Some (Dag.task dag id) else None)
    (Array.to_list (Array.sub order_arr 0 (position + 1)))

let chain_of_linearization ?(downtime = 0.0) ?(initial_recovery = 0.0)
    ?(cost_model = Task_costs) ~lambda dag order =
  check_linearization dag order;
  let chain_tasks =
    List.mapi
      (fun position id ->
        let task = Dag.task dag id in
        match cost_model with
        | Task_costs -> Task.with_id task position
        | Live_set { checkpoint; recovery } ->
            let live = live_set dag order ~position in
            Task.make ~id:position ~name:task.Task.name ~work:task.Task.work
              ~checkpoint_cost:(checkpoint live) ~recovery_cost:(recovery live) ())
      order
  in
  Chain_problem.make ~downtime ~initial_recovery ~lambda chain_tasks

type solution = {
  order : Task.id list;
  placement : Schedule.t;
  expected_makespan : float;
}

let solve_order ?downtime ?initial_recovery ?cost_model ~lambda dag order =
  let problem =
    chain_of_linearization ?downtime ?initial_recovery ?cost_model ~lambda dag order
  in
  let dp = Chain_dp.solve problem in
  {
    order;
    placement = dp.Chain_dp.schedule;
    expected_makespan = dp.Chain_dp.expected_makespan;
  }

let exact_small ?downtime ?initial_recovery ?cost_model ?(max_linearizations = 50_000)
    ~lambda dag =
  let orders = Dag.all_linearizations ~limit:max_linearizations dag in
  match orders with
  | [] -> invalid_arg "Dag_sched.exact_small: empty DAG"
  | first :: rest ->
      let solve order = solve_order ?downtime ?initial_recovery ?cost_model ~lambda dag order in
      List.fold_left
        (fun best order ->
          let candidate = solve order in
          if candidate.expected_makespan < best.expected_makespan then candidate else best)
        (solve first) rest

type strategy = Deterministic | Heaviest_first | Lightest_first | Critical_path

(* Longest work-weighted path from each task to a sink (inclusive). *)
let bottom_levels dag =
  let n = Dag.size dag in
  let levels = Array.make n 0.0 in
  let order = List.rev (Dag.topological_order dag) in
  List.iter
    (fun id ->
      let below =
        List.fold_left (fun acc succ -> Float.max acc levels.(succ)) 0.0
          (Dag.successors dag id)
      in
      levels.(id) <- below +. (Dag.task dag id).Task.work)
    order;
  levels

let linearize strategy dag =
  let n = Dag.size dag in
  let priority =
    match strategy with
    | Deterministic -> fun id -> float_of_int (n - id)
    | Heaviest_first -> fun id -> (Dag.task dag id).Task.work
    | Lightest_first -> fun id -> -.(Dag.task dag id).Task.work
    | Critical_path ->
        let levels = bottom_levels dag in
        fun id -> levels.(id)
  in
  let indegree = Array.make n 0 in
  List.iter (fun (_, dst) -> indegree.(dst) <- indegree.(dst) + 1) (Dag.edges dag);
  let ready = ref (List.filter (fun i -> indegree.(i) = 0) (List.init n Fun.id)) in
  let rec loop acc =
    match !ready with
    | [] -> List.rev acc
    | candidates ->
        let best =
          List.fold_left
            (fun best id ->
              (* Ties broken by smallest id for determinism. *)
              if priority id > priority best || (priority id = priority best && id < best)
              then id
              else best)
            (List.hd candidates) (List.tl candidates)
        in
        ready := List.filter (fun id -> id <> best) candidates;
        List.iter
          (fun succ ->
            indegree.(succ) <- indegree.(succ) - 1;
            if indegree.(succ) = 0 then ready := succ :: !ready)
          (Dag.successors dag best);
        loop (best :: acc)
  in
  loop []

let all_strategies = [ Deterministic; Heaviest_first; Lightest_first; Critical_path ]

let local_search ?downtime ?initial_recovery ?cost_model ?(iterations = 200) ~rng ~lambda
    dag =
  let solve order =
    let problem =
      chain_of_linearization ?downtime ?initial_recovery ?cost_model ~lambda dag order
    in
    (Chain_dp.solve problem).Chain_dp.expected_makespan
  in
  let n = Dag.size dag in
  (* Seed with the best list-scheduling heuristic. *)
  let start =
    List.fold_left
      (fun (best_order, best_cost) strategy ->
        let order = linearize strategy dag in
        let cost = solve order in
        if cost < best_cost then (order, cost) else (best_order, best_cost))
      (let order = linearize Deterministic dag in
       (order, solve order))
      [ Heaviest_first; Lightest_first; Critical_path ]
  in
  let order = Array.of_list (fst start) in
  let best_cost = ref (snd start) in
  if n >= 2 then
    for _ = 1 to iterations do
      let i = Ckpt_prng.Rng.int rng (n - 1) in
      (* Adjacent transposition is precedence-preserving iff there is no
         edge from order.(i) to order.(i+1). *)
      if not (List.mem order.(i + 1) (Dag.successors dag order.(i))) then begin
        let swap () =
          let tmp = order.(i) in
          order.(i) <- order.(i + 1);
          order.(i + 1) <- tmp
        in
        swap ();
        let cost = solve (Array.to_list order) in
        if cost < !best_cost then best_cost := cost else swap ()
      end
    done;
  let final_order = Array.to_list order in
  let problem =
    chain_of_linearization ?downtime ?initial_recovery ?cost_model ~lambda dag final_order
  in
  let dp = Chain_dp.solve problem in
  {
    order = final_order;
    placement = dp.Chain_dp.schedule;
    expected_makespan = dp.Chain_dp.expected_makespan;
  }

let solve_heuristic ?downtime ?initial_recovery ?cost_model ?(strategies = all_strategies)
    ~lambda dag =
  match strategies with
  | [] -> invalid_arg "Dag_sched.solve_heuristic: no strategies"
  | first :: rest ->
      let solve strategy =
        solve_order ?downtime ?initial_recovery ?cost_model ~lambda dag
          (linearize strategy dag)
      in
      List.fold_left
        (fun best strategy ->
          let candidate = solve strategy in
          if candidate.expected_makespan < best.expected_makespan then candidate else best)
        (solve first) rest

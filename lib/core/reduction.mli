(** Proposition 2's NP-completeness reduction, made executable.

    3-PARTITION: given 3m integers a_1..a_3m summing to m·T, with
    T/4 < a_i < T/2, partition them into m triples each summing to T.

    The reduction builds, from such an instance I1, a scheduling
    instance I2 with 3m independent tasks of weights w_i = a_i, rate
    λ = 1/(2T), costs C = R = (ln 2 − 1/2)/λ, no downtime, and bound
    K = m·(e^(λC)/λ)·(e^(λ(T+C)) − 1); the paper proves that I1 is
    solvable iff I2 admits a schedule of expected makespan at most K,
    the optimum being reached only by m segments of equal work T. *)

type instance = private {
  items : int array;  (** 3m integers. *)
  target : int;  (** T. *)
}

val instance : items:int list -> target:int -> instance
(** Validates: 3m items, each in (T/4, T/2) strictly, summing to m·T. *)

val groups_count : instance -> int
(** m. *)

val solve_3partition : instance -> int array list option
(** Exact backtracking solver: [Some triples] (each an array of 3 item
    indices) if a valid 3-partition exists, [None] otherwise. Intended
    for small m (the search is exponential). *)

val random_solvable : Ckpt_prng.Rng.t -> m:int -> target:int -> instance
(** A random instance constructed from m hidden triples, hence
    guaranteed solvable. [target] must be at least 20 and divisible by
    4 is not required; items are drawn in (T/4, T/2). *)

type scheduling_instance = {
  problem : Independent.t;  (** The 3m tasks, uniform C = R, D = 0. *)
  lambda : float;
  cost : float;  (** C = R = (ln 2 − 1/2)·2T. *)
  bound : float;  (** K. *)
}

val reduce : instance -> scheduling_instance
(** The polynomial transformation I1 → I2 of the proof. *)

val schedule_of_partition : instance -> int array list -> Schedule.t * float
(** Forward direction of the proof: from a 3-partition, the schedule
    that executes each triple consecutively and checkpoints after each,
    together with its exact expected makespan (equal to K up to
    floating-point). *)

val optimal_expected : instance -> float
(** Exact optimal expected makespan of the reduced instance, via the
    subset dynamic program of {!Brute_force.partition_best}. Guarded to
    small instances (3m <= 16 tasks, i.e. m <= 5). *)

val verify : instance -> bool
(** End-to-end check of the equivalence on one instance:
    [optimal_expected <= bound (within tolerance)] iff
    [solve_3partition] finds a partition. Returns whether the
    equivalence holds. *)

(** Algorithm 1 of the paper: the O(n²) dynamic program computing the
    optimal checkpoint placement for a linear chain (Proposition 3),
    plus an O(n log² n)-transition divide-and-conquer solver and a
    linear-transition SMAWK solver for the (generic) monotone-decision
    case, and a domain-parallel exhaustive sweep for the rest.

    Equivalent implementations are provided and cross-checked in the
    test suite: a faithful transcription of the paper's memoized
    recursion (kept on the reference per-call [exp]/[expm1] evaluation,
    the correctness oracle), a bottom-up iteration, the monotone divide
    and conquer, the blocked SMAWK solver, and the parallel sweep. The
    bottom-up solvers evaluate transition costs through the chain's
    precomputed {!Segment_cost} kernel — multiplications only on the
    hot path — keep their DP tables in flat off-heap {!Dp_tables}
    structure-of-arrays storage (million-task tables never touch the
    GC), and run in O(n) space thanks to prefix sums of the task
    weights. See docs/KERNELS.md for the layout and the determinism
    contracts. *)

type solution = {
  expected_makespan : float;  (** Optimal expectation E(1, n). *)
  schedule : Schedule.t;  (** An optimal placement achieving it. *)
}

val solve : Chain_problem.t -> solution
(** Bottom-up dynamic program (the fast O(n²) path; O(1) kernel-backed
    transitions). *)

val solve_memoized : Chain_problem.t -> solution
(** Faithful transcription of the paper's Algorithm 1 (recursive,
    memoized), on the reference segment-cost evaluation. Returns the
    same solution as {!solve} (to the kernel's 1e-9 relative
    tolerance). *)

val solve_dc : ?verify:bool -> Chain_problem.t -> solution
(** Divide-and-conquer solver exploiting decision monotonicity: when
    the segment-cost matrix is inverse-Monge
    ({!Segment_cost.supports_monotone_dc} — always for uniform-cost
    chains, and whenever no checkpoint/recovery cost jumps by more than
    a task weight), the optimal first-checkpoint index is monotone in
    the suffix start, and the optimum is found in O(n log² n) transition
    evaluations instead of O(n²). Agrees with {!solve} on the expected
    makespan to float rounding (same kernel-backed costs, same
    smallest-index tie-breaking).

    [verify] (default [true]) runs the O(n) monotonicity verification
    first and {e falls back automatically} to the O(n²) {!solve} when it
    fails — the fallback is counted by the [dp.dc_fallbacks] metric, and
    also triggers when the kernel is in overflow-reference mode.
    [~verify:false] skips the check and forces the divide and conquer;
    the result is then only optimal if the instance really is monotone
    (benchmark/diagnostic use). *)

val solve_smawk : ?verify:bool -> ?domains:int -> ?block:int -> Chain_problem.t -> solution
(** Linear-transition solver: SMAWK row minima over the inverse-Monge
    transition matrix, applied to blocks of [block] (default 256)
    states processed right to left with a window that shrinks to the
    leftmost argmin of each finished block. O(n·log block + Σ window
    spans) transition evaluations — linear in n on checkpoint
    instances, where optimal segment lengths grow like √n (the bench
    suite gates the measured [dp.smawk_transitions] growth). Work is
    counted by the [dp.smawk_states]/[dp.smawk_transitions] metrics (in
    addition to the shared [dp.*] ones).

    Agreement contract: identical transition expressions and a
    leftmost-on-ties fold make the result {e bit-for-bit} equal to
    {!solve} — expected makespan and schedule — whenever the
    {!Segment_cost.supports_monotone_dc} certificate holds (the test
    suite cross-checks this, including exact ties).

    [verify] (default [true]) behaves like {!solve_dc}'s: when the
    certificate fails, the solver counts a [dp.smawk_fallbacks] and
    falls back to the exhaustive sweep — {!solve_par} with [domains]
    when [domains > 1] is given, plain {!solve} otherwise. Raises
    [Invalid_argument] if [block < 2]. *)

val solve_par : ?domains:int -> Chain_problem.t -> solution
(** The exhaustive O(n²) sweep, domain-parallel: each DP row's decision
    range is cut on a fixed absolute chunk grid, chunks are claimed by
    a persistent worker team and write disjoint slots, and the master
    merges them in chunk order — so the result is {e bit-identical} to
    {!solve} for any [domains] (default
    [Domain_team.default_domains ()]). Metrics are counted by the
    master only and equal {!solve}'s. Intended as the non-Monge
    fallback path for large chains; short rows (and [domains = 1]) run
    the sequential scan directly. Raises [Invalid_argument] if
    [domains < 1]. *)

val dp_values : Chain_problem.t -> float array
(** [dp_values problem] is the table E of optimal expected times for
    the suffixes: element x is the optimal expectation for executing
    tasks x..n-1 (element n is 0). Exposed for tests and analysis. *)

val solve_bounded : Chain_problem.t -> max_segment:int -> solution
(** Optimal placement among those whose segments contain at most
    [max_segment] tasks, in O(n·max_segment) time — the scalable path
    for very long chains (n in the 10^5 range, where the O(n²) DP is
    impractical). Equals {!solve} whenever [max_segment] is at least the
    longest segment of an optimal schedule — in particular whenever
    [max_segment >= n]. Raises [Invalid_argument] if
    [max_segment < 1]. *)

val solve_with_budget : Chain_problem.t -> checkpoints:int -> solution
(** Optimal placement using {e exactly} [checkpoints] checkpoints
    (including the mandatory final one) — the storage-budget variant:
    coordinated checkpoints may be limited by stable-storage capacity
    or I/O reservations. O(n²·k) time. Raises [Invalid_argument] unless
    1 <= checkpoints <= n. *)

val budget_curve : Chain_problem.t -> (int * float) list
(** [(k, optimal expectation with exactly k checkpoints)] for
    k = 1 .. n; its minimum is {!solve}'s value. *)

val first_segment_end : Chain_problem.t -> int
(** The paper's [numTask] output at the outermost recursion level: the
    0-based index of the task after which the first checkpoint is taken
    in an optimal schedule. *)

type params = {
  work : float;
  checkpoint : float;
  downtime : float;
  recovery : float;
  lambda : float;
}

let make ?(downtime = 0.0) ?(recovery = 0.0) ~work ~checkpoint ~lambda () =
  if work < 0.0 then invalid_arg "Expected_time.make: work must be non-negative";
  if checkpoint < 0.0 then invalid_arg "Expected_time.make: checkpoint must be non-negative";
  if downtime < 0.0 then invalid_arg "Expected_time.make: downtime must be non-negative";
  if recovery < 0.0 then invalid_arg "Expected_time.make: recovery must be non-negative";
  if not (lambda > 0.0) then invalid_arg "Expected_time.make: lambda must be positive";
  { work; checkpoint; downtime; recovery; lambda }

(* e^(λR) (1/λ + D) (e^(λ(W+C)) − 1), with the last factor as
   expm1 to avoid catastrophic cancellation for small λ(W+C). *)
let expected_unchecked ~work ~checkpoint ~downtime ~recovery ~lambda =
  exp (lambda *. recovery)
  *. ((1.0 /. lambda) +. downtime)
  *. Float.expm1 (lambda *. (work +. checkpoint))

let expected p =
  expected_unchecked ~work:p.work ~checkpoint:p.checkpoint ~downtime:p.downtime
    ~recovery:p.recovery ~lambda:p.lambda

let expected_v ~work ~checkpoint ~downtime ~recovery ~lambda =
  expected (make ~downtime ~recovery ~work ~checkpoint ~lambda ())

let expected_lost p =
  let total = p.work +. p.checkpoint in
  if not (total > 0.0) then invalid_arg "Expected_time.expected_lost: W + C must be positive";
  (1.0 /. p.lambda) -. (total /. Float.expm1 (p.lambda *. total))

let expected_recovery p =
  let elr = exp (p.lambda *. p.recovery) in
  (p.downtime *. elr) +. (Float.expm1 (p.lambda *. p.recovery) /. p.lambda)

let expected_failures p =
  Float.expm1 (p.lambda *. (p.work +. p.checkpoint)) *. exp (p.lambda *. p.recovery)

let success_probability p = exp (-.p.lambda *. (p.work +. p.checkpoint))

let overhead_ratio p =
  if not (p.work > 0.0) then invalid_arg "Expected_time.overhead_ratio: work must be positive";
  (expected p /. p.work) -. 1.0

let failure_free_time p = p.work +. p.checkpoint

type breakdown = { useful : float; checkpoint : float; lost : float; restore : float }

let breakdown p =
  let growth = Float.expm1 (p.lambda *. (p.work +. p.checkpoint)) in
  {
    useful = p.work;
    checkpoint = p.checkpoint;
    lost = (if p.work +. p.checkpoint > 0.0 then growth *. expected_lost p else 0.0);
    restore = growth *. expected_recovery p;
  }

(* First and second moments of (X | X < a) for X ~ Exp(lambda): the
   time lost to a failure known to strike within a window of length a. *)
let truncated_moments lambda a =
  assert (a > 0.0);
  let p_fail = -.Float.expm1 (-.lambda *. a) in
  let m1 = (1.0 /. lambda) -. (a /. Float.expm1 (lambda *. a)) in
  let m2 =
    ((2.0 /. (lambda *. lambda))
     -. (exp (-.lambda *. a)
         *. ((a *. a) +. (2.0 *. a /. lambda) +. (2.0 /. (lambda *. lambda)))))
    /. p_fail
  in
  (m1, m2)

(* Second moment of T_rec = downtime + recovery (failures may interrupt
   the recovery, restarting downtime + recovery): condition on whether
   the first recovery attempt survives its R-length window. *)
let recovery_moments p =
  let m1 = expected_recovery p in
  let m2 =
    if Float.equal p.recovery 0.0 then p.downtime *. p.downtime
    else begin
      let lr1, lr2 = truncated_moments p.lambda p.recovery in
      let dl1 = p.downtime +. lr1 in
      let dl2 = (p.downtime *. p.downtime) +. (2.0 *. p.downtime *. lr1) +. lr2 in
      let growth = Float.expm1 (p.lambda *. p.recovery) in
      let dr = p.downtime +. p.recovery in
      (dr *. dr) +. (growth *. (dl2 +. (2.0 *. dl1 *. m1)))
    end
  in
  (m1, m2)

let second_moment p =
  let a = p.work +. p.checkpoint in
  if not (a > 0.0) then invalid_arg "Expected_time.second_moment: W + C must be positive";
  let l1, l2 = truncated_moments p.lambda a in
  let r1, r2 = recovery_moments p in
  let mean = expected p in
  let growth = Float.expm1 (p.lambda *. a) in
  (a *. a) +. (growth *. (l2 +. r2 +. (2.0 *. ((l1 *. r1) +. ((l1 +. r1) *. mean)))))

let variance p =
  let mean = expected p in
  Float.max 0.0 (second_moment p -. (mean *. mean))

let stddev p = sqrt (variance p)

type params = {
  total_work : float;
  checkpoint : float;
  downtime : float;
  recovery : float;
  lambda : float;
}

let make ?(downtime = 0.0) ?(recovery = 0.0) ~total_work ~checkpoint ~lambda () =
  if not (total_work > 0.0) then invalid_arg "Divisible.make: total_work must be positive";
  if checkpoint < 0.0 || downtime < 0.0 || recovery < 0.0 then
    invalid_arg "Divisible.make: durations must be non-negative";
  if not (lambda > 0.0) then invalid_arg "Divisible.make: lambda must be positive";
  { total_work; checkpoint; downtime; recovery; lambda }

let chunks_of_period p ~tau =
  if not (tau > 0.0) then invalid_arg "Divisible.chunks_of_period: tau must be positive";
  Stdlib.max 1 (int_of_float (Float.round (p.total_work /. tau)))

let expected_chunks p chunks =
  Approximations.expected_divisible ~total_work:p.total_work ~chunks
    ~checkpoint:p.checkpoint ~downtime:p.downtime ~recovery:p.recovery ~lambda:p.lambda

let expected_with_period p ~tau = expected_chunks p (chunks_of_period p ~tau)

let optimal p =
  Approximations.optimal_divisible ~total_work:p.total_work ~checkpoint:p.checkpoint
    ~downtime:p.downtime ~recovery:p.recovery ~lambda:p.lambda

let of_period p tau =
  let chunks = chunks_of_period p ~tau in
  {
    Approximations.chunks;
    chunk_work = p.total_work /. float_of_int chunks;
    expected_total = expected_chunks p chunks;
  }

let young p =
  of_period p (Approximations.young_period ~checkpoint:p.checkpoint ~mtbf:(1.0 /. p.lambda))

let daly p =
  of_period p (Approximations.daly_period ~checkpoint:p.checkpoint ~mtbf:(1.0 /. p.lambda))

let waste_fraction p ~chunks = 1.0 -. (p.total_work /. expected_chunks p chunks)

let breakdown p ~chunks =
  if chunks <= 0 then invalid_arg "Divisible.breakdown: chunks must be positive";
  let chunk =
    Expected_time.make ~downtime:p.downtime ~recovery:p.recovery
      ~work:(p.total_work /. float_of_int chunks)
      ~checkpoint:p.checkpoint ~lambda:p.lambda ()
  in
  let b = Expected_time.breakdown chunk in
  let n = float_of_int chunks in
  {
    Expected_time.useful = n *. b.Expected_time.useful;
    checkpoint = n *. b.Expected_time.checkpoint;
    lost = n *. b.Expected_time.lost;
    restore = n *. b.Expected_time.restore;
  }

let period_sensitivity p ~factors =
  let opt = optimal p in
  let tau_star = opt.Approximations.chunk_work in
  let at_optimum = opt.Approximations.expected_total in
  List.map
    (fun factor ->
      if not (factor > 0.0) then
        invalid_arg "Divisible.period_sensitivity: factors must be positive";
      (factor, expected_with_period p ~tau:(factor *. tau_star) /. at_optimum))
    factors

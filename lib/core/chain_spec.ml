module Task = Ckpt_dag.Task

exception Parse_error of string

let parse_error source line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "%s:%d: %s" source line msg)))
    fmt

type accumulator = {
  mutable lambda : float option;
  mutable downtime : float;
  mutable initial_recovery : float;
  mutable tasks : Task.t list;  (* reversed *)
  mutable next_id : int;
}

let float_field source line name value =
  match float_of_string_opt value with
  | Some v -> v
  | None -> parse_error source line "%s: not a number: %S" name value

let parse_line source acc line_no line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else begin
    match List.filter (( <> ) "") (String.split_on_char ' ' line) with
    | [ "lambda"; v ] -> acc.lambda <- Some (float_field source line_no "lambda" v)
    | [ "downtime"; v ] -> acc.downtime <- float_field source line_no "downtime" v
    | [ "initial_recovery"; v ] ->
        acc.initial_recovery <- float_field source line_no "initial_recovery" v
    | "task" :: work :: checkpoint :: recovery :: rest ->
        let name =
          match rest with
          | [] -> None
          | [ name ] -> Some name
          | _ -> parse_error source line_no "task: too many fields"
        in
        let task =
          try
            Task.make ~id:acc.next_id ?name
              ~work:(float_field source line_no "work" work)
              ~checkpoint_cost:(float_field source line_no "checkpoint_cost" checkpoint)
              ~recovery_cost:(float_field source line_no "recovery_cost" recovery)
              ()
          with Invalid_argument msg -> parse_error source line_no "%s" msg
        in
        acc.next_id <- acc.next_id + 1;
        acc.tasks <- task :: acc.tasks
    | _ -> parse_error source line_no "cannot parse %S" line
  end

let finish ?lambda_override source acc =
  let lambda =
    match (lambda_override, acc.lambda) with
    | Some l, _ -> l
    | None, Some l -> l
    | None, None -> raise (Parse_error (source ^ ": missing `lambda` directive"))
  in
  if acc.tasks = [] then raise (Parse_error (source ^ ": spec contains no task"));
  try
    Chain_problem.make ~downtime:acc.downtime ~initial_recovery:acc.initial_recovery
      ~lambda (List.rev acc.tasks)
  with Invalid_argument msg -> raise (Parse_error (source ^ ": " ^ msg))

let empty () =
  { lambda = None; downtime = 0.0; initial_recovery = 0.0; tasks = []; next_id = 0 }

let parse_lines ?lambda source lines =
  let acc = empty () in
  List.iteri (fun i line -> parse_line source acc (i + 1) line) lines;
  finish ?lambda_override:lambda source acc

let parse_string ?(source = "<string>") text =
  parse_lines source (String.split_on_char '\n' text)

let parse_file_with_lambda ?lambda path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse_lines ?lambda path (read []))

let parse_file path = parse_file_with_lambda path

let to_string (problem : Chain_problem.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# checkpoint-workflows chain spec\n";
  Buffer.add_string buf (Printf.sprintf "lambda %.17g\n" problem.Chain_problem.lambda);
  Buffer.add_string buf (Printf.sprintf "downtime %.17g\n" problem.Chain_problem.downtime);
  Buffer.add_string buf
    (Printf.sprintf "initial_recovery %.17g\n" problem.Chain_problem.initial_recovery);
  Array.iter
    (fun (task : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %.17g %.17g %.17g %s\n" task.Task.work
           task.Task.checkpoint_cost task.Task.recovery_cost task.Task.name))
    problem.Chain_problem.tasks;
  Buffer.contents buf

let save problem path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string problem))

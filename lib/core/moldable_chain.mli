(** The second Section 6 extension: {e moldable} tasks in a linear
    chain. Each task can execute on any number of processors, with its
    own workload model W_i(p) and checkpoint-volume model C_i(p); the
    platform failure rate scales as λ(p) = p·λproc.

    The scheduler now decides three things: the checkpoint placement,
    and a processor count for every segment (tasks of one segment share
    an allocation — the allocation can only change at a checkpoint,
    since reshaping the execution mid-flight would require exactly the
    state capture a checkpoint performs). Under that model the problem
    stays polynomial: a dynamic program over
    (position, previous segment's allocation) — the latter is needed
    because the recovery cost of a rollback is the cost of reloading the
    {e previous} checkpoint, written at the previous allocation. *)

type task = private {
  name : string;
  total_work : float;  (** Sequential load of the task (> 0). *)
  workload : Moldable.workload;
  checkpoint : Moldable.overhead;  (** C_i(p) for a checkpoint after this task. *)
  recovery : Moldable.overhead;  (** R_i(p): reload cost of that checkpoint. *)
}

val task :
  ?name:string -> ?workload:Moldable.workload -> ?recovery:Moldable.overhead ->
  total_work:float -> checkpoint:Moldable.overhead -> unit -> task
(** Defaults: perfectly parallel workload; recovery = the checkpoint
    model. *)

type problem = private {
  tasks : task array;
  max_processors : int;  (** P >= 1. *)
  proc_rate : float;  (** λproc > 0. *)
  downtime : float;
  initial_recovery : float;
      (** Restart-from-scratch cost (allocation-independent). *)
  candidates : int list;  (** Allowed allocations, increasing. *)
}

val problem :
  ?downtime:float -> ?initial_recovery:float -> ?candidates:int list ->
  max_processors:int -> proc_rate:float -> task list -> problem
(** [candidates] defaults to the powers of two up to [max_processors]
    (plus [max_processors] itself). *)

type solution = {
  expected_makespan : float;
  segments : (int * int * int) list;
      (** (first task, last task, processors) per segment, in order;
          every segment ends with a checkpoint. *)
}

val solve : ?domains:int -> problem -> solution
(** The O(n²·|candidates|²) dynamic program described above, on flat
    {!Dp_tables} structure-of-arrays storage.

    [domains] (default [1]: purely sequential) runs the per-state
    decision sweep on a persistent worker-domain team. Each state's
    decision range is cut on a fixed absolute chunk grid, chunks write
    disjoint result slots, and the master merges them in chunk order —
    so the solution is {e bit-identical} for any domain count (the test
    suite checks {1, 2, 4, 8}). Raises [Invalid_argument] if
    [domains < 1]. *)

val solve_fixed_allocation : problem -> processors:int -> Chain_dp.solution
(** Baseline: one allocation for the whole chain (reduces to the paper's
    Proposition 3 DP on the induced rigid chain). [processors] must be a
    candidate. *)

val best_fixed_allocation : problem -> int * Chain_dp.solution
(** The best single-allocation schedule across the candidates. *)

val chain_at : problem -> processors:int -> Chain_problem.t
(** The rigid chain induced by running everything at a fixed allocation
    (used by the baseline and the tests). *)

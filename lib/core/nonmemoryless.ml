module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task
module Sim_run = Ckpt_sim.Sim_run
module Metrics = Ckpt_obs.Metrics

type policy = Sim_run.chain_context -> bool

(* Shared accounting for the memoised policy caches (mrl_young buckets,
   hazard_dp DP tables). The atomics aggregate across every live policy
   closure; [reset_cache_stats] zeroes them at campaign boundaries so
   consecutive estimator calls don't bleed together. The Ckpt_obs
   counters feed the --metrics snapshot: totals are deterministic for a
   fixed seed because each bucket misses exactly once (under the cache
   mutex) and the number of lookups is fixed by the campaign. *)
type cache_stats = { hits : int; misses : int; size : int }

let stat_hits = Atomic.make 0
let stat_misses = Atomic.make 0
let stat_size = Atomic.make 0
let m_cache_hits = Metrics.counter "policy.cache_hits"
let m_cache_misses = Metrics.counter "policy.cache_misses"

let cache_stats () =
  { hits = Atomic.get stat_hits; misses = Atomic.get stat_misses;
    size = Atomic.get stat_size }

let reset_cache_stats () =
  Atomic.set stat_hits 0;
  Atomic.set stat_misses 0;
  Atomic.set stat_size 0

let note_cache_hit () =
  Atomic.incr stat_hits;
  Metrics.incr m_cache_hits

let note_cache_miss () =
  Atomic.incr stat_misses;
  Atomic.incr stat_size;
  Metrics.incr m_cache_misses

let static schedule ctx = Schedule.decide_of schedule ctx

let checkpoint_all (_ : Sim_run.chain_context) = true
let checkpoint_none (_ : Sim_run.chain_context) = false

let work_threshold ~threshold =
  if not (threshold > 0.0) then
    invalid_arg "Nonmemoryless.work_threshold: threshold must be positive";
  fun (ctx : Sim_run.chain_context) -> ctx.Sim_run.work_since_checkpoint >= threshold

let platform_hazard ~law ~processors age =
  float_of_int processors *. Law.hazard law age

let hazard_young ~law ~processors ~mean_checkpoint =
  if processors <= 0 then invalid_arg "Nonmemoryless.hazard_young: processors must be positive";
  if not (mean_checkpoint > 0.0) then
    invalid_arg "Nonmemoryless.hazard_young: mean_checkpoint must be positive";
  fun (ctx : Sim_run.chain_context) ->
    let age = Float.max ctx.Sim_run.since_last_failure mean_checkpoint in
    let hazard = platform_hazard ~law ~processors age in
    if hazard <= 0.0 then false
    else begin
      let period = Approximations.young_period ~checkpoint:mean_checkpoint ~mtbf:(1.0 /. hazard) in
      ctx.Sim_run.work_since_checkpoint >= period
    end

let mrl_young ~law ~processors ~mean_checkpoint =
  if processors <= 0 then invalid_arg "Nonmemoryless.mrl_young: processors must be positive";
  if not (mean_checkpoint > 0.0) then
    invalid_arg "Nonmemoryless.mrl_young: mean_checkpoint must be positive";
  let mean = Law.mean law in
  (* Quarter-decade age buckets, residual life integrated once each.
     The cache is mutex-protected: the policy closure may be invoked
     concurrently from several domains of the Monte-Carlo pool. *)
  let cache : (int, float) Hashtbl.t =
    Hashtbl.create 16 [@@lint.domain_safe "mutex-held: every access goes through [lock] below"]
  in
  let lock = Mutex.create () in
  let bucket_of age = int_of_float (Float.round (4.0 *. log10 (Float.max age (mean *. 1e-6)))) in
  let residual age =
    let b = bucket_of age in
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt cache b with
        | Some value ->
            note_cache_hit ();
            value
        | None ->
            note_cache_miss ();
            let representative = 10.0 ** (float_of_int b /. 4.0) in
            let value = Law.mean_residual_life law ~elapsed:representative in
            Hashtbl.add cache b value;
            value)
  in
  fun (ctx : Sim_run.chain_context) ->
    let mrl = residual ctx.Sim_run.since_last_failure in
    if mrl <= 0.0 then true
    else begin
      let mtbf = mrl /. float_of_int processors in
      let period = Approximations.young_period ~checkpoint:mean_checkpoint ~mtbf in
      ctx.Sim_run.work_since_checkpoint >= period
    end

let conditional_failure_probability ~law ~processors ~age ~window =
  if age < 0.0 || window < 0.0 then
    invalid_arg "Nonmemoryless.conditional_failure_probability: negative duration";
  let s_age = Law.survival law age in
  if s_age <= 0.0 then 1.0
  else begin
    let ratio = Law.survival law (age +. window) /. s_age in
    1.0 -. (ratio ** float_of_int processors)
  end

let risk_bound ~law ~processors ~problem ~max_risk =
  if not (max_risk > 0.0) then
    invalid_arg "Nonmemoryless.risk_bound: max_risk must be positive";
  let tasks = problem.Chain_problem.tasks in
  fun (ctx : Sim_run.chain_context) ->
    let i = ctx.Sim_run.task_index in
    if i + 1 >= Array.length tasks then false (* final checkpoint is forced anyway *)
    else begin
      let next_work = tasks.(i + 1).Task.work in
      let p_fail =
        conditional_failure_probability ~law ~processors
          ~age:ctx.Sim_run.since_last_failure ~window:next_work
      in
      p_fail > 0.5
      || p_fail *. ctx.Sim_run.work_since_checkpoint > max_risk *. next_work
    end

(* Expected additional time to execute [todo] work and a [checkpoint],
   given [done_work] unsaved work at stake, under rate λ. The recursion
   solved (one level, not a fixed point, because after a failure the
   situation changes to "re-execute everything", which Proposition 1
   prices directly):

     E_rem = e^(−λa)·a + (1 − e^(−λa))·(E_lost(a) + E_rec + E_full)

   with a = todo + checkpoint, E_lost(a) = 1/λ − a/(e^(λa) − 1), E_rec
   the downtime-plus-recovery expectation, and
   E_full = E(T(done_work + todo, checkpoint)) from Proposition 1. *)
let remaining_expected ~lambda ~downtime ~recovery ~done_work ~todo ~checkpoint =
  if not (lambda > 0.0) then
    invalid_arg "Nonmemoryless.remaining_expected: lambda must be positive";
  if done_work < 0.0 || todo < 0.0 || checkpoint < 0.0 || downtime < 0.0 || recovery < 0.0
  then invalid_arg "Nonmemoryless.remaining_expected: negative duration";
  let a = todo +. checkpoint in
  if Float.equal a 0.0 then 0.0
  else begin
    let p_ok = exp (-.lambda *. a) in
    let e_lost = (1.0 /. lambda) -. (a /. Float.expm1 (lambda *. a)) in
    let params =
      Expected_time.make ~downtime ~recovery ~work:(done_work +. todo) ~checkpoint ~lambda
        ()
    in
    let e_rec = Expected_time.expected_recovery params in
    let e_full = Expected_time.expected params in
    (p_ok *. a) +. ((1.0 -. p_ok) *. (e_lost +. e_rec +. e_full))
  end

let hazard_dp ~law ~processors ~problem =
  if processors <= 0 then invalid_arg "Nonmemoryless.hazard_dp: processors must be positive";
  let tasks = problem.Chain_problem.tasks in
  let n = Array.length tasks in
  let downtime = problem.Chain_problem.downtime in
  (* Quarter-decade buckets of the effective rate; one DP table per
     bucket, computed on demand. Mutex-protected for the same reason as
     [mrl_young]'s cache: policies run concurrently under the parallel
     Monte-Carlo driver. *)
  let tables : (int, float array) Hashtbl.t =
    Hashtbl.create 16 [@@lint.domain_safe "mutex-held: every access goes through [lock] below"]
  in
  let lock = Mutex.create () in
  let mean = Law.mean law in
  let bucket_of lambda_eff = int_of_float (Float.round (4.0 *. log10 lambda_eff)) in
  let lambda_of_bucket b = 10.0 ** (float_of_int b /. 4.0) in
  let table lambda_eff =
    let b = bucket_of lambda_eff in
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt tables b with
        | Some t ->
            note_cache_hit ();
            t
        | None ->
            note_cache_miss ();
            let t =
              Chain_dp.dp_values (Chain_problem.with_lambda problem (lambda_of_bucket b))
            in
            Hashtbl.add tables b t;
            t)
  in
  fun (ctx : Sim_run.chain_context) ->
    let i = ctx.Sim_run.task_index in
    if i + 1 >= n then false (* the mandatory final checkpoint follows anyway *)
    else begin
      let age = Float.max ctx.Sim_run.since_last_failure (mean *. 1e-6) in
      let lambda_eff =
        Float.min 1e9 (Float.max 1e-12 (platform_hazard ~law ~processors age))
      in
      let values = table lambda_eff in
      let lambda_rep = lambda_of_bucket (bucket_of lambda_eff) in
      let unsaved = ctx.Sim_run.work_since_checkpoint in
      let recovery =
        if ctx.Sim_run.last_checkpoint < 0 then problem.Chain_problem.initial_recovery
        else tasks.(ctx.Sim_run.last_checkpoint).Task.recovery_cost
      in
      let checkpoint_now =
        remaining_expected ~lambda:lambda_rep ~downtime ~recovery ~done_work:unsaved
          ~todo:0.0 ~checkpoint:tasks.(i).Task.checkpoint_cost
        +. values.(i + 1)
      in
      let continue_one_more =
        remaining_expected ~lambda:lambda_rep ~downtime ~recovery ~done_work:unsaved
          ~todo:tasks.(i + 1).Task.work ~checkpoint:tasks.(i + 1).Task.checkpoint_cost
        +. values.(i + 2)
      in
      checkpoint_now <= continue_one_more
    end

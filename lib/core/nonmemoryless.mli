(** The third Section 6 extension: checkpoint policies for chains when
    failures are {e not} Exponential (Weibull, log-normal, ...).

    No closed-form expectation exists, because the time elapsed since
    the last failure now matters. The policies below are decision
    functions for the policy-driven simulator
    ({!Ckpt_sim.Sim_run.run_chain_policy}); the history-aware ones read
    the processor age from the simulation context and adapt, in the
    spirit of the greedy and dynamic-programming heuristics the paper
    points to (Bouguerra-Trystram-Wagner; Bougeret et al.). *)

type policy = Ckpt_sim.Sim_run.chain_context -> bool
(** All policies built here are thread-safe: they may be invoked
    concurrently from several domains of the parallel Monte-Carlo
    driver (the memoised ones protect their caches with a mutex). *)

type cache_stats = {
  hits : int;  (** Lookups served from a memoised bucket. *)
  misses : int;  (** Lookups that computed and inserted a bucket. *)
  size : int;  (** Entries inserted since the last reset. *)
}

val cache_stats : unit -> cache_stats
(** Aggregate statistics of the memoised policy caches ({!mrl_young}'s
    residual-life buckets and {!hazard_dp}'s per-bucket DP tables),
    summed across every policy created since the last reset. Also
    exported as the [policy.cache_hits] / [policy.cache_misses]
    observability counters. *)

val reset_cache_stats : unit -> unit
(** Zero the counters. Call between estimation campaigns so metrics
    from consecutive estimator calls don't bleed together (the
    experiment harness does this before each campaign). *)

val static : Schedule.t -> policy
(** Replay a fixed placement — e.g. the Exponential-optimal DP schedule
    computed with λ = 1/MTBF, the natural memoryless baseline. *)

val checkpoint_all : policy
val checkpoint_none : policy
(** Never checkpoint before the (mandatory) final one. *)

val work_threshold : threshold:float -> policy
(** Checkpoint once the unsaved work reaches [threshold] (> 0). *)

val hazard_young :
  law:Ckpt_dist.Law.t -> processors:int -> mean_checkpoint:float -> policy
(** Age-adaptive Young policy: at each decision the platform hazard rate
    h(age) = p·hazard(law, age) defines a local "effective MTBF"
    1/h(age), and the task is checkpointed when the unsaved work exceeds
    Young's period sqrt(2·C/h(age)). With decreasing-hazard laws
    (Weibull shape < 1) the policy checkpoints aggressively right after
    a failure and relaxes as the platform stays up. The age is clamped
    to be at least [mean_checkpoint] to keep the hazard finite at 0. *)

val mrl_young :
  law:Ckpt_dist.Law.t -> processors:int -> mean_checkpoint:float -> policy
(** Mean-residual-life variant of {!hazard_young}: the local "effective
    MTBF" is E[X − age | X > age]/p instead of the instantaneous 1/(p·h(age)).
    Smoother than the hazard at small ages for decreasing-hazard laws.
    Ages are bucketed on a logarithmic grid and the (numerically
    integrated) residual life cached per bucket. *)

val risk_bound :
  law:Ckpt_dist.Law.t -> processors:int -> problem:Chain_problem.t -> max_risk:float ->
  policy
(** Greedy "maximise work before the next failure" flavour: checkpoint
    as soon as the conditional probability (given the current age) of a
    failure striking before the next task completes, multiplied by the
    unsaved work at stake, exceeds [max_risk] times the next task's
    work. Falls back to checkpointing when the unsaved work is at risk
    with probability above 50%. *)

val conditional_failure_probability :
  law:Ckpt_dist.Law.t -> processors:int -> age:float -> window:float -> float
(** P(a platform failure strikes within [window] | no failure for
    [age]): 1 − (S(age+window)/S(age))^p for i.i.d. processors of
    survival S (under the approximation that every processor carries
    the same age — exact after a rejuvenating failure and at start). *)

val remaining_expected :
  lambda:float -> downtime:float -> recovery:float -> done_work:float ->
  todo:float -> checkpoint:float -> float
(** Memoryless helper for lookahead policies: the expected additional
    time to finish [todo] work plus its [checkpoint], when [done_work]
    unsaved work is at stake (a failure forces its re-execution), under
    rate [lambda]. Equals Proposition 1 applied to
    W = done_work + todo minus the (sunk) expected progress credit; see
    the implementation for the exact recursion solved. *)

val hazard_dp :
  law:Ckpt_dist.Law.t -> processors:int -> problem:Chain_problem.t -> policy
(** Dynamic-programming heuristic (à la Bougeret et al.): at each
    decision point, freeze the platform hazard at its current value
    λ_eff = p·h(age), and compare one-step lookaheads under Proposition
    1 — (a) checkpoint now, then follow the λ_eff-optimal DP for the
    remaining chain, versus (b) run the next task first. λ_eff is
    bucketed on a logarithmic grid and DP value tables are cached per
    bucket, keeping each decision O(1) after the first in its bucket. *)

module Task = Ckpt_dag.Task

type t = {
  tasks : Task.t array;
  lambda : float;
  downtime : float;
  initial_recovery : float;
  prefix_work : float array;
  kernel : Segment_cost.t;
}

let build ~downtime ~initial_recovery ~lambda tasks =
  if Array.length tasks = 0 then invalid_arg "Chain_problem: empty chain";
  if not (lambda > 0.0) then invalid_arg "Chain_problem: lambda must be positive";
  if downtime < 0.0 then invalid_arg "Chain_problem: downtime must be non-negative";
  if initial_recovery < 0.0 then
    invalid_arg "Chain_problem: initial_recovery must be non-negative";
  let n = Array.length tasks in
  let prefix_work = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix_work.(i + 1) <- prefix_work.(i) +. tasks.(i).Task.work
  done;
  (* Task costs are validated by Task.make (non-negative), λ/D/R0 just
     above — the kernel's no-validation contract holds. *)
  let kernel =
    Segment_cost.create ~lambda ~downtime ~prefix_work
      ~checkpoint_costs:(Array.map (fun task -> task.Task.checkpoint_cost) tasks)
      ~recovery_costs:
        (Array.init n (fun i ->
             if i = 0 then initial_recovery else tasks.(i - 1).Task.recovery_cost))
  in
  { tasks; lambda; downtime; initial_recovery; prefix_work; kernel }

let make ?(downtime = 0.0) ?(initial_recovery = 0.0) ~lambda task_list =
  let tasks = Array.of_list (List.mapi (fun i task -> Task.with_id task i) task_list) in
  build ~downtime ~initial_recovery ~lambda tasks

let of_dag ?downtime ?initial_recovery ~lambda dag =
  match Ckpt_dag.Dag.is_chain dag with
  | None -> invalid_arg "Chain_problem.of_dag: DAG is not a linear chain"
  | Some chain_tasks -> make ?downtime ?initial_recovery ~lambda chain_tasks

let uniform ?(downtime = 0.0) ?initial_recovery ~lambda ~checkpoint ~recovery works =
  let initial_recovery =
    match initial_recovery with Some r0 -> r0 | None -> recovery
  in
  let tasks =
    List.mapi
      (fun i work ->
        Task.make ~id:i ~work ~checkpoint_cost:checkpoint ~recovery_cost:recovery ())
      works
  in
  make ~downtime ~initial_recovery ~lambda tasks

let size t = Array.length t.tasks
let total_work t = t.prefix_work.(size t)

let segment_work t ~first ~last =
  if first < 0 || last >= size t || first > last then
    invalid_arg "Chain_problem.segment_work: bad segment bounds";
  t.prefix_work.(last + 1) -. t.prefix_work.(first)

let recovery_before t x =
  if x < 0 || x >= size t then invalid_arg "Chain_problem.recovery_before: bad index";
  if x = 0 then t.initial_recovery else t.tasks.(x - 1).Task.recovery_cost

let kernel t = t.kernel

let segment_expected t ~first ~last =
  if first < 0 || last >= size t || first > last then
    invalid_arg "Chain_problem.segment_expected: bad segment bounds";
  Segment_cost.cost t.kernel ~first ~last

let with_lambda t lambda =
  build ~downtime:t.downtime ~initial_recovery:t.initial_recovery ~lambda t.tasks

let pp fmt t =
  Format.fprintf fmt "Chain(n=%d, W=%g, lambda=%g, D=%g, R0=%g)" (size t) (total_work t)
    t.lambda t.downtime t.initial_recovery

(** Proposition 1 of the paper: the exact expected time to execute a
    work of duration [W] followed by a checkpoint of duration [C] under
    Exponential(λ) failures, with downtime [D] and recovery [R]
    (failures can strike during recovery but not during downtime):

    {v E(T(W,C,D,R,λ)) = e^(λR) (1/λ + D) (e^(λ(W+C)) − 1) v}

    plus the intermediate quantities of its proof ([E(T_lost)],
    [E(T_rec)]) and derived metrics. All functions require λ > 0 and
    non-negative durations ([W + C > 0] where noted) and raise
    [Invalid_argument] otherwise. *)

type params = {
  work : float;  (** W >= 0 *)
  checkpoint : float;  (** C >= 0 *)
  downtime : float;  (** D >= 0 *)
  recovery : float;  (** R >= 0 *)
  lambda : float;  (** λ > 0 *)
}

val make :
  ?downtime:float -> ?recovery:float -> work:float -> checkpoint:float -> lambda:float ->
  unit -> params
(** [downtime] and [recovery] default to 0. *)

val expected : params -> float
(** The closed form of Proposition 1 (Equation 6). Computed with
    [expm1] so it stays accurate in the λ(W+C) ≪ 1 regime typical of
    HPC platforms. *)

val expected_v : work:float -> checkpoint:float -> downtime:float -> recovery:float ->
  lambda:float -> float
(** Unpacked variant of {!expected}. *)

val expected_unchecked : work:float -> checkpoint:float -> downtime:float ->
  recovery:float -> lambda:float -> float
(** Same value as {!expected_v}, but with no argument validation and no
    intermediate [params] record — the hot-path entry point for callers
    that established λ > 0 and non-negative durations once at
    construction time (e.g. [Chain_problem.build], whose dynamic
    programs evaluate this formula O(n²) times per solve). Behaviour on
    invalid arguments is unspecified; everything in this module other
    than this function validates. *)

val expected_lost : params -> float
(** E(T_lost) (Equation 4): expected time wasted in an attempt, given
    that a failure strikes within the next W + C units of time:
    1/λ − (W+C)/(e^(λ(W+C)) − 1). Requires W + C > 0. *)

val expected_recovery : params -> float
(** E(T_rec) (Equation 5): expected downtime-plus-recovery duration,
    accounting for failures during recovery: D·e^(λR) + (e^(λR) − 1)/λ. *)

val expected_failures : params -> float
(** Expected number of failures before the work and its checkpoint
    complete: (e^(λ(W+C)) − 1)·e^(λR) (work-phase failures are
    geometric, and each one costs a further e^(λR) − 1 recovery-phase
    failures on average). *)

val success_probability : params -> float
(** Probability e^(−λ(W+C)) that a single attempt completes without
    failure. *)

val overhead_ratio : params -> float
(** E(T)/W − 1: fractional overhead versus the failure-free,
    checkpoint-free execution. Requires W > 0. *)

val failure_free_time : params -> float
(** W + C, the λ → 0 limit of {!expected}. *)

type breakdown = {
  useful : float;  (** W — productive computation. *)
  checkpoint : float;  (** C — the successful checkpoint. *)
  lost : float;  (** Work and checkpoint time destroyed by failures. *)
  restore : float;  (** Downtime + recovery time (including failed recoveries). *)
}

val breakdown : params -> breakdown
(** Decomposition of the expectation along Equation 3 of the proof:
    E(T) = W + C + (e^(λ(W+C)) − 1)·(E(T_lost) + E(T_rec)), the third
    factor split into its lost-work and restore components. The four
    fields sum to {!expected} (validated in the tests); their ratios are
    the waste breakdown platform operators reason about. *)

(** {1 Second-order statistics}

    The paper stops at the expectation; the same recursive technique
    (condition on the first attempt, exploit memorylessness) yields the
    full second moment in closed form, which the library exposes because
    makespan {e variance} is what tail-latency planning needs. Writing
    a = W + C, q = e^(−λa), and L = (failure time | failure < a):

    E(T²) = a² + ((1−q)/q)·(E(L²) + E(T_rec²)
            + 2(E(L)E(T_rec) + (E(L) + E(T_rec))·E(T)))

    with E(L²) = (2/λ² − e^(−λa)(a² + 2a/λ + 2/λ²)) / (1 − e^(−λa)),
    and E(T_rec²) obtained by the same conditioning applied to the
    downtime-plus-recovery process. All identities are validated against
    simulation in the test suite. *)

val second_moment : params -> float
(** E(T²). Requires W + C > 0. *)

val variance : params -> float
(** Var(T) = E(T²) − E(T)². Tends to 0 as λ → 0. *)

val stddev : params -> float
(** Square root of {!variance}. *)


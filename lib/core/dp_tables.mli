(** Structure-of-arrays DP tables on [Bigarray] float64/int, shared by
    every chain solver ({!Chain_dp} and {!Moldable_chain}).

    Million-task DP tables on boxed OCaml values are hostile to both
    the allocator and the cache: a [(float * int) array array] stores
    pointers to heap blocks, every read chases them, and the GC scans
    the lot on every major slice. The solvers instead keep one flat
    off-heap [float64] array per field (value, best) and one flat [int]
    array per field (choice), in C layout — contiguous, unboxed,
    invisible to the GC — and index them directly.

    Accessors here are {e unchecked} ([Bigarray.Array1.unsafe_get]):
    they exist for DP inner loops whose loop structure already
    establishes the bounds. Out-of-range indices are undefined
    behaviour; use them only under that discipline.

    Tables are created per solve and must stay function-local (or be
    annotated under the [unguarded-global-mutable] lint rule, which
    flags top-level Bigarray creation in [lib/] like any other shared
    mutable state). *)

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val floats : ?init:float -> int -> floats
(** [floats n] is a fresh length-[n] float64 table, filled with [init]
    (default [0.0]). Raises [Invalid_argument] if [n < 0]. *)

val ints : ?init:int -> int -> ints
(** [ints n] is a fresh length-[n] int table filled with [init]
    (default [0]). Raises [Invalid_argument] if [n < 0]. *)

val fget : floats -> int -> float
(** Unchecked read. *)

val fset : floats -> int -> float -> unit
(** Unchecked write. *)

val iget : ints -> int -> int
(** Unchecked read. *)

val iset : ints -> int -> int -> unit
(** Unchecked write. *)

val to_float_array : floats -> float array
(** Checked copy into a regular [float array] (for APIs that return
    one). *)

(** Exact expectations for {e arbitrary} failure laws under the
    {b full-rejuvenation assumption} — the unstated hypothesis the paper
    identifies in Bouguerra et al. [12] ("all processors are
    rejuvenated after each failure and after each checkpoint").

    If every failure resets the platform's failure clock, segments are
    renewal processes and the expected time to push a window of length
    a = W + C through satisfies the renewal equation

    {v E = ( S(a)·a + E[min(X,a)] − a·S(a) + F(a)·(D + E_rec) ) / S(a) v}

    (condition on the first failure X; a failed attempt costs the time
    to the failure plus downtime plus a recovery that obeys the same
    equation with a = R). The assumption is taken at full strength: the
    platform is fresh at the start of {e every} phase (each retry, each
    recovery attempt, each segment). For Exponential laws rejuvenation
    is invisible (memorylessness) and these formulas reduce {e exactly}
    to Proposition 1 — a cross-check in the test suite; for general
    laws they coincide with the rejuvenate-on-failure simulation when
    D = R = 0 (phases then start exactly at failure instants) and are
    biased otherwise — pessimistic for decreasing-hazard laws.

    Because segments renew independently under the assumption, the
    Proposition 3 dynamic program remains valid with this segment cost,
    giving an "optimal" general-law placement — optimal only in the
    assumed world. Experiment E17 measures how wrong the assumption is:
    it simulates those placements without rejuvenation (processors keep
    their ages) and reports the bias, quantifying the paper's criticism. *)

val segment_expected :
  law:Ckpt_dist.Law.t -> downtime:float -> recovery:float -> work:float ->
  checkpoint:float -> float
(** Expected time to execute [work] + [checkpoint] under the
    full-rejuvenation renewal model. Requires work + checkpoint > 0. *)

type solution = {
  expected_makespan : float;  (** Under the rejuvenation assumption. *)
  placement : bool array;  (** Checkpoint after task i; last always true. *)
}

val evaluate :
  law:Ckpt_dist.Law.t -> downtime:float -> initial_recovery:float ->
  Ckpt_dag.Task.t array -> bool array -> float
(** Expected makespan of a given placement (assumption world). *)

val solve :
  law:Ckpt_dist.Law.t -> downtime:float -> initial_recovery:float ->
  Ckpt_dag.Task.t array -> solution
(** The O(n²) placement DP with the renewal segment cost. *)

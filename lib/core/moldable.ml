type workload = Perfectly_parallel | Amdahl of float | Numerical_kernel of float

type overhead = Proportional of float | Constant of float

type scenario = {
  total_work : float;
  workload : workload;
  overhead : overhead;
  proc_rate : float;
  downtime : float;
}

let scenario ?(downtime = 0.0) ~total_work ~workload ~overhead ~proc_rate () =
  if not (total_work > 0.0) then invalid_arg "Moldable.scenario: total_work must be positive";
  if not (proc_rate > 0.0) then invalid_arg "Moldable.scenario: proc_rate must be positive";
  if downtime < 0.0 then invalid_arg "Moldable.scenario: downtime must be non-negative";
  (match workload with
  | Perfectly_parallel -> ()
  | Amdahl gamma ->
      if not (gamma >= 0.0 && gamma < 1.0) then
        invalid_arg "Moldable.scenario: Amdahl gamma must lie in [0,1)"
  | Numerical_kernel gamma ->
      if not (gamma > 0.0) then
        invalid_arg "Moldable.scenario: kernel gamma must be positive");
  (match overhead with
  | Proportional alpha_v | Constant alpha_v ->
      if not (alpha_v > 0.0) then
        invalid_arg "Moldable.scenario: checkpoint volume must be positive");
  { total_work; workload; overhead; proc_rate; downtime }

let check_p p = if p < 1 then invalid_arg "Moldable: p must be >= 1"

let work_of ~workload ~total_work ~p =
  check_p p;
  let pf = float_of_int p in
  match workload with
  | Perfectly_parallel -> total_work /. pf
  | Amdahl gamma -> ((1.0 -. gamma) *. total_work /. pf) +. (gamma *. total_work)
  | Numerical_kernel gamma ->
      (total_work /. pf) +. (gamma *. (total_work ** (2.0 /. 3.0)) /. sqrt pf)

let cost_of overhead ~p =
  check_p p;
  match overhead with
  | Proportional alpha_v -> alpha_v /. float_of_int p
  | Constant alpha_v -> alpha_v

let work t ~p = work_of ~workload:t.workload ~total_work:t.total_work ~p
let checkpoint_cost t ~p = cost_of t.overhead ~p

let lambda t ~p =
  check_p p;
  float_of_int p *. t.proc_rate

let expected_time t ~p =
  let c = checkpoint_cost t ~p in
  Approximations.optimal_divisible ~total_work:(work t ~p) ~checkpoint:c
    ~downtime:t.downtime ~recovery:c ~lambda:(lambda t ~p)

let sweep t ~ps = List.map (fun p -> (p, expected_time t ~p)) ps

let optimal_processors t ~max_p =
  if max_p < 1 then invalid_arg "Moldable.optimal_processors: max_p must be >= 1";
  let best = ref (1, expected_time t ~p:1) in
  for p = 2 to max_p do
    let candidate = expected_time t ~p in
    let _, best_d = !best in
    if candidate.Approximations.expected_total < best_d.Approximations.expected_total then
      best := (p, candidate)
  done;
  !best

let workload_to_string w =
  match w with
  | Perfectly_parallel -> "perfectly-parallel"
  | Amdahl gamma -> Printf.sprintf "Amdahl(gamma=%g)" gamma
  | Numerical_kernel gamma -> Printf.sprintf "kernel(gamma=%g)" gamma

let overhead_to_string o =
  match o with
  | Proportional alpha_v -> Printf.sprintf "proportional(C=%g/p)" alpha_v
  | Constant alpha_v -> Printf.sprintf "constant(C=%g)" alpha_v

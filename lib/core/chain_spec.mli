(** Plain-text description of chain instances, so workloads can be
    version-controlled and fed to the [ckpt-chain] CLI.

    Format (one directive per line, ['#'] starts a comment):
    {v
    lambda 0.01
    downtime 0.5
    initial_recovery 0.0
    task <work> <checkpoint_cost> <recovery_cost> [name]
    task ...
    v}

    [lambda] is mandatory (unless overridden programmatically); the
    other scalars default to 0. Tasks appear in chain order. *)

exception Parse_error of string
(** Carries "file:line: message". *)

val parse_string : ?source:string -> string -> Chain_problem.t
(** Parse a spec from a string. [source] names the input in error
    messages (default ["<string>"]). *)

val parse_file : string -> Chain_problem.t
(** Parse a spec file. *)

val parse_file_with_lambda : ?lambda:float -> string -> Chain_problem.t
(** Like {!parse_file}, with an optional failure-rate override (allows
    specs without a [lambda] line). *)

val to_string : Chain_problem.t -> string
(** Render a problem back to the spec format ({!parse_string} of the
    result round-trips). *)

val save : Chain_problem.t -> string -> unit
(** Write {!to_string} to a file. *)

(** The approximations the paper positions Proposition 1 against
    (Section 3 and Related work): Young's and Daly's checkpoint-period
    estimates, first/second-order expansions of the expected execution
    time, and the Bouguerra et al. formula whose first-attempt recovery
    the paper identifies as inaccurate. Also the optimal divisible-load
    segmentation under the exact formula, used both by the independent-
    task heuristics and by the moldable-task scenarios. *)

val young_period : checkpoint:float -> mtbf:float -> float
(** Young's first-order optimal checkpoint period: sqrt(2·C·μ)
    (Young 1974). Requires C >= 0 and μ > 0. *)

val daly_period : checkpoint:float -> mtbf:float -> float
(** Daly's higher-order period estimate (Daly 2006):
    sqrt(2Cμ)·[1 + (1/3)·sqrt(C/(2μ)) + (1/9)·(C/(2μ))] − C when
    C < 2μ, and μ otherwise. *)

val first_order : Expected_time.params -> float
(** First-order (in λ) expansion of the exact expected time:
    (W+C)·(1 + λ·(R + D + (W+C)/2)). This is the accuracy a
    Young-style analysis attains. *)

val second_order : Expected_time.params -> float
(** Second-order expansion, the accuracy of Daly-style analyses. *)

val bouguerra : Expected_time.params -> float
(** The formula of Bouguerra et al. (2010), in which a recovery
    precedes {e every} attempt, including the first:
    (1/λ + D)·(e^(λ(R+W+C)) − 1). Exceeds the exact value by
    (1/λ + D)·(e^(λR) − 1); coincides with it when R = 0. *)

type divisible = {
  chunks : int;  (** Optimal number m of equal chunks. *)
  chunk_work : float;  (** W_total / m. *)
  expected_total : float;  (** m · E(T(W/m, C, D, R, λ)). *)
}

val expected_divisible :
  total_work:float -> chunks:int -> checkpoint:float -> downtime:float -> recovery:float ->
  lambda:float -> float
(** Expected total time when a divisible load is cut into [chunks] equal
    pieces, each followed by a checkpoint (every piece also pays the
    recovery exponent, as in the paper's Proposition 2 analysis). *)

val optimal_divisible :
  total_work:float -> checkpoint:float -> downtime:float -> recovery:float ->
  lambda:float -> divisible
(** Exact integer minimisation of {!expected_divisible} over the number
    of chunks. The continuous relaxation m ↦ m(e^(λ(W/m+C)) − 1) is
    convex (shown in the Proposition 2 proof), so the optimum is found
    by bisection on the stationarity condition
    (1 − λW/m)·e^(λ(W/m+C)) = 1 followed by a floor/ceil check.
    When [checkpoint = 0] the continuous optimum is unbounded (overhead
    vanishes as m → ∞); a large finite segmentation is returned. *)

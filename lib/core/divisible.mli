(** Divisible (periodic) checkpointing — the Young/Daly line of related
    work the paper builds on ([22], [7], [23]): a load W_total that can
    be cut anywhere, checkpointed every τ units of work.

    Everything here is exact under Proposition 1 (per chunk), making the
    module the bridge between the classical periodic analyses and the
    paper's task-based model: {!Ckpt_core.Approximations.optimal_divisible}
    provides the optimal chunk count; this module adds period-based
    entry points, the waste decomposition, and the sensitivity analysis
    of Jones-Daly-DeBardeleben [23]. *)

type params = {
  total_work : float;  (** W_total > 0. *)
  checkpoint : float;  (** C >= 0. *)
  downtime : float;  (** D >= 0. *)
  recovery : float;  (** R >= 0. *)
  lambda : float;  (** λ > 0. *)
}

val make :
  ?downtime:float -> ?recovery:float -> total_work:float -> checkpoint:float ->
  lambda:float -> unit -> params

val chunks_of_period : params -> tau:float -> int
(** Number of equal chunks implied by a target period τ of work between
    checkpoints: round(W/τ), at least 1. *)

val expected_with_period : params -> tau:float -> float
(** Expected total time when checkpointing every ≈ τ units of work
    (equal chunks, {!chunks_of_period}). *)

val optimal : params -> Approximations.divisible
(** The exact optimum (delegates to {!Approximations.optimal_divisible}). *)

val young : params -> Approximations.divisible
(** The segmentation induced by Young's period, evaluated exactly. *)

val daly : params -> Approximations.divisible
(** Same for Daly's higher-order period. *)

val waste_fraction : params -> chunks:int -> float
(** 1 − W_total / E(total): the fraction of platform time not spent on
    useful work. *)

val breakdown : params -> chunks:int -> Expected_time.breakdown
(** Aggregate waste decomposition across the chunks (fields sum to the
    expected total time). *)

val period_sensitivity : params -> factors:float list -> (float * float) list
(** For each factor f, the pair (f, ratio of the expected time with
    period f·tau_opt to the expected time at tau_opt): the cost of
    running with a mis-estimated period, the question studied in [23].
    Factors must be positive. *)

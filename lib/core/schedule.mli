(** Checkpoint placements on a linear chain and their exact expected
    makespan.

    A placement is a boolean per task: [true] means "checkpoint right
    after this task". Following the paper's model (Algorithm 1 and the
    Proposition 2 accounting), the final task is always checkpointed —
    the application state must be saved for the workflow to be complete. *)

type t = private {
  problem : Chain_problem.t;
  placement : bool array;  (** Length n; last element [true]. *)
}

val make : Chain_problem.t -> bool array -> t
(** Validates the length and the final checkpoint. *)

val of_indices : Chain_problem.t -> int list -> t
(** Checkpoints after the listed (0-based) task indices, plus the
    mandatory final one. *)

val checkpoint_all : Chain_problem.t -> t
(** Checkpoint after every task. *)

val checkpoint_none : Chain_problem.t -> t
(** Only the mandatory final checkpoint. *)

val every_k : Chain_problem.t -> int -> t
(** Checkpoint after every k-th task (k >= 1), plus the final one. *)

val by_work_threshold : Chain_problem.t -> threshold:float -> t
(** Greedy periodic-in-work placement: checkpoint as soon as the work
    accumulated since the last checkpoint reaches [threshold]
    (threshold > 0). With the Young/Daly period as threshold this is
    the classical divisible-load policy lifted to tasks. *)

val young : Chain_problem.t -> t
(** {!by_work_threshold} with Young's period, using the mean checkpoint
    cost of the chain and the platform MTBF 1/λ. *)

val daly : Chain_problem.t -> t
(** {!by_work_threshold} with Daly's higher-order period. *)

val segments : t -> (int * int) list
(** Consecutive segments as (first, last) index pairs, in order. *)

val checkpoint_count : t -> int
(** Number of checkpoints taken (including the final one). *)

val checkpoint_indices : t -> int list
(** 0-based indices of checkpointed tasks, increasing. *)

val expected_makespan : t -> float
(** Exact expectation: sum of Proposition 1 over the segments. *)

val to_sim_segments : t -> Ckpt_sim.Sim_run.segment list
(** Convert for the discrete-event simulator. *)

val decide_of : t -> Ckpt_sim.Sim_run.chain_context -> bool
(** Static decision function for the policy-driven simulator. *)

val equal : t -> t -> bool
(** Same placement (problems assumed identical). *)

val to_string : t -> string
(** E.g. ["[T1 T2 | T3 | T4 T5 |]"], a ["|"] marking each checkpoint. *)

val pp : Format.formatter -> t -> unit

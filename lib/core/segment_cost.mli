(** Precomputed O(1)-transition kernel for the Proposition 1 segment
    cost over a fixed chain.

    The chain dynamic programs (Proposition 3 and its variants) evaluate

    {v E(first, last) = e^(λ·R_first) (1/λ + D) (e^(λ·(W(first,last) + C_last)) − 1) v}

    once per DP transition — O(n²) times per solve. The exponential
    factors over a fixed chain separate into per-index tables:

    {v eP.(i)  = e^(λ·prefix_work(i))
   eC.(j)  = e^(λ·C_j)
   pre.(i) = e^(λ·R_i) · (1/λ + D)        (R_i = recovery paid by a
                                            segment starting at i) v}

    so a transition cost factors as
    [pre.(first) · (eP.(last+1) · eC.(last) / eP.(first) − 1)] — table
    lookups and multiplications, with no per-call [exp]/[expm1] and no
    allocation (the division is precomputed as a table of
    [e^(−λ·prefix_work)]).

    {1 Accuracy and range guards}

    - {b Small arguments.} When [a = λ·(W + C_last)] is below
      {!small_threshold} the product form cancels catastrophically
      ([e^a − 1] computed as a product of table entries minus 1), so the
      kernel falls back to [expm1 a] for that transition. The threshold
      adapts to the chain: the product form's relative error is
      O(λ·total_span·ε/a), so the cutoff scales with λ·total_span to
      keep the kernel within a 1e-9 relative tolerance of the reference
      evaluation (validated by a property test across the boundary).
    - {b Overflow.} When [λ·(total_work + max C)] exceeds
      {!overflow_cutoff} the tables themselves would lose accuracy or
      overflow, so the kernel abandons the tables wholesale
      ({!uses_tables} is [false]) and every call takes the reference
      [expm1] path. The cutoff is conservative: both paths stay finite
      up to λ·(W+C) ≈ 709 and overflow to [infinity] together beyond
      it. *)

type t

val create :
  lambda:float ->
  downtime:float ->
  prefix_work:float array ->
  checkpoint_costs:float array ->
  recovery_costs:float array ->
  t
(** [create ~lambda ~downtime ~prefix_work ~checkpoint_costs
    ~recovery_costs] builds the tables for a chain of
    [n = Array.length checkpoint_costs] tasks. [prefix_work] has length
    [n + 1] with [prefix_work.(0) = 0]; [recovery_costs.(i)] is the
    recovery paid by a segment starting at task [i] (so index 0 carries
    the initial recovery). Numeric validation (λ > 0, non-negative
    durations, non-decreasing prefix) is the {e caller's} contract —
    [Chain_problem.build] enforces it — only the array shapes are
    checked here, once per chain. O(n) time and space. *)

val size : t -> int
(** Number of tasks [n]. *)

val cost : t -> first:int -> last:int -> float
(** The Proposition 1 expected duration of the segment executing tasks
    [first..last] and checkpointing after [last]. O(1), no allocation,
    no transcendental call on the table path. Bounds are {e not}
    validated — this is the DP inner-loop entry point; the validating
    public API is [Chain_problem.segment_expected]. *)

val growth : t -> first:int -> last:int -> float
(** The failure-growth factor [e^(λ·(W(first,last) + C_last)) − 1]
    alone, without the [pre.(first)] recovery/downtime factor — for
    callers whose recovery cost depends on DP state rather than on
    position (the moldable-chain DP hoists its own
    [e^(λR)·(1/λ + D)] factor). Same guards as {!cost}. *)

val cost_unsafe : t -> first:int -> last:int -> float
(** Exactly {!cost} — same float expression, bit-for-bit — with the
    array bounds checks elided ([Array.unsafe_get]). For DP inner loops
    whose loop structure already establishes
    [0 <= first <= last < size t]; passing anything else is undefined
    behaviour. *)

val growth_unsafe : t -> first:int -> last:int -> float
(** Exactly {!growth} with bounds checks elided; same contract as
    {!cost_unsafe}. *)

val reference_cost : t -> first:int -> last:int -> float
(** The reference evaluation — fresh [exp]/[expm1] per call, the exact
    code path of [Expected_time.expected_unchecked] — used by the
    correctness oracle ([Chain_dp.solve_memoized]) and the
    kernel-agreement property tests. *)

val uses_tables : t -> bool
(** [false] when the overflow guard rejected the tables at build time;
    every transition then takes the reference path. *)

val small_threshold : t -> float
(** The adaptive small-argument cutoff this kernel uses (for tests and
    diagnostics). *)

val overflow_cutoff : float
(** The wholesale-fallback bound on [λ·(total_work + max C)]
    (currently 690, safely below [log max_float] ≈ 709.78). *)

val supports_monotone_dc : t -> bool
(** Whether the divide-and-conquer chain solver may be used on this
    kernel. The transition cost decomposes as
    [c(x, j) = a(x)·E(j) − pre.(x)] with
    [a(x) = pre.(x)·e^(−λ·prefix(x))] and
    [E(j) = e^(λ·(prefix(j+1) + C_j))]; when [a] is non-increasing and
    [E] non-decreasing the DP matrix is inverse-Monge and the optimal
    first-checkpoint index is monotone in the suffix start. Checked
    exactly on the raw durations (it reduces to
    [R_x − R_(x−1) ≤ w_x] and [C_(j+1) − C_j ≥ −w_(j+1)] per index —
    always true for uniform costs, violated only when a checkpoint or
    recovery cost jumps by more than a task weight). Also [false] when
    {!uses_tables} is [false]: in the overflow regime segment costs
    saturate to [infinity] and ties break the monotonicity argument. *)

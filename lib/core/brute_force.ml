let check_size what n max_size =
  if n > max_size then
    invalid_arg
      (Printf.sprintf "Brute_force.%s: instance size %d exceeds the guard %d" what n
         max_size)

let placement_of_mask n mask =
  Array.init n (fun i -> if i = n - 1 then true else mask land (1 lsl i) <> 0)

let chain_all_unsorted problem =
  let n = Chain_problem.size problem in
  List.init
    (1 lsl (n - 1))
    (fun mask ->
      let schedule = Schedule.make problem (placement_of_mask n mask) in
      (schedule, Schedule.expected_makespan schedule))

(* Streams over the 2^(n-1) masks without materializing them: at the
   default guard of 22 tasks the placement list alone would be hundreds
   of megabytes. *)
let chain_best ?(max_size = 22) problem =
  let n = Chain_problem.size problem in
  check_size "chain_best" n max_size;
  let best_cost = ref infinity and best_mask = ref 0 in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let schedule = Schedule.make problem (placement_of_mask n mask) in
    let cost = Schedule.expected_makespan schedule in
    if cost < !best_cost then begin
      best_cost := cost;
      best_mask := mask
    end
  done;
  {
    Chain_dp.expected_makespan = !best_cost;
    schedule = Schedule.make problem (placement_of_mask n !best_mask);
  }

let chain_all problem =
  let n = Chain_problem.size problem in
  (* Tighter guard than [chain_best]: this one materializes every
     placement by contract. *)
  check_size "chain_all" n 18;
  List.sort (fun (_, a) (_, b) -> compare a b) (chain_all_unsorted problem)

let partition_best ?(max_size = 16) ~lambda ~checkpoint ~recovery ~downtime works =
  let n = Array.length works in
  if n = 0 then invalid_arg "Brute_force.partition_best: empty instance";
  check_size "partition_best" n max_size;
  if not (lambda > 0.0) then invalid_arg "Brute_force.partition_best: lambda must be positive";
  let full = (1 lsl n) - 1 in
  (* Work of every subset, by lowest-set-bit recurrence. *)
  let subset_work = Array.make (full + 1) 0.0 in
  for mask = 1 to full do
    let bit = mask land -mask in
    let i =
      (* index of the lowest set bit *)
      let rec find k = if bit = 1 lsl k then k else find (k + 1) in
      find 0
    in
    subset_work.(mask) <- subset_work.(mask lxor bit) +. works.(i)
  done;
  let segment_cost mask =
    Expected_time.expected_v ~work:subset_work.(mask) ~checkpoint ~downtime
      ~recovery ~lambda
  in
  let best = Array.make (full + 1) infinity in
  best.(0) <- 0.0;
  (* best.(s) = optimal cost to execute exactly the tasks of s. Iterate
     all non-empty sub-masks g of s containing s's lowest bit (fixing
     the lowest remaining task in the next segment avoids counting each
     partition multiple times). *)
  for s = 1 to full do
    let low = s land -s in
    let g = ref s in
    while !g <> 0 do
      if !g land low <> 0 then begin
        let candidate = best.(s lxor !g) +. segment_cost !g in
        if candidate < best.(s) then best.(s) <- candidate
      end;
      g := (!g - 1) land s
    done
  done;
  best.(full)

let rec insert_everywhere x l =
  match l with
  | [] -> [ [ x ] ]
  | head :: tail ->
      (x :: l) :: List.map (fun rest -> head :: rest) (insert_everywhere x tail)

let rec permutations l =
  match l with
  | [] -> [ [] ]
  | head :: tail -> List.concat_map (insert_everywhere head) (permutations tail)

let independent_exhaustive ?(max_size = 8) ?(downtime = 0.0) ?(initial_recovery = 0.0)
    ~lambda task_list =
  let n = List.length task_list in
  if n = 0 then invalid_arg "Brute_force.independent_exhaustive: empty instance";
  check_size "independent_exhaustive" n max_size;
  let best = ref None in
  List.iter
    (fun order ->
      let problem = Chain_problem.make ~downtime ~initial_recovery ~lambda order in
      let solution = Chain_dp.solve problem in
      match !best with
      | Some (best_cost, _) when best_cost <= solution.Chain_dp.expected_makespan -> ()
      | _ -> best := Some (solution.Chain_dp.expected_makespan, solution.Chain_dp.schedule))
    (permutations task_list);
  match !best with None -> assert false | Some (cost, schedule) -> (cost, schedule)

(** Group replication combined with checkpointing — the mechanism the
    paper's related work ([16], [29], [30]) positions as complementary
    to rollback-recovery, included here so the trade-off can be
    explored with the same formula machinery.

    Model (the synchronized-round abstraction of the round-based
    analyses in [16]): the platform's p processors are split into g
    groups of p/g; every group executes the same chunk of work
    concurrently. A round — chunk plus checkpoint, at the {e slower}
    per-group speed W(p/g) — succeeds if at least one group survives
    it; otherwise the platform pays downtime + recovery and the round
    restarts. Rounds are independent (Exponential failures), so with
    per-round group-survival probability q = e^(−λ(p/g)·(W+C)):

    {v
    P(round succeeds) = 1 − (1 − q)^g
    E(T) = (W + C)/ps + (D + R)·(1/ps − 1)
    v}

    Replication trades throughput (each group is g× slower on parallel
    work) for a round-success probability that improves exponentially in
    g — profitable only when failures dominate. *)

type config = private {
  total_work : float;  (** Sequential load (> 0). *)
  workload : Moldable.workload;
  checkpoint : Moldable.overhead;  (** Per-group checkpoint cost model. *)
  recovery : Moldable.overhead;
  downtime : float;
  proc_rate : float;  (** λproc > 0. *)
  processors : int;  (** p >= 1. *)
  groups : int;  (** g >= 1, must divide p. *)
}

val config :
  ?workload:Moldable.workload -> ?recovery:Moldable.overhead -> ?downtime:float ->
  total_work:float -> checkpoint:Moldable.overhead -> proc_rate:float ->
  processors:int -> groups:int -> unit -> config
(** [recovery] defaults to the checkpoint model; [workload] to perfectly
    parallel. Raises [Invalid_argument] when [groups] does not divide
    [processors]. *)

val group_size : config -> int
(** p / g. *)

val round_success_probability : config -> chunk_work:float -> float
(** 1 − (1 − q)^g for a chunk of the given (sequential) work. *)

val expected_chunk : config -> chunk_work:float -> float
(** Expected time to get one chunk checkpointed, under the
    synchronized-round model. *)

val expected_total : config -> chunks:int -> float
(** The load cut into equal chunks, each run to completion in rounds. *)

val optimal_chunks : config -> int * float
(** Integer chunk count minimising {!expected_total} (scan around the
    continuous shape; the curve is unimodal in practice). Returns
    (chunks, expected total). *)

val simulate_total :
  config -> chunks:int -> runs:int -> Ckpt_prng.Rng.t -> Ckpt_stats.Welford.t
(** Monte-Carlo of the synchronized-round process (Bernoulli rounds),
    validating the closed form. *)

(** Exact reference solvers by exhaustive search. These are the ground
    truth against which the dynamic program (Proposition 3) and the
    NP-hardness reduction (Proposition 2) are validated. All are
    exponential and guarded by instance-size checks. *)

val chain_best : ?max_size:int -> Chain_problem.t -> Chain_dp.solution
(** Minimum expected makespan over all 2^(n-1) checkpoint placements of
    a chain (the final checkpoint being mandatory). Raises
    [Invalid_argument] beyond [max_size] tasks (default 22). *)

val chain_all : Chain_problem.t -> (Schedule.t * float) list
(** Every placement with its exact expected makespan, sorted by
    increasing expectation. For small chains only (same guard as
    {!chain_best} with the default limit). *)

val partition_best :
  ?max_size:int ->
  lambda:float -> checkpoint:float -> recovery:float -> downtime:float ->
  float array -> float
(** Optimal expected makespan for {e independent} tasks with uniform
    checkpoint/recovery costs (the Proposition 2 setting). Since every
    segment's cost e^(λC)·(1/λ+D)·(e^(λ(T_i+C)) − 1) depends only on
    the {e set} of tasks it contains, the optimum over orderings and
    placements equals the optimum over set partitions, computed here by
    a O(3^n) subset dynamic program. Default [max_size] is 16. *)

val independent_exhaustive :
  ?max_size:int ->
  ?downtime:float -> ?initial_recovery:float -> lambda:float -> Ckpt_dag.Task.t list ->
  float * Schedule.t
(** Fully general independent-task optimum (heterogeneous C_i, R_i):
    enumerate all orderings and, for each, place checkpoints optimally
    with the chain DP. Factorial cost; default [max_size] is 8.
    [initial_recovery] defaults to 0. *)

(** A linear-chain scheduling instance (Section 5 of the paper): tasks
    T1 → … → Tn with weights w_i, per-task checkpoint costs C_i and
    recovery costs R_i, a platform failure rate λ, downtime D, and the
    recovery cost R0 of restarting from the initial state (used when a
    failure strikes before any checkpoint completed). *)

type t = private {
  tasks : Ckpt_dag.Task.t array;  (** In chain order; ids 0 .. n-1. *)
  lambda : float;  (** λ > 0. *)
  downtime : float;  (** D >= 0. *)
  initial_recovery : float;  (** R0 >= 0. *)
  prefix_work : float array;
      (** [prefix_work.(i)] = w_0 + ... + w_(i-1); length n+1. *)
  kernel : Segment_cost.t;
      (** Precomputed O(1)-transition segment-cost tables for this
          chain, built once at construction (see {!Segment_cost}). *)
}

val make :
  ?downtime:float -> ?initial_recovery:float -> lambda:float -> Ckpt_dag.Task.t list -> t
(** Tasks are re-indexed 0..n-1 in list order. The chain must be
    non-empty. [downtime] and [initial_recovery] default to 0. *)

val of_dag :
  ?downtime:float -> ?initial_recovery:float -> lambda:float -> Ckpt_dag.Dag.t -> t
(** Raises [Invalid_argument] if the DAG is not a linear chain. *)

val uniform :
  ?downtime:float -> ?initial_recovery:float ->
  lambda:float -> checkpoint:float -> recovery:float -> float list -> t
(** Constant-cost instance (the Proposition 2 setting): one task per
    weight in [works], all with the same C and R. [initial_recovery]
    defaults to [recovery] here, matching the reduction's accounting
    where every segment pays e^(λC). *)

val size : t -> int
val total_work : t -> float

val segment_work : t -> first:int -> last:int -> float
(** Work of tasks [first..last] inclusive (0-based), in O(1). *)

val recovery_before : t -> int -> float
(** Recovery cost R_(x-1) used by a segment starting at task [x]:
    [initial_recovery] when [x = 0], else R of task [x-1]. *)

val segment_expected : t -> first:int -> last:int -> float
(** Expected duration (Proposition 1) of the segment executing tasks
    [first..last] and checkpointing after task [last]:
    e^(λ·R_(first-1)) (1/λ + D) (e^(λ(w_first+...+w_last+C_last)) − 1).
    Evaluated through the precomputed {!Segment_cost} kernel (within
    1e-9 relative of the direct [Expected_time] evaluation; identical
    in the small-λ(W+C) regime, where the kernel takes the same [expm1]
    path). Validates the bounds; the DP inner loops use {!kernel}
    directly instead, with bounds established once per solve. *)

val kernel : t -> Segment_cost.t
(** The chain's precomputed segment-cost kernel ({!Segment_cost}),
    built once at construction. *)

val with_lambda : t -> float -> t
(** Same chain under a different failure rate (for λ sweeps). *)

val pp : Format.formatter -> t -> unit

(* Precomputed segment-cost kernel (see the mli for the factorization
   and the accuracy guards). All tables are built once per chain; the
   per-transition entry points are straight-line float code. *)

type t = {
  lambda : float;
  downtime : float;
  prefix_work : float array;  (* n+1, raw durations for the reference path *)
  checkpoint_costs : float array;  (* n *)
  recovery_costs : float array;  (* n; index i = recovery of a segment starting at i *)
  lam_prefix : float array;  (* n+1: λ·prefix_work *)
  lam_ckpt : float array;  (* n: λ·C_j *)
  e_prefix : float array;  (* n+1: e^(λ·prefix_work); empty in reference mode *)
  inv_e_prefix : float array;  (* n+1: e^(−λ·prefix_work); empty in reference mode *)
  e_ckpt : float array;  (* n: e^(λ·C_j); empty in reference mode *)
  pre : float array;  (* n: e^(λ·R_i)·(1/λ + D) *)
  tables : bool;
  small_threshold : float;
}

let overflow_cutoff = 690.0

let create ~lambda ~downtime ~prefix_work ~checkpoint_costs ~recovery_costs =
  let n = Array.length checkpoint_costs in
  if n = 0 then invalid_arg "Segment_cost.create: empty chain";
  if Array.length prefix_work <> n + 1 then
    invalid_arg "Segment_cost.create: prefix_work must have length n + 1";
  if Array.length recovery_costs <> n then
    invalid_arg "Segment_cost.create: recovery_costs must have length n";
  let lam_prefix = Array.map (fun w -> lambda *. w) prefix_work in
  let lam_ckpt = Array.map (fun c -> lambda *. c) checkpoint_costs in
  let inv_lambda_plus_d = (1.0 /. lambda) +. downtime in
  let pre = Array.map (fun r -> exp (lambda *. r) *. inv_lambda_plus_d) recovery_costs in
  let max_lam_ckpt = Array.fold_left Float.max 0.0 lam_ckpt in
  let lam_span = lam_prefix.(n) +. max_lam_ckpt in
  let tables = lam_span <= overflow_cutoff in
  (* The product form computes e^a − 1 from three table entries whose
     combined relative error is O(lam_span·ε); dividing by a bounds the
     relative error of the difference, so a cutoff proportional to
     lam_span keeps the kernel within ~1e-10 of the expm1 reference
     (floored at 1e-6 so tiny chains still take the cheap path only
     where it is exact enough). *)
  let small_threshold = Float.max 1e-6 (lam_span *. 1e-5) in
  let e_prefix = if tables then Array.map exp lam_prefix else [||] in
  let inv_e_prefix = if tables then Array.map (fun a -> exp (-.a)) lam_prefix else [||] in
  let e_ckpt = if tables then Array.map exp lam_ckpt else [||] in
  {
    lambda;
    downtime;
    prefix_work;
    checkpoint_costs;
    recovery_costs;
    lam_prefix;
    lam_ckpt;
    e_prefix;
    inv_e_prefix;
    e_ckpt;
    pre;
    tables;
    small_threshold;
  }

let size t = Array.length t.checkpoint_costs
let uses_tables t = t.tables
let small_threshold t = t.small_threshold

let growth t ~first ~last =
  let a = t.lam_prefix.(last + 1) -. t.lam_prefix.(first) +. t.lam_ckpt.(last) in
  if t.tables && a >= t.small_threshold then
    (t.e_prefix.(last + 1) *. t.e_ckpt.(last) *. t.inv_e_prefix.(first)) -. 1.0
  else Float.expm1 a

let cost t ~first ~last = t.pre.(first) *. growth t ~first ~last

(* Unchecked variants for DP inner loops whose loop structure already
   establishes 0 <= first <= last < n. Same float expressions as
   {!growth}/{!cost} — the solvers' bit-for-bit agreement contract
   depends on that — only the bounds checks are elided. *)
let growth_unsafe t ~first ~last =
  let a =
    Array.unsafe_get t.lam_prefix (last + 1)
    -. Array.unsafe_get t.lam_prefix first
    +. Array.unsafe_get t.lam_ckpt last
  in
  if t.tables && a >= t.small_threshold then
    Array.unsafe_get t.e_prefix (last + 1)
    *. Array.unsafe_get t.e_ckpt last
    *. Array.unsafe_get t.inv_e_prefix first
    -. 1.0
  else Float.expm1 a

let cost_unsafe t ~first ~last =
  Array.unsafe_get t.pre first *. growth_unsafe t ~first ~last

let reference_cost t ~first ~last =
  Expected_time.expected_unchecked
    ~work:(t.prefix_work.(last + 1) -. t.prefix_work.(first))
    ~checkpoint:t.checkpoint_costs.(last) ~downtime:t.downtime
    ~recovery:t.recovery_costs.(first) ~lambda:t.lambda

let supports_monotone_dc t =
  t.tables
  &&
  let n = size t in
  let ok = ref true in
  for i = 0 to n - 2 do
    let w_next = t.prefix_work.(i + 2) -. t.prefix_work.(i + 1) in
    (* a(x) non-increasing: R_x − R_(x−1) ≤ w_x, i.e. the recovery table
       may only grow as fast as the work separating two starts. *)
    if t.recovery_costs.(i + 1) -. t.recovery_costs.(i)
       > t.prefix_work.(i + 1) -. t.prefix_work.(i)
    then ok := false;
    (* E(j) non-decreasing: C_(j+1) − C_j ≥ −w_(j+1). *)
    if t.checkpoint_costs.(i + 1) -. t.checkpoint_costs.(i) < -.w_next then ok := false
  done;
  !ok

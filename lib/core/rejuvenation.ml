module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task

(* E_rec: expected downtime-free completion time of a recovery window of
   length r (each failure inside it costs the time to the failure plus
   a downtime, then the recovery restarts on a rejuvenated platform).
   The caller accounts for the downtime D that precedes the first
   recovery attempt. *)
let recovery_expected ~law ~downtime ~recovery =
  if recovery <= 0.0 then 0.0
  else begin
    let s = Law.survival law recovery in
    if s <= 0.0 then infinity
    else begin
      let f = 1.0 -. s in
      let lost = Law.expected_min law ~upto:recovery -. (recovery *. s) in
      ((s *. recovery) +. lost +. (f *. downtime)) /. s
    end
  end

let segment_expected ~law ~downtime ~recovery ~work ~checkpoint =
  let window = work +. checkpoint in
  if not (window > 0.0) then
    invalid_arg "Rejuvenation.segment_expected: W + C must be positive";
  if downtime < 0.0 || recovery < 0.0 then
    invalid_arg "Rejuvenation.segment_expected: negative durations";
  let s = Law.survival law window in
  if s <= 0.0 then infinity
  else begin
    let f = 1.0 -. s in
    let lost = Law.expected_min law ~upto:window -. (window *. s) in
    let e_rec = recovery_expected ~law ~downtime ~recovery in
    ((s *. window) +. lost +. (f *. (downtime +. e_rec))) /. s
  end

type solution = { expected_makespan : float; placement : bool array }

let prefix_work tasks =
  let n = Array.length tasks in
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. tasks.(i).Task.work
  done;
  prefix

let segment_cost ~law ~downtime ~initial_recovery tasks prefix ~first ~last =
  let recovery =
    if first = 0 then initial_recovery else tasks.(first - 1).Task.recovery_cost
  in
  segment_expected ~law ~downtime ~recovery
    ~work:(prefix.(last + 1) -. prefix.(first))
    ~checkpoint:tasks.(last).Task.checkpoint_cost

let evaluate ~law ~downtime ~initial_recovery tasks placement =
  let n = Array.length tasks in
  if Array.length placement <> n || n = 0 || not placement.(n - 1) then
    invalid_arg "Rejuvenation.evaluate: malformed placement";
  let prefix = prefix_work tasks in
  let acc = Ckpt_stats.Kahan.create () in
  let first = ref 0 in
  for i = 0 to n - 1 do
    if placement.(i) then begin
      Ckpt_stats.Kahan.add acc
        (segment_cost ~law ~downtime ~initial_recovery tasks prefix ~first:!first ~last:i);
      first := i + 1
    end
  done;
  Ckpt_stats.Kahan.sum acc

let solve ~law ~downtime ~initial_recovery tasks =
  let n = Array.length tasks in
  if n = 0 then invalid_arg "Rejuvenation.solve: empty chain";
  let prefix = prefix_work tasks in
  let value = Array.make (n + 1) 0.0 in
  let choice = Array.make n 0 in
  for x = n - 1 downto 0 do
    let best = ref infinity and best_j = ref x in
    for j = x to n - 1 do
      let cur =
        segment_cost ~law ~downtime ~initial_recovery tasks prefix ~first:x ~last:j
        +. value.(j + 1)
      in
      if cur < !best then begin
        best := cur;
        best_j := j
      end
    done;
    value.(x) <- !best;
    choice.(x) <- !best_j
  done;
  let placement = Array.make n false in
  let rec mark x =
    if x < n then begin
      let j = choice.(x) in
      placement.(j) <- true;
      mark (j + 1)
    end
  in
  mark 0;
  { expected_makespan = value.(0); placement }

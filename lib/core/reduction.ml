module Rng = Ckpt_prng.Rng

type instance = { items : int array; target : int }

let instance ~items ~target =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 || n mod 3 <> 0 then
    invalid_arg "Reduction.instance: the item count must be a positive multiple of 3";
  if target <= 0 then invalid_arg "Reduction.instance: target must be positive";
  let m = n / 3 in
  let sum = Array.fold_left ( + ) 0 items in
  if sum <> m * target then
    invalid_arg
      (Printf.sprintf "Reduction.instance: items sum to %d, expected m*T = %d" sum
         (m * target));
  Array.iter
    (fun a ->
      (* strict T/4 < a < T/2 in integer arithmetic *)
      if not (4 * a > target && 2 * a < target) then
        invalid_arg
          (Printf.sprintf "Reduction.instance: item %d out of (T/4, T/2) for T = %d" a
             target))
    items;
  { items; target }

let groups_count t = Array.length t.items / 3

let solve_3partition t =
  let n = Array.length t.items in
  let m = n / 3 in
  let used = Array.make n false in
  let groups = ref [] in
  let rec fill_groups groups_done =
    if groups_done = m then true
    else begin
      (* Fix the first unused item as the triple's anchor: any valid
         partition contains a triple with it, so no completeness is
         lost and symmetric permutations are pruned. *)
      let first =
        let rec find i = if used.(i) then find (i + 1) else i in
        find 0
      in
      used.(first) <- true;
      let found = ref false in
      let j = ref (first + 1) in
      while (not !found) && !j < n do
        if (not used.(!j)) && t.items.(first) + t.items.(!j) < t.target then begin
          used.(!j) <- true;
          let k = ref (!j + 1) in
          while (not !found) && !k < n do
            if (not used.(!k))
               && t.items.(first) + t.items.(!j) + t.items.(!k) = t.target
            then begin
              used.(!k) <- true;
              if fill_groups (groups_done + 1) then begin
                groups := [| first; !j; !k |] :: !groups;
                found := true
              end
              else used.(!k) <- false
            end;
            incr k
          done;
          if not !found then used.(!j) <- false
        end;
        incr j
      done;
      if not !found then used.(first) <- false;
      !found
    end
  in
  if fill_groups 0 then Some !groups else None

let random_solvable rng ~m ~target =
  if m <= 0 then invalid_arg "Reduction.random_solvable: m must be positive";
  if target < 20 then invalid_arg "Reduction.random_solvable: target must be >= 20";
  let lo_bound = (target / 4) + 1 in
  (* strict a > T/4 *)
  let draw_triple () =
    let rec attempt () =
      let a_hi = ((target - 1) / 2) in
      (* strict a < T/2 *)
      let a = lo_bound + Rng.int rng (Stdlib.max 1 (a_hi - lo_bound + 1)) in
      (* b must satisfy T/4 < b and c = T-a-b in (T/4, T/2), i.e.
         b < 3T/4 - a and b > T/2 - a (the latter is below T/4). *)
      let b_lo = lo_bound in
      let b_hi =
        let upper = ((3 * target) - (4 * a) - 1) / 4 in
        (* b <= floor((3T - 4a - 1)/4) ensures 4b < 3T - 4a strictly *)
        Stdlib.min ((target - 1) / 2) upper
      in
      if b_hi < b_lo then attempt ()
      else begin
        let b = b_lo + Rng.int rng (b_hi - b_lo + 1) in
        let c = target - a - b in
        if 4 * c > target && 2 * c < target && 2 * b < target then (a, b, c) else attempt ()
      end
    in
    attempt ()
  in
  let items = ref [] in
  for _ = 1 to m do
    let a, b, c = draw_triple () in
    items := a :: b :: c :: !items
  done;
  let arr = Array.of_list !items in
  Rng.shuffle_in_place rng arr;
  instance ~items:(Array.to_list arr) ~target

type scheduling_instance = {
  problem : Independent.t;
  lambda : float;
  cost : float;
  bound : float;
}

let reduce t =
  let target = float_of_int t.target in
  let lambda = 1.0 /. (2.0 *. target) in
  let cost = (log 2.0 -. 0.5) /. lambda in
  let m = float_of_int (groups_count t) in
  let bound =
    m *. (exp (lambda *. cost) /. lambda)
    *. Float.expm1 (lambda *. (target +. cost))
  in
  let works = Array.to_list (Array.map float_of_int t.items) in
  let problem = Independent.uniform ~lambda ~checkpoint:cost ~recovery:cost works in
  { problem; lambda; cost; bound }

let schedule_of_partition t groups =
  let reduced = reduce t in
  let tasks = reduced.problem.Independent.tasks in
  let order =
    List.concat_map (fun triple -> List.map (fun i -> tasks.(i)) (Array.to_list triple))
      groups
  in
  let chain = Independent.chain_of reduced.problem order in
  let indices = List.init (List.length groups) (fun g -> (3 * g) + 2) in
  let schedule = Schedule.of_indices chain indices in
  (schedule, Schedule.expected_makespan schedule)

let optimal_expected t =
  let reduced = reduce t in
  let works = Array.map float_of_int t.items in
  Brute_force.partition_best ~lambda:reduced.lambda ~checkpoint:reduced.cost
    ~recovery:reduced.cost ~downtime:0.0 works

let verify t =
  let reduced = reduce t in
  let optimal = optimal_expected t in
  let within_bound = optimal <= reduced.bound *. (1.0 +. 1e-9) in
  let solvable = solve_3partition t <> None in
  within_bound = solvable

module Task = Ckpt_dag.Task

type t = { problem : Chain_problem.t; placement : bool array }

let make problem placement =
  let n = Chain_problem.size problem in
  if Array.length placement <> n then
    invalid_arg "Schedule.make: placement length differs from chain size";
  if not placement.(n - 1) then
    invalid_arg "Schedule.make: the final task must be checkpointed";
  { problem; placement = Array.copy placement }

let of_indices problem indices =
  let n = Chain_problem.size problem in
  let placement = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Schedule.of_indices: index out of range";
      placement.(i) <- true)
    indices;
  placement.(n - 1) <- true;
  make problem placement

let checkpoint_all problem =
  make problem (Array.make (Chain_problem.size problem) true)

let checkpoint_none problem =
  let placement = Array.make (Chain_problem.size problem) false in
  placement.(Chain_problem.size problem - 1) <- true;
  make problem placement

let every_k problem k =
  if k < 1 then invalid_arg "Schedule.every_k: k must be >= 1";
  let n = Chain_problem.size problem in
  let placement = Array.init n (fun i -> (i + 1) mod k = 0) in
  placement.(n - 1) <- true;
  make problem placement

let by_work_threshold problem ~threshold =
  if not (threshold > 0.0) then
    invalid_arg "Schedule.by_work_threshold: threshold must be positive";
  let n = Chain_problem.size problem in
  let placement = Array.make n false in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Chain_problem.segment_work problem ~first:i ~last:i);
    if !acc >= threshold then begin
      placement.(i) <- true;
      acc := 0.0
    end
  done;
  placement.(n - 1) <- true;
  make problem placement

let mean_checkpoint_cost (problem : Chain_problem.t) =
  let tasks = problem.Chain_problem.tasks in
  Array.fold_left (fun acc task -> acc +. task.Task.checkpoint_cost) 0.0 tasks
  /. float_of_int (Array.length tasks)

let period_schedule problem period_fn =
  let mtbf = 1.0 /. problem.Chain_problem.lambda in
  let checkpoint = mean_checkpoint_cost problem in
  let period = period_fn ~checkpoint ~mtbf in
  if period <= 0.0 then checkpoint_all problem
  else by_work_threshold problem ~threshold:period

let young problem = period_schedule problem Approximations.young_period
let daly problem = period_schedule problem Approximations.daly_period

let segments t =
  let n = Array.length t.placement in
  let rec collect acc first i =
    if i = n then List.rev acc
    else if t.placement.(i) then collect ((first, i) :: acc) (i + 1) (i + 1)
    else collect acc first (i + 1)
  in
  collect [] 0 0

let checkpoint_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.placement

let checkpoint_indices t =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) t.placement;
  List.rev !acc

let expected_makespan t =
  (* Segments come from a placement validated at construction, so the
     per-segment bounds checks are skipped: straight to the kernel. *)
  let kernel = Chain_problem.kernel t.problem in
  let acc = Ckpt_stats.Kahan.create () in
  List.iter
    (fun (first, last) -> Ckpt_stats.Kahan.add acc (Segment_cost.cost kernel ~first ~last))
    (segments t);
  Ckpt_stats.Kahan.sum acc

let to_sim_segments t =
  let tasks = t.problem.Chain_problem.tasks in
  List.map
    (fun (first, last) ->
      Ckpt_sim.Sim_run.segment
        ~work:(Chain_problem.segment_work t.problem ~first ~last)
        ~checkpoint:tasks.(last).Task.checkpoint_cost
        ~recovery:(Chain_problem.recovery_before t.problem first))
    (segments t)

let decide_of t (ctx : Ckpt_sim.Sim_run.chain_context) =
  t.placement.(ctx.Ckpt_sim.Sim_run.task_index)

let equal a b = a.placement = b.placement

let to_string t =
  let tasks = t.problem.Chain_problem.tasks in
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i (task : Task.t) ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf task.Task.name;
      if t.placement.(i) then Buffer.add_string buf " |")
    tasks;
  Buffer.add_char buf ']';
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let young_period ~checkpoint ~mtbf =
  if checkpoint < 0.0 then invalid_arg "Approximations.young_period: negative checkpoint";
  if not (mtbf > 0.0) then invalid_arg "Approximations.young_period: mtbf must be positive";
  sqrt (2.0 *. checkpoint *. mtbf)

let daly_period ~checkpoint ~mtbf =
  if checkpoint < 0.0 then invalid_arg "Approximations.daly_period: negative checkpoint";
  if not (mtbf > 0.0) then invalid_arg "Approximations.daly_period: mtbf must be positive";
  if checkpoint >= 2.0 *. mtbf then mtbf
  else begin
    let ratio = checkpoint /. (2.0 *. mtbf) in
    (sqrt (2.0 *. checkpoint *. mtbf)
     *. (1.0 +. (sqrt ratio /. 3.0) +. (ratio /. 9.0)))
    -. checkpoint
  end

let first_order (p : Expected_time.params) =
  let total = p.work +. p.checkpoint in
  total *. (1.0 +. (p.lambda *. (p.recovery +. p.downtime +. (total /. 2.0))))

let second_order (p : Expected_time.params) =
  let total = p.work +. p.checkpoint in
  let r = p.recovery and d = p.downtime in
  let l1 = r +. d +. (total /. 2.0) in
  let l2 =
    (r *. r /. 2.0) +. (r *. d) +. ((r +. d) *. total /. 2.0) +. (total *. total /. 6.0)
  in
  total *. (1.0 +. (p.lambda *. l1) +. (p.lambda *. p.lambda *. l2))

let bouguerra (p : Expected_time.params) =
  ((1.0 /. p.lambda) +. p.downtime)
  *. Float.expm1 (p.lambda *. (p.recovery +. p.work +. p.checkpoint))

type divisible = { chunks : int; chunk_work : float; expected_total : float }

let expected_divisible ~total_work ~chunks ~checkpoint ~downtime ~recovery ~lambda =
  if chunks <= 0 then invalid_arg "Approximations.expected_divisible: chunks must be positive";
  if not (total_work > 0.0) then
    invalid_arg "Approximations.expected_divisible: total_work must be positive";
  let chunk = total_work /. float_of_int chunks in
  float_of_int chunks
  *. Expected_time.expected_v ~work:chunk ~checkpoint ~downtime ~recovery ~lambda

let optimal_divisible ~total_work ~checkpoint ~downtime ~recovery ~lambda =
  if not (total_work > 0.0) then
    invalid_arg "Approximations.optimal_divisible: total_work must be positive";
  if not (lambda > 0.0) then
    invalid_arg "Approximations.optimal_divisible: lambda must be positive";
  (* Stationarity in the continuous relaxation: writing x = λW/m, the
     condition g'(m) = 0 reads (1 − x)·e^(x + λC) = 1, with a unique
     root in (0, 1) since the left side decreases from e^(λC) >= 1 to 0. *)
  let lc = lambda *. checkpoint in
  let f x = ((1.0 -. x) *. exp (x +. lc)) -. 1.0 in
  let m_cont =
    if f 0.0 <= 0.0 then
      (* λC = 0 and the root degenerates to x = 0: one huge chunk is
         never forced; the minimum is at m = ∞ only when C = 0, where
         overhead decreases monotonically; practically take x -> 0.
         Guard: with C = 0 the optimal m is unbounded in the continuous
         relaxation, but the integer cost is flat as m -> ∞; cap at W·λ
         chunk granularity. *)
      infinity
    else begin
      let lo = ref 0.0 and hi = ref (1.0 -. 1e-15) in
      for _ = 1 to 200 do
        let mid = 0.5 *. (!lo +. !hi) in
        if f mid > 0.0 then lo := mid else hi := mid
      done;
      let x = 0.5 *. (!lo +. !hi) in
      lambda *. total_work /. x
    end
  in
  let eval m = expected_divisible ~total_work ~chunks:m ~checkpoint ~downtime ~recovery ~lambda in
  let candidates =
    if Float.equal m_cont infinity then [ 1; 1024; 65536 ]
    else begin
      let base = int_of_float (Float.floor m_cont) in
      [ Stdlib.max 1 base; Stdlib.max 1 (base + 1) ]
    end
  in
  let best =
    List.fold_left
      (fun acc m ->
        let cost = eval m in
        match acc with
        | Some (_, best_cost) when best_cost <= cost -> acc
        | _ -> Some (m, cost))
      None candidates
  in
  match best with
  | None -> assert false
  | Some (chunks, expected_total) ->
      { chunks; chunk_work = total_work /. float_of_int chunks; expected_total }

module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task

let expected_saved_work ~law (schedule : Schedule.t) =
  let problem = schedule.Schedule.problem in
  let tasks = problem.Chain_problem.tasks in
  let acc = Ckpt_stats.Kahan.create () in
  let elapsed = ref 0.0 in
  List.iter
    (fun (first, last) ->
      let work = Chain_problem.segment_work problem ~first ~last in
      elapsed := !elapsed +. work +. tasks.(last).Task.checkpoint_cost;
      Ckpt_stats.Kahan.add acc (work *. Law.survival law !elapsed))
    (Schedule.segments schedule);
  Ckpt_stats.Kahan.sum acc

let exhaustive_best ?(max_size = 22) ~law problem =
  let n = Chain_problem.size problem in
  if n > max_size then
    invalid_arg
      (Printf.sprintf "Btw.exhaustive_best: instance size %d exceeds the guard %d" n
         max_size);
  let best = ref None in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let placement = Array.init n (fun i -> i = n - 1 || mask land (1 lsl i) <> 0) in
    let schedule = Schedule.make problem placement in
    let value = expected_saved_work ~law schedule in
    match !best with
    | Some (_, best_value) when best_value >= value -> ()
    | _ -> best := Some (schedule, value)
  done;
  match !best with Some result -> result | None -> assert false

let as_int what x =
  if Float.is_integer x && x >= 0.0 && x < 1e9 then int_of_float x
  else
    invalid_arg
      (Printf.sprintf "Btw.pseudo_polynomial_best: %s %g is not a small non-negative integer"
         what x)

let pseudo_polynomial_best ?(max_total = 200_000) ~law problem =
  let n = Chain_problem.size problem in
  let tasks = problem.Chain_problem.tasks in
  let works = Array.map (fun (t : Task.t) -> as_int "work" t.Task.work) tasks in
  let costs =
    Array.map (fun (t : Task.t) -> as_int "checkpoint cost" t.Task.checkpoint_cost) tasks
  in
  let total = Array.fold_left ( + ) 0 works + Array.fold_left ( + ) 0 costs in
  if total > max_total then
    invalid_arg
      (Printf.sprintf "Btw.pseudo_polynomial_best: total duration %d exceeds the guard %d"
         total max_total);
  (* M(x, t) = best additional saved work for tasks x.. starting at
     integer elapsed time t; memoized over the (few) reachable states. *)
  let memo : (int * int, float * int) Hashtbl.t =
    Hashtbl.create 1024 [@@lint.domain_safe "solver-local memo; each call owns it on one domain"]
  in
  let rec solve x t =
    if x = n then (0.0, -1)
    else begin
      match Hashtbl.find_opt memo (x, t) with
      | Some result -> result
      | None ->
          let best = ref neg_infinity and best_j = ref x in
          let segment_work = ref 0 in
          for j = x to n - 1 do
            segment_work := !segment_work + works.(j);
            let finish = t + !segment_work + costs.(j) in
            let saved = float_of_int !segment_work *. Law.survival law (float_of_int finish) in
            let rest, _ = solve (j + 1) finish in
            let value = saved +. rest in
            if value > !best then begin
              best := value;
              best_j := j
            end
          done;
          let result = (!best, !best_j) in
          Hashtbl.add memo (x, t) result;
          result
    end
  in
  let value, _ = solve 0 0 in
  (* Reconstruct the placement by re-walking the memo table. *)
  let placement = Array.make n false in
  let rec mark x t =
    if x < n then begin
      let _, j = solve x t in
      placement.(j) <- true;
      let finish =
        t
        + Array.fold_left ( + ) 0 (Array.sub works x (j - x + 1))
        + costs.(j)
      in
      mark (j + 1) finish
    end
  in
  mark 0 0;
  (Schedule.make problem placement, value)

let greedy ~law problem =
  let n = Chain_problem.size problem in
  let tasks = problem.Chain_problem.tasks in
  let placement = Array.make n false in
  (* One-step lookahead: checkpoint after task i unless folding the next
     task into the running segment yields more survival-weighted work. *)
  let elapsed = ref 0.0 and segment_work = ref 0.0 in
  for i = 0 to n - 2 do
    let w = tasks.(i).Task.work in
    segment_work := !segment_work +. w;
    elapsed := !elapsed +. w;
    let c_i = tasks.(i).Task.checkpoint_cost in
    let w_next = tasks.(i + 1).Task.work in
    let c_next = tasks.(i + 1).Task.checkpoint_cost in
    let checkpoint_now =
      (!segment_work *. Law.survival law (!elapsed +. c_i))
      +. (w_next *. Law.survival law (!elapsed +. c_i +. w_next +. c_next))
    in
    let keep_going =
      (!segment_work +. w_next) *. Law.survival law (!elapsed +. w_next +. c_next)
    in
    if checkpoint_now >= keep_going then begin
      placement.(i) <- true;
      elapsed := !elapsed +. c_i;
      segment_work := 0.0
    end
  done;
  placement.(n - 1) <- true;
  let schedule = Schedule.make problem placement in
  (schedule, expected_saved_work ~law schedule)

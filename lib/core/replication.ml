module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

type config = {
  total_work : float;
  workload : Moldable.workload;
  checkpoint : Moldable.overhead;
  recovery : Moldable.overhead;
  downtime : float;
  proc_rate : float;
  processors : int;
  groups : int;
}

let config ?(workload = Moldable.Perfectly_parallel) ?recovery ?(downtime = 0.0)
    ~total_work ~checkpoint ~proc_rate ~processors ~groups () =
  if not (total_work > 0.0) then invalid_arg "Replication.config: total_work must be positive";
  if not (proc_rate > 0.0) then invalid_arg "Replication.config: proc_rate must be positive";
  if downtime < 0.0 then invalid_arg "Replication.config: negative downtime";
  if processors < 1 || groups < 1 then
    invalid_arg "Replication.config: processors and groups must be >= 1";
  if processors mod groups <> 0 then
    invalid_arg "Replication.config: groups must divide processors";
  let recovery = match recovery with Some r -> r | None -> checkpoint in
  { total_work; workload; checkpoint; recovery; downtime; proc_rate; processors; groups }

let group_size t = t.processors / t.groups

let round_parts t ~chunk_work =
  let p_group = group_size t in
  let work = Moldable.work_of ~workload:t.workload ~total_work:chunk_work ~p:p_group in
  let checkpoint = Moldable.cost_of t.checkpoint ~p:p_group in
  let recovery = Moldable.cost_of t.recovery ~p:p_group in
  let lambda_group = float_of_int p_group *. t.proc_rate in
  (work, checkpoint, recovery, lambda_group)

let round_success_probability t ~chunk_work =
  if not (chunk_work > 0.0) then
    invalid_arg "Replication.round_success_probability: chunk_work must be positive";
  let work, checkpoint, _, lambda_group = round_parts t ~chunk_work in
  let q = exp (-.lambda_group *. (work +. checkpoint)) in
  1.0 -. ((1.0 -. q) ** float_of_int t.groups)

let expected_chunk t ~chunk_work =
  let work, checkpoint, recovery, _ = round_parts t ~chunk_work in
  let ps = round_success_probability t ~chunk_work in
  let retries = (1.0 /. ps) -. 1.0 in
  ((work +. checkpoint) /. ps) +. ((t.downtime +. recovery) *. retries)

let expected_total t ~chunks =
  if chunks < 1 then invalid_arg "Replication.expected_total: chunks must be >= 1";
  float_of_int chunks
  *. expected_chunk t ~chunk_work:(t.total_work /. float_of_int chunks)

let optimal_chunks t =
  (* Unimodal in practice: scan geometrically for a bracket, then walk
     the integers around the best power of two. *)
  let eval m = expected_total t ~chunks:m in
  let best = ref (1, eval 1) in
  let m = ref 2 in
  while !m <= 1_048_576 do
    let v = eval !m in
    if v < snd !best then best := (!m, v);
    m := !m * 2
  done;
  let center, _ = !best in
  let lo = Stdlib.max 1 (center / 2) and hi = center * 2 in
  for k = lo to hi do
    let v = eval k in
    if v < snd !best then best := (k, v)
  done;
  !best

let simulate_total t ~chunks ~runs rng =
  if runs <= 0 then invalid_arg "Replication.simulate_total: runs must be positive";
  let chunk_work = t.total_work /. float_of_int chunks in
  let work, checkpoint, recovery, _ = round_parts t ~chunk_work in
  let ps = round_success_probability t ~chunk_work in
  let acc = Welford.create () in
  for run = 0 to runs - 1 do
    let run_rng = Rng.substream rng (Printf.sprintf "rep-%d" run) in
    let total = ref 0.0 in
    for _ = 1 to chunks do
      let rec round () =
        total := !total +. work +. checkpoint;
        if Rng.float run_rng >= ps then begin
          total := !total +. t.downtime +. recovery;
          round ()
        end
      in
      round ()
    done;
    Welford.add acc !total
  done;
  acc


type t = { law : Law.t; ages : float array }

let fresh ~law ~processors =
  if processors <= 0 then invalid_arg "Superposition.fresh: processors must be positive";
  (match Law.validate law with
  | Error msg -> invalid_arg ("Superposition.fresh: " ^ msg)
  | Ok _ -> ());
  { law; ages = Array.make processors 0.0 }

let aged ~law ~ages =
  if Array.length ages = 0 then invalid_arg "Superposition.aged: no processors";
  Array.iter (fun a -> if a < 0.0 then invalid_arg "Superposition.aged: negative age") ages;
  (match Law.validate law with
  | Error msg -> invalid_arg ("Superposition.aged: " ^ msg)
  | Ok _ -> ());
  { law; ages = Array.copy ages }

let survival t x =
  if x <= 0.0 then 1.0
  else
    Array.fold_left
      (fun acc age ->
        let s_age = Law.survival t.law age in
        if s_age <= 0.0 then 0.0 else acc *. (Law.survival t.law (age +. x) /. s_age))
      1.0 t.ages

let cdf t x = 1.0 -. survival t x

let hazard t x =
  Array.fold_left (fun acc age -> acc +. Law.hazard t.law (age +. x)) 0.0 t.ages

let as_weibull t =
  match t.law with
  | Law.Weibull { shape; scale } when Array.for_all (Float.equal 0.0) t.ages ->
      let p = float_of_int (Array.length t.ages) in
      Some (Law.weibull ~shape ~scale:(scale *. (p ** (-1.0 /. shape))))
  | _ -> None

let mean t =
  match t.law with
  | Law.Exponential { rate } -> 1.0 /. (rate *. float_of_int (Array.length t.ages))
  | _ -> begin
      match as_weibull t with
      | Some law -> Law.mean law
      | None ->
          (* Numeric integration of the survival function over
             geometrically growing panels (cf. Law.mean_residual_life). *)
          let scale = Law.mean t.law /. float_of_int (Array.length t.ages) in
          let simpson f a b n =
            let h = (b -. a) /. float_of_int n in
            let acc = ref (f a +. f b) in
            for i = 1 to n - 1 do
              let weight = if i mod 2 = 1 then 4.0 else 2.0 in
              acc := !acc +. (weight *. f (a +. (float_of_int i *. h)))
            done;
            !acc *. h /. 3.0
          in
          let rec panels acc a width =
            if survival t a < 1e-12 || a > scale *. 1e8 then acc
            else panels (acc +. simpson (survival t) a (a +. width) 128) (a +. width)
                   (2.0 *. width)
          in
          panels 0.0 0.0 (scale /. 8.0)
    end

let quantile t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Superposition.quantile: p must lie in [0,1)";
  if Float.equal p 0.0 then 0.0
  else begin
    (* Bracket then bisect on the survival function. *)
    let target = 1.0 -. p in
    let hi = ref (Law.mean t.law) in
    while survival t !hi > target do
      hi := !hi *. 2.0
    done;
    let lo = ref 0.0 in
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if survival t mid > target then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let sample t rng =
  Array.fold_left
    (fun acc age ->
      Float.min acc (Law.conditional_remaining_sample t.law ~elapsed:age rng))
    infinity t.ages

(** Compact textual law descriptions, shared by the CLI tools:

    - ["exp:<mtbf>"] — Exponential with the given mean;
    - ["weibull:<shape>:<mean>"] — Weibull rescaled to the given mean;
    - ["lognormal:<sigma>:<mean>"] — log-normal with the given sigma and
      mean;
    - ["uniform:<lo>:<hi>"];
    - ["gamma:<shape>:<mean>"]. *)

val parse : string -> (Law.t, string) result
(** Parse a description; [Error] carries a usage message. *)

val parse_exn : string -> Law.t
(** Like {!parse}, raising [Invalid_argument]. *)

val to_spec : Law.t -> string
(** Render a law back to a parsable description (inverse of {!parse} up
    to floating-point formatting). *)

val usage : string
(** One-line summary of the accepted formats, for CLI help/errors. *)

let check_samples name xs =
  if Array.length xs < 2 then invalid_arg (name ^ ": need at least two samples");
  Array.iter (fun x -> if not (x > 0.0) then invalid_arg (name ^ ": samples must be positive")) xs

let exponential xs =
  check_samples "Law_fit.exponential" xs;
  let mean = Ckpt_stats.Kahan.sum_array xs /. float_of_int (Array.length xs) in
  Law.exponential ~rate:(1.0 /. mean)

let weibull xs =
  check_samples "Law_fit.weibull" xs;
  let n = float_of_int (Array.length xs) in
  let mean_log = Ckpt_stats.Kahan.sum_array (Array.map log xs) /. n in
  (* Profile equation: f(k) = Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0,
     strictly increasing in k; bisection is safe. *)
  let f k =
    let sum_xk = ref 0.0 and sum_xk_lnx = ref 0.0 in
    Array.iter
      (fun x ->
        let xk = x ** k in
        sum_xk := !sum_xk +. xk;
        sum_xk_lnx := !sum_xk_lnx +. (xk *. log x))
      xs;
    (!sum_xk_lnx /. !sum_xk) -. (1.0 /. k) -. mean_log
  in
  let scale_for shape =
    (Ckpt_stats.Kahan.sum_array (Array.map (fun x -> x ** shape) xs)
     /. float_of_int (Array.length xs))
    ** (1.0 /. shape)
  in
  let lo = ref 0.01 and hi = ref 50.0 in
  if f !lo > 0.0 then Law.weibull ~shape:!lo ~scale:(scale_for !lo)
  else begin
    while f !hi < 0.0 && !hi < 1e4 do
      hi := !hi *. 2.0
    done;
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid < 0.0 then lo := mid else hi := mid
    done;
    let shape = 0.5 *. (!lo +. !hi) in
    Law.weibull ~shape ~scale:(scale_for shape)
  end

let log_normal xs =
  check_samples "Law_fit.log_normal" xs;
  let logs = Array.map log xs in
  let n = float_of_int (Array.length xs) in
  let mu = Ckpt_stats.Kahan.sum_array logs /. n in
  let var =
    Ckpt_stats.Kahan.sum_array (Array.map (fun l -> (l -. mu) *. (l -. mu)) logs) /. n
  in
  Law.log_normal ~mu ~sigma:(Float.max 1e-9 (sqrt var))

let log_likelihood law xs =
  check_samples "Law_fit.log_likelihood" xs;
  let acc = Ckpt_stats.Kahan.create () in
  let degenerate = ref false in
  Array.iter
    (fun x ->
      let density = Law.pdf law x in
      if density <= 0.0 then degenerate := true else Ckpt_stats.Kahan.add acc (log density))
    xs;
  if !degenerate then neg_infinity else Ckpt_stats.Kahan.sum acc

let best_fit xs =
  check_samples "Law_fit.best_fit" xs;
  let candidates = [ exponential xs; weibull xs; log_normal xs ] in
  let scored = List.map (fun law -> (law, log_likelihood law xs)) candidates in
  List.fold_left
    (fun (best_law, best_ll) (law, ll) ->
      if ll > best_ll then (law, ll) else (best_law, best_ll))
    (List.hd scored) (List.tl scored)

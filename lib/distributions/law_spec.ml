let usage =
  "exp:<mtbf> | weibull:<shape>:<mean> | lognormal:<sigma>:<mean> | uniform:<lo>:<hi> | \
   gamma:<shape>:<mean>"

let number what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not a number: %S (expected %s)" what s usage)

let ( let* ) = Result.bind

let parse spec =
  let guard law = try Ok (law ()) with Invalid_argument msg -> Error msg in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim spec)) with
  | [ "exp"; mtbf ] ->
      let* mtbf = number "exp" mtbf in
      guard (fun () -> Law.exponential ~rate:(1.0 /. mtbf))
  | [ "weibull"; shape; mean ] ->
      let* shape = number "weibull shape" shape in
      let* mean = number "weibull mean" mean in
      guard (fun () -> Law.weibull_of_mean ~shape ~mean)
  | [ "lognormal"; sigma; mean ] ->
      let* sigma = number "lognormal sigma" sigma in
      let* mean = number "lognormal mean" mean in
      guard (fun () -> Law.log_normal_of_mean ~sigma ~mean)
  | [ "uniform"; lo; hi ] ->
      let* lo = number "uniform lo" lo in
      let* hi = number "uniform hi" hi in
      guard (fun () -> Law.uniform ~lo ~hi)
  | [ "deterministic"; v ] ->
      let* v = number "deterministic" v in
      guard (fun () -> Law.deterministic v)
  | [ "gamma"; shape; mean ] ->
      let* shape = number "gamma shape" shape in
      let* mean = number "gamma mean" mean in
      guard (fun () -> Law.gamma ~shape ~scale:(mean /. shape))
  | _ -> Error (Printf.sprintf "cannot parse law %S (expected %s)" spec usage)

let parse_exn spec =
  match parse spec with Ok law -> law | Error msg -> invalid_arg ("Law_spec: " ^ msg)

let to_spec law =
  match law with
  | Law.Exponential { rate } -> Printf.sprintf "exp:%g" (1.0 /. rate)
  | Law.Weibull { shape; _ } -> Printf.sprintf "weibull:%g:%g" shape (Law.mean law)
  | Law.Log_normal { sigma; _ } -> Printf.sprintf "lognormal:%g:%g" sigma (Law.mean law)
  | Law.Uniform { lo; hi } -> Printf.sprintf "uniform:%g:%g" lo hi
  | Law.Gamma { shape; _ } -> Printf.sprintf "gamma:%g:%g" shape (Law.mean law)
  | Law.Deterministic v -> Printf.sprintf "deterministic:%g" v

(** Maximum-likelihood fitting of failure laws to observed inter-arrival
    times — the step a practitioner performs between collecting a
    cluster log ({!Ckpt_failures.Cluster_log}) and scheduling with the
    Section 6 policies. All fitters require at least two positive
    samples and raise [Invalid_argument] otherwise. *)

val exponential : float array -> Law.t
(** MLE: rate = n / Σx. *)

val weibull : float array -> Law.t
(** MLE via the standard one-dimensional profile equation for the shape
    (solved by bisection on k in [0.01, 50]), then the closed-form
    scale. *)

val log_normal : float array -> Law.t
(** MLE: mu and sigma are the mean and (population) standard deviation
    of the log-samples. *)

val log_likelihood : Law.t -> float array -> float
(** Σ log pdf; -infinity if any sample has zero density. *)

val best_fit : float array -> Law.t * float
(** The best of the three families by log-likelihood, with that
    log-likelihood. *)

module Rng = Ckpt_prng.Rng
module Special = Ckpt_stats.Special
module Normal = Ckpt_stats.Normal

type t =
  | Deterministic of float
  | Exponential of { rate : float }
  | Weibull of { shape : float; scale : float }
  | Log_normal of { mu : float; sigma : float }
  | Uniform of { lo : float; hi : float }
  | Gamma of { shape : float; scale : float }

let validate law =
  match law with
  | Deterministic v when v <= 0.0 -> Error "Deterministic: value must be positive"
  | Exponential { rate } when rate <= 0.0 -> Error "Exponential: rate must be positive"
  | Weibull { shape; scale } when shape <= 0.0 || scale <= 0.0 ->
      Error "Weibull: shape and scale must be positive"
  | Log_normal { sigma; _ } when sigma <= 0.0 -> Error "Log_normal: sigma must be positive"
  | Uniform { lo; hi } when not (0.0 <= lo && lo < hi) ->
      Error "Uniform: requires 0 <= lo < hi"
  | Gamma { shape; scale } when shape <= 0.0 || scale <= 0.0 ->
      Error "Gamma: shape and scale must be positive"
  | law -> Ok law

let checked law =
  match validate law with Ok law -> law | Error msg -> invalid_arg ("Law." ^ msg)

let exponential ~rate = checked (Exponential { rate })
let weibull ~shape ~scale = checked (Weibull { shape; scale })
let log_normal ~mu ~sigma = checked (Log_normal { mu; sigma })
let uniform ~lo ~hi = checked (Uniform { lo; hi })
let gamma ~shape ~scale = checked (Gamma { shape; scale })
let deterministic v = checked (Deterministic v)

let gamma_fn x = exp (Special.ln_gamma x)

let weibull_of_mean ~shape ~mean =
  if mean <= 0.0 then invalid_arg "Law.weibull_of_mean: mean must be positive";
  weibull ~shape ~scale:(mean /. gamma_fn (1.0 +. (1.0 /. shape)))

let log_normal_of_mean ~sigma ~mean =
  if mean <= 0.0 then invalid_arg "Law.log_normal_of_mean: mean must be positive";
  log_normal ~mu:(log mean -. (0.5 *. sigma *. sigma)) ~sigma

let mean law =
  match law with
  | Deterministic v -> v
  | Exponential { rate } -> 1.0 /. rate
  | Weibull { shape; scale } -> scale *. gamma_fn (1.0 +. (1.0 /. shape))
  | Log_normal { mu; sigma } -> exp (mu +. (0.5 *. sigma *. sigma))
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Gamma { shape; scale } -> shape *. scale

let variance law =
  match law with
  | Deterministic _ -> 0.0
  | Exponential { rate } -> 1.0 /. (rate *. rate)
  | Weibull { shape; scale } ->
      let g1 = gamma_fn (1.0 +. (1.0 /. shape)) in
      let g2 = gamma_fn (1.0 +. (2.0 /. shape)) in
      scale *. scale *. (g2 -. (g1 *. g1))
  | Log_normal { mu; sigma } ->
      let s2 = sigma *. sigma in
      (exp s2 -. 1.0) *. exp ((2.0 *. mu) +. s2)
  | Uniform { lo; hi } -> (hi -. lo) *. (hi -. lo) /. 12.0
  | Gamma { shape; scale } -> shape *. scale *. scale

let pdf law x =
  match law with
  | Deterministic _ -> 0.0 (* the density is a Dirac mass; callers use [cdf] *)
  | Exponential { rate } -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x)
  | Weibull { shape; scale } ->
      if x < 0.0 then 0.0
      else if Float.equal x 0.0 then
        (if shape < 1.0 then infinity
         else if Float.equal shape 1.0 then 1.0 /. scale
         else 0.0)
      else begin
        let z = x /. scale in
        shape /. scale *. (z ** (shape -. 1.0)) *. exp (-.(z ** shape))
      end
  | Log_normal { mu; sigma } ->
      if x <= 0.0 then 0.0
      else begin
        let z = (log x -. mu) /. sigma in
        exp (-0.5 *. z *. z) /. (x *. sigma *. sqrt (2.0 *. Float.pi))
      end
  | Uniform { lo; hi } -> if x < lo || x >= hi then 0.0 else 1.0 /. (hi -. lo)
  | Gamma { shape; scale } ->
      if x < 0.0 then 0.0
      else if Float.equal x 0.0 then
        (if shape < 1.0 then infinity
         else if Float.equal shape 1.0 then 1.0 /. scale
         else 0.0)
      else
        exp (((shape -. 1.0) *. log (x /. scale)) -. (x /. scale) -. Special.ln_gamma shape)
        /. scale

let cdf law x =
  match law with
  | Deterministic v -> if x >= v then 1.0 else 0.0
  | Exponential { rate } -> if x <= 0.0 then 0.0 else -.Float.expm1 (-.rate *. x)
  | Weibull { shape; scale } ->
      if x <= 0.0 then 0.0 else -.Float.expm1 (-.((x /. scale) ** shape))
  | Log_normal { mu; sigma } ->
      if x <= 0.0 then 0.0 else Normal.cdf ((log x -. mu) /. sigma)
  | Uniform { lo; hi } ->
      if x <= lo then 0.0 else if x >= hi then 1.0 else (x -. lo) /. (hi -. lo)
  | Gamma { shape; scale } -> if x <= 0.0 then 0.0 else Special.gamma_p shape (x /. scale)

let survival law x =
  match law with
  | Deterministic v -> if x >= v then 0.0 else 1.0
  | Exponential { rate } -> if x <= 0.0 then 1.0 else exp (-.rate *. x)
  | Weibull { shape; scale } ->
      if x <= 0.0 then 1.0 else exp (-.((x /. scale) ** shape))
  | Log_normal { mu; sigma } ->
      if x <= 0.0 then 1.0 else Normal.cdf (-.(log x -. mu) /. sigma)
  | Uniform _ | Gamma _ -> 1.0 -. cdf law x

let hazard law x =
  let s = survival law x in
  if Float.equal s 0.0 then infinity else pdf law x /. s

let quantile law p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Law.quantile: p must lie in [0,1)";
  match law with
  | Deterministic v -> v
  | Exponential { rate } -> -.Float.log1p (-.p) /. rate
  | Weibull { shape; scale } -> scale *. ((-.Float.log1p (-.p)) ** (1.0 /. shape))
  | Log_normal { mu; sigma } ->
      if Float.equal p 0.0 then 0.0 else exp (mu +. (sigma *. Normal.quantile p))
  | Uniform { lo; hi } -> lo +. (p *. (hi -. lo))
  | Gamma { shape; scale } ->
      if Float.equal p 0.0 then 0.0
      else begin
        (* Bisection on the regularized incomplete gamma; the bracket is
           grown geometrically from the mean. *)
        let target = p in
        let hi = ref (Float.max 1.0 (shape *. 2.0)) in
        while Special.gamma_p shape !hi < target do
          hi := !hi *. 2.0
        done;
        let lo = ref 0.0 in
        for _ = 1 to 200 do
          let mid = 0.5 *. (!lo +. !hi) in
          if Special.gamma_p shape mid < target then lo := mid else hi := mid
        done;
        scale *. 0.5 *. (!lo +. !hi)
      end

let box_muller rng =
  let u1 = Rng.float_pos rng in
  let u2 = Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Marsaglia & Tsang (2000) squeeze method, shape >= 1. *)
let rec sample_gamma_mt rng shape =
  let d = shape -. (1.0 /. 3.0) in
  let c = 1.0 /. sqrt (9.0 *. d) in
  let rec attempt () =
    let x = box_muller rng in
    let v = 1.0 +. (c *. x) in
    if v <= 0.0 then attempt ()
    else begin
      let v3 = v *. v *. v in
      let u = Rng.float_pos rng in
      let x2 = x *. x in
      if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v3
      else if log u < (0.5 *. x2) +. (d *. (1.0 -. v3 +. log v3)) then d *. v3
      else attempt ()
    end
  in
  attempt ()

and sample_gamma rng ~shape ~scale =
  if shape >= 1.0 then scale *. sample_gamma_mt rng shape
  else begin
    (* Boost for shape < 1: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let g = sample_gamma_mt rng (shape +. 1.0) in
    let u = Rng.float_pos rng in
    scale *. g *. (u ** (1.0 /. shape))
  end

let sample law rng =
  match law with
  | Deterministic v -> v
  | Exponential { rate } -> -.log (Rng.float_pos rng) /. rate
  | Weibull { shape; scale } -> scale *. ((-.log (Rng.float_pos rng)) ** (1.0 /. shape))
  | Log_normal { mu; sigma } -> exp (mu +. (sigma *. box_muller rng))
  | Uniform { lo; hi } -> Rng.float_range rng lo hi
  | Gamma { shape; scale } -> sample_gamma rng ~shape ~scale

let conditional_remaining_sample law ~elapsed rng =
  if elapsed < 0.0 then invalid_arg "Law.conditional_remaining_sample: negative elapsed";
  match law with
  | Exponential _ -> sample law rng (* memoryless *)
  | Deterministic v ->
      if elapsed >= v then 0.0 else v -. elapsed
  | law ->
      (* Inverse-CDF sampling of the residual law:
         x = F^{-1}(F(t0) + u (1 - F(t0))) - t0. *)
      let f0 = cdf law elapsed in
      let u = Rng.float rng in
      let p = f0 +. (u *. (1.0 -. f0)) in
      let p = Float.min p (1.0 -. 1e-16) in
      Float.max 0.0 (quantile law p -. elapsed)

(* Composite Simpson on [a, b]. *)
let simpson f a b n =
  let n = if n mod 2 = 1 then n + 1 else n in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let weight = if i mod 2 = 1 then 4.0 else 2.0 in
    acc := !acc +. (weight *. f (a +. (float_of_int i *. h)))
  done;
  !acc *. h /. 3.0

let expected_min law ~upto =
  if upto < 0.0 then invalid_arg "Law.expected_min: negative window";
  if Float.equal upto 0.0 then 0.0
  else begin
    match law with
    | Exponential { rate } -> -.Float.expm1 (-.rate *. upto) /. rate
    | Deterministic v -> Float.min upto v
    | Uniform { lo; hi } ->
        if upto <= lo then upto
        else if upto >= hi then (lo +. hi) /. 2.0
        else begin
          (* ∫_0^a S = lo + ∫_lo^a (hi - x)/(hi - lo) dx *)
          let width = hi -. lo in
          lo +. (((hi *. (upto -. lo)) -. (0.5 *. ((upto *. upto) -. (lo *. lo)))) /. width)
        end
    | (Weibull _ | Log_normal _ | Gamma _) as law ->
        let f x = survival law x in
        (* First panel sized to the law, growing geometrically: covers
           any window in O(log(upto/mean)) panels without starving the
           resolution near 0 where S varies fastest. *)
        let rec panels acc a width =
          if a >= upto then acc
          else begin
            let b = Float.min upto (a +. width) in
            panels (acc +. simpson f a b 128) b (2.0 *. width)
          end
        in
        panels 0.0 0.0 (Float.min upto (mean law /. 8.0))
  end

let mean_residual_life law ~elapsed =
  if elapsed < 0.0 then invalid_arg "Law.mean_residual_life: negative elapsed";
  match law with
  | Exponential { rate } -> 1.0 /. rate
  | Deterministic v ->
      if elapsed >= v then 0.0 else v -. elapsed
  | Uniform { lo; hi } ->
      if elapsed >= hi then 0.0
      else begin
        let t = Float.max elapsed lo in
        (* E[X − elapsed | X > elapsed]: X uniform on [t, hi). *)
        ((t +. hi) /. 2.0) -. elapsed
      end
  | (Weibull _ | Log_normal _ | Gamma _) as law ->
      let s_t = survival law elapsed in
      if s_t <= 0.0 then 0.0
      else begin
        (* Integrate S over [t, t_max] where t_max covers all but 1e-12
           of the conditional tail mass. Heavy-tailed laws make that
           range span many orders of magnitude, so it is cut into
           geometrically growing panels, each handled by Simpson. *)
        let p_target = Float.min (1.0 -. 1e-15) (1.0 -. (1e-12 *. s_t)) in
        let t_max = Float.max (elapsed +. mean law) (quantile law p_target) in
        let f x = survival law x in
        let rec panels acc a width =
          if a >= t_max then acc
          else begin
            let b = Float.min t_max (a +. width) in
            panels (acc +. simpson f a b 128) b (2.0 *. width)
          end
        in
        let bulk = panels 0.0 elapsed (mean law /. 8.0) in
        bulk /. s_t
      end

let to_string law =
  match law with
  | Deterministic v -> Printf.sprintf "Deterministic(%g)" v
  | Exponential { rate } -> Printf.sprintf "Exponential(rate=%g)" rate
  | Weibull { shape; scale } -> Printf.sprintf "Weibull(shape=%g, scale=%g)" shape scale
  | Log_normal { mu; sigma } -> Printf.sprintf "LogNormal(mu=%g, sigma=%g)" mu sigma
  | Uniform { lo; hi } -> Printf.sprintf "Uniform(%g, %g)" lo hi
  | Gamma { shape; scale } -> Printf.sprintf "Gamma(shape=%g, scale=%g)" shape scale

let pp fmt law = Format.pp_print_string fmt (to_string law)

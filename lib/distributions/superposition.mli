(** Platform-level first-failure distribution: the superposition of p
    i.i.d. per-processor laws — the first difficulty the paper lists for
    its Section 6 extension ("compute, or better approximate, the
    failure distribution of a platform with p processors").

    For processors all of age 0, the time to the first platform failure
    is the minimum of p i.i.d. variables: S_platform(t) = S(t)^p. With
    per-processor ages a_i (no rejuvenation), it becomes
    Π_i S(a_i + t)/S(a_i). Both forms are provided, with the closed-form
    special cases the tests verify:
    - Exponential(λ) processors → Exponential(pλ) platform;
    - Weibull(k, s) fresh processors → Weibull(k, s·p^(-1/k)) platform. *)

type t
(** The first-failure distribution of a platform. *)

val fresh : law:Law.t -> processors:int -> t
(** All processors of age 0. *)

val aged : law:Law.t -> ages:float array -> t
(** One age per processor (>= 0); no rejuvenation. *)

val survival : t -> float -> float
val cdf : t -> float -> float

val hazard : t -> float -> float
(** Platform hazard: Σ_i h(a_i + t); p·h(t) when fresh. *)

val mean : t -> float
(** Expected time to the first platform failure (numeric integration of
    the survival function; exact for Exponential). *)

val quantile : t -> float -> float
(** Inverse CDF by bisection (closed form for the fresh case when the
    per-processor quantile is closed-form). *)

val sample : t -> Ckpt_prng.Rng.t -> float
(** Draw a first-failure time: the min over per-processor residual
    draws. *)

val as_weibull : t -> Law.t option
(** [Some (Weibull ...)] when the platform law is itself Weibull (fresh
    Weibull processors); [None] otherwise. *)

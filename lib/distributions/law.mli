(** Probability laws for failure inter-arrival times.

    The paper's framework assumes Exponential failures (Section 2); the
    other laws support the Section 6 extension and the synthetic cluster
    logs ({!Ckpt_failures}), following the literature it cites (Weibull
    and log-normal fits to production failure logs). *)

type t =
  | Deterministic of float  (** Point mass at a positive value. *)
  | Exponential of { rate : float }  (** Rate λ > 0; mean 1/λ. *)
  | Weibull of { shape : float; scale : float }
      (** Survival exp(-(x/scale)^shape). [shape] < 1 gives the
          decreasing hazard observed in cluster logs. *)
  | Log_normal of { mu : float; sigma : float }
      (** log X ~ Normal(mu, sigma). *)
  | Uniform of { lo : float; hi : float }  (** Uniform on [lo, hi). *)
  | Gamma of { shape : float; scale : float }

val validate : t -> (t, string) result
(** Check parameter constraints (positivity etc.). *)

val exponential : rate:float -> t
(** Validated constructor; raises [Invalid_argument] on bad parameters.
    Same for the other constructors below. *)

val weibull : shape:float -> scale:float -> t
val log_normal : mu:float -> sigma:float -> t
val uniform : lo:float -> hi:float -> t
val gamma : shape:float -> scale:float -> t
val deterministic : float -> t

val weibull_of_mean : shape:float -> mean:float -> t
(** Weibull with given shape, rescaled to the requested mean; convenient
    when comparing laws at equal MTBF. *)

val log_normal_of_mean : sigma:float -> mean:float -> t
(** Log-normal with given sigma and requested mean. *)

val mean : t -> float
val variance : t -> float

val pdf : t -> float -> float
val cdf : t -> float -> float

val survival : t -> float -> float
(** [survival law x = 1 - cdf law x], computed without cancellation. *)

val hazard : t -> float -> float
(** Instantaneous failure rate pdf / survival. *)

val quantile : t -> float -> float
(** Inverse CDF; closed form where available, bisection for Gamma. *)

val sample : t -> Ckpt_prng.Rng.t -> float
(** Draw one value. *)

val conditional_remaining_sample : t -> elapsed:float -> Ckpt_prng.Rng.t -> float
(** Draw the residual time to failure given [elapsed] time without
    failure, i.e. from P(X - elapsed <= . | X > elapsed). For
    [Exponential] this equals a fresh {!sample} (memorylessness); for
    the other laws it depends on [elapsed] — this is exactly the
    difficulty discussed in Section 6 of the paper. *)

val expected_min : t -> upto:float -> float
(** E[min(X, a)] = ∫_0^a S(x) dx: the expected time spent before either
    finishing a window of length [a] or failing inside it. Closed form
    for Exponential, Deterministic, Uniform; numerically integrated
    otherwise (geometric Simpson panels, relative accuracy ~1e-9). *)

val mean_residual_life : t -> elapsed:float -> float
(** [mean_residual_life law ~elapsed] is E[X − t | X > t] =
    (∫_t^∞ S(x) dx) / S(t). Closed form for Exponential (1/λ, the
    memoryless signature), Deterministic and Uniform; numerically
    integrated otherwise (relative accuracy ~1e-6). For decreasing-
    hazard laws (Weibull shape < 1, log-normal) this {e grows} with
    [elapsed] — the survival-of-the-fittest effect that the Section 6
    heuristics exploit. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

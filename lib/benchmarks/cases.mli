(** The named, tagged benchmark cases behind both the human bench
    driver ([bench/main.exe]) and the machine-readable [ckpt-bench]
    CLI. Every case is deterministic given its fixed seed; only its
    timing varies.

    Tags (used by [ckpt-bench run --tag]): [kernel] (closed forms and
    other micro-kernels), [dp] (chain/partition dynamic programs), [dc]
    (the monotone divide-and-conquer chain solver at
    n ∈ {800, 3200, 12800}), [scaling] (the chain DP at
    n ∈ {50, 200, 800, 3200}, exposing the O(n²) curve, the
    divide-and-conquer cases, and the Monte-Carlo pool at 1/2/4/8
    domains), [sim] (simulator throughput), [mc] (Monte-Carlo pool),
    [dist] (distribution kernels). *)

type kind =
  | Micro of (unit -> unit)
      (** Timed per-iteration by the Bechamel harness (GC-stabilized,
          geometric run growth). *)
  | Macro of { repeats : int; fn : unit -> unit }
      (** Timed per-invocation with the monotonic clock; [repeats]
          samples in full mode (fewer in quick mode), after one
          untimed warmup call. *)

type case = { name : string; tags : string list; kind : kind }

val all : quick:bool -> case list
(** Every case, in fixed order. [quick] shrinks the workloads (notably
    the Monte-Carlo run counts), not just the sample counts, so it is
    safe on 2-core CI runners. *)

val mc_scaling_estimate : quick:bool -> domains:int -> Ckpt_sim.Monte_carlo.estimate
(** The Part-3 domain-scaling workload (fixed seed). Exposed separately
    so the bench driver can print the speedup table and assert the
    bit-identical-estimates guarantee across domain counts. *)

val assert_mc_deterministic : unit -> unit
(** Cheap cross-domain determinism check (1 vs 3 domains, small run
    count); raises [Failure] if the estimates differ. Run by
    [ckpt-bench run] so a determinism break can never hide behind a
    green timing gate. *)

module Generate = Ckpt_dag.Generate
module Rng = Ckpt_prng.Rng
module Law = Ckpt_dist.Law
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Expected_time = Ckpt_core.Expected_time
module Brute_force = Ckpt_core.Brute_force
module Sim_run = Ckpt_sim.Sim_run
module Monte_carlo = Ckpt_sim.Monte_carlo
module Failure_stream = Ckpt_failures.Failure_stream
module Json = Ckpt_json.Json
module Server = Ckpt_serve.Server
module Client = Ckpt_serve.Client
module Clock = Ckpt_obs.Clock
module Metrics = Ckpt_obs.Metrics

type kind = Micro of (unit -> unit) | Macro of { repeats : int; fn : unit -> unit }
type case = { name : string; tags : string list; kind : kind }

let chain_problem n =
  let rng = Rng.create ~seed:(Int64.of_int (9000 + n)) in
  let spec = Generate.uniform_costs () in
  let dag = Generate.chain rng spec ~n in
  Chain_problem.of_dag ~downtime:0.2 ~lambda:(10.0 /. float_of_int n) dag

(* The Part-3 scaling workload: fixed seed, so the estimate is
   bit-identical for any domain count (the property bench/main.exe
   asserts) and runs differ only in wall time. *)
let mc_scaling_runs ~quick = if quick then 10_000 else 100_000

let mc_scaling_estimate ~quick ~domains =
  let rng = Rng.create ~seed:20_260_806L in
  let segments = [ Sim_run.segment ~work:100.0 ~checkpoint:5.0 ~recovery:5.0 ] in
  Monte_carlo.estimate_segments ~domains ~model:(Monte_carlo.Poisson_rate 0.01)
    ~downtime:1.0 ~runs:(mc_scaling_runs ~quick) ~rng segments

let assert_mc_deterministic () =
  let estimate domains =
    let rng = Rng.create ~seed:77_001L in
    let segments = [ Sim_run.segment ~work:50.0 ~checkpoint:2.0 ~recovery:2.0 ] in
    (Monte_carlo.estimate_segments ~domains ~model:(Monte_carlo.Poisson_rate 0.02)
       ~downtime:0.5 ~runs:2_000 ~rng segments)
      .Monte_carlo.mean
  in
  let d1 = estimate 1 and d3 = estimate 3 in
  if not (Float.equal d1 d3) then
    failwith
      (Printf.sprintf
         "Monte-Carlo determinism violated: mean %.17g at 1 domain, %.17g at 3" d1 d3)

(* The serve benches run a real loopback socket round-trip: server
   started and drained inside the timed call, so every invocation also
   exercises graceful shutdown. The mix is sequential and deadline-free,
   keeping the Engine-kind serve.* counters (requests, cache hits and
   misses) bit-identical across machines for the drift gate; only the
   latency histogram and the p99 gauge are Timing-kind. *)
let serve_p99_ms = Metrics.gauge ~kind:Metrics.Timing "serve.p99_ms"

let serve_chain_params k =
  let n = 5 + ((k * 7) mod 20) in
  Json.Obj
    [
      ("lambda", Json.Number (0.01 +. (float_of_int (k + 1) /. 150.0)));
      ("downtime", Json.Number (float_of_int (k mod 3) /. 10.0));
      ( "tasks",
        Json.List
          (List.init n (fun i ->
               Json.Obj
                 [
                   ( "work",
                     Json.Number
                       (1.0 +. (float_of_int (((i + 1) * (k + 2) * 7919) mod 89) /. 11.0))
                   );
                   ( "checkpoint",
                     Json.Number
                       (0.1 +. (float_of_int (((i + 3) * (k + 1) * 104729) mod 19) /. 23.0))
                   );
                   ( "recovery",
                     Json.Number
                       (0.2 +. (float_of_int (((i + 4) * (k + 3) * 1299709) mod 13) /. 17.0))
                   );
                 ])) );
    ]

let serve_round_trip ~requests fn =
  let server = Server.start { Server.default_config with workers = 2 } in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let client = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close client) (fun () ->
          for r = 0 to requests - 1 do
            fn client r
          done))

let serve_check_ok response =
  match Json.member "ok" response with
  | Some (Json.Bool true) -> ()
  | _ -> failwith ("serve bench: request failed: " ^ Json.to_string response)

let micro name tags fn = { name; tags; kind = Micro fn }
let macro ?(repeats = 12) name tags fn = { name; tags; kind = Macro { repeats; fn } }

let all ~quick =
  let kernels =
    [
      micro "prop1-closed-form" [ "kernel"; "core" ] (fun () ->
          ignore
            (Expected_time.expected_v ~work:100.0 ~checkpoint:5.0 ~downtime:1.0
               ~recovery:5.0 ~lambda:1e-4));
      (let problem = chain_problem 1000 in
       let schedule = Schedule.every_k problem 5 in
       micro "schedule-expectation-1000" [ "kernel"; "core" ] (fun () ->
           ignore (Schedule.expected_makespan schedule)));
      (let rng = Rng.create ~seed:777L in
       let law = Law.weibull ~shape:0.7 ~scale:100.0 in
       micro "weibull-renewal-next-failure" [ "kernel"; "failures" ] (fun () ->
           let stream = Failure_stream.renewal ~law ~processors:16 (Rng.split rng) in
           ignore (Failure_stream.next_after stream 0.0)));
      (let law = Law.weibull ~shape:0.7 ~scale:100.0 in
       let t =
         Ckpt_dist.Superposition.aged ~law
           ~ages:(Array.init 64 (fun i -> float_of_int i))
       in
       micro "superposition-survival-64" [ "kernel"; "dist" ] (fun () ->
           ignore (Ckpt_dist.Superposition.survival t 10.0)));
      (let law = Law.log_normal ~mu:1.0 ~sigma:1.2 in
       micro "mean-residual-life-lognormal" [ "kernel"; "dist" ] (fun () ->
           ignore (Law.mean_residual_life law ~elapsed:5.0)));
      (let problem = chain_problem 64 in
       let schedule = Schedule.every_k problem 4 in
       let segments = Schedule.to_sim_segments schedule in
       let rng = Rng.create ~seed:4242L in
       micro "simulate-64-task-run" [ "kernel"; "sim" ] (fun () ->
           let stream = Failure_stream.poisson ~rate:0.05 (Rng.split rng) in
           ignore
             (Sim_run.run_segments ~downtime:0.2
                ~next_failure:(Failure_stream.next_after stream)
                segments)));
    ]
  in
  (* The O(n^2) chain DP at four sizes: with quadratic scaling the
     per-call means should grow ~16x per 4x size step; a complexity
     regression shows up as a broken ratio across the set, not just one
     slow point. n = 3200 became affordable when the segment-cost
     kernel removed the per-transition exp/expm1. *)
  let dp_scaling =
    List.map
      (fun n ->
        let problem = chain_problem n in
        macro
          (Printf.sprintf "chain-dp-%d" n)
          [ "dp"; "scaling" ]
          (fun () -> ignore (Chain_dp.solve problem)))
      [ 50; 200; 800; 3200 ]
  in
  (* The monotone divide-and-conquer solver on the same generator
     (whose cost ranges always satisfy the monotonicity precheck, so no
     silent O(n^2) fallback: the dp.transitions snapshot in the bench
     JSON is the committed evidence of the ~n log n transition curve,
     and `ckpt-bench check` requires that metric). *)
  let dp_dc_scaling =
    List.map
      (fun n ->
        let problem = chain_problem n in
        macro
          (Printf.sprintf "chain-dp-dc-%d" n)
          [ "dp"; "dc"; "scaling" ]
          (fun () -> ignore (Chain_dp.solve_dc problem)))
      [ 800; 3200; 12800 ]
  in
  (* The SMAWK solver on the same generator (which always satisfies the
     monotonicity precheck, so dp.smawk_fallbacks stays 0 in the
     committed snapshot): near-linear transition counts are the point,
     and the dp.smawk_transitions metric in the bench JSON is the
     committed evidence. chain-dp-1e6 is the headline case — one
     million tasks as a routine solve. Its problem is built lazily so
     the 1e6-node generator runs once, inside the discarded warmup
     call, not at case-list construction (which every bench invocation
     pays even when the case is filtered out). *)
  let dp_smawk_scaling =
    List.map
      (fun n ->
        let problem = chain_problem n in
        macro
          (Printf.sprintf "chain-dp-smawk-%d" n)
          [ "dp"; "smawk"; "scaling" ]
          (fun () -> ignore (Chain_dp.solve_smawk problem)))
      [ 3200; 12800 ]
  in
  let dp_smawk_million =
    let problem = lazy (chain_problem 1_000_000) in
    [
      macro ~repeats:3 "chain-dp-1e6" [ "dp"; "smawk"; "scaling" ] (fun () ->
          ignore (Chain_dp.solve_smawk (Lazy.force problem)));
    ]
  in
  (* The complexity gate for the SMAWK claim, in the scenario-monitor
     style (failwith is a bench crash, not a silent timing): per-task
     transition counts must stay flat across a 16x size span, and at
     12800 tasks SMAWK must spend strictly fewer transitions than the
     divide-and-conquer solver on the identical instance. Counter
     deltas are read from snapshots without Metrics.reset, so the
     run-wide totals in the committed bench JSON stay intact. *)
  let dp_smawk_linearity =
    let counter name =
      match Metrics.find (Metrics.snapshot ()) name with
      | Some (_, Metrics.Counter c) -> c
      | _ -> 0
    in
    let delta name fn =
      let before = counter name in
      fn ();
      counter name - before
    in
    let sizes = [ 3200; 12800; 51200 ] in
    let problems = List.map (fun n -> (n, chain_problem n)) sizes in
    [
      macro ~repeats:3 "chain-dp-smawk-linearity" [ "dp"; "smawk" ] (fun () ->
          let per_task =
            List.map
              (fun (n, problem) ->
                let t =
                  delta "dp.smawk_transitions" (fun () ->
                      ignore (Chain_dp.solve_smawk problem))
                in
                float_of_int t /. float_of_int n)
              problems
          in
          List.iter2
            (fun n r ->
              if r > 60.0 then
                failwith
                  (Printf.sprintf
                     "smawk linearity: %.1f transitions/task at n=%d (bound 60)" r n))
            sizes per_task;
          (match (List.hd per_task, List.nth per_task 2) with
          | r_small, r_large when r_large > 2.0 *. r_small ->
              failwith
                (Printf.sprintf
                   "smawk linearity: transitions/task grew %.1f -> %.1f over a 16x \
                    size span"
                   r_small r_large)
          | _ -> ());
          let problem = List.assoc 12800 problems in
          let smawk_t =
            delta "dp.smawk_transitions" (fun () ->
                ignore (Chain_dp.solve_smawk problem))
          in
          let dc_t =
            delta "dp.transitions" (fun () -> ignore (Chain_dp.solve_dc problem))
          in
          if smawk_t >= dc_t then
            failwith
              (Printf.sprintf
                 "smawk spent %d transitions at n=12800 but divide-and-conquer only %d"
                 smawk_t dc_t));
    ]
  in
  let dp_other =
    [
      (let problem = chain_problem 256 in
       macro "chain-dp-memoized-256" [ "dp" ] (fun () ->
           ignore (Chain_dp.solve_memoized problem)));
      (let problem = chain_problem 128 in
       macro "chain-dp-budget-128-k16" [ "dp" ] (fun () ->
           ignore (Chain_dp.solve_with_budget problem ~checkpoints:16)));
      (let problem = chain_problem 16 in
       macro "chain-brute-force-16" [ "dp" ] (fun () ->
           ignore (Brute_force.chain_best problem)));
      (let works = Array.init 12 (fun i -> 1.0 +. float_of_int (i mod 5)) in
       macro "partition-dp-12" [ "dp" ] (fun () ->
           ignore
             (Brute_force.partition_best ~lambda:0.05 ~checkpoint:0.5 ~recovery:0.5
                ~downtime:0.0 works)));
      (let problem =
         Chain_problem.uniform ~lambda:0.05 ~checkpoint:1.0 ~recovery:1.0
           (List.init 12 (fun i -> float_of_int (1 + (i mod 5))))
       in
       let law = Law.weibull ~shape:0.7 ~scale:30.0 in
       macro "btw-pseudo-poly-12" [ "dp" ] (fun () ->
           ignore (Ckpt_core.Btw.pseudo_polynomial_best ~law problem)));
      (let tasks =
         List.init 8 (fun i ->
             Ckpt_core.Moldable_chain.task
               ~total_work:(2000.0 +. (500.0 *. float_of_int i))
               ~checkpoint:(Ckpt_core.Moldable.Proportional 50.0) ())
       in
       let problem =
         Ckpt_core.Moldable_chain.problem ~downtime:5.0 ~max_processors:256
           ~proc_rate:1e-6 tasks
       in
       macro "moldable-chain-dp-8x9" [ "dp" ] (fun () ->
           ignore (Ckpt_core.Moldable_chain.solve problem)));
      (* The domain-parallel moldable sweep at a size where the team is
         actually engaged (64 tasks x 9 candidates). Wall time depends
         on the runner's core count, so the band in bench.toml is wide;
         bit-identity with the sequential sweep is the test suite's
         job, not this gate's. *)
      (let tasks =
         List.init 64 (fun i ->
             let workload =
               match i mod 3 with
               | 0 -> Ckpt_core.Moldable.Perfectly_parallel
               | 1 -> Ckpt_core.Moldable.Amdahl 0.02
               | _ -> Ckpt_core.Moldable.Numerical_kernel 0.1
             in
             Ckpt_core.Moldable_chain.task ~workload
               ~total_work:(1500.0 +. (250.0 *. float_of_int (i mod 7)))
               ~checkpoint:(Ckpt_core.Moldable.Proportional 50.0) ())
       in
       let problem =
         Ckpt_core.Moldable_chain.problem ~downtime:5.0 ~max_processors:256
           ~proc_rate:1e-6 tasks
       in
       macro "moldable-chain-par" [ "dp"; "scaling" ] (fun () ->
           ignore (Ckpt_core.Moldable_chain.solve ~domains:4 problem)));
    ]
  in
  let dist =
    [
      (let rng = Rng.create ~seed:31415L in
       let law = Law.weibull ~shape:0.7 ~scale:50.0 in
       let xs = Array.init 1000 (fun _ -> Law.sample law (Rng.split rng)) in
       macro "weibull-mle-1000-samples" [ "dist"; "fit" ] (fun () ->
           ignore (Ckpt_dist.Law_fit.weibull xs)));
    ]
  in
  (* Simulator throughput: a fixed batch of full runs per invocation, so
     the mean is directly comparable as time-per-batch and the
     per-invocation timing rises above clock granularity. *)
  let sim_throughput =
    let batch = if quick then 200 else 1_000 in
    let problem = chain_problem 64 in
    let schedule = Schedule.every_k problem 4 in
    let segments = Schedule.to_sim_segments schedule in
    [
      macro "sim-throughput" [ "sim" ]
        (fun () ->
          let rng = Rng.create ~seed:86_420L in
          for _ = 1 to batch do
            let stream = Failure_stream.poisson ~rate:0.05 (Rng.split rng) in
            ignore
              (Sim_run.run_segments ~downtime:0.2
                 ~next_failure:(Failure_stream.next_after stream)
                 segments)
          done);
    ]
  in
  (* The full deterministic scenario registry, monitors on: regressions
     here mean the harness (injector combinators + monitor checks) got
     slower, or a scenario started violating its invariants (failwith
     shows up as a bench crash, not a silent timing). *)
  let scenario_smoke =
    [
      macro ~repeats:6 "sim-scenario-smoke" [ "sim"; "scenarios" ] (fun () ->
          List.iter
            (fun (o : Ckpt_scenarios.Scenario.outcome) ->
              if not (Ckpt_scenarios.Monitor.ok o.verdicts) then
                failwith ("scenario " ^ o.scenario ^ ": monitor violation"))
            (Ckpt_scenarios.Scenario.run_all ~seed:20_260_807L));
    ]
  in
  (* Coverage-guided seed sweep over the whole registry: times how long
     reaching 100% fault-injection branch coverage takes, and fails the
     bench if the budget ever stops sufficing (a combinator branch that
     became unreachable, or a scenario change that starved one). The
     cov.* counters it drives end up in the bench JSON snapshot, where
     `ckpt-bench check` pins at least one as a required metric. *)
  let scenario_coverage =
    [
      macro ~repeats:3 "scenario-coverage" [ "sim"; "scenarios" ] (fun () ->
          let o =
            Ckpt_scenarios.Coverage.sweep ~budget:16
              ~scenarios:Ckpt_scenarios.Scenario.all ~seed:42L ()
          in
          if not (Ckpt_scenarios.Coverage.complete o) then
            failwith
              ("scenario-coverage: uncovered branches: "
              ^ String.concat ", " o.Ckpt_scenarios.Coverage.uncovered));
    ]
  in
  let mc_pool =
    List.map
      (fun domains ->
        macro ~repeats:6
          (Printf.sprintf "mc-pool-d%d" domains)
          [ "mc"; "scaling" ]
          (fun () -> ignore (mc_scaling_estimate ~quick ~domains)))
      [ 1; 2; 4; 8 ]
  in
  (* The serving layer end to end (socket, framing, queue, worker pool,
     plan cache). serve-throughput repeats a small instance family so
     the cache serves most of the mix; serve-p99 measures per-request
     round-trip latencies client-side and publishes the tail as the
     serve.p99_ms gauge alongside the serve.latency_ms histogram. *)
  let serve_cases =
    let distinct = 6 in
    let rounds = if quick then 3 else 8 in
    [
      macro ~repeats:6 "serve-throughput" [ "serve" ] (fun () ->
          serve_round_trip ~requests:(distinct * rounds) (fun client r ->
              serve_check_ok
                (Client.call client
                   ~id:(Printf.sprintf "bench-%d" r)
                   ~params:(serve_chain_params (r mod distinct))
                   "plan_chain")));
      macro ~repeats:6 "serve-p99" [ "serve" ] (fun () ->
          let latencies_ms =
            Array.make (distinct * rounds) 0.0
            [@lint.domain_safe "single-domain: filled and read by the bench driver only"]
          in
          serve_round_trip ~requests:(distinct * rounds) (fun client r ->
              let elapsed_s, () =
                Clock.time (fun () ->
                    serve_check_ok
                      (Client.call client
                         ~id:(Printf.sprintf "p99-%d" r)
                         ~params:(serve_chain_params (r mod distinct))
                         "plan_chain"))
              in
              latencies_ms.(r) <- elapsed_s *. 1e3);
          Array.sort Float.compare latencies_ms;
          let n = Array.length latencies_ms in
          let idx = Stdlib.min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1) in
          Metrics.set serve_p99_ms latencies_ms.(idx));
    ]
  in
  kernels @ dp_scaling @ dp_dc_scaling @ dp_smawk_scaling @ dp_smawk_million
  @ dp_smawk_linearity @ dp_other @ dist @ sim_throughput
  @ scenario_smoke @ scenario_coverage @ mc_pool @ serve_cases

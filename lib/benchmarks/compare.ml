type verdict = Improvement | Within_noise | Regression | Missing | New | Skipped

let verdict_to_string = function
  | Improvement -> "improvement"
  | Within_noise -> "within-noise"
  | Regression -> "REGRESSION"
  | Missing -> "MISSING"
  | New -> "new"
  | Skipped -> "skipped"

type case_report = {
  name : string;
  verdict : verdict;
  baseline_mean : float option;
  candidate_mean : float option;
  delta_rel : float option;
  threshold_rel : float option;
}

type report = {
  cases : case_report list;
  regressions : int;
  improvements : int;
  within_noise : int;
  missing : int;
  new_cases : int;
  skipped : int;
}

let std_error (c : Schema.case_result) =
  if c.samples <= 0 then 0.0 else c.stddev /. sqrt (float_of_int c.samples)

let compare_case config (base : Schema.case_result) (cand : Schema.case_result) =
  let max_regression, sigma = Bench_config.effective config ~case:base.name in
  let delta = cand.mean -. base.mean in
  let noise = sigma *. sqrt ((std_error base ** 2.0) +. (std_error cand ** 2.0)) in
  let threshold = Float.max (max_regression *. Float.abs base.mean) noise in
  let verdict =
    if Float.compare delta threshold > 0 then Regression
    else if Float.compare delta (-.threshold) < 0 then Improvement
    else Within_noise
  in
  let ratio x =
    if Float.equal base.mean 0.0 then None else Some (x /. Float.abs base.mean)
  in
  {
    name = base.name;
    verdict;
    baseline_mean = Some base.mean;
    candidate_mean = Some cand.mean;
    delta_rel = ratio delta;
    threshold_rel = ratio threshold;
  }

let run ?(config = Bench_config.default) ~(baseline : Schema.run)
    (candidate : Schema.run) =
  let report_of (base : Schema.case_result) =
    if Bench_config.skipped config ~case:base.name then
      {
        name = base.name;
        verdict = Skipped;
        baseline_mean = Some base.mean;
        candidate_mean =
          Option.map
            (fun (c : Schema.case_result) -> c.mean)
            (Schema.find_case candidate base.name);
        delta_rel = None;
        threshold_rel = None;
      }
    else
      match Schema.find_case candidate base.name with
      | Some cand -> compare_case config base cand
      | None ->
          {
            name = base.name;
            verdict = Missing;
            baseline_mean = Some base.mean;
            candidate_mean = None;
            delta_rel = None;
            threshold_rel = None;
          }
  in
  let from_baseline = List.map report_of baseline.cases in
  let new_cases =
    List.filter_map
      (fun (c : Schema.case_result) ->
        match Schema.find_case baseline c.name with
        | Some _ -> None
        | None ->
            Some
              {
                name = c.name;
                verdict = (if Bench_config.skipped config ~case:c.name then Skipped else New);
                baseline_mean = None;
                candidate_mean = Some c.mean;
                delta_rel = None;
                threshold_rel = None;
              })
      candidate.cases
  in
  let cases = from_baseline @ new_cases in
  let count v =
    List.length
      (List.filter
         (fun c -> match (c.verdict, v) with
           | Improvement, Improvement | Within_noise, Within_noise
           | Regression, Regression | Missing, Missing | New, New | Skipped, Skipped ->
               true
           | _ -> false)
         cases)
  in
  {
    cases;
    regressions = count Regression;
    improvements = count Improvement;
    within_noise = count Within_noise;
    missing = count Missing;
    new_cases = count New;
    skipped = count Skipped;
  }

let ok report = report.regressions = 0 && report.missing = 0

let pp_time s =
  if not (Float.is_finite s) then "n/a"
  else if Float.compare s 1e-6 < 0 then Printf.sprintf "%.1f ns" (s *. 1e9)
  else if Float.compare s 1e-3 < 0 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if Float.compare s 1.0 < 0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.3f s" s

let pp_opt f = function None -> "-" | Some x -> f x
let pp_pct x = Printf.sprintf "%+.1f%%" (100.0 *. x)
let pp_pct_abs x = Printf.sprintf "%.1f%%" (100.0 *. x)

let render report =
  let table =
    Ckpt_stats.Table.create ~title:"benchmark comparison (candidate vs baseline)"
      ~columns:
        [
          ("case", Ckpt_stats.Table.Left); ("baseline", Ckpt_stats.Table.Right);
          ("candidate", Ckpt_stats.Table.Right); ("delta", Ckpt_stats.Table.Right);
          ("threshold", Ckpt_stats.Table.Right); ("verdict", Ckpt_stats.Table.Left);
        ]
  in
  List.iter
    (fun c ->
      Ckpt_stats.Table.add_row table
        [
          c.name; pp_opt pp_time c.baseline_mean; pp_opt pp_time c.candidate_mean;
          pp_opt pp_pct c.delta_rel; pp_opt pp_pct_abs c.threshold_rel;
          verdict_to_string c.verdict;
        ])
    report.cases;
  Ckpt_stats.Table.render table
  ^ Printf.sprintf
      "%d regression(s), %d missing, %d improvement(s), %d within noise, %d new, %d \
       skipped => %s\n"
      report.regressions report.missing report.improvements report.within_noise
      report.new_cases report.skipped
      (if ok report then "OK" else "FAIL")

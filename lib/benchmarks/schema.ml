let version = 1

type case_result = {
  name : string;
  tags : string list;
  unit_ : string;
  samples : int;
  mean : float;
  stddev : float;
  ci99 : float * float;
  wall_s : float;
}

type mode = Quick | Full

type meta = {
  git_sha : string;
  ocaml_version : string;
  domains : int;
  mode : mode;
}

type run = { meta : meta; cases : case_result list; metrics : Json.t }

(* --- run metadata --------------------------------------------------- *)

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* Resolve HEAD without shelling out: walk up to a `.git` (directory, or
   worktree file containing "gitdir: <path>"), read HEAD, follow one
   level of "ref: refs/..." through the loose ref or packed-refs. *)
let git_sha_of_dir start =
  let rec find_git_dir dir depth =
    if depth > 16 then None
    else
      let candidate = Filename.concat dir ".git" in
      if Sys.file_exists candidate then
        if Sys.is_directory candidate then Some candidate
        else
          Option.bind (read_file_opt candidate) (fun contents ->
              let contents = String.trim contents in
              let prefix = "gitdir:" in
              if String.starts_with ~prefix contents then
                let p =
                  String.trim
                    (String.sub contents (String.length prefix)
                       (String.length contents - String.length prefix))
                in
                Some (if Filename.is_relative p then Filename.concat dir p else p)
              else None)
      else
        let parent = Filename.dirname dir in
        if String.equal parent dir then None else find_git_dir parent (depth + 1)
  in
  let resolve_ref git_dir ref_name =
    match read_file_opt (Filename.concat git_dir ref_name) with
    | Some sha -> Some (String.trim sha)
    | None ->
        Option.bind (read_file_opt (Filename.concat git_dir "packed-refs"))
          (fun packed ->
            String.split_on_char '\n' packed
            |> List.find_map (fun line ->
                   match String.index_opt line ' ' with
                   | Some i
                     when String.equal
                            (String.sub line (i + 1) (String.length line - i - 1))
                            ref_name ->
                       Some (String.sub line 0 i)
                   | _ -> None))
  in
  Option.bind (find_git_dir start 0) (fun git_dir ->
      Option.bind (read_file_opt (Filename.concat git_dir "HEAD")) (fun head ->
          let head = String.trim head in
          let prefix = "ref: " in
          if String.starts_with ~prefix head then
            resolve_ref git_dir
              (String.sub head (String.length prefix)
                 (String.length head - String.length prefix))
          else Some head))

let resolve_git_sha () =
  match Sys.getenv_opt "CKPT_BENCH_GIT_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
      match git_sha_of_dir (Sys.getcwd ()) with
      | Some sha when sha <> "" -> sha
      | _ -> "unknown")

let make_meta ~mode =
  {
    git_sha = resolve_git_sha ();
    ocaml_version = Sys.ocaml_version;
    domains = Domain.recommended_domain_count ();
    mode;
  }

(* --- serialization -------------------------------------------------- *)

let mode_to_string = function Quick -> "quick" | Full -> "full"

let mode_of_string = function
  | "quick" -> Ok Quick
  | "full" -> Ok Full
  | other -> Error (Printf.sprintf "bad mode %S (expected quick/full)" other)

let json_of_case c =
  let lo, hi = c.ci99 in
  Json.Obj
    [
      ("name", Json.String c.name);
      ("tags", Json.List (List.map (fun t -> Json.String t) c.tags));
      ("unit", Json.String c.unit_);
      ("samples", Json.Number (float_of_int c.samples));
      ("mean", Json.Number c.mean);
      ("stddev", Json.Number c.stddev);
      ("ci99_lo", Json.Number lo);
      ("ci99_hi", Json.Number hi);
      ("wall_s", Json.Number c.wall_s);
    ]

let to_json run =
  Json.Obj
    [
      ("schema_version", Json.Number (float_of_int version));
      ( "meta",
        Json.Obj
          [
            ("git_sha", Json.String run.meta.git_sha);
            ("ocaml_version", Json.String run.meta.ocaml_version);
            ("domains", Json.Number (float_of_int run.meta.domains));
            ("mode", Json.String (mode_to_string run.meta.mode));
          ] );
      ("cases", Json.List (List.map json_of_case run.cases));
      ("metrics", run.metrics);
    ]

(* Strict field extraction with paths in error messages. *)
let ( let* ) = Result.bind

let field ctx name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or ill-typed field %S" ctx name)

let case_of_json ctx json =
  let* name = field ctx "name" Json.to_str json in
  let ctx = Printf.sprintf "%s (case %s)" ctx name in
  let* tags_json = field ctx "tags" Json.to_list json in
  let* tags =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        match Json.to_str t with
        | Some s -> Ok (s :: acc)
        | None -> Error (ctx ^ ": non-string tag"))
      (Ok []) tags_json
    |> Result.map List.rev
  in
  let* unit_ = field ctx "unit" Json.to_str json in
  let* samples = field ctx "samples" Json.to_int json in
  let* mean = field ctx "mean" Json.to_float json in
  let* stddev = field ctx "stddev" Json.to_float json in
  let* lo = field ctx "ci99_lo" Json.to_float json in
  let* hi = field ctx "ci99_hi" Json.to_float json in
  let* wall_s = field ctx "wall_s" Json.to_float json in
  Ok { name; tags; unit_; samples; mean; stddev; ci99 = (lo, hi); wall_s }

let of_json json =
  let ctx = "bench run" in
  let* v = field ctx "schema_version" Json.to_int json in
  if v > version then
    Error
      (Printf.sprintf "%s: schema_version %d is newer than supported version %d" ctx v
         version)
  else
    let* meta_json = field ctx "meta" Option.some json in
    let mctx = "meta" in
    let* git_sha = field mctx "git_sha" Json.to_str meta_json in
    let* ocaml_version = field mctx "ocaml_version" Json.to_str meta_json in
    let* domains = field mctx "domains" Json.to_int meta_json in
    let* mode_s = field mctx "mode" Json.to_str meta_json in
    let* mode = mode_of_string mode_s in
    let* cases_json = field ctx "cases" Json.to_list json in
    let* cases =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* case = case_of_json "case" c in
          Ok (case :: acc))
        (Ok []) cases_json
      |> Result.map List.rev
    in
    let* metrics = field ctx "metrics" Option.some json in
    Ok { meta = { git_sha; ocaml_version; domains; mode }; cases; metrics }

let write ~path run =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json run));
      output_char oc '\n')

let read ~path =
  match read_file_opt path with
  | None -> Error (Printf.sprintf "%s: cannot read file" path)
  | Some contents -> (
      match Json.parse_result contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> (
          match of_json json with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok run -> Ok run))

(* --- queries -------------------------------------------------------- *)

let find_case run name =
  List.find_opt (fun c -> String.equal c.name name) run.cases

let metric_names run =
  [ "metrics"; "timings" ]
  |> List.concat_map (fun section ->
         match Option.bind (Json.member section run.metrics) Json.to_obj with
         | Some fields -> List.map fst fields
         | None -> [])

let has_metric run key = List.exists (String.equal key) (metric_names run)

let equal_case a b =
  String.equal a.name b.name
  && List.length a.tags = List.length b.tags
  && List.for_all2 String.equal a.tags b.tags
  && String.equal a.unit_ b.unit_
  && a.samples = b.samples
  && Float.equal a.mean b.mean
  && Float.equal a.stddev b.stddev
  && Float.equal (fst a.ci99) (fst b.ci99)
  && Float.equal (snd a.ci99) (snd b.ci99)
  && Float.equal a.wall_s b.wall_s

let equal_run a b =
  String.equal a.meta.git_sha b.meta.git_sha
  && String.equal a.meta.ocaml_version b.meta.ocaml_version
  && a.meta.domains = b.meta.domains
  && (match (a.meta.mode, b.meta.mode) with
     | Quick, Quick | Full, Full -> true
     | _ -> false)
  && List.length a.cases = List.length b.cases
  && List.for_all2 equal_case a.cases b.cases
  && Json.equal a.metrics b.metrics

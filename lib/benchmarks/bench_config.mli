(** Typed view of [bench.toml] — comparator thresholds and the required
    metric keys — parsed by the same strict-TOML machinery as
    [lint.toml] ({!Ckpt_toml.Toml_lite}): unknown sections or keys are
    hard errors, so a typo can never silently loosen the gate.

    {v
    [bench]
    max_regression   = 0.10     # relative slowdown tolerated by default
    sigma            = 3.0      # noise multiplier on the pooled std error
    required_metrics = ["mc.runs", "sim.failures"]

    [case.chain-dp-800]         # per-case overrides
    max_regression = 0.5
    sigma          = 4.0
    skip           = true       # exclude the case from the verdict
    v}

    A case regresses when its mean exceeds the baseline mean by more
    than [max(max_regression * baseline_mean, sigma * pooled_stderr)] —
    see {!Compare}. *)

type case_override = {
  max_regression : float option;
  sigma : float option;
  skip : bool;
}

type t = {
  max_regression : float;  (** Default 0.10 (+10%). *)
  sigma : float;  (** Default 3.0. *)
  required_metrics : string list;  (** Default []. *)
  cases : (string * case_override) list;
}

val default : t

val parse_string : ?filename:string -> string -> t
(** Raises [Failure "<file>:<line>: <message>"] on any syntactic or
    semantic error (including non-positive thresholds). *)

val load : string -> t

val effective : t -> case:string -> float * float
(** [(max_regression, sigma)] for a case after overrides. *)

val skipped : t -> case:string -> bool

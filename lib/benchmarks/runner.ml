module Clock = Ckpt_obs.Clock
module Welford = Ckpt_stats.Welford

(* Reduce timing samples (seconds) to the schema's per-case stats. *)
let summarize ~name ~tags ~unit_ ~wall_s samples =
  let acc = Welford.create () in
  List.iter (fun s -> Welford.add acc s) samples;
  let n = Welford.count acc in
  if n = 0 then
    invalid_arg (Printf.sprintf "case %s produced no timing samples" name);
  let mean = Welford.mean acc in
  let ci99 =
    if n >= 2 then Welford.confidence_interval acc ~level:0.99 else (mean, mean)
  in
  {
    Schema.name;
    tags;
    unit_;
    samples = n;
    mean;
    stddev = Welford.stddev acc;
    ci99;
    wall_s;
  }

(* --- micro cases: Bechamel ------------------------------------------ *)

let micro_samples ~quick name fn =
  let open Bechamel in
  let witness = Toolkit.Instance.monotonic_clock in
  let label = Measure.label witness in
  let quota = Time.second (if quick then 0.2 else 0.5) in
  let cfg = Benchmark.cfg ~limit:(if quick then 500 else 2000) ~quota ~stabilize:true () in
  let test = Test.make ~name (Staged.stage fn) in
  let elt =
    match Test.elements test with
    | [ elt ] -> elt
    | _ -> invalid_arg "micro case expanded to more than one bechamel element"
  in
  let result = Benchmark.run cfg [ witness ] elt in
  (* One raw sample covers [run] iterations; per-iteration time is
     measure/run (ns -> s). Samples with few iterations are dominated
     by the two clock reads, so drop them while enough remain. *)
  let per_iter =
    Array.to_list result.Benchmark.lr
    |> List.filter_map (fun m ->
           let runs = Measurement_raw.run m in
           if Float.compare runs 0.0 > 0 then
             Some (runs, Measurement_raw.get ~label m /. runs /. 1e9)
           else None)
  in
  let filtered = List.filter (fun (runs, _) -> Float.compare runs 5.0 >= 0) per_iter in
  let chosen = if List.length filtered >= 8 then filtered else per_iter in
  List.map snd chosen

(* --- macro cases: monotonic clock loop ------------------------------ *)

let macro_samples ~quick ~repeats fn =
  let repeats = if quick then Stdlib.max 3 (repeats / 3) else repeats in
  fn ();
  List.init repeats (fun _ -> fst (Clock.time fn))

let run_case ~quick (case : Cases.case) =
  let wall_s, (samples, unit_) =
    Clock.time (fun () ->
        match case.kind with
        | Cases.Micro fn -> (micro_samples ~quick case.name fn, "s/iter")
        | Cases.Macro { repeats; fn } -> (macro_samples ~quick ~repeats fn, "s/call"))
  in
  summarize ~name:case.name ~tags:case.tags ~unit_ ~wall_s samples

let run ?(filter = fun (_ : Cases.case) -> true) ?(on_case = fun _ _ -> ())
    ~quick () =
  Ckpt_obs.Metrics.reset ();
  let cases =
    Cases.all ~quick |> List.filter filter
    |> List.map (fun case ->
           let result = run_case ~quick case in
           on_case case.Cases.name result;
           result)
  in
  let metrics =
    Json.parse (Ckpt_obs.Metrics.to_json (Ckpt_obs.Metrics.snapshot ()))
  in
  {
    Schema.meta = Schema.make_meta ~mode:(if quick then Schema.Quick else Schema.Full);
    cases;
    metrics;
  }

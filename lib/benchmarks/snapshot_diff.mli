(** Diff of two {!Ckpt_obs.Metrics} snapshots — the engine behind
    [ckpt-obs diff].

    Accepts any JSON file carrying a snapshot: bare [--metrics json]
    output, the bench smoke's combined object, or a full
    [BENCH_<n>.json] (snapshot under the top-level [metrics] key).

    Gating mirrors [ckpt-bench diff]'s noise-aware rule restricted to
    what a snapshot carries: with no per-sample stddev the pooled-noise
    term vanishes, so an Engine row fails when it moves by more than
    [max_change * |base|] (or disappears). Timing rows and new rows are
    informational. Histograms compare by observation count; never-set
    gauges are non-numeric and never gate. *)

type verdict = Match | Drift | Removed | Added | Info

val verdict_to_string : verdict -> string

type row = {
  name : string;
  section : [ `Engine | `Timing ];
  base : float option;
  cand : float option;
  delta_rel : float option;  (** [(cand - base) / |base|] when both sides are numeric. *)
  verdict : verdict;
}

type report = {
  rows : row list;  (** Engine section first, base order, then added rows. *)
  drifted : int;
  removed : int;
  added : int;
  max_change : float;
}

val ok : report -> bool
(** True iff no engine drift and no removed engine metrics. *)

type snapshot_doc = {
  engine : (string * Json.t) list;
  timing : (string * Json.t) list;
}

val load : string -> snapshot_doc
(** Raises {!Json.Parse_error} on malformed JSON or a file with no
    snapshot, [Sys_error] on unreadable paths. *)

val default_max_change : float
(** 0.10 — engine metrics are deterministic, so even this band is
    generous; pass the bench.toml [max_regression] to align with the
    timing gate instead. *)

val diff : ?max_change:float -> base:snapshot_doc -> snapshot_doc -> report

val render : ?all:bool -> report -> string
(** Verdict table (only gate-relevant and added rows unless [all]) plus
    a one-line summary. *)

(* Diff of two metrics snapshots (the `ckpt-obs diff` engine).

   Inputs are JSON files carrying a Metrics snapshot: either a bare
   `--metrics json` object ({"metrics":{...},"timings":{...}}), the
   combined object the bench smoke emits ({"bench":{...},"metrics":...}),
   or a full BENCH_<n>.json whose snapshot sits under the top-level
   "metrics" key. Wherever it sits, the snapshot is the pair of
   "metrics" (Engine) and "timings" (Timing) sub-objects.

   Gating mirrors ckpt-bench diff's noise-aware rule, degenerated to
   what a snapshot carries: a snapshot has no per-sample stddev, so the
   pooled-stderr term of `max(max_regression*|base|, sigma*stderr)`
   vanishes and the effective threshold is `max_regression * |base|`.
   Engine rows beyond the threshold are Drift (gate-failing), as are
   Engine rows that disappeared; new rows and everything in the Timing
   section are informational — timings vary run to run by design. *)

type verdict = Match | Drift | Removed | Added | Info

let verdict_to_string = function
  | Match -> "ok"
  | Drift -> "DRIFT"
  | Removed -> "MISSING"
  | Added -> "new"
  | Info -> "info"

type row = {
  name : string;
  section : [ `Engine | `Timing ];
  base : float option;
  cand : float option;
  delta_rel : float option;  (** [(cand - base) / |base|] when both sides are numeric. *)
  verdict : verdict;
}

type report = {
  rows : row list;
  drifted : int;
  removed : int;
  added : int;
  max_change : float;
}

let ok r = r.drifted = 0 && r.removed = 0

(* --- loading -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A metric value as one comparable float: numbers as themselves,
   histograms by their observation count (the deterministic part most
   sensitive to behaviour changes), null gauges as absent. *)
let numeric = function
  | Json.Number x -> Some x
  | Json.Obj _ as h -> Option.map float_of_int (Option.bind (Json.member "count" h) Json.to_int)
  | _ -> None

let section_fields json key =
  match Option.bind (Json.member key json) Json.to_obj with
  | Some fields -> fields
  | None -> []

type snapshot_doc = {
  engine : (string * Json.t) list;
  timing : (string * Json.t) list;
}

let parse_doc contents =
  let json = Json.parse contents in
  (* BENCH files nest the snapshot under "metrics"; `--metrics json`
     output IS the snapshot. Distinguish by the sub-object's own shape:
     a BENCH "metrics" value contains "metrics"/"timings" itself. *)
  let root =
    match Json.member "metrics" json with
    | Some inner when Json.member "metrics" inner <> None -> inner
    | _ -> json
  in
  match (Json.member "metrics" root, Json.member "timings" root) with
  | None, None ->
      raise (Json.Parse_error "no \"metrics\"/\"timings\" snapshot found in this file")
  | _ ->
      { engine = section_fields root "metrics"; timing = section_fields root "timings" }

let load path = parse_doc (read_file path)

(* --- diff ----------------------------------------------------------- *)

let default_max_change = 0.10

let diff_section ~section ~max_change base cand =
  let gate = match section with `Engine -> true | `Timing -> false in
  let base_rows =
    List.map
      (fun (name, bv) ->
        match List.assoc_opt name cand with
        | None ->
            {
              name;
              section;
              base = numeric bv;
              cand = None;
              delta_rel = None;
              verdict = (if gate then Removed else Info);
            }
        | Some cv -> (
            match (numeric bv, numeric cv) with
            | Some b, Some c ->
                let delta = c -. b in
                let delta_rel =
                  if Float.equal b 0.0 then None else Some (delta /. Float.abs b)
                in
                let threshold = max_change *. Float.abs b in
                let within =
                  if Float.equal b 0.0 then Float.equal c 0.0
                  else Float.abs delta <= threshold
                in
                {
                  name;
                  section;
                  base = Some b;
                  cand = Some c;
                  delta_rel;
                  verdict =
                    (if not gate then Info else if within then Match else Drift);
                }
            | b, c ->
                (* Null gauges and mixed shapes: nothing numeric to
                   gate on either side. *)
                { name; section; base = b; cand = c; delta_rel = None; verdict = Info }))
      base
  in
  let added =
    List.filter_map
      (fun (name, cv) ->
        if List.mem_assoc name base then None
        else
          Some
            {
              name;
              section;
              base = None;
              cand = numeric cv;
              delta_rel = None;
              verdict = Added;
            })
      cand
  in
  base_rows @ added

let diff ?(max_change = default_max_change) ~base cand =
  if not (max_change >= 0.0) then
    invalid_arg "Snapshot_diff.diff: max_change must be >= 0";
  let rows =
    diff_section ~section:`Engine ~max_change base.engine cand.engine
    @ diff_section ~section:`Timing ~max_change base.timing cand.timing
  in
  let count v = List.length (List.filter (fun r -> r.verdict = v) rows) in
  { rows; drifted = count Drift; removed = count Removed; added = count Added; max_change }

(* --- rendering ------------------------------------------------------ *)

let cell = function None -> "-" | Some x -> Ckpt_stats.Table.cell_f x

let render ?(all = false) r =
  let table =
    Ckpt_stats.Table.create
      ~title:
        (Printf.sprintf "metric snapshot diff (engine gate: +/-%.0f%%, timings informational)"
           (100.0 *. r.max_change))
      ~columns:
        [
          ("metric", Ckpt_stats.Table.Left); ("section", Ckpt_stats.Table.Left);
          ("base", Ckpt_stats.Table.Right); ("candidate", Ckpt_stats.Table.Right);
          ("delta", Ckpt_stats.Table.Right); ("verdict", Ckpt_stats.Table.Left);
        ]
  in
  let interesting (row : row) =
    match row.verdict with Drift | Removed -> true | Added -> true | Match | Info -> all
  in
  List.iter
    (fun row ->
      if interesting row then
        Ckpt_stats.Table.add_row table
          [
            row.name;
            (match row.section with `Engine -> "engine" | `Timing -> "timing");
            cell row.base; cell row.cand;
            (match row.delta_rel with
            | None -> "-"
            | Some d -> Printf.sprintf "%+.2f%%" (100.0 *. d));
            verdict_to_string row.verdict;
          ])
    r.rows;
  let summary =
    Printf.sprintf "snapshot-diff: %d drifted, %d missing, %d new (%d engine+timing rows)%s\n"
      r.drifted r.removed r.added (List.length r.rows)
      (if ok r then " — ok" else " — FAIL")
  in
  Ckpt_stats.Table.render table ^ summary

(** Executes benchmark {!Cases} and produces a {!Schema.run}.

    Micro cases go through Bechamel ([Benchmark.run] with the monotonic
    clock instance, GC stabilization on); the raw measurements are
    reduced to per-iteration timings (dropping the lowest-run samples,
    which are dominated by clock overhead) and summarized with
    {!Ckpt_stats.Welford}. Macro cases are timed per-invocation with
    {!Ckpt_obs.Clock} after one untimed warmup. Either way a case
    yields mean / sample stddev / normal 99% CI — the inputs the
    noise-aware comparator needs — plus its total wall time. *)

val run_case : quick:bool -> Cases.case -> Schema.case_result

val run :
  ?filter:(Cases.case -> bool) ->
  ?on_case:(string -> Schema.case_result -> unit) ->
  quick:bool ->
  unit ->
  Schema.run
(** Runs every case passing [filter] (default: all), in registry order.
    [on_case] is invoked after each case (progress reporting — the
    library itself never prints). Resets {!Ckpt_obs.Metrics} first and
    embeds the end-of-run snapshot, so the [metrics] object reflects
    exactly this run's work. *)

(** The versioned, machine-readable benchmark-results schema
    ([BENCH_<n>.json]; see docs/BENCHMARKS.md).

    A run file is a single JSON object:

    {v
    { "schema_version": 1,
      "meta": { "git_sha": "...", "ocaml_version": "5.1.1",
                "domains": 8, "mode": "quick" },
      "cases": [ { "name": "chain-dp-200", "tags": ["dp","scaling"],
                   "unit": "s/call", "samples": 12, "mean": ...,
                   "stddev": ..., "ci99_lo": ..., "ci99_hi": ...,
                   "wall_s": ... }, ... ],
      "metrics": { "metrics": {...}, "timings": {...} } }
    v}

    [mean]/[stddev]/[ci99_*] are over per-iteration (micro) or
    per-invocation (macro) monotonic-clock timings in seconds; [wall_s]
    is the total monotonic wall time the case consumed, measurement
    overhead included. [metrics] embeds the {!Ckpt_obs.Metrics}
    snapshot taken at the end of the run (exactly
    {!Ckpt_obs.Metrics.to_json}), so a bench file also records engine
    counters — the basis of the typed required-keys CI check. *)

val version : int
(** Current schema version (readers reject newer files). *)

type case_result = {
  name : string;
  tags : string list;
  unit_ : string;  (** ["s/iter"] (micro) or ["s/call"] (macro). *)
  samples : int;  (** Number of timing samples behind the stats. *)
  mean : float;
  stddev : float;  (** Sample standard deviation of the timings. *)
  ci99 : float * float;  (** Normal-approximation 99% CI for the mean. *)
  wall_s : float;  (** Total monotonic wall time spent on the case. *)
}

type mode = Quick | Full

type meta = {
  git_sha : string;  (** ["unknown"] when not resolvable. *)
  ocaml_version : string;
  domains : int;  (** [Domain.recommended_domain_count] at run time. *)
  mode : mode;
}

type run = {
  meta : meta;
  cases : case_result list;
  metrics : Json.t;  (** Embedded snapshot; [Json.Obj] with [metrics]/[timings]. *)
}

val make_meta : mode:mode -> meta
(** Fill [git_sha] (env [CKPT_BENCH_GIT_SHA], else [.git] of the current
    or an enclosing directory, else ["unknown"]), [ocaml_version] and
    [domains] from the running process. *)

val to_json : run -> Json.t
val of_json : Json.t -> (run, string) result
(** Strict: missing fields, wrong shapes, or a newer [schema_version]
    are errors; unknown extra fields are ignored for forward
    compatibility of readers. *)

val write : path:string -> run -> unit
val read : path:string -> (run, string) result
(** File-level wrappers; [read] turns I/O and parse failures into
    [Error] with the path in the message. *)

val find_case : run -> string -> case_result option

val has_metric : run -> string -> bool
(** [has_metric run key] is true when [key] is a {e field name} of the
    embedded [metrics] or [timings] object — a typed containment check;
    the key occurring inside some string {e value} does not count
    (unlike the shell [grep] this replaces in CI). *)

val metric_names : run -> string list
(** All field names of the embedded [metrics] and [timings] objects. *)

val equal_run : run -> run -> bool
(** Structural equality (floats via [Float.equal]) — round-trip tests. *)

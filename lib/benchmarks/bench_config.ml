module Toml = Ckpt_toml.Toml_lite

type case_override = {
  max_regression : float option;
  sigma : float option;
  skip : bool;
}

type t = {
  max_regression : float;
  sigma : float;
  required_metrics : string list;
  cases : (string * case_override) list;
}

let default = { max_regression = 0.10; sigma = 3.0; required_metrics = []; cases = [] }
let no_override = { max_regression = None; sigma = None; skip = false }

let positive_number ~file (b : Toml.binding) =
  let x = Toml.as_number ~file b in
  if Float.compare x 0.0 <= 0 then
    Toml.fail ~file ~line:b.line
      (Printf.sprintf "key %S must be a positive number" b.key);
  x

let parse_string ?(filename = "bench.toml") contents =
  let file = filename in
  let config = ref default in
  let case_update name f =
    let current =
      match List.assoc_opt name !config.cases with
      | Some ov -> ov
      | None -> no_override
    in
    config :=
      { !config with
        cases = (name, f current) :: List.remove_assoc name !config.cases }
  in
  let apply_bench (b : Toml.binding) =
    match b.key with
    | "max_regression" ->
        config := { !config with max_regression = positive_number ~file b }
    | "sigma" -> config := { !config with sigma = positive_number ~file b }
    | "required_metrics" ->
        config := { !config with required_metrics = Toml.as_array ~file b }
    | key ->
        Toml.fail ~file ~line:b.line (Printf.sprintf "unknown key %S in [bench]" key)
  in
  let apply_case name (b : Toml.binding) =
    match b.key with
    | "max_regression" ->
        let x = positive_number ~file b in
        case_update name (fun ov -> { ov with max_regression = Some x })
    | "sigma" ->
        let x = positive_number ~file b in
        case_update name (fun ov -> { ov with sigma = Some x })
    | "skip" ->
        let v = Toml.as_bool ~file b in
        case_update name (fun ov -> { ov with skip = v })
    | key ->
        Toml.fail ~file ~line:b.line
          (Printf.sprintf "unknown key %S in [case.%s]" key name)
  in
  List.iter
    (fun (s : Toml.section) ->
      match s.name with
      | "bench" -> List.iter apply_bench s.bindings
      | name when String.length name > 5 && String.sub name 0 5 = "case." ->
          let case = String.sub name 5 (String.length name - 5) in
          List.iter (apply_case case) s.bindings
      | name ->
          Toml.fail ~file ~line:s.name_line (Printf.sprintf "unknown section [%s]" name))
    (Toml.parse_string ~filename contents);
  !config

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~filename:path contents

let override_for config case =
  match List.assoc_opt case config.cases with Some ov -> ov | None -> no_override

let effective config ~case =
  let ov = override_for config case in
  ( Option.value ov.max_regression ~default:config.max_regression,
    Option.value ov.sigma ~default:config.sigma )

let skipped config ~case = (override_for config case).skip

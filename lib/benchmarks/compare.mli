(** Noise-aware comparison of two benchmark runs.

    All cases measure time (lower is better). For a case present in both
    runs the regression threshold is

    {v threshold = max(max_regression * baseline.mean,
                      sigma * sqrt(se_base^2 + se_cand^2)) v}

    with [se = stddev / sqrt(samples)] — the pooled standard error of
    the difference of means — so a case whose recorded timings are noisy
    gets a proportionally wider band instead of flapping the gate, and a
    tight case can still fail on a real 10% regression. Defaults
    ([max_regression = 0.10], [sigma = 3.0]) and per-case overrides come
    from {!Bench_config}.

    Verdicts: [Regression] (candidate slower than threshold allows),
    [Improvement] (faster by more than the same band), [Within_noise],
    [Missing] (in the baseline, absent from the candidate — a benchmark
    silently disappearing must fail the gate), [New] (candidate only;
    informational), [Skipped] ([skip = true] override). *)

type verdict = Improvement | Within_noise | Regression | Missing | New | Skipped

val verdict_to_string : verdict -> string

type case_report = {
  name : string;
  verdict : verdict;
  baseline_mean : float option;
  candidate_mean : float option;
  delta_rel : float option;
      (** [(candidate - baseline) / baseline]; [None] without both runs
          or when the baseline mean is zero. *)
  threshold_rel : float option;
      (** The effective threshold as a fraction of the baseline mean. *)
}

type report = {
  cases : case_report list;  (** Baseline order, then new cases. *)
  regressions : int;
  improvements : int;
  within_noise : int;
  missing : int;
  new_cases : int;
  skipped : int;
}

val run : ?config:Bench_config.t -> baseline:Schema.run -> Schema.run -> report
(** [run ~baseline candidate]; [config] defaults to
    {!Bench_config.default} (strict local mode). *)

val ok : report -> bool
(** True iff no regressions and no missing cases. *)

val render : report -> string
(** Plain-text verdict table (via {!Ckpt_stats.Table}) plus a one-line
    summary. *)

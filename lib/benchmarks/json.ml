(* The bench subsystem's JSON module is the shared strict parser from
   lib/json, re-exported under its historical name so the schema,
   comparator and tests keep reading [Json.t]. *)

include Ckpt_json.Json

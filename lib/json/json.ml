type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- parsing -------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let err st msg =
  (* Derive line/column from the offset so messages stay useful on the
     single-line JSON the bench writes as well as on pretty files. *)
  let line = ref 1 and col = ref 1 in
  for i = 0 to Stdlib.min st.pos (String.length st.src) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" !line !col msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> err st (Printf.sprintf "expected %C, got %C" c d)
  | None -> err st (Printf.sprintf "expected %C, got end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else err st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> err st "bad hex digit in \\u escape"

let parse_unicode_escape st buf =
  if st.pos + 4 > String.length st.src then err st "truncated \\u escape";
  let code = ref 0 in
  for i = 0 to 3 do
    code := (!code * 16) + hex_digit st st.src.[st.pos + i]
  done;
  st.pos <- st.pos + 4;
  let cp = !code in
  if cp >= 0xD800 && cp <= 0xDFFF then err st "surrogate \\u escapes are not supported";
  (* UTF-8 encode the BMP code point. *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> err st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | None -> err st "unterminated escape"
        | Some c -> (
            advance st;
            match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' -> parse_unicode_escape st buf
            | c -> err st (Printf.sprintf "bad escape \\%c" c)));
        go ())
    | Some c when Char.code c < 0x20 -> err st "raw control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_digits () =
    let some = ref false in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st;
      some := true
    done;
    !some
  in
  if peek st = Some '-' then advance st;
  if not (consume_digits ()) then err st "malformed number";
  if peek st = Some '.' then begin
    advance st;
    if not (consume_digits ()) then err st "malformed number (digits after '.')"
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      if not (consume_digits ()) then err st "malformed number (exponent digits)"
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some x when Float.is_finite x -> Number x
  | _ -> err st (Printf.sprintf "malformed number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> err st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let seen =
          Hashtbl.create 8
            [@@lint.domain_safe
              "parse-local duplicate-key check; never escapes parse_value"]
        in
        let rec members () =
          skip_ws st;
          let key = parse_string_body st in
          if Hashtbl.mem seen key then
            err st (Printf.sprintf "duplicate object key %S" key);
          Hashtbl.add seen key ();
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> err st "expected ',' or '}' in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> err st "expected ',' or ']' in array"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> err st (Printf.sprintf "unexpected character %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then err st "trailing content after JSON value";
  v

let parse_result s = try Ok (parse s) with Parse_error msg -> Error msg

(* --- printing ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that parses back to the same float: try the
   12-digit form first so common values stay readable. *)
let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let short = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string short) x then short else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number x ->
      Buffer.add_string buf (if Float.is_finite x then number_to_string x else "null")
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Number x, Number y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (kx, vx) (ky, vy) -> String.equal kx ky && equal vx vy)
           xs ys
  | _ -> false

(* --- accessors ------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Number x -> Some x | _ -> None

let to_int = function
  | Number x when Float.is_integer x && Float.abs x <= 1e15 -> Some (int_of_float x)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj l -> Some l | _ -> None

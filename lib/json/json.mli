(** Minimal JSON reader/writer shared by the bench subsystem and the
    observability analysis tools.

    The repo deliberately carries no JSON dependency; this is a small,
    strict recursive-descent parser covering everything the bench
    subsystem writes (and the {!Ckpt_obs.Metrics} JSON it embeds) plus
    the span JSONL streams: objects, arrays, strings with the standard
    escapes (including [\uXXXX] for BMP code points; surrogate pairs
    are rejected), numbers, booleans and [null].

    It exists so CI and the [ckpt-obs] analyzer can make {e typed}
    assertions about machine-readable output — "does the [metrics]
    object have a field named [mc.runs]" — instead of grepping raw
    text, where a key name inside any string value is a false
    positive. *)

type t =
  | Null
  | Bool of bool
  | Number of float  (** Always finite; non-finite floats serialize as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Field order preserved; duplicate keys rejected. *)

exception Parse_error of string
(** Carries ["line L, column C: message"]. *)

val parse : string -> t
(** Raises {!Parse_error}. Trailing non-whitespace is an error. *)

val parse_result : string -> (t, string) result

val to_string : t -> string
(** Compact (single-line) serialization. Numbers print as integers when
    integral, else with enough digits to round-trip exactly through
    {!parse}. *)

val escape : string -> string
(** JSON string-content escaping (the characters between the quotes). *)

val equal : t -> t -> bool
(** Structural equality; numbers via [Float.equal], object fields
    order-sensitive (serialization is deterministic, so round-trips
    preserve order). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_float : t -> float option

val to_int : t -> int option
(** Integral {!Number}s only. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option

(* Benchmark harness — thin human-facing driver over the Ckpt_bench
   library (the machine-readable path is bin/ckpt_bench.exe; both run
   the same Ckpt_bench.Cases registry, see docs/BENCHMARKS.md).

   Part 1 — micro/macro benchmarks of the performance-critical kernels:
   the Proposition 1 closed form, the chain DP at n in {50, 200, 800}
   (the O(n^2) growth is visible across the triple), the exhaustive
   solvers, the simulator and the failure streams.

   Part 2 — regeneration of every reproduction table (experiments E1-E17;
   the paper being theory-only, its "tables and figures" are the
   propositions validated by these experiments; see DESIGN.md section 4).

   Part 3 — parallel Monte-Carlo scaling: estimate_segments at fixed
   runs across 1/2/4/8 domains, verifying the bit-identical-estimates
   guarantee and reporting the speedup.

   Run with:  dune exec bench/main.exe
   Quick CI:  BENCH_QUICK=1 dune exec bench/main.exe
   Smoke:     dune exec bench/main.exe -- --smoke   (scaling section only,
              reduced runs; exercises the domain pool on small CI runners)
   Both also take --metrics table|json|openmetrics (observability
   snapshot on exit; json embeds it in a single object, openmetrics is
   the Prometheus text exposition), --metrics-out FILE (write the
   snapshot there instead of stdout) and --trace FILE (Chrome
   trace_event; see docs/OBSERVABILITY.md). *)

module Cases = Ckpt_bench.Cases
module Runner = Ckpt_bench.Runner
module Schema = Ckpt_bench.Schema
module Monte_carlo = Ckpt_sim.Monte_carlo

let pp_time s =
  if Float.compare s 1e-6 < 0 then Printf.sprintf "%.1f ns" (s *. 1e9)
  else if Float.compare s 1e-3 < 0 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if Float.compare s 1.0 < 0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.3f s" s

let run_benchmarks ~quick =
  let table =
    Ckpt_stats.Table.create ~title:"micro-benchmarks (monotonic clock)"
      ~columns:
        [ ("kernel", Ckpt_stats.Table.Left); ("time/run", Ckpt_stats.Table.Right);
          ("stddev", Ckpt_stats.Table.Right); ("samples", Ckpt_stats.Table.Right) ]
  in
  Cases.all ~quick
  (* The mc-pool cases are Part 3's subject; keep Part 1 to the kernels. *)
  |> List.filter (fun (c : Cases.case) -> not (List.mem "mc" c.Cases.tags))
  |> List.iter (fun case ->
         let r = Runner.run_case ~quick case in
         Ckpt_stats.Table.add_row table
           [
             r.Schema.name; pp_time r.Schema.mean; pp_time r.Schema.stddev;
             string_of_int r.Schema.samples;
           ]);
  Ckpt_stats.Table.print table

(* Part 3: wall-clock scaling of the parallel Monte-Carlo engine. Also
   asserts the determinism guarantee: every domain count must produce
   the bit-identical estimate. *)
let run_scaling ~quick =
  let estimate domains =
    Ckpt_obs.Clock.time (fun () -> Cases.mc_scaling_estimate ~quick ~domains)
  in
  let table =
    Ckpt_stats.Table.create
      ~title:
        (Printf.sprintf "parallel Monte-Carlo scaling (estimate_segments, %d runs, %d cores)"
           (if quick then 10_000 else 100_000)
           (Domain.recommended_domain_count ()))
      ~columns:
        [ ("domains", Ckpt_stats.Table.Right); ("wall time", Ckpt_stats.Table.Right);
          ("speedup", Ckpt_stats.Table.Right); ("mean", Ckpt_stats.Table.Right);
          ("bit-identical", Ckpt_stats.Table.Left) ]
  in
  let baseline_time = ref 0.0 in
  let baseline_mean = ref nan in
  let all_identical = ref true in
  List.iter
    (fun domains ->
      let time, e = estimate domains in
      if domains = 1 then begin
        baseline_time := time;
        baseline_mean := e.Monte_carlo.mean
      end;
      let identical = Float.equal e.Monte_carlo.mean !baseline_mean in
      if not identical then begin
        all_identical := false;
        Printf.eprintf "BUG: estimate at %d domains differs from 1-domain run\n" domains
      end;
      Ckpt_stats.Table.add_row table
        [
          string_of_int domains; Printf.sprintf "%.3f s" time;
          Printf.sprintf "%.2fx" (!baseline_time /. time);
          Printf.sprintf "%.6f" e.Monte_carlo.mean;
          (if identical then "yes" else "NO");
        ])
    [ 1; 2; 4; 8 ];
  Ckpt_stats.Table.print table;
  !all_identical

(* The bench is not a cmdliner tool, so the observability flags are
   scanned from argv by hand: --metrics table|json and --trace FILE. *)
let arg_value name =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let quick = smoke || Sys.getenv_opt "BENCH_QUICK" <> None in
  let metrics_fmt =
    match arg_value "--metrics" with
    | None -> None
    | Some "table" -> Some `Table
    | Some "json" -> Some `Json
    | Some "openmetrics" -> Some `OpenMetrics
    | Some other ->
        Printf.eprintf "unknown --metrics format %S (use table, json or openmetrics)\n"
          other;
        exit 2
  in
  let metrics_out = arg_value "--metrics-out" in
  Option.iter Ckpt_obs.Sink.install_trace (arg_value "--trace");
  if not smoke then begin
    print_endline "================================================================";
    print_endline " Part 1: micro-benchmarks";
    print_endline "================================================================";
    run_benchmarks ~quick;
    print_newline ();
    print_endline "================================================================";
    print_endline " Part 2: reproduction tables (experiments E1-E17)";
    print_endline "================================================================";
    let config =
      { Ckpt_experiments.Common.seed = 42L; quick; domains = None; target_ci = None }
    in
    List.iter
      (Ckpt_experiments.Registry.run_and_print config)
      Ckpt_experiments.Registry.all;
    print_newline ()
  end;
  print_endline "================================================================";
  print_endline " Part 3: parallel Monte-Carlo scaling (1/2/4/8 domains)";
  print_endline "================================================================";
  (* A broken bit-identical guarantee must fail the process (CI runs
     the smoke under `set -e` semantics), not just print a BUG line. *)
  let identical = run_scaling ~quick in
  (match metrics_fmt with
  | None -> ()
  | Some fmt ->
      let snapshot = Ckpt_obs.Metrics.snapshot () in
      let body =
        match fmt with
        | `Table -> Ckpt_obs.Metrics.render_table snapshot
        | `OpenMetrics -> Ckpt_obs.Openmetrics.render snapshot
        | `Json ->
            (* One line, with the snapshot embedded next to the bench
               config so a consumer reads a single JSON object
               (ckpt-bench check makes the typed assertions in CI; see
               docs/BENCHMARKS.md). *)
            Printf.sprintf "{\"bench\":{\"smoke\":%b,\"quick\":%b,\"scaling_runs\":%d},%s}\n"
              smoke quick
              (if quick then 10_000 else 100_000)
              (Ckpt_obs.Metrics.to_json_fields snapshot)
      in
      match metrics_out with
      | Some path -> Ckpt_obs.Sink.write_file path body
      | None ->
          if fmt = `Table then print_newline ();
          print_string body);
  Ckpt_obs.Sink.flush ();
  if not identical then exit 1

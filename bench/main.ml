(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the performance-critical kernels
   (one per table-producing code path): the Proposition 1 closed form,
   the chain DP at several sizes (the O(n^2) growth is visible in the
   estimates), the exhaustive solvers, the simulator and the failure
   streams.

   Part 2 — regeneration of every reproduction table (experiments E1-E17;
   the paper being theory-only, its "tables and figures" are the
   propositions validated by these experiments; see DESIGN.md section 4).

   Part 3 — parallel Monte-Carlo scaling: estimate_segments at fixed
   runs across 1/2/4/8 domains, verifying the bit-identical-estimates
   guarantee and reporting the speedup.

   Run with:  dune exec bench/main.exe
   Quick CI:  BENCH_QUICK=1 dune exec bench/main.exe
   Smoke:     dune exec bench/main.exe -- --smoke   (scaling section only,
              reduced runs; exercises the domain pool on small CI runners)
   Both also take --metrics table|json (observability snapshot on exit;
   json embeds it in a single object CI greps for the required keys)
   and --trace FILE (Chrome trace_event; see docs/OBSERVABILITY.md).
*)

open Bechamel
open Toolkit

module Generate = Ckpt_dag.Generate
module Rng = Ckpt_prng.Rng
module Law = Ckpt_dist.Law
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Expected_time = Ckpt_core.Expected_time
module Brute_force = Ckpt_core.Brute_force
module Sim_run = Ckpt_sim.Sim_run
module Failure_stream = Ckpt_failures.Failure_stream

let chain_problem n =
  let rng = Rng.create ~seed:(Int64.of_int (9000 + n)) in
  let spec = Generate.uniform_costs () in
  let dag = Generate.chain rng spec ~n in
  Chain_problem.of_dag ~downtime:0.2 ~lambda:(10.0 /. float_of_int n) dag

let bench_prop1 =
  Test.make ~name:"prop1-closed-form"
    (Staged.stage (fun () ->
         Expected_time.expected_v ~work:100.0 ~checkpoint:5.0 ~downtime:1.0 ~recovery:5.0
           ~lambda:1e-4))

let bench_dp n =
  let problem = chain_problem n in
  Test.make ~name:(Printf.sprintf "chain-dp-%d" n)
    (Staged.stage (fun () -> ignore (Chain_dp.solve problem)))

let bench_dp_memoized =
  let problem = chain_problem 256 in
  Test.make ~name:"chain-dp-memoized-256"
    (Staged.stage (fun () -> ignore (Chain_dp.solve_memoized problem)))

let bench_brute_force =
  let problem = chain_problem 16 in
  Test.make ~name:"chain-brute-force-16"
    (Staged.stage (fun () -> ignore (Brute_force.chain_best problem)))

let bench_partition =
  let works = Array.init 12 (fun i -> 1.0 +. float_of_int (i mod 5)) in
  Test.make ~name:"partition-dp-12"
    (Staged.stage (fun () ->
         ignore
           (Brute_force.partition_best ~lambda:0.05 ~checkpoint:0.5 ~recovery:0.5
              ~downtime:0.0 works)))

let bench_schedule_eval =
  let problem = chain_problem 1000 in
  let schedule = Schedule.every_k problem 5 in
  Test.make ~name:"schedule-expectation-1000"
    (Staged.stage (fun () -> ignore (Schedule.expected_makespan schedule)))

let bench_simulator =
  let problem = chain_problem 64 in
  let schedule = Schedule.every_k problem 4 in
  let segments = Schedule.to_sim_segments schedule in
  let rng = Rng.create ~seed:4242L in
  Test.make ~name:"simulate-64-task-run"
    (Staged.stage (fun () ->
         let stream = Failure_stream.poisson ~rate:0.05 (Rng.split rng) in
         ignore
           (Sim_run.run_segments ~downtime:0.2
              ~next_failure:(Failure_stream.next_after stream)
              segments)))

let bench_weibull_stream =
  let rng = Rng.create ~seed:777L in
  let law = Law.weibull ~shape:0.7 ~scale:100.0 in
  Test.make ~name:"weibull-renewal-next-failure"
    (Staged.stage (fun () ->
         let stream = Failure_stream.renewal ~law ~processors:16 (Rng.split rng) in
         ignore (Failure_stream.next_after stream 0.0)))

let bench_budget_dp =
  let problem = chain_problem 128 in
  Test.make ~name:"chain-dp-budget-128-k16"
    (Staged.stage (fun () -> ignore (Chain_dp.solve_with_budget problem ~checkpoints:16)))

let bench_superposition =
  let law = Law.weibull ~shape:0.7 ~scale:100.0 in
  let t =
    Ckpt_dist.Superposition.aged ~law ~ages:(Array.init 64 (fun i -> float_of_int i))
  in
  Test.make ~name:"superposition-survival-64"
    (Staged.stage (fun () -> ignore (Ckpt_dist.Superposition.survival t 10.0)))

let bench_mrl =
  let law = Law.log_normal ~mu:1.0 ~sigma:1.2 in
  Test.make ~name:"mean-residual-life-lognormal"
    (Staged.stage (fun () -> ignore (Law.mean_residual_life law ~elapsed:5.0)))

let bench_law_fit =
  let rng = Rng.create ~seed:31415L in
  let law = Law.weibull ~shape:0.7 ~scale:50.0 in
  let xs = Array.init 1000 (fun _ -> Law.sample law (Rng.split rng)) in
  Test.make ~name:"weibull-mle-1000-samples"
    (Staged.stage (fun () -> ignore (Ckpt_dist.Law_fit.weibull xs)))

let bench_btw =
  let problem =
    Ckpt_core.Chain_problem.uniform ~lambda:0.05 ~checkpoint:1.0 ~recovery:1.0
      (List.init 12 (fun i -> float_of_int (1 + (i mod 5))))
  in
  let law = Law.weibull ~shape:0.7 ~scale:30.0 in
  Test.make ~name:"btw-pseudo-poly-12"
    (Staged.stage (fun () -> ignore (Ckpt_core.Btw.pseudo_polynomial_best ~law problem)))

let bench_moldable_chain =
  let tasks =
    List.init 8 (fun i ->
        Ckpt_core.Moldable_chain.task
          ~total_work:(2000.0 +. (500.0 *. float_of_int i))
          ~checkpoint:(Ckpt_core.Moldable.Proportional 50.0) ())
  in
  let problem =
    Ckpt_core.Moldable_chain.problem ~downtime:5.0 ~max_processors:256 ~proc_rate:1e-6
      tasks
  in
  Test.make ~name:"moldable-chain-dp-8x9"
    (Staged.stage (fun () -> ignore (Ckpt_core.Moldable_chain.solve problem)))

let tests =
  Test.make_grouped ~name:"checkpoint-workflows"
    [
      bench_prop1; bench_dp 64; bench_dp 256; bench_dp 1024; bench_dp_memoized;
      bench_budget_dp; bench_brute_force; bench_partition; bench_schedule_eval;
      bench_simulator; bench_weibull_stream; bench_superposition; bench_mrl;
      bench_law_fit; bench_btw; bench_moldable_chain;
    ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Ckpt_stats.Table.create ~title:"micro-benchmarks (monotonic clock)"
      ~columns:[ ("kernel", Ckpt_stats.Table.Left); ("time/run", Ckpt_stats.Table.Right);
                 ("r^2", Ckpt_stats.Table.Right) ]
  in
  let rows =
    Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
    |> List.sort compare
  in
  let pp_time ns =
    if ns < 1e3 then Printf.sprintf "%.1f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.3f s" (ns /. 1e9)
  in
  List.iter
    (fun (name, ols_result) ->
      let time =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> pp_time t
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      Ckpt_stats.Table.add_row table [ name; time; r2 ])
    rows;
  Ckpt_stats.Table.print table

(* Part 3: wall-clock scaling of the parallel Monte-Carlo engine. Also
   asserts the determinism guarantee: every domain count must produce
   the bit-identical estimate. *)
let run_scaling ~runs =
  let module Monte_carlo = Ckpt_sim.Monte_carlo in
  let segments = [ Sim_run.segment ~work:100.0 ~checkpoint:5.0 ~recovery:5.0 ] in
  let estimate domains =
    let rng = Rng.create ~seed:20_260_806L in
    Ckpt_obs.Clock.time (fun () ->
        Monte_carlo.estimate_segments ~domains ~model:(Monte_carlo.Poisson_rate 0.01)
          ~downtime:1.0 ~runs ~rng segments)
  in
  let table =
    Ckpt_stats.Table.create
      ~title:
        (Printf.sprintf "parallel Monte-Carlo scaling (estimate_segments, %d runs, %d cores)"
           runs (Domain.recommended_domain_count ()))
      ~columns:
        [ ("domains", Ckpt_stats.Table.Right); ("wall time", Ckpt_stats.Table.Right);
          ("speedup", Ckpt_stats.Table.Right); ("mean", Ckpt_stats.Table.Right);
          ("bit-identical", Ckpt_stats.Table.Left) ]
  in
  let baseline_time = ref 0.0 in
  let baseline_mean = ref nan in
  List.iter
    (fun domains ->
      let time, e = estimate domains in
      if domains = 1 then begin
        baseline_time := time;
        baseline_mean := e.Monte_carlo.mean
      end;
      let identical = Float.equal e.Monte_carlo.mean !baseline_mean in
      if not identical then
        Printf.eprintf "BUG: estimate at %d domains differs from 1-domain run\n" domains;
      Ckpt_stats.Table.add_row table
        [
          string_of_int domains; Printf.sprintf "%.3f s" time;
          Printf.sprintf "%.2fx" (!baseline_time /. time);
          Printf.sprintf "%.6f" e.Monte_carlo.mean;
          (if identical then "yes" else "NO");
        ])
    [ 1; 2; 4; 8 ];
  Ckpt_stats.Table.print table

(* The bench is not a cmdliner tool, so the observability flags are
   scanned from argv by hand: --metrics table|json and --trace FILE. *)
let arg_value name =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let quick = smoke || Sys.getenv_opt "BENCH_QUICK" <> None in
  let metrics_fmt =
    match arg_value "--metrics" with
    | None -> None
    | Some "table" -> Some `Table
    | Some "json" -> Some `Json
    | Some other ->
        Printf.eprintf "unknown --metrics format %S (use table or json)\n" other;
        exit 2
  in
  Option.iter Ckpt_obs.Sink.install_trace (arg_value "--trace");
  if not smoke then begin
    print_endline "================================================================";
    print_endline " Part 1: micro-benchmarks";
    print_endline "================================================================";
    run_benchmarks ();
    print_newline ();
    print_endline "================================================================";
    print_endline " Part 2: reproduction tables (experiments E1-E17)";
    print_endline "================================================================";
    let config =
      { Ckpt_experiments.Common.seed = 42L; quick; domains = None; target_ci = None }
    in
    List.iter
      (Ckpt_experiments.Registry.run_and_print config)
      Ckpt_experiments.Registry.all;
    print_newline ()
  end;
  print_endline "================================================================";
  print_endline " Part 3: parallel Monte-Carlo scaling (1/2/4/8 domains)";
  print_endline "================================================================";
  let runs = if quick then 10_000 else 100_000 in
  run_scaling ~runs;
  (match metrics_fmt with
  | None -> ()
  | Some `Table ->
      print_newline ();
      print_string (Ckpt_obs.Metrics.render_table (Ckpt_obs.Metrics.snapshot ()))
  | Some `Json ->
      (* One line, with the snapshot embedded next to the bench config so
         CI can grep a single JSON object for the required keys. *)
      Printf.printf "{\"bench\":{\"smoke\":%b,\"quick\":%b,\"scaling_runs\":%d},%s}\n"
        smoke quick runs
        (Ckpt_obs.Metrics.to_json_fields (Ckpt_obs.Metrics.snapshot ())));
  Ckpt_obs.Sink.flush ()

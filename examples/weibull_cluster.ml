(* Replaying checkpoint policies against a synthetic production-cluster
   log (the Section 6 extension: non-memoryless failures).

   We generate a 64-node cluster log with Weibull(k=0.7) node failures —
   the decreasing-hazard shape reported for real HPC failure logs — and
   replay a 40-task chain against independent samples of that log. The
   age-aware policies exploit the lull that follows each failure burst.

     dune exec examples/weibull_cluster.exe
*)

module Law = Ckpt_dist.Law
module Rng = Ckpt_prng.Rng
module Table = Ckpt_stats.Table
module Cluster_log = Ckpt_failures.Cluster_log
module Monte_carlo = Ckpt_sim.Monte_carlo
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Nonmemoryless = Ckpt_core.Nonmemoryless

let nodes = 64
let node_mtbf = 2000.0 (* hours *)
let downtime = 0.5
let law = Law.weibull_of_mean ~shape:0.7 ~mean:node_mtbf

let problem =
  (* 40 tasks of 2-5 hours each; memoryless model sees the platform rate. *)
  Chain_problem.uniform ~downtime
    ~lambda:(float_of_int nodes /. node_mtbf)
    ~checkpoint:0.3 ~recovery:0.35
    (List.init 40 (fun i -> 2.0 +. float_of_int (i mod 4)))

let () =
  let rng = Rng.create ~seed:20260705L in
  (* A multi-year archived log (the historical data a practitioner
     fits from), saved/reloaded to demonstrate the trace format... *)
  let archive = Cluster_log.generate ~heterogeneity:0.2 ~law ~nodes ~horizon:30_000.0 rng in
  let path = Filename.temp_file "weibull_cluster" ".log" in
  Cluster_log.save archive path;
  let reloaded = Cluster_log.load path in
  Sys.remove path;
  Printf.printf "archived log: %d nodes, %d failures (round-tripped through %s)\n"
    (Cluster_log.node_count reloaded)
    (Cluster_log.failure_count reloaded)
    (Filename.basename path);

  (* What a practitioner would do: fit a law to the log's per-node
     inter-arrival times, and hand the FITTED law to the policies. *)
  let gaps =
    Array.concat
      (List.filter_map
         (fun (node : Cluster_log.node) ->
           let times = node.Cluster_log.failure_times in
           if Array.length times < 2 then None
           else
             Some (Array.init (Array.length times - 1)
                     (fun i -> times.(i + 1) -. times.(i))))
         (Array.to_list reloaded.Cluster_log.nodes))
  in
  let fitted, _ = Ckpt_dist.Law_fit.best_fit gaps in
  Printf.printf "fitted per-node law from %d gaps: %s (true: %s)\n\n"
    (Array.length gaps)
    (Ckpt_dist.Law.to_string fitted)
    (Ckpt_dist.Law.to_string law);
  (* The replays come from the TRUE law (the real world); the policies
     only ever see the fitted one. *)
  let logs =
    List.init 400 (fun i ->
        let sample_rng = Rng.substream rng (Printf.sprintf "sample-%d" i) in
        Cluster_log.to_trace
          (Cluster_log.generate ~heterogeneity:0.2 ~law ~nodes ~horizon:1500.0 sample_rng))
  in
  let law = fitted in
  let static_schedule = (Chain_dp.solve problem).Chain_dp.schedule in
  let policies =
    [
      ("static DP (memoryless)", Nonmemoryless.static static_schedule);
      ("checkpoint-all", Nonmemoryless.checkpoint_all);
      ("checkpoint-none", Nonmemoryless.checkpoint_none);
      ("hazard-aware Young", Nonmemoryless.hazard_young ~law ~processors:nodes
                               ~mean_checkpoint:0.3);
      ("hazard-aware DP", Nonmemoryless.hazard_dp ~law ~processors:nodes ~problem);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "40-task chain on %d Weibull(k=0.7) nodes, %d log replays" nodes
           (List.length logs))
      ~columns:[ ("policy", Table.Left); ("mean makespan (h)", Table.Right);
                 ("99% CI +/-", Table.Right); ("vs best", Table.Right) ]
  in
  let results =
    List.map
      (fun (label, policy) ->
        let estimate =
          Monte_carlo.estimate_chain_policy_on_logs ~downtime
            ~initial_recovery:problem.Chain_problem.initial_recovery ~logs ~decide:policy
            problem.Chain_problem.tasks
        in
        (label, estimate))
      policies
  in
  let best =
    List.fold_left (fun acc (_, e) -> Float.min acc e.Monte_carlo.mean) infinity results
  in
  List.iter
    (fun (label, (e : Monte_carlo.estimate)) ->
      let lo, hi = e.Monte_carlo.ci99 in
      Table.add_row table
        [
          label; Table.cell_f e.Monte_carlo.mean; Table.cell_f ((hi -. lo) /. 2.0);
          Table.cell_f (e.Monte_carlo.mean /. best);
        ])
    results;
  Table.print table

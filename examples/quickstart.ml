(* Quickstart: the 60-second tour of the library.

   A five-task pipeline runs on a failure-prone platform. Where should
   it checkpoint? Run with:

     dune exec examples/quickstart.exe
*)

module Task = Ckpt_dag.Task
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Monte_carlo = Ckpt_sim.Monte_carlo

let () =
  (* 1. Describe the workflow: five tasks, each with a computational
     weight w, a checkpoint cost C and a recovery cost R. *)
  let tasks =
    List.mapi
      (fun id (name, work, checkpoint_cost, recovery_cost) ->
        Task.make ~id ~name ~work ~checkpoint_cost ~recovery_cost ())
      [
        ("fetch", 5.0, 0.4, 0.6);
        ("decode", 12.0, 1.5, 1.8);
        ("transform", 30.0, 2.0, 2.5);
        ("analyze", 18.0, 0.8, 1.0);
        ("report", 3.0, 0.3, 0.4);
      ]
  in

  (* 2. Describe the platform: Exponential failures with MTBF 200
     (lambda = 0.005), one minute of downtime per failure. *)
  let problem = Chain_problem.make ~downtime:1.0 ~initial_recovery:0.5 ~lambda:0.005 tasks in

  (* 3. Ask Proposition 1 what a single monolithic run would cost. *)
  let monolithic = Schedule.checkpoint_none problem in
  Printf.printf "no intermediate checkpoint: E(T) = %.2f\n"
    (Schedule.expected_makespan monolithic);

  (* 4. Let Algorithm 1 (the O(n^2) dynamic program) place checkpoints
     optimally. *)
  let solution = Chain_dp.solve problem in
  Printf.printf "optimal placement:          E(T) = %.2f  %s\n"
    solution.Chain_dp.expected_makespan
    (Schedule.to_string solution.Chain_dp.schedule);

  (* 5. Validate by discrete-event simulation: the analytic expectation
     must land inside the Monte-Carlo confidence interval. *)
  let rng = Ckpt_prng.Rng.create ~seed:2024L in
  let estimate =
    Monte_carlo.estimate_segments ~model:(Monte_carlo.Poisson_rate 0.005) ~downtime:1.0
      ~runs:20_000 ~rng
      (Schedule.to_sim_segments solution.Chain_dp.schedule)
  in
  Format.printf "simulated:                  E(T) = %a@." Monte_carlo.pp_estimate estimate;
  Printf.printf "closed form inside 99%% CI:  %b\n"
    (Monte_carlo.contains estimate.Monte_carlo.ci99 solution.Chain_dp.expected_makespan)

(* Scheduling under a checkpoint budget.

   Checkpoints are not free for the platform either: each one occupies a
   slot in the burst buffer / stable store, and operators often cap how
   many a job may take. The budget-constrained DP answers "what is the
   best I can do with exactly k checkpoints?" — and the budget curve
   shows how quickly the penalty decays, so a user can negotiate the
   smallest acceptable quota. We close with the group-replication
   alternative for the same workload.

     dune exec examples/storage_budget.exe
*)

module Table = Ckpt_stats.Table
module Rng = Ckpt_prng.Rng
module Generate = Ckpt_dag.Generate
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Moldable = Ckpt_core.Moldable
module Replication = Ckpt_core.Replication

let () =
  let rng = Rng.create ~seed:7777L in
  let spec =
    Generate.uniform_costs ~work:(3.0, 12.0) ~checkpoint:(0.5, 2.0) ~recovery:(0.5, 2.5) ()
  in
  let dag = Generate.chain rng spec ~n:24 in
  let problem = Chain_problem.of_dag ~downtime:1.0 ~initial_recovery:1.0 ~lambda:0.02 dag in
  let unconstrained = Chain_dp.solve problem in
  Printf.printf "24-task chain, lambda = 0.02; unconstrained optimum: E = %.2f with %d checkpoints\n\n"
    unconstrained.Chain_dp.expected_makespan
    (Schedule.checkpoint_count unconstrained.Chain_dp.schedule);

  let table =
    Table.create ~title:"exact-k-checkpoints optimum (Chain_dp.solve_with_budget)"
      ~columns:[ ("budget k", Table.Right); ("E(T)", Table.Right); ("penalty", Table.Right) ]
  in
  List.iter
    (fun k ->
      let solution = Chain_dp.solve_with_budget problem ~checkpoints:k in
      Table.add_row table
        [
          string_of_int k;
          Table.cell_f solution.Chain_dp.expected_makespan;
          Table.cell_pct
            ((solution.Chain_dp.expected_makespan
              /. unconstrained.Chain_dp.expected_makespan)
            -. 1.0);
        ])
    [ 1; 2; 3; 4; 6; 8; 12; 24 ];
  Table.print table;

  (* The full curve as a figure. *)
  let curve = Chain_dp.budget_curve problem in
  print_newline ();
  print_string
    (Ckpt_stats.Ascii_plot.single ~height:12
       ~title:"E(T) vs checkpoint budget k (flat valley around the optimum)"
       (List.map (fun (k, v) -> (float_of_int k, v)) curve));

  (* Same total work, but spend processors instead of storage:
     group replication with a single end checkpoint per chunk. *)
  print_newline ();
  print_endline
    "Group replication treats the same load as a divisible perfectly-parallel\n\
     job on 4 processors, so compare across g (not with the rigid chain above):";
  let rep_table =
    Table.create ~title:"alternative: spend processors, not storage (group replication)"
      ~columns:[ ("groups", Table.Right); ("optimal chunks", Table.Right);
                 ("E(T)", Table.Right) ]
  in
  List.iter
    (fun groups ->
      let config =
        Replication.config ~downtime:1.0
          ~total_work:(Chain_problem.total_work problem)
          ~checkpoint:(Moldable.Constant 1.2) ~proc_rate:0.02 ~processors:4 ~groups ()
      in
      let chunks, expected = Replication.optimal_chunks config in
      Table.add_row rep_table
        [ string_of_int groups; string_of_int chunks; Table.cell_f expected ])
    [ 1; 2; 4 ];
  Table.print rep_table

(* A DataCutter-style seismic imaging pipeline (the linear-chain
   workflows that motivate Section 5 of the paper).

   Eight stages with very unequal weights and checkpoint volumes: the
   migration stage dominates the compute time, while the gather stages
   carry the large intermediate datasets (expensive to checkpoint). We
   sweep the platform failure rate and watch the optimal placement
   adapt, then cross-check one operating point by simulation.

     dune exec examples/seismic_pipeline.exe
*)

module Task = Ckpt_dag.Task
module Table = Ckpt_stats.Table
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Monte_carlo = Ckpt_sim.Monte_carlo

(* (stage, work in minutes, checkpoint cost, recovery cost) —
   checkpoint cost tracks the size of the stage's output volume. *)
let stages =
  [
    ("ingest-traces", 15.0, 4.0, 5.0);
    ("geometry-qc", 8.0, 0.5, 0.7);
    ("noise-filter", 45.0, 4.5, 5.5);
    ("sort-gathers", 30.0, 6.0, 7.0);
    ("velocity-model", 60.0, 1.0, 1.2);
    ("migration", 240.0, 2.5, 3.0);
    ("stack", 40.0, 1.5, 1.8);
    ("render-volume", 12.0, 0.8, 1.0);
  ]

let problem lambda =
  let tasks =
    List.mapi
      (fun id (name, work, checkpoint_cost, recovery_cost) ->
        Task.make ~id ~name ~work ~checkpoint_cost ~recovery_cost ())
      stages
  in
  Chain_problem.make ~downtime:2.0 ~initial_recovery:1.0 ~lambda tasks

let () =
  let table =
    Table.create ~title:"seismic pipeline: optimal placement vs platform MTBF"
      ~columns:
        [
          ("platform MTBF (min)", Table.Right); ("E_opt", Table.Right);
          ("overhead vs failure-free", Table.Right); ("checkpoints after", Table.Left);
        ]
  in
  let failure_free =
    List.fold_left (fun acc (_, w, _, _) -> acc +. w) 0.0 stages
  in
  List.iter
    (fun mtbf ->
      let p = problem (1.0 /. mtbf) in
      let solution = Chain_dp.solve p in
      let names =
        List.map
          (fun i -> (let t = p.Chain_problem.tasks.(i) in t.Task.name))
          (Schedule.checkpoint_indices solution.Chain_dp.schedule)
      in
      Table.add_row table
        [
          Table.cell_f mtbf;
          Table.cell_f solution.Chain_dp.expected_makespan;
          Table.cell_pct ((solution.Chain_dp.expected_makespan /. failure_free) -. 1.0);
          String.concat ", " names;
        ])
    [ 100_000.0; 10_000.0; 3000.0; 1000.0; 300.0; 100.0 ];
  Table.print table;

  (* Cross-check the MTBF = 1000 operating point by simulation, also
     showing what the naive policies would cost. *)
  let p = problem 1e-3 in
  let rng = Ckpt_prng.Rng.create ~seed:7L in
  let check =
    Table.create ~title:"MTBF = 1000 min: analytic vs simulated (20k runs)"
      ~columns:[ ("policy", Table.Left); ("analytic", Table.Right); ("simulated", Table.Right);
                 ("in 99% CI", Table.Left) ]
  in
  List.iter
    (fun (label, schedule) ->
      let analytic = Schedule.expected_makespan schedule in
      let estimate =
        Monte_carlo.estimate_segments ~model:(Monte_carlo.Poisson_rate 1e-3) ~downtime:2.0
          ~runs:20_000
          ~rng:(Ckpt_prng.Rng.substream rng label)
          (Schedule.to_sim_segments schedule)
      in
      Table.add_row check
        [
          label; Table.cell_f analytic; Table.cell_f estimate.Monte_carlo.mean;
          (if Monte_carlo.contains estimate.Monte_carlo.ci99 analytic then "yes" else "NO");
        ])
    [
      ("optimal (DP)", (Chain_dp.solve p).Chain_dp.schedule);
      ("checkpoint-all", Schedule.checkpoint_all p);
      ("checkpoint-none", Schedule.checkpoint_none p);
      ("Daly period", Schedule.daly p);
    ];
  Table.print check

(* Sizing an exascale run: the Section 3 scaling scenarios.

   A fixed 10^7-second sequential workload can run on 16 to 65536
   processors. More processors mean less work per node but a linearly
   higher platform failure rate (lambda = p * lambda_proc), and the
   checkpoint cost either shrinks with p (per-node I/O bottleneck) or
   stays constant (shared-store bottleneck). Where is the sweet spot?

     dune exec examples/exascale_moldable.exe
*)

module Moldable = Ckpt_core.Moldable
module Approximations = Ckpt_core.Approximations
module Table = Ckpt_stats.Table

let () =
  let scenarios =
    [
      ("CFD solver, parallel FS",
       Moldable.scenario ~downtime:120.0 ~total_work:1e7
         ~workload:Moldable.Perfectly_parallel ~overhead:(Moldable.Proportional 1200.0)
         ~proc_rate:2e-7 ());
      ("CFD solver, shared store",
       Moldable.scenario ~downtime:120.0 ~total_work:1e7
         ~workload:Moldable.Perfectly_parallel ~overhead:(Moldable.Constant 1200.0)
         ~proc_rate:2e-7 ());
      ("climate model (0.01% sequential)",
       Moldable.scenario ~downtime:120.0 ~total_work:1e7
         ~workload:(Moldable.Amdahl 1e-4) ~overhead:(Moldable.Constant 1200.0)
         ~proc_rate:2e-7 ());
      ("dense LU kernel",
       Moldable.scenario ~downtime:120.0 ~total_work:1e7
         ~workload:(Moldable.Numerical_kernel 0.2) ~overhead:(Moldable.Proportional 1200.0)
         ~proc_rate:2e-7 ());
    ]
  in
  let table =
    Table.create ~title:"expected completion time E*(p) under optimal checkpointing"
      ~columns:
        (("p", Table.Right) :: List.map (fun (label, _) -> (label, Table.Right)) scenarios)
  in
  List.iter
    (fun p ->
      Table.add_row table
        (string_of_int p
        :: List.map
             (fun (_, s) ->
               Table.cell_e (Moldable.expected_time s ~p).Approximations.expected_total)
             scenarios))
    [ 16; 128; 1024; 8192; 65536 ];
  Table.print table;
  let optima =
    Table.create ~title:"optimal platform size per scenario"
      ~columns:[ ("scenario", Table.Left); ("p*", Table.Right);
                 ("E*(p*) (s)", Table.Right); ("checkpoint every (s)", Table.Right) ]
  in
  List.iter
    (fun (label, s) ->
      let p_star, d = Moldable.optimal_processors s ~max_p:65536 in
      Table.add_row optima
        [
          label; string_of_int p_star; Table.cell_e d.Approximations.expected_total;
          Table.cell_f d.Approximations.chunk_work;
        ])
    scenarios;
  Table.print optima;
  print_endline
    "\nReading: with per-node checkpoint I/O the machine scales out to the full";
  print_endline
    "65536 nodes, while a shared checkpoint store caps the useful size at a few";
  print_endline "thousand nodes — exactly the contrast Section 3 of RR-7907 describes."

(* Checkpointing as tail-latency control.

   Proposition 1 is about the mean, but a deadline-driven user cares
   about the 99th percentile. This example collects full makespan
   distributions for three placements of the same 16-task chain and
   shows that optimal checkpointing compresses the tail far more than
   the mean: the no-checkpoint run occasionally restarts a huge segment
   over and over.

     dune exec examples/tail_latency.exe
*)

module Table = Ckpt_stats.Table
module Rng = Ckpt_prng.Rng
module Monte_carlo = Ckpt_sim.Monte_carlo
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Expected_time = Ckpt_core.Expected_time

let lambda = 0.02
let downtime = 1.0

let problem =
  Chain_problem.uniform ~downtime ~lambda ~checkpoint:0.8 ~recovery:1.0
    (List.init 16 (fun i -> 4.0 +. float_of_int (i mod 5)))

let () =
  let runs = 40_000 in
  let rng = Rng.create ~seed:90125L in
  let schedules =
    [
      ("optimal (DP)", (Chain_dp.solve problem).Chain_dp.schedule);
      ("checkpoint-all", Schedule.checkpoint_all problem);
      ("checkpoint-none", Schedule.checkpoint_none problem);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "makespan distribution, 16-task chain, lambda=%g (%d runs)" lambda
           runs)
      ~columns:[ ("placement", Table.Left); ("mean", Table.Right); ("median", Table.Right);
                 ("p95", Table.Right); ("p99", Table.Right); ("p99.9", Table.Right);
                 ("max", Table.Right) ]
  in
  List.iter
    (fun (label, schedule) ->
      let d =
        Monte_carlo.collect_segments ~model:(Monte_carlo.Poisson_rate lambda) ~downtime
          ~runs
          ~rng:(Rng.substream rng label)
          (Schedule.to_sim_segments schedule)
      in
      Table.add_row table
        [
          label;
          Table.cell_f d.Monte_carlo.estimate.Monte_carlo.mean;
          Table.cell_f (Monte_carlo.quantile d 0.5);
          Table.cell_f (Monte_carlo.quantile d 0.95);
          Table.cell_f (Monte_carlo.quantile d 0.99);
          Table.cell_f (Monte_carlo.quantile d 0.999);
          Table.cell_f d.Monte_carlo.estimate.Monte_carlo.max;
        ])
    schedules;
  Table.print table;

  (* The analytic variance (the library's closed-form extension of
     Proposition 1) explains the single-segment tail. *)
  let p =
    Expected_time.make ~downtime ~recovery:1.0
      ~work:(Chain_problem.total_work problem)
      ~checkpoint:0.8 ~lambda ()
  in
  Printf.printf
    "\nclosed-form mean/stddev of the monolithic run: %.1f / %.1f\n"
    (Expected_time.expected p) (Expected_time.stddev p);
  print_endline
    "Checkpointing cuts the standard deviation roughly with the number of\n\
     independent segments — the p99.9 column shows what that buys a deadline."

(* An independent-task campaign: per-chromosome variant-calling jobs
   (the strongly NP-complete setting of Proposition 2 / Section 4).

   The jobs are independent, so the scheduler must pick BOTH an order
   and the checkpoint positions. On the 12-job instance we can afford
   the exact subset dynamic program and measure how close the
   polynomial heuristics get; on the 500-job campaign only the
   heuristics survive.

     dune exec examples/genome_selection.exe
*)

module Task = Ckpt_dag.Task
module Table = Ckpt_stats.Table
module Rng = Ckpt_prng.Rng
module Independent = Ckpt_core.Independent
module Brute_force = Ckpt_core.Brute_force
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule

(* Rough human-genome proportions: work scales with chromosome size. *)
let chromosome_hours =
  [ 8.2; 8.0; 6.6; 6.3; 6.0; 5.7; 5.3; 4.8; 4.6; 4.5; 4.5; 4.4 ]

let () =
  let lambda = 0.02 (* one failure per 50 hours on this cluster *) in
  let checkpoint = 1.0 (* a full hour to snapshot the call-set state *) in
  let problem = Independent.uniform ~lambda ~checkpoint ~recovery:checkpoint chromosome_hours in

  (* Exact optimum (uniform costs => subset DP over partitions). *)
  let exact =
    Brute_force.partition_best ~lambda ~checkpoint ~recovery:checkpoint ~downtime:0.0
      (Array.of_list chromosome_hours)
  in
  let table =
    Table.create ~title:"12 chromosomes: heuristics vs exact optimum"
      ~columns:[ ("strategy", Table.Left); ("E(T) hours", Table.Right);
                 ("vs optimal", Table.Right); ("#checkpoints", Table.Right) ]
  in
  Table.add_row table [ "exact optimum (subset DP)"; Table.cell_f exact; "1"; "-" ];
  let show label (solution : Chain_dp.solution) =
    Table.add_row table
      [
        label;
        Table.cell_f solution.Chain_dp.expected_makespan;
        Table.cell_f (solution.Chain_dp.expected_makespan /. exact);
        string_of_int (Schedule.checkpoint_count solution.Chain_dp.schedule);
      ]
  in
  show "longest-first + chain DP" (Independent.solve_ordered problem Independent.Longest_first);
  show "shortest-first + chain DP" (Independent.solve_ordered problem Independent.Shortest_first);
  show "LPT grouping (auto m*)" (Independent.auto_grouping problem);
  Table.print table;

  (* The full campaign: 500 shards with heterogeneous snapshot sizes. *)
  let rng = Rng.create ~seed:11L in
  let shards =
    List.init 500 (fun i ->
        Task.make ~id:i
          ~work:(Rng.float_range rng 0.5 9.0)
          ~checkpoint_cost:(Rng.float_range rng 0.05 0.5)
          ~recovery_cost:(Rng.float_range rng 0.05 0.6)
          ())
  in
  let campaign = Independent.make ~lambda shards in
  let big =
    Table.create ~title:"500-shard campaign (exact is out of reach): heuristic comparison"
      ~columns:[ ("strategy", Table.Left); ("E(T) hours", Table.Right);
                 ("#checkpoints", Table.Right) ]
  in
  List.iter
    (fun (label, solution) ->
      Table.add_row big
        [
          label;
          Table.cell_f solution.Chain_dp.expected_makespan;
          string_of_int (Schedule.checkpoint_count solution.Chain_dp.schedule);
        ])
    [
      ("as-given + chain DP", Independent.solve_ordered campaign Independent.As_given);
      ("longest-first + chain DP", Independent.solve_ordered campaign Independent.Longest_first);
      ("shortest-first + chain DP",
       Independent.solve_ordered campaign Independent.Shortest_first);
      ("LPT grouping (auto m*)", Independent.auto_grouping campaign);
    ];
  Table.print big

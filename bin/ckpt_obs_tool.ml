(* ckpt-obs: offline analysis of the observability artifacts the other
   tools emit — span traces (--trace FILE.jsonl) and metric snapshots
   (--metrics json / BENCH_<n>.json files).

     ckpt-obs report trace.jsonl            span tree, self vs child time,
                                            hot-span ranking, critical path
     ckpt-obs diff base.json cand.json      noise-aware snapshot comparison
                                            (engine gated, timings informational)

   See docs/OBSERVABILITY.md. *)

open Cmdliner
module Trace_reader = Ckpt_obs.Trace_reader
module Snapshot_diff = Ckpt_bench.Snapshot_diff

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- report --------------------------------------------------------- *)

let run_report path top =
  match Trace_reader.parse_jsonl (read_file path) with
  | Error msg ->
      Printf.eprintf "ckpt-obs: %s: %s\n" path msg;
      exit 2
  | Ok [] ->
      Printf.eprintf "ckpt-obs: %s contains no span records\n" path;
      exit 2
  | Ok records ->
      let report = Trace_reader.report (Trace_reader.build records) in
      print_string (Trace_reader.render_report ~top report)

let trace_file =
  let doc = "Span trace in JSON Lines format (written by --trace FILE.jsonl)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl" ~doc)

let top =
  let doc = "Rows of the hot-span table." in
  Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc)

let report_cmd =
  let doc = "span-tree analysis of a JSONL trace: self vs child time, hot spans, critical path" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run_report $ trace_file $ top)

(* --- diff ----------------------------------------------------------- *)

let run_diff base cand max_change config all =
  let max_change =
    match (max_change, config) with
    | Some m, _ -> m
    | None, Some path -> (Ckpt_bench.Bench_config.load path).Ckpt_bench.Bench_config.max_regression
    | None, None -> Snapshot_diff.default_max_change
  in
  let load path =
    try Snapshot_diff.load path with
    | Ckpt_bench.Json.Parse_error msg ->
        Printf.eprintf "ckpt-obs: %s: %s\n" path msg;
        exit 2
    | Sys_error msg ->
        Printf.eprintf "ckpt-obs: %s\n" msg;
        exit 2
  in
  let base = load base in
  let cand = load cand in
  let report = Snapshot_diff.diff ~max_change ~base cand in
  print_string (Snapshot_diff.render ~all report);
  if not (Snapshot_diff.ok report) then exit 1

let base_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASE.json"
         ~doc:"Baseline snapshot (--metrics json output or a BENCH_<n>.json).")

let cand_file =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE.json"
         ~doc:"Candidate snapshot to compare against the baseline.")

let max_change =
  let doc =
    "Relative drift tolerated on engine metrics (the snapshot analog of the bench \
     comparator's max_regression; a snapshot carries no per-sample noise, so the \
     pooled-stderr term of the bench threshold vanishes)."
  in
  Arg.(value & opt (some float) None & info [ "max-change" ] ~docv:"FRAC" ~doc)

let config =
  let doc = "Read the engine threshold from this bench.toml's max_regression." in
  Arg.(value & opt (some file) None & info [ "config" ] ~docv:"FILE" ~doc)

let all_rows =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Show every row, not just drifted/missing/new ones.")

let diff_cmd =
  let doc = "compare two metric snapshots with the bench comparator's thresholds" in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const run_diff $ base_file $ cand_file $ max_change $ config $ all_rows)

(* --- group ---------------------------------------------------------- *)

let cmd =
  let doc = "analyze observability artifacts: span traces and metric snapshots" in
  Cmd.group (Cmd.info "ckpt-obs" ~version:"1.0.0" ~doc) [ report_cmd; diff_cmd ]

let () = exit (Cmd.eval cmd)

(* CLI: a full checkpoint-scheduling analysis report for a chain spec —
   optimal placement, policy comparison, budget curve, waste breakdown,
   simulated tail quantiles, and a sample execution timeline. *)

open Cmdliner
module Chain_problem = Ckpt_core.Chain_problem
module Chain_spec = Ckpt_core.Chain_spec
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Expected_time = Ckpt_core.Expected_time
module Monte_carlo = Ckpt_sim.Monte_carlo
module Table = Ckpt_stats.Table

let section title =
  Printf.printf "\n== %s %s\n\n" title (String.make (Stdlib.max 0 (66 - String.length title)) '=')

let placement_section problem solution =
  section "Optimal placement (Algorithm 1)";
  Printf.printf "expected makespan: %.6f   (failure-free: %g)\n"
    solution.Chain_dp.expected_makespan
    (Chain_problem.total_work problem
    +. (let tasks = problem.Chain_problem.tasks in
        Array.fold_left
          (fun acc i -> acc +. i.Ckpt_dag.Task.checkpoint_cost)
          0.0
          (Array.of_list
             (List.map (fun i -> tasks.(i))
                (Schedule.checkpoint_indices solution.Chain_dp.schedule)))));
  Printf.printf "schedule: %s\n" (Schedule.to_string solution.Chain_dp.schedule)

let policy_section problem solution =
  section "Policy comparison (exact expectations)";
  let t =
    Table.create ~title:"placements"
      ~columns:[ ("policy", Table.Left); ("E(T)", Table.Right); ("vs optimal", Table.Right);
                 ("#ckpts", Table.Right) ]
  in
  List.iter
    (fun (label, schedule) ->
      let e = Schedule.expected_makespan schedule in
      Table.add_row t
        [ label; Table.cell_f e;
          Table.cell_f (e /. solution.Chain_dp.expected_makespan);
          string_of_int (Schedule.checkpoint_count schedule) ])
    [
      ("optimal (DP)", solution.Chain_dp.schedule);
      ("checkpoint-all", Schedule.checkpoint_all problem);
      ("checkpoint-none", Schedule.checkpoint_none problem);
      ("Young period", Schedule.young problem);
      ("Daly period", Schedule.daly problem);
    ];
  Table.print t

let budget_section problem =
  section "Checkpoint budget curve (exactly k checkpoints)";
  let t =
    Table.create ~title:"budget"
      ~columns:[ ("k", Table.Right); ("E(T)", Table.Right); ("penalty vs best k", Table.Right) ]
  in
  let curve = Chain_dp.budget_curve problem in
  let best = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity curve in
  List.iter
    (fun (k, v) ->
      Table.add_row t
        [ string_of_int k; Table.cell_f v; Table.cell_pct ((v /. best) -. 1.0) ])
    curve;
  Table.print t

let waste_section problem solution =
  section "Waste decomposition of the optimal schedule";
  let totals = ref (0.0, 0.0, 0.0, 0.0) in
  List.iter
    (fun (first, last) ->
      let tasks = problem.Chain_problem.tasks in
      let params =
        Expected_time.make ~downtime:problem.Chain_problem.downtime
          ~recovery:(Chain_problem.recovery_before problem first)
          ~work:(Chain_problem.segment_work problem ~first ~last)
          ~checkpoint:tasks.(last).Ckpt_dag.Task.checkpoint_cost
          ~lambda:problem.Chain_problem.lambda ()
      in
      let b = Expected_time.breakdown params in
      let u, c, l, r = !totals in
      totals :=
        ( u +. b.Expected_time.useful, c +. b.Expected_time.checkpoint,
          l +. b.Expected_time.lost, r +. b.Expected_time.restore ))
    (Schedule.segments solution.Chain_dp.schedule);
  let useful, checkpoint, lost, restore = !totals in
  let total = useful +. checkpoint +. lost +. restore in
  Printf.printf "useful work     %10.3f  (%5.2f%%)\n" useful (100.0 *. useful /. total);
  Printf.printf "checkpointing   %10.3f  (%5.2f%%)\n" checkpoint
    (100.0 *. checkpoint /. total);
  Printf.printf "lost to failures%10.3f  (%5.2f%%)\n" lost (100.0 *. lost /. total);
  Printf.printf "restore/downtime%10.3f  (%5.2f%%)\n" restore (100.0 *. restore /. total)

let simulation_section problem solution runs seed =
  section (Printf.sprintf "Monte-Carlo validation (%d runs)" runs);
  let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int seed) in
  let d =
    Monte_carlo.collect_segments
      ~model:(Monte_carlo.Poisson_rate problem.Chain_problem.lambda)
      ~downtime:problem.Chain_problem.downtime ~runs ~rng
      (Schedule.to_sim_segments solution.Chain_dp.schedule)
  in
  Format.printf "simulated: %a@." Monte_carlo.pp_estimate d.Monte_carlo.estimate;
  Printf.printf "analytic %.6f inside the 99%% CI: %b\n" solution.Chain_dp.expected_makespan
    (Monte_carlo.contains d.Monte_carlo.estimate.Monte_carlo.ci99
       solution.Chain_dp.expected_makespan);
  Printf.printf "quantiles: p50 %.4g | p95 %.4g | p99 %.4g | p99.9 %.4g | max %.4g\n"
    (Monte_carlo.quantile d 0.5) (Monte_carlo.quantile d 0.95)
    (Monte_carlo.quantile d 0.99)
    (Monte_carlo.quantile d 0.999)
    d.Monte_carlo.estimate.Monte_carlo.max;
  section "Sample run timeline";
  let stream =
    Ckpt_failures.Failure_stream.poisson ~rate:problem.Chain_problem.lambda
      (Ckpt_prng.Rng.substream rng "timeline")
  in
  let _, events =
    Ckpt_sim.Sim_run.run_segments_traced ~downtime:problem.Chain_problem.downtime
      ~next_failure:(Ckpt_failures.Failure_stream.next_after stream)
      (Schedule.to_sim_segments solution.Chain_dp.schedule)
  in
  print_string (Ckpt_sim.Timeline.render events)

let run spec_path lambda_override runs seed =
  let problem =
    try Chain_spec.parse_file_with_lambda ?lambda:lambda_override spec_path
    with Chain_spec.Parse_error msg ->
      prerr_endline msg;
      exit 2
  in
  Printf.printf "checkpoint-workflows analysis report: %s\n" spec_path;
  Printf.printf "%d tasks, total work %g, lambda %g (MTBF %g), D %g, R0 %g\n"
    (Chain_problem.size problem) (Chain_problem.total_work problem)
    problem.Chain_problem.lambda
    (1.0 /. problem.Chain_problem.lambda)
    problem.Chain_problem.downtime problem.Chain_problem.initial_recovery;
  let solution = Chain_dp.solve problem in
  placement_section problem solution;
  policy_section problem solution;
  budget_section problem;
  waste_section problem solution;
  simulation_section problem solution runs seed

let spec_path =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"SPEC" ~doc:"Chain specification file.")

let lambda_override =
  Arg.(value & opt (some float) None
       & info [ "l"; "lambda" ] ~docv:"RATE" ~doc:"Override the platform failure rate.")

let runs =
  Arg.(value & opt int 20_000
       & info [ "n"; "runs" ] ~docv:"N" ~doc:"Monte-Carlo replications.")

let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let cmd =
  let doc = "full checkpoint-scheduling analysis report for a workflow chain" in
  let info = Cmd.info "ckpt-report" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run $ spec_path $ lambda_override $ runs $ seed)

let () = exit (Cmd.eval cmd)

(* ckpt-lint: project-wide static analysis for domain-safety and
   numerical correctness. Parses every .ml under the given paths with
   ppxlib and reports rule violations with file:line diagnostics.

   Exit codes: 0 clean, 1 violations (at error severity), 2 usage or
   configuration error. *)

module Config = Ckpt_analysis.Config
module Driver = Ckpt_analysis.Driver
module Output = Ckpt_analysis.Output
module Rule = Ckpt_analysis.Rule
module Rules = Ckpt_analysis.Rules

open Cmdliner

let format_arg =
  let parse s =
    match Output.format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown format %S (expected text or json)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf (match f with Output.Text -> "text" | Output.Json -> "json")
  in
  Arg.conv (parse, print)

let format_t =
  Arg.(value & opt format_arg Output.Text & info [ "format" ] ~docv:"FMT"
         ~doc:"Output format: $(b,text) or $(b,json).")

let config_t =
  Arg.(value & opt (some file) None & info [ "config" ] ~docv:"FILE"
         ~doc:"Lint configuration (defaults to ./lint.toml when present).")

let root_t =
  Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR"
         ~doc:"Directory paths are resolved against (diagnostics are \
               reported relative to it).")

let paths_t =
  Arg.(value & pos_all string [] & info [] ~docv:"PATH"
         ~doc:"Files or directories to lint, relative to $(b,--root) \
               (defaults to the configured roots).")

let list_rules_t =
  Arg.(value & flag & info [ "rules" ] ~doc:"List the known rules and exit.")

let run format config_file root paths list_rules =
  if list_rules then begin
    List.iter
      (fun (r : Rule.t) -> Printf.printf "%-28s %s\n" r.Rule.name r.Rule.doc)
      Rules.all;
    0
  end
  else
    match
      match config_file with
      | Some path -> Config.load path
      | None ->
          let default_path = Filename.concat root "lint.toml" in
          if Sys.file_exists default_path then Config.load default_path
          else Config.default
    with
    | exception Failure msg ->
        prerr_endline ("ckpt-lint: " ^ msg);
        2
    | config ->
        let paths = if paths = [] then config.Config.roots else paths in
        let diags = Driver.run ~config ~rules:Rules.all ~root paths in
        print_endline (Output.render ~format diags);
        if Driver.has_errors diags then 1 else 0

let cmd =
  let doc = "static analysis for domain-safety and numerical correctness" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "$(tname) parses every .ml file under the given paths and reports \
         violations of the project's correctness rules (float polymorphic \
         comparison, wall-clock reads, global Random, unguarded global \
         mutable state, raw span scopes, banned functions in lib/). Rules, \
         severities and per-path allowlists are configured in lint.toml; \
         see docs/LINT.md for the catalog.";
    ]
  in
  Cmd.v
    (Cmd.info "ckpt-lint" ~doc ~man)
    Term.(const run $ format_t $ config_t $ root_t $ paths_t $ list_rules_t)

let () = exit (Cmd.eval' cmd)

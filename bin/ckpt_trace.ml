(* CLI: generate and inspect synthetic failure traces and cluster logs. *)

open Cmdliner
module Trace = Ckpt_failures.Trace
module Cluster_log = Ckpt_failures.Cluster_log

let parse_law spec =
  match Ckpt_dist.Law_spec.parse spec with
  | Ok law -> law
  | Error msg ->
      prerr_endline msg;
      exit 2

let generate law_spec nodes horizon heterogeneity seed output =
  let law = parse_law law_spec in
  let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int seed) in
  let log = Cluster_log.generate ~heterogeneity ~law ~nodes ~horizon rng in
  Cluster_log.save log output;
  Printf.printf "wrote %s: %d nodes, %d failures over horizon %g\n" output
    (Cluster_log.node_count log) (Cluster_log.failure_count log) horizon

let inspect path =
  let log =
    try Cluster_log.load path
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  Printf.printf "cluster log: %s\n" log.Cluster_log.description;
  Printf.printf "nodes: %d, failures: %d, horizon: %g\n" (Cluster_log.node_count log)
    (Cluster_log.failure_count log) log.Cluster_log.horizon;
  let trace = Cluster_log.to_trace log in
  Printf.printf "platform MTBF (empirical): %g\n" (Trace.mtbf trace);
  let gaps = Trace.inter_arrival trace in
  if Array.length gaps > 1 then begin
    Printf.printf "inter-arrival mean %g, median %g, p95 %g\n"
      (Ckpt_stats.Descriptive.mean gaps)
      (Ckpt_stats.Descriptive.median gaps)
      (Ckpt_stats.Descriptive.quantile gaps 0.95);
    let hist =
      Ckpt_stats.Histogram.create ~lo:0.0
        ~hi:(2.0 *. Ckpt_stats.Descriptive.quantile gaps 0.9)
        ~bins:12
    in
    Array.iter (Ckpt_stats.Histogram.add hist) gaps;
    print_string (Ckpt_stats.Histogram.render hist ~width:40)
  end

let law_spec =
  let doc = "Per-node failure law (exp:<mtbf>, weibull:<shape>:<mean>, lognormal:<sigma>:<mean>)." in
  Arg.(value & opt string "weibull:0.7:500" & info [ "law" ] ~docv:"LAW" ~doc)

let nodes = Arg.(value & opt int 16 & info [ "nodes" ] ~docv:"N" ~doc:"Node count.")

let horizon =
  Arg.(value & opt float 100_000.0 & info [ "horizon" ] ~docv:"H" ~doc:"Observation window.")

let heterogeneity =
  Arg.(value & opt float 0.0
       & info [ "heterogeneity" ] ~docv:"H" ~doc:"Per-node scale jitter in [0,1).")

let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let output =
  Arg.(value & opt string "cluster.log" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Cluster log file.")

let generate_cmd =
  let info = Cmd.info "generate" ~doc:"generate a synthetic cluster failure log" in
  Cmd.v info
    Term.(const generate $ law_spec $ nodes $ horizon $ heterogeneity $ seed $ output)

let inspect_cmd =
  let info = Cmd.info "inspect" ~doc:"summarise a cluster failure log" in
  Cmd.v info Term.(const inspect $ path_arg)

let cmd =
  let doc = "synthetic failure traces for checkpoint-scheduling experiments" in
  let info = Cmd.info "ckpt-trace" ~version:"1.0.0" ~doc in
  Cmd.group info [ generate_cmd; inspect_cmd ]

let () = exit (Cmd.eval cmd)

(* CLI: Monte-Carlo estimation of the expected makespan of a checkpointed
   workload, with the exact Proposition 1 value for comparison when the
   law is Exponential; also the entry point of the deterministic
   fault-scenario harness (--scenario / --list-scenarios). *)

open Cmdliner
module Law = Ckpt_dist.Law
module Platform = Ckpt_failures.Platform
module Monte_carlo = Ckpt_sim.Monte_carlo
module Sim_run = Ckpt_sim.Sim_run
module Expected_time = Ckpt_core.Expected_time
module Obs_cli = Ckpt_obs_cli.Obs_cli
module Scenario = Ckpt_scenarios.Scenario
module Monitor = Ckpt_scenarios.Monitor
module Coverage = Ckpt_scenarios.Coverage

let parse_law spec =
  match Ckpt_dist.Law_spec.parse spec with
  | Ok law -> law
  | Error msg ->
      prerr_endline msg;
      exit 2

let list_scenarios () =
  List.iter
    (fun (s : Scenario.t) -> Printf.printf "%-24s %s\n" s.name s.description)
    Scenario.all

(* Run each requested scenario twice at the same seed: the digest
   equality is the reproducibility contract, checked on every
   invocation, not just in the test suite. Exit 1 on any monitor
   violation or digest mismatch. *)
(* Coverage-guided sweep: after the digest-checked pass defined the
   cov.* universe (combinators register their branch counters at
   construction), keep re-running the targets at consecutive seeds
   until every branch has fired or the budget runs out. *)
let run_coverage targets ~seed ~budget =
  let o = Coverage.sweep ~budget ~scenarios:targets ~seed () in
  print_newline ();
  List.iter
    (fun (name, hits) ->
      Printf.printf "  %-40s %s\n" name
        (if hits = 0 then "UNCOVERED" else Printf.sprintf "%d" hits))
    o.Coverage.covered;
  let total = List.length o.Coverage.covered in
  let hit = total - List.length o.Coverage.uncovered in
  Printf.printf "coverage: %d/%d branches (%d seed%s from %Ld)%s\n" hit total
    o.Coverage.seeds_used
    (if o.Coverage.seeds_used = 1 then "" else "s")
    seed
    (if Coverage.complete o then "" else " — INCOMPLETE");
  Coverage.complete o

let run_scenarios name seed coverage seed_budget obs_flush =
  let targets =
    if String.equal name "all" then Scenario.all
    else
      match Scenario.find name with
      | Some s -> [ s ]
      | None ->
          Printf.eprintf "ckpt-sim: unknown scenario %S (try --list-scenarios)\n" name;
          exit 2
  in
  let seed = Int64.of_int seed in
  let failed = ref false in
  List.iter
    (fun s ->
      let o = Scenario.run s ~seed in
      let o' = Scenario.run s ~seed in
      let reproducible = String.equal o.Scenario.digest o'.Scenario.digest in
      let ok = Monitor.ok o.verdicts in
      if not (ok && reproducible) then failed := true;
      Printf.printf "%-24s seed=%Ld makespan=%.6f failures=%d digest=%s %s%s\n"
        o.scenario seed o.stats.Sim_run.makespan o.stats.Sim_run.failures o.digest
        (if ok then "ok" else "VIOLATIONS")
        (if reproducible then "" else " NON-REPRODUCIBLE");
      List.iter
        (fun (v : Monitor.verdict) ->
          if v.violations > 0 then begin
            Printf.printf "  %s: %d/%d checks failed\n" v.monitor v.violations v.checks;
            List.iter
              (fun (x : Monitor.violation) ->
                Printf.printf "    t=%.6f %s\n" x.time x.message)
              v.examples
          end)
        o.verdicts)
    targets;
  if coverage && not (run_coverage targets ~seed ~budget:seed_budget) then failed := true;
  obs_flush ();
  if !failed then exit 1

let run work checkpoint recovery downtime law_spec processors runs seed timeline domains
    target_ci scenario scenario_list coverage seed_budget obs_flush =
  if scenario_list then list_scenarios ()
  else
    match scenario with
    | Some name -> run_scenarios name seed coverage seed_budget obs_flush
    | None ->
        let law = parse_law law_spec in
        let platform = Platform.make ~downtime ~processors ~proc_law:law () in
  let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int seed) in
  if timeline then begin
    (* Show one sample run before the aggregate estimate. *)
    let stream =
      Ckpt_failures.Failure_stream.of_platform platform
        (Ckpt_prng.Rng.substream rng "timeline")
    in
    let _, events =
      Ckpt_sim.Sim_run.run_segments_traced ~downtime
        ~next_failure:(Ckpt_failures.Failure_stream.next_after stream)
        [ Sim_run.segment ~work ~checkpoint ~recovery ]
    in
    print_string (Ckpt_sim.Timeline.render events)
  end;
  let estimate =
    Monte_carlo.estimate_segments ?domains ?target_ci
      ~model:(Monte_carlo.Platform platform) ~downtime ~runs ~rng
      [ Sim_run.segment ~work ~checkpoint ~recovery ]
  in
  Format.printf "platform: %s@." (Platform.to_string platform);
  Format.printf "simulated E(T) = %a@." Monte_carlo.pp_estimate estimate;
  (match law with
  | Law.Exponential { rate } ->
      let lambda = float_of_int processors *. rate in
      let exact = Expected_time.expected_v ~work ~checkpoint ~downtime ~recovery ~lambda in
      Format.printf "exact E(T) (Proposition 1) = %.6f — %s@." exact
        (if Monte_carlo.contains estimate.Monte_carlo.ci99 exact then
           "inside the 99% CI"
         else "OUTSIDE the 99% CI")
  | _ -> Format.printf "(no closed form for this law; see RR-7907 Section 6)@.");
  obs_flush ()

let farg name doc default =
  Arg.(value & opt float default & info [ name ] ~docv:(String.uppercase_ascii name) ~doc)

let work = farg "work" "Work duration W." 100.0
let checkpoint = farg "checkpoint" "Checkpoint cost C." 5.0
let recovery = farg "recovery" "Recovery cost R." 5.0
let downtime = farg "downtime" "Downtime D." 1.0

let law_spec =
  let doc = "Per-processor failure law: exp:<mtbf>, weibull:<shape>:<mean>, lognormal:<sigma>:<mean>." in
  Arg.(value & opt string "exp:1000" & info [ "law" ] ~docv:"LAW" ~doc)

let processors =
  Arg.(value & opt int 1 & info [ "p"; "processors" ] ~docv:"P" ~doc:"Processor count.")

let runs =
  Arg.(value & opt int 50_000 & info [ "n"; "runs" ] ~docv:"N" ~doc:"Monte-Carlo replications.")

let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let timeline =
  Arg.(value & flag
       & info [ "timeline" ] ~doc:"Print the ASCII timeline of one sample run.")

let domains =
  let doc =
    "Domains of the parallel Monte-Carlo pool (default: up to 8, hardware permitting). \
     The estimate is bit-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)

let target_ci =
  let doc =
    "Adaptive sampling: keep doubling the campaign (starting from --runs, capped at 64x) \
     until the relative 99% CI half-width falls below $(docv), e.g. 0.001."
  in
  Arg.(value & opt (some float) None & info [ "target-ci" ] ~docv:"REL" ~doc)

let scenario =
  let doc =
    "Run the named deterministic fault scenario (with --seed) instead of a Monte-Carlo \
     estimate: replays the scenario's failure pattern, checks every invariant monitor, \
     verifies the run digest reproduces, and exits non-zero on any violation. \
     $(b,all) runs the whole registry (the CI smoke pass)."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)

let scenario_list =
  Arg.(value & flag
       & info [ "list-scenarios" ]
           ~doc:"List the registered fault scenarios and exit.")

let coverage =
  let doc =
    "With --scenario: after the digest-checked pass, sweep consecutive seeds until every \
     registered fault-injection branch and monitor outcome (the cov.* counters) has \
     fired, then print the per-branch hit counts. Exits non-zero if the --seed-budget \
     runs out first."
  in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let seed_budget =
  let doc = "Maximum consecutive seeds the --coverage sweep may consume." in
  Arg.(value & opt int Ckpt_scenarios.Coverage.default_budget
       & info [ "seed-budget" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Monte-Carlo estimate of the expected checkpointed execution time" in
  let info = Cmd.info "ckpt-sim" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(const run $ work $ checkpoint $ recovery $ downtime $ law_spec $ processors
          $ runs $ seed $ timeline $ domains $ target_ci $ scenario $ scenario_list
          $ coverage $ seed_budget $ Obs_cli.term)

let () = exit (Cmd.eval cmd)

(* CLI runner for the E1-E10 reproduction experiments. *)

open Cmdliner
module Obs_cli = Ckpt_obs_cli.Obs_cli

let run_experiments ids seed quick domains target_ci obs_flush =
  let config =
    { Ckpt_experiments.Common.seed = Int64.of_int seed; quick; domains; target_ci }
  in
  let experiments =
    match ids with
    | [] -> Ckpt_experiments.Registry.all
    | ids ->
        List.map
          (fun id ->
            match Ckpt_experiments.Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (use E1..E17)\n" id;
                exit 2)
          ids
  in
  List.iter (Ckpt_experiments.Registry.run_and_print config) experiments;
  obs_flush ()

let ids =
  let doc = "Experiments to run (E1..E17). Runs all when omitted." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let seed =
  let doc = "PRNG seed: every table is bit-reproducible for a fixed seed." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let quick =
  let doc = "Reduced replication counts (CI-sized run)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let domains =
  let doc =
    "Domains of the parallel Monte-Carlo pool (default: up to 8, hardware permitting). \
     Tables are bit-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)

let target_ci =
  let doc =
    "Adaptive sampling for the simulation-backed experiments: sample until the relative \
     99% CI half-width falls below $(docv) (replication counts become the initial round)."
  in
  Arg.(value & opt (some float) None & info [ "target-ci" ] ~docv:"REL" ~doc)

let cmd =
  let doc = "regenerate the reproduction experiments of RR-7907" in
  let info = Cmd.info "ckpt-experiments" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(const run_experiments $ ids $ seed $ quick $ domains $ target_ci $ Obs_cli.term)

let () = exit (Cmd.eval cmd)

(* CLI runner for the E1-E10 reproduction experiments. *)

open Cmdliner

let run_experiments ids seed quick =
  let config = { Ckpt_experiments.Common.seed = Int64.of_int seed; quick } in
  let experiments =
    match ids with
    | [] -> Ckpt_experiments.Registry.all
    | ids ->
        List.map
          (fun id ->
            match Ckpt_experiments.Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (use E1..E17)\n" id;
                exit 2)
          ids
  in
  List.iter (Ckpt_experiments.Registry.run_and_print config) experiments

let ids =
  let doc = "Experiments to run (E1..E17). Runs all when omitted." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let seed =
  let doc = "PRNG seed: every table is bit-reproducible for a fixed seed." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let quick =
  let doc = "Reduced replication counts (CI-sized run)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let cmd =
  let doc = "regenerate the reproduction experiments of RR-7907" in
  let info = Cmd.info "ckpt-experiments" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run_experiments $ ids $ seed $ quick)

let () = exit (Cmd.eval cmd)

(* CLI: optimal checkpoint placement for a linear chain (Algorithm 1).
   The spec format is documented in Ckpt_core.Chain_spec. *)

open Cmdliner
module Chain_problem = Ckpt_core.Chain_problem
module Chain_spec = Ckpt_core.Chain_spec
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Table = Ckpt_stats.Table
module Obs_cli = Ckpt_obs_cli.Obs_cli

let run_chain spec_path lambda_override compare obs_flush =
  let problem =
    try Chain_spec.parse_file_with_lambda ?lambda:lambda_override spec_path
    with Chain_spec.Parse_error msg ->
      prerr_endline msg;
      exit 2
  in
  (* The memoized Algorithm 1 transcription, so --metrics reports real
     dp.memo hit rates alongside the placement. *)
  let solution = Chain_dp.solve_memoized problem in
  Printf.printf "chain: %d tasks, total work %g, lambda %g, D %g, R0 %g\n"
    (Chain_problem.size problem) (Chain_problem.total_work problem)
    problem.Chain_problem.lambda problem.Chain_problem.downtime
    problem.Chain_problem.initial_recovery;
  Printf.printf "optimal expected makespan: %.6f\n" solution.Chain_dp.expected_makespan;
  Printf.printf "checkpoints after tasks (1-based): %s\n"
    (String.concat ", "
       (List.map (fun i -> string_of_int (i + 1))
          (Schedule.checkpoint_indices solution.Chain_dp.schedule)));
  Printf.printf "schedule: %s\n" (Schedule.to_string solution.Chain_dp.schedule);
  if compare then begin
    let t =
      Table.create ~title:"comparison with standard placements"
        ~columns:[ ("policy", Table.Left); ("expected makespan", Table.Right);
                   ("ratio to optimal", Table.Right) ]
    in
    List.iter
      (fun (label, schedule) ->
        let e = Schedule.expected_makespan schedule in
        Table.add_row t
          [ label; Table.cell_f e;
            Table.cell_f (e /. solution.Chain_dp.expected_makespan) ])
      [
        ("optimal (DP)", solution.Chain_dp.schedule);
        ("checkpoint-all", Schedule.checkpoint_all problem);
        ("checkpoint-none", Schedule.checkpoint_none problem);
        ("Young period", Schedule.young problem);
        ("Daly period", Schedule.daly problem);
      ];
    Table.print t
  end;
  obs_flush ()

let spec_path =
  let doc = "Chain specification file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)

let lambda_override =
  let doc = "Override the platform failure rate of the spec." in
  Arg.(value & opt (some float) None & info [ "l"; "lambda" ] ~docv:"RATE" ~doc)

let compare =
  let doc = "Also print standard placements for comparison." in
  Arg.(value & flag & info [ "c"; "compare" ] ~doc)

let cmd =
  let doc = "optimal checkpoint placement for a linear chain (RR-7907, Algorithm 1)" in
  let info = Cmd.info "ckpt-chain" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run_chain $ spec_path $ lambda_override $ compare $ Obs_cli.term)

let () = exit (Cmd.eval cmd)

(* ckpt-bench: machine-readable benchmarks and the noise-aware
   regression gate (docs/BENCHMARKS.md).

     ckpt-bench run   [--quick] [-o FILE] [--filter SUBSTR] [--tag TAG]
     ckpt-bench diff  BASELINE CANDIDATE [--config bench.toml]
     ckpt-bench check --baseline FILE [--candidate FILE] [--full]
                      [--config FILE] [-o FILE]

   `run` executes the Ckpt_bench case registry and serializes a
   BENCH_<n>.json (schema.mli); `diff` compares two result files with
   the noise-aware comparator — strict defaults (max(10%, 3 sigma))
   unless --config supplies bench.toml overrides; `check` is the CI
   gate: it runs the benches (quick mode by default), validates the
   required metric keys as typed JSON fields (a key inside a string
   value does NOT count, unlike the grep this replaced), and compares
   against the committed baseline. `check` auto-loads ./bench.toml so
   the CI invocation is reproducible locally with one command.

   Exit codes: 0 ok, 1 regression/missing-case/missing-metric-key,
   2 usage or configuration error. *)

module Bench_config = Ckpt_bench.Bench_config
module Cases = Ckpt_bench.Cases
module Compare = Ckpt_bench.Compare
module Runner = Ckpt_bench.Runner
module Schema = Ckpt_bench.Schema

open Cmdliner

let err fmt = Printf.ksprintf (fun msg -> prerr_endline ("ckpt-bench: " ^ msg)) fmt

(* The trajectory files: BENCH_1.json, BENCH_2.json, ... in the current
   directory; `run` picks the next free index by default. *)
let next_bench_path () =
  let rec go n =
    let path = Printf.sprintf "BENCH_%d.json" n in
    if Sys.file_exists path then go (n + 1) else path
  in
  go 1

let load_config ~required = function
  | Some path -> (
      match Bench_config.load path with
      | config -> Ok (Some config)
      | exception Failure msg -> Error msg
      | exception Sys_error msg -> Error msg)
  | None ->
      if required && Sys.file_exists "bench.toml" then
        match Bench_config.load "bench.toml" with
        | config -> Ok (Some config)
        | exception Failure msg -> Error msg
        | exception Sys_error msg -> Error msg
      else Ok None

let case_filter ~filter ~tags (case : Cases.case) =
  (match filter with
  | None -> true
  | Some sub ->
      let len = String.length sub in
      let n = String.length case.name in
      len <= n
      && Seq.ints 0
         |> Seq.take (n - len + 1)
         |> Seq.exists (fun i -> String.equal (String.sub case.name i len) sub))
  && (tags = [] || List.exists (fun t -> List.mem t case.tags) tags)

let progress verbose name (result : Schema.case_result) =
  if verbose then
    Printf.eprintf "  %-32s mean %.3e s  (stddev %.1e, %d samples)\n%!" name
      result.Schema.mean result.Schema.stddev result.Schema.samples

let execute ~quick ~filter ~tags ~verbose =
  if verbose then
    Printf.eprintf "ckpt-bench: running cases (%s mode)...\n%!"
      (if quick then "quick" else "full");
  let run =
    Runner.run ~filter:(case_filter ~filter ~tags) ~on_case:(progress verbose) ~quick ()
  in
  Cases.assert_mc_deterministic ();
  run

(* --- run ------------------------------------------------------------ *)

let run_cmd quick output filter tags quiet =
  let run = execute ~quick ~filter ~tags ~verbose:(not quiet) in
  if run.Schema.cases = [] then begin
    err "no case matches the given --filter/--tag";
    2
  end
  else begin
    let path = match output with Some p -> p | None -> next_bench_path () in
    Schema.write ~path run;
    Printf.printf "wrote %s (%d cases, git %s, %s mode)\n" path
      (List.length run.Schema.cases) run.Schema.meta.Schema.git_sha
      (match run.Schema.meta.Schema.mode with Schema.Quick -> "quick" | Schema.Full -> "full");
    0
  end

(* --- diff ----------------------------------------------------------- *)

let mode_warning (baseline : Schema.run) (candidate : Schema.run) =
  let mode_name = function Schema.Quick -> "quick" | Schema.Full -> "full" in
  let bm = baseline.Schema.meta.Schema.mode and cm = candidate.Schema.meta.Schema.mode in
  match (bm, cm) with
  | Schema.Quick, Schema.Quick | Schema.Full, Schema.Full -> ()
  | _ ->
      err "warning: comparing a %s-mode baseline against a %s-mode candidate; \
           workloads differ, deltas are not meaningful"
        (mode_name bm) (mode_name cm)

let diff_cmd baseline_path candidate_path config_path =
  match load_config ~required:false config_path with
  | Error msg ->
      err "%s" msg;
      2
  | Ok config -> (
      match (Schema.read ~path:baseline_path, Schema.read ~path:candidate_path) with
      | Error msg, _ | _, Error msg ->
          err "%s" msg;
          2
      | Ok baseline, Ok candidate ->
          mode_warning baseline candidate;
          let report = Compare.run ?config ~baseline candidate in
          print_string (Compare.render report);
          if Compare.ok report then 0 else 1)

(* --- check ---------------------------------------------------------- *)

let check_metrics (config : Bench_config.t option) (candidate : Schema.run) =
  let required =
    match config with Some c -> c.Bench_config.required_metrics | None -> []
  in
  let missing = List.filter (fun key -> not (Schema.has_metric candidate key)) required in
  List.iter (fun key -> err "required metric key %S is not a field of the snapshot" key)
    missing;
  if required <> [] then
    Printf.printf "metric keys: %d/%d required keys present\n"
      (List.length required - List.length missing)
      (List.length required);
  missing = []

let check_cmd baseline_path candidate_path full config_path output =
  match load_config ~required:true config_path with
  | Error msg ->
      err "%s" msg;
      2
  | Ok config -> (
      match Schema.read ~path:baseline_path with
      | Error msg ->
          err "%s" msg;
          2
      | Ok baseline -> (
          let candidate =
            match candidate_path with
            | Some path -> Schema.read ~path
            | None ->
                let run =
                  execute ~quick:(not full) ~filter:None ~tags:[] ~verbose:true
                in
                Option.iter (fun path -> Schema.write ~path run) output;
                Ok run
          in
          match candidate with
          | Error msg ->
              err "%s" msg;
              2
          | Ok candidate ->
              mode_warning baseline candidate;
              let keys_ok = check_metrics config candidate in
              let report = Compare.run ?config ~baseline candidate in
              print_string (Compare.render report);
              if Compare.ok report && keys_ok then 0 else 1))

(* --- command line --------------------------------------------------- *)

let quick_t =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink workloads and sample counts (CI).")

let output_t =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output path (defaults to the next free $(b,BENCH_<n>.json)).")

let filter_t =
  Arg.(value & opt (some string) None & info [ "filter" ] ~docv:"SUBSTR"
         ~doc:"Only run cases whose name contains $(docv).")

let tags_t =
  Arg.(value & opt_all string [] & info [ "tag" ] ~docv:"TAG"
         ~doc:"Only run cases carrying $(docv) (repeatable; any match).")

let quiet_t = Arg.(value & flag & info [ "quiet" ] ~doc:"No per-case progress on stderr.")

let config_t =
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE"
         ~doc:"Comparator thresholds and required metric keys (bench.toml).")

let run_term = Term.(const run_cmd $ quick_t $ output_t $ filter_t $ tags_t $ quiet_t)

let run_cmd_v =
  Cmd.v
    (Cmd.info "run" ~doc:"Run the benchmark cases and write a BENCH_<n>.json file.")
    run_term

let diff_cmd_v =
  let baseline_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE")
  in
  let candidate_t =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two result files with the noise-aware comparator (strict \
          defaults unless --config is given). Exit 1 on regression or missing \
          case.")
    Term.(const diff_cmd $ baseline_t $ candidate_t $ config_t)

let check_cmd_v =
  let baseline_t =
    Arg.(required & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Committed baseline to gate against.")
  in
  let candidate_t =
    Arg.(value & opt (some string) None & info [ "candidate" ] ~docv:"FILE"
           ~doc:"Use an existing result file instead of running the benches.")
  in
  let full_t =
    Arg.(value & flag & info [ "full" ] ~doc:"Run full workloads (default: quick).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "CI gate: run the benches (quick mode), validate the required metric \
          keys as typed JSON fields, and compare against the baseline. \
          Auto-loads ./bench.toml when present.")
    Term.(const check_cmd $ baseline_t $ candidate_t $ full_t $ config_t $ output_t)

let cmd =
  let doc = "machine-readable benchmarks with a noise-aware regression gate" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "$(tname) runs the named, tagged benchmark cases of the Ckpt_bench \
         registry (kernel micro-benches, the O(n^2) chain DP at n in {50, \
         200, 800}, simulator throughput, the Monte-Carlo pool at 1/2/4/8 \
         domains) and serializes every run to the versioned BENCH_<n>.json \
         schema: per-case mean/stddev/99% CI over monotonic-clock timings, \
         run metadata (git sha, OCaml version, domain count, quick/full \
         mode) and the embedded Ckpt_obs.Metrics snapshot. See \
         docs/BENCHMARKS.md.";
    ]
  in
  Cmd.group (Cmd.info "ckpt-bench" ~doc ~man) [ run_cmd_v; diff_cmd_v; check_cmd_v ]

let () = exit (Cmd.eval' cmd)

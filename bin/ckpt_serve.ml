(* CLI for the ckpt-serve daemon (protocol in docs/SERVING.md).

   [serve] runs the daemon until SIGINT/SIGTERM, then drains.
   [smoke] is the self-contained CI check: it starts a server on an
   ephemeral loopback port, drives a scripted request mix through a
   real socket (cold pass, then a repeat pass that must hit the plan
   cache), and asserts every response is bit-for-bit identical to the
   offline solver on the same instance. *)

open Cmdliner
module Json = Ckpt_json.Json
module Task = Ckpt_dag.Task
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Server = Ckpt_serve.Server
module Client = Ckpt_serve.Client
module Obs_cli = Ckpt_obs_cli.Obs_cli

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let run_serve host port workers queue_capacity cache_capacity retry_after_ms
    obs_flush =
  let config =
    {
      Server.default_config with
      host;
      port;
      workers;
      queue_capacity;
      cache_capacity;
      retry_after_ms;
    }
  in
  let server = Server.start config in
  Printf.printf "ckpt-serve: listening on %s:%d (workers=%d queue=%d cache=%d)\n%!"
    host (Server.port server) workers queue_capacity cache_capacity;
  let stop_requested = Atomic.make false in
  let request_stop (_ : int) = Atomic.set stop_requested true in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.2
  done;
  prerr_endline "ckpt-serve: draining in-flight work";
  Server.stop server;
  obs_flush ();
  0

(* ------------------------------------------------------------------ *)
(* smoke                                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic instance family shared by the request builder and the
   offline oracle: task i of instance k has hand-rolled quasi-random
   costs (no RNG — the mix must be identical on every machine). *)
let smoke_tasks k n =
  List.init n (fun i ->
      let work = 1.0 +. float_of_int ((((i + 1) * (k + 3) * 7919) mod 97) + 1) /. 13.0 in
      let checkpoint = 0.1 +. float_of_int (((i + 2) * (k + 1) * 104729) mod 23) /. 29.0 in
      let recovery = 0.2 +. float_of_int (((i + 5) * (k + 2) * 1299709) mod 17) /. 31.0 in
      (work, checkpoint, recovery))

let smoke_instance k =
  let n = 5 + ((k * 11) mod 28) in
  let lambda = 0.005 +. (float_of_int (k + 1) /. 200.0) in
  let downtime = float_of_int (k mod 3) /. 10.0 in
  let initial_recovery = float_of_int (k mod 4) /. 8.0 in
  (lambda, downtime, initial_recovery, smoke_tasks k n)

let chain_params (lambda, downtime, initial_recovery, tasks) =
  Json.Obj
    [
      ("lambda", Json.Number lambda);
      ("downtime", Json.Number downtime);
      ("initial_recovery", Json.Number initial_recovery);
      ( "tasks",
        Json.List
          (List.map
             (fun (work, checkpoint, recovery) ->
               Json.Obj
                 [
                   ("work", Json.Number work);
                   ("checkpoint", Json.Number checkpoint);
                   ("recovery", Json.Number recovery);
                 ])
             tasks) );
    ]

let offline_solution (lambda, downtime, initial_recovery, tasks) =
  let tasks =
    List.mapi
      (fun i (work, checkpoint_cost, recovery_cost) ->
        Task.make ~id:i ~work ~checkpoint_cost ~recovery_cost ())
      tasks
  in
  Chain_dp.solve (Chain_problem.make ~downtime ~initial_recovery ~lambda tasks)

exception Smoke_failed of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Smoke_failed msg)) fmt

let response_field name response =
  match Json.member name response with
  | Some v -> v
  | None -> failf "response is missing field %S: %s" name (Json.to_string response)

let check_ok response =
  match Json.member "ok" response with
  | Some (Json.Bool true) -> ()
  | _ -> failf "request failed: %s" (Json.to_string response)

let check_cache expected response =
  match Json.member "cache" response with
  | Some (Json.String c) when c = expected -> ()
  | _ ->
      failf "expected cache=%s in %s" expected (Json.to_string response)

let check_against_oracle instance response =
  check_ok response;
  let result = response_field "result" response in
  let oracle = offline_solution instance in
  (match Json.to_float (response_field "expected_makespan" result) with
  | Some served when Float.equal served oracle.Chain_dp.expected_makespan -> ()
  | Some served ->
      failf "makespan mismatch: served %.17g, offline %.17g" served
        oracle.Chain_dp.expected_makespan
  | None -> failf "expected_makespan is not a number");
  let served_ckpts =
    match Json.to_list (response_field "checkpoints_after" result) with
    | Some l -> List.filter_map Json.to_int l
    | None -> failf "checkpoints_after is not a list"
  in
  let oracle_ckpts = Schedule.checkpoint_indices oracle.Chain_dp.schedule in
  if served_ckpts <> oracle_ckpts then
    failf "checkpoint placement mismatch: served [%s], offline [%s]"
      (String.concat ";" (List.map string_of_int served_ckpts))
      (String.concat ";" (List.map string_of_int oracle_ckpts))

let run_smoke instances workers obs_flush =
  let config = { Server.default_config with workers } in
  let server = Server.start config in
  let finish code =
    Server.stop server;
    obs_flush ();
    code
  in
  try
    let client = Client.connect ~port:(Server.port server) () in
    (match Client.call client ~id:"ping-0" "ping" with
    | response -> check_ok response);
    let mix = List.init instances smoke_instance in
    (* Cold pass: every instance is new, so every response must be a
       cache miss and must match the offline solver bit-for-bit. *)
    List.iteri
      (fun i instance ->
        let response =
          Client.call client
            ~id:(Printf.sprintf "cold-%d" i)
            ~params:(chain_params instance) "plan_chain"
        in
        check_cache "miss" response;
        check_against_oracle instance response)
      mix;
    (* Repeat pass: identical requests — the canonicalizing cache must
       serve all of them, still bit-for-bit identical. *)
    List.iteri
      (fun i instance ->
        let response =
          Client.call client
            ~id:(Printf.sprintf "warm-%d" i)
            ~params:(chain_params instance) "plan_chain"
        in
        check_cache "hit" response;
        check_against_oracle instance response)
      mix;
    (* Error paths stay errors, not hangs. *)
    (match Client.call client ~id:"nope-0" "no_such_method" with
    | response -> (
        match Json.member "ok" response with
        | Some (Json.Bool false) -> ()
        | _ -> failf "unknown method must fail: %s" (Json.to_string response)));
    Client.close client;
    Printf.printf
      "ckpt-serve smoke: %d cold + %d cached requests bit-identical to the \
       offline solver\n"
      instances instances;
    finish 0
  with
  | Smoke_failed msg ->
      prerr_endline ("ckpt-serve smoke: FAILED: " ^ msg);
      finish 1
  | Client.Transport msg ->
      prerr_endline ("ckpt-serve smoke: transport failure: " ^ msg);
      finish 1

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let host =
  let doc = "Address to bind." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let port =
  let doc = "Port to bind (0 picks a free port)." in
  Arg.(value & opt int 0 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let workers =
  let doc = "Worker-domain count." in
  Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc)

let queue_capacity =
  let doc = "Bounded request-queue capacity (beyond it: queue_full)." in
  Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N" ~doc)

let cache_capacity =
  let doc = "Plan-cache capacity (canonicalized problems)." in
  Arg.(value & opt int 1024 & info [ "cache-capacity" ] ~docv:"N" ~doc)

let retry_after_ms =
  let doc = "Backoff hint carried by queue_full rejections." in
  Arg.(value & opt int 25 & info [ "retry-after-ms" ] ~docv:"MS" ~doc)

let instances =
  let doc = "Number of distinct instances in the smoke mix." in
  Arg.(value & opt int 12 & info [ "n"; "instances" ] ~docv:"N" ~doc)

let serve_cmd =
  let doc = "run the planning daemon until SIGINT/SIGTERM, then drain" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ host $ port $ workers $ queue_capacity $ cache_capacity
      $ retry_after_ms $ Obs_cli.term)

let smoke_cmd =
  let doc =
    "start a loopback server, drive a scripted mix, verify bit-for-bit \
     against the offline solver"
  in
  Cmd.v (Cmd.info "smoke" ~doc) Term.(const run_smoke $ instances $ workers $ Obs_cli.term)

let cmd =
  let doc = "checkpoint-planning service (RR-7907 solvers behind a socket)" in
  let info = Cmd.info "ckpt-serve" ~version:"1.0.0" ~doc in
  Cmd.group info [ serve_cmd; smoke_cmd ]

let () = exit (Cmd.eval' cmd)

(* CLI: checkpoint scheduling for a general workflow DAG (linearization
   + placement, Section 6 of the paper). The spec format is documented
   in Ckpt_dag.Dag_spec. *)

open Cmdliner
module Dag = Ckpt_dag.Dag
module Dag_spec = Ckpt_dag.Dag_spec
module Task = Ckpt_dag.Task
module Dag_sched = Ckpt_core.Dag_sched
module Schedule = Ckpt_core.Schedule

let run spec_path lambda downtime exact dot =
  let dag =
    try Dag_spec.parse_file spec_path
    with Dag_spec.Parse_error msg ->
      prerr_endline msg;
      exit 2
  in
  if dot then print_string (Dag.to_dot dag)
  else begin
    Printf.printf "workflow: %d tasks, %d edges, total work %g, critical path %g\n"
      (Dag.size dag)
      (List.length (Dag.edges dag))
      (Dag.total_work dag) (Dag.critical_path dag);
    let solution =
      if exact then Dag_sched.exact_small ~downtime ~lambda dag
      else Dag_sched.solve_heuristic ~downtime ~lambda dag
    in
    Printf.printf "%s expected makespan: %.6f\n"
      (if exact then "optimal (exhaustive)" else "best heuristic")
      solution.Dag_sched.expected_makespan;
    let name id = (Dag.task dag id).Task.name in
    Printf.printf "execution order: %s\n"
      (String.concat " -> " (List.map name solution.Dag_sched.order));
    let order = Array.of_list solution.Dag_sched.order in
    Printf.printf "checkpoints after: %s\n"
      (String.concat ", "
         (List.map (fun pos -> name order.(pos))
            (Schedule.checkpoint_indices solution.Dag_sched.placement)))
  end

let spec_path =
  let doc = "Workflow specification file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)

let lambda =
  let doc = "Platform failure rate." in
  Arg.(required & opt (some float) None & info [ "l"; "lambda" ] ~docv:"RATE" ~doc)

let downtime =
  let doc = "Downtime after each failure." in
  Arg.(value & opt float 0.0 & info [ "d"; "downtime" ] ~docv:"D" ~doc)

let exact =
  let doc = "Exhaust all linearizations (small DAGs only)." in
  Arg.(value & flag & info [ "e"; "exact" ] ~doc)

let dot =
  let doc = "Print the Graphviz rendering of the DAG and exit." in
  Arg.(value & flag & info [ "dot" ] ~doc)

let cmd =
  let doc = "checkpoint scheduling for workflow DAGs (linearization + placement)" in
  let info = Cmd.info "ckpt-dag" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run $ spec_path $ lambda $ downtime $ exact $ dot)

let () = exit (Cmd.eval cmd)

(* Tests for the precomputed O(1)-transition segment-cost kernel: the
   product-form tables must track the reference exp/expm1 evaluation
   across the small-argument fallback boundary and abandon the tables
   wholesale across the overflow boundary. *)

module Generate = Ckpt_dag.Generate
module Rng = Ckpt_prng.Rng
module Chain_problem = Ckpt_core.Chain_problem
module Segment_cost = Ckpt_core.Segment_cost

(* Relative agreement against the documented 1e-9 kernel tolerance. *)
let rel_close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| rel < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

(* A kernel built directly from raw duration arrays (no Chain_problem),
   exercising the create-from-tables path the moldable DP uses. *)
let kernel_of ~lambda ~downtime ~works ~checkpoints ~recoveries =
  let n = Array.length works in
  let prefix_work = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix_work.(i + 1) <- prefix_work.(i) +. works.(i)
  done;
  Segment_cost.create ~lambda ~downtime ~prefix_work ~checkpoint_costs:checkpoints
    ~recovery_costs:recoveries

let random_arrays rng n ~lo ~hi =
  Array.init n (fun _ -> Rng.float_range rng lo hi)

(* Every (first, last) pair of the kernel against the reference
   evaluation — the core agreement property. *)
let check_all_pairs name kernel =
  let n = Segment_cost.size kernel in
  for first = 0 to n - 1 do
    for last = first to n - 1 do
      rel_close
        (Printf.sprintf "%s (%d, %d)" name first last)
        (Segment_cost.reference_cost kernel ~first ~last)
        (Segment_cost.cost kernel ~first ~last)
    done
  done

let test_agreement_heterogeneous () =
  (* λ spans ten orders of magnitude so segment arguments λ·(W+C) land
     on both sides of the adaptive small threshold: the tiny-λ kernels
     take the expm1 fallback on every transition, the large-λ ones the
     product form, and the middle ones mix the two. *)
  let rng = Rng.create ~seed:515L in
  List.iter
    (fun lambda ->
      let n = 1 + Rng.int rng 24 in
      let kernel =
        kernel_of ~lambda ~downtime:(Rng.float_range rng 0.0 2.0)
          ~works:(random_arrays rng n ~lo:0.5 ~hi:20.0)
          ~checkpoints:(random_arrays rng n ~lo:0.01 ~hi:3.0)
          ~recoveries:(random_arrays rng n ~lo:0.01 ~hi:3.0)
      in
      check_all_pairs (Printf.sprintf "lambda=%g" lambda) kernel)
    [ 1e-9; 1e-7; 1e-5; 1e-3; 1e-1; 1.0; 10.0 ]

let test_small_threshold_boundary () =
  (* Work values straddling the adaptive cutoff: transitions with
     λ·(W+C) just below small_threshold take expm1, just above take the
     product form, and both must agree with the reference. *)
  let lambda = 1e-6 in
  let works = [| 0.1; 0.4; 2.0; 10.0; 50.0; 200.0; 800.0; 3000.0 |] in
  let kernel =
    kernel_of ~lambda ~downtime:0.5 ~works ~checkpoints:(Array.make 8 0.0)
      ~recoveries:(Array.make 8 0.05)
  in
  let threshold = Segment_cost.small_threshold kernel in
  Alcotest.(check bool) "tables active" true (Segment_cost.uses_tables kernel);
  (* The instance really does straddle the cutoff. *)
  let below = ref false and above = ref false in
  let prefix = Array.make 9 0.0 in
  Array.iteri (fun i w -> prefix.(i + 1) <- prefix.(i) +. w) works;
  for first = 0 to 7 do
    for last = first to 7 do
      let a = lambda *. (prefix.(last + 1) -. prefix.(first)) in
      if a < threshold then below := true else above := true
    done
  done;
  Alcotest.(check bool) "some transitions below the cutoff" true !below;
  Alcotest.(check bool) "some transitions above the cutoff" true !above;
  check_all_pairs "threshold boundary" kernel

let test_overflow_boundary () =
  (* λ·(total work + max C) just below the cutoff keeps the tables;
     just above abandons them — and the two kernels agree with their
     references (and each other) on every transition either way. *)
  let make total =
    kernel_of ~lambda:1.0 ~downtime:1.0
      ~works:(Array.make 10 (total /. 10.0))
      ~checkpoints:(Array.make 10 0.0) ~recoveries:(Array.make 10 0.0)
  in
  let under = make (Segment_cost.overflow_cutoff -. 1.0) in
  let over = make (Segment_cost.overflow_cutoff +. 1.0) in
  Alcotest.(check bool) "under cutoff: tables" true (Segment_cost.uses_tables under);
  Alcotest.(check bool) "over cutoff: reference mode" false (Segment_cost.uses_tables over);
  check_all_pairs "just under the cutoff" under;
  check_all_pairs "just over the cutoff" over;
  (* Full-chain costs are finite on both sides of the cutoff... *)
  Alcotest.(check bool) "finite below" true
    (Float.is_finite (Segment_cost.cost under ~first:0 ~last:9));
  Alcotest.(check bool) "finite above" true
    (Float.is_finite (Segment_cost.cost over ~first:0 ~last:9));
  (* ...and saturate to infinity together once λ·(W+C) passes ~709.78:
     the fallback boundary does not move the overflow point. *)
  let saturated = make 720.0 in
  Alcotest.(check bool) "saturated kernel is in reference mode" false
    (Segment_cost.uses_tables saturated);
  Alcotest.(check bool) "kernel cost overflows to infinity" true
    (Float.equal (Segment_cost.cost saturated ~first:0 ~last:9) infinity);
  Alcotest.(check bool) "reference cost overflows to infinity" true
    (Float.equal (Segment_cost.reference_cost saturated ~first:0 ~last:9) infinity)

let test_chain_problem_kernel_identity () =
  (* The kernel embedded in a Chain_problem reproduces
     segment_expected exactly (same code path). *)
  let rng = Rng.create ~seed:808L in
  let spec = Generate.uniform_costs () in
  let dag = Generate.chain rng spec ~n:12 in
  let p = Chain_problem.of_dag ~downtime:0.3 ~initial_recovery:0.4 ~lambda:0.07 dag in
  let kernel = Chain_problem.kernel p in
  Alcotest.(check int) "kernel size" 12 (Segment_cost.size kernel);
  for first = 0 to 11 do
    for last = first to 11 do
      Alcotest.(check bool)
        (Printf.sprintf "segment_expected = kernel cost (%d, %d)" first last)
        true
        (Float.equal
           (Chain_problem.segment_expected p ~first ~last)
           (Segment_cost.cost kernel ~first ~last))
    done
  done

let test_monotone_dc_support () =
  (* Uniform costs always qualify; generated chains (costs in [0.1, 1],
     works >= 1) qualify; a recovery spike larger than the adjacent
     task weight disqualifies; overflow mode disqualifies. *)
  let uniform =
    kernel_of ~lambda:0.05 ~downtime:0.2 ~works:(Array.make 6 2.0)
      ~checkpoints:(Array.make 6 0.5) ~recoveries:(Array.make 6 0.5)
  in
  Alcotest.(check bool) "uniform chain qualifies" true
    (Segment_cost.supports_monotone_dc uniform);
  let rng = Rng.create ~seed:66L in
  let dag = Generate.chain rng (Generate.uniform_costs ()) ~n:40 in
  let p = Chain_problem.of_dag ~downtime:0.2 ~lambda:0.1 dag in
  Alcotest.(check bool) "generated chain qualifies" true
    (Segment_cost.supports_monotone_dc (Chain_problem.kernel p));
  let spiked =
    kernel_of ~lambda:0.05 ~downtime:0.2 ~works:(Array.make 6 2.0)
      ~checkpoints:(Array.make 6 0.5)
      ~recoveries:[| 0.5; 0.5; 0.5; 9.0; 0.5; 0.5 |]
  in
  Alcotest.(check bool) "recovery spike disqualifies" false
    (Segment_cost.supports_monotone_dc spiked);
  let ckpt_drop =
    kernel_of ~lambda:0.05 ~downtime:0.2 ~works:(Array.make 6 2.0)
      ~checkpoints:[| 0.5; 0.5; 9.0; 0.5; 0.5; 0.5 |]
      ~recoveries:(Array.make 6 0.5)
  in
  Alcotest.(check bool) "checkpoint drop larger than a weight disqualifies" false
    (Segment_cost.supports_monotone_dc ckpt_drop);
  let overflow =
    kernel_of ~lambda:1.0 ~downtime:0.2 ~works:(Array.make 6 200.0)
      ~checkpoints:(Array.make 6 0.5) ~recoveries:(Array.make 6 0.5)
  in
  Alcotest.(check bool) "overflow mode disqualifies" false
    (Segment_cost.supports_monotone_dc overflow)

let test_shape_validation () =
  Alcotest.check_raises "empty chain rejected"
    (Invalid_argument "Segment_cost.create: empty chain") (fun () ->
      ignore
        (Segment_cost.create ~lambda:0.1 ~downtime:0.0 ~prefix_work:[| 0.0 |]
           ~checkpoint_costs:[||] ~recovery_costs:[||]));
  Alcotest.check_raises "prefix length checked"
    (Invalid_argument "Segment_cost.create: prefix_work must have length n + 1")
    (fun () ->
      ignore
        (Segment_cost.create ~lambda:0.1 ~downtime:0.0 ~prefix_work:[| 0.0; 1.0; 2.0 |]
           ~checkpoint_costs:[| 0.5 |] ~recovery_costs:[| 0.5 |]));
  Alcotest.check_raises "recovery length checked"
    (Invalid_argument "Segment_cost.create: recovery_costs must have length n")
    (fun () ->
      ignore
        (Segment_cost.create ~lambda:0.1 ~downtime:0.0 ~prefix_work:[| 0.0; 1.0 |]
           ~checkpoint_costs:[| 0.5 |] ~recovery_costs:[| 0.5; 0.5 |]))

let qcheck_kernel_matches_reference =
  QCheck.Test.make ~name:"kernel = reference on random chains (all pairs)" ~count:120
    QCheck.(triple (int_range 1 16) (int_range 0 10_000) (int_range (-8) 1))
    (fun (n, seed, lambda_exp) ->
      let rng = Rng.create ~seed:(Int64.of_int (seed + 31_000)) in
      let lambda =
        (10.0 ** float_of_int lambda_exp) *. Rng.float_range rng 0.5 2.0
      in
      let kernel =
        kernel_of ~lambda ~downtime:(Rng.float_range rng 0.0 1.0)
          ~works:(random_arrays rng n ~lo:0.1 ~hi:15.0)
          ~checkpoints:(random_arrays rng n ~lo:0.0 ~hi:2.0)
          ~recoveries:(random_arrays rng n ~lo:0.0 ~hi:2.0)
      in
      let ok = ref true in
      for first = 0 to n - 1 do
        for last = first to n - 1 do
          let reference = Segment_cost.reference_cost kernel ~first ~last in
          let fast = Segment_cost.cost kernel ~first ~last in
          if Float.abs (fast -. reference) > 1e-9 *. Float.max 1.0 (Float.abs reference)
          then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "kernel = reference across lambda decades" `Quick
      test_agreement_heterogeneous;
    Alcotest.test_case "small-argument fallback boundary" `Quick
      test_small_threshold_boundary;
    Alcotest.test_case "overflow fallback boundary" `Quick test_overflow_boundary;
    Alcotest.test_case "Chain_problem kernel identity" `Quick
      test_chain_problem_kernel_identity;
    Alcotest.test_case "monotone divide-and-conquer support" `Quick
      test_monotone_dc_support;
    Alcotest.test_case "shape validation" `Quick test_shape_validation;
    QCheck_alcotest.to_alcotest qcheck_kernel_matches_reference;
  ]

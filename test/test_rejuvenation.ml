(* Tests for the full-rejuvenation renewal solver (the Bouguerra et al.
   assumption the paper criticises). *)

module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task
module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford
module Expected_time = Ckpt_core.Expected_time
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Rejuvenation = Ckpt_core.Rejuvenation
module Failure_stream = Ckpt_failures.Failure_stream

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_expected_min () =
  (* Exponential closed form. *)
  let expo = Law.exponential ~rate:0.2 in
  close "exponential E[min]" ((1.0 -. exp (-0.2 *. 7.0)) /. 0.2)
    (Law.expected_min expo ~upto:7.0);
  (* Deterministic. *)
  close "deterministic below" 3.0 (Law.expected_min (Law.deterministic 5.0) ~upto:3.0);
  close "deterministic above" 5.0 (Law.expected_min (Law.deterministic 5.0) ~upto:9.0);
  (* Numeric vs sampling for Weibull. *)
  let weib = Law.weibull ~shape:0.7 ~scale:10.0 in
  let rng = Rng.create ~seed:31173L in
  let acc = Welford.create () in
  for _ = 1 to 200_000 do
    Welford.add acc (Float.min 6.0 (Law.sample weib rng))
  done;
  let numeric = Law.expected_min weib ~upto:6.0 in
  Alcotest.(check bool)
    (Printf.sprintf "weibull E[min] %.4f vs sampled %.4f" numeric (Welford.mean acc))
    true
    (Float.abs (numeric -. Welford.mean acc) < 0.02);
  (* Monotone and bounded. *)
  Alcotest.(check bool) "bounded by window" true (Law.expected_min weib ~upto:6.0 <= 6.0);
  Alcotest.(check bool) "bounded by mean" true
    (Law.expected_min weib ~upto:1e9 <= Law.mean weib *. 1.001)

let test_exponential_reduces_to_prop1 () =
  (* Memorylessness makes rejuvenation invisible: the renewal formula
     must equal Proposition 1 exactly. *)
  List.iter
    (fun (w, c, d, r, l) ->
      let prop1 =
        Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d ~recovery:r ~lambda:l
      in
      let renewal =
        Rejuvenation.segment_expected ~law:(Law.exponential ~rate:l) ~downtime:d
          ~recovery:r ~work:w ~checkpoint:c
      in
      close ~tol:1e-9
        (Printf.sprintf "Prop 1 recovered at W=%g lambda=%g" w l)
        prop1 renewal)
    [
      (10.0, 1.0, 0.5, 2.0, 0.05); (100.0, 10.0, 0.0, 0.0, 0.002); (1.0, 0.0, 3.0, 7.0, 0.9);
    ]

let simulate_segment ~law ~downtime ~recovery ~work ~checkpoint ~runs ~seed =
  let rng = Rng.create ~seed in
  let acc = Welford.create () in
  for run = 0 to runs - 1 do
    let stream =
      Failure_stream.renewal ~rejuvenation:Failure_stream.All_processors ~law ~processors:1
        (Rng.substream rng (string_of_int run))
    in
    Welford.add acc
      (Ckpt_sim.Sim_run.run_segments ~downtime
         ~next_failure:(Failure_stream.next_after stream)
         [ Ckpt_sim.Sim_run.segment ~work ~checkpoint ~recovery ])
  done;
  acc

let test_weibull_segment_matches_simulation_without_dr () =
  (* With D = R = 0 every retry starts exactly at a failure instant,
     where the simulated renewal clock is fresh too: the assumption
     world and the simulation coincide exactly. *)
  let law = Law.weibull ~shape:0.7 ~scale:60.0 in
  let work = 20.0 and checkpoint = 2.0 in
  let analytic =
    Rejuvenation.segment_expected ~law ~downtime:0.0 ~recovery:0.0 ~work ~checkpoint
  in
  let acc =
    simulate_segment ~law ~downtime:0.0 ~recovery:0.0 ~work ~checkpoint ~runs:40_000
      ~seed:424243L
  in
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f in CI [%.4f, %.4f]" analytic lo hi)
    true
    (lo <= analytic && analytic <= hi)

let test_weibull_assumption_bias_direction () =
  (* With D, R > 0 the assumption world restarts phases on a fresh
     platform, while the real renewal clock has aged by D (+R) — and a
     decreasing-hazard platform that has aged is LESS likely to fail, so
     the fresh-clock assumption over-estimates the expectation. This
     bias is exactly what E17 quantifies (the paper's criticism of the
     [12] assumption). *)
  let law = Law.weibull ~shape:0.7 ~scale:60.0 in
  let work = 20.0 and checkpoint = 2.0 and downtime = 1.0 and recovery = 3.0 in
  let analytic = Rejuvenation.segment_expected ~law ~downtime ~recovery ~work ~checkpoint in
  let acc =
    simulate_segment ~law ~downtime ~recovery ~work ~checkpoint ~runs:40_000 ~seed:424244L
  in
  let _, hi = Welford.confidence_interval acc ~level:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "assumption pessimistic for k<1: %.4f > CI hi %.4f" analytic hi)
    true (analytic > hi)

let chain_tasks () =
  Array.init 8 (fun i ->
      Task.make ~id:i
        ~work:(2.0 +. float_of_int (i mod 3))
        ~checkpoint_cost:0.5 ~recovery_cost:0.6 ())

let test_solve_matches_chain_dp_for_exponential () =
  let tasks = chain_tasks () in
  let lambda = 0.04 in
  let renewal =
    Rejuvenation.solve ~law:(Law.exponential ~rate:lambda) ~downtime:0.3
      ~initial_recovery:0.4 tasks
  in
  let problem =
    Chain_problem.make ~downtime:0.3 ~initial_recovery:0.4 ~lambda (Array.to_list tasks)
  in
  let dp = Chain_dp.solve problem in
  close ~tol:1e-9 "same optimum" dp.Chain_dp.expected_makespan
    renewal.Rejuvenation.expected_makespan;
  Alcotest.(check bool) "same placement" true
    (Schedule.checkpoint_indices dp.Chain_dp.schedule
    = (let acc = ref [] in
       Array.iteri (fun i b -> if b then acc := i :: !acc) renewal.Rejuvenation.placement;
       List.rev !acc))

let test_evaluate_consistency () =
  let tasks = chain_tasks () in
  let law = Law.weibull ~shape:0.8 ~scale:50.0 in
  let solution = Rejuvenation.solve ~law ~downtime:0.3 ~initial_recovery:0.4 tasks in
  close "solve value = evaluate of its placement"
    (Rejuvenation.evaluate ~law ~downtime:0.3 ~initial_recovery:0.4 tasks
       solution.Rejuvenation.placement)
    solution.Rejuvenation.expected_makespan;
  (* And it is at least as good as checkpoint-all / checkpoint-none. *)
  let n = Array.length tasks in
  let all = Array.make n true in
  let none = Array.init n (fun i -> i = n - 1) in
  List.iter
    (fun placement ->
      Alcotest.(check bool) "solve is minimal" true
        (solution.Rejuvenation.expected_makespan
         <= Rejuvenation.evaluate ~law ~downtime:0.3 ~initial_recovery:0.4 tasks placement
            +. 1e-9))
    [ all; none ]

let suite =
  [
    Alcotest.test_case "expected_min" `Slow test_expected_min;
    Alcotest.test_case "exponential reduces to Prop 1" `Quick
      test_exponential_reduces_to_prop1;
    Alcotest.test_case "weibull matches simulation (D = R = 0)" `Slow
      test_weibull_segment_matches_simulation_without_dr;
    Alcotest.test_case "assumption bias direction (k < 1)" `Slow
      test_weibull_assumption_bias_direction;
    Alcotest.test_case "solve = chain DP for exponential" `Quick
      test_solve_matches_chain_dp_for_exponential;
    Alcotest.test_case "evaluate consistency" `Quick test_evaluate_consistency;
  ]

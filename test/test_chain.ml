(* Tests for chain instances, schedules and the Proposition 3 dynamic
   program. *)

module Task = Ckpt_dag.Task
module Generate = Ckpt_dag.Generate
module Rng = Ckpt_prng.Rng
module Expected_time = Ckpt_core.Expected_time
module Chain_problem = Ckpt_core.Chain_problem
module Schedule = Ckpt_core.Schedule
module Chain_dp = Ckpt_core.Chain_dp
module Brute_force = Ckpt_core.Brute_force

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let sample_problem () =
  Chain_problem.uniform ~downtime:0.2 ~lambda:0.05 ~checkpoint:1.0 ~recovery:1.5
    [ 3.0; 5.0; 2.0; 4.0 ]

let random_problem seed n =
  let rng = Rng.create ~seed in
  let spec = Generate.uniform_costs () in
  let dag = Generate.chain rng spec ~n in
  Chain_problem.of_dag ~downtime:0.3 ~initial_recovery:0.5
    ~lambda:(Rng.float_range rng 0.005 0.2) dag

let test_problem_construction () =
  let p = sample_problem () in
  Alcotest.(check int) "size" 4 (Chain_problem.size p);
  close "total work" 14.0 (Chain_problem.total_work p);
  close "segment work 1..2" 7.0 (Chain_problem.segment_work p ~first:1 ~last:2);
  close "initial recovery defaults to R" 1.5 (Chain_problem.recovery_before p 0);
  close "recovery before task 2" 1.5 (Chain_problem.recovery_before p 2);
  Alcotest.check_raises "empty chain rejected" (Invalid_argument "Chain_problem: empty chain")
    (fun () -> ignore (Chain_problem.make ~lambda:0.1 []))

let test_of_dag_requires_chain () =
  let rng = Rng.create ~seed:3L in
  let spec = Generate.uniform_costs () in
  let dag = Generate.diamond rng spec ~width:2 in
  Alcotest.check_raises "diamond rejected"
    (Invalid_argument "Chain_problem.of_dag: DAG is not a linear chain") (fun () ->
      ignore (Chain_problem.of_dag ~lambda:0.1 dag))

let test_segment_expected_matches_formula () =
  let p = sample_problem () in
  let direct =
    Expected_time.expected_v ~work:10.0 ~checkpoint:1.0 ~downtime:0.2 ~recovery:1.5
      ~lambda:0.05
  in
  close "segment 0..2" direct (Chain_problem.segment_expected p ~first:0 ~last:2)

let test_with_lambda () =
  let p = sample_problem () in
  let p2 = Chain_problem.with_lambda p 0.1 in
  Alcotest.(check bool) "lambda updated" true (Float.equal p2.Chain_problem.lambda 0.1);
  close "structure preserved" (Chain_problem.total_work p) (Chain_problem.total_work p2)

let test_schedule_constructors () =
  let p = sample_problem () in
  let all = Schedule.checkpoint_all p in
  Alcotest.(check int) "all has n checkpoints" 4 (Schedule.checkpoint_count all);
  let none = Schedule.checkpoint_none p in
  Alcotest.(check int) "none has only the final" 1 (Schedule.checkpoint_count none);
  Alcotest.(check (list int)) "final index" [ 3 ] (Schedule.checkpoint_indices none);
  let every2 = Schedule.every_k p 2 in
  Alcotest.(check (list int)) "every 2" [ 1; 3 ] (Schedule.checkpoint_indices every2);
  let byidx = Schedule.of_indices p [ 0 ] in
  Alcotest.(check (list int)) "indices + forced final" [ 0; 3 ]
    (Schedule.checkpoint_indices byidx);
  Alcotest.check_raises "final checkpoint enforced"
    (Invalid_argument "Schedule.make: the final task must be checkpointed") (fun () ->
      ignore (Schedule.make p [| true; false; false; false |]))

let test_schedule_segments_partition () =
  let p = sample_problem () in
  let s = Schedule.of_indices p [ 1 ] in
  Alcotest.(check (list (pair int int))) "segments" [ (0, 1); (2, 3) ] (Schedule.segments s)

let test_by_work_threshold () =
  let p = sample_problem () in
  (* works 3 5 2 4; threshold 6: cumulative 3, 8 -> ckpt at 1; then 2, 6 -> ckpt at 3. *)
  let s = Schedule.by_work_threshold p ~threshold:6.0 in
  Alcotest.(check (list int)) "threshold placement" [ 1; 3 ] (Schedule.checkpoint_indices s)

let test_expected_makespan_is_sum () =
  let p = sample_problem () in
  let s = Schedule.of_indices p [ 1 ] in
  let manual =
    Chain_problem.segment_expected p ~first:0 ~last:1
    +. Chain_problem.segment_expected p ~first:2 ~last:3
  in
  close "makespan = sum of segment expectations" manual (Schedule.expected_makespan s)

let test_to_sim_segments () =
  let p = sample_problem () in
  let s = Schedule.of_indices p [ 1 ] in
  match Schedule.to_sim_segments s with
  | [ seg1; seg2 ] ->
      close "seg1 work" 8.0 seg1.Ckpt_sim.Sim_run.work;
      close "seg1 ckpt" 1.0 seg1.Ckpt_sim.Sim_run.checkpoint;
      close "seg1 recovery = R0" 1.5 seg1.Ckpt_sim.Sim_run.recovery;
      close "seg2 work" 6.0 seg2.Ckpt_sim.Sim_run.work
  | other -> Alcotest.fail (Printf.sprintf "expected 2 segments, got %d" (List.length other))

let test_to_string () =
  let p = sample_problem () in
  let s = Schedule.of_indices p [ 1 ] in
  Alcotest.(check string) "rendering" "[T1 T2 | T3 T4 |]" (Schedule.to_string s)

let test_dp_single_task () =
  let p = Chain_problem.uniform ~lambda:0.1 ~checkpoint:1.0 ~recovery:1.0 [ 5.0 ] in
  let solution = Chain_dp.solve p in
  close "single-task DP = Prop 1 segment"
    (Chain_problem.segment_expected p ~first:0 ~last:0)
    solution.Chain_dp.expected_makespan

let test_dp_matches_brute_force_fixed () =
  let p = sample_problem () in
  let dp = Chain_dp.solve p in
  let bf = Brute_force.chain_best p in
  close "DP equals brute force" bf.Chain_dp.expected_makespan dp.Chain_dp.expected_makespan;
  close "schedules agree on cost"
    (Schedule.expected_makespan bf.Chain_dp.schedule)
    (Schedule.expected_makespan dp.Chain_dp.schedule)

let test_memoized_matches_iterative () =
  for seed = 1 to 10 do
    let p = random_problem (Int64.of_int seed) (5 + (seed mod 20)) in
    let a = Chain_dp.solve p and b = Chain_dp.solve_memoized p in
    close
      (Printf.sprintf "seed %d: memoized = iterative" seed)
      a.Chain_dp.expected_makespan b.Chain_dp.expected_makespan;
    Alcotest.(check bool) "same placement" true
      (Schedule.equal a.Chain_dp.schedule b.Chain_dp.schedule)
  done

let test_dc_matches_solve () =
  (* Generated chains satisfy the monotonicity precheck (cost steps are
     smaller than every task weight), so this exercises the real divide
     and conquer, not the fallback. *)
  for seed = 1 to 12 do
    let p = random_problem (Int64.of_int (seed + 5_000)) (3 + (7 * seed)) in
    let a = Chain_dp.solve p and b = Chain_dp.solve_dc p in
    close
      (Printf.sprintf "seed %d: divide-and-conquer = iterative" seed)
      a.Chain_dp.expected_makespan b.Chain_dp.expected_makespan;
    Alcotest.(check bool) "same placement" true
      (Schedule.equal a.Chain_dp.schedule b.Chain_dp.schedule)
  done

let test_dc_extreme_rates () =
  (* Tiny λ·W (every transition below the kernel's small-argument
     cutoff) and large λ·W (product-form tables everywhere): the three
     solvers agree at both ends. *)
  let check name p =
    let dp = Chain_dp.solve p in
    let dc = Chain_dp.solve_dc p in
    let memo = Chain_dp.solve_memoized p in
    close (name ^ ": dc = solve") dp.Chain_dp.expected_makespan
      dc.Chain_dp.expected_makespan;
    close (name ^ ": memoized = solve") dp.Chain_dp.expected_makespan
      memo.Chain_dp.expected_makespan
  in
  let works = List.init 16 (fun i -> 1.0 +. float_of_int (i mod 5)) in
  check "tiny lambda"
    (Chain_problem.uniform ~downtime:0.1 ~lambda:1e-8 ~checkpoint:0.3 ~recovery:0.4 works);
  check "large lambda"
    (Chain_problem.uniform ~downtime:0.1 ~lambda:3.0 ~checkpoint:0.3 ~recovery:0.4 works)

let test_dc_fallback_on_nonmonotone () =
  (* A recovery-cost spike bigger than the adjacent task weight breaks
     the inverse-Monge precheck: solve_dc must detect it, count a
     dp.dc_fallbacks tick, and return exactly solve's answer (it runs
     solve). *)
  let tasks =
    List.mapi
      (fun i w ->
        Task.make ~id:i
          ~name:(Printf.sprintf "T%d" (i + 1))
          ~work:w ~checkpoint_cost:0.5
          ~recovery_cost:(if i = 3 then 50.0 else 0.5)
          ())
      [ 2.0; 3.0; 2.0; 4.0; 2.0; 3.0; 2.0; 5.0 ]
  in
  let p = Chain_problem.make ~downtime:0.2 ~lambda:0.2 tasks in
  Alcotest.(check bool) "precheck rejects the spike" false
    (Ckpt_core.Segment_cost.supports_monotone_dc (Chain_problem.kernel p));
  Ckpt_obs.Metrics.reset ();
  let dp = Chain_dp.solve p in
  let dc = Chain_dp.solve_dc p in
  Alcotest.(check bool) "fallback result is bit-identical to solve" true
    (Float.equal dp.Chain_dp.expected_makespan dc.Chain_dp.expected_makespan);
  Alcotest.(check bool) "fallback placement equals solve's" true
    (Schedule.equal dp.Chain_dp.schedule dc.Chain_dp.schedule);
  (match Ckpt_obs.Metrics.find (Ckpt_obs.Metrics.snapshot ()) "dp.dc_fallbacks" with
  | Some (_, Ckpt_obs.Metrics.Counter n) ->
      Alcotest.(check int) "one fallback counted" 1 n
  | Some _ -> Alcotest.fail "dp.dc_fallbacks is not a counter"
  | None -> Alcotest.fail "dp.dc_fallbacks not recorded")

(* --- SMAWK solver --------------------------------------------------- *)

let bit_identical name (a : Chain_dp.solution) (b : Chain_dp.solution) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected makespan bit-for-bit (%.17g vs %.17g)" name
       a.Chain_dp.expected_makespan b.Chain_dp.expected_makespan)
    true
    (Float.equal a.Chain_dp.expected_makespan b.Chain_dp.expected_makespan);
  Alcotest.(check bool) (name ^ ": same placement") true
    (Schedule.equal a.Chain_dp.schedule b.Chain_dp.schedule)

let test_smawk_matches_solve () =
  (* Bit-for-bit agreement — makespan AND schedule — on every fixture
     family: the sample problem, random chains, and both extreme-rate
     kernel modes. *)
  bit_identical "sample" (Chain_dp.solve (sample_problem ()))
    (Chain_dp.solve_smawk (sample_problem ()));
  for seed = 1 to 12 do
    let p = random_problem (Int64.of_int (seed + 9_100)) (1 + (13 * seed)) in
    bit_identical
      (Printf.sprintf "seed %d" seed)
      (Chain_dp.solve p) (Chain_dp.solve_smawk p)
  done;
  let works = List.init 16 (fun i -> 1.0 +. float_of_int (i mod 5)) in
  List.iter
    (fun (name, lambda) ->
      let p =
        Chain_problem.uniform ~downtime:0.1 ~lambda ~checkpoint:0.3 ~recovery:0.4 works
      in
      bit_identical name (Chain_dp.solve p) (Chain_dp.solve_smawk p))
    [ ("tiny lambda", 1e-8); ("large lambda", 3.0) ]

let test_smawk_ties_and_blocks () =
  (* Uniform chains maximise exact float ties between candidate
     splits; the leftmost-on-ties fold must still reproduce solve's
     scan. Block size must not matter either. *)
  List.iter
    (fun n ->
      let p =
        Chain_problem.uniform ~downtime:0.2 ~lambda:(10.0 /. float_of_int n)
          ~checkpoint:0.1 ~recovery:0.2
          (List.init n (fun _ -> 1.0))
      in
      bit_identical (Printf.sprintf "uniform n=%d" n) (Chain_dp.solve p)
        (Chain_dp.solve_smawk p))
    [ 1; 2; 3; 17; 100; 257 ];
  let p = random_problem 4_242L 500 in
  let reference = Chain_dp.solve p in
  List.iter
    (fun block ->
      bit_identical
        (Printf.sprintf "block=%d" block)
        reference
        (Chain_dp.solve_smawk ~block p))
    [ 2; 3; 7; 64; 1024 ];
  Alcotest.check_raises "block bounds checked"
    (Invalid_argument "Chain_dp.solve_smawk: block must be >= 2") (fun () ->
      ignore (Chain_dp.solve_smawk ~block:1 p))

let test_smawk_fallback_on_nonmonotone () =
  (* Same spike instance as the dc fallback test: solve_smawk must
     detect the broken certificate, count dp.smawk_fallbacks, and
     return exactly solve's answer — through the parallel sweep too. *)
  let tasks =
    List.mapi
      (fun i w ->
        Task.make ~id:i
          ~name:(Printf.sprintf "T%d" (i + 1))
          ~work:w ~checkpoint_cost:0.5
          ~recovery_cost:(if i = 3 then 50.0 else 0.5)
          ())
      [ 2.0; 3.0; 2.0; 4.0; 2.0; 3.0; 2.0; 5.0 ]
  in
  let p = Chain_problem.make ~downtime:0.2 ~lambda:0.2 tasks in
  Ckpt_obs.Metrics.reset ();
  let dp = Chain_dp.solve p in
  bit_identical "fallback (sequential)" dp (Chain_dp.solve_smawk p);
  bit_identical "fallback (parallel sweep)" dp (Chain_dp.solve_smawk ~domains:4 p);
  let snapshot = Ckpt_obs.Metrics.snapshot () in
  let counter name =
    match Ckpt_obs.Metrics.find snapshot name with
    | Some (_, Ckpt_obs.Metrics.Counter n) -> n
    | Some _ -> Alcotest.fail (name ^ " is not a counter")
    | None -> Alcotest.fail (name ^ " not recorded")
  in
  Alcotest.(check int) "two smawk fallbacks counted" 2 (counter "dp.smawk_fallbacks");
  (* Both fallback counters are registered at module init, so they are
     present in every snapshot (hence in `--metrics` output) even when
     never incremented in this process run. *)
  Alcotest.(check int) "dc fallback counter present and untouched" 0
    (counter "dp.dc_fallbacks")

let test_solve_par_matches_solve () =
  (* Chunked parallel sweep: bit-identical to solve for any domain
     count, including rows split across several chunks (n beyond two
     grid cells exercises the team path). *)
  let p = random_problem 31_337L 700 in
  let reference = Chain_dp.solve p in
  List.iter
    (fun domains ->
      bit_identical
        (Printf.sprintf "domains=%d" domains)
        reference
        (Chain_dp.solve_par ~domains p))
    [ 1; 2; 4; 8 ]

let qcheck_smawk_agreement =
  (* Cross-solver agreement property: solve_smawk ≡ solve_dc ≡ solve on
     random Monge instances and on adversarial non-Monge ones (random
     recovery spikes force the counted fallback path). solve_smawk is
     held to bit-for-bit equality including the schedule (its
     leftmost-on-ties fold reproduces solve's scan exactly); solve_dc
     keeps its documented guarantee — equal makespan to float rounding
     and an equally-optimal placement whose ties may resolve to a
     different (equal-cost) index. *)
  QCheck.Test.make ~name:"smawk = dc = iterative DP (Monge and non-Monge)" ~count:120
    QCheck.(triple (int_range 1 80) (int_range 0 10_000) bool)
    (fun (n, seed, spike) ->
      let p0 = random_problem (Int64.of_int (seed + 314_000)) n in
      let p =
        if not spike then p0
        else begin
          (* Knock out the certificate with a recovery spike wider than
             any task weight. *)
          let tasks =
            List.mapi
              (fun i (t : Task.t) ->
                if i = n / 2 then
                  Task.with_costs t ~checkpoint_cost:t.Task.checkpoint_cost
                    ~recovery_cost:(t.Task.recovery_cost +. 1_000.0)
                else t)
              (Array.to_list p0.Chain_problem.tasks)
          in
          Chain_problem.make ~downtime:0.3 ~initial_recovery:0.5
            ~lambda:p0.Chain_problem.lambda tasks
        end
      in
      let dp = Chain_dp.solve p in
      let smawk = Chain_dp.solve_smawk p in
      let dc = Chain_dp.solve_dc p in
      Float.equal smawk.Chain_dp.expected_makespan dp.Chain_dp.expected_makespan
      && Schedule.equal smawk.Chain_dp.schedule dp.Chain_dp.schedule
      && Float.abs (dc.Chain_dp.expected_makespan -. dp.Chain_dp.expected_makespan)
         <= 1e-9 *. dp.Chain_dp.expected_makespan
      && Schedule.equal dc.Chain_dp.schedule smawk.Chain_dp.schedule)

let qcheck_dc_matches_solve =
  QCheck.Test.make ~name:"divide-and-conquer = iterative DP on random chains" ~count:80
    QCheck.(pair (int_range 1 60) (int_range 0 10_000))
    (fun (n, seed) ->
      let p = random_problem (Int64.of_int (seed + 88_000)) n in
      let dp = Chain_dp.solve p in
      let dc = Chain_dp.solve_dc p in
      Float.abs (dc.Chain_dp.expected_makespan -. dp.Chain_dp.expected_makespan)
      <= 1e-9 *. dp.Chain_dp.expected_makespan
      && Schedule.equal dp.Chain_dp.schedule dc.Chain_dp.schedule)

let test_dp_extreme_rates () =
  (* Large lambda: checkpoint after every task is optimal.
     Tiny lambda with costly checkpoints: a single final checkpoint wins. *)
  let works = [ 5.0; 5.0; 5.0; 5.0; 5.0 ] in
  let risky = Chain_problem.uniform ~lambda:2.0 ~checkpoint:0.01 ~recovery:0.01 works in
  let solution = Chain_dp.solve risky in
  Alcotest.(check int) "high lambda: checkpoint everywhere" 5
    (Schedule.checkpoint_count solution.Chain_dp.schedule);
  let safe = Chain_problem.uniform ~lambda:1e-7 ~checkpoint:2.0 ~recovery:2.0 works in
  let solution = Chain_dp.solve safe in
  Alcotest.(check int) "tiny lambda: only the final checkpoint" 1
    (Schedule.checkpoint_count solution.Chain_dp.schedule)

let test_dp_values_structure () =
  let p = sample_problem () in
  let values = Chain_dp.dp_values p in
  Alcotest.(check int) "table length n+1" 5 (Array.length values);
  close "terminal value" 0.0 values.(4);
  let solution = Chain_dp.solve p in
  close "values.(0) is the optimum" solution.Chain_dp.expected_makespan values.(0);
  (* Suffix optima decrease as the suffix shrinks. *)
  for x = 0 to 3 do
    Alcotest.(check bool) "monotone suffix values" true (values.(x) > values.(x + 1))
  done

let test_first_segment_end () =
  let p = sample_problem () in
  let solution = Chain_dp.solve p in
  Alcotest.(check int) "numTask output"
    (List.hd (Schedule.checkpoint_indices solution.Chain_dp.schedule))
    (Chain_dp.first_segment_end p)

let test_bounded_dp () =
  let p = random_problem 2121L 20 in
  let full = Chain_dp.solve p in
  (* max_segment >= n: identical to the unrestricted DP. *)
  let unbounded = Chain_dp.solve_bounded p ~max_segment:20 in
  close "L >= n reproduces solve" full.Chain_dp.expected_makespan
    unbounded.Chain_dp.expected_makespan;
  Alcotest.(check bool) "same placement" true
    (Schedule.equal full.Chain_dp.schedule unbounded.Chain_dp.schedule);
  (* Restricting the segment length can only increase the optimum, and
     the schedule respects the bound. *)
  List.iter
    (fun l ->
      let bounded = Chain_dp.solve_bounded p ~max_segment:l in
      Alcotest.(check bool)
        (Printf.sprintf "L=%d: no better than unrestricted" l)
        true
        (bounded.Chain_dp.expected_makespan >= full.Chain_dp.expected_makespan -. 1e-9);
      List.iter
        (fun (first, last) ->
          Alcotest.(check bool) "segment length bounded" true (last - first + 1 <= l))
        (Schedule.segments bounded.Chain_dp.schedule))
    [ 1; 2; 3; 5 ];
  (* L = 1 is checkpoint-all. *)
  let all_ckpt = Chain_dp.solve_bounded p ~max_segment:1 in
  close "L = 1 is checkpoint-all"
    (Schedule.expected_makespan (Schedule.checkpoint_all p))
    all_ckpt.Chain_dp.expected_makespan

let test_bounded_dp_scales () =
  (* 100k tasks, L = 32: must run in well under a second. *)
  let works = List.init 100_000 (fun i -> 1.0 +. float_of_int (i mod 7)) in
  let p = Chain_problem.uniform ~lambda:0.01 ~checkpoint:0.5 ~recovery:0.5 works in
  let elapsed, solution =
    Ckpt_obs.Clock.time (fun () -> Chain_dp.solve_bounded p ~max_segment:32)
  in
  Alcotest.(check bool)
    (Printf.sprintf "solved 100k tasks in %.2fs" elapsed)
    true (elapsed < 5.0);
  Alcotest.(check bool) "finite positive result" true
    (Float.is_finite solution.Chain_dp.expected_makespan
     && solution.Chain_dp.expected_makespan > 0.0)

let test_budget_dp () =
  let p = random_problem 99L 10 in
  let unconstrained = Chain_dp.solve p in
  let k_opt = Schedule.checkpoint_count unconstrained.Chain_dp.schedule in
  (* At the unconstrained optimum's own k, the budget DP matches it. *)
  let at_k = Chain_dp.solve_with_budget p ~checkpoints:k_opt in
  close "budget DP at k* equals the optimum" unconstrained.Chain_dp.expected_makespan
    at_k.Chain_dp.expected_makespan;
  (* Every budget solution uses exactly its budget. *)
  for k = 1 to 10 do
    let solution = Chain_dp.solve_with_budget p ~checkpoints:k in
    Alcotest.(check int)
      (Printf.sprintf "uses exactly %d checkpoints" k)
      k
      (Schedule.checkpoint_count solution.Chain_dp.schedule);
    Alcotest.(check bool) "never beats the unconstrained optimum" true
      (solution.Chain_dp.expected_makespan
       >= unconstrained.Chain_dp.expected_makespan -. 1e-9)
  done;
  Alcotest.check_raises "budget bounds checked"
    (Invalid_argument "Chain_dp.solve_with_budget: need 1 <= checkpoints <= n") (fun () ->
      ignore (Chain_dp.solve_with_budget p ~checkpoints:11))

let test_budget_curve () =
  let p = random_problem 123L 8 in
  let curve = Chain_dp.budget_curve p in
  Alcotest.(check int) "one entry per k" 8 (List.length curve);
  let unconstrained = (Chain_dp.solve p).Chain_dp.expected_makespan in
  let minimum = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity curve in
  close "curve minimum is the unconstrained optimum" unconstrained minimum;
  (* Each curve point matches the dedicated solver. *)
  List.iter
    (fun (k, v) ->
      close
        (Printf.sprintf "curve at k=%d" k)
        (Chain_dp.solve_with_budget p ~checkpoints:k).Chain_dp.expected_makespan v)
    curve

let qcheck_budget_matches_filtered_brute_force =
  QCheck.Test.make ~name:"budget DP equals brute force restricted to k checkpoints"
    ~count:30
    QCheck.(pair (int_range 2 8) (int_range 0 1000))
    (fun (n, seed) ->
      let p = random_problem (Int64.of_int (seed + 60_000)) n in
      let all = Brute_force.chain_all p in
      List.for_all
        (fun k ->
          let best_k =
            List.fold_left
              (fun acc (schedule, cost) ->
                if Schedule.checkpoint_count schedule = k then Float.min acc cost else acc)
              infinity all
          in
          let dp_k = (Chain_dp.solve_with_budget p ~checkpoints:k).Chain_dp.expected_makespan in
          Float.abs (dp_k -. best_k) <= 1e-9 *. best_k)
        (List.init n (fun i -> i + 1)))

let qcheck_dp_optimal =
  QCheck.Test.make ~name:"DP equals exhaustive optimum on random chains" ~count:60
    QCheck.(pair (int_range 1 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let p = random_problem (Int64.of_int (seed + 424_242)) n in
      let dp = Chain_dp.solve p in
      let bf = Brute_force.chain_best p in
      Float.abs (dp.Chain_dp.expected_makespan -. bf.Chain_dp.expected_makespan)
      <= 1e-9 *. bf.Chain_dp.expected_makespan)

let qcheck_dp_below_heuristics =
  QCheck.Test.make ~name:"DP never worse than standard placements" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let p = random_problem (Int64.of_int (seed + 777)) n in
      let dp = (Chain_dp.solve p).Chain_dp.expected_makespan in
      let heuristics =
        [ Schedule.checkpoint_all p; Schedule.checkpoint_none p; Schedule.every_k p 3;
          Schedule.young p; Schedule.daly p ]
      in
      List.for_all
        (fun s -> dp <= Schedule.expected_makespan s +. 1e-9)
        heuristics)

let qcheck_schedule_segments_cover =
  QCheck.Test.make ~name:"segments partition the chain" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 1_000_000))
    (fun (n, mask) ->
      let p =
        Chain_problem.uniform ~lambda:0.05 ~checkpoint:0.5 ~recovery:0.5
          (List.init n (fun i -> 1.0 +. float_of_int i))
      in
      let placement = Array.init n (fun i -> i = n - 1 || (mask lsr i) land 1 = 1) in
      let s = Schedule.make p placement in
      let segments = Schedule.segments s in
      let covered = List.concat_map (fun (a, b) -> List.init (b - a + 1) (fun k -> a + k)) segments in
      covered = List.init n Fun.id)

let suite =
  [
    Alcotest.test_case "problem construction" `Quick test_problem_construction;
    Alcotest.test_case "of_dag requires a chain" `Quick test_of_dag_requires_chain;
    Alcotest.test_case "segment expectation = Prop 1" `Quick
      test_segment_expected_matches_formula;
    Alcotest.test_case "with_lambda" `Quick test_with_lambda;
    Alcotest.test_case "schedule constructors" `Quick test_schedule_constructors;
    Alcotest.test_case "schedule segments" `Quick test_schedule_segments_partition;
    Alcotest.test_case "work-threshold placement" `Quick test_by_work_threshold;
    Alcotest.test_case "makespan is the segment sum" `Quick test_expected_makespan_is_sum;
    Alcotest.test_case "conversion to simulator segments" `Quick test_to_sim_segments;
    Alcotest.test_case "schedule rendering" `Quick test_to_string;
    Alcotest.test_case "DP on a single task" `Quick test_dp_single_task;
    Alcotest.test_case "DP = brute force (fixed)" `Quick test_dp_matches_brute_force_fixed;
    Alcotest.test_case "memoized = iterative" `Quick test_memoized_matches_iterative;
    Alcotest.test_case "divide-and-conquer = iterative" `Quick test_dc_matches_solve;
    Alcotest.test_case "divide-and-conquer at extreme rates" `Quick
      test_dc_extreme_rates;
    Alcotest.test_case "divide-and-conquer fallback" `Quick
      test_dc_fallback_on_nonmonotone;
    Alcotest.test_case "SMAWK = iterative DP" `Quick test_smawk_matches_solve;
    Alcotest.test_case "SMAWK ties and block sizes" `Quick test_smawk_ties_and_blocks;
    Alcotest.test_case "SMAWK fallback" `Quick test_smawk_fallback_on_nonmonotone;
    Alcotest.test_case "parallel sweep = iterative DP" `Quick
      test_solve_par_matches_solve;
    Alcotest.test_case "DP at extreme failure rates" `Quick test_dp_extreme_rates;
    Alcotest.test_case "DP value table" `Quick test_dp_values_structure;
    Alcotest.test_case "first segment end (numTask)" `Quick test_first_segment_end;
    Alcotest.test_case "bounded-segment DP" `Quick test_bounded_dp;
    Alcotest.test_case "bounded DP at scale" `Slow test_bounded_dp_scales;
    Alcotest.test_case "budget-constrained DP" `Quick test_budget_dp;
    Alcotest.test_case "budget curve" `Quick test_budget_curve;
    QCheck_alcotest.to_alcotest qcheck_budget_matches_filtered_brute_force;
    QCheck_alcotest.to_alcotest qcheck_dp_optimal;
    QCheck_alcotest.to_alcotest qcheck_dc_matches_solve;
    QCheck_alcotest.to_alcotest qcheck_smawk_agreement;
    QCheck_alcotest.to_alcotest qcheck_dp_below_heuristics;
    QCheck_alcotest.to_alcotest qcheck_schedule_segments_cover;
  ]

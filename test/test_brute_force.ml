(* Tests for the exhaustive reference solvers. *)

module Task = Ckpt_dag.Task
module Chain_problem = Ckpt_core.Chain_problem
module Schedule = Ckpt_core.Schedule
module Chain_dp = Ckpt_core.Chain_dp
module Brute_force = Ckpt_core.Brute_force
module Independent = Ckpt_core.Independent

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_guards () =
  let works = List.init 30 (fun _ -> 1.0) in
  let p = Chain_problem.uniform ~lambda:0.1 ~checkpoint:1.0 ~recovery:1.0 works in
  Alcotest.check_raises "chain guard"
    (Invalid_argument "Brute_force.chain_best: instance size 30 exceeds the guard 22")
    (fun () -> ignore (Brute_force.chain_best p));
  Alcotest.check_raises "partition guard"
    (Invalid_argument "Brute_force.partition_best: instance size 20 exceeds the guard 16")
    (fun () ->
      ignore
        (Brute_force.partition_best ~lambda:0.1 ~checkpoint:1.0 ~recovery:1.0 ~downtime:0.0
           (Array.make 20 1.0)))

let test_chain_all_exhaustive () =
  let p = Chain_problem.uniform ~lambda:0.1 ~checkpoint:0.5 ~recovery:0.5 [ 2.0; 3.0; 4.0 ] in
  let all = Brute_force.chain_all p in
  Alcotest.(check int) "2^(n-1) placements" 4 (List.length all);
  (* Sorted by expectation. *)
  let costs = List.map snd all in
  Alcotest.(check bool) "sorted" true (costs = List.sort compare costs);
  (* Best matches chain_best and DP. *)
  let best = List.hd all in
  close "best = chain_best" (Brute_force.chain_best p).Chain_dp.expected_makespan (snd best);
  close "best = DP" (Chain_dp.solve p).Chain_dp.expected_makespan (snd best)

let test_partition_best_two_tasks () =
  (* Two identical tasks: compare one segment vs two by hand. *)
  let lambda = 0.1 and downtime = 0.0 in
  let cost ~w ~c ~r =
    Ckpt_core.Expected_time.expected_v ~work:w ~checkpoint:c ~downtime ~recovery:r ~lambda
  in
  let check ~checkpoint =
    let one = cost ~w:10.0 ~c:checkpoint ~r:checkpoint in
    let two = 2.0 *. cost ~w:5.0 ~c:checkpoint ~r:checkpoint in
    let best =
      Brute_force.partition_best ~lambda ~checkpoint ~recovery:checkpoint ~downtime
        [| 5.0; 5.0 |]
    in
    close
      (Printf.sprintf "manual minimum at C=%g" checkpoint)
      (Float.min one two) best
  in
  check ~checkpoint:10.0;
  (* expensive checkpoint: single segment wins *)
  check ~checkpoint:0.01 (* cheap checkpoint: split wins *)

let test_partition_matches_exhaustive_orderings () =
  (* For uniform costs the partition DP must agree with the full
     ordering x placement enumeration. *)
  let works = [ 3.0; 1.0; 4.0; 1.5; 5.0 ] in
  let lambda = 0.12 and checkpoint = 0.8 in
  let tasks =
    List.mapi
      (fun i w -> Task.make ~id:i ~work:w ~checkpoint_cost:checkpoint ~recovery_cost:checkpoint ())
      works
  in
  let exhaustive, _ =
    Brute_force.independent_exhaustive ~initial_recovery:checkpoint ~lambda tasks
  in
  let partition =
    Brute_force.partition_best ~lambda ~checkpoint ~recovery:checkpoint ~downtime:0.0
      (Array.of_list works)
  in
  close "partition DP = ordering enumeration" exhaustive partition

let test_independent_exhaustive_beats_heuristics () =
  let tasks =
    List.mapi
      (fun i (w, c) -> Task.make ~id:i ~work:w ~checkpoint_cost:c ~recovery_cost:c ())
      [ (3.0, 0.2); (1.0, 1.5); (4.0, 0.6); (2.0, 0.1); (5.0, 0.9) ]
  in
  let lambda = 0.15 in
  let exact, _ = Brute_force.independent_exhaustive ~lambda tasks in
  let problem = Independent.make ~lambda tasks in
  List.iter
    (fun ordering ->
      let sol = Independent.solve_ordered problem ordering in
      Alcotest.(check bool) "exact <= ordered heuristic" true
        (exact <= sol.Chain_dp.expected_makespan +. 1e-9))
    [ Independent.As_given; Independent.Shortest_first; Independent.Longest_first;
      Independent.Random 1 ];
  let lpt = Independent.lpt_grouping problem ~groups:2 in
  Alcotest.(check bool) "exact <= LPT" true (exact <= lpt.Chain_dp.expected_makespan +. 1e-9)

let qcheck_partition_below_any_balanced_split =
  QCheck.Test.make ~name:"partition optimum below equal-m segment heuristics" ~count:50
    QCheck.(pair (list_of_size (Gen.int_range 2 8) (float_range 1.0 8.0))
              (float_range 0.02 0.3))
    (fun (works, lambda) ->
      let checkpoint = 0.5 in
      let best =
        Brute_force.partition_best ~lambda ~checkpoint ~recovery:checkpoint ~downtime:0.0
          (Array.of_list works)
      in
      (* Compare against putting each task in its own segment and
         against one big segment. *)
      let singleton =
        Ckpt_stats.Kahan.sum_list
          (List.map
             (fun w ->
               Ckpt_core.Expected_time.expected_v ~work:w ~checkpoint ~downtime:0.0
                 ~recovery:checkpoint ~lambda)
             works)
      in
      let merged =
        Ckpt_core.Expected_time.expected_v
          ~work:(List.fold_left ( +. ) 0.0 works)
          ~checkpoint ~downtime:0.0 ~recovery:checkpoint ~lambda
      in
      best <= singleton +. 1e-9 && best <= merged +. 1e-9)

let suite =
  [
    Alcotest.test_case "size guards" `Quick test_guards;
    Alcotest.test_case "chain_all enumeration" `Quick test_chain_all_exhaustive;
    Alcotest.test_case "partition of two tasks" `Quick test_partition_best_two_tasks;
    Alcotest.test_case "partition DP = ordering enumeration" `Slow
      test_partition_matches_exhaustive_orderings;
    Alcotest.test_case "exhaustive beats heuristics" `Slow
      test_independent_exhaustive_beats_heuristics;
    QCheck_alcotest.to_alcotest qcheck_partition_below_any_balanced_split;
  ]

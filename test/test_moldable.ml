(* Tests for the Section 3 scaling scenarios. *)

module Moldable = Ckpt_core.Moldable
module Approximations = Ckpt_core.Approximations

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let base ?(workload = Moldable.Perfectly_parallel)
    ?(overhead = Moldable.Constant 10.0) () =
  Moldable.scenario ~downtime:1.0 ~total_work:100_000.0 ~workload ~overhead
    ~proc_rate:1e-5 ()

let test_work_models () =
  let perfect = base () in
  close "perfect W(p)" 1000.0 (Moldable.work perfect ~p:100);
  let amdahl = base ~workload:(Moldable.Amdahl 0.1) () in
  close "Amdahl W(p)" ((0.9 *. 100_000.0 /. 100.0) +. (0.1 *. 100_000.0))
    (Moldable.work amdahl ~p:100);
  (* Amdahl floor: the sequential fraction survives any p. *)
  Alcotest.(check bool) "Amdahl floor" true
    (Moldable.work amdahl ~p:1_000_000 > 0.1 *. 100_000.0);
  let kernel = base ~workload:(Moldable.Numerical_kernel 0.5) () in
  close "kernel W(p)"
    ((100_000.0 /. 100.0) +. (0.5 *. (100_000.0 ** (2.0 /. 3.0)) /. 10.0))
    (Moldable.work kernel ~p:100)

let test_overhead_models () =
  let prop = base ~overhead:(Moldable.Proportional 10.0) () in
  close "proportional C(p)" 0.1 (Moldable.checkpoint_cost prop ~p:100);
  let const = base ~overhead:(Moldable.Constant 10.0) () in
  close "constant C(p)" 10.0 (Moldable.checkpoint_cost const ~p:100)

let test_lambda_scaling () =
  let s = base () in
  close "lambda(p) = p lambda_proc" 1e-3 (Moldable.lambda s ~p:100)

let test_validation () =
  Alcotest.check_raises "gamma >= 1 rejected"
    (Invalid_argument "Moldable.scenario: Amdahl gamma must lie in [0,1)") (fun () ->
      ignore
        (Moldable.scenario ~total_work:1.0 ~workload:(Moldable.Amdahl 1.0)
           ~overhead:(Moldable.Constant 1.0) ~proc_rate:1e-5 ()));
  Alcotest.check_raises "p = 0 rejected" (Invalid_argument "Moldable: p must be >= 1")
    (fun () -> ignore (Moldable.work (base ()) ~p:0))

let test_expected_time_uses_optimal_segmentation () =
  let s = base () in
  let p = 64 in
  let direct =
    Approximations.optimal_divisible
      ~total_work:(Moldable.work s ~p)
      ~checkpoint:(Moldable.checkpoint_cost s ~p)
      ~downtime:1.0
      ~recovery:(Moldable.checkpoint_cost s ~p)
      ~lambda:(Moldable.lambda s ~p)
  in
  let result = Moldable.expected_time s ~p in
  close "matches divisible optimum" direct.Approximations.expected_total
    result.Approximations.expected_total

let test_optimal_processors_is_argmin () =
  let s = base () in
  let max_p = 512 in
  let best_p, best = Moldable.optimal_processors s ~max_p in
  Alcotest.(check bool) "in range" true (best_p >= 1 && best_p <= max_p);
  for p = 1 to max_p do
    Alcotest.(check bool) "argmin" true
      (best.Approximations.expected_total
       <= (Moldable.expected_time s ~p).Approximations.expected_total +. 1e-9)
  done

let test_interior_optimum_exists () =
  (* With constant checkpoint cost, going parallel first helps (less
     work per processor) then hurts (lambda grows, C does not shrink):
     the optimum lies strictly inside a wide enough range. *)
  let s =
    Moldable.scenario ~downtime:1.0 ~total_work:1_000_000.0
      ~workload:Moldable.Perfectly_parallel ~overhead:(Moldable.Constant 100.0)
      ~proc_rate:1e-4 ()
  in
  let best_p, _ = Moldable.optimal_processors s ~max_p:4096 in
  Alcotest.(check bool)
    (Printf.sprintf "interior optimum (p* = %d)" best_p)
    true
    (best_p > 1 && best_p < 4096)

let test_proportional_scales_further_than_constant () =
  (* The E9 claim: when checkpoints shrink with p, larger platforms stay
     profitable longer. *)
  let mk overhead =
    Moldable.scenario ~downtime:1.0 ~total_work:1_000_000.0
      ~workload:Moldable.Perfectly_parallel ~overhead ~proc_rate:1e-4 ()
  in
  let p_prop, _ = Moldable.optimal_processors (mk (Moldable.Proportional 100.0)) ~max_p:8192 in
  let p_const, _ = Moldable.optimal_processors (mk (Moldable.Constant 100.0)) ~max_p:8192 in
  Alcotest.(check bool)
    (Printf.sprintf "p*(proportional) = %d > p*(constant) = %d" p_prop p_const)
    true (p_prop > p_const)

let test_sweep () =
  let s = base () in
  let rows = Moldable.sweep s ~ps:[ 1; 2; 4; 8 ] in
  Alcotest.(check (list int)) "sweep covers requested ps" [ 1; 2; 4; 8 ]
    (List.map fst rows);
  (* Monotone improvement in this easy regime. *)
  let totals = List.map (fun (_, d) -> d.Approximations.expected_total) rows in
  Alcotest.(check bool) "more processors help at small p" true
    (totals = List.sort (fun a b -> compare b a) totals)

let test_to_string () =
  Alcotest.(check string) "workload rendering" "Amdahl(gamma=0.25)"
    (Moldable.workload_to_string (Moldable.Amdahl 0.25));
  Alcotest.(check string) "overhead rendering" "constant(C=10)"
    (Moldable.overhead_to_string (Moldable.Constant 10.0))

let suite =
  [
    Alcotest.test_case "workload models" `Quick test_work_models;
    Alcotest.test_case "overhead models" `Quick test_overhead_models;
    Alcotest.test_case "lambda scaling" `Quick test_lambda_scaling;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "expected time = divisible optimum" `Quick
      test_expected_time_uses_optimal_segmentation;
    Alcotest.test_case "optimal processors is argmin" `Slow test_optimal_processors_is_argmin;
    Alcotest.test_case "interior optimum" `Quick test_interior_optimum_exists;
    Alcotest.test_case "proportional scales further" `Quick
      test_proportional_scales_further_than_constant;
    Alcotest.test_case "sweep" `Quick test_sweep;
    Alcotest.test_case "rendering" `Quick test_to_string;
  ]

let () =
  Alcotest.run "checkpoint-workflows"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("distributions", Test_dist.suite);
      ("dag", Test_dag.suite);
      ("failures", Test_failures.suite);
      ("simulator", Test_sim.suite);
      ("parallel", Test_parallel.suite);
      ("expected-time", Test_expected_time.suite);
      ("approximations", Test_approximations.suite);
      ("chain", Test_chain.suite);
      ("segment-cost", Test_segment_cost.suite);
      ("brute-force", Test_brute_force.suite);
      ("independent", Test_independent.suite);
      ("reduction", Test_reduction.suite);
      ("moldable", Test_moldable.suite);
      ("dag-sched", Test_dag_sched.suite);
      ("nonmemoryless", Test_nonmemoryless.suite);
      ("specs", Test_specs.suite);
      ("btw", Test_btw.suite);
      ("superposition", Test_superposition.suite);
      ("divisible", Test_divisible.suite);
      ("law-fit", Test_law_fit.suite);
      ("moldable-chain", Test_moldable_chain.suite);
      ("properties", Test_properties.suite);
      ("replication", Test_replication.suite);
      ("output-tools", Test_output_tools.suite);
      ("rejuvenation", Test_rejuvenation.suite);
      ("scenarios", Test_scenarios.suite);
      ("obs", Test_obs.suite);
      ("obs-tools", Test_obs_tools.suite);
      ("lint", Test_lint.suite);
      ("bench", Test_bench.suite);
      ("serve", Test_serve.suite);
    ]

(* Tests for the parallel Monte-Carlo engine: the bit-identical-
   for-any-domain-count guarantee across every estimator, adaptive
   sampling semantics, and exception-safe domain joining. *)

module Parallel_exec = Ckpt_sim.Parallel_exec
module Monte_carlo = Ckpt_sim.Monte_carlo
module Sim_run = Ckpt_sim.Sim_run
module Welford = Ckpt_stats.Welford
module Rng = Ckpt_prng.Rng
module Task = Ckpt_dag.Task

let seg = Sim_run.segment
let domain_counts = [ 1; 2; 3; 7 ]

(* Exact float equality: the guarantee is bit-identical, not close. *)
let same name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.17g = %.17g" name a b)
    true (Float.equal a b)

let check_identical_estimates name of_domains =
  let reference = of_domains 1 in
  List.iter
    (fun domains ->
      let e = of_domains domains in
      let tag field = Printf.sprintf "%s (%d domains, %s)" name domains field in
      same (tag "mean") reference.Monte_carlo.mean e.Monte_carlo.mean;
      same (tag "stddev") reference.Monte_carlo.stddev e.Monte_carlo.stddev;
      same (tag "min") reference.Monte_carlo.min e.Monte_carlo.min;
      same (tag "max") reference.Monte_carlo.max e.Monte_carlo.max;
      Alcotest.(check int) (tag "runs") reference.Monte_carlo.runs e.Monte_carlo.runs)
    domain_counts

let test_estimate_segments_identical () =
  check_identical_estimates "estimate_segments" (fun domains ->
      Monte_carlo.estimate_segments ~domains ~model:(Monte_carlo.Poisson_rate 0.08)
        ~downtime:0.4 ~runs:3000 ~rng:(Rng.create ~seed:515L)
        [ seg ~work:7.0 ~checkpoint:0.7 ~recovery:1.2 ])

let chain_tasks =
  [| Task.make ~id:0 ~work:3.0 ~checkpoint_cost:0.5 ~recovery_cost:1.0 ();
     Task.make ~id:1 ~work:4.0 ~checkpoint_cost:0.4 ~recovery_cost:1.1 ();
     Task.make ~id:2 ~work:2.0 ~checkpoint_cost:0.3 ~recovery_cost:1.2 () |]

let test_estimate_chain_policy_identical () =
  check_identical_estimates "estimate_chain_policy" (fun domains ->
      Monte_carlo.estimate_chain_policy ~domains ~model:(Monte_carlo.Poisson_rate 0.06)
        ~downtime:0.3 ~initial_recovery:0.8 ~runs:2000 ~rng:(Rng.create ~seed:616L)
        ~decide:(fun ctx -> ctx.Sim_run.work_since_checkpoint >= 4.0)
        chain_tasks)

let test_collect_segments_identical () =
  let collect domains =
    Monte_carlo.collect_segments ~domains ~model:(Monte_carlo.Poisson_rate 0.05)
      ~downtime:0.5 ~runs:2000 ~rng:(Rng.create ~seed:717L)
      [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ]
  in
  let reference = collect 1 in
  List.iter
    (fun domains ->
      let d = collect domains in
      Alcotest.(check bool)
        (Printf.sprintf "identical sample array (%d domains)" domains)
        true
        (d.Monte_carlo.samples = reference.Monte_carlo.samples);
      same
        (Printf.sprintf "identical mean (%d domains)" domains)
        reference.Monte_carlo.estimate.Monte_carlo.mean
        d.Monte_carlo.estimate.Monte_carlo.mean)
    domain_counts

let test_logs_replay_identical () =
  let rng = Rng.create ~seed:818L in
  let logs =
    List.init 40 (fun i ->
        let run_rng = Rng.substream rng (Printf.sprintf "log-%d" i) in
        let times =
          Array.init 6 (fun k -> (float_of_int k +. Rng.float run_rng) *. 4.0)
        in
        Ckpt_failures.Trace.of_times ~horizon:100.0 times)
  in
  check_identical_estimates "estimate_chain_policy_on_logs" (fun domains ->
      Monte_carlo.estimate_chain_policy_on_logs ~domains ~downtime:0.25
        ~initial_recovery:0.7
        ~logs
        ~decide:(fun _ -> true)
        chain_tasks)

let qcheck_parallel_equals_sequential =
  (* Random workloads and domain counts: the engine must be oblivious
     to the layout for any shape, not just the hand-picked ones. *)
  let gen =
    QCheck.Gen.(
      let* work = float_range 1.0 20.0 in
      let* checkpoint = float_range 0.0 2.0 in
      let* recovery = float_range 0.0 2.0 in
      let* rate = float_range 0.005 0.3 in
      let* runs = int_range 1 700 in
      let* domains = oneofl [ 2; 3; 7 ] in
      let* seed = int_range 1 1_000_000 in
      return (work, checkpoint, recovery, rate, runs, domains, seed))
  in
  QCheck.Test.make ~name:"parallel estimate is bit-identical to sequential" ~count:25
    (QCheck.make gen)
    (fun (work, checkpoint, recovery, rate, runs, domains, seed) ->
      let estimate domains =
        Monte_carlo.estimate_segments ~domains ~model:(Monte_carlo.Poisson_rate rate)
          ~downtime:0.2 ~runs
          ~rng:(Rng.create ~seed:(Int64.of_int seed))
          [ seg ~work ~checkpoint ~recovery ]
      in
      let a = estimate 1 and b = estimate domains in
      Float.equal a.Monte_carlo.mean b.Monte_carlo.mean
      && Float.equal a.Monte_carlo.stddev b.Monte_carlo.stddev
      && Float.equal a.Monte_carlo.min b.Monte_carlo.min
      && Float.equal a.Monte_carlo.max b.Monte_carlo.max)

let test_adaptive_reaches_target () =
  let target_ci = 0.01 in
  let estimate =
    Monte_carlo.estimate_segments ~domains:2 ~target_ci ~max_runs:200_000
      ~model:(Monte_carlo.Poisson_rate 0.08) ~downtime:0.4 ~runs:500
      ~rng:(Rng.create ~seed:919L)
      [ seg ~work:7.0 ~checkpoint:0.7 ~recovery:1.2 ]
  in
  let lo, hi = estimate.Monte_carlo.ci99 in
  let half = (hi -. lo) /. 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "CI half-width %.5f within %.5f of mean %.3f" half
       (target_ci *. estimate.Monte_carlo.mean)
       estimate.Monte_carlo.mean)
    true
    (half <= target_ci *. Float.abs estimate.Monte_carlo.mean);
  Alcotest.(check bool) "grew beyond the initial round" true
    (estimate.Monte_carlo.runs >= 500);
  Alcotest.(check bool) "under the cap" true (estimate.Monte_carlo.runs <= 200_000)

let test_adaptive_respects_cap () =
  (* An unreachable target must stop exactly at the cap. *)
  let estimate =
    Monte_carlo.estimate_segments ~domains:2 ~target_ci:1e-9 ~max_runs:800
      ~model:(Monte_carlo.Poisson_rate 0.1) ~downtime:0.2 ~runs:200
      ~rng:(Rng.create ~seed:1021L)
      [ seg ~work:5.0 ~checkpoint:0.5 ~recovery:1.0 ]
  in
  Alcotest.(check int) "stopped at the hard cap" 800 estimate.Monte_carlo.runs

let test_adaptive_deterministic_across_domains () =
  let estimate domains =
    Monte_carlo.estimate_segments ~domains ~target_ci:0.02 ~max_runs:100_000
      ~model:(Monte_carlo.Poisson_rate 0.08) ~downtime:0.4 ~runs:300
      ~rng:(Rng.create ~seed:1122L)
      [ seg ~work:7.0 ~checkpoint:0.7 ~recovery:1.2 ]
  in
  let a = estimate 1 in
  List.iter
    (fun domains ->
      let b = estimate domains in
      Alcotest.(check int)
        (Printf.sprintf "same stopping point (%d domains)" domains)
        a.Monte_carlo.runs b.Monte_carlo.runs;
      same (Printf.sprintf "same adaptive mean (%d domains)" domains)
        a.Monte_carlo.mean b.Monte_carlo.mean)
    domain_counts

let test_adaptive_prefix_property () =
  (* The first n samples of a longer campaign are the shorter campaign:
     substream derivation is positional, not sequential. *)
  let collect runs =
    (Monte_carlo.collect_segments ~domains:3 ~model:(Monte_carlo.Poisson_rate 0.05)
       ~downtime:0.5 ~runs ~rng:(Rng.create ~seed:1223L)
       [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ])
      .Monte_carlo.samples
  in
  (* collect sorts; compare as multisets via sorted arrays. *)
  let short = collect 500 in
  let long = collect 1000 in
  let in_long = Hashtbl.create 1000 in
  Array.iter
    (fun x ->
      Hashtbl.replace in_long x (1 + Option.value ~default:0 (Hashtbl.find_opt in_long x)))
    long;
  let missing =
    Array.fold_left
      (fun acc x ->
        match Hashtbl.find_opt in_long x with
        | Some n when n > 0 ->
            Hashtbl.replace in_long x (n - 1);
            acc
        | _ -> acc + 1)
      0 short
  in
  Alcotest.(check int) "every short-campaign sample appears in the long campaign" 0 missing

exception Boom of int

let test_exception_joins_all_domains () =
  (* A worker that raises must not leave domains running or mask the
     exception; the engine must stay usable afterwards. *)
  let raised =
    try
      ignore
        (Parallel_exec.estimate ~domains:4 ~runs:2000 ~seed:42L (fun r _rng ->
             if r >= 700 then raise (Boom r) else 1.0));
      None
    with Boom r -> Some r
  in
  (match raised with
  | Some r -> Alcotest.(check bool) "failing run index reported" true (r >= 700)
  | None -> Alcotest.fail "expected Boom to propagate");
  (* The pool is not poisoned: a follow-up campaign works and is exact. *)
  let acc = Parallel_exec.estimate ~domains:4 ~runs:1000 ~seed:42L (fun _ _ -> 2.5) in
  Alcotest.(check int) "subsequent campaign completes" 1000 (Welford.count acc);
  Alcotest.(check bool) "subsequent campaign correct" true
    (Float.equal 2.5 (Welford.mean acc))

let test_livelock_propagates () =
  (* The motivating bug: Sim_run.Livelock from one worker used to leak
     the other domains; now it must surface as a clean exception. *)
  let sample _run run_rng =
    let stream =
      Ckpt_failures.Failure_stream.renewal
        ~law:(Ckpt_dist.Law.deterministic 1.0) ~processors:1 run_rng
    in
    Sim_run.run_segments ~max_failures:500 ~downtime:0.0
      ~next_failure:(Ckpt_failures.Failure_stream.next_after stream)
      [ seg ~work:5.0 ~checkpoint:0.0 ~recovery:2.0 ]
  in
  match Parallel_exec.estimate ~domains:3 ~runs:50 ~seed:1L sample with
  | exception Sim_run.Livelock _ -> ()
  | _ -> Alcotest.fail "expected Livelock to propagate through the pool"

let test_more_domains_than_runs () =
  let acc = Parallel_exec.estimate ~domains:8 ~runs:3 ~seed:7L (fun r _ -> float_of_int r) in
  Alcotest.(check int) "all runs executed" 3 (Welford.count acc);
  Alcotest.(check bool) "mean of 0,1,2" true (Float.equal 1.0 (Welford.mean acc))

let test_invalid_arguments () =
  let sample _ _ = 0.0 in
  Alcotest.check_raises "zero runs" (Invalid_argument "Parallel_exec: runs must be positive")
    (fun () -> ignore (Parallel_exec.estimate ~runs:0 ~seed:1L sample));
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Parallel_exec: domains must be >= 1") (fun () ->
      ignore (Parallel_exec.estimate ~domains:0 ~runs:10 ~seed:1L sample));
  Alcotest.check_raises "cap below initial round"
    (Invalid_argument "Parallel_exec: max_runs must be >= runs") (fun () ->
      ignore
        (Parallel_exec.estimate_adaptive ~runs:100 ~max_runs:50 ~target_ci:0.1 ~seed:1L
           sample));
  Alcotest.check_raises "non-positive target"
    (Invalid_argument "Parallel_exec: target_ci must be positive") (fun () ->
      ignore
        (Parallel_exec.estimate_adaptive ~runs:100 ~max_runs:200 ~target_ci:0.0 ~seed:1L
           sample))

let suite =
  [
    Alcotest.test_case "estimate_segments bit-identical across domains" `Quick
      test_estimate_segments_identical;
    Alcotest.test_case "estimate_chain_policy bit-identical across domains" `Quick
      test_estimate_chain_policy_identical;
    Alcotest.test_case "collect_segments bit-identical across domains" `Quick
      test_collect_segments_identical;
    Alcotest.test_case "log replay bit-identical across domains" `Quick
      test_logs_replay_identical;
    QCheck_alcotest.to_alcotest qcheck_parallel_equals_sequential;
    Alcotest.test_case "adaptive sampling reaches the CI target" `Quick
      test_adaptive_reaches_target;
    Alcotest.test_case "adaptive sampling respects the run cap" `Quick
      test_adaptive_respects_cap;
    Alcotest.test_case "adaptive stopping is domain-count independent" `Quick
      test_adaptive_deterministic_across_domains;
    Alcotest.test_case "campaign extension preserves samples" `Quick
      test_adaptive_prefix_property;
    Alcotest.test_case "worker exception joins all domains" `Quick
      test_exception_joins_all_domains;
    Alcotest.test_case "livelock propagates through the pool" `Quick
      test_livelock_propagates;
    Alcotest.test_case "more domains than runs" `Quick test_more_domains_than_runs;
    Alcotest.test_case "argument validation" `Quick test_invalid_arguments;
  ]

(* Tests for the non-memoryless checkpoint policies (Section 6). *)

module Law = Ckpt_dist.Law
module Task = Ckpt_dag.Task
module Rng = Ckpt_prng.Rng
module Sim_run = Ckpt_sim.Sim_run
module Monte_carlo = Ckpt_sim.Monte_carlo
module Platform = Ckpt_failures.Platform
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Expected_time = Ckpt_core.Expected_time
module Nonmemoryless = Ckpt_core.Nonmemoryless

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let ctx ?(task_index = 0) ?(last_checkpoint = -1) ?(now = 10.0) ?(since = 10.0)
    ?(unsaved = 5.0) () =
  {
    Sim_run.task_index;
    last_checkpoint;
    now;
    since_last_failure = since;
    work_since_checkpoint = unsaved;
  }

let test_basic_policies () =
  Alcotest.(check bool) "checkpoint_all" true (Nonmemoryless.checkpoint_all (ctx ()));
  Alcotest.(check bool) "checkpoint_none" false (Nonmemoryless.checkpoint_none (ctx ()));
  let policy = Nonmemoryless.work_threshold ~threshold:4.0 in
  Alcotest.(check bool) "threshold exceeded" true (policy (ctx ~unsaved:5.0 ()));
  Alcotest.(check bool) "threshold not reached" false (policy (ctx ~unsaved:3.0 ()))

let test_static_policy_replays_schedule () =
  let problem = Chain_problem.uniform ~lambda:0.1 ~checkpoint:0.5 ~recovery:0.5
      [ 1.0; 2.0; 3.0 ]
  in
  let schedule = Schedule.of_indices problem [ 1 ] in
  let policy = Nonmemoryless.static schedule in
  Alcotest.(check bool) "no ckpt after task 0" false (policy (ctx ~task_index:0 ()));
  Alcotest.(check bool) "ckpt after task 1" true (policy (ctx ~task_index:1 ()))

let test_conditional_probability_exponential_memoryless () =
  let law = Law.exponential ~rate:0.2 in
  let p1 =
    Nonmemoryless.conditional_failure_probability ~law ~processors:3 ~age:0.0 ~window:2.0
  in
  let p2 =
    Nonmemoryless.conditional_failure_probability ~law ~processors:3 ~age:50.0 ~window:2.0
  in
  close "age-independent for exponential" p1 p2;
  close "matches 1 - e^(-p lambda w)" (1.0 -. exp (-3.0 *. 0.2 *. 2.0)) p1

let test_conditional_probability_weibull_ageing () =
  (* Decreasing hazard: conditional failure probability decreases with age. *)
  let law = Law.weibull ~shape:0.5 ~scale:10.0 in
  let prob age =
    Nonmemoryless.conditional_failure_probability ~law ~processors:1 ~age ~window:1.0
  in
  Alcotest.(check bool) "P(fail | young) > P(fail | old)" true
    (prob 0.1 > prob 5.0 && prob 5.0 > prob 50.0)

let test_remaining_expected_zero_done_is_prop1 () =
  (* With no sunk work the lookahead formula collapses to Proposition 1
     (it satisfies the same fixed-point equation). *)
  List.iter
    (fun (w, c, d, r, l) ->
      let direct =
        Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d ~recovery:r ~lambda:l
      in
      let via_remaining =
        Nonmemoryless.remaining_expected ~lambda:l ~downtime:d ~recovery:r ~done_work:0.0
          ~todo:w ~checkpoint:c
      in
      close ~tol:1e-12 (Printf.sprintf "collapse at W=%g l=%g" w l) direct via_remaining)
    [ (10.0, 1.0, 0.5, 2.0, 0.05); (3.0, 0.1, 0.0, 0.0, 0.4); (100.0, 5.0, 1.0, 5.0, 0.003) ]

let test_remaining_expected_monotone_in_done_work () =
  let remaining done_work =
    Nonmemoryless.remaining_expected ~lambda:0.1 ~downtime:0.5 ~recovery:1.0 ~done_work
      ~todo:5.0 ~checkpoint:0.5
  in
  Alcotest.(check bool) "more sunk work, more at stake" true
    (remaining 0.0 < remaining 5.0 && remaining 5.0 < remaining 20.0)

let test_remaining_expected_degenerate () =
  close "nothing to do costs nothing" 0.0
    (Nonmemoryless.remaining_expected ~lambda:0.1 ~downtime:0.5 ~recovery:1.0
       ~done_work:7.0 ~todo:0.0 ~checkpoint:0.0)

let uniform_problem n =
  Chain_problem.uniform ~downtime:0.1 ~lambda:0.02 ~checkpoint:0.4 ~recovery:0.4
    (List.init n (fun _ -> 2.0))

let simulate_policy ~law ~processors ~runs ~seed problem policy =
  let platform = Platform.make ~downtime:0.1 ~processors ~proc_law:law () in
  let rng = Rng.create ~seed in
  (Monte_carlo.estimate_chain_policy ~model:(Monte_carlo.Platform platform) ~downtime:0.1
     ~initial_recovery:problem.Chain_problem.initial_recovery ~runs ~rng ~decide:policy
     problem.Chain_problem.tasks)
    .Monte_carlo.mean

let test_hazard_dp_reasonable_on_exponential () =
  (* Under a truly Exponential law, the hazard-DP policy sees a constant
     hazard and should behave like the static optimal placement: means
     within a few percent. *)
  let n = 10 in
  let problem = uniform_problem n in
  let law = Law.exponential ~rate:0.02 in
  let dp_schedule = (Chain_dp.solve problem).Chain_dp.schedule in
  let static =
    simulate_policy ~law ~processors:1 ~runs:4000 ~seed:555L problem
      (Nonmemoryless.static dp_schedule)
  in
  let adaptive =
    simulate_policy ~law ~processors:1 ~runs:4000 ~seed:555L problem
      (Nonmemoryless.hazard_dp ~law ~processors:1 ~problem)
  in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.3f within 5%% of static %.3f" adaptive static)
    true
    (Float.abs (adaptive -. static) /. static < 0.05)

let test_policies_produce_finite_makespans_under_weibull () =
  let n = 8 in
  let problem = uniform_problem n in
  let law = Law.weibull_of_mean ~shape:0.7 ~mean:50.0 in
  let policies =
    [ ("static", Nonmemoryless.static (Chain_dp.solve problem).Chain_dp.schedule);
      ("all", Nonmemoryless.checkpoint_all);
      ("none", Nonmemoryless.checkpoint_none);
      ("hazard-young", Nonmemoryless.hazard_young ~law ~processors:4 ~mean_checkpoint:0.4);
      ("mrl-young", Nonmemoryless.mrl_young ~law ~processors:4 ~mean_checkpoint:0.4);
      ("risk", Nonmemoryless.risk_bound ~law ~processors:4 ~problem ~max_risk:0.5);
      ("hazard-dp", Nonmemoryless.hazard_dp ~law ~processors:4 ~problem) ]
  in
  List.iter
    (fun (name, policy) ->
      let mean = simulate_policy ~law ~processors:4 ~runs:500 ~seed:99L problem policy in
      Alcotest.(check bool)
        (Printf.sprintf "%s: finite positive makespan (%.3f)" name mean)
        true
        (Float.is_finite mean && mean >= 16.0))
    policies

let test_cache_stats_track_and_reset () =
  Nonmemoryless.reset_cache_stats ();
  let zero = Nonmemoryless.cache_stats () in
  Alcotest.(check int) "hits start at zero" 0 zero.Nonmemoryless.hits;
  Alcotest.(check int) "misses start at zero" 0 zero.Nonmemoryless.misses;
  Alcotest.(check int) "size starts at zero" 0 zero.Nonmemoryless.size;
  let law = Law.weibull ~shape:0.7 ~scale:50.0 in
  let policy = Nonmemoryless.mrl_young ~law ~processors:2 ~mean_checkpoint:0.4 in
  (* Same age bucket twice: one miss populates it, one hit reuses it. *)
  ignore (policy (ctx ~since:3.0 ()));
  ignore (policy (ctx ~since:3.0 ()));
  let s = Nonmemoryless.cache_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "lookups recorded (hits %d, misses %d)" s.Nonmemoryless.hits
       s.Nonmemoryless.misses)
    true
    (s.Nonmemoryless.hits >= 1 && s.Nonmemoryless.misses >= 1);
  Alcotest.(check int) "size counts insertions" s.Nonmemoryless.misses
    s.Nonmemoryless.size;
  Nonmemoryless.reset_cache_stats ();
  let r = Nonmemoryless.cache_stats () in
  Alcotest.(check int) "reset zeros hits" 0 r.Nonmemoryless.hits;
  Alcotest.(check int) "reset zeros misses" 0 r.Nonmemoryless.misses;
  Alcotest.(check int) "reset zeros size" 0 r.Nonmemoryless.size

let test_hazard_young_adapts () =
  (* Right after a failure (small age) the hazard is huge for shape<1,
     so the policy checkpoints at small unsaved work; long after, it
     waits. *)
  let law = Law.weibull ~shape:0.5 ~scale:100.0 in
  let policy = Nonmemoryless.hazard_young ~law ~processors:1 ~mean_checkpoint:0.5 in
  (* At age 0.6 the platform hazard is ~0.065, Young period ~3.9;
     at age 500 the hazard drops to ~0.0022, Young period ~21. *)
  let young_ctx = ctx ~since:0.6 ~unsaved:4.0 () in
  let old_ctx = ctx ~since:500.0 ~unsaved:4.0 () in
  Alcotest.(check bool) "checkpoints when hazard is high" true (policy young_ctx);
  Alcotest.(check bool) "waits when hazard is low" false (policy old_ctx)

let suite =
  [
    Alcotest.test_case "basic policies" `Quick test_basic_policies;
    Alcotest.test_case "static policy replays schedule" `Quick
      test_static_policy_replays_schedule;
    Alcotest.test_case "conditional probability: exponential" `Quick
      test_conditional_probability_exponential_memoryless;
    Alcotest.test_case "conditional probability: weibull ageing" `Quick
      test_conditional_probability_weibull_ageing;
    Alcotest.test_case "remaining_expected collapses to Prop 1" `Quick
      test_remaining_expected_zero_done_is_prop1;
    Alcotest.test_case "remaining_expected monotone in sunk work" `Quick
      test_remaining_expected_monotone_in_done_work;
    Alcotest.test_case "remaining_expected degenerate" `Quick test_remaining_expected_degenerate;
    Alcotest.test_case "hazard-DP sane on exponential" `Slow
      test_hazard_dp_reasonable_on_exponential;
    Alcotest.test_case "policies finite under weibull" `Slow
      test_policies_produce_finite_makespans_under_weibull;
    Alcotest.test_case "hazard-young adapts to age" `Quick test_hazard_young_adapts;
    Alcotest.test_case "cache stats track and reset" `Quick
      test_cache_stats_track_and_reset;
  ]

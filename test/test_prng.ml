(* Tests for the deterministic PRNG substrate. *)

module Splitmix64 = Ckpt_prng.Splitmix64
module Xoshiro256 = Ckpt_prng.Xoshiro256
module Rng = Ckpt_prng.Rng

let check_int64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_splitmix_deterministic () =
  let a = Splitmix64.create 1234L and b = Splitmix64.create 1234L in
  for _ = 1 to 100 do
    Alcotest.check check_int64 "same seed, same stream" (Splitmix64.next a)
      (Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
  let outputs_a = List.init 10 (fun _ -> Splitmix64.next a) in
  let outputs_b = List.init 10 (fun _ -> Splitmix64.next b) in
  Alcotest.(check bool) "different seeds diverge" false (outputs_a = outputs_b)

let test_of_label () =
  Alcotest.check check_int64 "label derivation is deterministic"
    (Splitmix64.of_label 7L "alpha") (Splitmix64.of_label 7L "alpha");
  Alcotest.(check bool) "labels distinguish" false
    (Splitmix64.of_label 7L "alpha" = Splitmix64.of_label 7L "beta");
  Alcotest.(check bool) "prefix labels distinguish" false
    (Splitmix64.of_label 7L "ab" = Splitmix64.of_label 7L "abc");
  Alcotest.(check bool) "seed matters" false
    (Splitmix64.of_label 7L "alpha" = Splitmix64.of_label 8L "alpha")

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create 99L and b = Xoshiro256.create 99L in
  for _ = 1 to 100 do
    Alcotest.check check_int64 "same seed, same stream" (Xoshiro256.next_int64 a)
      (Xoshiro256.next_int64 b)
  done

let test_xoshiro_copy () =
  let a = Xoshiro256.create 5L in
  ignore (Xoshiro256.next_int64 a);
  let b = Xoshiro256.copy a in
  Alcotest.check check_int64 "copy continues identically" (Xoshiro256.next_int64 a)
    (Xoshiro256.next_int64 b);
  ignore (Xoshiro256.next_int64 a);
  (* advancing one does not affect the other *)
  let a1 = Xoshiro256.next_int64 a and b1 = Xoshiro256.next_int64 b in
  Alcotest.(check bool) "streams now independent" false (a1 = b1)

let test_xoshiro_split_disjoint () =
  let parent = Xoshiro256.create 11L in
  let child = Xoshiro256.split parent in
  let child_outputs = List.init 64 (fun _ -> Xoshiro256.next_int64 child) in
  let parent_outputs = List.init 64 (fun _ -> Xoshiro256.next_int64 parent) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "child output not in parent prefix" false
        (List.mem c parent_outputs))
    child_outputs

let test_float_range_unit () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (x >= 0.0 && x < 1.0)
  done;
  for _ = 1 to 10_000 do
    let x = Rng.float_pos rng in
    Alcotest.(check bool) "float_pos in (0,1]" true (x > 0.0 && x <= 1.0)
  done

let test_float_uniformity () =
  let rng = Rng.create ~seed:17L in
  let bins = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.float rng in
    bins.(int_of_float (x *. 10.0)) <- bins.(int_of_float (x *. 10.0)) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = float_of_int n /. 10.0 in
      Alcotest.(check bool)
        (Printf.sprintf "bin %d within 5%% of uniform" i)
        true
        (Float.abs (float_of_int count -. expected) < 0.05 *. expected))
    bins

let test_int_bounds () =
  let rng = Rng.create ~seed:23L in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 7);
    seen.(x) <- true
  done;
  Array.iteri
    (fun i hit -> Alcotest.(check bool) (Printf.sprintf "value %d reached" i) true hit)
    seen

let test_bool_balanced () =
  let rng = Rng.create ~seed:29L in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "bool roughly fair" true (ratio > 0.48 && ratio < 0.52)

let test_shuffle_multiset () =
  let rng = Rng.create ~seed:31L in
  let original = List.init 50 Fun.id in
  let shuffled = Rng.shuffle rng original in
  Alcotest.(check (list int)) "same multiset" original (List.sort compare shuffled);
  Alcotest.(check bool) "actually permuted" false (original = shuffled)

let test_substream_independent_of_consumption () =
  (* The substream depends only on seed and label, not on draws made on
     the parent before derivation. *)
  let a = Rng.create ~seed:41L in
  ignore (Rng.float a);
  ignore (Rng.float a);
  let sub_a = Rng.substream a "worker" in
  let b = Rng.create ~seed:41L in
  let sub_b = Rng.substream b "worker" in
  for _ = 1 to 20 do
    Alcotest.check check_int64 "substream reproducible" (Rng.int64 sub_a) (Rng.int64 sub_b)
  done

let test_substream_labels_distinct () =
  let rng = Rng.create ~seed:43L in
  let a = Rng.substream rng "x" and b = Rng.substream rng "y" in
  Alcotest.(check bool) "distinct labels give distinct streams" false
    (List.init 5 (fun _ -> Rng.int64 a) = List.init 5 (fun _ -> Rng.int64 b))

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Rng.int is always within bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let qcheck_float_range =
  QCheck.Test.make ~name:"Rng.float_range stays in its interval" ~count:1000
    QCheck.(triple small_int (float_range (-1000.0) 1000.0) (float_range 0.0 1000.0))
    (fun (seed, lo, width) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let hi = lo +. width in
      let x = Rng.float_range rng lo hi in
      x >= lo && (x < hi || hi = lo))

let suite =
  [
    Alcotest.test_case "splitmix64 determinism" `Quick test_splitmix_deterministic;
    Alcotest.test_case "splitmix64 seed sensitivity" `Quick test_splitmix_seed_sensitivity;
    Alcotest.test_case "label-derived sub-seeds" `Quick test_of_label;
    Alcotest.test_case "xoshiro determinism" `Quick test_xoshiro_deterministic;
    Alcotest.test_case "xoshiro copy semantics" `Quick test_xoshiro_copy;
    Alcotest.test_case "xoshiro split disjoint" `Quick test_xoshiro_split_disjoint;
    Alcotest.test_case "float ranges" `Quick test_float_range_unit;
    Alcotest.test_case "float uniformity" `Quick test_float_uniformity;
    Alcotest.test_case "int bounds and coverage" `Quick test_int_bounds;
    Alcotest.test_case "bool balance" `Quick test_bool_balanced;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_multiset;
    Alcotest.test_case "substream reproducibility" `Quick
      test_substream_independent_of_consumption;
    Alcotest.test_case "substream label separation" `Quick test_substream_labels_distinct;
    QCheck_alcotest.to_alcotest qcheck_int_in_range;
    QCheck_alcotest.to_alcotest qcheck_float_range;
  ]

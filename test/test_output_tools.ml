(* Tests for the output helpers: ASCII plots and law-spec parsing. *)

module Ascii_plot = Ckpt_stats.Ascii_plot
module Law = Ckpt_dist.Law
module Law_spec = Ckpt_dist.Law_spec

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_plot_basic () =
  let points = List.init 10 (fun i -> (float_of_int i, float_of_int (i * i))) in
  let rendered = Ascii_plot.single ~width:40 ~height:10 ~title:"parabola" points in
  Alcotest.(check bool) "title present" true (Astring_like.contains rendered "parabola");
  Alcotest.(check bool) "stars plotted" true (Astring_like.contains rendered "*");
  (* 10 grid rows + title + axis + x labels. *)
  Alcotest.(check int) "line count" 13
    (List.length (String.split_on_char '\n' (String.trim rendered)))

let test_plot_log_axes () =
  let points = [ (1.0, 10.0); (10.0, 1000.0); (100.0, 100000.0) ] in
  let rendered = Ascii_plot.single ~log_x:true ~log_y:true points in
  Alcotest.(check bool) "log annotation" true (Astring_like.contains rendered "(log x,y)")

let test_plot_multi_series () =
  let s1 = { Ascii_plot.label = 'a'; points = [ (0.0, 0.0); (1.0, 1.0) ] } in
  let s2 = { Ascii_plot.label = 'b'; points = [ (0.0, 1.0); (1.0, 0.0) ] } in
  let rendered = Ascii_plot.plot [ s1; s2 ] in
  Alcotest.(check bool) "series a" true (Astring_like.contains rendered "a");
  Alcotest.(check bool) "series b" true (Astring_like.contains rendered "b")

let test_plot_validation () =
  (match Ascii_plot.single [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty input accepted");
  match Ascii_plot.single ~log_x:true [ (-1.0, 2.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative coordinate on log axis accepted"

let test_law_spec_parse () =
  (match Law_spec.parse_exn "exp:1000" with
  | Law.Exponential { rate } -> close "exp rate" 1e-3 rate
  | law -> Alcotest.fail (Law.to_string law));
  (match Law_spec.parse_exn "weibull:0.7:500" with
  | Law.Weibull _ as law -> close ~tol:1e-9 "weibull mean" 500.0 (Law.mean law)
  | law -> Alcotest.fail (Law.to_string law));
  (match Law_spec.parse_exn "lognormal:1.5:200" with
  | Law.Log_normal _ as law -> close ~tol:1e-9 "lognormal mean" 200.0 (Law.mean law)
  | law -> Alcotest.fail (Law.to_string law));
  (match Law_spec.parse_exn "uniform:2:8" with
  | Law.Uniform { lo; hi } -> Alcotest.(check bool) "bounds" true (Float.equal lo 2.0 && Float.equal hi 8.0)
  | law -> Alcotest.fail (Law.to_string law));
  (match Law_spec.parse_exn "gamma:2:10" with
  | Law.Gamma _ as law -> close ~tol:1e-9 "gamma mean" 10.0 (Law.mean law)
  | law -> Alcotest.fail (Law.to_string law));
  match Law_spec.parse_exn "deterministic:42" with
  | Law.Deterministic v -> close "deterministic" 42.0 v
  | law -> Alcotest.fail (Law.to_string law)

let test_law_spec_errors () =
  List.iter
    (fun spec ->
      match Law_spec.parse spec with
      | Error _ -> ()
      | Ok law -> Alcotest.fail (Printf.sprintf "%S accepted as %s" spec (Law.to_string law)))
    [ "bogus"; "exp"; "exp:zero"; "weibull:0.7"; "uniform:8:2"; "exp:-5" ]

let test_law_spec_round_trip () =
  List.iter
    (fun spec ->
      let law = Law_spec.parse_exn spec in
      let reparsed = Law_spec.parse_exn (Law_spec.to_spec law) in
      close (spec ^ ": mean preserved") (Law.mean law) (Law.mean reparsed);
      close (spec ^ ": variance preserved") (Law.variance law) (Law.variance reparsed))
    [ "exp:1000"; "weibull:0.7:500"; "lognormal:1.5:200"; "uniform:2:8"; "gamma:2:10";
      "deterministic:42" ]

let suite =
  [
    Alcotest.test_case "plot basics" `Quick test_plot_basic;
    Alcotest.test_case "plot log axes" `Quick test_plot_log_axes;
    Alcotest.test_case "plot multi-series" `Quick test_plot_multi_series;
    Alcotest.test_case "plot validation" `Quick test_plot_validation;
    Alcotest.test_case "law-spec parsing" `Quick test_law_spec_parse;
    Alcotest.test_case "law-spec errors" `Quick test_law_spec_errors;
    Alcotest.test_case "law-spec round trip" `Quick test_law_spec_round_trip;
  ]

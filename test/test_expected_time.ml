(* Tests for Proposition 1 (the exact expected-time formula) and its
   proof's intermediate quantities. *)

module Expected_time = Ckpt_core.Expected_time

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let params ?(work = 10.0) ?(checkpoint = 1.0) ?(downtime = 0.5) ?(recovery = 2.0)
    ?(lambda = 0.05) () =
  Expected_time.make ~downtime ~recovery ~work ~checkpoint ~lambda ()

let test_closed_form_value () =
  (* Direct transliteration of Equation 6. *)
  let p = params () in
  let reference =
    exp (0.05 *. 2.0) *. ((1.0 /. 0.05) +. 0.5) *. (exp (0.05 *. 11.0) -. 1.0)
  in
  close "Equation 6" reference (Expected_time.expected p)

let test_validation () =
  Alcotest.check_raises "lambda must be positive"
    (Invalid_argument "Expected_time.make: lambda must be positive") (fun () ->
      ignore (Expected_time.make ~work:1.0 ~checkpoint:0.0 ~lambda:0.0 ()));
  Alcotest.check_raises "negative work"
    (Invalid_argument "Expected_time.make: work must be non-negative") (fun () ->
      ignore (Expected_time.make ~work:(-1.0) ~checkpoint:0.0 ~lambda:1.0 ()))

let test_lambda_to_zero_limit () =
  (* As λ → 0 the expectation tends to the failure-free time W + C. *)
  let p = params ~lambda:1e-12 () in
  close ~tol:1e-6 "lambda -> 0 limit" 11.0 (Expected_time.expected p);
  close "failure-free time" 11.0 (Expected_time.failure_free_time p)

let test_small_lambda_accuracy () =
  (* The expm1 evaluation must not lose precision at HPC scales:
     lambda = 1e-9, W = 3600. The leading correction term is
     λ·(W+C)²/2 ≈ 6.5e-3 and must be resolved. *)
  let p = params ~work:3600.0 ~checkpoint:5.0 ~downtime:60.0 ~recovery:5.0 ~lambda:1e-9 () in
  let e = Expected_time.expected p in
  let excess = e -. 3605.0 in
  let leading = 1e-9 *. ((3605.0 *. 3605.0 /. 2.0) +. (3605.0 *. (60.0 +. 5.0))) in
  close ~tol:1e-4 "tiny-lambda excess matches first-order term" leading excess

let test_equation3_identity () =
  (* Equation 3 of the proof:
     E(T) = W + C + (e^(λ(W+C)) − 1)(E(T_lost) + E(T_rec)). *)
  List.iter
    (fun (w, c, d, r, l) ->
      let p = Expected_time.make ~downtime:d ~recovery:r ~work:w ~checkpoint:c ~lambda:l () in
      let lhs = Expected_time.expected p in
      let rhs =
        w +. c
        +. (Float.expm1 (l *. (w +. c))
            *. (Expected_time.expected_lost p +. Expected_time.expected_recovery p))
      in
      close ~tol:1e-12
        (Printf.sprintf "Equation 3 at W=%g C=%g D=%g R=%g lambda=%g" w c d r l)
        rhs lhs)
    [
      (10.0, 1.0, 0.5, 2.0, 0.05);
      (100.0, 10.0, 0.0, 0.0, 0.001);
      (1.0, 0.0, 3.0, 7.0, 0.9);
      (3600.0, 30.0, 60.0, 30.0, 1e-5);
    ]

let test_expected_lost_value () =
  (* Equation 4: E(T_lost) = 1/λ − (W+C)/(e^(λ(W+C)) − 1). *)
  let p = params () in
  let reference = (1.0 /. 0.05) -. (11.0 /. (exp (0.05 *. 11.0) -. 1.0)) in
  close "Equation 4" reference (Expected_time.expected_lost p);
  (* E(T_lost) is below the full window and below the mean 1/λ. *)
  Alcotest.(check bool) "lost below window" true
    (Expected_time.expected_lost p < 11.0);
  Alcotest.(check bool) "lost below mean" true (Expected_time.expected_lost p < 20.0)

let test_expected_recovery_value () =
  (* Equation 5: E(T_rec) = D·e^(λR) + (e^(λR) − 1)/λ. *)
  let p = params () in
  let reference = (0.5 *. exp 0.1) +. ((exp 0.1 -. 1.0) /. 0.05) in
  close "Equation 5" reference (Expected_time.expected_recovery p);
  (* With an instantaneous recovery, only the downtime remains. *)
  let p0 = params ~recovery:0.0 () in
  close "R=0 leaves only D" 0.5 (Expected_time.expected_recovery p0)

let test_expected_failures () =
  let p = params () in
  let g = exp (0.05 *. 11.0) -. 1.0 in
  close "failure count" (g *. exp 0.1) (Expected_time.expected_failures p);
  let p_safe = params ~lambda:1e-9 () in
  Alcotest.(check bool) "almost no failures at tiny lambda" true
    (Expected_time.expected_failures p_safe < 1e-6)

let test_success_probability () =
  let p = params () in
  close "success probability" (exp (-0.55)) (Expected_time.success_probability p)

let test_overhead_ratio () =
  let p = params () in
  close "overhead"
    ((Expected_time.expected p /. 10.0) -. 1.0)
    (Expected_time.overhead_ratio p)

let test_breakdown_sums_to_expectation () =
  List.iter
    (fun (w, c, d, r, l) ->
      let p = Expected_time.make ~downtime:d ~recovery:r ~work:w ~checkpoint:c ~lambda:l () in
      let b = Expected_time.breakdown p in
      close ~tol:1e-12
        (Printf.sprintf "breakdown sums at W=%g lambda=%g" w l)
        (Expected_time.expected p)
        (b.Expected_time.useful +. b.Expected_time.checkpoint +. b.Expected_time.lost
         +. b.Expected_time.restore);
      Alcotest.(check bool) "all components non-negative" true
        (b.Expected_time.lost >= 0.0 && b.Expected_time.restore >= 0.0))
    [
      (10.0, 1.0, 0.5, 2.0, 0.05); (100.0, 10.0, 0.0, 0.0, 0.001);
      (1.0, 0.0, 3.0, 7.0, 0.9); (3600.0, 30.0, 60.0, 30.0, 1e-5);
    ]

let test_breakdown_waste_grows_with_lambda () =
  let waste l =
    let p = params ~lambda:l () in
    let b = Expected_time.breakdown p in
    b.Expected_time.lost +. b.Expected_time.restore
  in
  Alcotest.(check bool) "waste increases with failure rate" true
    (waste 0.001 < waste 0.01 && waste 0.01 < waste 0.1)

let test_variance_limits () =
  (* lambda -> 0: the execution is deterministic, variance vanishes. *)
  let p = params ~lambda:1e-10 () in
  Alcotest.(check bool) "variance -> 0 with lambda" true
    (Expected_time.variance p < 1e-6);
  (* Failures present: strictly positive variance. *)
  Alcotest.(check bool) "variance positive" true (Expected_time.variance (params ()) > 0.0)

let test_second_moment_against_simulation () =
  (* The closed-form mean and variance must match the simulated moments. *)
  let work = 10.0 and checkpoint = 1.0 and downtime = 0.5 and recovery = 2.0 in
  let lambda = 0.08 in
  let p = Expected_time.make ~downtime ~recovery ~work ~checkpoint ~lambda () in
  let rng = Ckpt_prng.Rng.create ~seed:5150L in
  let acc = Ckpt_stats.Welford.create () in
  for run = 0 to 99_999 do
    let run_rng = Ckpt_prng.Rng.substream rng (string_of_int run) in
    let stream = Ckpt_failures.Failure_stream.poisson ~rate:lambda run_rng in
    let makespan =
      Ckpt_sim.Sim_run.run_segments ~downtime
        ~next_failure:(Ckpt_failures.Failure_stream.next_after stream)
        [ Ckpt_sim.Sim_run.segment ~work ~checkpoint ~recovery ]
    in
    Ckpt_stats.Welford.add acc makespan
  done;
  let sim_var = Ckpt_stats.Welford.variance acc in
  let exact_var = Expected_time.variance p in
  Alcotest.(check bool)
    (Printf.sprintf "simulated variance %.3f vs closed form %.3f" sim_var exact_var)
    true
    (Float.abs (sim_var -. exact_var) /. exact_var < 0.05);
  let sim_m2 = sim_var +. (Ckpt_stats.Welford.mean acc ** 2.0) in
  Alcotest.(check bool) "second moment agrees" true
    (Float.abs (sim_m2 -. Expected_time.second_moment p) /. sim_m2 < 0.05)

let float_pos lo hi = QCheck.float_range lo hi

let qcheck_second_moment_dominates_mean_square =
  QCheck.Test.make ~name:"E(T^2) >= E(T)^2 (variance non-negative)" ~count:300
    QCheck.(
      pair
        (quad (float_pos 0.1 50.0) (float_pos 0.0 5.0) (float_pos 0.0 5.0)
           (float_pos 0.0 5.0))
        (float_pos 1e-5 0.5))
    (fun ((w, c, d, r), l) ->
      let p = Expected_time.make ~downtime:d ~recovery:r ~work:w ~checkpoint:c ~lambda:l () in
      let mean = Expected_time.expected p in
      Expected_time.second_moment p >= (mean *. mean) *. (1.0 -. 1e-9))

let qcheck_monotone_in field =
  let name = Printf.sprintf "E(T) is increasing in %s" field in
  QCheck.Test.make ~name ~count:500
    QCheck.(
      pair
        (quad (float_pos 0.1 50.0) (float_pos 0.0 5.0) (float_pos 0.0 5.0)
           (float_pos 0.0 5.0))
        (pair (float_pos 1e-4 0.5) (float_pos 1e-6 2.0)))
    (fun ((w, c, d, r), (l, delta)) ->
      let base = Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d ~recovery:r ~lambda:l in
      let bumped =
        match field with
        | "work" ->
            Expected_time.expected_v ~work:(w +. delta) ~checkpoint:c ~downtime:d
              ~recovery:r ~lambda:l
        | "checkpoint" ->
            Expected_time.expected_v ~work:w ~checkpoint:(c +. delta) ~downtime:d
              ~recovery:r ~lambda:l
        | "downtime" ->
            Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:(d +. delta)
              ~recovery:r ~lambda:l
        | "recovery" ->
            Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d
              ~recovery:(r +. delta) ~lambda:l
        | "lambda" ->
            Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d ~recovery:r
              ~lambda:(l +. delta)
        | _ -> assert false
      in
      bumped >= base -. 1e-12)

let qcheck_dominates_failure_free =
  QCheck.Test.make ~name:"E(T) >= W + C" ~count:500
    QCheck.(
      pair
        (quad (float_pos 0.1 50.0) (float_pos 0.0 5.0) (float_pos 0.0 5.0)
           (float_pos 0.0 5.0))
        (float_pos 1e-6 1.0))
    (fun ((w, c, d, r), l) ->
      Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d ~recovery:r ~lambda:l
      >= w +. c -. 1e-9)

let suite =
  [
    Alcotest.test_case "closed-form value (Equation 6)" `Quick test_closed_form_value;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "lambda -> 0 limit" `Quick test_lambda_to_zero_limit;
    Alcotest.test_case "small-lambda numerical accuracy" `Quick test_small_lambda_accuracy;
    Alcotest.test_case "Equation 3 identity" `Quick test_equation3_identity;
    Alcotest.test_case "E(T_lost) (Equation 4)" `Quick test_expected_lost_value;
    Alcotest.test_case "E(T_rec) (Equation 5)" `Quick test_expected_recovery_value;
    Alcotest.test_case "expected failure count" `Quick test_expected_failures;
    Alcotest.test_case "success probability" `Quick test_success_probability;
    Alcotest.test_case "overhead ratio" `Quick test_overhead_ratio;
    Alcotest.test_case "breakdown sums to E(T)" `Quick test_breakdown_sums_to_expectation;
    Alcotest.test_case "breakdown waste grows with lambda" `Quick
      test_breakdown_waste_grows_with_lambda;
    Alcotest.test_case "variance limits" `Quick test_variance_limits;
    Alcotest.test_case "second moment vs simulation" `Slow
      test_second_moment_against_simulation;
    QCheck_alcotest.to_alcotest qcheck_second_moment_dominates_mean_square;
    QCheck_alcotest.to_alcotest (qcheck_monotone_in "work");
    QCheck_alcotest.to_alcotest (qcheck_monotone_in "checkpoint");
    QCheck_alcotest.to_alcotest (qcheck_monotone_in "downtime");
    QCheck_alcotest.to_alcotest (qcheck_monotone_in "recovery");
    QCheck_alcotest.to_alcotest (qcheck_monotone_in "lambda");
    QCheck_alcotest.to_alcotest qcheck_dominates_failure_free;
  ]

(* Tests for the Young/Daly/Bouguerra comparators and the divisible-load
   optimum. *)

module Expected_time = Ckpt_core.Expected_time
module Approximations = Ckpt_core.Approximations

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_young_period () =
  close "sqrt(2 C mu)" (sqrt (2.0 *. 5.0 *. 1000.0))
    (Approximations.young_period ~checkpoint:5.0 ~mtbf:1000.0)

let test_daly_period () =
  let c = 5.0 and mu = 1000.0 in
  let ratio = c /. (2.0 *. mu) in
  let reference =
    (sqrt (2.0 *. c *. mu) *. (1.0 +. (sqrt ratio /. 3.0) +. (ratio /. 9.0))) -. c
  in
  close "Daly higher-order period" reference
    (Approximations.daly_period ~checkpoint:c ~mtbf:mu);
  close "degenerate regime C >= 2 mu" 1.0
    (Approximations.daly_period ~checkpoint:5.0 ~mtbf:1.0);
  Alcotest.(check bool) "Daly slightly below Young for small C/mu" true
    (Approximations.daly_period ~checkpoint:c ~mtbf:mu
     < Approximations.young_period ~checkpoint:c ~mtbf:mu)

let params l =
  Expected_time.make ~downtime:0.5 ~recovery:2.0 ~work:10.0 ~checkpoint:1.0 ~lambda:l ()

let test_expansion_ordering () =
  (* Truncations of a positive-term series: first <= second <= exact. *)
  List.iter
    (fun l ->
      let p = params l in
      let e1 = Approximations.first_order p in
      let e2 = Approximations.second_order p in
      let exact = Expected_time.expected p in
      Alcotest.(check bool) (Printf.sprintf "ordering at lambda=%g" l) true
        (e1 <= e2 +. 1e-12 && e2 <= exact +. 1e-12))
    [ 1e-4; 1e-3; 1e-2; 0.05; 0.2 ]

let test_expansion_accuracy_improves () =
  let p = params 0.01 in
  let exact = Expected_time.expected p in
  let err1 = Float.abs (Approximations.first_order p -. exact) in
  let err2 = Float.abs (Approximations.second_order p -. exact) in
  Alcotest.(check bool) "second order strictly better" true (err2 < err1)

let test_first_order_is_the_taylor_limit () =
  (* (E_exact - E_1) = O(lambda^2): decreasing lambda by 10 divides the
     residual by ~100. *)
  let residual l =
    let p = params l in
    Float.abs (Expected_time.expected p -. Approximations.first_order p)
  in
  let r1 = residual 1e-3 and r2 = residual 1e-4 in
  Alcotest.(check bool)
    (Printf.sprintf "quadratic residual decay (%g vs %g)" r1 r2)
    true
    (r1 /. r2 > 50.0 && r1 /. r2 < 200.0)

let test_bouguerra_bias () =
  (* Exceeds the exact value by exactly (1/lambda + D)(e^(lambda R) − 1). *)
  let p = params 0.05 in
  let gap = Approximations.bouguerra p -. Expected_time.expected p in
  let reference = ((1.0 /. 0.05) +. 0.5) *. Float.expm1 (0.05 *. 2.0) in
  close "Bouguerra bias" reference gap;
  (* Coincides with the exact formula when R = 0. *)
  let p0 = Expected_time.make ~downtime:0.5 ~recovery:0.0 ~work:10.0 ~checkpoint:1.0
      ~lambda:0.05 ()
  in
  close "R = 0: Bouguerra exact" (Expected_time.expected p0) (Approximations.bouguerra p0)

let test_expected_divisible () =
  (* m chunks of W/m: matches a manual sum. *)
  let manual =
    3.0 *. Expected_time.expected_v ~work:10.0 ~checkpoint:1.0 ~downtime:0.0 ~recovery:1.0
      ~lambda:0.02
  in
  close "3 equal chunks" manual
    (Approximations.expected_divisible ~total_work:30.0 ~chunks:3 ~checkpoint:1.0
       ~downtime:0.0 ~recovery:1.0 ~lambda:0.02)

let test_optimal_divisible_is_argmin () =
  List.iter
    (fun (total_work, checkpoint, lambda) ->
      let opt =
        Approximations.optimal_divisible ~total_work ~checkpoint ~downtime:0.3
          ~recovery:checkpoint ~lambda
      in
      let eval m =
        Approximations.expected_divisible ~total_work ~chunks:m ~checkpoint ~downtime:0.3
          ~recovery:checkpoint ~lambda
      in
      for m = 1 to 4 * opt.Approximations.chunks do
        Alcotest.(check bool)
          (Printf.sprintf "m*=%d beats m=%d (W=%g C=%g l=%g)" opt.Approximations.chunks m
             total_work checkpoint lambda)
          true
          (opt.Approximations.expected_total <= eval m +. 1e-9)
      done)
    [ (100.0, 1.0, 0.05); (1000.0, 5.0, 0.002); (50.0, 0.2, 0.3); (10.0, 2.0, 0.01) ]

let test_optimal_divisible_scaling () =
  (* More failures => more checkpoints; costlier checkpoints => fewer. *)
  let chunks ~lambda ~checkpoint =
    (Approximations.optimal_divisible ~total_work:1000.0 ~checkpoint ~downtime:0.0
       ~recovery:checkpoint ~lambda)
      .Approximations.chunks
  in
  Alcotest.(check bool) "chunks grow with lambda" true
    (chunks ~lambda:0.05 ~checkpoint:1.0 > chunks ~lambda:0.005 ~checkpoint:1.0);
  Alcotest.(check bool) "chunks shrink with checkpoint cost" true
    (chunks ~lambda:0.01 ~checkpoint:10.0 < chunks ~lambda:0.01 ~checkpoint:0.1)

let qcheck_bouguerra_pessimistic =
  QCheck.Test.make ~name:"Bouguerra formula over-estimates the exact expectation"
    ~count:500
    QCheck.(
      pair
        (quad (float_range 0.1 50.0) (float_range 0.0 5.0) (float_range 0.0 5.0)
           (float_range 0.0001 5.0))
        (float_range 1e-5 1.0))
    (fun ((w, c, d, r), l) ->
      let p = Expected_time.make ~downtime:d ~recovery:r ~work:w ~checkpoint:c ~lambda:l () in
      (* Relative tolerance: both sides can reach e^38, where doubles
         carry absolute errors far above the analytic gap. *)
      Approximations.bouguerra p >= Expected_time.expected p *. (1.0 -. 1e-12))

let suite =
  [
    Alcotest.test_case "Young period" `Quick test_young_period;
    Alcotest.test_case "Daly period" `Quick test_daly_period;
    Alcotest.test_case "expansion ordering" `Quick test_expansion_ordering;
    Alcotest.test_case "second order beats first" `Quick test_expansion_accuracy_improves;
    Alcotest.test_case "first order residual is quadratic" `Quick
      test_first_order_is_the_taylor_limit;
    Alcotest.test_case "Bouguerra bias" `Quick test_bouguerra_bias;
    Alcotest.test_case "expected_divisible" `Quick test_expected_divisible;
    Alcotest.test_case "optimal divisible is the argmin" `Quick
      test_optimal_divisible_is_argmin;
    Alcotest.test_case "optimal divisible scaling laws" `Quick test_optimal_divisible_scaling;
    QCheck_alcotest.to_alcotest qcheck_bouguerra_pessimistic;
  ]

(* Tests for the chain and DAG spec-file parsers. *)

module Task = Ckpt_dag.Task
module Dag = Ckpt_dag.Dag
module Dag_spec = Ckpt_dag.Dag_spec
module Chain_problem = Ckpt_core.Chain_problem
module Chain_spec = Ckpt_core.Chain_spec

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let sample_chain_spec =
  {|# demo
lambda 0.01
downtime 0.5
initial_recovery 0.25
task 10 1.0 1.5 stage-a
task 20 2.0 2.5 stage-b
task 5 0.5 0.75
|}

let test_chain_parse () =
  let problem = Chain_spec.parse_string sample_chain_spec in
  Alcotest.(check int) "3 tasks" 3 (Chain_problem.size problem);
  close "lambda" 0.01 problem.Chain_problem.lambda;
  close "downtime" 0.5 problem.Chain_problem.downtime;
  close "initial recovery" 0.25 problem.Chain_problem.initial_recovery;
  let tasks = problem.Chain_problem.tasks in
  Alcotest.(check string) "named task" "stage-a" tasks.(0).Task.name;
  Alcotest.(check string) "default name" "T3" tasks.(2).Task.name;
  close "work" 20.0 tasks.(1).Task.work;
  close "checkpoint cost" 2.0 tasks.(1).Task.checkpoint_cost;
  close "recovery cost" 2.5 tasks.(1).Task.recovery_cost

let test_chain_round_trip () =
  let problem = Chain_spec.parse_string sample_chain_spec in
  let reparsed = Chain_spec.parse_string (Chain_spec.to_string problem) in
  Alcotest.(check int) "same size" (Chain_problem.size problem) (Chain_problem.size reparsed);
  close "same lambda" problem.Chain_problem.lambda reparsed.Chain_problem.lambda;
  Array.iteri
    (fun i (task : Task.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "task %d preserved" i)
        true
        (Task.equal task reparsed.Chain_problem.tasks.(i)))
    problem.Chain_problem.tasks

let test_chain_file_io () =
  let problem = Chain_spec.parse_string sample_chain_spec in
  let path = Filename.temp_file "chain_spec" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chain_spec.save problem path;
      let loaded = Chain_spec.parse_file path in
      close "round trip through file" (Chain_problem.total_work problem)
        (Chain_problem.total_work loaded))

let expect_parse_error f =
  match f () with
  | exception Chain_spec.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_chain_errors () =
  expect_parse_error (fun () -> ignore (Chain_spec.parse_string "task 1 2"));
  expect_parse_error (fun () -> ignore (Chain_spec.parse_string "task x 1 1"));
  expect_parse_error (fun () -> ignore (Chain_spec.parse_string "lambda 0.1\n# no tasks"));
  expect_parse_error (fun () -> ignore (Chain_spec.parse_string "task 1 0.1 0.1"));
  (* missing lambda *)
  expect_parse_error (fun () -> ignore (Chain_spec.parse_string "bogus line"))

let test_chain_lambda_override () =
  let spec = "task 5 0.5 0.5" in
  let problem =
    let path = Filename.temp_file "chain_spec" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc spec;
        close_out oc;
        Chain_spec.parse_file_with_lambda ~lambda:0.33 path)
  in
  close "override supplies lambda" 0.33 problem.Chain_problem.lambda

let sample_dag_spec =
  {|task prepare 5 0.5 0.6
task branch-a 12 1.0 1.2
task branch-b 9 0.8 1.0
task merge 4 0.4 0.5
edge prepare branch-a
edge prepare branch-b
edge branch-a merge
edge branch-b merge
|}

let test_dag_parse () =
  let dag = Dag_spec.parse_string sample_dag_spec in
  Alcotest.(check int) "4 tasks" 4 (Dag.size dag);
  Alcotest.(check int) "4 edges" 4 (List.length (Dag.edges dag));
  Alcotest.(check (list int)) "single source" [ 0 ] (Dag.sources dag);
  Alcotest.(check (list int)) "single sink" [ 3 ] (Dag.sinks dag);
  Alcotest.(check string) "names kept" "branch-b" (Dag.task dag 2).Task.name

let test_dag_round_trip () =
  let dag = Dag_spec.parse_string sample_dag_spec in
  let reparsed = Dag_spec.parse_string (Dag_spec.to_string dag) in
  Alcotest.(check int) "size" (Dag.size dag) (Dag.size reparsed);
  Alcotest.(check (list (pair int int))) "edges" (Dag.edges dag) (Dag.edges reparsed)

let test_dag_errors () =
  let expect f =
    match f () with
    | exception Dag_spec.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect (fun () -> ignore (Dag_spec.parse_string "task a 1 0 0\ntask a 1 0 0"));
  expect (fun () -> ignore (Dag_spec.parse_string "task a 1 0 0\nedge a b"));
  expect (fun () -> ignore (Dag_spec.parse_string ""));
  expect (fun () ->
      ignore
        (Dag_spec.parse_string "task a 1 0 0\ntask b 1 0 0\nedge a b\nedge b a"))

let test_shipped_specs_parse () =
  (* The spec files shipped with the examples must stay valid. *)
  let repo_root =
    (* Tests run from _build/default/test; the sources are linked in. *)
    "../examples/specs"
  in
  if Sys.file_exists (Filename.concat repo_root "seismic.chain") then begin
    let chain = Chain_spec.parse_file (Filename.concat repo_root "seismic.chain") in
    Alcotest.(check int) "seismic chain size" 8 (Chain_problem.size chain);
    let dag = Dag_spec.parse_file (Filename.concat repo_root "diamond.dag") in
    Alcotest.(check int) "diamond size" 4 (Dag.size dag)
  end

let suite =
  [
    Alcotest.test_case "chain spec parse" `Quick test_chain_parse;
    Alcotest.test_case "chain spec round trip" `Quick test_chain_round_trip;
    Alcotest.test_case "chain spec file io" `Quick test_chain_file_io;
    Alcotest.test_case "chain spec errors" `Quick test_chain_errors;
    Alcotest.test_case "chain lambda override" `Quick test_chain_lambda_override;
    Alcotest.test_case "dag spec parse" `Quick test_dag_parse;
    Alcotest.test_case "dag spec round trip" `Quick test_dag_round_trip;
    Alcotest.test_case "dag spec errors" `Quick test_dag_errors;
    Alcotest.test_case "shipped specs parse" `Quick test_shipped_specs_parse;
  ]

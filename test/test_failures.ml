(* Tests for the failure substrate: heap, platform, streams, traces,
   cluster logs. *)

module Min_heap = Ckpt_failures.Min_heap
module Platform = Ckpt_failures.Platform
module Failure_stream = Ckpt_failures.Failure_stream
module Trace = Ckpt_failures.Trace
module Cluster_log = Ckpt_failures.Cluster_log
module Law = Ckpt_dist.Law
module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

let test_heap_basics () =
  let h = Min_heap.create () in
  Alcotest.(check bool) "empty" true (Min_heap.is_empty h);
  Min_heap.push h 3.0 "c";
  Min_heap.push h 1.0 "a";
  Min_heap.push h 2.0 "b";
  Alcotest.(check int) "size" 3 (Min_heap.size h);
  (match Min_heap.peek h with
  | Some (t, v) -> Alcotest.(check bool) "peek smallest" true (Float.equal t 1.0 && v = "a")
  | None -> Alcotest.fail "peek failed");
  (match Min_heap.pop h with
  | Some (1.0, "a") -> ()
  | _ -> Alcotest.fail "pop order");
  Min_heap.clear h;
  Alcotest.(check bool) "cleared" true (Min_heap.is_empty h)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops in non-decreasing order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) (float_range 0.0 1000.0))
    (fun times ->
      let h = Min_heap.create () in
      List.iteri (fun i t -> Min_heap.push h t i) times;
      let rec drain acc =
        match Min_heap.pop h with None -> List.rev acc | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let test_platform () =
  let p = Platform.exponential ~downtime:1.0 ~processors:8 ~proc_rate:0.01 () in
  Alcotest.(check bool) "platform rate = p*lambda" true
    (Float.abs (Platform.platform_rate p -. 0.08) < 1e-12);
  Alcotest.(check bool) "platform MTBF" true
    (Float.abs (Platform.platform_mtbf p -. (100.0 /. 8.0)) < 1e-9);
  let weib = Platform.make ~processors:4 ~proc_law:(Law.weibull ~shape:0.7 ~scale:10.0) () in
  Alcotest.check_raises "rate undefined for weibull"
    (Invalid_argument "Platform.platform_rate: only defined for Exponential laws")
    (fun () -> ignore (Platform.platform_rate weib));
  Alcotest.check_raises "processors must be positive"
    (Invalid_argument "Platform.make: processors must be positive") (fun () ->
      ignore (Platform.make ~processors:0 ~proc_law:(Law.exponential ~rate:1.0) ()))

let test_poisson_stream_interarrival () =
  let rng = Rng.create ~seed:101L in
  let stream = Failure_stream.poisson ~rate:0.5 rng in
  let acc = Welford.create () in
  let prev = ref 0.0 in
  for _ = 1 to 100_000 do
    let t = Failure_stream.next_after stream !prev in
    Welford.add acc (t -. !prev);
    prev := t
  done;
  Alcotest.(check bool) "mean interarrival close to 1/rate" true
    (Float.abs (Welford.mean acc -. 2.0) < 0.05)

let test_stream_query_stability () =
  (* Querying with an earlier-but-still-nondecreasing time returns the
     same pending failure. *)
  let rng = Rng.create ~seed:103L in
  let stream = Failure_stream.poisson ~rate:1.0 rng in
  let f1 = Failure_stream.next_after stream 0.0 in
  let f2 = Failure_stream.next_after stream (f1 /. 2.0) in
  Alcotest.(check bool) "pending failure unchanged" true (f1 = f2);
  (* Consuming past it yields a strictly later failure. *)
  let f3 = Failure_stream.next_after stream f1 in
  Alcotest.(check bool) "next failure later" true (f3 > f1)

let test_stream_monotone_guard () =
  let rng = Rng.create ~seed:105L in
  let stream = Failure_stream.poisson ~rate:1.0 rng in
  ignore (Failure_stream.next_after stream 5.0);
  Alcotest.check_raises "decreasing query rejected"
    (Invalid_argument "Failure_stream.next_after: query times must be non-decreasing")
    (fun () -> ignore (Failure_stream.next_after stream 4.0))

let test_renewal_exponential_matches_poisson_rate () =
  (* Superposition of p exponential renewal processes is Poisson(p*rate):
     compare failure counts over a horizon. *)
  let horizon = 10_000.0 in
  let count_failures stream =
    let rec loop n t =
      let f = Failure_stream.next_after stream t in
      if f > horizon then n else loop (n + 1) f
    in
    loop 0 0.0
  in
  let rng = Rng.create ~seed:107L in
  let renewal =
    Failure_stream.renewal ~law:(Law.exponential ~rate:0.01) ~processors:10
      (Rng.substream rng "renewal")
  in
  let n_renewal = count_failures renewal in
  let expected = 0.01 *. 10.0 *. horizon in
  Alcotest.(check bool)
    (Printf.sprintf "renewal count %d close to %g" n_renewal expected)
    true
    (Float.abs (float_of_int n_renewal -. expected) < 4.0 *. sqrt expected)

let test_renewal_skip_consumes () =
  let law = Law.deterministic 10.0 in
  let rng = Rng.create ~seed:109L in
  let stream = Failure_stream.renewal ~law ~processors:1 rng in
  Alcotest.(check bool) "first failure at 10" true
    (Float.equal (Failure_stream.next_after stream 0.0) 10.0);
  (* Skip past 25: failures at 10 and 20 are consumed, next is 30. *)
  Alcotest.(check bool) "skipping renews clocks" true
    (Float.equal (Failure_stream.next_after stream 25.0) 30.0)

let test_replay () =
  let stream = Failure_stream.of_times [| 1.0; 2.5; 7.0 |] in
  Alcotest.(check bool) "first" true (Float.equal (Failure_stream.next_after stream 0.0) 1.0);
  Alcotest.(check bool) "skip to 3" true (Float.equal (Failure_stream.next_after stream 3.0) 7.0);
  Alcotest.(check bool) "exhausted" true (Float.equal (Failure_stream.next_after stream 8.0) infinity);
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Failure_stream.of_times: times must be sorted") (fun () ->
      ignore (Failure_stream.of_times [| 2.0; 1.0 |]))

let test_trace_generate_and_stats () =
  let rng = Rng.create ~seed:111L in
  let platform = Platform.exponential ~processors:4 ~proc_rate:0.005 () in
  let trace = Trace.generate ~platform ~horizon:50_000.0 rng in
  let expected_count = 0.02 *. 50_000.0 in
  Alcotest.(check bool) "count plausible" true
    (Float.abs (float_of_int (Trace.count trace) -. expected_count)
     < 5.0 *. sqrt expected_count);
  Alcotest.(check bool) "mtbf plausible" true
    (Float.abs (Trace.mtbf trace -. 50.0) < 5.0);
  let gaps = Trace.inter_arrival trace in
  Alcotest.(check int) "gap count" (Trace.count trace) (Array.length gaps);
  Array.iter (fun g -> Alcotest.(check bool) "gaps positive" true (g > 0.0)) gaps

let test_trace_save_load () =
  let rng = Rng.create ~seed:113L in
  let platform = Platform.exponential ~processors:2 ~proc_rate:0.01 () in
  let trace = Trace.generate ~platform ~horizon:1000.0 rng in
  let path = Filename.temp_file "ckpt_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let loaded = Trace.load path in
      Alcotest.(check int) "count preserved" (Trace.count trace) (Trace.count loaded);
      Alcotest.(check bool) "times preserved" true
        (trace.Trace.times = loaded.Trace.times);
      Alcotest.(check bool) "horizon preserved" true
        (trace.Trace.horizon = loaded.Trace.horizon))

let test_trace_of_times_validation () =
  Alcotest.check_raises "out of horizon"
    (Invalid_argument "Trace.of_times: time out of [0, horizon]") (fun () ->
      ignore (Trace.of_times ~horizon:10.0 [| 11.0 |]))

let test_cluster_log () =
  let rng = Rng.create ~seed:115L in
  let law = Law.weibull_of_mean ~shape:0.7 ~mean:500.0 in
  let log = Cluster_log.generate ~heterogeneity:0.3 ~law ~nodes:20 ~horizon:20_000.0 rng in
  Alcotest.(check int) "node count" 20 (Cluster_log.node_count log);
  let merged = Cluster_log.merged_times log in
  Alcotest.(check int) "merged count = total failures" (Cluster_log.failure_count log)
    (Array.length merged);
  Array.iteri
    (fun i t -> if i > 0 then Alcotest.(check bool) "merged sorted" true (t >= merged.(i - 1)))
    merged;
  let trace = Cluster_log.to_trace log in
  Alcotest.(check int) "trace count" (Array.length merged) (Trace.count trace);
  let mtbfs = Cluster_log.node_mtbf log in
  Alcotest.(check int) "one mtbf per node" 20 (Array.length mtbfs)

let test_cluster_log_save_load () =
  let rng = Rng.create ~seed:117L in
  let law = Law.exponential ~rate:0.002 in
  let log = Cluster_log.generate ~law ~nodes:5 ~horizon:10_000.0 rng in
  let path = Filename.temp_file "ckpt_log" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cluster_log.save log path;
      let loaded = Cluster_log.load path in
      Alcotest.(check int) "nodes preserved" (Cluster_log.node_count log)
        (Cluster_log.node_count loaded);
      Alcotest.(check int) "failures preserved" (Cluster_log.failure_count log)
        (Cluster_log.failure_count loaded);
      Alcotest.(check bool) "merged times equal" true
        (Cluster_log.merged_times log = Cluster_log.merged_times loaded))

let test_rejuvenation_modes_exponential_equivalent () =
  (* For Exponential laws, Failed_only and All_processors rejuvenation
     give the same failure-count distribution. *)
  let horizon = 5_000.0 in
  let count rejuvenation seed =
    let rng = Rng.create ~seed in
    let stream =
      Failure_stream.renewal ~rejuvenation ~law:(Law.exponential ~rate:0.01) ~processors:5
        rng
    in
    let rec loop n t =
      let f = Failure_stream.next_after stream t in
      if f > horizon then n else loop (n + 1) f
    in
    loop 0 0.0
  in
  let acc_f = Welford.create () and acc_a = Welford.create () in
  for s = 1 to 60 do
    Welford.add acc_f (float_of_int (count Failure_stream.Failed_only (Int64.of_int s)));
    Welford.add acc_a
      (float_of_int (count Failure_stream.All_processors (Int64.of_int (s + 1000))))
  done;
  let rel =
    Float.abs (Welford.mean acc_f -. Welford.mean acc_a) /. Welford.mean acc_f
  in
  Alcotest.(check bool) "failure counts statistically equal" true (rel < 0.05)

let test_cascading_closed_form () =
  let module Cascading = Ckpt_failures.Cascading in
  (* Analytic: (e^(lambda D) - 1)/lambda. *)
  let lambda = 0.02 and downtime = 10.0 in
  let analytic = Cascading.expected_effective ~lambda ~downtime in
  Alcotest.(check bool) "formula value" true
    (Float.abs (analytic -. (Float.expm1 0.2 /. 0.02)) < 1e-9);
  Alcotest.(check bool) "exceeds the constant-D model" true
    (Cascading.expected_excess ~lambda ~downtime > 0.0);
  (* lambda D -> 0: constant-D model accurate (the paper's remark). *)
  let tiny = Cascading.expected_excess ~lambda:1e-7 ~downtime:10.0 in
  Alcotest.(check bool) "tiny excess for small lambda D" true (tiny < 1e-4);
  (* Simulation agrees. *)
  let rng = Rng.create ~seed:4321L in
  let acc = Cascading.simulate ~lambda:0.05 ~downtime:10.0 ~runs:50_000 rng in
  let analytic = Cascading.expected_effective ~lambda:0.05 ~downtime:10.0 in
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f in CI [%.4f, %.4f]" analytic lo hi)
    true
    (lo <= analytic && analytic <= hi)

let test_cascading_failure_count () =
  let module Cascading = Ckpt_failures.Cascading in
  Alcotest.(check bool) "expected extra failures = e^(lD) - 1" true
    (Float.abs (Cascading.expected_cascade_failures ~lambda:0.1 ~downtime:5.0
                -. Float.expm1 0.5)
     < 1e-12)

module Injector = Ckpt_failures.Injector

let test_heap_rejects_nan () =
  let h = Min_heap.create () in
  Alcotest.check_raises "NaN key rejected" (Invalid_argument "Min_heap.push: NaN key")
    (fun () -> Min_heap.push h Float.nan "x");
  Alcotest.(check bool) "heap untouched after rejection" true (Min_heap.is_empty h)

(* Model-based property test: the heap against a sorted association
   list, under arbitrary push/pop/clear interleavings (pop keys must
   come out in the model's order; sizes must track exactly). *)
let qcheck_heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list model (push/pop/clear)" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 120) (pair (int_bound 9) (float_range 0.0 1000.0)))
    (fun ops ->
      let h = Min_heap.create () in
      let model = ref [] in
      let fresh = ref 0 in
      List.for_all
        (fun (kind, key) ->
          if kind <= 5 then begin
            incr fresh;
            Min_heap.push h key !fresh;
            model :=
              List.merge
                (fun (a, _) (b, _) -> Float.compare a b)
                [ (key, !fresh) ] !model;
            Min_heap.size h = List.length !model
          end
          else if kind <= 8 then
            match (Min_heap.pop h, !model) with
            | None, [] -> true
            | Some (k, _), (mk, _) :: rest ->
                model := rest;
                Float.equal k mk
            | Some _, [] | None, _ :: _ -> false
          else begin
            Min_heap.clear h;
            model := [];
            Min_heap.is_empty h && Min_heap.pop h = None
          end)
        ops)

let test_of_times_tie_coalescing () =
  (* Three processors down at exactly t=5, two more at t=9: each burst
     is delivered as one platform failure (see the simultaneity
     semantics in Failure_stream's interface). *)
  let s = Failure_stream.of_times [| 5.0; 5.0; 5.0; 9.0; 9.0 |] in
  Alcotest.(check (float 0.0)) "burst delivered once" 5.0 (Failure_stream.next_after s 0.0);
  Alcotest.(check (float 0.0)) "co-timed duplicates consumed" 9.0
    (Failure_stream.next_after s 5.0);
  Alcotest.(check (float 0.0)) "exhausted" infinity (Failure_stream.next_after s 9.0)

let test_renewal_tie_coalescing () =
  (* A deterministic law puts every processor clock at the same instants:
     the renewal source must coalesce each co-timed burst too. *)
  let rng = Rng.create ~seed:11L in
  let s = Failure_stream.renewal ~law:(Law.deterministic 5.0) ~processors:4 rng in
  Alcotest.(check (float 0.0)) "first burst" 5.0 (Failure_stream.next_after s 0.0);
  Alcotest.(check (float 0.0)) "all clocks renewed at the tie" 10.0
    (Failure_stream.next_after s 5.0);
  Alcotest.(check (float 0.0)) "and again" 15.0 (Failure_stream.next_after s 10.0)

let test_poisson_tie_strictly_later () =
  (* Querying at exactly a delivered failure time always yields a
     strictly later failure — the contract that makes zero-downtime
     engine loops terminate. *)
  let rng = Rng.create ~seed:17L in
  let s = Failure_stream.poisson ~rate:2.0 rng in
  let t = ref 0.0 in
  for _ = 1 to 1000 do
    let f = Failure_stream.next_after s !t in
    if not (f > !t) then Alcotest.failf "failure %g not strictly after query %g" f !t;
    t := f
  done

let test_injector_masked_subsequence () =
  (* Delivered failures are a strictly increasing subsequence of the
     base trace, and repeated queries are stable. *)
  let base_times = Array.init 50 (fun i -> float_of_int (i + 1)) in
  let rng = Rng.create ~seed:23L in
  let inj =
    Injector.masked ~survive_prob:0.5 rng
      (Injector.of_stream (Failure_stream.of_times base_times))
  in
  let rec drain t acc =
    let f = Injector.next inj t in
    let f' = Injector.next inj t in
    if not (Float.equal f f') then Alcotest.failf "query at %g not stable" t;
    if Float.equal f infinity then List.rev acc
    else begin
      if not (f > t) then Alcotest.failf "masked failure %g not after %g" f t;
      drain f (f :: acc)
    end
  in
  let delivered = drain 0.0 [] in
  Alcotest.(check bool) "some failures delivered" true (List.length delivered > 0);
  Alcotest.(check bool) "some failures masked" true
    (List.length delivered < Array.length base_times);
  List.iter
    (fun f ->
      if not (Array.exists (fun b -> Float.equal b f) base_times) then
        Alcotest.failf "delivered %g is not a base failure" f)
    delivered;
  (* survive_prob = 0 masks nothing: the injector is the base stream. *)
  let plain =
    Injector.masked ~survive_prob:0.0 (Rng.create ~seed:1L)
      (Injector.of_stream (Failure_stream.of_times [| 2.0; 4.0 |]))
  in
  Alcotest.(check (float 0.0)) "nothing masked" 2.0 (Injector.next plain 0.0);
  Alcotest.(check (float 0.0)) "nothing masked (2)" 4.0 (Injector.next plain 2.0);
  Alcotest.check_raises "survive_prob = 1 rejected"
    (Invalid_argument "Injector.masked: survive_prob must be in [0, 1)") (fun () ->
      ignore (Injector.masked ~survive_prob:1.0 (Rng.create ~seed:1L) Injector.never))

let test_injector_aftershocks () =
  (* probability 0: no cascades, identical to the base trace. *)
  let rng = Rng.create ~seed:29L in
  let inj =
    Injector.aftershocks ~probability:0.0 ~rate:1.0 ~window:10.0 rng
      (Injector.of_stream (Failure_stream.of_times [| 3.0; 8.0 |]))
  in
  Alcotest.(check (float 0.0)) "base passthrough" 3.0 (Injector.next inj 0.0);
  Alcotest.(check (float 0.0)) "base passthrough (2)" 8.0 (Injector.next inj 3.0);
  Alcotest.(check (float 0.0)) "no aftershocks" infinity (Injector.next inj 8.0);
  (* High probability: the cascade stays finite (sub-critical) and every
     delivered failure is strictly later than its query. *)
  let rng = Rng.create ~seed:31L in
  let inj =
    Injector.aftershocks ~probability:0.8 ~rate:2.0 ~window:25.0 rng
      (Injector.of_stream (Failure_stream.of_times [| 10.0 |]))
  in
  let rec drain t n =
    if n > 10_000 then Alcotest.fail "aftershock cascade did not terminate";
    let f = Injector.next inj t in
    if Float.equal f infinity then n
    else begin
      if not (f > t) then Alcotest.failf "aftershock %g not after %g" f t;
      drain f (n + 1)
    end
  in
  let count = drain 0.0 0 in
  Alcotest.(check bool) "base failure delivered" true (count >= 1)

let test_injector_phase_modulated () =
  let cell = ref Injector.Work in
  let rng = Rng.create ~seed:37L in
  let inj =
    Injector.exp_phase_modulated ~base_rate:1.0
      ~multiplier:(function
        | Injector.Work -> 1.0
        | Injector.Checkpoint -> 0.0
        | Injector.Recovery -> 4.0
        | Injector.Downtime -> 0.0)
      ~phase:(fun () -> !cell)
      rng
  in
  let f1 = Injector.next inj 0.0 in
  Alcotest.(check bool) "work-phase failure finite and later" true
    (Float.is_finite f1 && f1 > 0.0);
  Alcotest.(check (float 0.0)) "same-phase query stable" f1 (Injector.next inj 0.0);
  cell := Injector.Checkpoint;
  Alcotest.(check (float 0.0)) "zero multiplier = failure-free phase" infinity
    (Injector.next inj 0.0);
  cell := Injector.Work;
  let f2 = Injector.next inj 0.5 in
  Alcotest.(check bool) "redrawn after phase change" true (Float.is_finite f2 && f2 > 0.5)

let test_injector_nonhomogeneous () =
  (* Same seed, same query sequence: bit-identical arrivals. *)
  let arrivals seed =
    let rng = Rng.create ~seed in
    let inj =
      Injector.nonhomogeneous ~rate:(fun t -> Float.min 0.5 (0.05 *. t)) ~rate_max:0.5 rng
    in
    let rec go t n acc =
      if n = 0 then List.rev acc
      else
        let f = Injector.next inj t in
        if not (f > t) then Alcotest.failf "NHPP arrival %g not after %g" f t;
        go f (n - 1) (f :: acc)
    in
    go 0.0 20 []
  in
  Alcotest.(check bool) "reproducible" true (arrivals 41L = arrivals 41L);
  Alcotest.(check bool) "seed-sensitive" true (arrivals 41L <> arrivals 43L);
  (* A vanishing rate cannot spin the thinning loop: the horizon caps it. *)
  let inj =
    Injector.nonhomogeneous ~horizon:100.0
      ~rate:(fun _ -> 0.0)
      ~rate_max:1.0 (Rng.create ~seed:47L)
  in
  Alcotest.(check (float 0.0)) "horizon terminates zero-rate thinning" infinity
    (Injector.next inj 0.0);
  (* A rate exceeding the envelope is a hard error, not silent bias. *)
  let inj =
    Injector.nonhomogeneous ~rate:(fun _ -> 2.0) ~rate_max:1.0 (Rng.create ~seed:53L)
  in
  Alcotest.check_raises "rate above envelope rejected"
    (Invalid_argument "Injector.nonhomogeneous: rate must stay within [0, rate_max]")
    (fun () -> ignore (Injector.next inj 0.0))

let suite =
  [
    Alcotest.test_case "min-heap basics" `Quick test_heap_basics;
    Alcotest.test_case "min-heap rejects NaN" `Quick test_heap_rejects_nan;
    QCheck_alcotest.to_alcotest qcheck_heap_model;
    Alcotest.test_case "of_times tie coalescing" `Quick test_of_times_tie_coalescing;
    Alcotest.test_case "renewal tie coalescing" `Quick test_renewal_tie_coalescing;
    Alcotest.test_case "poisson strictly later at ties" `Quick
      test_poisson_tie_strictly_later;
    Alcotest.test_case "injector: masked" `Quick test_injector_masked_subsequence;
    Alcotest.test_case "injector: aftershocks" `Quick test_injector_aftershocks;
    Alcotest.test_case "injector: phase-modulated" `Quick test_injector_phase_modulated;
    Alcotest.test_case "injector: non-homogeneous" `Quick test_injector_nonhomogeneous;
    Alcotest.test_case "cascading downtime closed form" `Slow test_cascading_closed_form;
    Alcotest.test_case "cascading failure count" `Quick test_cascading_failure_count;
    QCheck_alcotest.to_alcotest qcheck_heap_sorted;
    Alcotest.test_case "platform model" `Quick test_platform;
    Alcotest.test_case "poisson inter-arrivals" `Slow test_poisson_stream_interarrival;
    Alcotest.test_case "stream query stability" `Quick test_stream_query_stability;
    Alcotest.test_case "stream monotone guard" `Quick test_stream_monotone_guard;
    Alcotest.test_case "renewal superposition rate" `Slow
      test_renewal_exponential_matches_poisson_rate;
    Alcotest.test_case "renewal skip consumes clocks" `Quick test_renewal_skip_consumes;
    Alcotest.test_case "trace replay" `Quick test_replay;
    Alcotest.test_case "trace generation stats" `Slow test_trace_generate_and_stats;
    Alcotest.test_case "trace save/load" `Quick test_trace_save_load;
    Alcotest.test_case "trace validation" `Quick test_trace_of_times_validation;
    Alcotest.test_case "cluster log" `Quick test_cluster_log;
    Alcotest.test_case "cluster log save/load" `Quick test_cluster_log_save_load;
    Alcotest.test_case "rejuvenation modes equal for exponential" `Slow
      test_rejuvenation_modes_exponential_equivalent;
  ]

(* Tests for the failure substrate: heap, platform, streams, traces,
   cluster logs. *)

module Min_heap = Ckpt_failures.Min_heap
module Platform = Ckpt_failures.Platform
module Failure_stream = Ckpt_failures.Failure_stream
module Trace = Ckpt_failures.Trace
module Cluster_log = Ckpt_failures.Cluster_log
module Law = Ckpt_dist.Law
module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

let test_heap_basics () =
  let h = Min_heap.create () in
  Alcotest.(check bool) "empty" true (Min_heap.is_empty h);
  Min_heap.push h 3.0 "c";
  Min_heap.push h 1.0 "a";
  Min_heap.push h 2.0 "b";
  Alcotest.(check int) "size" 3 (Min_heap.size h);
  (match Min_heap.peek h with
  | Some (t, v) -> Alcotest.(check bool) "peek smallest" true (Float.equal t 1.0 && v = "a")
  | None -> Alcotest.fail "peek failed");
  (match Min_heap.pop h with
  | Some (1.0, "a") -> ()
  | _ -> Alcotest.fail "pop order");
  Min_heap.clear h;
  Alcotest.(check bool) "cleared" true (Min_heap.is_empty h)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops in non-decreasing order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) (float_range 0.0 1000.0))
    (fun times ->
      let h = Min_heap.create () in
      List.iteri (fun i t -> Min_heap.push h t i) times;
      let rec drain acc =
        match Min_heap.pop h with None -> List.rev acc | Some (t, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let test_platform () =
  let p = Platform.exponential ~downtime:1.0 ~processors:8 ~proc_rate:0.01 () in
  Alcotest.(check bool) "platform rate = p*lambda" true
    (Float.abs (Platform.platform_rate p -. 0.08) < 1e-12);
  Alcotest.(check bool) "platform MTBF" true
    (Float.abs (Platform.platform_mtbf p -. (100.0 /. 8.0)) < 1e-9);
  let weib = Platform.make ~processors:4 ~proc_law:(Law.weibull ~shape:0.7 ~scale:10.0) () in
  Alcotest.check_raises "rate undefined for weibull"
    (Invalid_argument "Platform.platform_rate: only defined for Exponential laws")
    (fun () -> ignore (Platform.platform_rate weib));
  Alcotest.check_raises "processors must be positive"
    (Invalid_argument "Platform.make: processors must be positive") (fun () ->
      ignore (Platform.make ~processors:0 ~proc_law:(Law.exponential ~rate:1.0) ()))

let test_poisson_stream_interarrival () =
  let rng = Rng.create ~seed:101L in
  let stream = Failure_stream.poisson ~rate:0.5 rng in
  let acc = Welford.create () in
  let prev = ref 0.0 in
  for _ = 1 to 100_000 do
    let t = Failure_stream.next_after stream !prev in
    Welford.add acc (t -. !prev);
    prev := t
  done;
  Alcotest.(check bool) "mean interarrival close to 1/rate" true
    (Float.abs (Welford.mean acc -. 2.0) < 0.05)

let test_stream_query_stability () =
  (* Querying with an earlier-but-still-nondecreasing time returns the
     same pending failure. *)
  let rng = Rng.create ~seed:103L in
  let stream = Failure_stream.poisson ~rate:1.0 rng in
  let f1 = Failure_stream.next_after stream 0.0 in
  let f2 = Failure_stream.next_after stream (f1 /. 2.0) in
  Alcotest.(check bool) "pending failure unchanged" true (f1 = f2);
  (* Consuming past it yields a strictly later failure. *)
  let f3 = Failure_stream.next_after stream f1 in
  Alcotest.(check bool) "next failure later" true (f3 > f1)

let test_stream_monotone_guard () =
  let rng = Rng.create ~seed:105L in
  let stream = Failure_stream.poisson ~rate:1.0 rng in
  ignore (Failure_stream.next_after stream 5.0);
  Alcotest.check_raises "decreasing query rejected"
    (Invalid_argument "Failure_stream.next_after: query times must be non-decreasing")
    (fun () -> ignore (Failure_stream.next_after stream 4.0))

let test_renewal_exponential_matches_poisson_rate () =
  (* Superposition of p exponential renewal processes is Poisson(p*rate):
     compare failure counts over a horizon. *)
  let horizon = 10_000.0 in
  let count_failures stream =
    let rec loop n t =
      let f = Failure_stream.next_after stream t in
      if f > horizon then n else loop (n + 1) f
    in
    loop 0 0.0
  in
  let rng = Rng.create ~seed:107L in
  let renewal =
    Failure_stream.renewal ~law:(Law.exponential ~rate:0.01) ~processors:10
      (Rng.substream rng "renewal")
  in
  let n_renewal = count_failures renewal in
  let expected = 0.01 *. 10.0 *. horizon in
  Alcotest.(check bool)
    (Printf.sprintf "renewal count %d close to %g" n_renewal expected)
    true
    (Float.abs (float_of_int n_renewal -. expected) < 4.0 *. sqrt expected)

let test_renewal_skip_consumes () =
  let law = Law.deterministic 10.0 in
  let rng = Rng.create ~seed:109L in
  let stream = Failure_stream.renewal ~law ~processors:1 rng in
  Alcotest.(check bool) "first failure at 10" true
    (Float.equal (Failure_stream.next_after stream 0.0) 10.0);
  (* Skip past 25: failures at 10 and 20 are consumed, next is 30. *)
  Alcotest.(check bool) "skipping renews clocks" true
    (Float.equal (Failure_stream.next_after stream 25.0) 30.0)

let test_replay () =
  let stream = Failure_stream.of_times [| 1.0; 2.5; 7.0 |] in
  Alcotest.(check bool) "first" true (Float.equal (Failure_stream.next_after stream 0.0) 1.0);
  Alcotest.(check bool) "skip to 3" true (Float.equal (Failure_stream.next_after stream 3.0) 7.0);
  Alcotest.(check bool) "exhausted" true (Float.equal (Failure_stream.next_after stream 8.0) infinity);
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Failure_stream.of_times: times must be sorted") (fun () ->
      ignore (Failure_stream.of_times [| 2.0; 1.0 |]))

let test_trace_generate_and_stats () =
  let rng = Rng.create ~seed:111L in
  let platform = Platform.exponential ~processors:4 ~proc_rate:0.005 () in
  let trace = Trace.generate ~platform ~horizon:50_000.0 rng in
  let expected_count = 0.02 *. 50_000.0 in
  Alcotest.(check bool) "count plausible" true
    (Float.abs (float_of_int (Trace.count trace) -. expected_count)
     < 5.0 *. sqrt expected_count);
  Alcotest.(check bool) "mtbf plausible" true
    (Float.abs (Trace.mtbf trace -. 50.0) < 5.0);
  let gaps = Trace.inter_arrival trace in
  Alcotest.(check int) "gap count" (Trace.count trace) (Array.length gaps);
  Array.iter (fun g -> Alcotest.(check bool) "gaps positive" true (g > 0.0)) gaps

let test_trace_save_load () =
  let rng = Rng.create ~seed:113L in
  let platform = Platform.exponential ~processors:2 ~proc_rate:0.01 () in
  let trace = Trace.generate ~platform ~horizon:1000.0 rng in
  let path = Filename.temp_file "ckpt_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let loaded = Trace.load path in
      Alcotest.(check int) "count preserved" (Trace.count trace) (Trace.count loaded);
      Alcotest.(check bool) "times preserved" true
        (trace.Trace.times = loaded.Trace.times);
      Alcotest.(check bool) "horizon preserved" true
        (trace.Trace.horizon = loaded.Trace.horizon))

let test_trace_of_times_validation () =
  Alcotest.check_raises "out of horizon"
    (Invalid_argument "Trace.of_times: time out of [0, horizon]") (fun () ->
      ignore (Trace.of_times ~horizon:10.0 [| 11.0 |]))

let test_cluster_log () =
  let rng = Rng.create ~seed:115L in
  let law = Law.weibull_of_mean ~shape:0.7 ~mean:500.0 in
  let log = Cluster_log.generate ~heterogeneity:0.3 ~law ~nodes:20 ~horizon:20_000.0 rng in
  Alcotest.(check int) "node count" 20 (Cluster_log.node_count log);
  let merged = Cluster_log.merged_times log in
  Alcotest.(check int) "merged count = total failures" (Cluster_log.failure_count log)
    (Array.length merged);
  Array.iteri
    (fun i t -> if i > 0 then Alcotest.(check bool) "merged sorted" true (t >= merged.(i - 1)))
    merged;
  let trace = Cluster_log.to_trace log in
  Alcotest.(check int) "trace count" (Array.length merged) (Trace.count trace);
  let mtbfs = Cluster_log.node_mtbf log in
  Alcotest.(check int) "one mtbf per node" 20 (Array.length mtbfs)

let test_cluster_log_save_load () =
  let rng = Rng.create ~seed:117L in
  let law = Law.exponential ~rate:0.002 in
  let log = Cluster_log.generate ~law ~nodes:5 ~horizon:10_000.0 rng in
  let path = Filename.temp_file "ckpt_log" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cluster_log.save log path;
      let loaded = Cluster_log.load path in
      Alcotest.(check int) "nodes preserved" (Cluster_log.node_count log)
        (Cluster_log.node_count loaded);
      Alcotest.(check int) "failures preserved" (Cluster_log.failure_count log)
        (Cluster_log.failure_count loaded);
      Alcotest.(check bool) "merged times equal" true
        (Cluster_log.merged_times log = Cluster_log.merged_times loaded))

let test_rejuvenation_modes_exponential_equivalent () =
  (* For Exponential laws, Failed_only and All_processors rejuvenation
     give the same failure-count distribution. *)
  let horizon = 5_000.0 in
  let count rejuvenation seed =
    let rng = Rng.create ~seed in
    let stream =
      Failure_stream.renewal ~rejuvenation ~law:(Law.exponential ~rate:0.01) ~processors:5
        rng
    in
    let rec loop n t =
      let f = Failure_stream.next_after stream t in
      if f > horizon then n else loop (n + 1) f
    in
    loop 0 0.0
  in
  let acc_f = Welford.create () and acc_a = Welford.create () in
  for s = 1 to 60 do
    Welford.add acc_f (float_of_int (count Failure_stream.Failed_only (Int64.of_int s)));
    Welford.add acc_a
      (float_of_int (count Failure_stream.All_processors (Int64.of_int (s + 1000))))
  done;
  let rel =
    Float.abs (Welford.mean acc_f -. Welford.mean acc_a) /. Welford.mean acc_f
  in
  Alcotest.(check bool) "failure counts statistically equal" true (rel < 0.05)

let test_cascading_closed_form () =
  let module Cascading = Ckpt_failures.Cascading in
  (* Analytic: (e^(lambda D) - 1)/lambda. *)
  let lambda = 0.02 and downtime = 10.0 in
  let analytic = Cascading.expected_effective ~lambda ~downtime in
  Alcotest.(check bool) "formula value" true
    (Float.abs (analytic -. (Float.expm1 0.2 /. 0.02)) < 1e-9);
  Alcotest.(check bool) "exceeds the constant-D model" true
    (Cascading.expected_excess ~lambda ~downtime > 0.0);
  (* lambda D -> 0: constant-D model accurate (the paper's remark). *)
  let tiny = Cascading.expected_excess ~lambda:1e-7 ~downtime:10.0 in
  Alcotest.(check bool) "tiny excess for small lambda D" true (tiny < 1e-4);
  (* Simulation agrees. *)
  let rng = Rng.create ~seed:4321L in
  let acc = Cascading.simulate ~lambda:0.05 ~downtime:10.0 ~runs:50_000 rng in
  let analytic = Cascading.expected_effective ~lambda:0.05 ~downtime:10.0 in
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f in CI [%.4f, %.4f]" analytic lo hi)
    true
    (lo <= analytic && analytic <= hi)

let test_cascading_failure_count () =
  let module Cascading = Ckpt_failures.Cascading in
  Alcotest.(check bool) "expected extra failures = e^(lD) - 1" true
    (Float.abs (Cascading.expected_cascade_failures ~lambda:0.1 ~downtime:5.0
                -. Float.expm1 0.5)
     < 1e-12)

let suite =
  [
    Alcotest.test_case "min-heap basics" `Quick test_heap_basics;
    Alcotest.test_case "cascading downtime closed form" `Slow test_cascading_closed_form;
    Alcotest.test_case "cascading failure count" `Quick test_cascading_failure_count;
    QCheck_alcotest.to_alcotest qcheck_heap_sorted;
    Alcotest.test_case "platform model" `Quick test_platform;
    Alcotest.test_case "poisson inter-arrivals" `Slow test_poisson_stream_interarrival;
    Alcotest.test_case "stream query stability" `Quick test_stream_query_stability;
    Alcotest.test_case "stream monotone guard" `Quick test_stream_monotone_guard;
    Alcotest.test_case "renewal superposition rate" `Slow
      test_renewal_exponential_matches_poisson_rate;
    Alcotest.test_case "renewal skip consumes clocks" `Quick test_renewal_skip_consumes;
    Alcotest.test_case "trace replay" `Quick test_replay;
    Alcotest.test_case "trace generation stats" `Slow test_trace_generate_and_stats;
    Alcotest.test_case "trace save/load" `Quick test_trace_save_load;
    Alcotest.test_case "trace validation" `Quick test_trace_of_times_validation;
    Alcotest.test_case "cluster log" `Quick test_cluster_log;
    Alcotest.test_case "cluster log save/load" `Quick test_cluster_log_save_load;
    Alcotest.test_case "rejuvenation modes equal for exponential" `Slow
      test_rejuvenation_modes_exponential_equivalent;
  ]

(* The serving layer: framing, protocol grammar, the canonicalizing
   plan cache (λ·W scale invariance), bounded-queue backpressure, and
   the server lifecycle over a real loopback socket — including the
   drain guarantee: a stop under load answers every accepted request. *)

module Json = Ckpt_json.Json
module Task = Ckpt_dag.Task
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Protocol = Ckpt_serve.Protocol
module Framing = Ckpt_serve.Protocol.Framing
module Plan_cache = Ckpt_serve.Plan_cache
module Bounded_queue = Ckpt_serve.Bounded_queue
module Engine = Ckpt_serve.Engine
module Server = Ckpt_serve.Server
module Client = Ckpt_serve.Client
module Net = Ckpt_serve.Net

let rel_close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

(* --- framing --------------------------------------------------------- *)

let test_framing_roundtrip () =
  let decoder = Framing.decoder () in
  let payloads = [ "alpha"; ""; String.make 5000 'x'; "{\"k\":1}" ] in
  let wire = String.concat "" (List.map Framing.encode payloads) in
  (* Feed byte by byte: frames must reassemble across arbitrary chunking. *)
  let got = ref [] in
  String.iter
    (fun c ->
      Framing.feed decoder (String.make 1 c);
      let rec pump () =
        match Framing.next decoder with
        | Some (Framing.Frame p) ->
            got := p :: !got;
            pump ()
        | Some (Framing.Oversized _) -> Alcotest.fail "unexpected oversized"
        | None -> ()
      in
      pump ())
    wire;
  Alcotest.(check (list string)) "all frames recovered" payloads (List.rev !got);
  Alcotest.(check int) "buffer drained" 0 (Framing.buffered decoder)

let test_framing_oversized () =
  let decoder = Framing.decoder ~max_frame:64 () in
  Framing.feed decoder (Framing.encode (String.make 65 'y'));
  (match Framing.next decoder with
  | Some (Framing.Oversized 65) -> ()
  | _ -> Alcotest.fail "expected Oversized 65");
  (* The stream is desynchronized for good: even a valid follow-up frame
     must not resurrect it. *)
  Framing.feed decoder (Framing.encode "ok");
  match Framing.next decoder with
  | Some (Framing.Oversized 65) -> ()
  | _ -> Alcotest.fail "decoder must stay dead after an oversized frame"

(* --- protocol grammar ------------------------------------------------ *)

let test_request_roundtrip () =
  let request =
    {
      Protocol.id = "r-1";
      method_ = "plan_chain";
      timeout_ms = Some 250;
      params = Json.Obj [ ("lambda", Json.Number 0.1) ];
    }
  in
  match Protocol.parse_request (Protocol.request_to_json request) with
  | Ok parsed ->
      Alcotest.(check string) "id" request.Protocol.id parsed.Protocol.id;
      Alcotest.(check string) "method" request.Protocol.method_ parsed.Protocol.method_;
      Alcotest.(check (option int)) "timeout" request.Protocol.timeout_ms
        parsed.Protocol.timeout_ms
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e.Protocol.message)

let test_request_validation () =
  let rejects label json =
    match Protocol.parse_request json with
    | Error e ->
        Alcotest.(check string) (label ^ " code") "bad_request" e.Protocol.code
    | Ok _ -> Alcotest.fail (label ^ ": expected a parse failure")
  in
  rejects "non-object" (Json.String "hi");
  rejects "missing id" (Json.Obj [ ("method", Json.String "ping") ]);
  rejects "empty id"
    (Json.Obj [ ("id", Json.String ""); ("method", Json.String "ping") ]);
  rejects "missing method" (Json.Obj [ ("id", Json.String "x") ]);
  rejects "bad timeout"
    (Json.Obj
       [
         ("id", Json.String "x");
         ("method", Json.String "ping");
         ("timeout_ms", Json.Number (-3.0));
       ])

let test_queue_full_payload () =
  (* The documented backpressure shape: stable code plus the retry hint. *)
  let response =
    Protocol.error_response ~id:(Some "r-9")
      (Protocol.queue_full ~retry_after_ms:25)
  in
  (match Json.member "ok" response with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "ok must be false");
  let error = Option.get (Json.member "error" response) in
  (match Json.member "code" error with
  | Some (Json.String "queue_full") -> ()
  | _ -> Alcotest.fail "code must be queue_full");
  match Option.bind (Json.member "retry_after_ms" error) Json.to_int with
  | Some 25 -> ()
  | _ -> Alcotest.fail "retry_after_ms must carry the configured backoff"

(* --- plan cache: λ·W scale invariance -------------------------------- *)

let random_chain seed n =
  let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int seed) in
  List.init n (fun i ->
      Task.make ~id:i
        ~work:(Ckpt_prng.Rng.float_range rng 0.5 8.0)
        ~checkpoint_cost:(Ckpt_prng.Rng.float_range rng 0.0 1.5)
        ~recovery_cost:(Ckpt_prng.Rng.float_range rng 0.0 2.0)
        ())

let scale_problem s (problem : Chain_problem.t) =
  let tasks =
    Array.to_list problem.Chain_problem.tasks
    |> List.map (fun (t : Task.t) ->
           Task.make ~id:t.Task.id ~work:(s *. t.Task.work)
             ~checkpoint_cost:(s *. t.Task.checkpoint_cost)
             ~recovery_cost:(s *. t.Task.recovery_cost) ())
  in
  Chain_problem.make
    ~downtime:(s *. problem.Chain_problem.downtime)
    ~initial_recovery:(s *. problem.Chain_problem.initial_recovery)
    ~lambda:(problem.Chain_problem.lambda /. s)
    tasks

let instance_gen = QCheck.(triple (int_range 2 12) (int_range 0 100_000) (int_range (-6) 6))

let qcheck_rescaled_key_identical =
  (* Power-of-two rescalings are exact in IEEE arithmetic, so the
     canonical %.17g key must match byte for byte — the cache treats the
     two instances as the same problem. *)
  QCheck.Test.make ~name:"2^k-rescaled problems hash identically" ~count:200
    instance_gen
    (fun (n, seed, k) ->
      let problem =
        Chain_problem.make ~downtime:0.3 ~initial_recovery:0.5 ~lambda:0.05
          (random_chain seed n)
      in
      let scaled = scale_problem (Float.ldexp 1.0 k) problem in
      String.equal (Plan_cache.canonical_key problem) (Plan_cache.canonical_key scaled))

let qcheck_rescaled_hit_equivalent =
  (* Solving the base instance and then asking for a rescaling must hit,
     keep the placement, and rescale the makespan. *)
  QCheck.Test.make ~name:"cache hit on a rescaled problem returns the rescaled plan"
    ~count:100 instance_gen
    (fun (n, seed, k) ->
      let s = Float.ldexp 1.0 k in
      let problem =
        Chain_problem.make ~downtime:0.3 ~initial_recovery:0.5 ~lambda:0.05
          (random_chain seed n)
      in
      let scaled = scale_problem s problem in
      let cache = Plan_cache.create ~capacity:8 in
      let solution = Chain_dp.solve problem in
      Plan_cache.store cache problem solution;
      match Plan_cache.find cache scaled with
      | None -> false
      | Some hit ->
          hit.Plan_cache.checkpoints_after
          = Schedule.checkpoint_indices solution.Chain_dp.schedule
          && rel_close hit.Plan_cache.expected_makespan
               (s *. solution.Chain_dp.expected_makespan)
          && (* bit-for-bit on the exact same instance *)
          (k <> 0 || Float.equal hit.Plan_cache.expected_makespan
                       solution.Chain_dp.expected_makespan))

let test_cache_lru_eviction () =
  let problem_of seed = Chain_problem.make ~lambda:0.05 (random_chain seed 6) in
  let a = problem_of 1 and b = problem_of 2 and c = problem_of 3 in
  let cache = Plan_cache.create ~capacity:2 in
  Plan_cache.store cache a (Chain_dp.solve a);
  Plan_cache.store cache b (Chain_dp.solve b);
  (* Touch [a] so [b] is the least recently used entry. *)
  Alcotest.(check bool) "a hits" true (Plan_cache.find cache a <> None);
  Plan_cache.store cache c (Chain_dp.solve c);
  Alcotest.(check int) "capacity respected" 2 (Plan_cache.length cache);
  Alcotest.(check bool) "b evicted" true (Plan_cache.find cache b = None);
  Alcotest.(check bool) "a survives" true (Plan_cache.find cache a <> None);
  Alcotest.(check bool) "c present" true (Plan_cache.find cache c <> None)

(* --- bounded queue --------------------------------------------------- *)

let test_queue_backpressure () =
  let q = Bounded_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bounded_queue.try_push q 1 = Bounded_queue.Pushed);
  Alcotest.(check bool) "push 2" true (Bounded_queue.try_push q 2 = Bounded_queue.Pushed);
  Alcotest.(check bool) "push 3 rejected" true
    (Bounded_queue.try_push q 3 = Bounded_queue.Full);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Bounded_queue.pop q);
  Alcotest.(check bool) "slot freed" true
    (Bounded_queue.try_push q 4 = Bounded_queue.Pushed)

let test_queue_drain_on_close () =
  let q = Bounded_queue.create ~capacity:8 in
  List.iter (fun i -> ignore (Bounded_queue.try_push q i)) [ 1; 2; 3 ];
  Bounded_queue.close q;
  Alcotest.(check bool) "push after close" true
    (Bounded_queue.try_push q 9 = Bounded_queue.Closed);
  (* Items accepted before the close are still delivered, in order. *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "drain 3" (Some 3) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "then closed" None (Bounded_queue.pop q)

let test_queue_blocking_pop () =
  let q = Bounded_queue.create ~capacity:4 in
  let consumer = Domain.spawn (fun () -> Bounded_queue.pop q) in
  ignore (Bounded_queue.try_push q 42);
  Alcotest.(check (option int)) "blocked pop wakes" (Some 42) (Domain.join consumer);
  let waiter = Domain.spawn (fun () -> Bounded_queue.pop q) in
  Bounded_queue.close q;
  Alcotest.(check (option int)) "close wakes waiter" None (Domain.join waiter)

(* --- engine ---------------------------------------------------------- *)

let chain_params (problem : Chain_problem.t) =
  Json.Obj
    [
      ("lambda", Json.Number problem.Chain_problem.lambda);
      ("downtime", Json.Number problem.Chain_problem.downtime);
      ("initial_recovery", Json.Number problem.Chain_problem.initial_recovery);
      ( "tasks",
        Json.List
          (Array.to_list problem.Chain_problem.tasks
          |> List.map (fun (t : Task.t) ->
                 Json.Obj
                   [
                     ("work", Json.Number t.Task.work);
                     ("checkpoint", Json.Number t.Task.checkpoint_cost);
                     ("recovery", Json.Number t.Task.recovery_cost);
                   ])) );
    ]

let request ?timeout_ms ?(params = Json.Null) id method_ =
  { Protocol.id; method_; timeout_ms; params }

let result_of response =
  (match Json.member "ok" response with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail ("request failed: " ^ Json.to_string response));
  Option.get (Json.member "result" response)

let error_code response =
  match
    Option.bind (Json.member "error" response) (fun e -> Json.member "code" e)
  with
  | Some (Json.String code) -> code
  | _ -> Alcotest.fail ("no error code in " ^ Json.to_string response)

let check_chain_result problem result =
  let oracle = Chain_dp.solve problem in
  (match Option.bind (Json.member "expected_makespan" result) Json.to_float with
  | Some served ->
      Alcotest.(check bool)
        "makespan bit-identical to Chain_dp.solve" true
        (Float.equal served oracle.Chain_dp.expected_makespan)
  | None -> Alcotest.fail "expected_makespan missing");
  let served =
    match Option.bind (Json.member "checkpoints_after" result) Json.to_list with
    | Some l -> List.filter_map Json.to_int l
    | None -> Alcotest.fail "checkpoints_after missing"
  in
  Alcotest.(check (list int))
    "placement identical"
    (Schedule.checkpoint_indices oracle.Chain_dp.schedule)
    served

let test_engine_plan_chain () =
  let engine = Engine.create ~cache_capacity:16 in
  let problem =
    Chain_problem.make ~downtime:0.2 ~initial_recovery:0.4 ~lambda:0.04
      (random_chain 11 9)
  in
  let params = chain_params problem in
  let first = Engine.handle engine (request ~params "c1" "plan_chain") in
  check_chain_result problem (result_of first);
  (match Json.member "cache" first with
  | Some (Json.String "miss") -> ()
  | _ -> Alcotest.fail "first call must be a cache miss");
  let second = Engine.handle engine (request ~params "c2" "plan_chain") in
  check_chain_result problem (result_of second);
  match Json.member "cache" second with
  | Some (Json.String "hit") -> ()
  | _ -> Alcotest.fail "second call must be a cache hit"

let test_engine_errors () =
  let engine = Engine.create ~cache_capacity:4 in
  Alcotest.(check string) "unknown method" "unknown_method"
    (error_code (Engine.handle engine (request "e1" "no_such_method")));
  Alcotest.(check string) "missing params" "bad_request"
    (error_code (Engine.handle engine (request "e2" "plan_chain")));
  let bad_tasks =
    Json.Obj [ ("lambda", Json.Number 0.1); ("tasks", Json.List []) ]
  in
  Alcotest.(check string) "empty chain" "bad_request"
    (error_code (Engine.handle engine (request ~params:bad_tasks "e3" "plan_chain")))

let test_engine_other_methods () =
  let engine = Engine.create ~cache_capacity:4 in
  (match
     Json.member "result" (Engine.handle engine (request "p1" "ping"))
   with
  | Some (Json.String "pong") -> ()
  | _ -> Alcotest.fail "ping must pong");
  let params =
    Json.Obj
      [
        ("lambda", Json.Number 0.05);
        ( "tasks",
          Json.List
            (List.map
               (fun w ->
                 Json.Obj
                   [ ("work", Json.Number w); ("checkpoint", Json.Number 0.5) ])
               [ 3.0; 1.0; 2.0; 5.0 ]) );
      ]
  in
  let result =
    result_of (Engine.handle engine (request ~params "i1" "plan_independent"))
  in
  (match Option.bind (Json.member "expected_makespan" result) Json.to_float with
  | Some _ -> ()
  | None -> Alcotest.fail "independent: no makespan");
  let moldable_params =
    Json.Obj
      [
        ("proc_rate", Json.Number 1e-6);
        ("max_processors", Json.Number 64.0);
        ("downtime", Json.Number 5.0);
        ( "tasks",
          Json.List
            (List.map
               (fun w ->
                 Json.Obj
                   [
                     ("total_work", Json.Number w);
                     ( "checkpoint",
                       Json.Obj
                         [
                           ("model", Json.String "proportional");
                           ("alpha_v", Json.Number 50.0);
                         ] );
                   ])
               [ 2000.0; 3000.0; 2500.0 ]) );
      ]
  in
  let result =
    result_of (Engine.handle engine (request ~params:moldable_params "m1" "plan_moldable"))
  in
  match Option.bind (Json.member "segments" result) Json.to_list with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "moldable: no segments"

(* --- server over a real socket --------------------------------------- *)

(* Raw pipelined client: lets the tests send several frames before
   reading any response (Client.rpc couples send and receive). *)
type raw = { fd : Net.fd; decoder : Framing.decoder }

let raw_connect port =
  { fd = Net.connect ~host:"127.0.0.1" ~port; decoder = Framing.decoder () }

let raw_send raw json =
  Alcotest.(check bool) "send" true (Net.write_all raw.fd (Framing.encode (Json.to_string json)))

let raw_send_request raw request = raw_send raw (Protocol.request_to_json request)

let raw_recv raw =
  let rec go () =
    match Framing.next raw.decoder with
    | Some (Framing.Frame payload) -> Json.parse payload
    | Some (Framing.Oversized _) -> Alcotest.fail "oversized server response"
    | None -> (
        match Net.read_chunk raw.fd with
        | None -> Alcotest.fail "server closed the connection unexpectedly"
        | Some chunk ->
            Framing.feed raw.decoder chunk;
            go ())
  in
  go ()

let response_id response =
  match Json.member "id" response with
  | Some (Json.String id) -> id
  | _ -> Alcotest.fail ("response without id: " ^ Json.to_string response)

let with_server config f =
  let server = Server.start config in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let test_server_end_to_end () =
  with_server Server.default_config (fun server ->
      let client = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close client) (fun () ->
          let problems =
            List.map (fun seed -> Chain_problem.make ~downtime:0.1 ~lambda:0.03
                                    (random_chain (100 + seed) (4 + seed)))
              [ 1; 2; 3; 4 ]
          in
          List.iteri
            (fun i problem ->
              let response =
                Client.call client ~id:(Printf.sprintf "cold-%d" i)
                  ~params:(chain_params problem) "plan_chain"
              in
              check_chain_result problem (result_of response))
            problems;
          (* Same mix again: served from the cache, still bit-for-bit. *)
          List.iteri
            (fun i problem ->
              let response =
                Client.call client ~id:(Printf.sprintf "warm-%d" i)
                  ~params:(chain_params problem) "plan_chain"
              in
              (match Json.member "cache" response with
              | Some (Json.String "hit") -> ()
              | _ -> Alcotest.fail "repeat must hit the cache");
              check_chain_result problem (result_of response))
            problems;
          Alcotest.(check string) "unknown method over the wire" "unknown_method"
            (error_code (Client.call client ~id:"um" "nope"))))

let test_server_protocol_errors () =
  with_server Server.default_config (fun server ->
      let raw = raw_connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Net.close raw.fd) (fun () ->
          (* Malformed JSON costs one error response, not the connection. *)
          Alcotest.(check bool) "send garbage" true
            (Net.write_all raw.fd (Framing.encode "{not json"));
          Alcotest.(check string) "parse_error" "parse_error" (error_code (raw_recv raw));
          (* The connection still works afterwards. *)
          raw_send_request raw (request "after" "ping");
          Alcotest.(check string) "still alive" "after" (response_id (raw_recv raw));
          (* An oversized frame is answered, then the stream dies. *)
          let huge = Bytes.make 4 '\xff' in
          Alcotest.(check bool) "send oversized header" true
            (Net.write_all raw.fd (Bytes.to_string huge));
          Alcotest.(check string) "oversized_frame" "oversized_frame"
            (error_code (raw_recv raw))))

(* Deterministic worker gate: the hook parks every worker until the test
   opens the gate, so queue occupancy is fully controlled. *)
let make_gate () =
  let open_flag = Atomic.make false in
  let entered = Atomic.make 0 in
  let hook () =
    Atomic.incr entered;
    while not (Atomic.get open_flag) do
      Domain.cpu_relax ()
    done
  in
  (hook, open_flag, entered)

let spin_until ?(tries = 10_000_000) label predicate =
  let rec go n =
    if predicate () then ()
    else if n = 0 then Alcotest.fail ("timed out waiting for " ^ label)
    else begin
      Domain.cpu_relax ();
      go (n - 1)
    end
  in
  go tries

let small_problem = lazy (Chain_problem.make ~lambda:0.05 (random_chain 55 6))

let test_server_backpressure () =
  let hook, gate, entered = make_gate () in
  let config =
    {
      Server.default_config with
      workers = 1;
      queue_capacity = 2;
      retry_after_ms = 17;
      worker_hook = Some hook;
    }
  in
  with_server config (fun server ->
      let params = chain_params (Lazy.force small_problem) in
      let raw = raw_connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Net.close raw.fd) (fun () ->
          raw_send_request raw (request ~params "r1" "plan_chain");
          (* The single worker now holds r1 at the gate; r2/r3 fill the
             queue; r4 must be rejected immediately — never dropped. *)
          spin_until "worker to pick up r1" (fun () -> Atomic.get entered >= 1);
          raw_send_request raw (request ~params "r2" "plan_chain");
          raw_send_request raw (request ~params "r3" "plan_chain");
          spin_until "queue to fill" (fun () -> Server.pending server = 3);
          raw_send_request raw (request ~params "r4" "plan_chain");
          let rejection = raw_recv raw in
          Alcotest.(check string) "r4 rejected" "r4" (response_id rejection);
          Alcotest.(check string) "queue_full" "queue_full" (error_code rejection);
          (match
             Option.bind (Json.member "error" rejection) (fun e ->
                 Option.bind (Json.member "retry_after_ms" e) Json.to_int)
           with
          | Some 17 -> ()
          | _ -> Alcotest.fail "retry_after_ms must carry the configured value");
          (* Open the gate: the accepted requests all complete, in order. *)
          Atomic.set gate true;
          List.iter
            (fun expected ->
              let response = raw_recv raw in
              Alcotest.(check string) "drained in order" expected (response_id response);
              ignore (result_of response))
            [ "r1"; "r2"; "r3" ];
          spin_until "pending to settle" (fun () -> Server.pending server = 0)))

let test_server_stop_drains_under_load () =
  let hook, gate, entered = make_gate () in
  let config =
    {
      Server.default_config with
      workers = 1;
      queue_capacity = 8;
      worker_hook = Some hook;
    }
  in
  let server = Server.start config in
  let raw = raw_connect (Server.port server) in
  Fun.protect ~finally:(fun () -> Net.close raw.fd) (fun () ->
      let params = chain_params (Lazy.force small_problem) in
      let ids = [ "s1"; "s2"; "s3"; "s4" ] in
      List.iter (fun id -> raw_send_request raw (request ~params id "plan_chain")) ids;
      spin_until "worker to engage" (fun () -> Atomic.get entered >= 1);
      spin_until "all four accepted" (fun () -> Server.pending server = 4);
      (* Stop while one request is in flight and three are queued. *)
      let stopper = Domain.spawn (fun () -> Server.stop server) in
      Atomic.set gate true;
      Domain.join stopper;
      Alcotest.(check int) "nothing left pending" 0 (Server.pending server);
      (* Every accepted request was answered before its socket closed. *)
      List.iter
        (fun expected ->
          let response = raw_recv raw in
          Alcotest.(check string) "drained response" expected (response_id response);
          ignore (result_of response))
        ids)

let test_server_deadline () =
  let hook, gate, entered = make_gate () in
  let config =
    { Server.default_config with workers = 1; worker_hook = Some hook }
  in
  with_server config (fun server ->
      let params = chain_params (Lazy.force small_problem) in
      let raw = raw_connect (Server.port server) in
      Fun.protect ~finally:(fun () -> Net.close raw.fd) (fun () ->
          raw_send_request raw (request ~params "d1" "plan_chain");
          spin_until "worker to engage" (fun () -> Atomic.get entered >= 1);
          (* d2 is queued behind the gated d1 with a 1 ms deadline that
             expires while it waits. *)
          raw_send_request raw (request ~params ~timeout_ms:1 "d2" "plan_chain");
          spin_until "d2 queued" (fun () -> Server.pending server = 2);
          Unix.sleepf 0.02;
          Atomic.set gate true;
          let first = raw_recv raw in
          Alcotest.(check string) "d1 answered" "d1" (response_id first);
          let second = raw_recv raw in
          Alcotest.(check string) "d2 answered" "d2" (response_id second);
          Alcotest.(check string) "d2 deadline_exceeded" "deadline_exceeded"
            (error_code second)))

let suite =
  [
    Alcotest.test_case "framing: chunked round-trip" `Quick test_framing_roundtrip;
    Alcotest.test_case "framing: oversized desync" `Quick test_framing_oversized;
    Alcotest.test_case "protocol: request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol: request validation" `Quick test_request_validation;
    Alcotest.test_case "protocol: queue_full payload" `Quick test_queue_full_payload;
    QCheck_alcotest.to_alcotest qcheck_rescaled_key_identical;
    QCheck_alcotest.to_alcotest qcheck_rescaled_hit_equivalent;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "queue: backpressure" `Quick test_queue_backpressure;
    Alcotest.test_case "queue: drain on close" `Quick test_queue_drain_on_close;
    Alcotest.test_case "queue: blocking pop" `Quick test_queue_blocking_pop;
    Alcotest.test_case "engine: plan_chain + cache" `Quick test_engine_plan_chain;
    Alcotest.test_case "engine: error responses" `Quick test_engine_errors;
    Alcotest.test_case "engine: ping/independent/moldable" `Quick
      test_engine_other_methods;
    Alcotest.test_case "server: end-to-end bit-for-bit" `Quick test_server_end_to_end;
    Alcotest.test_case "server: protocol errors" `Quick test_server_protocol_errors;
    Alcotest.test_case "server: queue backpressure" `Quick test_server_backpressure;
    Alcotest.test_case "server: stop drains under load" `Quick
      test_server_stop_drains_under_load;
    Alcotest.test_case "server: per-request deadline" `Quick test_server_deadline;
  ]

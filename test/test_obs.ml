(* Tests for the observability layer: monotonic clock, sharded metrics
   (bucket edges, scoped collectors, cross-domain determinism), span
   nesting, and the golden shape of the trace exports. *)

module Clock = Ckpt_obs.Clock
module Metrics = Ckpt_obs.Metrics
module Span = Ckpt_obs.Span
module Monte_carlo = Ckpt_sim.Monte_carlo
module Sim_run = Ckpt_sim.Sim_run
module Rng = Ckpt_prng.Rng

let find name =
  match
    List.find_opt (fun (n, _, _) -> n = name) (Metrics.snapshot ())
  with
  | Some (_, _, v) -> v
  | None -> Alcotest.failf "metric %S not in snapshot" name

let counter_value name =
  match find name with
  | Metrics.Counter n -> n
  | _ -> Alcotest.failf "metric %S is not a counter" name

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_clock_monotonic () =
  let stamps = Array.init 1000 (fun _ -> Clock.now_ns ()) in
  Array.iteri
    (fun i t ->
      if i > 0 && Int64.compare t stamps.(i - 1) < 0 then
        Alcotest.failf "clock went backwards at stamp %d" i)
    stamps;
  let dt, x = Clock.time (fun () -> 42) in
  Alcotest.(check int) "thunk result passed through" 42 x;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0)

let test_histogram_bucket_edges () =
  let h = Metrics.histogram "test.hist_edges" ~buckets:[| 1.0; 2.0; 5.0 |] in
  Metrics.reset ();
  (* Boundary values land in the bucket whose bound they equal (le
     semantics); above the last bound, infinity and NaN all overflow;
     below the first bound lands in bucket 0. *)
  List.iter (Metrics.observe h)
    [ 0.5; 1.0; -3.0; 1.5; 2.0; 5.0; 5.1; infinity; Float.nan ];
  match find "test.hist_edges" with
  | Metrics.Histogram data ->
      Alcotest.(check (array int)) "bucket counts (last slot = overflow)"
        [| 3; 2; 1; 3 |] data.Metrics.counts;
      Alcotest.(check int) "observation count" 9 data.Metrics.observations
  | _ -> Alcotest.fail "expected a histogram"

let test_histogram_validation () =
  Alcotest.check_raises "empty buckets"
    (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram "test.hist_empty" ~buckets:[||]));
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics.histogram: bounds must be strictly increasing")
    (fun () -> ignore (Metrics.histogram "test.hist_flat" ~buckets:[| 1.0; 1.0 |]));
  Alcotest.check_raises "NaN bound"
    (Invalid_argument "Metrics.histogram: NaN bucket bound") (fun () ->
      ignore (Metrics.histogram "test.hist_nan" ~buckets:[| 1.0; Float.nan |]));
  Alcotest.check_raises "re-registration with a different type"
    (Invalid_argument "Metrics: \"test.retype\" re-registered with a different type")
    (fun () ->
      ignore (Metrics.counter "test.retype");
      ignore (Metrics.gauge "test.retype"))

let test_scoped_collector_isolation () =
  let c = Metrics.counter "test.scoped" in
  Metrics.reset ();
  let col = Metrics.create_collector () in
  Metrics.with_collector col (fun () -> Metrics.incr ~by:3 c);
  Alcotest.(check int) "scoped emissions invisible before merge" 0
    (counter_value "test.scoped");
  Metrics.merge_into ~dst:(Metrics.current ()) col;
  Metrics.merge_into ~dst:(Metrics.current ()) col;
  Alcotest.(check int) "merge adds (twice here)" 6 (counter_value "test.scoped")

(* The acceptance guarantee: the deterministic (Engine) section of the
   snapshot is identical whatever the domain count — integer counters
   commute, and float sums are accumulated per fixed-grid batch and
   merged in batch order. *)
let engine_section () =
  List.filter_map
    (fun (name, kind, v) -> if kind = Metrics.Engine then Some (name, v) else None)
    (Metrics.snapshot ())

let test_engine_metrics_identical_across_domains () =
  let snap domains =
    Metrics.reset ();
    ignore
      (Monte_carlo.estimate_segments ~domains ~model:(Monte_carlo.Poisson_rate 0.08)
         ~downtime:0.4 ~runs:3000 ~rng:(Rng.create ~seed:515L)
         [ Sim_run.segment ~work:7.0 ~checkpoint:0.7 ~recovery:1.2 ]);
    engine_section ()
  in
  let reference = snap 1 in
  Alcotest.(check bool) "reference campaign emitted metrics" true
    (List.exists (fun (n, v) -> n = "sim.failures" && v <> Metrics.Counter 0) reference);
  List.iter
    (fun domains ->
      let got = snap domains in
      Alcotest.(check bool)
        (Printf.sprintf "engine section bit-identical (%d domains)" domains)
        true
        (compare reference got = 0))
    [ 2; 4 ];
  Metrics.reset ()

let test_hit_rate_derived_row () =
  let hits = Metrics.counter "test.lookup_hits" in
  let misses = Metrics.counter "test.lookup_misses" in
  Metrics.reset ();
  Metrics.incr ~by:3 hits;
  Metrics.incr misses;
  let table = Metrics.render_table (Metrics.snapshot ()) in
  Alcotest.(check bool) "derived hit-rate row present" true
    (contains table "test.lookup_hit_rate");
  Alcotest.(check bool) "3/(3+1) = 0.75" true (contains table "0.75");
  Metrics.reset ()

let test_span_nesting_and_exception_unwinding () =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" (fun () -> ());
          (try Span.with_ ~name:"boom" (fun () -> raise Exit) with Exit -> ());
          Span.instant "marker");
      (* The depth counter must be unwound by the exception: a sibling
         span recorded afterwards is back at depth 0. *)
      Span.with_ ~name:"after" (fun () -> ()));
  let rs = Span.records () in
  let depth_of name =
    match List.find_opt (fun r -> r.Span.name = name) rs with
    | Some r -> r.Span.depth
    | None -> Alcotest.failf "span %S not recorded" name
  in
  Alcotest.(check int) "outer at depth 0" 0 (depth_of "outer");
  Alcotest.(check int) "inner nested" 1 (depth_of "inner");
  Alcotest.(check int) "raising span nested" 1 (depth_of "boom");
  Alcotest.(check int) "instant inherits depth" 1 (depth_of "marker");
  Alcotest.(check int) "depth restored after exception" 0 (depth_of "after");
  let boom = List.find (fun r -> r.Span.name = "boom") rs in
  Alcotest.(check (option string))
    "exception-closed span tagged" (Some "true")
    (List.assoc_opt "raised" boom.Span.args);
  Span.reset ();
  Span.with_ ~name:"disabled" (fun () -> ());
  Alcotest.(check int) "no recording while disabled" 0 (List.length (Span.records ()))

(* Regression: a hits/misses pair registered but never consulted used
   to derive 0/0 = NaN; the contract is an unset gauge rendered n/a. *)
let test_hit_rate_zero_over_zero () =
  let _hits = Metrics.counter "test.coldcache_hits" in
  let _misses = Metrics.counter "test.coldcache_misses" in
  Metrics.reset ();
  (match Metrics.find (Metrics.hit_rates (Metrics.snapshot ())) "test.coldcache_hit_rate" with
  | Some (_, Metrics.Gauge None) -> ()
  | Some (_, Metrics.Gauge (Some x)) ->
      Alcotest.failf "0/0 hit rate derived %g instead of an unset gauge" x
  | Some _ -> Alcotest.fail "derived hit-rate row is not a gauge"
  | None -> Alcotest.fail "0/0 pair derived no hit-rate row at all");
  let table = Metrics.render_table (Metrics.snapshot ()) in
  Alcotest.(check bool) "row renders as n/a, not NaN" false (contains table "nan");
  Metrics.reset ()

let test_sink_flush_order_and_idempotency () =
  let buf = Buffer.create 16 in
  let sink tag () = Buffer.add_string buf tag in
  Ckpt_obs.Sink.register ~name:"test-a" (sink "a");
  Ckpt_obs.Sink.register ~name:"test-b" (sink "b");
  Ckpt_obs.Sink.register ~name:"test-c" (sink "c");
  (* Re-registering an unflushed sink keeps its registration slot. *)
  Ckpt_obs.Sink.register ~name:"test-b" (sink "B");
  Ckpt_obs.Sink.flush ();
  Alcotest.(check string) "registration order, replacement moves to back" "acB"
    (Buffer.contents buf);
  Ckpt_obs.Sink.flush ();
  Alcotest.(check string) "second flush is a no-op" "acB" (Buffer.contents buf);
  Ckpt_obs.Sink.register ~name:"test-b" (sink "b2");
  Ckpt_obs.Sink.flush ();
  Alcotest.(check string) "re-registration re-arms just that sink" "acBb2"
    (Buffer.contents buf)

(* The per-domain depth counter must unwind on exception paths on every
   domain, not just the one that ran the test harness. *)
let test_span_exception_unwinding_across_domains () =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      let work () =
        Span.with_ ~name:"outer" (fun () ->
            (try
               Span.with_ ~name:"boom" (fun () ->
                   Span.with_ ~name:"deep" (fun () -> raise Exit))
             with Exit -> ());
            Span.with_ ~name:"sibling" (fun () -> ()));
        Span.with_ ~name:"after" (fun () -> ())
      in
      let d1 = Domain.spawn work and d2 = Domain.spawn work in
      Domain.join d1;
      Domain.join d2;
      work ());
  let rs = Span.records () in
  let tids = List.sort_uniq compare (List.map (fun r -> r.Span.tid) rs) in
  Alcotest.(check int) "three recording domains" 3 (List.length tids);
  List.iter
    (fun tid ->
      let on_tid name =
        match
          List.find_opt (fun r -> r.Span.tid = tid && r.Span.name = name) rs
        with
        | Some r -> r
        | None -> Alcotest.failf "span %S missing on tid %d" name tid
      in
      Alcotest.(check int) "deep nested under boom" 2 (on_tid "deep").Span.depth;
      Alcotest.(check int) "sibling back at depth 1" 1 (on_tid "sibling").Span.depth;
      Alcotest.(check int) "after back at depth 0" 0 (on_tid "after").Span.depth;
      Alcotest.(check (option string))
        "raising span tagged" (Some "true")
        (List.assoc_opt "raised" (on_tid "boom").Span.args))
    tids;
  Span.reset ()

let test_gc_telemetry_probe () =
  Metrics.reset ();
  let probe = Ckpt_obs.Gc_telemetry.probe () in
  (* Allocate, then force a minor collection: quick_stat's minor_words
     only advances at collection boundaries, so an uncollected burst
     would read as a zero delta. *)
  let keep = ref [] in
  for i = 1 to 50_000 do
    keep := (i, float_of_int i) :: !keep
  done;
  ignore (Sys.opaque_identity !keep);
  Gc.minor ();
  Ckpt_obs.Gc_telemetry.sample probe;
  let snap = Metrics.snapshot () in
  (match Metrics.find snap "gc.minor_words" with
  | Some (Metrics.Timing, Metrics.Sum w) ->
      Alcotest.(check bool) "allocation visible in gc.minor_words" true (w > 0.0)
  | Some _ -> Alcotest.fail "gc.minor_words has the wrong class or kind"
  | None -> Alcotest.fail "gc.minor_words not registered");
  (match Metrics.find snap "gc.heap_words" with
  | Some (Metrics.Timing, Metrics.Gauge (Some w)) ->
      Alcotest.(check bool) "heap gauge positive" true (w > 0.0)
  | _ -> Alcotest.fail "gc.heap_words gauge not set by sample");
  (* A second sample right away reports only the delta since the first —
     in particular it must not double-count history. *)
  let before =
    match Metrics.find snap "gc.minor_words" with
    | Some (_, Metrics.Sum w) -> w
    | _ -> 0.0
  in
  Ckpt_obs.Gc_telemetry.sample probe;
  (match Metrics.find (Metrics.snapshot ()) "gc.minor_words" with
  | Some (_, Metrics.Sum w) ->
      Alcotest.(check bool) "re-armed sample adds less than the first burst" true
        (w -. before < before +. 1.0)
  | _ -> Alcotest.fail "gc.minor_words disappeared");
  Metrics.reset ()

(* Golden exports on synthetic records: the Chrome shape is what
   Perfetto parses, so it is pinned byte for byte. *)
let synthetic =
  [
    {
      Span.name = "alpha";
      span_kind = Span.Complete;
      start_ns = 1_000_000L;
      dur_ns = 2_500_000L;
      tid = 0;
      depth = 0;
      args = [ ("k", {|v "q"|}) ];
    };
    {
      Span.name = "beta";
      span_kind = Span.Instant;
      start_ns = 1_500_000L;
      dur_ns = 0L;
      tid = 3;
      depth = 1;
      args = [];
    };
  ]

let test_chrome_trace_golden () =
  let expected =
    {|{"displayTimeUnit":"ms","traceEvents":[|}
    ^ {|{"name":"alpha","cat":"ckpt","ph":"X","pid":0,"tid":0,"ts":0.000,"dur":2500.000,"args":{"k":"v \"q\""}},|}
    ^ {|{"name":"beta","cat":"ckpt","ph":"i","s":"t","pid":0,"tid":3,"ts":500.000,"args":{}}]}|}
  in
  Alcotest.(check string) "chrome trace_event shape" expected (Span.to_chrome synthetic);
  Alcotest.(check string) "empty record list still parses"
    {|{"displayTimeUnit":"ms","traceEvents":[]}|}
    (Span.to_chrome [])

let test_jsonl_golden () =
  let expected =
    {|{"name":"alpha","kind":"span","start_ns":1000000,"dur_ns":2500000,"tid":0,"depth":0,"args":{"k":"v \"q\""}}|}
    ^ "\n"
    ^ {|{"name":"beta","kind":"instant","start_ns":1500000,"dur_ns":0,"tid":3,"depth":1,"args":{}}|}
    ^ "\n"
  in
  Alcotest.(check string) "json-lines shape" expected (Span.to_jsonl synthetic)

let test_dp_transition_counters_agree () =
  (* solve and solve_memoized perform the same n − x segment evaluations
     per state (the initial candidate plus the loop), so their
     dp.transitions totals must be equal — solve_memoized used to report
     max 0 (n − 1 − x) and undercount by one per state. *)
  let rng = Rng.create ~seed:909L in
  let dag = Ckpt_dag.Generate.chain rng (Ckpt_dag.Generate.uniform_costs ()) ~n:37 in
  let p = Ckpt_core.Chain_problem.of_dag ~downtime:0.2 ~lambda:0.05 dag in
  let transitions_of solver =
    Metrics.reset ();
    ignore (solver p);
    counter_value "dp.transitions"
  in
  let iterative = transitions_of Ckpt_core.Chain_dp.solve in
  let memoized = transitions_of Ckpt_core.Chain_dp.solve_memoized in
  Alcotest.(check int) "n(n+1)/2 transitions for the iterative DP" (37 * 38 / 2)
    iterative;
  Alcotest.(check int) "memoized DP reports the same total" iterative memoized;
  (* The divide and conquer does strictly fewer evaluations, and within
     the O(n log² n) bound (n·(log2 n + 1)² + n is generous already at
     n = 37 and stays so at bench sizes). *)
  let dc = transitions_of (Ckpt_core.Chain_dp.solve_dc ?verify:None) in
  let log2n = int_of_float (Float.ceil (Float.log2 37.0)) in
  Alcotest.(check bool)
    (Printf.sprintf "dc transitions (%d) below iterative (%d)" dc iterative)
    true (dc < iterative);
  Alcotest.(check bool)
    (Printf.sprintf "dc transitions (%d) within O(n log^2 n)" dc)
    true
    (dc <= (37 * (log2n + 1) * (log2n + 1)) + 37);
  Metrics.reset ()

let test_json_snapshot_parses () =
  (* Sanity of the --metrics json surface: balanced braces, both
     sections present, every registered metric quoted by name. *)
  Metrics.reset ();
  let json = Metrics.to_json (Metrics.snapshot ()) in
  let depth = ref 0 and min_depth = ref 1 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      end)
    json;
  Alcotest.(check int) "braces balance" 0 !depth;
  Alcotest.(check int) "never close below top level" 0 !min_depth;
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (contains json ("\"" ^ key ^ "\"")))
    [ "metrics"; "timings"; "mc.runs"; "sim.failures"; "dp.memo_hits";
      "dp.dc_fallbacks"; "dp.smawk_fallbacks" ]

let suite =
  [
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "scoped collectors isolate until merged" `Quick
      test_scoped_collector_isolation;
    Alcotest.test_case "engine metrics bit-identical across domains" `Quick
      test_engine_metrics_identical_across_domains;
    Alcotest.test_case "derived hit-rate row" `Quick test_hit_rate_derived_row;
    Alcotest.test_case "hit rate 0/0 derives an unset gauge" `Quick
      test_hit_rate_zero_over_zero;
    Alcotest.test_case "sink flush order and idempotency" `Quick
      test_sink_flush_order_and_idempotency;
    Alcotest.test_case "span exception unwinding across domains" `Quick
      test_span_exception_unwinding_across_domains;
    Alcotest.test_case "gc telemetry probe deltas" `Quick test_gc_telemetry_probe;
    Alcotest.test_case "DP transition counters agree" `Quick
      test_dp_transition_counters_agree;
    Alcotest.test_case "span nesting and exception unwinding" `Quick
      test_span_nesting_and_exception_unwinding;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
    Alcotest.test_case "json-lines golden" `Quick test_jsonl_golden;
    Alcotest.test_case "metrics json well-formed" `Quick test_json_snapshot_parses;
  ]

(* Tests for the Proposition 2 reduction: 3-PARTITION instances, the
   polynomial transformation, and both directions of the equivalence. *)

module Rng = Ckpt_prng.Rng
module Reduction = Ckpt_core.Reduction
module Schedule = Ckpt_core.Schedule

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

(* {7,7,7,9,9,9} with T = 24: every triple sums to 21, 23, 25 or 27,
   never 24, so this instance is unsolvable yet satisfies all the
   3-PARTITION constraints (items in (6,12), total 48 = 2*24). *)
let unsolvable = Reduction.instance ~items:[ 7; 7; 7; 9; 9; 9 ] ~target:24

(* {7,8,9} + {7,8,9} with T = 24 is trivially solvable. *)
let solvable = Reduction.instance ~items:[ 7; 9; 8; 8; 9; 7 ] ~target:24

let test_instance_validation () =
  Alcotest.check_raises "count not multiple of 3"
    (Invalid_argument "Reduction.instance: the item count must be a positive multiple of 3")
    (fun () -> ignore (Reduction.instance ~items:[ 7; 8 ] ~target:24));
  Alcotest.check_raises "sum mismatch"
    (Invalid_argument "Reduction.instance: items sum to 23, expected m*T = 24") (fun () ->
      ignore (Reduction.instance ~items:[ 7; 8; 8 ] ~target:24));
  Alcotest.check_raises "range violated"
    (Invalid_argument "Reduction.instance: item 12 out of (T/4, T/2) for T = 24") (fun () ->
      ignore (Reduction.instance ~items:[ 12; 5; 7 ] ~target:24))

let test_solver_on_solvable () =
  match Reduction.solve_3partition solvable with
  | None -> Alcotest.fail "solver missed a valid partition"
  | Some triples ->
      Alcotest.(check int) "two triples" 2 (List.length triples);
      List.iter
        (fun triple ->
          let sum =
            Array.fold_left (fun acc i -> acc + solvable.Reduction.items.(i)) 0 triple
          in
          Alcotest.(check int) "triple sums to T" 24 sum)
        triples;
      (* Indices form a partition of 0..5. *)
      let all = List.concat_map Array.to_list triples in
      Alcotest.(check (list int)) "indices partition" [ 0; 1; 2; 3; 4; 5 ]
        (List.sort compare all)

let test_solver_on_unsolvable () =
  Alcotest.(check bool) "no partition exists" true
    (Reduction.solve_3partition unsolvable = None)

let test_random_solvable () =
  let rng = Rng.create ~seed:1234L in
  for m = 1 to 4 do
    let inst = Reduction.random_solvable rng ~m ~target:100 in
    Alcotest.(check int) "3m items" (3 * m) (Array.length inst.Reduction.items);
    Alcotest.(check int) "m groups" m (Reduction.groups_count inst);
    Alcotest.(check bool)
      (Printf.sprintf "m=%d: generated instance is solvable" m)
      true
      (Reduction.solve_3partition inst <> None)
  done

let test_reduce_parameters () =
  let reduced = Reduction.reduce solvable in
  close "lambda = 1/(2T)" (1.0 /. 48.0) reduced.Reduction.lambda;
  close "C = (ln 2 - 1/2)/lambda" ((log 2.0 -. 0.5) *. 48.0) reduced.Reduction.cost;
  (* e^(lambda (T + C)) = 2, the pivotal identity of the proof. *)
  close "e^(lambda(T+C)) = 2" 2.0
    (exp (reduced.Reduction.lambda *. (24.0 +. reduced.Reduction.cost)));
  (* K = m e^(lambda C)/lambda (e^(lambda(T+C)) - 1) = m e^(lambda C)/lambda. *)
  close "K collapses to m e^(lambda C)/lambda"
    (2.0 *. exp (reduced.Reduction.lambda *. reduced.Reduction.cost) /. reduced.Reduction.lambda)
    reduced.Reduction.bound

let test_forward_direction () =
  (* A valid 3-partition yields a schedule of expected makespan K. *)
  match Reduction.solve_3partition solvable with
  | None -> Alcotest.fail "expected solvable"
  | Some triples ->
      let schedule, makespan = Reduction.schedule_of_partition solvable triples in
      let reduced = Reduction.reduce solvable in
      close ~tol:1e-9 "E = K exactly" reduced.Reduction.bound makespan;
      Alcotest.(check int) "one checkpoint per triple" 2 (Schedule.checkpoint_count schedule)

let test_optimal_matches_bound_when_solvable () =
  let reduced = Reduction.reduce solvable in
  let opt = Reduction.optimal_expected solvable in
  close ~tol:1e-9 "optimum equals K" reduced.Reduction.bound opt

let test_optimal_exceeds_bound_when_unsolvable () =
  let reduced = Reduction.reduce unsolvable in
  let opt = Reduction.optimal_expected unsolvable in
  Alcotest.(check bool)
    (Printf.sprintf "optimum %.6f strictly above K %.6f" opt reduced.Reduction.bound)
    true
    (opt > reduced.Reduction.bound *. (1.0 +. 1e-9))

let test_verify_both_directions () =
  Alcotest.(check bool) "solvable instance verifies" true (Reduction.verify solvable);
  Alcotest.(check bool) "unsolvable instance verifies" true (Reduction.verify unsolvable)

let test_verify_random_instances () =
  let rng = Rng.create ~seed:77L in
  for i = 1 to 5 do
    let m = 1 + (i mod 3) in
    let inst = Reduction.random_solvable rng ~m ~target:60 in
    Alcotest.(check bool)
      (Printf.sprintf "random instance %d verifies" i)
      true (Reduction.verify inst)
  done

let suite =
  [
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "solver finds valid partitions" `Quick test_solver_on_solvable;
    Alcotest.test_case "solver rejects unsolvable" `Quick test_solver_on_unsolvable;
    Alcotest.test_case "random solvable generator" `Quick test_random_solvable;
    Alcotest.test_case "reduction parameters" `Quick test_reduce_parameters;
    Alcotest.test_case "forward direction: partition -> E = K" `Quick test_forward_direction;
    Alcotest.test_case "solvable: optimum = K" `Quick test_optimal_matches_bound_when_solvable;
    Alcotest.test_case "unsolvable: optimum > K" `Quick
      test_optimal_exceeds_bound_when_unsolvable;
    Alcotest.test_case "verify on fixed instances" `Quick test_verify_both_directions;
    Alcotest.test_case "verify on random instances" `Slow test_verify_random_instances;
  ]

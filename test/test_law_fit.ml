(* Tests for maximum-likelihood law fitting. *)

module Law = Ckpt_dist.Law
module Law_fit = Ckpt_dist.Law_fit
module Rng = Ckpt_prng.Rng

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let samples law n seed =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Law.sample law rng)

let test_exponential_recovery () =
  let xs = samples (Law.exponential ~rate:0.05) 50_000 11L in
  match Law_fit.exponential xs with
  | Law.Exponential { rate } ->
      close ~tol:0.02 "recovered rate" 0.05 rate
  | law -> Alcotest.fail (Law.to_string law)

let test_weibull_recovery () =
  let xs = samples (Law.weibull ~shape:0.7 ~scale:120.0) 50_000 13L in
  match Law_fit.weibull xs with
  | Law.Weibull { shape; scale } ->
      close ~tol:0.02 "recovered shape" 0.7 shape;
      close ~tol:0.03 "recovered scale" 120.0 scale
  | law -> Alcotest.fail (Law.to_string law)

let test_weibull_recovery_increasing_hazard () =
  let xs = samples (Law.weibull ~shape:2.2 ~scale:8.0) 50_000 17L in
  match Law_fit.weibull xs with
  | Law.Weibull { shape; scale } ->
      close ~tol:0.02 "recovered shape > 1" 2.2 shape;
      close ~tol:0.02 "recovered scale" 8.0 scale
  | law -> Alcotest.fail (Law.to_string law)

let test_log_normal_recovery () =
  let xs = samples (Law.log_normal ~mu:1.3 ~sigma:0.9) 50_000 19L in
  match Law_fit.log_normal xs with
  | Law.Log_normal { mu; sigma } ->
      close ~tol:0.02 "recovered mu" 1.3 mu;
      close ~tol:0.02 "recovered sigma" 0.9 sigma
  | law -> Alcotest.fail (Law.to_string law)

let family law =
  match law with
  | Law.Exponential _ -> "exponential"
  | Law.Weibull _ -> "weibull"
  | Law.Log_normal _ -> "lognormal"
  | _ -> "other"

let test_best_fit_selects_family () =
  let check name law expected_family =
    let xs = samples law 20_000 101L in
    let fitted, ll = Law_fit.best_fit xs in
    Alcotest.(check string) (name ^ ": family selected") expected_family (family fitted);
    Alcotest.(check bool) (name ^ ": finite likelihood") true (Float.is_finite ll)
  in
  check "weibull 0.6 data" (Law.weibull ~shape:0.6 ~scale:50.0) "weibull";
  check "lognormal data" (Law.log_normal ~mu:2.0 ~sigma:1.4) "lognormal"

let test_exponential_is_weibull_special_case () =
  (* Exponential data: the Weibull fit must find shape ~ 1, and its
     likelihood cannot beat the exponential one by much. *)
  let xs = samples (Law.exponential ~rate:0.1) 50_000 23L in
  (match Law_fit.weibull xs with
  | Law.Weibull { shape; _ } -> close ~tol:0.02 "shape near 1" 1.0 shape
  | law -> Alcotest.fail (Law.to_string law));
  let ll_exp = Law_fit.log_likelihood (Law_fit.exponential xs) xs in
  let ll_weib = Law_fit.log_likelihood (Law_fit.weibull xs) xs in
  Alcotest.(check bool) "nested models: tiny likelihood gain" true
    (ll_weib -. ll_exp < 0.001 *. Float.abs ll_exp)

let test_validation () =
  Alcotest.check_raises "too few samples"
    (Invalid_argument "Law_fit.exponential: need at least two samples") (fun () ->
      ignore (Law_fit.exponential [| 1.0 |]));
  Alcotest.check_raises "positive samples"
    (Invalid_argument "Law_fit.weibull: samples must be positive") (fun () ->
      ignore (Law_fit.weibull [| 1.0; 0.0 |]))

let test_fit_from_cluster_log () =
  (* End-to-end: synthesize a log, fit its inter-arrival law per node,
     recover the Weibull shape used for generation. *)
  let law = Law.weibull_of_mean ~shape:0.7 ~mean:200.0 in
  let rng = Rng.create ~seed:31L in
  let log =
    Ckpt_failures.Cluster_log.generate ~law ~nodes:200 ~horizon:100_000.0 rng
  in
  (* Pool the per-node inter-arrival times (each node is a renewal
     process with the target law). *)
  let gaps =
    Array.concat
      (List.filter_map
         (fun (node : Ckpt_failures.Cluster_log.node) ->
           let times = node.Ckpt_failures.Cluster_log.failure_times in
           if Array.length times < 2 then None
           else
             Some
               (Array.init
                  (Array.length times - 1)
                  (fun i -> times.(i + 1) -. times.(i))))
         (Array.to_list log.Ckpt_failures.Cluster_log.nodes))
  in
  Alcotest.(check bool) "enough gaps harvested" true (Array.length gaps > 10_000);
  match Law_fit.weibull gaps with
  | Law.Weibull { shape; _ } ->
      (* Inter-arrival gaps (excluding each node's truncated first/last
         interval) under-sample long gaps slightly; accept 10%. *)
      Alcotest.(check bool)
        (Printf.sprintf "recovered shape %.3f near 0.7" shape)
        true
        (Float.abs (shape -. 0.7) < 0.07)
  | law -> Alcotest.fail (Law.to_string law)

let suite =
  [
    Alcotest.test_case "exponential recovery" `Slow test_exponential_recovery;
    Alcotest.test_case "weibull recovery (k<1)" `Slow test_weibull_recovery;
    Alcotest.test_case "weibull recovery (k>1)" `Slow test_weibull_recovery_increasing_hazard;
    Alcotest.test_case "log-normal recovery" `Slow test_log_normal_recovery;
    Alcotest.test_case "best-fit family selection" `Slow test_best_fit_selects_family;
    Alcotest.test_case "exponential within weibull" `Slow
      test_exponential_is_weibull_special_case;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "fit from a cluster log" `Slow test_fit_from_cluster_log;
  ]

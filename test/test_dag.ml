(* Tests for tasks, DAGs and workflow generators. *)

module Task = Ckpt_dag.Task
module Dag = Ckpt_dag.Dag
module Generate = Ckpt_dag.Generate
module Rng = Ckpt_prng.Rng

let mk ?(work = 1.0) id = Task.make ~id ~work ()

let test_task_validation () =
  Alcotest.check_raises "negative id" (Invalid_argument "Task.make: id must be non-negative")
    (fun () -> ignore (Task.make ~id:(-1) ~work:1.0 ()));
  Alcotest.check_raises "zero work" (Invalid_argument "Task.make: work must be positive")
    (fun () -> ignore (Task.make ~id:0 ~work:0.0 ()));
  Alcotest.check_raises "negative checkpoint"
    (Invalid_argument "Task.make: checkpoint_cost must be non-negative") (fun () ->
      ignore (Task.make ~id:0 ~work:1.0 ~checkpoint_cost:(-0.1) ()));
  let t = Task.make ~id:3 ~work:2.0 () in
  Alcotest.(check string) "default name" "T4" t.Task.name;
  let t' = Task.with_costs t ~checkpoint_cost:1.0 ~recovery_cost:2.0 in
  Alcotest.(check bool) "with_costs" true
    (Float.equal t'.Task.checkpoint_cost 1.0
    && Float.equal t'.Task.recovery_cost 2.0
    && Float.equal t'.Task.work 2.0)

let diamond () =
  (* 0 -> {1, 2} -> 3 *)
  Dag.create [ mk 0; mk 1; mk 2; mk 3 ] [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_create_validation () =
  let raises_invalid f =
    match f () with
    | exception Dag.Invalid _ -> ()
    | _ -> Alcotest.fail "expected Dag.Invalid"
  in
  raises_invalid (fun () -> Dag.create [ mk 0; mk 2 ] []);
  raises_invalid (fun () -> Dag.create [ mk 0; mk 0 ] []);
  raises_invalid (fun () -> Dag.create [ mk 0; mk 1 ] [ (0, 1); (0, 1) ]);
  raises_invalid (fun () -> Dag.create [ mk 0; mk 1 ] [ (0, 5) ]);
  raises_invalid (fun () -> Dag.create [ mk 0 ] [ (0, 0) ]);
  raises_invalid (fun () -> Dag.create [ mk 0; mk 1; mk 2 ] [ (0, 1); (1, 2); (2, 0) ])

let test_structure_accessors () =
  let d = diamond () in
  Alcotest.(check int) "size" 4 (Dag.size d);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources d);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks d);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Dag.successors d 0);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (Dag.predecessors d 3);
  Alcotest.(check (list int)) "reachable from 0" [ 1; 2; 3 ] (Dag.reachable_from d 0);
  Alcotest.(check bool) "total work" true (Float.equal (Dag.total_work d) 4.0)

let test_is_chain () =
  let chain = Dag.of_chain [ mk 0; mk 1; mk 2 ] in
  (match Dag.is_chain chain with
  | Some tasks ->
      Alcotest.(check (list int)) "chain order" [ 0; 1; 2 ]
        (List.map (fun (t : Task.t) -> t.Task.id) tasks)
  | None -> Alcotest.fail "chain not recognised");
  Alcotest.(check bool) "diamond is not a chain" true (Dag.is_chain (diamond ()) = None);
  let singleton = Dag.of_independent [ mk 0 ] in
  Alcotest.(check bool) "singleton is a chain" true (Dag.is_chain singleton <> None);
  let indep = Dag.of_independent [ mk 0; mk 1 ] in
  Alcotest.(check bool) "independent pair is not a chain" true (Dag.is_chain indep = None)

let test_topological_order () =
  let d = diamond () in
  let order = Dag.topological_order d in
  Alcotest.(check bool) "valid linearization" true (Dag.is_linearization d order);
  Alcotest.(check (list int)) "deterministic smallest-first" [ 0; 1; 2; 3 ] order

let test_is_linearization () =
  let d = diamond () in
  Alcotest.(check bool) "valid" true (Dag.is_linearization d [ 0; 2; 1; 3 ]);
  Alcotest.(check bool) "violates edge" false (Dag.is_linearization d [ 1; 0; 2; 3 ]);
  Alcotest.(check bool) "wrong length" false (Dag.is_linearization d [ 0; 1; 2 ]);
  Alcotest.(check bool) "repeats" false (Dag.is_linearization d [ 0; 1; 1; 3 ])

let test_all_linearizations () =
  let d = diamond () in
  let all = Dag.all_linearizations d in
  Alcotest.(check int) "diamond has 2 linearizations" 2 (List.length all);
  List.iter
    (fun order ->
      Alcotest.(check bool) "each is valid" true (Dag.is_linearization d order))
    all;
  let indep = Dag.of_independent [ mk 0; mk 1; mk 2 ] in
  Alcotest.(check int) "3 independent tasks: 3! orders" 6 (Dag.count_linearizations indep);
  Alcotest.check_raises "limit enforced"
    (Invalid_argument "Dag.all_linearizations: too many linearizations") (fun () ->
      ignore (Dag.all_linearizations ~limit:3 indep))

let test_critical_path () =
  let tasks = [ Task.make ~id:0 ~work:1.0 (); Task.make ~id:1 ~work:5.0 ();
                Task.make ~id:2 ~work:2.0 (); Task.make ~id:3 ~work:1.0 () ] in
  let d = Dag.create tasks [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  Alcotest.(check bool) "critical path = 1+5+1" true (Float.equal (Dag.critical_path d) 7.0)

let test_to_dot () =
  let dot = Dag.to_dot (diamond ()) in
  Alcotest.(check bool) "digraph header" true (Astring_like.contains dot "digraph workflow");
  Alcotest.(check bool) "edge present" true (Astring_like.contains dot "t0 -> t1")

let spec = Generate.uniform_costs ()

let test_generators_shapes () =
  let rng = Rng.create ~seed:7L in
  let chain = Generate.chain rng spec ~n:10 in
  Alcotest.(check bool) "chain is a chain" true (Dag.is_chain chain <> None);
  let indep = Generate.independent rng spec ~n:8 in
  Alcotest.(check bool) "independent has no edge" true (Dag.is_independent indep);
  let fj = Generate.fork_join rng spec ~stages:3 ~width:4 in
  Alcotest.(check int) "fork-join size" (3 * 6) (Dag.size fj);
  Alcotest.(check (list int)) "single source" [ 0 ] (Dag.sources fj);
  let dia = Generate.diamond rng spec ~width:5 in
  Alcotest.(check int) "diamond size" 7 (Dag.size dia);
  let layered = Generate.layered rng spec ~layers:4 ~width:3 ~edge_prob:0.5 in
  Alcotest.(check int) "layered size" 12 (Dag.size layered);
  (* Every non-first-layer task has a predecessor. *)
  for id = 3 to 11 do
    Alcotest.(check bool) "layered connectivity" true (Dag.predecessors layered id <> [])
  done

let test_generator_cost_ranges () =
  let rng = Rng.create ~seed:11L in
  let spec =
    Generate.uniform_costs ~work:(2.0, 3.0) ~checkpoint:(0.5, 0.6) ~recovery:(0.1, 0.2) ()
  in
  let tasks = Generate.task_list rng spec ~n:100 in
  List.iter
    (fun (t : Task.t) ->
      Alcotest.(check bool) "work range" true (t.Task.work >= 2.0 && t.Task.work < 3.0);
      Alcotest.(check bool) "ckpt range" true
        (t.Task.checkpoint_cost >= 0.5 && t.Task.checkpoint_cost < 0.6);
      Alcotest.(check bool) "rec range" true
        (t.Task.recovery_cost >= 0.1 && t.Task.recovery_cost < 0.2))
    tasks

let qcheck_random_dag_valid =
  QCheck.Test.make ~name:"random_dag topological order is a linearization" ~count:100
    QCheck.(pair (int_range 1 30) (float_range 0.0 1.0))
    (fun (n, edge_prob) ->
      let rng = Rng.create ~seed:(Int64.of_int (n * 1000)) in
      let dag = Generate.random_dag rng spec ~n ~edge_prob in
      Dag.is_linearization dag (Dag.topological_order dag))

let qcheck_chain_total_work =
  QCheck.Test.make ~name:"of_chain preserves total work" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.5 10.0))
    (fun works ->
      let tasks = List.mapi (fun i w -> Task.make ~id:i ~work:w ()) works in
      let dag = Dag.of_chain tasks in
      Float.abs (Dag.total_work dag -. List.fold_left ( +. ) 0.0 works) < 1e-9)

let suite =
  [
    Alcotest.test_case "task validation" `Quick test_task_validation;
    Alcotest.test_case "dag validation" `Quick test_create_validation;
    Alcotest.test_case "structure accessors" `Quick test_structure_accessors;
    Alcotest.test_case "is_chain" `Quick test_is_chain;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "is_linearization" `Quick test_is_linearization;
    Alcotest.test_case "all linearizations" `Quick test_all_linearizations;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "dot export" `Quick test_to_dot;
    Alcotest.test_case "generator shapes" `Quick test_generators_shapes;
    Alcotest.test_case "generator cost ranges" `Quick test_generator_cost_ranges;
    QCheck_alcotest.to_alcotest qcheck_random_dag_valid;
    QCheck_alcotest.to_alcotest qcheck_chain_total_work;
  ]
